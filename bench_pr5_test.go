package webtextie

// Gate over the committed logging-overhead baseline (BENCH_PR5.json,
// regenerated with `make bench-pr5`). The file re-measures the resilience
// benchmarks alongside the new log-on/off pairs in one session, so the
// logging-off cost is judged against an unlogged twin measured under
// identical load — absolute comparisons against the PR4-era file would
// gate on machine drift, not on code.

import "testing"

// TestBenchPR5LoggingOverheadGate enforces the event-log cost contract on
// the committed numbers: with no sink attached the crawl and the executor
// must stay within 2% of their unlogged twins (every call site on the
// logging-off path is one nil comparison), and the logged runs must be
// present so the real overhead stays visible in review.
func TestBenchPR5LoggingOverheadGate(t *testing.T) {
	pr5 := loadBenchFile(t, "BENCH_PR5.json")
	if len(pr5) == 0 {
		t.Fatal("BENCH_PR5.json holds no benchmarks")
	}
	pairs := []struct{ off, base string }{
		{"BenchmarkCrawlChaosLogOff", "BenchmarkCrawlChaosResilient"},
		{"BenchmarkExecuteLogOff", "BenchmarkExecuteQuarantineFaultFree"},
	}
	for _, p := range pairs {
		off, base := pr5[p.off], pr5[p.base]
		if off == 0 || base == 0 {
			t.Fatalf("BENCH_PR5.json is missing %s or %s", p.off, p.base)
		}
		if ratio := off / base; ratio > 1.02 {
			t.Errorf("%s is %.1f%% slower than %s; logging-off must cost <=2%%",
				p.off, 100*(ratio-1), p.base)
		}
	}
	for _, want := range []string{"BenchmarkCrawlChaosLogOn", "BenchmarkExecuteLogOn"} {
		if pr5[want] == 0 {
			t.Errorf("BENCH_PR5.json is missing %s (the measured logging-on cost)", want)
		}
	}
}

// TestBenchPR5CoversPR4 keeps the baseline lineage intact: every PR4
// benchmark is re-measured in BENCH_PR5.json, and no re-measurement moved
// by more than 2x in either direction (machine drift between sessions is
// expected; an order-of-magnitude jump means a broken benchmark, not a
// slower machine).
func TestBenchPR5CoversPR4(t *testing.T) {
	pr4 := loadBenchFile(t, "BENCH_PR4.json")
	pr5 := loadBenchFile(t, "BENCH_PR5.json")
	for name, old := range pr4 {
		now := pr5[name]
		if now == 0 {
			t.Errorf("BENCH_PR5.json dropped %s (present in BENCH_PR4.json)", name)
			continue
		}
		if ratio := now / old; ratio > 2 || ratio < 0.5 {
			t.Errorf("%s moved %.2fx between PR4 and PR5 baselines (%s -> %s); "+
				"re-measure with `make bench-pr5`", name, ratio,
				fmtNs(old), fmtNs(now))
		}
	}
}
