package webtextie

// Gate over the committed supervised-fleet baseline (BENCH_PR8.json,
// regenerated with `make bench-pr8`). The benchmark reruns the PR-6
// DoP-4 fleet plan — a 12k-page budget against the ~1M-page web — under
// the shard supervisor with no crash schedule. Off the fault path,
// supervision is one silent barrier checkpoint per shard per round and
// zero virtual time, so the supervised run's virtual throughput must sit
// within 2% of the unsupervised BENCH_PR6 DoP-4 number. (In practice it
// is byte-identical: clean-run supervision is output-invisible, so the
// two vdocs/s figures coincide exactly; the 2% headroom only guards the
// gate against future re-baselining noise.)

import "testing"

// TestBenchPR8SupervisionOverheadGate enforces the supervision-off
// overhead contract on the committed numbers.
func TestBenchPR8SupervisionOverheadGate(t *testing.T) {
	pr6 := loadBenchMetrics(t, "BENCH_PR6.json")
	pr8 := loadBenchMetrics(t, "BENCH_PR8.json")
	base := pr6["BenchmarkShardCrawlDoP4"]
	sup := pr8["BenchmarkSupervisedShardCrawlDoP4"]
	if base == nil {
		t.Fatal("BENCH_PR6.json is missing the DoP-4 benchmark; regenerate with `make bench-pr6`")
	}
	if sup == nil {
		t.Fatal("BENCH_PR8.json is missing the supervised benchmark; regenerate with `make bench-pr8`")
	}
	if sup["webpages"] != base["webpages"] || sup["fetched"] != base["fetched"] {
		t.Errorf("supervised bench ran a different plan: %.0f pages fetched of a %.0f-page web, want %.0f of %.0f",
			sup["fetched"], sup["webpages"], base["fetched"], base["webpages"])
	}
	if sup["vdocs/s"] <= 0 || sup["ns/op"] <= 0 {
		t.Fatalf("BENCH_PR8.json carries non-positive timings: %v", sup)
	}
	if min := base["vdocs/s"] * 0.98; sup["vdocs/s"] < min {
		t.Errorf("supervised fleet throughput %.2f vdocs/s is below 98%% of the unsupervised %.2f; supervision off the fault path must be (virtually) free",
			sup["vdocs/s"], base["vdocs/s"])
	}
}
