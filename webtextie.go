// Package webtextie is a from-scratch Go reproduction of "Potential and
// Pitfalls of Domain-Specific Information Extraction at Web Scale"
// (Rheinländer, Lehmann, Kunkel, Meier, Leser — SIGMOD 2016).
//
// The library rebuilds the paper's entire stack against a deterministic
// synthetic web (the live web, Medline and PMC are substituted by
// calibrated generators; see DESIGN.md):
//
//   - a focused crawler (Nutch-style generate/fetch/update loop with
//     MIME/language/length filters, Boilerpipe-style net-text extraction
//     and a Naive Bayes relevance classifier);
//   - seed generation against simulated search-engine APIs;
//   - a Stratosphere-style data-flow engine with >60 operators in four
//     packages (BASE/IE/WA/DC), a Meteor-dialect script language, and a
//     SOFA-style logical optimizer;
//   - the NLP/IE tool suite: HMM POS tagging (MedPost substitute),
//     Aho-Corasick dictionary NER and CRF-based NER (LINNAEUS / BANNER /
//     ChemSpot substitutes), regex-based linguistic analysis;
//   - a simulated 28-node cluster for the scalability experiments;
//   - every table and figure of the paper's evaluation (cmd/experiments).
//
// Quick start:
//
//	sys := webtextie.New(webtextie.QuickConfig())
//	analysis, err := sys.AnalyzeAll(4)
//	...
//	exp := webtextie.NewExperiments(webtextie.QuickConfig())
//	fmt.Println(exp.Table4())
//
// The heavy lifting lives in internal packages; this package re-exports
// the stable surface.
package webtextie

import (
	"webtextie/internal/core"
	"webtextie/internal/corpora"
	"webtextie/internal/dataflow"
	"webtextie/internal/textgen"
)

// Re-exported core types.
type (
	// Config controls system construction (corpora, crawl, training).
	Config = core.Config
	// System is the assembled end-to-end text-analytics system.
	System = core.System
	// Registry resolves data-flow operators for Meteor scripts.
	Registry = core.Registry
	// Experiments regenerates every table and figure of the paper.
	Experiments = core.Experiments
	// AnalysisSet holds the four per-corpus content analyses.
	AnalysisSet = core.AnalysisSet
	// CorpusAnalysis aggregates one corpus's measurements.
	CorpusAnalysis = core.CorpusAnalysis
	// EntityAnn is one extracted entity mention.
	EntityAnn = core.EntityAnn
	// Method distinguishes dictionary- from ML-based extraction.
	Method = core.Method
	// CorpusKind identifies one of the four corpora.
	CorpusKind = textgen.CorpusKind
	// EntityType is one of the three biomedical entity classes.
	EntityType = textgen.EntityType
	// ErrorPolicy selects the data-flow executor's failure response.
	ErrorPolicy = dataflow.ErrorPolicy
)

// Executor error policies (Config.ExecPolicy).
const (
	// Quarantine counts and dead-letters failing records, then continues.
	Quarantine = dataflow.Quarantine
	// FailFast aborts the whole run on the first terminal failure.
	FailFast = dataflow.FailFast
)

// Extraction methods.
const (
	Dict = core.Dict
	ML   = core.ML
)

// Corpus kinds (Table 3 order).
const (
	Relevant   = textgen.Relevant
	Irrelevant = textgen.Irrelevant
	Medline    = textgen.Medline
	PMC        = textgen.PMC
)

// Entity classes.
const (
	Gene    = textgen.Gene
	Drug    = textgen.Drug
	Disease = textgen.Disease
)

// New builds the complete system: synthesizes the lexicons and the
// synthetic web, trains the classifier and all taggers, generates seeds,
// and runs the focused crawl. Construction is deterministic in the seed.
func New(cfg Config) *System { return core.NewSystem(cfg) }

// DefaultConfig is the full (1:10,000) configuration used by
// cmd/experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// QuickConfig is a reduced configuration for examples and smoke tests
// (smaller web, shorter crawl, smaller dictionaries).
func QuickConfig() Config { return core.TestConfig() }

// NewExperiments prepares the experiment runner for a configuration.
func NewExperiments(cfg Config) *Experiments { return core.NewExperiments(cfg) }

// NewExperimentsFromSystem wraps an existing system.
func NewExperimentsFromSystem(sys *System) *Experiments {
	return core.NewExperimentsFromSystem(sys)
}

// BuildCorpora constructs the four corpora (including the focused crawl)
// without training the IE tool suite.
func BuildCorpora(cfg corpora.BuildConfig) *corpora.Set { return corpora.Build(cfg) }

// ConsolidatedMeteorScript is the paper's Fig 2 flow in the Meteor dialect.
const ConsolidatedMeteorScript = core.ConsolidatedMeteorScript
