package webtextie

// Loader for the committed benchmark baseline (BENCH_BASELINE.json,
// regenerated with `make bench-baseline`). The baseline records one
// iteration per benchmark with all b.ReportMetric domain metrics, so
// regressions in either runtime or reproduced paper values are visible
// in review as a JSON diff.

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

type benchBaseline struct {
	GoVersion  string `json:"go_version"`
	Benchmarks []struct {
		Name       string             `json:"name"`
		Iterations int64              `json:"iterations"`
		Metrics    map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// loadBenchBaseline reads BENCH_BASELINE.json from the repo root.
func loadBenchBaseline(t *testing.T) *benchBaseline {
	t.Helper()
	data, err := os.ReadFile("BENCH_BASELINE.json")
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	return &b
}

// TestBenchBaselineWellFormed keeps the committed baseline honest: every
// entry names a Benchmark, ran at least once, and carries a positive
// ns/op; names are unique.
func TestBenchBaselineWellFormed(t *testing.T) {
	b := loadBenchBaseline(t)
	if len(b.Benchmarks) == 0 {
		t.Fatal("baseline holds no benchmarks")
	}
	seen := map[string]bool{}
	for _, e := range b.Benchmarks {
		if !strings.HasPrefix(e.Name, "Benchmark") {
			t.Errorf("entry %q does not name a benchmark", e.Name)
		}
		if seen[e.Name] {
			t.Errorf("duplicate baseline entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.Iterations < 1 {
			t.Errorf("%s: iterations = %d", e.Name, e.Iterations)
		}
		if ns := e.Metrics["ns/op"]; ns <= 0 {
			t.Errorf("%s: ns/op = %v", e.Name, ns)
		}
	}
	// The headline experiments must stay present in the baseline.
	for _, want := range []string{
		"BenchmarkTable1SeedGeneration",
		"BenchmarkCrawlThroughput",
		"BenchmarkTable4EntityExtraction",
		"BenchmarkConsolidatedFlow",
	} {
		if !seen[want] {
			t.Errorf("baseline is missing %s", want)
		}
	}
}
