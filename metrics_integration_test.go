package webtextie

// End-to-end test of the observability layer: one registry receives a
// focused crawl and a dataflow execution, and the rendered snapshot must
// carry per-cycle fetch counts, per-operator record counts, and the
// per-page processing-cost histogram. The crawler instruments observe
// only virtual-clock values, so that subset must be bit-identical across
// same-seed runs.

import (
	"strings"
	"testing"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/dataflow"
	"webtextie/internal/obs"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// crawlerSubset extracts the deterministic crawler.* part of a snapshot.
func crawlerSubset(s obs.Snapshot) obs.Snapshot {
	out := obs.Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]obs.HistSnapshot{},
	}
	for k, v := range s.Counters {
		if strings.HasPrefix(k, "crawler.") {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if strings.HasPrefix(k, "crawler.") {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Hists {
		if strings.HasPrefix(k, "crawler.") {
			out.Hists[k] = v
		}
	}
	return out
}

type integrationRun struct {
	snap  obs.Snapshot
	stats crawler.Stats
	exec  *dataflow.ExecStats
	plan  *dataflow.Plan
}

// runInstrumented drives a small crawl and a small dataflow execution
// into one shared registry.
func runInstrumented(t *testing.T) integrationRun {
	t.Helper()
	reg := obs.New()

	// Crawl (same construction as the crawler package's test pipeline).
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 400, Drugs: 120, Diseases: 120}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	webCfg := synthweb.DefaultConfig()
	webCfg.NumHosts = 40
	web := synthweb.New(webCfg, gen)
	clf := classify.New()
	r := rng.New(3)
	for i := 0; i < 200; i++ {
		clf.Learn(gen.Doc(r, textgen.Medline, "m").Text, classify.Relevant)
		clf.Learn(gen.Doc(r, textgen.Irrelevant, "w").Text, classify.Irrelevant)
	}
	catalog := seeds.BuildCatalog(4, lex, seeds.CatalogSizes{General: 8, Disease: 40, Drug: 30, Gene: 50})
	seedURLs := seeds.Generate(seeds.DefaultEngines(5, web), catalog).SeedURLs
	cfg := crawler.DefaultConfig()
	cfg.MaxPages = 150
	res := crawler.New(cfg, web, clf).WithMetrics(reg).Run(seedURLs)

	// Dataflow over the crawled net text: src -> length filter -> sink op.
	plan := &dataflow.Plan{}
	src := plan.Add(&dataflow.Op{Name: "src", Pkg: dataflow.BASE, Selectivity: 1,
		Fn: func(rec dataflow.Record, emit dataflow.Emit) error { emit(rec); return nil }})
	long := plan.Add(&dataflow.Op{Name: "long", Pkg: dataflow.BASE, Filter: true, Selectivity: 0.5,
		Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
			if len(rec["text"].(string)) >= 200 {
				emit(rec)
			}
			return nil
		}}, src)
	plan.Add(&dataflow.Op{Name: "count", Pkg: dataflow.BASE, Selectivity: 1,
		Fn: func(rec dataflow.Record, emit dataflow.Emit) error { emit(rec); return nil }}, long)
	var recs []dataflow.Record
	for _, p := range res.Relevant {
		recs = append(recs, dataflow.Record{"id": p.URL, "text": p.NetText})
	}
	if len(recs) == 0 {
		t.Fatal("crawl produced no relevant pages")
	}
	_, exec, err := dataflow.Execute(plan, recs, dataflow.ExecConfig{DoP: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return integrationRun{snap: reg.Snapshot(), stats: res.Stats, exec: exec, plan: plan}
}

func TestMetricsIntegration(t *testing.T) {
	run := runInstrumented(t)
	snap, st := run.snap, run.stats

	// Per-cycle fetch counts.
	if got := snap.Counter("crawler.cycles"); got != int64(st.Cycles) {
		t.Errorf("crawler.cycles = %d, Stats says %d", got, st.Cycles)
	}
	h, ok := snap.Hist("crawler.cycle.fetched")
	if !ok || h.Count != int64(st.Cycles) || int64(h.Sum) != int64(st.Fetched) {
		t.Errorf("crawler.cycle.fetched count=%d sum=%v, want count=%d sum=%d",
			h.Count, h.Sum, st.Cycles, st.Fetched)
	}

	// The per-page processing-cost histogram covers every fetch attempt.
	pc, ok := snap.Hist("crawler.page.cost.ms")
	if !ok || pc.Count != int64(st.Fetched+st.FetchErrors) {
		t.Errorf("crawler.page.cost.ms count = %d, want %d", pc.Count, st.Fetched+st.FetchErrors)
	}

	// Per-operator record counts agree with ExecStats.
	for _, n := range run.plan.Nodes() {
		ns := run.exec.PerNode[n.ID()]
		if ns == nil {
			t.Fatalf("no ExecStats for node %d", n.ID())
		}
		if got := snap.Counter(dataflow.MetricName(n, "in")); got != ns.In {
			t.Errorf("%s = %d, ExecStats.In = %d", dataflow.MetricName(n, "in"), got, ns.In)
		}
		if got := snap.Counter(dataflow.MetricName(n, "out")); got != ns.Out {
			t.Errorf("%s = %d, ExecStats.Out = %d", dataflow.MetricName(n, "out"), got, ns.Out)
		}
	}

	// The rendered snapshot mentions every layer.
	text := snap.Text()
	for _, want := range []string{
		"counter crawler.fetch.ok",
		"counter dataflow.op.00.src.in",
		"counter dataflow.op.01.long.out",
		"hist    crawler.page.cost.ms",
		"hist    crawler.cycle.fetched",
		"gauge   crawler.frontier.known",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text is missing %q\n%s", want, text)
		}
	}
}

func TestMetricsIntegrationDeterministic(t *testing.T) {
	a := crawlerSubset(runInstrumented(t).snap)
	b := crawlerSubset(runInstrumented(t).snap)
	if at, bt := a.Text(), b.Text(); at != bt {
		t.Fatalf("crawler metrics differ across same-seed runs:\n--- run 1\n%s\n--- run 2\n%s", at, bt)
	}
}
