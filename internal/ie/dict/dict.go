// Package dict implements dictionary-based named entity recognition in the
// style the paper uses ("an automaton-based matching algorithm that quickly
// retrieves mentions of entities even for large dictionaries" [11], §3.2):
// an Aho-Corasick automaton over dictionary surface forms, expanded with
// suffix/variant rules ("we transformed each dictionary term into a regular
// expression ... the transformations almost only affect very short word
// suffixes", §4.2).
//
// Two properties of the original tools are reproduced faithfully because
// the evaluation depends on them:
//
//   - construction cost: building the automaton dominates startup (the
//     paper's gene dictionary took ~20 minutes to load, §4.2), which puts a
//     hard floor under every scale-out curve (Fig 5);
//   - memory appetite: the expanded automaton is much larger than the raw
//     dictionary (§4.2: 6-20 GB per worker at 700K-entry scale). Build
//     statistics expose node counts and byte estimates that feed the
//     simulated cluster's memory model.
package dict

import (
	"sort"
	"strings"
	"time"

	"webtextie/internal/obs"
)

// Options controls dictionary expansion.
type Options struct {
	// Variants enables surface-form expansion (case folding handled
	// separately): plural "s"/"es", hyphen/space alternation. Disabling it
	// is the recall-vs-memory ablation.
	Variants bool
	// CaseInsensitive folds matching to lower case (drug and disease names
	// appear in arbitrary case on the web; gene symbols keep case via
	// exact duplicates in the surface list).
	CaseInsensitive bool
}

// DefaultOptions matches the paper's setup.
func DefaultOptions() Options { return Options{Variants: true, CaseInsensitive: true} }

// Match is one dictionary hit.
type Match struct {
	// Start/End are byte offsets into the searched text.
	Start, End int
	// Surface is the matched text slice.
	Surface string
	// Canonical is the dictionary form the variant expanded from.
	Canonical string
}

// BuildStats records construction cost and size.
type BuildStats struct {
	// Entries is the number of canonical dictionary entries.
	Entries int
	// Surfaces is the number of patterns after variant expansion.
	Surfaces int
	// Nodes is the automaton node count.
	Nodes int
	// BuildTime is the wall-clock construction time.
	BuildTime time.Duration
}

// ApproxBytes estimates the automaton's memory footprint (nodes dominate:
// each node carries a sparse edge map and fail/output links).
func (s BuildStats) ApproxBytes() int64 {
	// ~96 bytes of fixed node state plus edge map overhead.
	return int64(s.Nodes) * 160
}

// node is one Aho-Corasick state.
type node struct {
	next map[byte]int32
	fail int32
	// out is the index+1 into the matcher's canonical table if a pattern
	// ends here (0 = none); outLink chains suffix outputs.
	out     int32
	outLen  int32
	outLink int32
}

// Matcher is a built dictionary automaton.
type Matcher struct {
	Name  string
	opts  Options
	nodes []node
	// canon maps output ids to canonical forms.
	canon []string
	stats BuildStats
}

// Stats returns the build statistics.
func (m *Matcher) Stats() BuildStats { return m.stats }

// expandVariants produces the surface variants of one dictionary term.
func expandVariants(term string, opts Options) []string {
	out := []string{term}
	if !opts.Variants {
		return out
	}
	// Plural variants ("regular expression transformations almost only
	// affect very short word suffixes").
	if len(term) > 3 && !strings.HasSuffix(term, "s") {
		out = append(out, term+"s")
		if strings.HasSuffix(term, "x") || strings.HasSuffix(term, "ch") {
			out = append(out, term+"es")
		}
	}
	// Hyphen/space alternation.
	if strings.Contains(term, "-") {
		out = append(out, strings.ReplaceAll(term, "-", " "))
	}
	if strings.Contains(term, " ") {
		out = append(out, strings.ReplaceAll(term, " ", "-"))
	}
	return out
}

// Build constructs the automaton from dictionary surface forms.
func Build(name string, surfaces []string, opts Options) *Matcher {
	sp := obs.Default().StartSpan("dict.build")
	m := &Matcher{Name: name, opts: opts}
	m.nodes = append(m.nodes, node{next: map[byte]int32{}, fail: 0})

	addPattern := func(pat, canonical string) {
		if pat == "" {
			return
		}
		key := pat
		if opts.CaseInsensitive {
			key = strings.ToLower(pat)
		}
		cur := int32(0)
		for i := 0; i < len(key); i++ {
			c := key[i]
			nxt, ok := m.nodes[cur].next[c]
			if !ok {
				nxt = int32(len(m.nodes))
				m.nodes = append(m.nodes, node{next: map[byte]int32{}})
				m.nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		if m.nodes[cur].out == 0 {
			m.canon = append(m.canon, canonical)
			m.nodes[cur].out = int32(len(m.canon))
			m.nodes[cur].outLen = int32(len(key))
		}
	}

	seen := map[string]bool{}
	for _, s := range surfaces {
		m.stats.Entries++
		for _, v := range expandVariants(s, opts) {
			k := v
			if opts.CaseInsensitive {
				k = strings.ToLower(v)
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			m.stats.Surfaces++
			addPattern(v, s)
		}
	}

	// BFS to set fail links and output chains. Edges are walked in byte
	// order (not map order) so the traversal — and everything derived from
	// it — is identical across runs.
	queue := make([]int32, 0, len(m.nodes))
	for _, c := range sortedEdges(&m.nodes[0]) {
		nxt := m.nodes[0].next[c]
		m.nodes[nxt].fail = 0
		queue = append(queue, nxt)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, c := range sortedEdges(&m.nodes[u]) {
			v := m.nodes[u].next[c]
			queue = append(queue, v)
			// Follow fail links from u until a state with a c-edge exists.
			f := m.nodes[u].fail
			for {
				if w, ok := m.nodes[f].next[c]; ok && w != v {
					m.nodes[v].fail = w
					break
				}
				if f == 0 {
					m.nodes[v].fail = 0
					break
				}
				f = m.nodes[f].fail
			}
			fv := m.nodes[v].fail
			if m.nodes[fv].out != 0 {
				m.nodes[v].outLink = fv
			} else {
				m.nodes[v].outLink = m.nodes[fv].outLink
			}
		}
	}
	m.stats.Nodes = len(m.nodes)
	m.stats.BuildTime = sp.End()
	return m
}

// sortedEdges returns a node's outgoing edge labels in byte order, so BFS
// never observes Go's per-run randomized map iteration order.
func sortedEdges(n *node) []byte {
	cs := make([]byte, 0, len(n.next))
	for c := range n.next {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// isWordByte reports whether a byte is part of a word (no boundary).
func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// asciiOnly reports whether s contains only ASCII bytes.
func asciiOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// lowerASCII folds one ASCII byte to lower case. For ASCII input this is
// exactly what strings.ToLower would produce, byte for byte — the scan
// below relies on that equivalence (pinned by test).
func lowerASCII(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// Find returns all whole-word matches in text, resolved left-to-right with
// the longest match winning at each position. The single allocation is the
// result slice; callers on the per-document path should prefer FindAppend
// with a reused buffer.
//
//lintx:hotpath Aho–Corasick scan, run per sentence per document per dictionary (ROADMAP item 2).
func (m *Matcher) Find(text string) []Match {
	return m.FindAppend(make([]Match, 0, 8), text)
}

// FindAppend is Find writing into a caller-owned buffer: it appends the
// resolved matches to dst and returns the extended slice. With a buffer
// of sufficient capacity the whole match path is allocation-free for
// ASCII documents; case folding happens per byte during the scan instead
// of copying the document up front. Non-ASCII documents fall back to the
// whole-copy fold, preserving the exact offsets the original
// implementation produced.
//
//lintx:hotpath zero-alloc entry of the Aho–Corasick scan; budgets pinned by alloc_gate_test.
func (m *Matcher) FindAppend(dst []Match, text string) []Match {
	base := len(dst)
	if m.opts.CaseInsensitive && !asciiOnly(text) {
		//lintx:ignore allocfree non-ASCII fold copies once per document; the ASCII fast path covers the hot mass of the crawl
		search := strings.ToLower(text)
		dst = m.scan(dst, text, search, false)
	} else {
		dst = m.scan(dst, text, text, m.opts.CaseInsensitive)
	}
	n := resolveLongest(dst[base:])
	return dst[:base+n]
}

// scan runs the automaton over search, appending raw (unresolved) whole
// word matches to dst. Surfaces slice text, which must be byte-aligned
// with search. With foldASCII set, bytes are case-folded on the fly.
func (m *Matcher) scan(dst []Match, text, search string, foldASCII bool) []Match {
	cur := int32(0)
	for i := 0; i < len(search); i++ {
		c := search[i]
		if foldASCII {
			c = lowerASCII(c)
		}
		for {
			if nxt, ok := m.nodes[cur].next[c]; ok {
				cur = nxt
				break
			}
			if cur == 0 {
				break
			}
			cur = m.nodes[cur].fail
		}
		// Collect outputs along the output chain.
		for n := cur; n != 0; {
			nd := &m.nodes[n]
			if nd.out != 0 {
				end := i + 1
				start := end - int(nd.outLen)
				// Whole-word constraint.
				if (start == 0 || !isWordByte(search[start-1])) &&
					(end == len(search) || !isWordByte(search[end])) {
					dst = append(dst, Match{
						Start: start, End: end,
						Surface:   text[start:end],
						Canonical: m.canon[nd.out-1],
					})
				}
			}
			n = nd.outLink
		}
	}
	return dst
}

// resolveLongest keeps, among overlapping matches, the longest one
// (leftmost on ties). It compacts raw in place — writes trail reads, so
// the aliasing is safe — and returns the surviving count.
func resolveLongest(raw []Match) int {
	if len(raw) <= 1 {
		return len(raw)
	}
	// Sort by start, then by longer-first.
	sortMatches(raw)
	out := raw[:0]
	lastEnd := -1
	for _, r := range raw {
		if r.Start >= lastEnd {
			out = append(out, r)
			lastEnd = r.End
			continue
		}
		// Overlap: keep the longer of the previous and current.
		prev := &out[len(out)-1]
		if r.End-r.Start > prev.End-prev.Start && r.Start == prev.Start {
			*prev = r
			lastEnd = r.End
		}
	}
	return len(out)
}

func sortMatches(ms []Match) {
	// Insertion sort is fine: per-sentence match counts are small.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0; j-- {
			a, b := ms[j-1], ms[j]
			if b.Start < a.Start || (b.Start == a.Start && b.End-b.Start > a.End-a.Start) {
				ms[j-1], ms[j] = b, a
			} else {
				break
			}
		}
	}
}
