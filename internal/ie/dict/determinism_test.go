package dict

import (
	"reflect"
	"testing"
)

// TestBuildTwoRunIdentity: two builds from the same surface list must
// produce structurally identical automata — same node table (edges, fail
// links, output chains), same build stats, and the same matches. Guards
// the BFS construction, which walks edge maps in sorted byte order
// instead of Go's per-run randomized map iteration order.
func TestBuildTwoRunIdentity(t *testing.T) {
	surfaces := []string{
		"p53", "BRCA1", "insulin", "insulin-like growth factor",
		"growth factor", "kinase", "map kinase", "mapk",
	}
	a := Build("genes", surfaces, DefaultOptions())
	b := Build("genes", surfaces, DefaultOptions())

	if len(a.nodes) != len(b.nodes) {
		t.Fatalf("node counts differ across runs: %d vs %d", len(a.nodes), len(b.nodes))
	}
	for i := range a.nodes {
		na, nb := &a.nodes[i], &b.nodes[i]
		if na.fail != nb.fail || na.out != nb.out || na.outLen != nb.outLen || na.outLink != nb.outLink {
			t.Errorf("node %d links differ across runs: %+v vs %+v", i, *na, *nb)
		}
		if !reflect.DeepEqual(na.next, nb.next) {
			t.Errorf("node %d edges differ across runs: %v vs %v", i, na.next, nb.next)
		}
	}

	sa, sb := a.Stats(), b.Stats()
	sa.BuildTime, sb.BuildTime = 0, 0 // wall clock — the one sanctioned difference
	if sa != sb {
		t.Errorf("build stats differ across runs: %+v vs %+v", sa, sb)
	}

	text := "The insulin-like growth factor pathway activates MAP kinase near p53."
	if ma, mb := a.Find(text), b.Find(text); !reflect.DeepEqual(ma, mb) {
		t.Errorf("matches differ across runs:\n  %v\n  %v", ma, mb)
	}
}
