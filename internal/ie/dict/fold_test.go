package dict

import (
	"strings"
	"testing"

	"webtextie/internal/rng"
)

// TestASCIIFoldEquivalence pins the equivalence the zero-alloc fast path
// rests on: for ASCII text, the per-byte fold during the scan produces
// exactly the matches of the legacy whole-copy strings.ToLower fold.
func TestASCIIFoldEquivalence(t *testing.T) {
	m := Build("t", []string{"Alpha", "BETA-max", "a1"}, DefaultOptions())
	r := rng.New(97)
	for trial := 0; trial < 200; trial++ {
		text := randomText(r, 3+r.Intn(40))
		fast := m.scan(nil, text, text, true)
		slow := m.scan(nil, text, strings.ToLower(text), false)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: %d vs %d raw matches on %q", trial, len(fast), len(slow), text)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("trial %d: raw match %d differs: %+v vs %+v on %q",
					trial, i, fast[i], slow[i], text)
			}
		}
	}
}

// TestFindAppendReusesBuffer checks the caller-owned-buffer contract:
// results land after existing elements, and a warm buffer round-trips
// without reallocating.
func TestFindAppendReusesBuffer(t *testing.T) {
	m := Build("t", []string{"alpha", "beta"}, DefaultOptions())
	text := "alpha then BETA then alpha"

	want := m.Find(text)
	if len(want) != 3 {
		t.Fatalf("Find returned %d matches, want 3: %+v", len(want), want)
	}

	buf := make([]Match, 0, 16)
	buf = append(buf, Match{Start: -1, End: -1})
	buf = m.FindAppend(buf, text)
	if len(buf) != 1+len(want) {
		t.Fatalf("FindAppend appended %d matches, want %d", len(buf)-1, len(want))
	}
	if buf[0].Start != -1 {
		t.Fatal("FindAppend clobbered existing elements")
	}
	for i, w := range want {
		if buf[1+i] != w {
			t.Errorf("match %d: %+v, want %+v", i, buf[1+i], w)
		}
	}

	// Warm reuse: same backing array must come back.
	buf = buf[:0]
	before := &buf[:1][0]
	buf = m.FindAppend(buf, text)
	if &buf[0] != before {
		t.Error("FindAppend reallocated despite sufficient capacity")
	}
}

// TestNonASCIIFallback keeps the legacy offset behavior for non-ASCII
// documents (the fold copies the document; offsets index the fold).
func TestNonASCIIFallback(t *testing.T) {
	m := Build("t", []string{"alpha"}, DefaultOptions())
	text := "héllo Alpha wörld"
	got := m.Find(text)
	if len(got) != 1 || got[0].Surface != "Alpha" {
		t.Fatalf("non-ASCII text: got %+v, want one Alpha match", got)
	}
}
