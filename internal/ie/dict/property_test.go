package dict

// Property test: the Aho-Corasick matcher must agree with a naive
// reference implementation on random dictionaries and texts.

import (
	"strings"
	"testing"

	"webtextie/internal/rng"
)

// naiveFind is the O(text × dict) reference: whole-word, case-insensitive,
// leftmost-longest.
func naiveFind(text string, surfaces []string) []Match {
	lower := strings.ToLower(text)
	isWord := func(c byte) bool {
		return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
	}
	var raw []Match
	for _, s := range surfaces {
		ls := strings.ToLower(s)
		for from := 0; ; {
			i := strings.Index(lower[from:], ls)
			if i < 0 {
				break
			}
			start := from + i
			end := start + len(ls)
			if (start == 0 || !isWord(lower[start-1])) &&
				(end == len(lower) || !isWord(lower[end])) {
				raw = append(raw, Match{Start: start, End: end,
					Surface: text[start:end], Canonical: s})
			}
			from = start + 1
		}
	}
	return raw[:resolveLongest(raw)]
}

var pool = []string{"alpha", "beta", "gamma", "alphabet", "bet", "gam", "a1", "x-y"}

func randomText(r *rng.RNG, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			b.WriteString(pool[r.Intn(len(pool))])
		case 1:
			b.WriteString("word")
		case 2:
			b.WriteString("Alpha")
		case 3:
			b.WriteByte(byte('a' + r.Intn(26)))
		default:
		}
		if r.Bool(0.8) {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func TestMatcherAgreesWithReference(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 200; trial++ {
		// Random dictionary subset (no variants: the reference does not
		// model them).
		var surfaces []string
		for _, s := range pool {
			if r.Bool(0.6) {
				surfaces = append(surfaces, s)
			}
		}
		if len(surfaces) == 0 {
			continue
		}
		m := Build("t", surfaces, Options{Variants: false, CaseInsensitive: true})
		text := randomText(r, 3+r.Intn(30))
		got := m.Find(text)
		want := naiveFind(text, surfaces)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d matches\ntext=%q\ndict=%v\ngot=%+v\nwant=%+v",
				trial, len(got), len(want), text, surfaces, got, want)
		}
		for i := range got {
			if got[i].Start != want[i].Start || got[i].End != want[i].End {
				t.Fatalf("trial %d: match %d differs: %+v vs %+v\ntext=%q",
					trial, i, got[i], want[i], text)
			}
		}
	}
}
