package dict

import (
	"fmt"
	"strings"
	"testing"

	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func TestFindBasic(t *testing.T) {
	m := Build("disease", []string{"thymoma", "chronic pain", "nausea"}, DefaultOptions())
	text := "Patients with thymoma reported nausea and chronic pain daily."
	got := m.Find(text)
	if len(got) != 3 {
		t.Fatalf("matches = %+v", got)
	}
	for _, match := range got {
		if text[match.Start:match.End] != match.Surface {
			t.Errorf("span/surface mismatch: %+v", match)
		}
	}
	if got[0].Surface != "thymoma" || got[1].Surface != "nausea" || got[2].Surface != "chronic pain" {
		t.Errorf("order/content: %+v", got)
	}
}

func TestWholeWordOnly(t *testing.T) {
	m := Build("drug", []string{"aspirin"}, DefaultOptions())
	// "aspirins" matches via the plural variant and the final bare
	// "aspirin" matches; "aspirinX" must not.
	if got := m.Find("aspirins-like compound aspirinX and aspirin."); len(got) != 2 {
		t.Fatalf("matches = %+v", got)
	}
	m2 := Build("drug", []string{"aspirin"}, Options{CaseInsensitive: true})
	if got := m2.Find("XaspirinY"); len(got) != 0 {
		t.Fatalf("substring matched: %+v", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	m := Build("drug", []string{"Aspirin"}, DefaultOptions())
	got := m.Find("ASPIRIN and aspirin and Aspirin")
	if len(got) != 3 {
		t.Fatalf("matches = %+v", got)
	}
	for _, match := range got {
		if match.Canonical != "Aspirin" {
			t.Errorf("canonical = %q", match.Canonical)
		}
	}
}

func TestCaseSensitiveOption(t *testing.T) {
	m := Build("gene", []string{"BRCA1"}, Options{Variants: false, CaseInsensitive: false})
	if got := m.Find("brca1 BRCA1"); len(got) != 1 {
		t.Fatalf("matches = %+v", got)
	}
}

func TestVariantExpansion(t *testing.T) {
	m := Build("drug", []string{"beta-blocker"}, DefaultOptions())
	got := m.Find("a beta-blocker and a beta blocker")
	if len(got) != 2 {
		t.Fatalf("hyphen/space variant: %+v", got)
	}
	for _, match := range got {
		if match.Canonical != "beta-blocker" {
			t.Errorf("canonical = %q", match.Canonical)
		}
	}
	// No variants option.
	m2 := Build("drug", []string{"beta-blocker"}, Options{Variants: false, CaseInsensitive: true})
	if got := m2.Find("a beta blocker"); len(got) != 0 {
		t.Fatalf("variants leaked: %+v", got)
	}
}

func TestPluralVariant(t *testing.T) {
	m := Build("disease", []string{"carcinoma"}, DefaultOptions())
	if got := m.Find("multiple carcinomas found"); len(got) != 1 {
		t.Fatalf("plural: %+v", got)
	}
}

func TestLongestMatchWins(t *testing.T) {
	m := Build("disease", []string{"pain", "chronic pain"}, DefaultOptions())
	got := m.Find("suffering from chronic pain today")
	if len(got) != 1 || got[0].Surface != "chronic pain" {
		t.Fatalf("matches = %+v", got)
	}
}

func TestOverlapSuppressed(t *testing.T) {
	m := Build("x", []string{"renal carcinoma", "carcinoma cells"}, DefaultOptions())
	got := m.Find("renal carcinoma cells")
	if len(got) != 1 {
		t.Fatalf("overlapping matches not resolved: %+v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	m := Build("x", nil, DefaultOptions())
	if got := m.Find("anything at all"); len(got) != 0 {
		t.Fatalf("empty dictionary matched: %+v", got)
	}
	m2 := Build("x", []string{"term"}, DefaultOptions())
	if got := m2.Find(""); len(got) != 0 {
		t.Fatalf("empty text matched: %+v", got)
	}
}

func TestStats(t *testing.T) {
	m := Build("gene", []string{"BRCA1", "TP53", "beta-catenin"}, DefaultOptions())
	st := m.Stats()
	if st.Entries != 3 {
		t.Errorf("entries = %d", st.Entries)
	}
	if st.Surfaces < 3 {
		t.Errorf("surfaces = %d", st.Surfaces)
	}
	if st.Nodes < 10 {
		t.Errorf("nodes = %d", st.Nodes)
	}
	if st.ApproxBytes() <= 0 {
		t.Error("no memory estimate")
	}
	if st.BuildTime < 0 {
		t.Error("negative build time")
	}
}

func TestVariantsIncreaseAutomatonSize(t *testing.T) {
	// The memory-vs-recall ablation: expansion must grow the automaton.
	surfaces := []string{"alpha-synuclein", "beta-blocker", "tumor necrosis factor"}
	with := Build("x", surfaces, DefaultOptions())
	without := Build("x", surfaces, Options{Variants: false, CaseInsensitive: true})
	if with.Stats().Nodes <= without.Stats().Nodes {
		t.Errorf("variant automaton %d nodes <= plain %d",
			with.Stats().Nodes, without.Stats().Nodes)
	}
}

func TestLexiconScaleMatching(t *testing.T) {
	// Build from a realistic synthetic dictionary and verify every
	// in-dictionary canonical name is found in a carrier sentence.
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 2000, Drugs: 300, Diseases: 300}, 1.0)
	m := Build("gene", lex.DictionarySurfaces(textgen.Gene), DefaultOptions())
	checked := 0
	for _, e := range lex.ByType(textgen.Gene)[:200] {
		text := fmt.Sprintf("The %s gene was analyzed.", e.Name)
		got := m.Find(text)
		found := false
		for _, match := range got {
			if match.Surface == e.Name {
				found = true
			}
		}
		if !found {
			t.Fatalf("dictionary name %q not found in %q (got %+v)", e.Name, text, got)
		}
		checked++
	}
	if checked != 200 {
		t.Fatalf("checked %d", checked)
	}
}

func TestBuildCostGrowsWithDictionary(t *testing.T) {
	// Startup-cost property behind Fig 5: bigger dictionaries → bigger
	// automata. (Time is machine-dependent; nodes are the stable proxy.)
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 3000, Drugs: 100, Diseases: 100}, 1.0)
	all := lex.DictionarySurfaces(textgen.Gene)
	small := Build("g", all[:500], DefaultOptions())
	big := Build("g", all, DefaultOptions())
	if big.Stats().Nodes <= small.Stats().Nodes*2 {
		t.Errorf("node growth too small: %d vs %d", big.Stats().Nodes, small.Stats().Nodes)
	}
}

func TestFindLinearishScan(t *testing.T) {
	// Find must terminate and be correct on adversarial repetitive input.
	m := Build("x", []string{"aa", "aaa", "aaaa"}, Options{Variants: false, CaseInsensitive: true})
	text := strings.Repeat("a", 200) + " " + strings.Repeat("ab ", 100)
	got := m.Find(text)
	// The 200-a run is one word: only a full-word match of length 200 could
	// match, and no pattern is that long → the run yields nothing.
	for _, match := range got {
		if match.Surface == "" {
			t.Fatal("empty match")
		}
	}
}

func BenchmarkBuildGeneDictionary(b *testing.B) {
	lex := textgen.NewLexicon(rng.New(1), textgen.DefaultLexiconSizes(), 1.0)
	surfaces := lex.DictionarySurfaces(textgen.Gene)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build("gene", surfaces, DefaultOptions())
	}
}

func BenchmarkFind(b *testing.B) {
	lex := textgen.NewLexicon(rng.New(1), textgen.DefaultLexiconSizes(), 1.0)
	m := Build("gene", lex.DictionarySurfaces(textgen.Gene), DefaultOptions())
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	d := gen.Doc(rng.New(9), textgen.Medline, "bench")
	b.SetBytes(int64(len(d.Text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Find(d.Text)
	}
}
