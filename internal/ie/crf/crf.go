// Package crf implements the machine-learning entity taggers of §3.2: a
// linear-chain conditional model over BIO labels with Viterbi decoding,
// standing in for BANNER (genes), ChemSpot (drugs) and the authors'
// Mallet-based disease tagger.
//
// Training substitution (documented in DESIGN.md): the original tools
// estimate CRF weights by L-BFGS over the conditional log-likelihood; we
// train the same feature weights with the averaged structured perceptron,
// a standard surrogate that shares the model family, the feature templates
// and — crucially for this paper — the decode path and its cost profile.
// What the evaluation depends on is reproduced:
//
//   - decoding is orders of magnitude slower than dictionary matching
//     (Fig 3b): every token evaluates dozens of feature hashes per label
//     pair instead of one automaton transition per byte;
//   - models are trained on Medline-profile text only ("all ML-based
//     methods used in this project employ models trained on Medline
//     abstracts since no other training data is available", §5), so on web
//     text the learned reliance on word shape makes the gene tagger label
//     three-letter acronyms as genes — the §4.3.2 false-positive explosion
//     the paper mitigates by filtering TLAs.
package crf

import (
	"strings"

	"webtextie/internal/nlp"
	"webtextie/internal/textgen"
)

// Label is a BIO tag.
type Label int8

// The BIO label inventory.
const (
	O Label = iota
	B
	I
	numLabels
)

// Sentence is one training example.
type Sentence struct {
	Words  []string
	Labels []Label
}

// Config controls training.
type Config struct {
	// Epochs is the number of perceptron passes.
	Epochs int
	// UseShapeFeatures toggles the word-shape templates. Disabling them is
	// the ablation that removes the TLA failure mode (at a recall cost).
	UseShapeFeatures bool
	// Seed orders nothing here (training is deterministic: fixed example
	// order), but is kept for API stability with the other learners.
	Seed uint64
}

// DefaultConfig returns the standard training setup.
func DefaultConfig() Config {
	return Config{Epochs: 5, UseShapeFeatures: true}
}

// Tagger is a trained linear-chain model for one entity class.
type Tagger struct {
	// Entity is the class this tagger extracts.
	Entity textgen.EntityType
	cfg    Config

	// weights maps feature -> per-label weight vector.
	weights map[string][numLabels]float64
	// trans holds transition weights [prev][cur].
	trans [numLabels][numLabels]float64
}

// featureAppender collects the active features of one position.
type featureAppender struct {
	feats []string
}

func (f *featureAppender) add(s string) { f.feats = append(f.feats, s) }

// shape returns the coarse word shape (same inventory as the POS tagger's
// unknown-word model; BANNER uses comparable orthographic features).
func shape(w string) string {
	hasDigit, hasUpper, hasLower, hasHyphen := false, false, false, false
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case c >= '0' && c <= '9':
			hasDigit = true
		case c >= 'A' && c <= 'Z':
			hasUpper = true
		case c >= 'a' && c <= 'z':
			hasLower = true
		case c == '-':
			hasHyphen = true
		}
	}
	switch {
	case hasDigit && !hasUpper && !hasLower:
		return "num"
	case hasDigit && hasUpper:
		return "alnumU"
	case hasDigit:
		return "alnum"
	case hasUpper && !hasLower && len(w) == 3:
		return "tla"
	case hasUpper && !hasLower && len(w) <= 5:
		return "acro"
	case hasUpper && !hasLower:
		return "upper"
	case hasUpper:
		return "cap"
	case hasHyphen:
		return "hyph"
	default:
		return "lower"
	}
}

// IsTLA reports whether a surface form is a bare three-letter acronym, the
// filter the paper applies to the ML gene annotations ("we filtered all
// TLAs from the list of ML-tagged gene names", §4.3.2).
func IsTLA(s string) bool {
	if len(s) != 3 {
		return false
	}
	for i := 0; i < 3; i++ {
		if s[i] < 'A' || s[i] > 'Z' {
			return false
		}
	}
	return true
}

// features computes the active features at position i.
func (t *Tagger) features(words []string, i int, f *featureAppender) {
	f.feats = f.feats[:0]
	w := words[i]
	lw := strings.ToLower(w)
	f.add("w=" + lw)
	if n := len(lw); n > 3 {
		f.add("suf3=" + lw[n-3:])
		f.add("pre3=" + lw[:3])
	}
	if t.cfg.UseShapeFeatures {
		f.add("sh=" + shape(w))
	}
	if i > 0 {
		p := strings.ToLower(words[i-1])
		f.add("p=" + p)
		f.add("pw=" + p + "|" + lw)
		if t.cfg.UseShapeFeatures {
			f.add("psh=" + shape(words[i-1]))
		}
	} else {
		f.add("p=<s>")
	}
	if i+1 < len(words) {
		n := strings.ToLower(words[i+1])
		f.add("n=" + n)
		if t.cfg.UseShapeFeatures {
			f.add("nsh=" + shape(words[i+1]))
		}
	} else {
		f.add("n=</s>")
	}
	if i > 1 {
		f.add("pp=" + strings.ToLower(words[i-2]))
	}
	if i+2 < len(words) {
		f.add("nn=" + strings.ToLower(words[i+2]))
	}
}

// score returns the per-label emission scores for the active features.
func (t *Tagger) score(feats []string) [numLabels]float64 {
	var s [numLabels]float64
	for _, ft := range feats {
		if wv, ok := t.weights[ft]; ok {
			for l := Label(0); l < numLabels; l++ {
				s[l] += wv[l]
			}
		}
	}
	return s
}

// viterbi decodes the best label sequence.
func (t *Tagger) viterbi(words []string) []Label {
	n := len(words)
	if n == 0 {
		return nil
	}
	const L = int(numLabels)
	delta := make([][numLabels]float64, n)
	back := make([][numLabels]int8, n)
	var f featureAppender
	t.features(words, 0, &f)
	em := t.score(f.feats)
	for l := 0; l < L; l++ {
		delta[0][l] = em[l]
	}
	// I cannot start a sentence.
	delta[0][I] -= 1000
	for i := 1; i < n; i++ {
		t.features(words, i, &f)
		em = t.score(f.feats)
		for l := 0; l < L; l++ {
			best := delta[i-1][0] + t.trans[0][l]
			var arg int8
			for p := 1; p < L; p++ {
				if v := delta[i-1][p] + t.trans[p][l]; v > best {
					best = v
					arg = int8(p)
				}
			}
			// Structural constraint: I must follow B or I.
			if Label(l) == I && arg == int8(O) {
				// Recompute best among B, I only.
				best = delta[i-1][B] + t.trans[B][l]
				arg = int8(B)
				if v := delta[i-1][I] + t.trans[I][l]; v > best {
					best = v
					arg = int8(I)
				}
			}
			delta[i][l] = best + em[Label(l)]
			back[i][l] = arg
		}
	}
	bestL := 0
	for l := 1; l < L; l++ {
		if delta[n-1][l] > delta[n-1][bestL] {
			bestL = l
		}
	}
	out := make([]Label, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = Label(bestL)
		if i > 0 {
			bestL = int(back[i][bestL])
		}
	}
	return out
}

// Train fits a tagger for one entity class with the averaged structured
// perceptron. Training is deterministic.
func Train(entity textgen.EntityType, data []Sentence, cfg Config) *Tagger {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 5
	}
	t := &Tagger{Entity: entity, cfg: cfg, weights: map[string][numLabels]float64{}}

	// Averaging accumulators.
	acc := map[string][numLabels]float64{}
	var accTrans [numLabels][numLabels]float64
	steps := 1.0

	var f featureAppender
	update := func(words []string, i int, l Label, delta float64) {
		t.features(words, i, &f)
		for _, ft := range f.feats {
			wv := t.weights[ft]
			wv[l] += delta
			t.weights[ft] = wv
			av := acc[ft]
			av[l] += delta * steps
			acc[ft] = av
		}
	}

	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, s := range data {
			if len(s.Words) == 0 {
				continue
			}
			pred := t.viterbi(s.Words)
			for i := range s.Words {
				if pred[i] == s.Labels[i] {
					continue
				}
				update(s.Words, i, s.Labels[i], +1)
				update(s.Words, i, pred[i], -1)
			}
			for i := 1; i < len(s.Words); i++ {
				gp, gc := s.Labels[i-1], s.Labels[i]
				pp, pc := pred[i-1], pred[i]
				if gp == pp && gc == pc {
					continue
				}
				t.trans[gp][gc]++
				t.trans[pp][pc]--
				accTrans[gp][gc] += steps
				accTrans[pp][pc] -= steps
			}
			steps++
		}
	}

	// Average: w_avg = w - acc/steps.
	for ft, wv := range t.weights {
		av := acc[ft]
		for l := Label(0); l < numLabels; l++ {
			wv[l] -= av[l] / steps
		}
		t.weights[ft] = wv
	}
	for p := Label(0); p < numLabels; p++ {
		for c := Label(0); c < numLabels; c++ {
			t.trans[p][c] -= accTrans[p][c] / steps
		}
	}
	return t
}

// NumFeatures returns the learned feature count (model size proxy).
func (t *Tagger) NumFeatures() int { return len(t.weights) }

// Tag labels a tokenized sentence.
func (t *Tagger) Tag(words []string) []Label { return t.viterbi(words) }

// Match is an extracted mention.
type Match struct {
	// Start/End are byte offsets into the input text.
	Start, End int
	// Surface is the mention text.
	Surface string
}

// ExtractTokens converts a labelled token sequence into matches using the
// tokens' spans.
func ExtractTokens(tokens []nlp.TokenSpan, labels []Label) []Match {
	var out []Match
	var cur *Match
	for i, tok := range tokens {
		if i >= len(labels) {
			break
		}
		switch labels[i] {
		case B:
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &Match{Start: tok.Start, End: tok.End}
		case I:
			if cur == nil {
				cur = &Match{Start: tok.Start, End: tok.End}
			} else {
				cur.End = tok.End
			}
		default:
			if cur != nil {
				out = append(out, *cur)
				cur = nil
			}
		}
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}

// Extract runs sentence splitting, tokenization, decoding, and span
// assembly over raw text.
func (t *Tagger) Extract(text string) []Match {
	_, sentToks := nlp.SentenceTokens(text)
	var out []Match
	for _, toks := range sentToks {
		if len(toks) == 0 {
			continue
		}
		words := make([]string, len(toks))
		for i, tk := range toks {
			words[i] = tk.Text
		}
		labels := t.viterbi(words)
		ms := ExtractTokens(toks, labels)
		for i := range ms {
			ms[i].Surface = text[ms[i].Start:ms[i].End]
		}
		out = append(out, ms...)
	}
	return out
}

// FilterTLAs removes bare three-letter-acronym matches, the paper's
// post-hoc mitigation for the gene tagger on web text (§4.3.2).
func FilterTLAs(ms []Match) []Match {
	out := ms[:0]
	for _, m := range ms {
		if !IsTLA(m.Surface) {
			out = append(out, m)
		}
	}
	return out
}

// TrainingSentences converts generator gold documents into BIO training
// data for one entity class — the "trained on Medline abstracts" setup.
func TrainingSentences(docs []*textgen.Doc, entity textgen.EntityType) []Sentence {
	var out []Sentence
	for _, d := range docs {
		for _, s := range d.Sentences {
			sent := Sentence{
				Words:  make([]string, len(s.Tokens)),
				Labels: make([]Label, len(s.Tokens)),
			}
			for i, tok := range s.Tokens {
				sent.Words[i] = tok.Text
				switch {
				case tok.Ent != entity:
					sent.Labels[i] = O
				case tok.First:
					sent.Labels[i] = B
				default:
					sent.Labels[i] = I
				}
			}
			out = append(out, sent)
		}
	}
	return out
}
