package crf

import (
	"fmt"
	"testing"

	"webtextie/internal/nlp"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

// fixture builds a shared lexicon/generator and trained gene tagger.
type fixture struct {
	lex  *textgen.Lexicon
	gen  *textgen.Generator
	gene *Tagger
}

var cached *fixture

func getFixture(t testing.TB) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 400, Drugs: 120, Diseases: 120}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	r := rng.New(11)
	var docs []*textgen.Doc
	for i := 0; i < 400; i++ {
		docs = append(docs, gen.Doc(r, textgen.Medline, fmt.Sprint("m", i)))
	}
	gene := Train(textgen.Gene, TrainingSentences(docs, textgen.Gene), DefaultConfig())
	cached = &fixture{lex: lex, gen: gen, gene: gene}
	return cached
}

// evalF1 measures exact-span F1 of a tagger on fresh documents of a corpus.
func evalF1(t testing.TB, fx *fixture, tagger *Tagger, kind textgen.CorpusKind, n int) (p, r float64) {
	t.Helper()
	rg := rng.New(99)
	var tp, fp, fn int
	for i := 0; i < n; i++ {
		d := fx.gen.Doc(rg, kind, fmt.Sprint("e", i))
		gold := map[[2]int]bool{}
		for _, m := range d.Mentions {
			if m.Type == tagger.Entity {
				gold[[2]int{m.Start, m.End}] = true
			}
		}
		got := tagger.Extract(d.Text)
		for _, m := range got {
			if gold[[2]int{m.Start, m.End}] {
				tp++
				delete(gold, [2]int{m.Start, m.End})
			} else {
				fp++
			}
		}
		fn += len(gold)
	}
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	return p, r
}

func TestGeneTaggerQualityOnMedline(t *testing.T) {
	fx := getFixture(t)
	p, r := evalF1(t, fx, fx.gene, textgen.Medline, 60)
	// "On such data, ML-based NER is clearly superior" (§5): the tagger
	// must work well in-domain.
	if p < 0.70 {
		t.Errorf("Medline precision = %.3f, want >= 0.70", p)
	}
	if r < 0.70 {
		t.Errorf("Medline recall = %.3f, want >= 0.70", r)
	}
}

func TestMLBeatsDictionaryRecallOnOOV(t *testing.T) {
	// §3.2: "ML-based extraction methods often show much improved recall"
	// because dictionaries are incomplete. The CRF must find entities that
	// are NOT in the curated dictionary.
	fx := getFixture(t)
	rg := rng.New(123)
	foundOOV := 0
	totalOOV := 0
	for i := 0; i < 80; i++ {
		d := fx.gen.Doc(rg, textgen.Medline, fmt.Sprint("o", i))
		got := fx.gene.Extract(d.Text)
		spans := map[[2]int]bool{}
		for _, m := range got {
			spans[[2]int{m.Start, m.End}] = true
		}
		for _, m := range d.Mentions {
			if m.Type != textgen.Gene || m.Entry == nil || m.Entry.InDictionary {
				continue
			}
			totalOOV++
			if spans[[2]int{m.Start, m.End}] {
				foundOOV++
			}
		}
	}
	if totalOOV == 0 {
		t.Skip("no OOV gene mentions in sample")
	}
	recall := float64(foundOOV) / float64(totalOOV)
	if recall < 0.5 {
		t.Errorf("OOV recall = %.3f (%d/%d), want >= 0.5", recall, foundOOV, totalOOV)
	}
}

func TestDomainShiftTLAFalsePositives(t *testing.T) {
	// §4.3.2: on web text the Medline-trained gene tagger tags non-entity
	// TLAs as genes. Count false-positive TLA matches on relevant-web docs.
	fx := getFixture(t)
	rg := rng.New(77)
	tlaFPs := 0
	for i := 0; i < 60; i++ {
		d := fx.gen.Doc(rg, textgen.Relevant, fmt.Sprint("w", i))
		gold := map[[2]int]bool{}
		for _, m := range d.Mentions {
			gold[[2]int{m.Start, m.End}] = true
		}
		for _, m := range fx.gene.Extract(d.Text) {
			if IsTLA(m.Surface) && !gold[[2]int{m.Start, m.End}] {
				tlaFPs++
			}
		}
	}
	if tlaFPs == 0 {
		t.Error("no TLA false positives on web text — domain-shift pathology not reproduced")
	}
}

func TestFilterTLAs(t *testing.T) {
	ms := []Match{
		{Surface: "FAQ"}, {Surface: "BRCA1"}, {Surface: "abc"}, {Surface: "TLA"},
		{Surface: "AB"}, {Surface: "ABCD"},
	}
	got := FilterTLAs(ms)
	if len(got) != 4 {
		t.Fatalf("filtered = %+v", got)
	}
	for _, m := range got {
		if m.Surface == "FAQ" || m.Surface == "TLA" {
			t.Errorf("TLA %q survived", m.Surface)
		}
	}
}

func TestIsTLA(t *testing.T) {
	cases := map[string]bool{
		"FAQ": true, "TLA": true, "BRC": true,
		"FA": false, "FAQS": false, "FaQ": false, "F1Q": false, "": false,
	}
	for s, want := range cases {
		if IsTLA(s) != want {
			t.Errorf("IsTLA(%q) != %v", s, want)
		}
	}
}

func TestExtractTokensBIO(t *testing.T) {
	toks := []nlp.TokenSpan{
		{Span: nlp.Span{Start: 0, End: 3}, Text: "The"},
		{Span: nlp.Span{Start: 4, End: 9}, Text: "renal"},
		{Span: nlp.Span{Start: 10, End: 19}, Text: "carcinoma"},
		{Span: nlp.Span{Start: 20, End: 25}, Text: "cases"},
	}
	ms := ExtractTokens(toks, []Label{O, B, I, O})
	if len(ms) != 1 || ms[0].Start != 4 || ms[0].End != 19 {
		t.Fatalf("matches = %+v", ms)
	}
	// I without preceding B starts a new mention (robustness).
	ms = ExtractTokens(toks, []Label{I, O, B, B})
	if len(ms) != 3 {
		t.Fatalf("matches = %+v", ms)
	}
	// Trailing mention is flushed.
	ms = ExtractTokens(toks, []Label{O, O, O, B})
	if len(ms) != 1 || ms[0].Start != 20 {
		t.Fatalf("matches = %+v", ms)
	}
}

func TestTagStructuralConstraint(t *testing.T) {
	fx := getFixture(t)
	rg := rng.New(5)
	for i := 0; i < 20; i++ {
		d := fx.gen.Doc(rg, textgen.Medline, fmt.Sprint("c", i))
		for _, s := range d.Sentences {
			words := make([]string, len(s.Tokens))
			for j, tok := range s.Tokens {
				words[j] = tok.Text
			}
			labels := fx.gene.Tag(words)
			for j, l := range labels {
				if l == I && (j == 0 || labels[j-1] == O) {
					t.Fatalf("I after O/start at %d in %v", j, labels)
				}
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	fx := getFixture(t)
	if got := fx.gene.Tag(nil); got != nil {
		t.Errorf("Tag(nil) = %v", got)
	}
	if got := fx.gene.Extract(""); len(got) != 0 {
		t.Errorf("Extract(\"\") = %v", got)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 100, Drugs: 50, Diseases: 50}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	mk := func() *Tagger {
		r := rng.New(42)
		var docs []*textgen.Doc
		for i := 0; i < 60; i++ {
			docs = append(docs, gen.Doc(r, textgen.Medline, fmt.Sprint("d", i)))
		}
		return Train(textgen.Gene, TrainingSentences(docs, textgen.Gene), DefaultConfig())
	}
	a, b := mk(), mk()
	if a.NumFeatures() != b.NumFeatures() {
		t.Fatal("feature counts differ across identical trainings")
	}
	words := []string{"The", "BRCA1", "gene", "regulates", "growth", "."}
	la, lb := a.Tag(words), b.Tag(words)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("decoding differs across identical trainings")
		}
	}
}

func TestShapeFeatureAblationReducesTLAFPs(t *testing.T) {
	// Disabling shape features must reduce TLA false positives on web text
	// (the §4.3.2 mechanism runs through shape generalization).
	fx := getFixture(t)
	rg := rng.New(13)
	var docs []*textgen.Doc
	for i := 0; i < 250; i++ {
		docs = append(docs, fx.gen.Doc(rg, textgen.Medline, fmt.Sprint("m", i)))
	}
	cfg := DefaultConfig()
	cfg.UseShapeFeatures = false
	noShape := Train(textgen.Gene, TrainingSentences(docs, textgen.Gene), cfg)

	countTLAFP := func(tg *Tagger) int {
		rg := rng.New(14)
		n := 0
		for i := 0; i < 40; i++ {
			d := fx.gen.Doc(rg, textgen.Relevant, fmt.Sprint("w", i))
			gold := map[[2]int]bool{}
			for _, m := range d.Mentions {
				gold[[2]int{m.Start, m.End}] = true
			}
			for _, m := range tg.Extract(d.Text) {
				if IsTLA(m.Surface) && !gold[[2]int{m.Start, m.End}] {
					n++
				}
			}
		}
		return n
	}
	withShape := countTLAFP(fx.gene)
	without := countTLAFP(noShape)
	if without > withShape {
		t.Errorf("shape ablation increased TLA FPs: %d -> %d", withShape, without)
	}
}

func TestNumFeatures(t *testing.T) {
	fx := getFixture(t)
	// The perceptron stores only features touched by an update, so the
	// count is far below the template cross-product but must be non-trivial.
	if fx.gene.NumFeatures() < 200 {
		t.Errorf("only %d features learned", fx.gene.NumFeatures())
	}
}

func BenchmarkExtract(b *testing.B) {
	fx := getFixture(b)
	d := fx.gen.Doc(rng.New(55), textgen.Medline, "bench")
	b.SetBytes(int64(len(d.Text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fx.gene.Extract(d.Text)
	}
}
