package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type row struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "facts", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Write(row{ID: fmt.Sprint("d", i), N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 100 {
		t.Errorf("records = %d", w.Records())
	}

	var got []row
	n, chunkErrs, err := Read(dir, "facts", func(r row) error {
		got = append(got, r)
		return nil
	})
	if err != nil || chunkErrs != 0 {
		t.Fatalf("read: %v, chunkErrs=%d", err, chunkErrs)
	}
	if n != 100 || len(got) != 100 {
		t.Fatalf("read %d records", n)
	}
	for i, r := range got {
		if r.N != i {
			t.Fatalf("order broken at %d: %+v", i, r)
		}
	}
}

func TestChunkRollover(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, "x", 200) // tiny chunks
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Write(row{ID: "document-with-a-long-identifier", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Chunks() < 5 {
		t.Fatalf("chunks = %d, want several", w.Chunks())
	}
	files, err := ChunkFiles(dir, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != w.Chunks() {
		t.Fatalf("files = %d, chunks = %d", len(files), w.Chunks())
	}
	n, _, err := Read(dir, "x", func(r row) error { return nil })
	if err != nil || n != 50 {
		t.Fatalf("read %d, err %v", n, err)
	}
}

func TestCorruptChunkIsolated(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, "y", 150)
	for i := 0; i < 30; i++ {
		_ = w.Write(row{ID: "some-identifier-string", N: i})
	}
	_ = w.Close()
	files, _ := ChunkFiles(dir, "y")
	if len(files) < 3 {
		t.Skip("need several chunks")
	}
	// Corrupt the middle chunk.
	if err := os.WriteFile(files[1], []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, chunkErrs, err := Read(dir, "y", func(r row) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if chunkErrs != 1 {
		t.Errorf("chunkErrs = %d, want 1", chunkErrs)
	}
	if n == 0 || n >= 30 {
		t.Errorf("records = %d, want partial recovery", n)
	}
}

func TestChunkFilesFiltersPrefix(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, "a", 1<<20)
	_ = w.Write(row{ID: "x"})
	_ = w.Close()
	w2, _ := NewWriter(dir, "b", 1<<20)
	_ = w2.Write(row{ID: "y"})
	_ = w2.Close()
	// A stray file that must be ignored.
	_ = os.WriteFile(filepath.Join(dir, "a-junk.txt"), []byte("junk"), 0o644)

	files, err := ChunkFiles(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
}

func TestReadCallbackError(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, "z", 1<<20)
	for i := 0; i < 5; i++ {
		_ = w.Write(row{N: i})
	}
	_ = w.Close()
	stop := fmt.Errorf("stop")
	n, chunkErrs, err := Read(dir, "z", func(r row) error {
		if r.N == 2 {
			return stop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if chunkErrs != 1 || n != 2 {
		t.Errorf("n=%d chunkErrs=%d", n, chunkErrs)
	}
}

func TestEmptyPrefix(t *testing.T) {
	dir := t.TempDir()
	n, chunkErrs, err := Read(dir, "nothing", func(r row) error { return nil })
	if err != nil || n != 0 || chunkErrs != 0 {
		t.Fatalf("empty read: %d %d %v", n, chunkErrs, err)
	}
}
