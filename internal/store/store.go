// Package store persists crawl and extraction results as chunked,
// gzip-compressed JSONL — the "structured fact databases" that are the
// end product of information extraction (§1), stored in the chunked
// fashion the paper's war story forced ("we splitted the crawled data
// into chunks of 50 GB", §4.2). Chunking gives failure isolation: one
// corrupt chunk loses one chunk.
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// Writer writes records into numbered chunk files
// (<dir>/<prefix>-00000.jsonl.gz, ...), rolling over when a chunk exceeds
// the configured uncompressed byte size.
type Writer struct {
	dir, prefix string
	chunkBytes  int64

	file    *os.File
	gz      *gzip.Writer
	buf     *bufio.Writer
	written int64
	chunk   int
	records int64

	cRecords, cChunks, cBytes *obs.Counter
	lg                        evlog.Logger
}

// WithLog points the writer at an event-log sink: chunk rollovers are
// logged on a record-count logical clock (deterministic for a
// deterministic record stream). Returns the writer for chaining.
func (w *Writer) WithLog(sink *evlog.Sink) *Writer {
	w.lg = sink.Logger("store.writer")
	return w
}

// WithMetrics redirects the writer's counters (store.write.records,
// store.write.chunks, store.write.bytes) to the given registry; the
// default is obs.Default(). Returns the writer for chaining.
func (w *Writer) WithMetrics(reg *obs.Registry) *Writer {
	r := obs.Or(reg)
	w.cRecords = r.Counter("store.write.records")
	w.cChunks = r.Counter("store.write.chunks")
	w.cBytes = r.Counter("store.write.bytes")
	return w
}

// NewWriter creates the directory (if needed) and opens the first chunk.
func NewWriter(dir, prefix string, chunkBytes int64) (*Writer, error) {
	if chunkBytes <= 0 {
		chunkBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	w := &Writer{dir: dir, prefix: prefix, chunkBytes: chunkBytes, chunk: -1}
	w.WithMetrics(nil)
	if err := w.roll(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *Writer) roll() error {
	if err := w.closeChunk(); err != nil {
		return err
	}
	w.chunk++
	w.cChunks.Inc()
	w.lg.Info("chunk.roll", w.records,
		trace.Int("chunk", int64(w.chunk)), trace.String("prefix", w.prefix))
	name := filepath.Join(w.dir, fmt.Sprintf("%s-%05d.jsonl.gz", w.prefix, w.chunk))
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w.file = f
	w.gz = gzip.NewWriter(f)
	w.buf = bufio.NewWriter(w.gz)
	w.written = 0
	return nil
}

func (w *Writer) closeChunk() error {
	if w.file == nil {
		return nil
	}
	if err := w.buf.Flush(); err != nil {
		return err
	}
	if err := w.gz.Close(); err != nil {
		return err
	}
	err := w.file.Close()
	w.file = nil
	return err
}

// Write appends one record as a JSON line.
func (w *Writer) Write(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	if w.written > 0 && w.written+int64(len(line))+1 > w.chunkBytes {
		if err := w.roll(); err != nil {
			return err
		}
	}
	if _, err := w.buf.Write(line); err != nil {
		return err
	}
	if err := w.buf.WriteByte('\n'); err != nil {
		return err
	}
	w.written += int64(len(line)) + 1
	w.records++
	w.cRecords.Inc()
	w.cBytes.Add(int64(len(line)) + 1)
	return nil
}

// Records returns the number of records written so far.
func (w *Writer) Records() int64 { return w.records }

// Chunks returns the number of chunks opened so far.
func (w *Writer) Chunks() int { return w.chunk + 1 }

// Close flushes and closes the current chunk.
func (w *Writer) Close() error { return w.closeChunk() }

// ChunkFiles lists the chunk files of a prefix in order.
func ChunkFiles(dir, prefix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, prefix+"-") && strings.HasSuffix(name, ".jsonl.gz") {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Read streams every record of a prefix, decoding each JSON line into a
// fresh value produced by newV, and invoking fn. A decode error aborts the
// current chunk but continues with the next (failure isolation). Records
// and chunk errors are counted into obs.Default() (store.read.records,
// store.read.chunk_errors).
func Read[T any](dir, prefix string, fn func(T) error) (records int, chunkErrs int, err error) {
	files, err := ChunkFiles(dir, prefix)
	if err != nil {
		return 0, 0, err
	}
	reg := obs.Default()
	for _, path := range files {
		n, cerr := readChunk(path, fn)
		records += n
		reg.Counter("store.read.records").Add(int64(n))
		if cerr != nil {
			chunkErrs++
			reg.Counter("store.read.chunk_errors").Inc()
		}
	}
	return records, chunkErrs, nil
}

func readChunk[T any](path string, fn func(T) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return 0, err
	}
	defer gz.Close()
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	n := 0
	for sc.Scan() {
		var v T
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return n, fmt.Errorf("store: %s: %w", path, err)
		}
		if err := fn(v); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

// Fact is the flat export row for one extracted entity mention — the
// schema of the "structured fact database" the pipeline produces.
type Fact struct {
	DocID   string `json:"doc"`
	Corpus  string `json:"corpus"`
	Type    string `json:"type"`
	Method  string `json:"method"`
	Surface string `json:"surface"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
}
