package synthweb

import (
	"testing"
)

// TestCrashPlanPointsFire: explicit crash points fail exactly their first
// Attempts step attempts and nothing else.
func TestCrashPlanPointsFire(t *testing.T) {
	p := &CrashPlan{Points: []CrashPoint{
		{Shard: 1, Round: 2, Attempts: 1},
		{Shard: 0, Round: 4, Attempts: 3},
		{Shard: 2, Round: 0, Attempts: 0}, // < 1 treated as 1
	}}
	cases := []struct {
		shard, round, attempt int
		want                  bool
	}{
		{1, 2, 0, true},
		{1, 2, 1, false}, // clears after 1 attempt
		{0, 4, 0, true},
		{0, 4, 2, true},
		{0, 4, 3, false}, // clears after 3 attempts
		{2, 0, 0, true},
		{2, 0, 1, false},
		{1, 3, 0, false}, // unscheduled pair
		{3, 2, 0, false},
	}
	for _, c := range cases {
		if got := p.Crashes(c.shard, c.round, c.attempt); got != c.want {
			t.Errorf("Crashes(%d, %d, %d) = %v, want %v",
				c.shard, c.round, c.attempt, got, c.want)
		}
	}
}

// TestCrashPlanRatePure: the random tier is a pure function of the plan
// value — two plans with the same seed agree on every pair, a different
// seed disagrees somewhere, and attempt persistence respects MaxAttempts.
func TestCrashPlanRatePure(t *testing.T) {
	a := &CrashPlan{Seed: 11, Rate: 0.3, MaxAttempts: 3}
	b := &CrashPlan{Seed: 11, Rate: 0.3, MaxAttempts: 3}
	c := &CrashPlan{Seed: 12, Rate: 0.3, MaxAttempts: 3}
	crashed, diverged := 0, false
	for shard := 0; shard < 8; shard++ {
		for round := 0; round < 40; round++ {
			ka, kb := a.FailsThrough(shard, round), b.FailsThrough(shard, round)
			if ka != kb {
				t.Fatalf("(%d, %d): same plan disagrees: %d vs %d", shard, round, ka, kb)
			}
			if ka < 0 || ka > 3 {
				t.Fatalf("(%d, %d): FailsThrough %d outside [0, MaxAttempts]", shard, round, ka)
			}
			if ka > 0 {
				crashed++
			}
			if ka != c.FailsThrough(shard, round) {
				diverged = true
			}
		}
	}
	if crashed == 0 {
		t.Error("rate 0.3 over 320 pairs scheduled no crashes")
	}
	if crashed == 8*40 {
		t.Error("rate 0.3 crashed every pair")
	}
	if !diverged {
		t.Error("different seeds never diverged")
	}
}

// TestCrashPlanEmpty: nil and zero plans schedule nothing; points or a
// rate make a plan non-empty.
func TestCrashPlanEmpty(t *testing.T) {
	var nilPlan *CrashPlan
	if !nilPlan.Empty() || nilPlan.FailsThrough(0, 0) != 0 {
		t.Error("nil plan should be empty and never crash")
	}
	if !(&CrashPlan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	if (&CrashPlan{Rate: 0.1}).Empty() {
		t.Error("rated plan should not be empty")
	}
	if (&CrashPlan{Points: []CrashPoint{{Shard: 1, Round: 1}}}).Empty() {
		t.Error("pointed plan should not be empty")
	}
}

// TestParseCrashPoints covers the -shard-crash-at syntax.
func TestParseCrashPoints(t *testing.T) {
	pts, err := ParseCrashPoints(" 1:2, 0:4:3 ,2:0 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []CrashPoint{{1, 2, 1}, {0, 4, 3}, {2, 0, 1}}
	if len(pts) != len(want) {
		t.Fatalf("parsed %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d: got %+v, want %+v", i, pts[i], want[i])
		}
	}
	if pts, err := ParseCrashPoints("  "); err != nil || pts != nil {
		t.Errorf("blank spec: got (%v, %v), want (nil, nil)", pts, err)
	}
	for _, bad := range []string{"1", "1:2:3:4", "a:b", "-1:2", "1:2:0"} {
		if _, err := ParseCrashPoints(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
