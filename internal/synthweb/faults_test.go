package synthweb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func faultyWeb(t testing.TB, mutate func(*Config)) *Web {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 100, Diseases: 100}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	cfg := DefaultConfig()
	cfg.NumHosts = 60
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg, gen)
}

// TestTransientFailureClearsAfterK: a flaky URL fails attempts 0..k-1 and
// then succeeds forever — the attempt-aware replacement for the old
// permanent per-URL failure.
func TestTransientFailureClearsAfterK(t *testing.T) {
	w := faultyWeb(t, func(c *Config) { c.FailureRate = 0.4; c.TransientMaxAttempts = 3 })
	flaky, cleared := 0, 0
	for _, h := range w.Hosts {
		for idx := 0; idx < min(h.Pages, 5); idx++ {
			u := PageURL(h.Name, idx)
			k := w.transientFailsThrough(u)
			if k == 0 {
				if _, _, err := w.FetchAttempt(u, 0); err != nil {
					t.Fatalf("healthy URL %s failed attempt 0: %v", u, err)
				}
				continue
			}
			flaky++
			if k > 3 {
				t.Fatalf("%s clears after %d attempts, cap is 3", u, k)
			}
			for a := 0; a < k; a++ {
				if _, _, err := w.FetchAttempt(u, a); !errors.Is(err, ErrFetchFailed) {
					t.Fatalf("%s attempt %d: err=%v, want ErrFetchFailed", u, a, err)
				}
			}
			if _, _, err := w.FetchAttempt(u, k); err != nil {
				t.Fatalf("%s attempt %d should clear: %v", u, k, err)
			}
			cleared++
		}
	}
	if flaky == 0 || cleared != flaky {
		t.Fatalf("flaky=%d cleared=%d — fault model not exercised", flaky, cleared)
	}
}

// TestAttemptZeroMatchesLegacyFetch: Fetch is FetchAttempt at attempt 0,
// so retry-free callers see exactly the old FailureRate semantics.
func TestAttemptZeroMatchesLegacyFetch(t *testing.T) {
	w := faultyWeb(t, func(c *Config) { c.FailureRate = 0.3 })
	for _, h := range w.Hosts[:20] {
		u := PageURL(h.Name, 1)
		_, errA := w.Fetch(u)
		_, _, errB := w.FetchAttempt(u, 0)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: Fetch err=%v, FetchAttempt(0) err=%v", u, errA, errB)
		}
	}
}

// TestDeadHostsPermanent: dead hosts fail every attempt with ErrHostDown.
func TestDeadHostsPermanent(t *testing.T) {
	w := faultyWeb(t, func(c *Config) { c.DeadHostShare = 0.3 })
	dead := 0
	for _, h := range w.Hosts {
		if !w.HostFaults(h.Name).Dead {
			continue
		}
		dead++
		u := PageURL(h.Name, 0)
		for _, attempt := range []int{0, 1, 7, 100} {
			if _, _, err := w.FetchAttempt(u, attempt); !errors.Is(err, ErrHostDown) {
				t.Fatalf("dead host %s attempt %d: err=%v", h.Name, attempt, err)
			}
		}
	}
	if dead == 0 {
		t.Fatal("no dead hosts drawn at share 0.3")
	}
}

// TestRateLimitedClearsWithRetryAfter: throttled URLs carry a retry-after
// and succeed within two retries.
func TestRateLimitedClearsWithRetryAfter(t *testing.T) {
	w := faultyWeb(t, func(c *Config) { c.RateLimitShare = 0.5; c.RetryAfterMs = 900 })
	limited := 0
	for _, h := range w.Hosts {
		if !w.HostFaults(h.Name).RateLimited {
			continue
		}
		u := PageURL(h.Name, 1)
		_, info, err := w.FetchAttempt(u, 0)
		if !errors.Is(err, ErrRateLimited) {
			t.Fatalf("throttled host %s attempt 0: err=%v", h.Name, err)
		}
		if info.RetryAfterMs != 900 {
			t.Fatalf("retry-after = %d, want 900", info.RetryAfterMs)
		}
		if _, _, err := w.FetchAttempt(u, 2); err != nil {
			t.Fatalf("throttled URL %s still failing at attempt 2: %v", u, err)
		}
		limited++
	}
	if limited == 0 {
		t.Fatal("no rate-limited hosts drawn at share 0.5")
	}
}

// TestSlowHostLatency: slow hosts succeed but report injected latency.
func TestSlowHostLatency(t *testing.T) {
	w := faultyWeb(t, func(c *Config) { c.SlowHostShare = 0.4; c.SlowLatencyMs = 3000 })
	slow := 0
	for _, h := range w.Hosts {
		u := PageURL(h.Name, 0)
		_, info, err := w.FetchAttempt(u, 0)
		if err != nil {
			continue
		}
		want := 0
		if w.HostFaults(h.Name).Slow {
			want = 3000
			slow++
		}
		if info.LatencyMs != want {
			t.Fatalf("host %s latency = %d, want %d", h.Name, info.LatencyMs, want)
		}
	}
	if slow == 0 {
		t.Fatal("no slow hosts drawn at share 0.4")
	}
}

// TestTruncatedBodies: truncated attempts return the typed error plus a
// strict prefix of the true body; a later attempt can read it whole.
func TestTruncatedBodies(t *testing.T) {
	w := faultyWeb(t, func(c *Config) { c.TruncateRate = 0.5 })
	cut := 0
	for _, h := range w.Hosts[:30] {
		u := PageURL(h.Name, 1)
		full, err := w.PageContent(u)
		if err != nil {
			t.Fatal(err)
		}
		for attempt := 0; attempt < 6; attempt++ {
			page, _, err := w.FetchAttempt(u, attempt)
			if err == nil {
				if !bytes.Equal(page.Body, full.Body) {
					t.Fatalf("%s clean attempt served wrong body", u)
				}
				continue
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("%s attempt %d: err=%v", u, attempt, err)
			}
			cut++
			if len(page.Body) >= len(full.Body) || !bytes.HasPrefix(full.Body, page.Body) {
				t.Fatalf("%s truncated body is not a strict prefix (%d of %d bytes)",
					u, len(page.Body), len(full.Body))
			}
		}
	}
	if cut == 0 {
		t.Fatal("no truncated attempts at rate 0.5")
	}
}

// TestFaultModelDeterministic: the full fault surface is a pure function
// of (config, URL, attempt) — two webs with the same config agree on
// every outcome.
func TestFaultModelDeterministic(t *testing.T) {
	mutate := func(c *Config) {
		c.FailureRate = 0.3
		c.DeadHostShare = 0.1
		c.SlowHostShare = 0.2
		c.RateLimitShare = 0.2
		c.TruncateRate = 0.1
	}
	a, b := faultyWeb(t, mutate), faultyWeb(t, mutate)
	for _, h := range a.Hosts[:25] {
		for attempt := 0; attempt < 5; attempt++ {
			u := PageURL(h.Name, 1)
			pa, ia, ea := a.FetchAttempt(u, attempt)
			pb, ib, eb := b.FetchAttempt(u, attempt)
			if fmt.Sprint(ea) != fmt.Sprint(eb) || ia != ib {
				t.Fatalf("%s attempt %d diverged: (%v,%v) vs (%v,%v)", u, attempt, ia, ea, ib, eb)
			}
			if (pa == nil) != (pb == nil) {
				t.Fatalf("%s attempt %d page presence diverged", u, attempt)
			}
			if pa != nil && !bytes.Equal(pa.Body, pb.Body) {
				t.Fatalf("%s attempt %d bodies diverged", u, attempt)
			}
		}
	}
}
