// Package synthweb is the substitute for the live web: a deterministic,
// procedurally generated universe of hosts and pages that exhibits the
// properties the paper's crawling study depends on:
//
//   - topical locality ("relevant pages are most likely linked to other
//     relevant pages", §2) with biomedical sites being "only weakly linked;
//     most often, all outgoing links from a page were navigational leading
//     to pages on the same host" (§2.2);
//   - portal front pages that are authoritative but content-poor, so a
//     relevance classifier kills the crawl branch immediately (§2.2);
//   - heavily cluttered HTML (navigation, ads, footers) with malformed
//     markup on most pages (§5 cites 95% non-conforming pages);
//   - MIME-type, language, and length noise at rates calibrated to the
//     paper's filter statistics (9.5% / 14% / 17% document reductions, §4.1);
//   - spider traps (infinite dynamically-generated link chains, §2.1);
//   - robots.txt politeness rules.
//
// Every page is a pure function of (config seed, URL): fetching the same
// URL twice yields identical bytes, making whole-crawl experiments exactly
// repeatable — the one thing the paper says is impossible on the real web.
package synthweb

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"webtextie/internal/mimetype"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

// Config controls the shape of the synthetic web.
type Config struct {
	// Seed drives all generation.
	Seed uint64
	// NumHosts is the number of registered hosts.
	NumHosts int
	// BiomedShare is the fraction of hosts carrying biomedical content.
	BiomedShare float64
	// PagesPerHost is the log-normal distribution of host sizes.
	PagesPerHost textgen.LogNormal
	// TrapShare is the fraction of hosts containing a spider trap.
	TrapShare float64
	// NonHTMLShare, NonEnglishShare, TooShortShare calibrate the noise the
	// crawler's pre-filters must remove (§4.1: 9.5%, 14%, 17%).
	NonHTMLShare    float64
	NonEnglishShare float64
	TooShortShare   float64
	// CorruptShare is the fraction of pages with malformed markup.
	CorruptShare float64
	// IntraHostLinkShare is the fraction of links staying on the same host
	// (high: biomedical sites are weakly linked externally).
	IntraHostLinkShare float64
	// TopicalLocality is the probability that a cross-host link from a
	// biomedical page targets another biomedical host.
	TopicalLocality float64
	// OffTopicShareOnBiomed is the fraction of pages on biomedical hosts
	// that are nonetheless off-topic (and vice versa on general hosts:
	// "blogger.com often also contain[s] some biomedical material", §4.1).
	OffTopicShareOnBiomed float64
	BiomedShareOnGeneral  float64
	// DepthDecay models the paper's central temporal pitfall: relevant-page
	// density on biomedical hosts holds through the front band (the first
	// 8 pages — the curated hubs a crawl enters through), then decays with
	// page index (the off-topic share rises hyperbolically with
	// DepthDecay*(idx-8)), and intra-host navigation becomes
	// forward-biased — deep pages link deeper — so a crawl's harvest rate
	// falls as it digs in. 0 (the default) keeps density uniform and
	// preserves the exact RNG draw sequence of pre-decay webs.
	DepthDecay float64
	// DepthDecayOnset overrides the front-band width (how many pages stay
	// at full density before DepthDecay bites). <= 0 means the default 8.
	// Only consulted when DepthDecay > 0.
	DepthDecayOnset int
	// FailureRate injects transient fetch failures (timeouts, 5xx): the
	// given fraction of URLs is flaky and fails its first k fetch attempts
	// with ErrFetchFailed before succeeding (k is drawn per URL in
	// [1, TransientMaxAttempts]). The failure decision is a pure function
	// of (config, URL, attempt), so a retrying crawler deterministically
	// recovers every flaky URL while a retry-free crawler sees the same
	// permanent per-URL failures this knob used to inject.
	FailureRate float64
	// TransientMaxAttempts bounds how many attempts a flaky URL fails
	// before clearing (0 means 3).
	TransientMaxAttempts int
	// DeadHostShare is the fraction of hosts that are persistently down:
	// every fetch attempt against them returns ErrHostDown, forever.
	DeadHostShare float64
	// SlowHostShare is the fraction of hosts serving with a latency spike
	// of SlowLatencyMs virtual milliseconds per fetch (0 means 2000).
	SlowHostShare float64
	SlowLatencyMs int
	// RateLimitShare is the fraction of hosts that throttle: the first one
	// or two attempts of each URL fail with ErrRateLimited carrying a
	// deterministic retry-after of RetryAfterMs virtual milliseconds
	// (0 means 1500).
	RateLimitShare float64
	RetryAfterMs   int
	// TruncateRate is the per-(URL, attempt) probability of a truncated
	// body: the fetch returns ErrTruncated together with the partial page.
	// Truncation is transient — a retry re-reads the full body.
	TruncateRate float64
	// MirrorShare is the fraction of pages that are near-copies of another
	// page on the same host (mirrors/syndication — the web "redundancy" of
	// §1). Mirrors differ from their source only by chrome and a trailing
	// notice, so exact-hash deduplication misses them.
	MirrorShare float64
}

// DefaultConfig returns the calibrated default web.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		NumHosts:              700,
		BiomedShare:           0.28,
		PagesPerHost:          textgen.LogNormal{Mu: 3.3, Sigma: 0.8},
		TrapShare:             0.03,
		NonHTMLShare:          0.095,
		NonEnglishShare:       0.14,
		TooShortShare:         0.17,
		CorruptShare:          0.60,
		MirrorShare:           0.05,
		IntraHostLinkShare:    0.90,
		TopicalLocality:       0.75,
		OffTopicShareOnBiomed: 0.70,
		BiomedShareOnGeneral:  0.02,
	}
}

// hubDomains are the named high-authority hosts; they mirror the domains of
// the paper's Table 2 so the PageRank experiment produces a recognizable
// top-30. The first 20 are biomedical, the rest general-purpose hubs.
var hubDomains = []string{
	"nih.gov", "cancer.org", "cancer.net", "biomedcentral.com", "cdc.gov",
	"healthline.com", "bettermedicine.com", "rightdiagnosis.com",
	"ourhealth.com", "sideeffects.embl.de", "mypacs.net", "g2conline.org",
	"hhs.gov", "blogs.nature.com", "arxiv.org", "mpg.org", "farlex.com",
	"thefreedictionary.com", "definition-of.com", "lexiophiles.com",
	"wikipedia.org", "wikimedia.org", "blogger.com", "wordpress.org",
	"slideshare.net", "disqus.com", "reuters.com", "about.com",
	"statcounter.com", "omniture.com",
}

// numBiomedHubs is how many of hubDomains carry biomedical content.
const numBiomedHubs = 20

// Host is one registered site.
type Host struct {
	// Name is the domain name.
	Name string
	// Biomed marks hosts whose content is predominantly biomedical.
	Biomed bool
	// Pages is the number of regular pages (indexes 0..Pages-1; index 0 is
	// the portal front page).
	Pages int
	// Trap marks hosts with an infinite /trap/ URL space.
	Trap bool
	// Hub marks high-authority hosts that attract cross-host links.
	Hub bool
	// DisallowTrap reports whether robots.txt forbids the trap subtree.
	DisallowTrap bool
	// CrawlDelayMs is the politeness delay requested via robots.txt.
	CrawlDelayMs int
}

// Page is one fetched document with its generation ground truth.
type Page struct {
	// URL is the canonical page URL.
	URL string
	// Host is the owning host.
	Host *Host
	// MIME is the true content type.
	MIME mimetype.Type
	// Lang is the true language code ("en", "de", ...).
	Lang string
	// Relevant is the gold topical label (biomedical or not).
	Relevant bool
	// MirrorOf names the page this one near-duplicates ("" for originals).
	MirrorOf string
	// Portal marks content-poor front/hub pages.
	Portal bool
	// Body is the raw served bytes (HTML for HTML pages).
	Body []byte
	// NetText is the gold main text (empty for non-HTML pages).
	NetText string
	// Doc is the gold annotated document behind NetText (nil for noise
	// pages).
	Doc *textgen.Doc
	// Links are the out-links as absolute URLs (both those rendered into
	// the HTML and, equal to them, the gold link set).
	Links []string
}

// Web is the synthetic web universe.
type Web struct {
	cfg    Config
	Hosts  []*Host
	byName map[string]*Host
	gen    *textgen.Generator
	base   *rng.RNG

	// fetches counts Fetch calls (for harvest-rate style accounting).
	fetches int
}

// ErrNotFound is returned for URLs outside the universe.
var ErrNotFound = errors.New("synthweb: no such page")

// New builds the web universe. Host metadata is materialized eagerly; page
// bodies are rendered lazily and deterministically per URL.
func New(cfg Config, gen *textgen.Generator) *Web {
	w := &Web{cfg: cfg, byName: map[string]*Host{}, gen: gen, base: rng.New(cfg.Seed)}
	r := rng.New(cfg.Seed).Split("hosts")
	for i := 0; i < cfg.NumHosts; i++ {
		h := &Host{}
		if i < len(hubDomains) {
			h.Name = hubDomains[i]
			h.Hub = true
			h.Biomed = i < numBiomedHubs
			h.Pages = 80 + r.Intn(200)
		} else {
			h.Biomed = r.Bool(cfg.BiomedShare)
			h.Name = makeHostName(r, h.Biomed, i)
			h.Pages = int(r.LogNorm(cfg.PagesPerHost.Mu, cfg.PagesPerHost.Sigma)) + 2
		}
		h.Trap = r.Bool(cfg.TrapShare)
		h.DisallowTrap = h.Trap && r.Bool(0.5)
		h.CrawlDelayMs = 100 + r.Intn(400)
		if _, dup := w.byName[h.Name]; dup {
			continue
		}
		w.Hosts = append(w.Hosts, h)
		w.byName[h.Name] = h
	}
	return w
}

var bioHostWords = []string{
	"med", "health", "bio", "gene", "onco", "clinic", "pharma", "patient",
	"cancer", "disease", "drug", "lab", "care", "therapy",
}
var genHostWords = []string{
	"shop", "news", "blog", "travel", "sport", "game", "forum", "photo",
	"music", "deal", "auto", "home", "food", "tech",
}
var hostTLDs = []string{".com", ".org", ".net", ".info", ".co.uk", ".de"}

func makeHostName(r *rng.RNG, biomed bool, i int) string {
	pool := genHostWords
	if biomed {
		pool = bioHostWords
	}
	return fmt.Sprintf("%s%s%d%s", rng.Pick(r, pool), rng.Pick(r, pool), i, rng.Pick(r, hostTLDs))
}

// HostByName returns a host by domain name.
func (w *Web) HostByName(name string) (*Host, bool) {
	h, ok := w.byName[name]
	return h, ok
}

// Fetches returns the number of Fetch calls served so far.
func (w *Web) Fetches() int { return w.fetches }

// PageURL builds the canonical URL for a host page index.
func PageURL(host string, index int) string {
	return fmt.Sprintf("http://%s/p%d.html", host, index)
}

// TrapURL builds a trap URL at the given depth.
func TrapURL(host string, depth int) string {
	return fmt.Sprintf("http://%s/trap/%d", host, depth)
}

// SplitURL parses a synthetic URL into host and path.
func SplitURL(rawurl string) (host, path string, err error) {
	rest, ok := strings.CutPrefix(rawurl, "http://")
	if !ok {
		if rest, ok = strings.CutPrefix(rawurl, "https://"); !ok {
			return "", "", fmt.Errorf("synthweb: unsupported URL %q", rawurl)
		}
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return rest, "/", nil
	}
	return rest[:slash], rest[slash:], nil
}

// Robots describes a host's robots.txt policy.
type Robots struct {
	// Disallow lists path prefixes the crawler must not fetch.
	Disallow []string
	// CrawlDelayMs is the requested inter-request delay.
	CrawlDelayMs int
}

// Allowed reports whether a path may be fetched.
func (r Robots) Allowed(path string) bool {
	for _, p := range r.Disallow {
		if strings.HasPrefix(path, p) {
			return false
		}
	}
	return true
}

// Robots returns the robots policy of a host.
func (w *Web) Robots(host string) (Robots, bool) {
	h, ok := w.byName[host]
	if !ok {
		return Robots{}, false
	}
	rb := Robots{CrawlDelayMs: h.CrawlDelayMs}
	if h.DisallowTrap {
		rb.Disallow = append(rb.Disallow, "/trap/")
	}
	return rb, true
}

// Fetch serves a URL as the first attempt (attempt 0). The result is a
// pure function of (config, URL): callers that never retry see exactly
// the failure set FetchAttempt injects at attempt 0.
func (w *Web) Fetch(rawurl string) (*Page, error) {
	page, _, err := w.FetchAttempt(rawurl, 0)
	return page, err
}

// resolve maps a URL to its rendered page without fault injection.
func (w *Web) resolve(rawurl string) (*Page, error) {
	host, path, err := SplitURL(rawurl)
	if err != nil {
		return nil, err
	}
	h, ok := w.byName[host]
	if !ok {
		return nil, ErrNotFound
	}
	if rest, ok := strings.CutPrefix(path, "/trap/"); ok {
		if !h.Trap {
			return nil, ErrNotFound
		}
		depth, err := strconv.Atoi(rest)
		if err != nil || depth < 0 {
			return nil, ErrNotFound
		}
		return w.renderTrapPage(h, depth), nil
	}
	var idx int
	if path == "/" || path == "" {
		idx = 0
	} else {
		mid, ok := strings.CutPrefix(path, "/p")
		if !ok {
			return nil, ErrNotFound
		}
		mid, _ = strings.CutSuffix(mid, ".html")
		idx, err = strconv.Atoi(mid)
		if err != nil || idx < 0 || idx >= h.Pages {
			return nil, ErrNotFound
		}
	}
	return w.renderPage(h, idx), nil
}

// PageContent renders a URL's true page, bypassing fault injection and
// the fetch counter — the accessor checkpoint restore and ground-truth
// tooling use to rebuild corpora without perturbing crawl accounting.
func (w *Web) PageContent(rawurl string) (*Page, error) {
	return w.resolve(rawurl)
}

// pageRNG derives the deterministic generator for one page.
func (w *Web) pageRNG(h *Host, idx int) *rng.RNG {
	return rng.New(w.cfg.Seed).Split(fmt.Sprintf("page/%s/%d", h.Name, idx))
}
