// Web-scale configuration and eager materialization. The default web is a
// few hundred hosts / a few tens of thousands of pages — enough for unit
// tests, far from the paper's 21M-page crawl. Because every page is a pure
// function of (config seed, URL), scaling the universe costs only host
// metadata: ScaledConfig multiplies the host count and the bench suite
// crawls a ~1M-page web without ever holding it in memory. Materialize is
// the opposite trade — it renders every regular page into a precomputed
// map, which the equivalence suite compares byte-for-byte against lazy
// rendering to prove the two paths serve the same universe.

package synthweb

// ScaledConfig returns the calibrated default web scaled by the given
// factor: factor*DefaultConfig().NumHosts hosts with every share and
// distribution unchanged, so noise and fault rates stay calibrated while
// the page population grows roughly linearly (the default web holds
// ~45 pages/host on average; factor 32 yields a ~1M-page universe).
func ScaledConfig(seed uint64, factor int) Config {
	if factor < 1 {
		factor = 1
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumHosts *= factor
	return cfg
}

// TotalPages returns the number of regular pages in the universe (the
// finite URL space; trap chains are excluded as they are unbounded).
func (w *Web) TotalPages() int {
	total := 0
	for _, h := range w.Hosts {
		total += h.Pages
	}
	return total
}

// Materialize eagerly renders every regular page into a URL-keyed map —
// the precomputed form the lazy render path is tested against. Trap pages
// are excluded (their URL space is infinite by design). The map is
// independent of the live web: mutating it does not affect Fetch.
//
// This is a test and tooling surface: at bench scale (~1M pages) the map
// would cost gigabytes, which is exactly why the crawl path renders
// lazily instead.
func (w *Web) Materialize() map[string]*Page {
	out := make(map[string]*Page, w.TotalPages())
	for _, h := range w.Hosts {
		for idx := 0; idx < h.Pages; idx++ {
			// Key by the canonical request URL — binary noise pages advertise
			// a rewritten display URL (.pdf/.png) in Page.URL, but they are
			// fetched at the .html address, exactly as on the lazy path.
			out[PageURL(h.Name, idx)] = w.renderPage(h, idx)
		}
	}
	return out
}
