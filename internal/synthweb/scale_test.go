package synthweb

import (
	"bytes"
	"fmt"
	"testing"

	"webtextie/internal/mimetype"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func buildWeb(cfg Config) *Web {
	lex := textgen.NewLexicon(rng.New(11), textgen.LexiconSizes{Genes: 300, Drugs: 100, Diseases: 100}, 0.75)
	gen := textgen.NewGenerator(12, lex, textgen.DefaultProfiles())
	return New(cfg, gen)
}

// The bench suite needs a ~1M-page universe; ScaledConfig(seed, 36)
// provides one while only host metadata is materialized.
func TestScaledConfigReachesMillionPages(t *testing.T) {
	if testing.Short() {
		t.Skip("builds 25k hosts of metadata")
	}
	cfg := ScaledConfig(1, 36)
	if cfg.NumHosts != 36*DefaultConfig().NumHosts {
		t.Fatalf("ScaledConfig hosts = %d, want %d", cfg.NumHosts, 36*DefaultConfig().NumHosts)
	}
	web := buildWeb(cfg)
	if total := web.TotalPages(); total < 900_000 {
		t.Errorf("scaled web holds %d pages, want >= 900000 (~1M)", total)
	}
}

func TestScaledConfigClampsFactor(t *testing.T) {
	if got := ScaledConfig(1, 0).NumHosts; got != DefaultConfig().NumHosts {
		t.Errorf("factor 0 yielded %d hosts, want the default", got)
	}
}

// equivalenceGrid is the seed/config matrix the lazy-vs-precomputed
// comparison runs over: clean webs, a chaos-faulted web, and a
// mirror-heavy web, across seeds.
func equivalenceGrid() map[string]Config {
	grid := map[string]Config{}
	for _, seed := range []uint64{1, 7, 1234} {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.NumHosts = 50
		grid[fmt.Sprintf("clean/seed=%d", seed)] = cfg
	}
	faulted := DefaultConfig()
	faulted.Seed = 5
	faulted.NumHosts = 50
	faulted.FailureRate = 0.3
	faulted.DeadHostShare = 0.1
	faulted.SlowHostShare = 0.2
	faulted.RateLimitShare = 0.2
	faulted.TruncateRate = 0.05
	grid["faulted/seed=5"] = faulted
	mirrors := DefaultConfig()
	mirrors.Seed = 9
	mirrors.NumHosts = 50
	mirrors.MirrorShare = 0.3
	grid["mirrors/seed=9"] = mirrors
	return grid
}

// The satellite property: materializing the whole universe up front and
// rendering pages lazily on demand serve byte-identical pages — across
// seeds, with and without faults. Two webs are built independently from
// the same config so the comparison also proves two-run identity.
func TestLazyMaterializedEquivalence(t *testing.T) {
	for name, cfg := range equivalenceGrid() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			eager := buildWeb(cfg).Materialize()
			lazy := buildWeb(cfg)

			if want, got := lazy.TotalPages(), len(eager); want != got {
				t.Fatalf("materialized %d pages, lazy universe holds %d", got, want)
			}
			for _, h := range lazy.Hosts {
				for idx := 0; idx < h.Pages; idx++ {
					url := PageURL(h.Name, idx)
					pre := eager[url]
					if pre == nil {
						t.Fatalf("materialized map missing %s", url)
					}
					live, err := lazy.PageContent(url)
					if err != nil {
						t.Fatalf("lazy render of %s: %v", url, err)
					}
					if !bytes.Equal(pre.Body, live.Body) {
						t.Fatalf("%s: lazy and materialized bodies differ", url)
					}
					if pre.MIME != live.MIME || pre.Lang != live.Lang ||
						pre.Relevant != live.Relevant || pre.Portal != live.Portal ||
						pre.MirrorOf != live.MirrorOf || pre.NetText != live.NetText {
						t.Fatalf("%s: lazy and materialized metadata differ", url)
					}
					if len(pre.Links) != len(live.Links) {
						t.Fatalf("%s: link counts differ: %d vs %d", url, len(pre.Links), len(live.Links))
					}
					for i := range pre.Links {
						if pre.Links[i] != live.Links[i] {
							t.Fatalf("%s: link %d differs: %s vs %s", url, i, pre.Links[i], live.Links[i])
						}
					}
				}
			}
		})
	}
}

// Robots rules and host metadata are part of the universe contract too:
// two webs built from one config must agree on them exactly.
func TestTwoWebsAgreeOnHostsAndRobots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumHosts = 80
	a, b := buildWeb(cfg), buildWeb(cfg)
	if len(a.Hosts) != len(b.Hosts) {
		t.Fatalf("host counts differ: %d vs %d", len(a.Hosts), len(b.Hosts))
	}
	for i, ha := range a.Hosts {
		hb := b.Hosts[i]
		if ha.Name != hb.Name || ha.Biomed != hb.Biomed || ha.Pages != hb.Pages || ha.Trap != hb.Trap {
			t.Fatalf("host %d metadata differs: %+v vs %+v", i, ha, hb)
		}
		ra, oka := a.Robots(ha.Name)
		rb, okb := b.Robots(hb.Name)
		if oka != okb {
			t.Fatalf("robots presence differs for %s", ha.Name)
		}
		if fmt.Sprintf("%+v", ra) != fmt.Sprintf("%+v", rb) {
			t.Fatalf("robots rules differ for %s: %+v vs %+v", ha.Name, ra, rb)
		}
	}
}

// The MIME/language noise shares stay calibrated when the universe is
// built: measured rates land near the configured §4.1 shares.
func TestNoiseRatesMatchConfiguredShares(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumHosts = 300
	web := buildWeb(cfg)

	pages, nonHTML, nonEnglish := 0, 0, 0
	for _, h := range web.Hosts {
		for idx := 0; idx < h.Pages; idx++ {
			p, err := web.PageContent(PageURL(h.Name, idx))
			if err != nil {
				t.Fatal(err)
			}
			pages++
			if p.MIME != mimetype.HTML {
				nonHTML++
			} else if p.Lang != "en" {
				nonEnglish++
			}
		}
	}
	checkRate := func(name string, hits int, want float64) {
		got := float64(hits) / float64(pages)
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("%s rate = %.3f over %d pages, want within 30%% of %.3f", name, got, pages, want)
		}
	}
	checkRate("non-HTML", nonHTML, cfg.NonHTMLShare)
	// Non-English noise applies to the HTML population.
	checkRate("non-English", nonEnglish, cfg.NonEnglishShare*(1-cfg.NonHTMLShare))

	traps := 0
	for _, h := range web.Hosts {
		if h.Trap {
			traps++
		}
	}
	trapRate := float64(traps) / float64(len(web.Hosts))
	if trapRate < cfg.TrapShare*0.4 || trapRate > cfg.TrapShare*2.0 {
		t.Errorf("trap host rate = %.3f, want near %.3f", trapRate, cfg.TrapShare)
	}
}

// Fault outcomes are part of the pure (config, URL, attempt) contract:
// two identically-configured webs inject the same failures at the same
// attempts, which is what lets sharded crawls give every shard a private
// web instance without changing what any fetch observes.
func TestFaultOutcomesAgreeAcrossInstances(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.NumHosts = 40
	cfg.FailureRate = 0.3
	cfg.DeadHostShare = 0.15
	cfg.SlowHostShare = 0.2
	cfg.RateLimitShare = 0.25
	cfg.TruncateRate = 0.1
	a, b := buildWeb(cfg), buildWeb(cfg)

	sawFailure := false
	for _, h := range a.Hosts {
		fa, fb := a.HostFaults(h.Name), b.HostFaults(h.Name)
		if fa != fb {
			t.Fatalf("host %s fault profiles differ: %+v vs %+v", h.Name, fa, fb)
		}
		for idx := 0; idx < h.Pages; idx += 1 + h.Pages/5 {
			url := PageURL(h.Name, idx)
			for attempt := 1; attempt <= 4; attempt++ {
				pa, ia, ea := a.FetchAttempt(url, attempt)
				pb, ib, eb := b.FetchAttempt(url, attempt)
				if (ea == nil) != (eb == nil) || (ea != nil && ea.Error() != eb.Error()) {
					t.Fatalf("%s attempt %d: errors differ: %v vs %v", url, attempt, ea, eb)
				}
				if ia != ib {
					t.Fatalf("%s attempt %d: fetch info differs: %+v vs %+v", url, attempt, ia, ib)
				}
				if (pa == nil) != (pb == nil) || (pa != nil && !bytes.Equal(pa.Body, pb.Body)) {
					t.Fatalf("%s attempt %d: bodies differ", url, attempt)
				}
				if ea != nil {
					sawFailure = true
				}
			}
		}
	}
	if !sawFailure {
		t.Error("fault config injected no failures across the sample — rates not engaged")
	}
}
