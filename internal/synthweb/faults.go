// Fault injection: the synthetic web's model of the real web's
// pathologies — dead hosts, throttling hosts, latency spikes, transient
// fetch errors, and truncated transfers. The paper's crawl fought all of
// these for 11 weeks (§4.1); a reproduction that only ever serves healthy
// pages cannot exercise the retry, backoff, and circuit-breaker machinery
// a web-scale system needs.
//
// Every fault decision is a pure function of (config, URL, attempt#):
// fetching the same URL at the same attempt number always yields the same
// outcome, so whole-crawl chaos experiments stay bit-reproducible, and a
// "transient" failure genuinely clears once the attempt counter passes the
// URL's deterministic clearing point.
package synthweb

import (
	"errors"
	"fmt"

	"webtextie/internal/rng"
)

// ErrFetchFailed is returned for injected transient failures (timeouts,
// 5xx). Retrying eventually succeeds.
var ErrFetchFailed = errors.New("synthweb: fetch failed (injected)")

// ErrHostDown is returned for every attempt against a persistently dead
// host. Retrying never succeeds; callers should trip a circuit breaker.
var ErrHostDown = errors.New("synthweb: host down (injected)")

// ErrRateLimited is returned by throttling hosts (HTTP 429). The
// FetchInfo carries the deterministic retry-after; honoring it succeeds.
var ErrRateLimited = errors.New("synthweb: rate limited (injected)")

// ErrTruncated is returned when the transfer was cut off mid-body. The
// partial page accompanies the error; a retry re-reads the full body.
var ErrTruncated = errors.New("synthweb: body truncated (injected)")

// FetchInfo is the transport metadata of one fetch attempt.
type FetchInfo struct {
	// LatencyMs is extra virtual latency injected by a slow host, on top
	// of the crawler's base fetch cost.
	LatencyMs int
	// RetryAfterMs is the throttle window a rate-limited response asks the
	// caller to wait (only set alongside ErrRateLimited).
	RetryAfterMs int
}

// HostFaultProfile is a host's deterministic fault assignment.
type HostFaultProfile struct {
	// Dead hosts fail every attempt with ErrHostDown.
	Dead bool
	// Slow hosts add SlowLatencyMs of virtual latency per fetch.
	Slow bool
	// RateLimited hosts reject each URL's first attempts with
	// ErrRateLimited before serving it.
	RateLimited bool
}

// Fault-model defaults for config fields left at zero.
const (
	defaultTransientMaxAttempts = 3
	defaultSlowLatencyMs        = 2000
	defaultRetryAfterMs         = 1500
)

func (c Config) transientMaxAttempts() int {
	if c.TransientMaxAttempts <= 0 {
		return defaultTransientMaxAttempts
	}
	return c.TransientMaxAttempts
}

func (c Config) slowLatencyMs() int {
	if c.SlowLatencyMs <= 0 {
		return defaultSlowLatencyMs
	}
	return c.SlowLatencyMs
}

func (c Config) retryAfterMs() int {
	if c.RetryAfterMs <= 0 {
		return defaultRetryAfterMs
	}
	return c.RetryAfterMs
}

// HostFaults returns a host's fault profile — a pure function of
// (config seed, host name), so the assignment survives restarts.
func (w *Web) HostFaults(host string) HostFaultProfile {
	r := rng.New(w.cfg.Seed).Split("fault/host/" + host)
	return HostFaultProfile{
		Dead:        r.Bool(w.cfg.DeadHostShare),
		Slow:        r.Bool(w.cfg.SlowHostShare),
		RateLimited: r.Bool(w.cfg.RateLimitShare),
	}
}

// transientFailsThrough returns the number of leading attempts a URL fails
// with ErrFetchFailed: 0 for healthy URLs, k in [1, TransientMaxAttempts]
// for flaky ones. The first draw reuses the pre-fault-model "fail/<url>"
// stream, so the attempt-0 failure set is unchanged for existing seeds.
func (w *Web) transientFailsThrough(rawurl string) int {
	if w.cfg.FailureRate <= 0 {
		return 0
	}
	r := rng.New(w.cfg.Seed).Split("fail/" + rawurl)
	if !r.Bool(w.cfg.FailureRate) {
		return 0
	}
	return 1 + r.Intn(w.cfg.transientMaxAttempts())
}

// rateLimitFailsThrough returns how many leading attempts a URL on a
// throttling host is rejected (1 or 2), deterministic per URL.
func (w *Web) rateLimitFailsThrough(rawurl string) int {
	return 1 + rng.New(w.cfg.Seed).Split("fault/rate/"+rawurl).Intn(2)
}

// truncated reports whether one specific attempt's transfer is cut off,
// and at which fraction of the body.
func (w *Web) truncated(rawurl string, attempt int) (bool, float64) {
	if w.cfg.TruncateRate <= 0 {
		return false, 0
	}
	r := rng.New(w.cfg.Seed).Split(fmt.Sprintf("fault/trunc/%s/%d", rawurl, attempt))
	if !r.Bool(w.cfg.TruncateRate) {
		return false, 0
	}
	// Cut somewhere in the middle-to-late body: [0.3, 0.9).
	return true, 0.3 + 0.6*r.Float64()
}

// FetchAttempt serves one fetch attempt of a URL. The outcome — success,
// typed failure, injected latency — is a pure function of
// (config, URL, attempt), so retry loops behave identically across runs:
//
//   - dead hosts fail every attempt with ErrHostDown;
//   - rate-limited hosts reject each URL's first 1-2 attempts with
//     ErrRateLimited and a deterministic FetchInfo.RetryAfterMs;
//   - flaky URLs (FailureRate) fail their first k attempts with
//     ErrFetchFailed, k drawn per URL in [1, TransientMaxAttempts];
//   - individual attempts may return ErrTruncated with a partial body;
//   - slow hosts succeed but report FetchInfo.LatencyMs.
//
// Unknown URLs return ErrNotFound on every attempt (retrying is futile).
func (w *Web) FetchAttempt(rawurl string, attempt int) (*Page, FetchInfo, error) {
	w.fetches++
	var info FetchInfo
	host, _, err := SplitURL(rawurl)
	if err != nil {
		return nil, info, err
	}
	h, ok := w.byName[host]
	if !ok {
		return nil, info, ErrNotFound
	}
	hf := w.HostFaults(h.Name)
	if hf.Dead {
		return nil, info, ErrHostDown
	}
	if hf.Slow {
		info.LatencyMs = w.cfg.slowLatencyMs()
	}
	if hf.RateLimited && attempt < w.rateLimitFailsThrough(rawurl) {
		info.RetryAfterMs = w.cfg.retryAfterMs()
		return nil, info, ErrRateLimited
	}
	if attempt < w.transientFailsThrough(rawurl) {
		return nil, info, ErrFetchFailed
	}
	page, err := w.resolve(rawurl)
	if err != nil {
		return nil, info, err
	}
	if cut, frac := w.truncated(rawurl, attempt); cut {
		partial := *page
		partial.Body = page.Body[:int(float64(len(page.Body))*frac)]
		return &partial, info, ErrTruncated
	}
	return page, info, nil
}
