package synthweb

import (
	"strings"
	"testing"

	"webtextie/internal/boiler"
	"webtextie/internal/langid"
	"webtextie/internal/mimetype"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func testWeb(t testing.TB) *Web {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 120, Diseases: 120}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	cfg := DefaultConfig()
	cfg.NumHosts = 120
	return New(cfg, gen)
}

func TestHostsCreated(t *testing.T) {
	w := testWeb(t)
	if len(w.Hosts) < 100 {
		t.Fatalf("only %d hosts", len(w.Hosts))
	}
	biomed := 0
	for _, h := range w.Hosts {
		if h.Biomed {
			biomed++
		}
		if h.Pages < 2 {
			t.Errorf("host %s has %d pages", h.Name, h.Pages)
		}
	}
	share := float64(biomed) / float64(len(w.Hosts))
	if share < 0.2 || share > 0.55 {
		t.Errorf("biomed share = %.2f", share)
	}
}

func TestHubDomainsPresent(t *testing.T) {
	w := testWeb(t)
	for _, d := range []string{"nih.gov", "wikipedia.org", "cancer.org"} {
		h, ok := w.HostByName(d)
		if !ok {
			t.Fatalf("hub %s missing", d)
		}
		if !h.Hub {
			t.Errorf("%s not marked hub", d)
		}
	}
	if h, _ := w.HostByName("nih.gov"); !h.Biomed {
		t.Error("nih.gov should be biomedical")
	}
	if h, _ := w.HostByName("statcounter.com"); h.Biomed {
		t.Error("statcounter.com should not be biomedical")
	}
}

func TestFetchDeterministic(t *testing.T) {
	w := testWeb(t)
	u := PageURL(w.Hosts[5].Name, 1)
	p1, err := w.Fetch(u)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := w.Fetch(u)
	if string(p1.Body) != string(p2.Body) || p1.Relevant != p2.Relevant {
		t.Fatal("Fetch is not deterministic")
	}
	// A second, independently-built web must agree too.
	w2 := testWeb(t)
	p3, _ := w2.Fetch(u)
	if string(p1.Body) != string(p3.Body) {
		t.Fatal("Fetch differs across identically-configured webs")
	}
}

func TestFetchUnknown(t *testing.T) {
	w := testWeb(t)
	if _, err := w.Fetch("http://no-such-host.example/p0.html"); err == nil {
		t.Error("unknown host fetched")
	}
	if _, err := w.Fetch(PageURL(w.Hosts[0].Name, 999999)); err == nil {
		t.Error("out-of-range page fetched")
	}
	if _, err := w.Fetch("ftp://bad.scheme/x"); err == nil {
		t.Error("bad scheme fetched")
	}
}

func TestSplitURL(t *testing.T) {
	h, p, err := SplitURL("http://a.com/p3.html")
	if err != nil || h != "a.com" || p != "/p3.html" {
		t.Errorf("SplitURL = %q %q %v", h, p, err)
	}
	h, p, err = SplitURL("https://b.org")
	if err != nil || h != "b.org" || p != "/" {
		t.Errorf("SplitURL bare host = %q %q %v", h, p, err)
	}
}

func TestFrontPageIsPortal(t *testing.T) {
	w := testWeb(t)
	var biomedHost *Host
	for _, h := range w.Hosts {
		if h.Biomed && !h.Hub {
			biomedHost = h
			break
		}
	}
	p, err := w.Fetch(PageURL(biomedHost.Name, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Portal {
		t.Error("page 0 should be a portal")
	}
	if p.Relevant {
		t.Error("portal pages must be gold-irrelevant (§2.2 front-page problem)")
	}
	if len(p.Links) < 10 {
		t.Errorf("portal has only %d links", len(p.Links))
	}
}

func TestPageHTMLContainsNetTextAndChrome(t *testing.T) {
	w := testWeb(t)
	found := false
	for _, h := range w.Hosts {
		if !h.Biomed || h.Hub {
			continue
		}
		for i := 1; i < h.Pages && !found; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil {
				t.Fatal(err)
			}
			if p.MIME != mimetype.HTML || p.Lang != "en" || !p.Relevant {
				continue
			}
			found = true
			body := string(p.Body)
			// A slice of the net text must appear (escaped) in the body.
			probe := p.NetText
			if len(probe) > 40 {
				probe = probe[:40]
			}
			if !strings.Contains(body, escapeText(probe)) {
				t.Errorf("net text not in body:\nprobe=%q", probe)
			}
			if !strings.Contains(body, "<nav") || !strings.Contains(body, "<footer>") {
				t.Error("page missing chrome")
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no relevant English HTML page found")
	}
}

func TestNoiseRatesRoughlyCalibrated(t *testing.T) {
	w := testWeb(t)
	var nonHTML, nonEnglish, total int
	for _, h := range w.Hosts[:60] {
		for i := 1; i < h.Pages && i < 30; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil {
				t.Fatal(err)
			}
			total++
			if !p.MIME.IsTextual() {
				nonHTML++
			} else if p.Lang != "en" {
				nonEnglish++
			}
		}
	}
	if total < 300 {
		t.Fatalf("sample too small: %d", total)
	}
	fHTML := float64(nonHTML) / float64(total)
	fLang := float64(nonEnglish) / float64(total)
	if fHTML < 0.04 || fHTML > 0.16 {
		t.Errorf("non-HTML share = %.3f, want ~0.095", fHTML)
	}
	if fLang < 0.06 || fLang > 0.20 {
		t.Errorf("non-English share = %.3f, want ~0.14", fLang)
	}
}

func TestNonEnglishDetectable(t *testing.T) {
	w := testWeb(t)
	id := langid.New()
	checked := 0
	for _, h := range w.Hosts {
		for i := 1; i < h.Pages && checked < 10; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil || p.Lang == "en" || !p.MIME.IsTextual() {
				continue
			}
			checked++
			if id.IsEnglish(p.NetText) {
				t.Errorf("non-English page (%s) passed the English filter: %.60s",
					p.Lang, p.NetText)
			}
		}
	}
	if checked == 0 {
		t.Skip("no non-English pages in sample")
	}
}

func TestBoilerplateRecoverable(t *testing.T) {
	// The gold net text must be recoverable from the cluttered HTML with
	// reasonable precision/recall, as in §4.1.
	w := testWeb(t)
	c := boiler.Default()
	var sumP, sumR float64
	n := 0
	for _, h := range w.Hosts {
		if h.Hub {
			continue
		}
		for i := 1; i < h.Pages && n < 60; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil || p.MIME != mimetype.HTML || p.Lang != "en" || len(p.NetText) < 400 {
				continue
			}
			res := c.Extract(string(p.Body))
			pr, rc := boiler.WordOverlapPR(res.NetText, p.NetText)
			sumP += pr
			sumR += rc
			n++
		}
	}
	if n < 30 {
		t.Fatalf("only %d pages sampled", n)
	}
	avgP, avgR := sumP/float64(n), sumR/float64(n)
	if avgP < 0.80 {
		t.Errorf("boilerplate precision = %.3f, want >= 0.80 (paper: 0.90-0.98)", avgP)
	}
	if avgR < 0.60 {
		t.Errorf("boilerplate recall = %.3f, want >= 0.60 (paper: 0.72-0.82)", avgR)
	}
}

func TestTrapPagesAreInfinite(t *testing.T) {
	w := testWeb(t)
	var trapHost *Host
	for _, h := range w.Hosts {
		if h.Trap {
			trapHost = h
			break
		}
	}
	if trapHost == nil {
		t.Skip("no trap host in this configuration")
	}
	p, err := w.Fetch(TrapURL(trapHost.Name, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Links) == 0 {
		t.Fatal("trap page has no deeper links")
	}
	deeper, err := w.Fetch(p.Links[0])
	if err != nil {
		t.Fatal(err)
	}
	if deeper.URL == p.URL {
		t.Fatal("trap does not descend")
	}
	// Very deep URLs still resolve: the space is unbounded.
	if _, err := w.Fetch(TrapURL(trapHost.Name, 1000000)); err != nil {
		t.Fatal("deep trap URL failed")
	}
}

func TestRobots(t *testing.T) {
	w := testWeb(t)
	for _, h := range w.Hosts {
		rb, ok := w.Robots(h.Name)
		if !ok {
			t.Fatalf("no robots for %s", h.Name)
		}
		if rb.CrawlDelayMs <= 0 {
			t.Errorf("%s: no crawl delay", h.Name)
		}
		if h.DisallowTrap {
			if rb.Allowed("/trap/5") {
				t.Errorf("%s: disallowed trap path allowed", h.Name)
			}
			if !rb.Allowed("/p1.html") {
				t.Errorf("%s: regular path disallowed", h.Name)
			}
		}
	}
	if _, ok := w.Robots("nope.example"); ok {
		t.Error("robots for unknown host")
	}
}

func TestTopicalLocalityOfLinks(t *testing.T) {
	w := testWeb(t)
	intra, cross, crossBio := 0, 0, 0
	for _, h := range w.Hosts {
		if !h.Biomed || h.Hub {
			continue
		}
		for i := 1; i < h.Pages && i < 10; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil || p.MIME != mimetype.HTML {
				continue
			}
			for _, l := range p.Links {
				lh, _, _ := SplitURL(l)
				if lh == h.Name {
					intra++
					continue
				}
				cross++
				if th, ok := w.HostByName(lh); ok && th.Biomed {
					crossBio++
				}
			}
		}
	}
	if intra+cross == 0 {
		t.Fatal("no links found")
	}
	intraShare := float64(intra) / float64(intra+cross)
	if intraShare < 0.6 {
		t.Errorf("intra-host link share = %.2f, want high (weakly-linked biomedical web)", intraShare)
	}
	if cross > 20 {
		locality := float64(crossBio) / float64(cross)
		if locality < 0.5 {
			t.Errorf("topical locality = %.2f, want > 0.5", locality)
		}
	}
}

func TestMarkupCorruptionPresent(t *testing.T) {
	w := testWeb(t)
	corrupted := 0
	total := 0
	for _, h := range w.Hosts[:40] {
		for i := 1; i < h.Pages && i < 10; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil || p.MIME != mimetype.HTML {
				continue
			}
			total++
			body := string(p.Body)
			if strings.Count(body, "<p>") != strings.Count(body, "</p>") ||
				strings.Count(body, "<div") != strings.Count(body, "</div>") {
				corrupted++
			}
		}
	}
	if total == 0 {
		t.Fatal("no HTML pages sampled")
	}
	share := float64(corrupted) / float64(total)
	if share < 0.3 {
		t.Errorf("corrupted share = %.2f, want ~0.6 ([19]: 95%% of real pages broken)", share)
	}
}

func TestFetchesCounter(t *testing.T) {
	w := testWeb(t)
	before := w.Fetches()
	_, _ = w.Fetch(PageURL(w.Hosts[0].Name, 0))
	if w.Fetches() != before+1 {
		t.Error("fetch counter not incremented")
	}
}

func BenchmarkFetch(b *testing.B) {
	w := testWeb(b)
	urls := make([]string, 0, 100)
	for _, h := range w.Hosts[:20] {
		for i := 0; i < h.Pages && i < 5; i++ {
			urls = append(urls, PageURL(h.Name, i))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = w.Fetch(urls[i%len(urls)])
	}
}

func TestMirrorPages(t *testing.T) {
	lexM := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 120, Diseases: 120}, 0.75)
	genM := textgen.NewGenerator(2, lexM, textgen.DefaultProfiles())
	cfg := DefaultConfig()
	cfg.NumHosts = 120
	cfg.MirrorShare = 0.15 // raise for test visibility
	w := New(cfg, genM)

	mirrors := 0
	checked := 0
	for _, h := range w.Hosts {
		for i := 2; i < h.Pages && checked < 400; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil {
				continue
			}
			checked++
			if p.MirrorOf == "" {
				continue
			}
			mirrors++
			src, err := w.Fetch(p.MirrorOf)
			if err != nil {
				t.Fatalf("mirror source unfetchable: %v", err)
			}
			if !strings.HasPrefix(p.NetText, src.NetText) {
				t.Fatal("mirror net text does not extend its source")
			}
			if p.NetText == src.NetText {
				t.Fatal("mirror is an exact copy; must differ for near-dedup testing")
			}
			if p.Relevant != src.Relevant {
				t.Fatal("mirror relevance differs from source")
			}
		}
	}
	if mirrors == 0 {
		t.Fatal("no mirror pages generated")
	}
}
