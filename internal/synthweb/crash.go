// Shard-crash schedules: the fault model's process-level tier. The host
// and URL faults in faults.go model the *web* misbehaving; a weeks-long
// partitioned crawl also loses whole workers — a tagger segfaults on a
// degenerate page, a shard process is OOM-killed mid-round (§4.1, §5).
// CrashPlan models that: shard s panics mid-step in round r, for its
// first k step attempts, as a pure function of (plan, shard, round,
// attempt). Like every other injected fault, a scheduled crash clears
// deterministically once the attempt counter passes its clearing point,
// so chaos runs under a crash schedule are replayable bit for bit.
package synthweb

import (
	"fmt"
	"strconv"
	"strings"

	"webtextie/internal/rng"
)

// CrashPoint pins one explicit crash: shard Shard's step in round Round
// panics on its first Attempts executions (a value < 1 is treated as 1).
type CrashPoint struct {
	Shard    int `json:"shard"`
	Round    int `json:"round"`
	Attempts int `json:"attempts"`
}

// CrashPlan is a deterministic shard-crash schedule. Fixed points fire
// unconditionally; on top of them, every (shard, round) pair crashes
// with probability Rate, persisting through a per-pair number of step
// attempts drawn in [1, MaxAttempts]. The schedule is a pure function of
// the plan value — no state, safe to share across goroutines.
type CrashPlan struct {
	// Seed feeds the per-(shard, round) crash draws.
	Seed uint64
	// Rate is the per-(shard, round) crash probability (0 disables the
	// random tier; fixed Points still fire).
	Rate float64
	// MaxAttempts bounds how many step attempts a random crash point
	// persists for (default 1: crash once, succeed on the retry).
	MaxAttempts int
	// Points are explicit crash points, checked before the random tier.
	Points []CrashPoint
}

func (p *CrashPlan) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// FailsThrough returns how many leading step attempts of (shard, round)
// panic: 0 for clean pairs, k >= 1 for scheduled crash points. Pure in
// (plan, shard, round).
func (p *CrashPlan) FailsThrough(shard, round int) int {
	if p == nil {
		return 0
	}
	for _, pt := range p.Points {
		if pt.Shard == shard && pt.Round == round {
			if pt.Attempts < 1 {
				return 1
			}
			return pt.Attempts
		}
	}
	if p.Rate <= 0 {
		return 0
	}
	r := rng.New(p.Seed).Split(fmt.Sprintf("crash/%d/%d", shard, round))
	if !r.Bool(p.Rate) {
		return 0
	}
	return 1 + r.Intn(p.maxAttempts())
}

// Crashes reports whether step attempt number `attempt` (0-based) of
// (shard, round) is scheduled to panic.
func (p *CrashPlan) Crashes(shard, round, attempt int) bool {
	return attempt < p.FailsThrough(shard, round)
}

// Empty reports whether the plan schedules nothing (nil, or no rate and
// no points) — supervisors skip arming crash hooks for empty plans.
func (p *CrashPlan) Empty() bool {
	return p == nil || (p.Rate <= 0 && len(p.Points) == 0)
}

// ParseCrashPoints parses a comma-separated "shard:round[:attempts]"
// list (the -shard-crash-at CLI syntax) into explicit crash points.
func ParseCrashPoints(spec string) ([]CrashPoint, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []CrashPoint
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("synthweb: crash point %q: want shard:round[:attempts]", part)
		}
		nums := make([]int, len(fields))
		for i, f := range fields {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("synthweb: crash point %q: %v", part, err)
			}
			if n < 0 {
				return nil, fmt.Errorf("synthweb: crash point %q: negative field", part)
			}
			nums[i] = n
		}
		pt := CrashPoint{Shard: nums[0], Round: nums[1], Attempts: 1}
		if len(nums) == 3 {
			if nums[2] < 1 {
				return nil, fmt.Errorf("synthweb: crash point %q: attempts must be >= 1", part)
			}
			pt.Attempts = nums[2]
		}
		out = append(out, pt)
	}
	return out, nil
}
