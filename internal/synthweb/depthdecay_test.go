package synthweb

import (
	"strconv"
	"strings"
	"testing"

	"webtextie/internal/mimetype"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func decayWeb(t testing.TB, decay float64) *Web {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 120, Diseases: 120}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	cfg := DefaultConfig()
	cfg.NumHosts = 120
	cfg.DepthDecay = decay
	return New(cfg, gen)
}

// TestDepthDecayZeroPreservesWeb: DepthDecay is strictly opt-in — the zero
// value renders every page byte-identical to a config without the field, so
// all existing golden fixtures and determinism baselines are untouched.
func TestDepthDecayZeroPreservesWeb(t *testing.T) {
	base := testWeb(t)
	zero := decayWeb(t, 0)
	for _, h := range base.Hosts[:30] {
		for i := 0; i < h.Pages && i < 12; i++ {
			u := PageURL(h.Name, i)
			a, errA := base.Fetch(u)
			b, errB := zero.Fetch(u)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: fetch error mismatch (%v vs %v)", u, errA, errB)
			}
			if errA != nil {
				continue
			}
			if string(a.Body) != string(b.Body) || a.Relevant != b.Relevant {
				t.Fatalf("%s: DepthDecay=0 page differs from default web", u)
			}
		}
	}
}

// TestDepthDecayRelevanceFallsWithIndex: with decay on, biomedical hosts are
// dense near the front and sparse in the tail — the harvest-rate pitfall the
// time-aware doctor is built to catch.
func TestDepthDecayRelevanceFallsWithIndex(t *testing.T) {
	w := decayWeb(t, 0.25)
	var shallowRel, shallowN, deepRel, deepN int
	for _, h := range w.Hosts {
		if !h.Biomed || h.Hub {
			continue
		}
		for i := 1; i < h.Pages; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil || !p.MIME.IsTextual() || p.Lang != "en" {
				continue
			}
			if i <= 6 {
				shallowN++
				if p.Relevant {
					shallowRel++
				}
			} else if i >= 25 {
				deepN++
				if p.Relevant {
					deepRel++
				}
			}
		}
	}
	if shallowN < 50 || deepN < 50 {
		t.Fatalf("sample too small: shallow=%d deep=%d", shallowN, deepN)
	}
	shallow := float64(shallowRel) / float64(shallowN)
	deep := float64(deepRel) / float64(deepN)
	if shallow < 0.12 {
		t.Errorf("shallow relevant density = %.3f, want a dense front (>= 0.12)", shallow)
	}
	if deep > shallow/2 {
		t.Errorf("deep density %.3f not < half of shallow %.3f: no decay", deep, shallow)
	}
}

// TestDepthDecayForwardBiasedLinks: intra-host links under decay point a
// bounded window ahead, so a crawl marches from the dense front into the
// sparse tail instead of sampling indices uniformly.
func TestDepthDecayForwardBiasedLinks(t *testing.T) {
	w := decayWeb(t, 0.25)
	checked := 0
	for _, h := range w.Hosts {
		if h.Hub {
			continue
		}
		for i := 1; i < h.Pages-1 && checked < 300; i++ {
			p, err := w.Fetch(PageURL(h.Name, i))
			if err != nil || p.MIME != mimetype.HTML {
				continue
			}
			for _, l := range p.Links {
				lh, path, err := SplitURL(l)
				if err != nil || lh != h.Name {
					continue
				}
				mid, ok := strings.CutPrefix(path, "/p")
				mid, ok2 := strings.CutSuffix(mid, ".html")
				if !ok || !ok2 {
					continue
				}
				ti, err := strconv.Atoi(mid)
				if err != nil {
					continue
				}
				checked++
				if ti <= i || ti > i+6 {
					t.Fatalf("host %s page %d links intra-host to %d, want (%d, %d]",
						h.Name, i, ti, i, i+6)
				}
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d intra-host links inspected", checked)
	}
}
