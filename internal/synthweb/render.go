package synthweb

import (
	"fmt"
	"strings"

	"webtextie/internal/mimetype"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

// depthDecayOnset is the default page index where DepthDecay begins to
// bite: density is uniform through this front band, hyperbolic beyond it.
const depthDecayOnset = 8

// decayOnset resolves the configured front-band width.
func (w *Web) decayOnset() int {
	if w.cfg.DepthDecayOnset > 0 {
		return w.cfg.DepthDecayOnset
	}
	return depthDecayOnset
}

// renderPage materializes a regular page.
func (w *Web) renderPage(h *Host, idx int) *Page {
	r := w.pageRNG(h, idx)
	p := &Page{URL: PageURL(h.Name, idx), Host: h, Lang: "en", MIME: mimetype.HTML}
	p.Portal = idx == 0 || (h.Hub && idx < 4)

	// Noise classes are decided first; they apply to non-portal pages only
	// (portals are always real HTML hubs).
	if !p.Portal {
		switch {
		case r.Bool(w.cfg.NonHTMLShare):
			return w.renderBinaryPage(r, p)
		case r.Bool(w.cfg.NonEnglishShare):
			p.Lang = rng.Pick(r, []string{"de", "fr", "es", "nl"})
		case idx >= 2 && r.Bool(w.cfg.MirrorShare):
			return w.renderMirrorPage(r, h, idx, p)
		}
	}

	// Topical gold label.
	if h.Biomed {
		off := w.cfg.OffTopicShareOnBiomed
		if onset := w.decayOnset(); w.cfg.DepthDecay > 0 && idx > onset {
			// Depth-decaying relevance: density holds through the front
			// band (the curated hub pages a crawl enters through), then
			// deeper pages are increasingly off-topic. Still exactly one
			// Bool draw per page, so the noise and fault draws that
			// follow stay aligned across idx.
			off = 1 - (1-off)/(1+w.cfg.DepthDecay*float64(idx-onset))
		}
		p.Relevant = !r.Bool(off)
	} else {
		p.Relevant = r.Bool(w.cfg.BiomedShareOnGeneral)
	}
	// Portal pages are content-poor: even on biomedical hosts they read as
	// generic link hubs, which is why classifiers reject them (§2.2).
	if p.Portal {
		p.Relevant = false
	}

	// Generate the main document.
	switch {
	case p.Lang != "en":
		p.NetText = foreignText(r, p.Lang)
	case p.Portal:
		d := w.gen.Doc(r, textgen.Irrelevant, p.URL)
		trimPortal(d)
		p.Doc = d
		p.NetText = d.Text
	case !p.Portal && r.Bool(w.cfg.TooShortShare):
		// Too-short page: a stub of one or two sentences.
		d := w.gen.Doc(r, textgen.Irrelevant, p.URL)
		trimToSentences(d, 1)
		p.Doc = d
		p.NetText = d.Text
	case p.Relevant:
		d := w.gen.Doc(r, textgen.Relevant, p.URL)
		p.Doc = d
		p.NetText = d.Text
	default:
		d := w.gen.Doc(r, textgen.Irrelevant, p.URL)
		p.Doc = d
		p.NetText = d.Text
	}

	p.Links = w.pageLinks(r, h, idx, p)
	p.Body = []byte(w.renderHTML(r, h, idx, p))
	return p
}

// trimPortal cuts a document down to a couple of teaser sentences.
func trimPortal(d *textgen.Doc) { trimToSentences(d, 3) }

func trimToSentences(d *textgen.Doc, n int) {
	if len(d.Sentences) <= n {
		return
	}
	d.Sentences = d.Sentences[:n]
	end := d.SentSpans[n-1][1]
	d.SentSpans = d.SentSpans[:n]
	d.Text = d.Text[:end]
	var ms []textgen.Mention
	for _, m := range d.Mentions {
		if m.End <= end {
			ms = append(ms, m)
		}
	}
	d.Mentions = ms
}

// renderMirrorPage produces a near-copy of an earlier page on the same
// host: same net text plus a trailing mirror notice, fresh chrome. Exact
// deduplication misses these; MinHash near-dedup (internal/dedup) catches
// them.
func (w *Web) renderMirrorPage(r *rng.RNG, h *Host, idx int, p *Page) *Page {
	src := w.renderPage(h, idx/2)
	if !src.MIME.IsTextual() || src.Lang != "en" || src.NetText == "" {
		// Unusable source: fall through to a regular irrelevant page.
		d := w.gen.Doc(r, textgen.Irrelevant, p.URL)
		p.Doc = d
		p.NetText = d.Text
		p.Links = w.pageLinks(r, h, idx, p)
		p.Body = []byte(w.renderHTML(r, h, idx, p))
		return p
	}
	p.MirrorOf = src.URL
	p.Relevant = src.Relevant
	p.Doc = src.Doc
	p.NetText = src.NetText + " This page is a hosted mirror copy of the original article."
	p.Links = w.pageLinks(r, h, idx, p)
	p.Body = []byte(w.renderHTML(r, h, idx, p))
	return p
}

// renderBinaryPage produces a non-HTML body (PDF, image, archive, or an
// embedded-slides blob mislabelled as .html — the §5 MIME war story).
func (w *Web) renderBinaryPage(r *rng.RNG, p *Page) *Page {
	kind := r.Intn(4)
	size := 2048 + r.Intn(8192)
	body := make([]byte, size)
	for i := range body {
		body[i] = byte(r.Intn(256))
	}
	switch kind {
	case 0:
		p.MIME = mimetype.PDF
		copy(body, "%PDF-1.4\n")
		p.URL = strings.TrimSuffix(p.URL, ".html") + ".pdf"
	case 1:
		p.MIME = mimetype.Zip
		copy(body, "PK\x03\x04")
	case 2:
		p.MIME = mimetype.PNG
		copy(body, "\x89PNG\r\n\x1a\n")
		p.URL = strings.TrimSuffix(p.URL, ".html") + ".png"
	default:
		// The nasty case: binary office document served under .html.
		p.MIME = mimetype.MSWord
		copy(body, "\xd0\xcf\x11\xe0")
	}
	p.Body = body
	return p
}

// foreignText produces non-English filler from per-language function-word
// pools — enough signal for the n-gram identifier to reject it.
var foreignPools = map[string][]string{
	"de": strings.Fields(`der die das und ist nicht ein eine mit von auf für
		werden wurde sind haben nach durch über zwischen patienten studie
		behandlung ergebnisse zeigten deutliche gruppe wirkung dosis jahre`),
	"fr": strings.Fields(`le la les de des et est dans pour avec sur une un
		pas par plus sont ont été patients étude traitement résultats montré
		réduction significative groupe dose pendant phase années santé`),
	"es": strings.Fields(`el la los las de que y en es un una con por para
		no se del al pacientes estudio tratamiento resultados mostraron
		reducción significativa grupo dosis durante fase años salud`),
	"nl": strings.Fields(`de het een en van in is dat op te zijn met voor
		niet aan er om ook patiënten studie behandeling resultaten toonden
		significante vermindering groep dosis tijdens fase jaren`),
}

func foreignText(r *rng.RNG, lang string) string {
	pool := foreignPools[lang]
	n := 80 + r.Intn(200)
	words := make([]string, n)
	for i := range words {
		words[i] = rng.Pick(r, pool)
		if i > 0 && i%12 == 0 {
			words[i-1] += "."
		}
	}
	return strings.Join(words, " ")
}

// pageLinks computes the out-link set of a page: navigational intra-host
// links plus a few cross-host content links with topical locality.
func (w *Web) pageLinks(r *rng.RNG, h *Host, idx int, p *Page) []string {
	var links []string
	seen := map[string]bool{}
	add := func(u string) {
		if !seen[u] && u != p.URL {
			seen[u] = true
			links = append(links, u)
		}
	}

	nLinks := 4 + r.Intn(12)
	if p.Portal {
		nLinks = 15 + r.Intn(30) // hubs are link farms
	}
	for i := 0; i < nLinks; i++ {
		if r.Bool(w.cfg.IntraHostLinkShare) {
			// Navigational or same-host content link.
			ti := r.Intn(h.Pages)
			if w.cfg.DepthDecay > 0 && idx+1 < h.Pages {
				// Forward-biased navigation: link a small window ahead,
				// so the frontier marches from the dense shallow pages
				// into the sparse tail over crawl rounds.
				window := h.Pages - idx - 1
				if window > 6 {
					window = 6
				}
				ti = idx + 1 + r.Intn(window)
			}
			add(PageURL(h.Name, ti))
			continue
		}
		// Cross-host link with topical locality. Most cross-host links
		// point at site front pages (people link to homepages); since
		// front pages are content-poor portals the classifier rejects,
		// these chains die after one hop — the §2.2 weak-linking effect.
		target := w.chooseTargetHost(r, h)
		if target == nil {
			continue
		}
		ti := 0
		if r.Bool(0.05) && target.Pages > 1 {
			ti = r.Intn(target.Pages)
		}
		add(PageURL(target.Name, ti))
	}
	// Trap entrance: a dynamically generated calendar-style link.
	if h.Trap && r.Bool(0.3) {
		add(TrapURL(h.Name, 0))
	}
	return links
}

// chooseTargetHost picks a cross-host link target, respecting topical
// locality and hub preference.
func (w *Web) chooseTargetHost(r *rng.RNG, from *Host) *Host {
	wantBiomed := from.Biomed
	if from.Biomed && !r.Bool(w.cfg.TopicalLocality) {
		wantBiomed = false
	} else if !from.Biomed {
		// General hosts rarely link into the biomedical web: the paper's
		// crawl found biomedical sites weakly linked from outside.
		wantBiomed = r.Bool(0.05)
	}
	// Hubs receive a disproportionate share of links (power-law in-degree).
	for tries := 0; tries < 20; tries++ {
		var h *Host
		if r.Bool(0.4) {
			h = w.Hosts[r.Intn(min(len(hubDomains), len(w.Hosts)))]
		} else {
			h = w.Hosts[r.Intn(len(w.Hosts))]
		}
		if h != from && h.Biomed == wantBiomed {
			return h
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// renderTrapPage produces one page of the infinite trap subtree.
func (w *Web) renderTrapPage(h *Host, depth int) *Page {
	r := w.pageRNG(h, 1000000+depth)
	p := &Page{
		URL:  TrapURL(h.Name, depth),
		Host: h, MIME: mimetype.HTML, Lang: "en",
		Relevant: false,
	}
	p.NetText = fmt.Sprintf("calendar view %d", depth)
	// Each trap page links deeper: unbounded unique URLs.
	p.Links = []string{TrapURL(h.Name, depth+1), TrapURL(h.Name, depth+2)}
	var b strings.Builder
	b.WriteString("<html><head><title>Calendar</title></head><body>")
	fmt.Fprintf(&b, "<p>%s</p>", p.NetText)
	for _, l := range p.Links {
		fmt.Fprintf(&b, `<a href="%s">next</a> `, l)
	}
	_ = r
	b.WriteString("</body></html>")
	p.Body = []byte(b.String())
	return p
}

// navLabels and boilerplate fragments for page chrome.
var navLabels = []string{"Home", "About", "Contact", "News", "Archive", "Search", "Login", "Sitemap"}
var adPhrases = []string{
	"Buy now best price online limited offer today only",
	"Subscribe to our newsletter for weekly updates and deals",
	"Download our free app for exclusive member benefits",
	"Click here to win amazing prizes in our daily draw",
}
var footerPhrases = []string{
	"Copyright 2016 All rights reserved", "Privacy Policy", "Terms of Use",
	"Powered by SiteEngine", "RSS Feed",
}

// renderHTML assembles the served HTML: head with script/style noise, nav
// chrome, the article (the gold net text), sidebar ads, footer — then
// optional markup corruption.
func (w *Web) renderHTML(r *rng.RNG, h *Host, idx int, p *Page) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head>")
	fmt.Fprintf(&b, "<title>%s - page %d</title>", h.Name, idx)
	b.WriteString(`<style>.nav{color:#333}</style><script>var _tr=1;track("` + h.Name + `");</script>`)
	b.WriteString("</head><body>")

	// Navigation bar: link-dense chrome.
	b.WriteString(`<nav class="nav">`)
	for i, l := range p.Links {
		if i >= 8 {
			break
		}
		fmt.Fprintf(&b, `<a href="%s">%s</a> `, l, navLabels[i%len(navLabels)])
	}
	b.WriteString("</nav>")

	// Article: paragraphs of the gold net text. A fraction of paragraphs
	// renders as lists or tables — the content class boilerplate detection
	// systematically drops ("tables and lists, which often contain
	// valuable facts, are not recognized properly in many cases", §4.1).
	b.WriteString(`<article>`)
	for _, para := range paragraphs(r, p) {
		switch {
		case r.Bool(0.08):
			b.WriteString("<ul>")
			for _, item := range splitSentences(para) {
				fmt.Fprintf(&b, "<li>%s</li>", escapeText(item))
			}
			b.WriteString("</ul>\n")
		case r.Bool(0.06):
			b.WriteString("<table>")
			for _, item := range splitSentences(para) {
				fmt.Fprintf(&b, "<tr><td>%s</td></tr>", escapeText(item))
			}
			b.WriteString("</table>\n")
		default:
			fmt.Fprintf(&b, "<p>%s</p>\n", escapeText(para))
		}
	}
	b.WriteString("</article>")

	// Sidebar with remaining links and an ad block.
	b.WriteString(`<div class="sidebar"><ul>`)
	for i, l := range p.Links {
		if i < 8 {
			continue
		}
		fmt.Fprintf(&b, `<li><a href="%s">related link %d</a></li>`, l, i)
	}
	b.WriteString("</ul>")
	fmt.Fprintf(&b, `<div class="ad"><a href="http://ads.example/c%d">%s</a></div></div>`,
		r.Intn(1000), rng.Pick(r, adPhrases))

	// Footer chrome.
	b.WriteString("<footer>")
	for _, f := range footerPhrases {
		fmt.Fprintf(&b, `<a href="http://%s/meta">%s</a> | `, h.Name, f)
	}
	b.WriteString("</footer></body></html>")

	html := b.String()
	if r.Bool(w.cfg.CorruptShare) {
		html = corrupt(r, html)
	}
	return html
}

// paragraphs splits the net text into paragraph strings along sentence
// boundaries (3-6 sentences per paragraph).
func paragraphs(r *rng.RNG, p *Page) []string {
	if p.Doc == nil {
		if p.NetText == "" {
			return nil
		}
		return []string{p.NetText}
	}
	var out []string
	spans := p.Doc.SentSpans
	for i := 0; i < len(spans); {
		n := 3 + r.Intn(4)
		j := i + n
		if j > len(spans) {
			j = len(spans)
		}
		out = append(out, p.Doc.Text[spans[i][0]:spans[j-1][1]])
		i = j
	}
	// Mirror pages carry extra text beyond the source document (the
	// trailing notice); keep NetText authoritative.
	if len(p.NetText) > len(p.Doc.Text) {
		out = append(out, p.NetText[len(p.Doc.Text):])
	}
	return out
}

// splitSentences chops a paragraph at sentence-final periods for list and
// table rendering.
func splitSentences(para string) []string {
	var out []string
	start := 0
	for i := 0; i < len(para); i++ {
		if para[i] == '.' && (i+1 == len(para) || para[i+1] == ' ') {
			out = append(out, strings.TrimSpace(para[start:i+1]))
			start = i + 1
		}
	}
	if rest := strings.TrimSpace(para[start:]); rest != "" {
		out = append(out, rest)
	}
	return out
}

func escapeText(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// corrupt introduces the markup defects that dominate real-world HTML
// ([19]: 95% of pages non-conforming): dropped end tags, misnesting,
// unquoted attributes, stray end tags.
func corrupt(r *rng.RNG, html string) string {
	ops := 1 + r.Intn(3)
	for i := 0; i < ops; i++ {
		switch r.Intn(4) {
		case 0:
			// Drop some </p> tags.
			html = strings.Replace(html, "</p>", "", 1+r.Intn(3))
		case 1:
			// Drop a </div>.
			html = strings.Replace(html, "</div>", "", 1)
		case 2:
			// Stray end tag injected mid-document.
			if idx := strings.Index(html, "<article>"); idx >= 0 {
				html = html[:idx] + "</span>" + html[idx:]
			}
		default:
			// Unquote an attribute.
			html = strings.Replace(html, `class="nav"`, `class=nav`, 1)
		}
	}
	return html
}
