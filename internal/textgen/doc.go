package textgen

import (
	"strings"

	"webtextie/internal/rng"
)

// Token is one generated token with its gold annotations.
type Token struct {
	// Text is the surface form.
	Text string
	// Tag is the gold part-of-speech tag.
	Tag string
	// Ent is the entity class if this token is part of a mention.
	Ent EntityType
	// First marks the first token of a multi-token mention (BIO "B").
	First bool
	// Pron is the pronoun class +1 if this token is a pronoun, else 0.
	Pron int
}

// Sentence is a generated sentence with gold structure.
type Sentence struct {
	Tokens []Token
	// Degenerate marks navigation-residue fragments with no sentence
	// structure (no terminal period, arbitrary length) — the inputs that
	// destabilize POS taggers on web text (Fig 3a).
	Degenerate bool
	// Negated reports whether the sentence contains a negation particle.
	Negated bool
	// RelSubjObj marks sentences whose subject and object are both entity
	// mentions connected by the main verb — a gold entity relation.
	RelSubjObj bool
	// RelVerb is the connecting verb's surface form when RelSubjObj holds.
	RelVerb string
}

// Mention is a gold entity mention with character offsets into Doc.Text.
type Mention struct {
	Type  EntityType
	Name  string
	Entry *Entry
	// Start/End are byte offsets into the rendered document text,
	// half-open [Start, End).
	Start, End int
	// Sentence is the index of the containing sentence.
	Sentence int
}

// Doc is one generated document: gold token structure plus rendered text.
type Doc struct {
	ID        string
	Kind      CorpusKind
	Sentences []Sentence
	// Text is the rendered plain text (net text for web pages; the HTML
	// wrapper is added by synthweb).
	Text string
	// SentSpans holds [start, end) byte offsets of each sentence in Text.
	SentSpans [][2]int
	// Mentions are the gold entity mentions in Text order.
	Mentions []Mention
	// Relations are the gold subject-verb-object entity relations.
	Relations []Relation
}

// Relation is a gold binary relation between two entity mentions connected
// by the sentence's main verb (the "relationships between entities" the IE
// operator package annotates, §3.1).
type Relation struct {
	// Sentence is the index of the carrying sentence.
	Sentence int
	// A and B index into Doc.Mentions (subject and object).
	A, B int
	// Verb is the connecting verb's surface form.
	Verb string
	// Negated reports whether the relation is under negation.
	Negated bool
}

// NumTokens returns the total token count.
func (d *Doc) NumTokens() int {
	n := 0
	for _, s := range d.Sentences {
		n += len(s.Tokens)
	}
	return n
}

// Generator produces documents following per-corpus profiles over a shared
// lexicon. A Generator is safe for concurrent use as long as each call gets
// its own *rng.RNG.
type Generator struct {
	Lex      *Lexicon
	Profiles map[CorpusKind]*Profile

	// Per-(corpus, class) name pools: a corpus-specific Zipf over a
	// corpus-specific permutation of the class's entries, split into
	// in-dictionary and out-of-dictionary sub-pools. The permutations give
	// each corpus its own popularity ranking, which is what produces the
	// partial overlaps of Fig 8 and the JSD separations of §4.3.2.
	pools map[CorpusKind]map[EntityType]*namePool
}

type namePool struct {
	inDict  []*Entry
	oov     []*Entry
	zipfIn  *rng.Zipf
	zipfOOV *rng.Zipf
}

// NewGenerator builds a generator. The seed controls the per-corpus name
// permutations (not the per-document randomness, which callers supply).
func NewGenerator(seed uint64, lex *Lexicon, profiles map[CorpusKind]*Profile) *Generator {
	g := &Generator{Lex: lex, Profiles: profiles, pools: map[CorpusKind]map[EntityType]*namePool{}}
	base := rng.New(seed)
	for _, kind := range CorpusKinds {
		g.pools[kind] = map[EntityType]*namePool{}
		for _, t := range EntityTypes {
			r := base.Split(kind.String() + "/" + t.String())
			var inDict, oov []*Entry
			for _, e := range lex.Entries[t] {
				if e.InDictionary {
					inDict = append(inDict, e)
				} else {
					oov = append(oov, e)
				}
			}
			// The three scientific corpora (Relevant web, Medline, PMC)
			// share one "biomedical mainstream" popularity ranking with a
			// mild per-corpus perturbation; the Irrelevant corpus gets an
			// independent ranking. This is what makes the relevant crawl
			// distributionally closer to the literature than to the
			// rejected pages (§4.3.2: JSD(rel,medl) 0.29-0.36 vs
			// JSD(rel,irrel) 0.45-0.65).
			if kind == Irrelevant {
				inDict = permute(r, inDict)
				oov = permute(r, oov)
			} else {
				sci := rng.New(seed).Split("sci-base/" + t.String())
				inDict = permute(sci, inDict)
				oov = permute(rng.New(seed).Split("sci-base-oov/"+t.String()), oov)
				perturb(r, inDict, 0.12)
				perturb(r, oov, 0.12)
			}
			p := profiles[kind]
			pool := &namePool{inDict: inDict, oov: oov}
			if len(inDict) > 0 {
				pool.zipfIn = rng.NewZipf(r.Split("zipf-in"), len(inDict), p.ZipfExponent)
			}
			if len(oov) > 0 {
				pool.zipfOOV = rng.NewZipf(r.Split("zipf-oov"), len(oov), p.ZipfExponent)
			}
			g.pools[kind][t] = pool
		}
	}
	return g
}

func permute(r *rng.RNG, es []*Entry) []*Entry {
	out := make([]*Entry, len(es))
	copy(out, es)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// perturb applies local swaps (within a small window), creating a ranking
// that correlates with the input order — in particular the head of the
// popularity ranking stays at the head, so corpora sharing a base ranking
// agree on their most frequent names.
func perturb(r *rng.RNG, es []*Entry, frac float64) {
	n := int(float64(len(es)) * frac)
	if len(es) < 2 {
		return
	}
	for i := 0; i < n; i++ {
		a := r.Intn(len(es))
		b := a + r.Intn(7) - 3
		if b < 0 || b >= len(es) {
			continue
		}
		es[a], es[b] = es[b], es[a]
	}
}

// pickEntry selects an entity entry for a mention in the given corpus.
func (g *Generator) pickEntry(r *rng.RNG, kind CorpusKind, t EntityType) *Entry {
	p := g.Profiles[kind]
	pool := g.pools[kind][t]
	if (r.Bool(p.OOVEntityShare) && pool.zipfOOV != nil) || pool.zipfIn == nil {
		if pool.zipfOOV == nil {
			return pool.inDict[pool.zipfIn.Draw()]
		}
		// The Zipf is deterministic per pool but shared; draw an index from
		// the caller's RNG instead to stay reproducible per document.
		return pool.oov[zipfDraw(r, len(pool.oov), p.ZipfExponent)]
	}
	return pool.inDict[zipfDraw(r, len(pool.inDict), p.ZipfExponent)]
}

// zipfDraw is a cheap inverse-CDF-free Zipf-ish draw: it raises a uniform
// to a power, which concentrates mass on small ranks with skew increasing
// in s. Exactness is irrelevant; we only need a long-tailed rank choice
// that is a pure function of the caller's RNG state.
func zipfDraw(r *rng.RNG, n int, s float64) int {
	u := r.Float64()
	// u^k maps uniform mass toward 0; k grows with s.
	k := int(1 + 2*s + 0.5)
	x := u
	for i := 0; i < k; i++ {
		x *= u
	}
	idx := int(x * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Doc generates one document of the given corpus kind.
func (g *Generator) Doc(r *rng.RNG, kind CorpusKind, id string) *Doc {
	p := g.Profiles[kind]
	nSent := int(r.LogNorm(p.SentencesPerDoc.Mu, p.SentencesPerDoc.Sigma) + 0.5)
	if nSent < 1 {
		nSent = 1
	}
	d := &Doc{ID: id, Kind: kind}
	for i := 0; i < nSent; i++ {
		s := g.sentence(r, p)
		capitalizeSentence(&s)
		d.Sentences = append(d.Sentences, s)
	}
	g.render(d)
	return d
}

// capitalizeSentence upper-cases the first letter of the sentence unless
// the sentence opens with an entity mention (gene symbols and drug names
// keep their canonical case). Without this, sentence boundary detection
// would reject every boundary ("lowercase after period" is a standard
// non-boundary signal), which is not how real prose behaves.
func capitalizeSentence(s *Sentence) {
	if len(s.Tokens) == 0 || s.Degenerate {
		return
	}
	t := &s.Tokens[0]
	if t.Ent != None || t.Text == "" {
		return
	}
	c := t.Text[0]
	if c >= 'a' && c <= 'z' {
		t.Text = string(c-32) + t.Text[1:]
	}
}

// sentence generates one sentence according to the profile.
func (g *Generator) sentence(r *rng.RNG, p *Profile) Sentence {
	if r.Bool(p.DegenerateRate) {
		return g.degenerate(r)
	}
	var s Sentence
	target := int(r.LogNorm(p.TokensPerSentence.Mu, p.TokensPerSentence.Sigma) + 0.5)
	if target < 5 {
		target = 5
	}

	// Decide the sentence's special content up front.
	negate := r.Bool(p.NegationRate)
	var prons []PronounClass
	for c := PronounClass(0); c < PronounClass(NumPronounClasses); c++ {
		if r.Bool(p.PronounRate[c]) {
			prons = append(prons, c)
		}
	}
	var ents []EntityType
	for _, t := range EntityTypes {
		for i := 0; i < r.Poisson(p.EntityRate[t]); i++ {
			ents = append(ents, t)
		}
	}
	nTLA := 0
	if r.Bool(p.TLARate) {
		nTLA = 1
	}

	// Subject noun phrase.
	subjectEntity := false
	if len(prons) > 0 && prons[0] == PronSubject {
		s.add(g.pronoun(r, PronSubject))
		prons = prons[1:]
	} else if len(ents) > 0 {
		s.addAll(g.entityNP(r, p, &s, ents[0]))
		ents = ents[1:]
		subjectEntity = true
	} else {
		s.addAll(g.nounPhrase(r, p))
	}

	// Verb phrase, with optional negation.
	vp := g.verbPhrase(r, p, negate)
	s.addAll(vp)
	s.Negated = negate

	// Object: entity or plain NP. An entity subject and an entity object
	// joined by the main verb form a gold relation.
	if len(ents) > 0 {
		s.addAll(g.entityNP(r, p, &s, ents[0]))
		ents = ents[1:]
		if subjectEntity {
			s.RelSubjObj = true
			s.RelVerb = mainVerb(vp)
		}
	} else {
		s.addAll(g.nounPhrase(r, p))
	}

	// Pad with prepositional phrases, remaining entities, pronouns, TLAs
	// and optional relative clauses until the token budget is spent.
	for len(s.Tokens) < target || len(ents) > 0 || len(prons) > 0 || nTLA > 0 {
		switch {
		case len(ents) > 0:
			s.add(Token{Text: rng.Pick(r, prepositions), Tag: TagIN})
			s.addAll(g.entityNP(r, p, &s, ents[0]))
			ents = ents[1:]
		case len(prons) > 0:
			s.addAll(g.pronounPhrase(r, p, prons[0]))
			prons = prons[1:]
		case nTLA > 0:
			// A non-entity acronym. Half the time in a noun frame ("the
			// FAQ page"), half bare after a preposition ("of FAQ") — the
			// bare form is indistinguishable from a weak-context gene
			// mention, which is why abstract-trained taggers tag TLAs as
			// genes on web text (§4.3.2).
			if r.Bool(0.5) {
				s.add(Token{Text: rng.Pick(r, determiners), Tag: TagDT})
				s.add(Token{Text: RandomTLA(r), Tag: TagNNP})
				s.add(Token{Text: rng.Pick(r, p.register.nouns), Tag: TagNN})
			} else {
				s.add(Token{Text: rng.Pick(r, prepositions), Tag: TagIN})
				s.add(Token{Text: RandomTLA(r), Tag: TagNNP})
			}
			nTLA--
		case r.Bool(0.25):
			// Relative clause.
			s.add(Token{Text: ",", Tag: TagComma})
			s.add(Token{Text: "which", Tag: TagWDT})
			s.addAll(g.verbPhrase(r, p, false))
			s.addAll(g.nounPhrase(r, p))
		default:
			s.add(Token{Text: rng.Pick(r, prepositions), Tag: TagIN})
			s.addAll(g.nounPhrase(r, p))
		}
		if len(s.Tokens) > target+20 {
			break
		}
	}

	// Optional parenthesized insert before the final period.
	if r.Bool(p.ParenRate) {
		s.add(Token{Text: "(", Tag: TagLRB})
		for _, w := range strings.Fields(rng.Pick(r, parenFillers)) {
			tag := TagSYM
			if w[0] >= 'a' && w[0] <= 'z' {
				tag = TagNN
			} else if w[0] >= '0' && w[0] <= '9' {
				tag = TagCD
			}
			s.add(Token{Text: w, Tag: tag})
		}
		s.add(Token{Text: ")", Tag: TagRRB})
	}
	s.add(Token{Text: ".", Tag: TagPeriod})
	return s
}

func (s *Sentence) add(t Token)       { s.Tokens = append(s.Tokens, t) }
func (s *Sentence) addAll(ts []Token) { s.Tokens = append(s.Tokens, ts...) }

// mainVerb returns the last verb-tagged token of a verb phrase.
func mainVerb(vp []Token) string {
	for i := len(vp) - 1; i >= 0; i-- {
		if strings.HasPrefix(vp[i].Tag, "VB") {
			return vp[i].Text
		}
	}
	if len(vp) > 0 {
		return vp[len(vp)-1].Text
	}
	return ""
}

func (g *Generator) pronoun(r *rng.RNG, c PronounClass) Token {
	tag := TagPRP
	if c == PronPossessive {
		tag = TagPRPS
	} else if c == PronDemonstrative {
		tag = TagDT
	} else if c == PronRelative {
		tag = TagWDT
	}
	return Token{Text: rng.Pick(r, pronounWords[c]), Tag: tag, Pron: int(c) + 1}
}

// pronounPhrase embeds a pronoun of class c in a small grammatical frame.
func (g *Generator) pronounPhrase(r *rng.RNG, p *Profile, c PronounClass) []Token {
	pron := g.pronoun(r, c)
	switch c {
	case PronPossessive:
		return []Token{{Text: rng.Pick(r, prepositions), Tag: TagIN}, pron,
			{Text: rng.Pick(r, p.register.nouns), Tag: TagNN}}
	case PronDemonstrative:
		return []Token{{Text: rng.Pick(r, prepositions), Tag: TagIN}, pron,
			{Text: rng.Pick(r, p.register.nouns), Tag: TagNN}}
	case PronRelative:
		vb := rng.Pick(r, p.register.verbs)
		return []Token{{Text: ",", Tag: TagComma}, pron,
			{Text: vb[1], Tag: TagVBZ},
			{Text: rng.Pick(r, determiners), Tag: TagDT},
			{Text: rng.Pick(r, p.register.nouns), Tag: TagNN}}
	default:
		return []Token{{Text: rng.Pick(r, prepositions), Tag: TagIN}, pron}
	}
}

func (g *Generator) nounPhrase(r *rng.RNG, p *Profile) []Token {
	out := []Token{{Text: rng.Pick(r, determiners), Tag: TagDT}}
	if r.Bool(0.5) {
		out = append(out, Token{Text: rng.Pick(r, p.register.adjectives), Tag: TagJJ})
	}
	noun := rng.Pick(r, p.register.nouns)
	tag := TagNN
	if r.Bool(0.25) {
		noun += "s"
		tag = TagNNS
	}
	out = append(out, Token{Text: noun, Tag: tag})
	return out
}

func (g *Generator) verbPhrase(r *rng.RNG, p *Profile, negate bool) []Token {
	var out []Token
	if r.Bool(0.25) {
		out = append(out, Token{Text: rng.Pick(r, p.register.adverbs), Tag: TagRB})
	}
	if negate {
		switch r.Intn(3) {
		case 0:
			out = append(out, Token{Text: "did", Tag: TagVBD}, Token{Text: "not", Tag: TagNEG},
				Token{Text: rng.Pick(r, p.register.verbs)[0], Tag: TagVB})
		case 1:
			out = append(out, Token{Text: "neither", Tag: TagNEG},
				Token{Text: rng.Pick(r, p.register.verbsPast), Tag: TagVBD},
				Token{Text: "nor", Tag: TagNEG},
				Token{Text: rng.Pick(r, p.register.verbsPast), Tag: TagVBD})
		default:
			out = append(out, Token{Text: "was", Tag: TagVBD}, Token{Text: "not", Tag: TagNEG},
				Token{Text: rng.Pick(r, p.register.verbsPast), Tag: TagVBN})
		}
		return out
	}
	if r.Bool(0.5) {
		out = append(out, Token{Text: rng.Pick(r, p.register.verbs)[1], Tag: TagVBZ})
	} else {
		out = append(out, Token{Text: rng.Pick(r, p.register.verbsPast), Tag: TagVBD})
	}
	return out
}

// entityNP renders an entity mention, optionally wrapped in a
// class-indicative context frame. The mention tokens carry gold labels.
func (g *Generator) entityNP(r *rng.RNG, p *Profile, s *Sentence, t EntityType) []Token {
	e := g.pickEntry(r, p.Kind, t)
	surface := e.Name
	if len(e.Synonyms) > 0 && r.Bool(0.3) {
		surface = rng.Pick(r, e.Synonyms)
	}
	words := strings.Fields(surface)
	mention := make([]Token, 0, len(words))
	for i, w := range words {
		mention = append(mention, Token{Text: w, Tag: TagNNP, Ent: t, First: i == 0})
	}
	strong := r.Bool(p.EntityContextStrength)
	switch t {
	case Gene:
		if strong {
			out := []Token{{Text: "the", Tag: TagDT}}
			out = append(out, mention...)
			out = append(out, Token{Text: "gene", Tag: TagNN})
			return out
		}
	case Drug:
		if strong {
			if r.Bool(0.5) {
				out := []Token{{Text: "treated", Tag: TagVBN}, {Text: "with", Tag: TagIN}}
				return append(out, mention...)
			}
			out := append([]Token{}, mention...)
			return append(out, Token{Text: "therapy", Tag: TagNN})
		}
	case Disease:
		if strong {
			if r.Bool(0.5) {
				out := []Token{{Text: "patients", Tag: TagNNS}, {Text: "with", Tag: TagIN}}
				return append(out, mention...)
			}
			out := append([]Token{}, mention...)
			return append(out, Token{Text: "patients", Tag: TagNNS})
		}
	}
	return mention
}

// degenerate produces a long structureless fragment (keyword soup), the web
// pathology that makes sentence detection emit 2000+ character "sentences".
func (g *Generator) degenerate(r *rng.RNG) Sentence {
	n := 60 + r.Intn(400)
	s := Sentence{Degenerate: true}
	navWords := []string{
		"home", "login", "contact", "sitemap", "copyright", "privacy", "terms",
		"next", "previous", "search", "menu", "share", "rss", "archive",
	}
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			s.add(Token{Text: rng.Pick(r, navWords), Tag: TagNN})
		case 1:
			s.add(Token{Text: RandomTLA(r), Tag: TagNNP})
		case 2:
			s.add(Token{Text: rng.Pick(r, webNouns), Tag: TagNN})
		default:
			s.add(Token{Text: itoa(r.Intn(2026)), Tag: TagCD})
		}
		if r.Bool(0.08) {
			s.add(Token{Text: "|", Tag: TagSYM})
		}
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// noSpaceBefore reports whether a token attaches to the previous one
// without whitespace when rendering.
func noSpaceBefore(text string) bool {
	switch text {
	case ".", ",", ")", ";", ":":
		return true
	}
	return false
}

// render produces d.Text, d.SentSpans, and d.Mentions with byte offsets.
func (g *Generator) render(d *Doc) {
	var b strings.Builder
	for si, s := range d.Sentences {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		sentStart := b.Len()
		var cur *Mention
		for ti, tok := range s.Tokens {
			if ti > 0 && !noSpaceBefore(tok.Text) && s.Tokens[ti-1].Text != "(" {
				b.WriteByte(' ')
			}
			start := b.Len()
			b.WriteString(tok.Text)
			end := b.Len()
			if tok.Ent != None {
				if tok.First || cur == nil || cur.Type != tok.Ent {
					if cur != nil {
						d.Mentions = append(d.Mentions, *cur)
					}
					cur = &Mention{Type: tok.Ent, Start: start, End: end, Sentence: si}
				} else {
					cur.End = end
				}
			} else if cur != nil {
				d.Mentions = append(d.Mentions, *cur)
				cur = nil
			}
		}
		if cur != nil {
			d.Mentions = append(d.Mentions, *cur)
		}
		d.SentSpans = append(d.SentSpans, [2]int{sentStart, b.Len()})
	}
	d.Text = b.String()
	for i := range d.Mentions {
		m := &d.Mentions[i]
		m.Name = d.Text[m.Start:m.End]
		if e, ok := g.Lex.Lookup(m.Name); ok {
			m.Entry = e
		}
	}
	// Gold relations: for a subject-verb-object sentence, the first two
	// mentions of the sentence are the subject and the object.
	for si, s := range d.Sentences {
		if !s.RelSubjObj {
			continue
		}
		var idx []int
		for mi, m := range d.Mentions {
			if m.Sentence == si {
				idx = append(idx, mi)
			}
		}
		if len(idx) < 2 {
			continue
		}
		d.Relations = append(d.Relations, Relation{
			Sentence: si, A: idx[0], B: idx[1],
			Verb: s.RelVerb, Negated: s.Negated,
		})
	}
}
