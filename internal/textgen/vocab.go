package textgen

// MedPost-style part-of-speech tagset, simplified to the tags the linguistic
// analysis and the HMM tagger need. The real MedPost tagset has ~60 tags;
// the paper only depends on the tagger's runtime behaviour (Fig 3a) and on
// broad word classes, so a compact Penn-style subset suffices.
const (
	TagNN     = "NN"   // singular noun
	TagNNS    = "NNS"  // plural noun
	TagNNP    = "NNP"  // proper noun (entity tokens)
	TagVB     = "VB"   // verb, base
	TagVBZ    = "VBZ"  // verb, 3rd person singular
	TagVBD    = "VBD"  // verb, past
	TagVBN    = "VBN"  // verb, past participle
	TagJJ     = "JJ"   // adjective
	TagRB     = "RB"   // adverb
	TagDT     = "DT"   // determiner
	TagIN     = "IN"   // preposition
	TagCC     = "CC"   // coordinating conjunction
	TagPRP    = "PRP"  // personal pronoun
	TagPRPS   = "PRP$" // possessive pronoun
	TagWDT    = "WDT"  // wh-determiner (relative)
	TagTO     = "TO"
	TagCD     = "CD"  // cardinal number
	TagNEG    = "NEG" // not / nor / neither (MedPost keeps a dedicated tag)
	TagLRB    = "-LRB-"
	TagRRB    = "-RRB-"
	TagComma  = ","
	TagPeriod = "."
	TagSYM    = "SYM"
)

// AllTags lists every tag the generator can emit; the HMM tagger uses this
// as its closed tag inventory.
var AllTags = []string{
	TagNN, TagNNS, TagNNP, TagVB, TagVBZ, TagVBD, TagVBN, TagJJ, TagRB,
	TagDT, TagIN, TagCC, TagPRP, TagPRPS, TagWDT, TagTO, TagCD, TagNEG,
	TagLRB, TagRRB, TagComma, TagPeriod, TagSYM,
}

// PronounClass enumerates the six pronoun classes counted in §4.3.1.
type PronounClass int

const (
	PronSubject PronounClass = iota
	PronObject
	PronPossessive
	PronDemonstrative
	PronRelative
	PronReflexive
	numPronounClasses
)

// NumPronounClasses is the number of distinct classes ("we counted six
// different classes of pronouns in each data set", §4.3.1).
const NumPronounClasses = int(numPronounClasses)

// String names the class in reports.
func (p PronounClass) String() string {
	switch p {
	case PronSubject:
		return "subject"
	case PronObject:
		return "object"
	case PronPossessive:
		return "possessive"
	case PronDemonstrative:
		return "demonstrative"
	case PronRelative:
		return "relative"
	case PronReflexive:
		return "reflexive"
	}
	return "unknown"
}

// Pronoun surface forms per class, with the POS tag each carries.
var pronounWords = map[PronounClass][]string{
	PronSubject:       {"he", "she", "it", "they", "we"},
	PronObject:        {"him", "her", "them", "us"},
	PronPossessive:    {"his", "its", "their", "our"},
	PronDemonstrative: {"this", "that", "these", "those"},
	PronRelative:      {"which", "who", "whom", "whose"},
	PronReflexive:     {"itself", "themselves", "himself", "herself"},
}

// NegationWords are the three forms the paper's regex detector looks for
// ("mentions of the words not, nor, and neither", §4.3.1).
var NegationWords = []string{"not", "nor", "neither"}

// General-English vocabulary, split by word class. Two registers exist:
// a scientific register (Medline/PMC/relevant-web) and a mundane register
// (irrelevant web pages: shopping, sports, travel, ...).
var (
	determiners  = []string{"the", "a", "an", "each", "some", "no", "all", "both"}
	prepositions = []string{"of", "in", "with", "for", "on", "by", "from", "during", "after", "between", "against", "under"}
	conjunctions = []string{"and", "or", "but"}

	sciNouns = []string{
		"patient", "study", "treatment", "expression", "mutation", "therapy",
		"cell", "tumor", "protein", "pathway", "response", "dose", "effect",
		"analysis", "cohort", "trial", "receptor", "sample", "tissue", "gene",
		"biomarker", "survival", "risk", "outcome", "mechanism", "inhibitor",
		"sequence", "variant", "level", "group", "model", "assay", "diagnosis",
	}
	sciVerbs = [][2]string{ // base, 3rd-person-singular
		{"regulate", "regulates"}, {"inhibit", "inhibits"}, {"activate", "activates"},
		{"suppress", "suppresses"}, {"induce", "induces"}, {"mediate", "mediates"},
		{"encode", "encodes"}, {"express", "expresses"}, {"bind", "binds"},
		{"reduce", "reduces"}, {"increase", "increases"}, {"cause", "causes"},
		{"affect", "affects"}, {"target", "targets"}, {"modulate", "modulates"},
	}
	sciVerbsPast = []string{
		"regulated", "inhibited", "activated", "suppressed", "induced",
		"observed", "measured", "analyzed", "treated", "reported", "identified",
		"associated", "compared", "evaluated", "detected",
	}
	sciAdjectives = []string{
		"significant", "clinical", "molecular", "cellular", "therapeutic",
		"malignant", "benign", "elevated", "reduced", "novel", "functional",
		"genetic", "systemic", "adverse", "relevant", "primary",
	}
	sciAdverbs = []string{
		"significantly", "strongly", "markedly", "frequently", "rarely",
		"substantially", "partially", "directly", "notably",
	}

	webNouns = []string{
		"price", "shipping", "review", "account", "order", "game", "season",
		"team", "recipe", "hotel", "flight", "photo", "video", "comment",
		"update", "store", "deal", "phone", "car", "house", "movie", "music",
		"coupon", "ticket", "blog", "post", "page", "site", "weather", "news",
	}
	webVerbs = [][2]string{
		{"buy", "buys"}, {"sell", "sells"}, {"watch", "watches"}, {"play", "plays"},
		{"visit", "visits"}, {"book", "books"}, {"read", "reads"}, {"share", "shares"},
		{"love", "loves"}, {"post", "posts"}, {"ship", "ships"}, {"save", "saves"},
	}
	webVerbsPast = []string{
		"bought", "sold", "watched", "played", "visited", "booked", "posted",
		"shared", "loved", "saved", "updated", "reviewed",
	}
	webAdjectives = []string{
		"new", "best", "free", "cheap", "great", "popular", "easy", "fast",
		"local", "official", "amazing", "top", "daily", "hot",
	}
	webAdverbs = []string{
		"now", "today", "online", "here", "quickly", "always", "never", "often",
	}

	// Abbreviation expansions placed inside parentheses, and citation-like
	// parenthetical fillers for the PMC register.
	parenFillers = []string{
		"p < 0.01", "n = 42", "Fig. 2", "Table 3", "95% CI", "e.g.",
		"i.e.", "reviewed in 12", "data not shown", "OR 2.3",
	}
)

// register bundles the word pools for one text register.
type register struct {
	nouns      []string
	verbs      [][2]string
	verbsPast  []string
	adjectives []string
	adverbs    []string
}

var sciRegister = register{sciNouns, sciVerbs, sciVerbsPast, sciAdjectives, sciAdverbs}
var webRegister = register{webNouns, webVerbs, webVerbsPast, webAdjectives, webAdverbs}
