// Package textgen synthesizes the text resources the paper consumes but we
// cannot ship: biomedical name dictionaries (Gene Ontology / Drugbank /
// UMLS-MeSH substitutes), and the four document corpora (relevant web,
// irrelevant web, Medline abstracts, PMC full texts).
//
// Every generated document carries full ground truth — tokenization,
// MedPost-style POS tags, entity mention spans, negation/pronoun/parenthesis
// markers, and (for web pages) the true net text — so that all quality
// numbers in the paper (classifier P/R, boilerplate P/R, NER behaviour)
// can be measured against known-by-construction gold standards instead of
// the manual annotation the authors used.
package textgen

import (
	"fmt"
	"strings"

	"webtextie/internal/rng"
)

// EntityType enumerates the three biomedical entity classes the paper
// extracts (§3.2).
type EntityType int

const (
	// None marks a token that is not part of any entity mention.
	None EntityType = iota
	// Gene covers gene and protein names (paper dictionary: >700,000 entries).
	Gene
	// Drug covers drug and chemical names (paper dictionary: 51,188 entries).
	Drug
	// Disease covers disease names (paper dictionary: 61,438 entries).
	Disease
)

// String returns the lower-case class name used in reports.
func (e EntityType) String() string {
	switch e {
	case Gene:
		return "gene"
	case Drug:
		return "drug"
	case Disease:
		return "disease"
	default:
		return "none"
	}
}

// EntityTypes lists the three real entity classes in report order.
var EntityTypes = []EntityType{Disease, Drug, Gene}

// Entry is one dictionary entry: a canonical name plus surface variants.
type Entry struct {
	// Name is the canonical surface form.
	Name string
	// Type is the entity class of the entry.
	Type EntityType
	// Synonyms are additional surface forms (paper: gene dictionaries
	// include synonyms; ~900,000 distinct gene names exist in public
	// databases including synonyms, §4.3.2).
	Synonyms []string
	// TLA marks three-letter-acronym forms, the dominant source of
	// ML false positives on web text (§4.3.2).
	TLA bool
	// InDictionary reports whether the fuzzy-dictionary tagger knows this
	// entry. A fraction of real-world names is always missing from curated
	// dictionaries ("dictionaries are necessarily incomplete in a field
	// developing as fast as biomedical research", §3.2); those entries are
	// only reachable by the ML taggers.
	InDictionary bool
}

// Surfaces returns all surface forms of the entry, canonical name first.
func (e *Entry) Surfaces() []string {
	out := make([]string, 0, 1+len(e.Synonyms))
	out = append(out, e.Name)
	out = append(out, e.Synonyms...)
	return out
}

// LexiconSizes configures how many entries to synthesize per class.
// Defaults (DefaultLexiconSizes) are the paper's dictionary sizes scaled
// 1:100 so automaton construction remains measurable but laptop-friendly.
type LexiconSizes struct {
	Genes    int
	Drugs    int
	Diseases int
}

// DefaultLexiconSizes scales the paper's dictionaries (700,000 / 51,188 /
// 61,438 entries) by 1:100.
func DefaultLexiconSizes() LexiconSizes {
	return LexiconSizes{Genes: 7000, Drugs: 512, Diseases: 614}
}

// Lexicon holds the synthesized dictionaries for all three entity classes.
type Lexicon struct {
	Entries map[EntityType][]*Entry
	// byName resolves a surface form to its entry (first writer wins;
	// ambiguous names across classes are a known pain point in biomedical
	// NER, §3.2, and are deliberately possible here).
	byName map[string]*Entry
}

// ByType returns the entries of one class.
func (l *Lexicon) ByType(t EntityType) []*Entry { return l.Entries[t] }

// Lookup resolves a surface form.
func (l *Lexicon) Lookup(surface string) (*Entry, bool) {
	e, ok := l.byName[surface]
	return e, ok
}

// DictionarySurfaces returns the surface forms of all in-dictionary entries
// of one class, i.e. the input to the fuzzy dictionary matcher.
func (l *Lexicon) DictionarySurfaces(t EntityType) []string {
	var out []string
	for _, e := range l.Entries[t] {
		if e.InDictionary {
			out = append(out, e.Surfaces()...)
		}
	}
	return out
}

// Morpheme pools for name synthesis. The goal is not biological accuracy
// but the *string shapes* that make biomedical NER hard: mixed-case
// alphanumeric gene symbols, Greek-lettered drug names, multi-word latinate
// disease names, and a large population of three-letter acronyms.
var (
	geneStems = []string{
		"BRC", "TP", "EGF", "KRA", "MYC", "NOTCH", "WNT", "CDK", "RAS", "AKT",
		"PTEN", "RB", "VEGF", "HER", "ALK", "BRAF", "JAK", "STAT", "SMAD", "FGF",
		"PIK", "MTOR", "ATM", "CHEK", "PALB", "RAD", "MLH", "MSH", "APC", "NF",
		"CACT", "SOX", "PAX", "HOX", "GATA", "FOX", "RUNX", "TBX", "ZNF", "KLF",
	}
	geneSuffixes = []string{"A", "B", "C", "R", "L", "X", "1", "2", "3", "4", "11", "21", "3A", "2B", "1L"}
	drugPrefixes = []string{
		"aspi", "meto", "ator", "lisi", "omep", "simva", "amlo", "gaba", "sertra",
		"fluo", "cipro", "doxy", "predni", "warfa", "insu", "keto", "napro", "ibu",
		"aceta", "oxy", "hydro", "chloro", "benz", "sulfa", "tetra", "erythro",
	}
	drugSuffixes = []string{
		"rin", "prolol", "vastatin", "nopril", "razole", "dipine", "pentin",
		"line", "xetine", "floxacin", "cycline", "sone", "farin", "lin", "profen",
		"minophen", "codone", "thiazide", "quine", "cillin", "mycin", "zepam",
	}
	diseaseStems = []string{
		"carcin", "lymph", "leuk", "melan", "thym", "glio", "nephr", "hepat",
		"derma", "arthr", "oste", "neur", "cardi", "gastr", "pneum", "bronch",
		"encephal", "mening", "my", "fibr", "scler", "isch", "thromb", "anem",
	}
	diseaseSuffixes = []string{
		"oma", "itis", "osis", "emia", "pathy", "algia", "plegia", "trophy",
		"sclerosis", "ectasia", "iasis", "opathy",
	}
	diseaseQualifiers = []string{
		"chronic", "acute", "advanced", "metastatic", "congenital", "idiopathic",
		"juvenile", "refractory", "recurrent", "primary", "secondary", "severe",
	}
	diseaseAnatomy = []string{
		"renal", "hepatic", "cardiac", "pulmonary", "gastric", "cerebral",
		"ovarian", "prostate", "pancreatic", "colorectal", "thyroid", "bladder",
	}
)

// NewLexicon synthesizes a lexicon with the given sizes. dictCoverage is
// the fraction of entries included in the curated dictionaries (the rest
// exist "in the wild" only and are reachable solely via ML extraction).
func NewLexicon(r *rng.RNG, sizes LexiconSizes, dictCoverage float64) *Lexicon {
	l := &Lexicon{
		Entries: map[EntityType][]*Entry{},
		byName:  map[string]*Entry{},
	}
	gen := func(t EntityType, n int, mk func(*rng.RNG, int) (string, bool)) {
		seen := map[string]bool{}
		for i := 0; len(l.Entries[t]) < n; i++ {
			name, tla := mk(r, i)
			if seen[name] || l.byName[name] != nil {
				continue
			}
			seen[name] = true
			e := &Entry{
				Name:         name,
				Type:         t,
				TLA:          tla,
				InDictionary: r.Bool(dictCoverage),
			}
			// Roughly 30% of entries carry one synonym, mirroring the
			// synonym-rich gene databases.
			if r.Bool(0.3) {
				syn := synonymOf(r, name, i)
				if !seen[syn] {
					seen[syn] = true
					e.Synonyms = append(e.Synonyms, syn)
				}
			}
			l.Entries[t] = append(l.Entries[t], e)
			for _, s := range e.Surfaces() {
				if _, dup := l.byName[s]; !dup {
					l.byName[s] = e
				}
			}
		}
	}
	gen(Gene, sizes.Genes, makeGeneName)
	gen(Drug, sizes.Drugs, makeDrugName)
	gen(Disease, sizes.Diseases, makeDiseaseName)
	return l
}

func makeGeneName(r *rng.RNG, i int) (string, bool) {
	stem := rng.Pick(r, geneStems)
	// A sizeable share of real gene symbols are bare short acronyms (RAS,
	// ATM, EGF, TP53-style): emit the stem alone sometimes. This is what
	// teaches abstract-trained ML taggers that acronym-shaped tokens are
	// genes — the root of the §4.3.2 TLA false-positive explosion on web
	// text ("a very large number of false positives are three letter
	// acronyms ... almost always tagged as genes").
	if len(stem) <= 4 && r.Bool(0.35) {
		return stem, len(stem) == 3
	}
	suf := rng.Pick(r, geneSuffixes)
	name := stem + suf
	if len(name) > 6 || r.Bool(0.2) {
		// Force uniqueness pressure toward numbered variants.
		name = fmt.Sprintf("%s%s%d", stem, suf, i%97)
	}
	tla := len(name) == 3 && name == strings.ToUpper(name)
	return name, tla
}

func makeDrugName(r *rng.RNG, i int) (string, bool) {
	name := rng.Pick(r, drugPrefixes) + rng.Pick(r, drugSuffixes)
	if r.Bool(0.15) {
		name = fmt.Sprintf("%s-%d", name, 10+i%90)
	}
	// Drug names are title-cased about half the time in running text; the
	// canonical dictionary form is lower-case.
	return name, false
}

func makeDiseaseName(r *rng.RNG, i int) (string, bool) {
	base := rng.Pick(r, diseaseStems) + rng.Pick(r, diseaseSuffixes)
	switch r.Intn(4) {
	case 0:
		return base, false
	case 1:
		return rng.Pick(r, diseaseQualifiers) + " " + base, false
	case 2:
		return rng.Pick(r, diseaseAnatomy) + " " + base, false
	default:
		return rng.Pick(r, diseaseQualifiers) + " " + rng.Pick(r, diseaseAnatomy) + " " + base, false
	}
}

// synonymOf derives a plausible synonym surface form: an acronym for
// multi-word names, a numbered or case variant otherwise.
func synonymOf(r *rng.RNG, name string, i int) string {
	words := strings.Fields(name)
	if len(words) >= 2 {
		var b strings.Builder
		for _, w := range words {
			b.WriteByte(byte(strings.ToUpper(w[:1])[0]))
		}
		return b.String() // acronym, frequently a TLA — exactly the ambiguity §4.3.2 describes
	}
	if r.Bool(0.5) {
		return strings.ToUpper(name)
	}
	return fmt.Sprintf("%s-%d", name, 1+i%9)
}

// RandomTLA returns a random three-letter acronym that is (almost surely)
// NOT an entity: web text is full of these (HTML, USA, FAQ, ...) and they
// are what BANNER-style taggers mis-tag as genes on web input.
func RandomTLA(r *rng.RNG) string {
	b := make([]byte, 3)
	for i := range b {
		b[i] = byte('A' + r.Intn(26))
	}
	return string(b)
}
