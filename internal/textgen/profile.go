package textgen

// CorpusKind identifies the four text collections compared in §4.3.
type CorpusKind int

const (
	// Relevant is the crawled corpus classified as biomedical.
	Relevant CorpusKind = iota
	// Irrelevant is the crawled corpus classified as off-domain.
	Irrelevant
	// Medline is the abstract collection (21.7 M abstracts in the paper).
	Medline
	// PMC is the PLoS open-access full-text collection (~250 K articles).
	PMC
	numCorpusKinds
)

// NumCorpusKinds is the number of corpora under comparison.
const NumCorpusKinds = int(numCorpusKinds)

// CorpusKinds lists all corpora in the paper's reporting order (Table 3).
var CorpusKinds = []CorpusKind{Relevant, Irrelevant, Medline, PMC}

// String names the corpus as in the paper's tables.
func (k CorpusKind) String() string {
	switch k {
	case Relevant:
		return "Relevant"
	case Irrelevant:
		return "Irrelevant"
	case Medline:
		return "Medline"
	case PMC:
		return "PMC"
	}
	return "unknown"
}

// LogNormal holds the parameters of a log-normal distribution used for
// length modelling (document and sentence lengths are heavy-tailed in all
// four corpora, Fig 6a-b).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// Profile captures the linguistic fingerprint of one corpus. The values
// below are reverse-engineered from the paper's measurements so that our
// measurement pipeline reproduces the *orderings and ratios* of §4.3:
//
//   - net-text document length: PMC > Relevant > Irrelevant > Medline (Fig 6a)
//   - sentence length: PMC > Medline > Relevant > Irrelevant (Fig 6b; [6])
//   - negation: PMC ≈ Irrelevant > Relevant > Medline (Fig 6c)
//   - pronouns (demonstrative/relative/object): PMC > web corpora (§4.3.1)
//   - parentheses: PMC > Relevant > Medline > Irrelevant (§4.3.1)
//   - entity mentions per 1000 sentences: the avg* figures of §4.3.2
type Profile struct {
	Kind CorpusKind

	// register selects the scientific or mundane word pools.
	register register

	// SentencesPerDoc and TokensPerSentence drive the length distributions.
	SentencesPerDoc   LogNormal
	TokensPerSentence LogNormal

	// NegationRate is the per-sentence probability of a negation particle.
	NegationRate float64

	// PronounRate is the per-sentence probability of each pronoun class.
	PronounRate [NumPronounClasses]float64

	// ParenRate is the per-sentence probability of a parenthesized insert.
	ParenRate float64

	// EntityRate holds mentions per sentence for each entity class
	// (the paper reports per-1000-sentence averages; divide by 1000).
	EntityRate map[EntityType]float64

	// OOVEntityShare is the fraction of entity mentions drawn from entries
	// missing from the curated dictionaries. Higher on the web, where novel
	// and informal names circulate before databases record them.
	OOVEntityShare float64

	// TLARate is the per-sentence probability of a non-entity three-letter
	// acronym (FAQ, USA, ...). Web text is saturated with these; Medline
	// abstracts are not — which is exactly why abstract-trained ML taggers
	// over-tag TLAs on web text (§4.3.2).
	TLARate float64

	// DegenerateRate is the probability that a "sentence" is actually a
	// run-on fragment (navigation residue, keyword lists) with no sentence
	// structure — the >2000-character "sentences" that destabilize the POS
	// tagger (Fig 3a discussion). Only web corpora exhibit these.
	DegenerateRate float64

	// ZipfExponent skews entity-name popularity; higher values concentrate
	// mentions on fewer distinct names.
	ZipfExponent float64

	// EntityContextStrength is the probability that an entity mention is
	// wrapped in a class-indicative context ("the X gene", "treated with X").
	// High for scientific prose, lower for the web — another driver of the
	// ML domain-shift problem.
	EntityContextStrength float64
}

// DefaultProfiles returns the calibrated profile set. Entity rates are the
// paper's per-1000-sentence averages (§4.3.2: avg_rel, avg_irrel, avg_medl,
// avg_pmc for diseases/drugs; dictionary-based averages for genes).
func DefaultProfiles() map[CorpusKind]*Profile {
	return map[CorpusKind]*Profile{
		Relevant: {
			Kind:              Relevant,
			register:          sciRegister,
			SentencesPerDoc:   LogNormal{Mu: 3.4, Sigma: 0.9}, // ~30 sentences, large variance ("largest variance", Fig 6a)
			TokensPerSentence: LogNormal{Mu: 2.85, Sigma: 0.45},
			NegationRate:      0.09,
			PronounRate:       [NumPronounClasses]float64{0.10, 0.04, 0.08, 0.06, 0.07, 0.01},
			ParenRate:         0.10,
			EntityRate: map[EntityType]float64{
				Disease: 128.49 / 1000,
				Drug:    97.83 / 1000,
				Gene:    128.23 / 1000,
			},
			OOVEntityShare:        0.35,
			TLARate:               0.22,
			DegenerateRate:        0.02,
			ZipfExponent:          0.85,
			EntityContextStrength: 0.55,
		},
		Irrelevant: {
			Kind:              Irrelevant,
			register:          webRegister,
			SentencesPerDoc:   LogNormal{Mu: 2.8, Sigma: 0.7}, // ~16 sentences
			TokensPerSentence: LogNormal{Mu: 2.6, Sigma: 0.4},
			NegationRate:      0.13,
			PronounRate:       [NumPronounClasses]float64{0.12, 0.05, 0.09, 0.05, 0.05, 0.01},
			ParenRate:         0.03,
			EntityRate: map[EntityType]float64{
				Disease: 4.57 / 1000,
				Drug:    6.85 / 1000,
				Gene:    4.39 / 1000,
			},
			OOVEntityShare:        0.60,
			TLARate:               0.05,
			DegenerateRate:        0.02,
			ZipfExponent:          1.1,
			EntityContextStrength: 0.25,
		},
		Medline: {
			Kind:              Medline,
			register:          sciRegister,
			SentencesPerDoc:   LogNormal{Mu: 1.72, Sigma: 0.35}, // ~6 sentences ≈ 865 chars (Table 3)
			TokensPerSentence: LogNormal{Mu: 2.95, Sigma: 0.35},
			NegationRate:      0.06,
			PronounRate:       [NumPronounClasses]float64{0.06, 0.03, 0.05, 0.05, 0.06, 0.01},
			ParenRate:         0.08,
			EntityRate: map[EntityType]float64{
				Disease: 204.92 / 1000,
				Drug:    293.95 / 1000,
				Gene:    415.58 / 1000,
			},
			OOVEntityShare:        0.15,
			TLARate:               0.03,
			DegenerateRate:        0,
			ZipfExponent:          0.75,
			EntityContextStrength: 0.85,
		},
		PMC: {
			Kind:              PMC,
			register:          sciRegister,
			SentencesPerDoc:   LogNormal{Mu: 5.4, Sigma: 0.4}, // ~225 sentences ≈ full text
			TokensPerSentence: LogNormal{Mu: 3.05, Sigma: 0.4},
			NegationRate:      0.14,
			PronounRate:       [NumPronounClasses]float64{0.14, 0.07, 0.11, 0.10, 0.12, 0.02},
			ParenRate:         0.22,
			EntityRate: map[EntityType]float64{
				Disease: 117.51 / 1000,
				Drug:    275.95 / 1000,
				Gene:    74.12 / 1000,
			},
			OOVEntityShare:        0.20,
			TLARate:               0.06,
			DegenerateRate:        0,
			ZipfExponent:          0.8,
			EntityContextStrength: 0.80,
		},
	}
}
