package textgen

import (
	"strings"
	"testing"
	"testing/quick"

	"webtextie/internal/rng"
)

func testLexicon(t *testing.T) *Lexicon {
	t.Helper()
	return NewLexicon(rng.New(1), LexiconSizes{Genes: 400, Drugs: 150, Diseases: 150}, 0.75)
}

func testGenerator(t *testing.T) *Generator {
	t.Helper()
	return NewGenerator(2, testLexicon(t), DefaultProfiles())
}

func TestLexiconSizes(t *testing.T) {
	l := testLexicon(t)
	if got := len(l.ByType(Gene)); got != 400 {
		t.Errorf("genes = %d, want 400", got)
	}
	if got := len(l.ByType(Drug)); got != 150 {
		t.Errorf("drugs = %d, want 150", got)
	}
	if got := len(l.ByType(Disease)); got != 150 {
		t.Errorf("diseases = %d, want 150", got)
	}
}

func TestLexiconNamesUniqueWithinType(t *testing.T) {
	l := testLexicon(t)
	for _, et := range EntityTypes {
		seen := map[string]bool{}
		for _, e := range l.ByType(et) {
			if seen[e.Name] {
				t.Errorf("%v: duplicate canonical name %q", et, e.Name)
			}
			seen[e.Name] = true
		}
	}
}

func TestLexiconDictCoverage(t *testing.T) {
	l := NewLexicon(rng.New(3), LexiconSizes{Genes: 2000, Drugs: 500, Diseases: 500}, 0.75)
	in := 0
	total := 0
	for _, et := range EntityTypes {
		for _, e := range l.ByType(et) {
			total++
			if e.InDictionary {
				in++
			}
		}
	}
	frac := float64(in) / float64(total)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("dictionary coverage = %.3f, want ~0.75", frac)
	}
}

func TestLexiconLookup(t *testing.T) {
	l := testLexicon(t)
	e := l.ByType(Gene)[0]
	got, ok := l.Lookup(e.Name)
	if !ok || got != e {
		t.Fatalf("Lookup(%q) failed", e.Name)
	}
	if _, ok := l.Lookup("definitely-not-a-name-xyz"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
}

func TestLexiconDeterminism(t *testing.T) {
	a := NewLexicon(rng.New(9), DefaultLexiconSizes(), 0.75)
	b := NewLexicon(rng.New(9), DefaultLexiconSizes(), 0.75)
	for _, et := range EntityTypes {
		ea, eb := a.ByType(et), b.ByType(et)
		if len(ea) != len(eb) {
			t.Fatalf("%v: lengths differ", et)
		}
		for i := range ea {
			if ea[i].Name != eb[i].Name || ea[i].InDictionary != eb[i].InDictionary {
				t.Fatalf("%v: entry %d differs", et, i)
			}
		}
	}
}

func TestDictionarySurfacesOnlyInDict(t *testing.T) {
	l := testLexicon(t)
	surfaces := l.DictionarySurfaces(Gene)
	if len(surfaces) == 0 {
		t.Fatal("no gene dictionary surfaces")
	}
	for _, s := range surfaces {
		e, ok := l.Lookup(s)
		if ok && !e.InDictionary {
			t.Errorf("surface %q belongs to an OOV entry", s)
		}
	}
}

func TestRandomTLAShape(t *testing.T) {
	r := rng.New(4)
	for i := 0; i < 200; i++ {
		s := RandomTLA(r)
		if len(s) != 3 || s != strings.ToUpper(s) {
			t.Fatalf("bad TLA %q", s)
		}
	}
}

func TestDocGenerationBasics(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(10)
	for _, kind := range CorpusKinds {
		d := g.Doc(r, kind, "d1")
		if len(d.Sentences) == 0 {
			t.Fatalf("%v: empty doc", kind)
		}
		if d.Text == "" {
			t.Fatalf("%v: no rendered text", kind)
		}
		if len(d.SentSpans) != len(d.Sentences) {
			t.Fatalf("%v: %d spans for %d sentences", kind, len(d.SentSpans), len(d.Sentences))
		}
	}
}

func TestDocDeterminism(t *testing.T) {
	g1 := testGenerator(t)
	g2 := testGenerator(t)
	d1 := g1.Doc(rng.New(77), Relevant, "x")
	d2 := g2.Doc(rng.New(77), Relevant, "x")
	if d1.Text != d2.Text {
		t.Fatal("same seed produced different documents")
	}
}

func TestMentionOffsetsMatchText(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(20)
	checked := 0
	for i := 0; i < 50; i++ {
		d := g.Doc(r, Medline, "m")
		for _, m := range d.Mentions {
			if m.Start < 0 || m.End > len(d.Text) || m.Start >= m.End {
				t.Fatalf("bad mention span [%d,%d) in doc of len %d", m.Start, m.End, len(d.Text))
			}
			if got := d.Text[m.Start:m.End]; got != m.Name {
				t.Fatalf("mention text %q != name %q", got, m.Name)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no mentions generated in 50 Medline docs")
	}
}

func TestMentionSentenceIndexValid(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(21)
	for i := 0; i < 20; i++ {
		d := g.Doc(r, PMC, "p")
		for _, m := range d.Mentions {
			if m.Sentence < 0 || m.Sentence >= len(d.Sentences) {
				t.Fatalf("mention sentence %d out of range", m.Sentence)
			}
			span := d.SentSpans[m.Sentence]
			if m.Start < span[0] || m.End > span[1] {
				t.Fatalf("mention [%d,%d) outside its sentence span %v", m.Start, m.End, span)
			}
		}
	}
}

func TestSentenceSpansCoverTextInOrder(t *testing.T) {
	g := testGenerator(t)
	d := g.Doc(rng.New(22), Relevant, "r")
	prev := 0
	for i, sp := range d.SentSpans {
		if sp[0] < prev {
			t.Fatalf("span %d starts before previous end", i)
		}
		if sp[1] > len(d.Text) {
			t.Fatalf("span %d exceeds text", i)
		}
		prev = sp[1]
	}
}

func TestCorpusLengthOrdering(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(30)
	mean := func(kind CorpusKind, n int) float64 {
		var total int
		for i := 0; i < n; i++ {
			total += len(g.Doc(r, kind, "x").Text)
		}
		return float64(total) / float64(n)
	}
	medline := mean(Medline, 200)
	irrel := mean(Irrelevant, 200)
	rel := mean(Relevant, 200)
	pmc := mean(PMC, 30)
	// Fig 6a ordering: PMC > Relevant > Irrelevant > Medline.
	if !(pmc > rel && rel > irrel && irrel > medline) {
		t.Fatalf("length ordering violated: pmc=%.0f rel=%.0f irrel=%.0f medl=%.0f",
			pmc, rel, irrel, medline)
	}
}

func TestMedlineMeanCharsNearTable3(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(31)
	var total int
	const n = 500
	for i := 0; i < n; i++ {
		total += len(g.Doc(r, Medline, "m").Text)
	}
	mean := float64(total) / n
	// Table 3: Medline mean 865 chars. Accept a generous band.
	if mean < 500 || mean > 1400 {
		t.Fatalf("Medline mean chars = %.0f, want ~865", mean)
	}
}

func TestNegationRateOrdering(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(32)
	rate := func(kind CorpusKind, docs int) float64 {
		neg, total := 0, 0
		for i := 0; i < docs; i++ {
			d := g.Doc(r, kind, "x")
			for _, s := range d.Sentences {
				total++
				if s.Negated {
					neg++
				}
			}
		}
		return float64(neg) / float64(total)
	}
	medl := rate(Medline, 400)
	rel := rate(Relevant, 150)
	pmc := rate(PMC, 20)
	// Fig 6c ordering: PMC > Relevant > Medline.
	if !(pmc > rel && rel > medl) {
		t.Fatalf("negation ordering violated: pmc=%.3f rel=%.3f medl=%.3f", pmc, rel, medl)
	}
}

func TestEntityDensityShape(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(33)
	perKSent := func(kind CorpusKind, docs int, et EntityType) float64 {
		mentions, sents := 0, 0
		for i := 0; i < docs; i++ {
			d := g.Doc(r, kind, "x")
			sents += len(d.Sentences)
			for _, m := range d.Mentions {
				if m.Type == et {
					mentions++
				}
			}
		}
		return 1000 * float64(mentions) / float64(sents)
	}
	// §4.3.2: relevant >> irrelevant for every class.
	for _, et := range EntityTypes {
		rel := perKSent(Relevant, 200, et)
		irrel := perKSent(Irrelevant, 200, et)
		if rel < 5*irrel {
			t.Errorf("%v: relevant density %.1f not >> irrelevant %.1f", et, rel, irrel)
		}
	}
	// Gene density highest in Medline (avg_medl = 415.58).
	gm := perKSent(Medline, 400, Gene)
	if gm < 250 || gm > 600 {
		t.Errorf("Medline gene density per 1000 sentences = %.1f, want ~415", gm)
	}
}

func TestDegenerateSentencesOnlyOnWeb(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(34)
	for i := 0; i < 100; i++ {
		d := g.Doc(r, Medline, "m")
		for _, s := range d.Sentences {
			if s.Degenerate {
				t.Fatal("Medline doc contains degenerate sentence")
			}
		}
	}
	found := false
	for i := 0; i < 300 && !found; i++ {
		d := g.Doc(r, Irrelevant, "w")
		for _, s := range d.Sentences {
			if s.Degenerate {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no degenerate sentences generated on web corpus in 300 docs")
	}
}

func TestTokensHaveKnownTags(t *testing.T) {
	known := map[string]bool{}
	for _, tag := range AllTags {
		known[tag] = true
	}
	g := testGenerator(t)
	r := rng.New(35)
	for i := 0; i < 20; i++ {
		d := g.Doc(r, Relevant, "x")
		for _, s := range d.Sentences {
			for _, tok := range s.Tokens {
				if !known[tok.Tag] {
					t.Fatalf("unknown tag %q for token %q", tok.Tag, tok.Text)
				}
				if tok.Text == "" {
					t.Fatal("empty token text")
				}
			}
		}
	}
}

func TestPronounsAnnotated(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(36)
	counts := make([]int, NumPronounClasses)
	for i := 0; i < 30; i++ {
		d := g.Doc(r, PMC, "p")
		for _, s := range d.Sentences {
			for _, tok := range s.Tokens {
				if tok.Pron > 0 {
					counts[tok.Pron-1]++
				}
			}
		}
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("pronoun class %v never generated", PronounClass(c))
		}
	}
}

func TestZipfDrawInRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := rng.New(seed)
		v := zipfDraw(r, int(n), 0.9)
		return v >= 0 && v < int(n)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntityTypeString(t *testing.T) {
	cases := map[EntityType]string{None: "none", Gene: "gene", Drug: "drug", Disease: "disease"}
	for et, want := range cases {
		if et.String() != want {
			t.Errorf("%d.String() = %q, want %q", et, et.String(), want)
		}
	}
}

func TestMentionsResolveToLexicon(t *testing.T) {
	g := testGenerator(t)
	r := rng.New(37)
	resolved, total := 0, 0
	for i := 0; i < 100; i++ {
		d := g.Doc(r, Medline, "m")
		for _, m := range d.Mentions {
			total++
			if m.Entry != nil {
				resolved++
				if m.Entry.Type != m.Type {
					t.Errorf("mention %q resolved to wrong class %v (want %v)",
						m.Name, m.Entry.Type, m.Type)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no mentions")
	}
	if float64(resolved)/float64(total) < 0.9 {
		t.Errorf("only %d/%d mentions resolve to lexicon entries", resolved, total)
	}
}
