package dataflow

import (
	"bytes"
	"reflect"
	"testing"

	"webtextie/internal/obs/prof"
)

// runProf executes the shared test plan with a per-operator profiler
// attached and returns the profiler plus the canonical sink output.
func runProf(t *testing.T, dop int) (*prof.Profiler, []string, *ExecStats) {
	t.Helper()
	cfg := DefaultExecConfig()
	cfg.DoP = dop
	cfg.Policy = Quarantine
	p := cfg.Prof
	if p == nil {
		p = prof.New(prof.Config{})
		cfg.Prof = p
	}
	res, st, err := Execute(testPlan(), input(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sink []Record
	for _, recs := range res {
		sink = append(sink, recs...)
	}
	return p, canonical(sink), st
}

// TestExecProfilePerOperator: with a profiler attached the executor
// attributes one virtual-lane call per record processed under
// dataflow.op.<name>, and one wall bracket around each UDF invocation.
func TestExecProfilePerOperator(t *testing.T) {
	p, _, st := runProf(t, 4)
	snap := p.Snapshot()
	for i, want := range []struct {
		scope string
		node  int
	}{
		{"dataflow.op.src", 0},
		{"dataflow.op.even", 1},
		{"dataflow.op.mark", 2},
		{"dataflow.op.crashy", 3},
	} {
		sd := snap.Get(want.scope)
		if sd == nil {
			t.Fatalf("scope %q missing from profile (case %d)", want.scope, i)
		}
		if sd.Calls != st.PerNode[want.node].In {
			t.Errorf("%s: %d profiled calls, want the node's %d inputs", want.scope, sd.Calls, st.PerNode[want.node].In)
		}
		if sd.Brackets != sd.Calls {
			t.Errorf("%s: %d wall brackets, want one per call (%d)", want.scope, sd.Brackets, sd.Calls)
		}
	}
}

// TestExecProfileDeterministicAcrossDoP: operator call attribution rides
// the same DoP-equivalence contract as the node metrics, so the
// deterministic exports are byte-identical at any parallelism.
func TestExecProfileDeterministicAcrossDoP(t *testing.T) {
	base, baseSink, _ := runProf(t, 1)
	baseJSON, err := base.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{4, 16} {
		p, sink, _ := runProf(t, dop)
		if !reflect.DeepEqual(sink, baseSink) {
			t.Fatalf("DoP %d sink diverges", dop)
		}
		snap := p.Snapshot()
		if got := snap.TopK(0); got != base.Snapshot().TopK(0) {
			t.Errorf("DoP %d operator profile TopK diverges from DoP 1:\n%s", dop, got)
		}
		js, err := snap.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js, baseJSON) {
			t.Errorf("DoP %d operator profile JSON diverges from DoP 1", dop)
		}
	}
}

// TestExecProfilingInvisible: attaching a profiler must not change the
// execution results or stats.
func TestExecProfilingInvisible(t *testing.T) {
	cfg := DefaultExecConfig()
	cfg.Policy = Quarantine
	res, st, err := Execute(testPlan(), input(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var plain []Record
	for _, recs := range res {
		plain = append(plain, recs...)
	}
	_, sink, pst := runProf(t, cfg.DoP)
	if !reflect.DeepEqual(canonical(plain), sink) {
		t.Error("sink records change when operator profiling is on")
	}
	if !reflect.DeepEqual(st.PerNode, pst.PerNode) {
		t.Errorf("per-node stats change when operator profiling is on:\n%+v\n%+v", st.PerNode, pst.PerNode)
	}
}
