package dataflow

import (
	"testing"

	"webtextie/internal/obs/trace"
)

// Tracing mints one root span per record plus one child span per operator
// hop, all under the recorder's mutex. The pair below prices that against
// the untraced fast path (cfg.Trace == nil skips every trace branch);
// BENCH_PR4.json commits both.

func benchExecuteTrace(b *testing.B, traced bool) {
	for i := 0; i < b.N; i++ {
		cfg := ExecConfig{DoP: 2, Policy: Quarantine}
		if traced {
			cfg.Trace = trace.NewRecorder(trace.DefaultConfig(1))
		}
		_, _, _ = Execute(benchPlan(), input(500), cfg)
	}
}

func BenchmarkExecuteTraceOff(b *testing.B) { benchExecuteTrace(b, false) }

func BenchmarkExecuteTraceOn(b *testing.B) { benchExecuteTrace(b, true) }
