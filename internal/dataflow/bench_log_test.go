package dataflow

import (
	"testing"

	"webtextie/internal/obs/evlog"
)

// The event log emits per-execution and per-node records plus per-record
// retry/quarantine events, all through the sink's mutex. The pair below
// prices that against the unlogged fast path (cfg.Log == nil leaves every
// logger a zero value whose methods return immediately); BENCH_PR5.json
// commits both.

func benchExecuteLog(b *testing.B, logged bool) {
	for i := 0; i < b.N; i++ {
		cfg := ExecConfig{DoP: 2, Policy: Quarantine}
		if logged {
			cfg.Log = evlog.NewSink(evlog.DefaultConfig(1))
		}
		_, _, _ = Execute(benchPlan(), input(500), cfg)
	}
}

func BenchmarkExecuteLogOff(b *testing.B) { benchExecuteLog(b, false) }

func BenchmarkExecuteLogOn(b *testing.B) { benchExecuteLog(b, true) }
