package dataflow

import "testing"

// TestTwoRunIdentity: executing the same plan over the same input twice
// must produce identical sink record sets and identical per-node
// In/Out/Errors totals. This is the regression gate for the map-iteration
// audit (lintx maprange/determinism): any iteration-order or wall-clock
// leak into the executor's observable output shows up as a diff here.
func TestTwoRunIdentity(t *testing.T) {
	type run struct {
		sink  []string
		stats map[int][3]int64
	}
	do := func() run {
		p := testPlan()
		out, st := runSingleSink(t, p, input(200), ExecConfig{DoP: 8})
		perNode := map[int][3]int64{}
		for id, ns := range st.PerNode {
			perNode[id] = [3]int64{ns.In, ns.Out, ns.Errors}
		}
		return run{canonical(out), perNode}
	}
	a, b := do(), do()
	if len(a.sink) != len(b.sink) {
		t.Fatalf("sink sizes differ across runs: %d vs %d", len(a.sink), len(b.sink))
	}
	for i := range a.sink {
		if a.sink[i] != b.sink[i] {
			t.Fatalf("sink record %d differs across runs: %q vs %q", i, a.sink[i], b.sink[i])
		}
	}
	if len(a.stats) != len(b.stats) {
		t.Fatalf("per-node stats sizes differ: %d vs %d", len(a.stats), len(b.stats))
	}
	for id, want := range a.stats {
		if got := b.stats[id]; got != want {
			t.Errorf("node %d In/Out/Errors differ across runs: %v vs %v", id, want, got)
		}
	}
}
