package dataflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// helpers to build toy operators.

func passOp(name string) *Op {
	return &Op{Name: name, Pkg: BASE, Reads: []string{"x"}, Writes: nil,
		Selectivity: 1, Fn: func(r Record, emit Emit) error { emit(r); return nil }}
}

func filterOp(name string, keep func(Record) bool, sel float64) *Op {
	return &Op{Name: name, Pkg: BASE, Filter: true, Selectivity: sel,
		Reads: []string{"x"},
		Fn: func(r Record, emit Emit) error {
			if keep(r) {
				emit(r)
			}
			return nil
		}}
}

func setOp(name, field string, v any) *Op {
	return &Op{Name: name, Pkg: BASE, Reads: []string{}, Writes: []string{field},
		Selectivity: 1, Cost: Cost{PerKBms: 5},
		Fn: func(r Record, emit Emit) error {
			out := r.Clone()
			out[field] = v
			emit(out)
			return nil
		}}
}

func input(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{"x": i}
	}
	return recs
}

func runSingleSink(t *testing.T, p *Plan, in []Record, cfg ExecConfig) ([]Record, *ExecStats) {
	t.Helper()
	res, st, err := Execute(p, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sinks := p.Sinks()
	if len(sinks) != 1 {
		t.Fatalf("expected 1 sink, got %d", len(sinks))
	}
	return res[sinks[0].ID()], st
}

func TestLinearPipeline(t *testing.T) {
	p := &Plan{}
	a := p.Add(passOp("a"))
	b := p.Add(filterOp("even", func(r Record) bool { return r["x"].(int)%2 == 0 }, 0.5), a)
	p.Add(setOp("mark", "y", "ok"), b)
	out, st := runSingleSink(t, p, input(100), DefaultExecConfig())
	if len(out) != 50 {
		t.Fatalf("got %d records, want 50", len(out))
	}
	for _, r := range out {
		if r["y"] != "ok" {
			t.Fatalf("record not marked: %v", r)
		}
	}
	if st.PerNode[0].In != 100 || st.PerNode[1].Out != 50 {
		t.Errorf("stats: %+v %+v", st.PerNode[0], st.PerNode[1])
	}
}

func TestFanOutBranches(t *testing.T) {
	// One source, two independent branches (the linguistic vs entity split
	// of §4.2).
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(setOp("left", "l", 1), src)
	p.Add(setOp("right", "r", 1), src)
	res, _, err := Execute(p, input(20), DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("sink count = %d", len(res))
	}
	for id, recs := range res {
		if len(recs) != 20 {
			t.Errorf("sink %d got %d records", id, len(recs))
		}
	}
}

func TestFanOutIsolation(t *testing.T) {
	// Mutating one branch must not leak into the other (records are cloned
	// at fan-out).
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(setOp("setA", "shared", "A"), src)
	p.Add(setOp("setB", "shared", "B"), src)
	res, _, err := Execute(p, input(50), ExecConfig{DoP: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, recs := range res {
		first := recs[0]["shared"]
		for _, r := range recs {
			if r["shared"] != first {
				t.Fatal("branch records mixed")
			}
		}
	}
}

func TestFanIn(t *testing.T) {
	p := &Plan{}
	a := p.Add(passOp("a"))
	b := p.Add(passOp("b"))
	union := p.Add(passOp("union"), a, b)
	_ = union
	res, _, err := Execute(p, input(10), DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Both sources feed the union: 20 records at the sink.
	if got := len(res[union.ID()]); got != 20 {
		t.Fatalf("union got %d records", got)
	}
}

func TestUDFErrorsCountedNotFatal(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "flaky", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int)%10 == 0 {
				return errors.New("tagger crashed on degenerate input")
			}
			emit(r)
			return nil
		}}, src)
	out, st := runSingleSink(t, p, input(100), DefaultExecConfig())
	if len(out) != 90 {
		t.Fatalf("got %d records, want 90", len(out))
	}
	if st.TotalErrors() != 10 {
		t.Fatalf("errors = %d, want 10", st.TotalErrors())
	}
}

func TestErrStopFlowNotAnError(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "drop", Pkg: BASE, Selectivity: 0,
		Fn: func(r Record, emit Emit) error { return ErrStopFlow }}, src)
	out, st := runSingleSink(t, p, input(10), DefaultExecConfig())
	if len(out) != 0 || st.TotalErrors() != 0 {
		t.Fatalf("out=%d errors=%d", len(out), st.TotalErrors())
	}
}

func TestInitRunsOnce(t *testing.T) {
	var inits int32
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "dict", Pkg: IE, Selectivity: 1,
		Init: func() error { atomic.AddInt32(&inits, 1); return nil },
		Fn:   func(r Record, emit Emit) error { emit(r); return nil }}, src)
	_, _ = runSingleSink(t, p, input(10), ExecConfig{DoP: 8})
	if inits != 1 {
		t.Fatalf("init ran %d times", inits)
	}
}

func TestInitErrorAborts(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "bad", Pkg: IE,
		Init: func() error { return errors.New("out of memory") },
		Fn:   func(r Record, emit Emit) error { return nil }}, src)
	if _, _, err := Execute(p, input(1), DefaultExecConfig()); err == nil {
		t.Fatal("init error not propagated")
	}
}

func TestValidateCycle(t *testing.T) {
	p := &Plan{}
	a := p.Add(passOp("a"))
	b := p.Add(passOp("b"), a)
	a.Inputs = append(a.Inputs, b) // manufacture a cycle
	if err := p.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateForeignNode(t *testing.T) {
	p1 := &Plan{}
	foreign := p1.Add(passOp("foreign"))
	p2 := &Plan{}
	p2.Add(passOp("x"), foreign)
	if err := p2.Validate(); err == nil {
		t.Fatal("foreign input not detected")
	}
}

func TestDoPParallelism(t *testing.T) {
	// All DoP workers must actually process records.
	var mu atomic.Int64
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "count", Pkg: BASE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			mu.Add(1)
			emit(r)
			return nil
		}}, src)
	out, _ := runSingleSink(t, p, input(1000), ExecConfig{DoP: 8})
	if len(out) != 1000 || mu.Load() != 1000 {
		t.Fatalf("processed %d, emitted %d", mu.Load(), len(out))
	}
}

func TestEmptyInput(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(passOp("next"), src)
	out, _ := runSingleSink(t, p, nil, DefaultExecConfig())
	if len(out) != 0 {
		t.Fatalf("empty input produced %d records", len(out))
	}
}

func TestCommute(t *testing.T) {
	a := &Op{Name: "a", Reads: []string{"text"}, Writes: []string{"tokens"}}
	b := &Op{Name: "b", Reads: []string{"text"}, Writes: []string{"lang"}}
	if !Commute(a, b) {
		t.Error("independent writers should commute")
	}
	c := &Op{Name: "c", Reads: []string{"tokens"}, Writes: []string{"pos"}}
	if Commute(a, c) {
		t.Error("producer/consumer must not commute")
	}
	d := &Op{Name: "d"} // opaque
	if Commute(a, d) {
		t.Error("opaque operators must not commute")
	}
	e := &Op{Name: "e", Reads: []string{"x"}, Writes: []string{"tokens"}}
	if Commute(a, e) {
		t.Error("write-write conflict must not commute")
	}
}

func TestOptimizePushesFilterDown(t *testing.T) {
	p := &Plan{}
	src := p.Add(setOp("load", "text", "payload"))
	expensive := p.Add(&Op{Name: "ner", Pkg: IE, Reads: []string{"text"},
		Writes: []string{"entities"}, Selectivity: 1, Cost: Cost{PerKBms: 1000},
		Fn: func(r Record, emit Emit) error { emit(r); return nil }}, src)
	p.Add(&Op{Name: "lenFilter", Pkg: BASE, Filter: true, Selectivity: 0.5,
		Reads: []string{"size"},
		Fn:    func(r Record, emit Emit) error { emit(r); return nil }}, expensive)

	st := Optimize(p)
	if st.Swaps == 0 {
		t.Fatal("no swaps applied")
	}
	// After optimization the filter must run before the NER operator.
	order := map[string]int{}
	for i, n := range p.Nodes() {
		order[n.Op.Name] = i
	}
	if order["lenFilter"] > order["ner"] {
		t.Errorf("filter not pushed down: %v", order)
	}
}

func TestOptimizeRespectsDependencies(t *testing.T) {
	p := &Plan{}
	src := p.Add(setOp("load", "text", "payload"))
	tok := p.Add(&Op{Name: "tokenize", Pkg: IE, Reads: []string{"text"},
		Writes: []string{"tokens"}, Selectivity: 1, Cost: Cost{PerKBms: 1},
		Fn: func(r Record, emit Emit) error { emit(r); return nil }}, src)
	p.Add(&Op{Name: "posFilter", Pkg: BASE, Filter: true, Selectivity: 0.1,
		Reads: []string{"tokens"},
		Fn:    func(r Record, emit Emit) error { emit(r); return nil }}, tok)
	Optimize(p)
	order := map[string]int{}
	for i, n := range p.Nodes() {
		order[n.Op.Name] = i
	}
	if order["posFilter"] < order["tokenize"] {
		t.Error("dependent filter moved above its producer")
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	build := func() *Plan {
		p := &Plan{}
		src := p.Add(passOp("src"))
		f1 := p.Add(&Op{Name: "expensive", Pkg: IE, Reads: []string{"x"},
			Writes: []string{"e"}, Selectivity: 1, Cost: Cost{PerKBms: 100},
			Fn: func(r Record, emit Emit) error {
				out := r.Clone()
				out["e"] = r["x"].(int) * 2
				emit(out)
				return nil
			}}, src)
		p.Add(&Op{Name: "mod3", Pkg: BASE, Filter: true, Selectivity: 0.33,
			Reads: []string{"x"},
			Fn: func(r Record, emit Emit) error {
				if r["x"].(int)%3 == 0 {
					emit(r)
				}
				return nil
			}}, f1)
		return p
	}
	collect := func(p *Plan) []string {
		out, _ := runSingleSink(t, p, input(60), DefaultExecConfig())
		keys := make([]string, len(out))
		for i, r := range out {
			keys[i] = fmt.Sprintf("%v:%v", r["x"], r["e"])
		}
		sort.Strings(keys)
		return keys
	}
	plain := build()
	opt := build()
	st := Optimize(opt)
	if st.Swaps == 0 {
		t.Fatal("optimizer made no change; test is vacuous")
	}
	a, b := collect(plain), collect(opt)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("optimization changed results:\n%v\n%v", a, b)
	}
}

func TestPlanString(t *testing.T) {
	p := &Plan{}
	a := p.Add(passOp("first"))
	p.Add(passOp("second"), a)
	s := p.String()
	if !strings.Contains(s, "first") || !strings.Contains(s, "second") {
		t.Errorf("plan string:\n%s", s)
	}
}

func TestTotalMemoryPerWorker(t *testing.T) {
	p := &Plan{}
	a := p.Add(&Op{Name: "a", Cost: Cost{MemoryBytes: 100}, Fn: func(r Record, e Emit) error { return nil }})
	p.Add(&Op{Name: "b", Cost: Cost{MemoryBytes: 250}, Fn: func(r Record, e Emit) error { return nil }}, a)
	if got := p.TotalMemoryPerWorker(); got != 350 {
		t.Errorf("memory = %d", got)
	}
}

func BenchmarkExecuteLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := &Plan{}
		src := p.Add(passOp("src"))
		cur := src
		for j := 0; j < 5; j++ {
			cur = p.Add(setOp(fmt.Sprint("op", j), fmt.Sprint("f", j), j), cur)
		}
		_, _, _ = Execute(p, input(500), ExecConfig{DoP: 2})
	}
}
