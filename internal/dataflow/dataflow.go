// Package dataflow re-implements the execution model the paper builds on:
// Stratosphere's UDF-heavy data flows (§3.1). A flow is a DAG of operators
// drawn from domain-specific packages (BASE: relational; IE: information
// extraction; WA: web analytics; DC: data cleansing), assembled either
// programmatically or from a Meteor script (internal/meteor), logically
// optimized (internal/dataflow's optimizer, after SOFA [23]), and executed
// by a local parallel executor with a configurable degree of parallelism.
//
// Operators carry the metadata the paper's optimizer and war stories rely
// on: read/write field sets (SOFA's semantic annotations, enabling safe
// reordering), selectivity estimates, per-record cost, startup cost (the
// 20-minute dictionary load, §4.2), and memory footprints (the 6-20 GB
// per-worker appetite that capped the DoP, §4.2).
package dataflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Record is the JSON-like tuple flowing through an operator graph
// (Sopremo's data model).
type Record map[string]any

// Clone returns a shallow copy (fields are shared; operators must replace,
// not mutate, field values).
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Pkg identifies the operator package (§3.1 lists the four).
type Pkg string

// The four operator packages shipped with the system.
const (
	BASE Pkg = "base"
	IE   Pkg = "ie"
	WA   Pkg = "wa"
	DC   Pkg = "dc"
)

// Emit passes an output record downstream.
type Emit func(Record)

// UDF is the operator implementation: for each input record, emit zero or
// more output records. Returning an error drops the record (counted in
// ExecStats) — the pipeline-robustness requirement of §5: a single
// malformed page must not kill an 80-day crawl analysis.
type UDF func(Record, Emit) error

// Cost models one operator's resource behaviour for the simulated cluster.
type Cost struct {
	// PerKBms is virtual milliseconds of CPU per KB of input text.
	PerKBms float64
	// StartupMs is one-time per-worker initialization (dictionary loads).
	StartupMs float64
	// MemoryBytes is the per-worker resident footprint.
	MemoryBytes int64
	// OutputFactor estimates output bytes per input byte (annotations
	// inflate data volume: the paper produced 1.6 TB from 1 TB of text).
	OutputFactor float64
}

// Op is one logical operator.
type Op struct {
	// Name is the operator's registry name.
	Name string
	// Pkg is the operator package.
	Pkg Pkg
	// Fn is the implementation.
	Fn UDF
	// Init runs once per worker before records flow (models startup cost
	// for real execution; the virtual StartupMs models it for simulation).
	Init func() error

	// Reads/Writes are the record fields the operator touches — SOFA's
	// semantic annotations, the basis of safe reordering. A nil slice
	// means "unknown" (the optimizer treats the operator as opaque and
	// never reorders it); an empty non-nil slice declares "touches no
	// fields". Filter operators implicitly write nothing.
	Reads, Writes []string
	// Filter marks selective operators that only drop records (never
	// modify them) — always safe to push down subject to field deps.
	Filter bool
	// Selectivity estimates output records per input record.
	Selectivity float64
	// Cost feeds the simulated cluster.
	Cost Cost
}

// Node is an operator instance in a plan.
type Node struct {
	Op     *Op
	Inputs []*Node
	id     int
}

// ID returns the node's plan-unique id.
func (n *Node) ID() int { return n.id }

// Plan is a DAG of operator nodes with one source and one sink per branch.
type Plan struct {
	nodes []*Node
	next  int
}

// Add appends an operator node reading from the given inputs.
func (p *Plan) Add(op *Op, inputs ...*Node) *Node {
	n := &Node{Op: op, Inputs: inputs, id: p.next}
	p.next++
	p.nodes = append(p.nodes, n)
	return n
}

// Nodes returns the plan's nodes in insertion order.
func (p *Plan) Nodes() []*Node { return p.nodes }

// Size returns the number of operator nodes ("the complete data flow ...
// consists of 38 elementary operators", §3.2).
func (p *Plan) Size() int { return len(p.nodes) }

// Validate checks the DAG for dangling inputs and cycles.
func (p *Plan) Validate() error {
	index := map[*Node]bool{}
	for _, n := range p.nodes {
		index[n] = true
	}
	for _, n := range p.nodes {
		for _, in := range n.Inputs {
			if !index[in] {
				return fmt.Errorf("dataflow: node %q reads from a node outside the plan", n.Op.Name)
			}
		}
	}
	// Cycle check via DFS colors.
	color := map[*Node]int{}
	var visit func(*Node) error
	visit = func(n *Node) error {
		switch color[n] {
		case 1:
			return fmt.Errorf("dataflow: cycle through %q", n.Op.Name)
		case 2:
			return nil
		}
		color[n] = 1
		for _, in := range n.Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		color[n] = 2
		return nil
	}
	for _, n := range p.nodes {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// Sinks returns nodes no other node reads from.
func (p *Plan) Sinks() []*Node {
	hasReader := map[*Node]bool{}
	for _, n := range p.nodes {
		for _, in := range n.Inputs {
			hasReader[in] = true
		}
	}
	var out []*Node
	for _, n := range p.nodes {
		if !hasReader[n] {
			out = append(out, n)
		}
	}
	return out
}

// TotalMemoryPerWorker sums the operator footprints — the number the §4.2
// war story is about ("the complete data flow ... needs roughly 60 GB main
// memory per worker thread").
func (p *Plan) TotalMemoryPerWorker() int64 {
	var total int64
	for _, n := range p.nodes {
		total += n.Op.Cost.MemoryBytes
	}
	return total
}

// String renders the plan topologically for debugging and reports.
func (p *Plan) String() string {
	var b strings.Builder
	for _, n := range p.nodes {
		var ins []string
		for _, in := range n.Inputs {
			ins = append(ins, fmt.Sprintf("%d", in.id))
		}
		fmt.Fprintf(&b, "%3d %-6s %-28s <- [%s]\n", n.id, n.Op.Pkg, n.Op.Name, strings.Join(ins, ","))
	}
	return b.String()
}

// ErrStopFlow can be returned by a UDF to drop a record without counting
// it as a failure (normal filtering).
var ErrStopFlow = errors.New("dataflow: record filtered")

// normReads/normWrites resolve the nil-means-unknown convention into
// explicit sets, with "*" standing for "all fields".
func normReads(o *Op) []string {
	if o.Reads == nil {
		return []string{"*"}
	}
	return o.Reads
}

func normWrites(o *Op) []string {
	if o.Filter {
		return []string{} // filters only drop records
	}
	if o.Writes == nil {
		return []string{"*"}
	}
	return o.Writes
}

// fieldsOverlap reports whether two explicit field sets intersect. An
// empty set overlaps nothing; "*" overlaps any non-empty set.
func fieldsOverlap(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := map[string]bool{}
	star := false
	for _, f := range a {
		if f == "*" {
			star = true
		}
		set[f] = true
	}
	for _, f := range b {
		if f == "*" || star || set[f] {
			return true
		}
	}
	return false
}

// Commute reports whether two adjacent map-style operators can be swapped:
// neither may write a field the other reads or writes (the SOFA condition).
func Commute(a, b *Op) bool {
	aw, bw := normWrites(a), normWrites(b)
	if fieldsOverlap(aw, normReads(b)) || fieldsOverlap(aw, bw) {
		return false
	}
	if fieldsOverlap(bw, normReads(a)) {
		return false
	}
	return true
}

// SortedFields returns a copy of fields, sorted (for stable reports).
func SortedFields(fs []string) []string {
	out := append([]string(nil), fs...)
	sort.Strings(out)
	return out
}
