package dataflow

// Property tests: randomized plans must execute correctly regardless of
// topology, and pass-through chains must conserve records.

import (
	"fmt"
	"testing"

	"webtextie/internal/rng"
)

// randomPlan builds a random DAG of pass-through and counting operators.
func randomPlan(r *rng.RNG, nNodes int) *Plan {
	p := &Plan{}
	nodes := []*Node{p.Add(passOp("src"))}
	for i := 1; i < nNodes; i++ {
		// Choose 1-2 existing nodes as inputs.
		var inputs []*Node
		inputs = append(inputs, nodes[r.Intn(len(nodes))])
		if r.Bool(0.25) {
			other := nodes[r.Intn(len(nodes))]
			if other != inputs[0] {
				inputs = append(inputs, other)
			}
		}
		nodes = append(nodes, p.Add(passOp(fmt.Sprint("op", i)), inputs...))
	}
	return p
}

func TestRandomPlansExecute(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		p := randomPlan(r, 2+r.Intn(10))
		if err := p.Validate(); err != nil {
			t.Fatalf("random plan invalid: %v", err)
		}
		in := input(20)
		results, stats, err := Execute(p, in, ExecConfig{DoP: 1 + r.Intn(4)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every sink's record count must equal the number of source-to-sink
		// paths times the input size (pass-through ops conserve records;
		// fan-in sums them).
		for _, sink := range p.Sinks() {
			paths := countPaths(p, sink)
			want := paths * len(in)
			if got := len(results[sink.ID()]); got != want {
				t.Fatalf("trial %d sink %d: %d records, want %d (%d paths)",
					trial, sink.ID(), got, want, paths)
			}
		}
		if stats.TotalErrors() != 0 {
			t.Fatalf("trial %d: unexpected errors", trial)
		}
	}
}

// countPaths counts source-to-node paths in the DAG.
func countPaths(p *Plan, n *Node) int {
	if len(n.Inputs) == 0 {
		return 1
	}
	total := 0
	for _, in := range n.Inputs {
		total += countPaths(p, in)
	}
	return total
}

func TestRandomPlansOptimizePreservesCardinality(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(8)
		build := func() *Plan {
			rr := rng.New(uint64(1000 + trial)) // same topology both times
			return randomPlan(rr, n)
		}
		plain := build()
		opt := build()
		Optimize(opt)
		in := input(15)
		r1, _, err1 := Execute(plain, in, DefaultExecConfig())
		r2, _, err2 := Execute(opt, in, DefaultExecConfig())
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		c1, c2 := 0, 0
		for _, recs := range r1 {
			c1 += len(recs)
		}
		for _, recs := range r2 {
			c2 += len(recs)
		}
		if c1 != c2 {
			t.Fatalf("trial %d: optimizer changed cardinality %d -> %d", trial, c1, c2)
		}
	}
}

func TestHighDoPStress(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	cur := src
	for i := 0; i < 10; i++ {
		cur = p.Add(setOp(fmt.Sprint("s", i), fmt.Sprint("f", i), i), cur)
	}
	out, _ := runSingleSink(t, p, input(2000), ExecConfig{DoP: 16, ChannelBuffer: 8})
	if len(out) != 2000 {
		t.Fatalf("records = %d", len(out))
	}
	for _, r := range out {
		for i := 0; i < 10; i++ {
			if r[fmt.Sprint("f", i)] != i {
				t.Fatal("field lost under high DoP")
			}
		}
	}
}
