package dataflow

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"webtextie/internal/obs"
)

// attemptTracker counts per-record attempts so a test UDF can fail a
// record's first k presentations deterministically under any DoP.
type attemptTracker struct {
	mu   sync.Mutex
	seen map[int]int
}

func newAttemptTracker() *attemptTracker { return &attemptTracker{seen: map[int]int{}} }

func (a *attemptTracker) next(rec Record) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	k := rec["x"].(int)
	a.seen[k]++
	return a.seen[k]
}

// TestPanicRecoveredAndQuarantined: a panicking operator loses only the
// offending records; the flow finishes and reports the panics.
func TestPanicRecoveredAndQuarantined(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	n := p.Add(&Op{Name: "bomb", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int)%10 == 0 {
				panic("nil dereference in tagger")
			}
			emit(r)
			return nil
		}}, src)
	out, st := runSingleSink(t, p, input(100), DefaultExecConfig())
	if len(out) != 90 {
		t.Fatalf("got %d records, want 90", len(out))
	}
	ns := st.PerNode[n.ID()]
	if ns.Panics != 10 || ns.Errors != 10 || ns.Quarantined != 10 {
		t.Fatalf("panics/errors/quarantined = %d/%d/%d, want 10/10/10", ns.Panics, ns.Errors, ns.Quarantined)
	}
	if len(st.Quarantined) != 10 {
		t.Fatalf("dead-letter holds %d records, want 10", len(st.Quarantined))
	}
	for _, q := range st.Quarantined {
		if q.NodeID != n.ID() || q.Op != "bomb" || q.Rec["x"].(int)%10 != 0 {
			t.Fatalf("bad quarantine entry: %+v", q)
		}
	}
}

// TestFailFastAborts: under FailFast the first terminal failure kills the
// run and surfaces the operator error.
func TestFailFastAborts(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "fatal", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int) == 50 {
				return errors.New("unrecoverable")
			}
			emit(r)
			return nil
		}}, src)
	cfg := DefaultExecConfig()
	cfg.Policy = FailFast
	res, _, err := Execute(p, input(100), cfg)
	if err == nil {
		t.Fatal("FailFast run returned nil error")
	}
	if res != nil {
		t.Fatal("FailFast returned partial results")
	}
}

// TestOpRetriesRecoverTransientFailures: with a retry budget, records
// whose first attempts fail still flow — and emissions from failed
// attempts are discarded, so retried records emit exactly once.
func TestOpRetriesRecoverTransientFailures(t *testing.T) {
	tr := newAttemptTracker()
	p := &Plan{}
	src := p.Add(passOp("src"))
	n := p.Add(&Op{Name: "flaky", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			emit(r.Clone()) // emitted even on failing attempts
			if r["x"].(int)%5 == 0 && tr.next(r) <= 2 {
				return errors.New("transient")
			}
			return nil
		}}, src)
	cfg := DefaultExecConfig()
	cfg.OpRetries = 3
	out, st := runSingleSink(t, p, input(50), cfg)
	if len(out) != 50 {
		t.Fatalf("got %d records, want 50 (exactly one emission per record)", len(out))
	}
	ns := st.PerNode[n.ID()]
	if ns.Retries != 20 { // 10 flaky records x 2 failing attempts
		t.Fatalf("retries = %d, want 20", ns.Retries)
	}
	if ns.Errors != 0 || len(st.Quarantined) != 0 {
		t.Fatalf("errors=%d quarantined=%d after successful retries", ns.Errors, len(st.Quarantined))
	}
	if st.TotalRetries() != 20 {
		t.Fatalf("TotalRetries = %d", st.TotalRetries())
	}
}

// TestOpRetriesExhaustedQuarantines: records that fail every attempt in
// the budget end up dead-lettered with the retry count on the books.
func TestOpRetriesExhaustedQuarantines(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	n := p.Add(&Op{Name: "poison", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int) == 7 {
				return errors.New("always fails")
			}
			emit(r)
			return nil
		}}, src)
	cfg := DefaultExecConfig()
	cfg.OpRetries = 2
	out, st := runSingleSink(t, p, input(20), cfg)
	if len(out) != 19 {
		t.Fatalf("got %d records, want 19", len(out))
	}
	ns := st.PerNode[n.ID()]
	if ns.Errors != 1 || ns.Quarantined != 1 || ns.Retries != 2 {
		t.Fatalf("errors/quarantined/retries = %d/%d/%d, want 1/1/2", ns.Errors, ns.Quarantined, ns.Retries)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0].Rec["x"].(int) != 7 {
		t.Fatalf("dead letter = %+v", st.Quarantined)
	}
}

// TestQuarantineLimitCapsRetention: the dead-letter buffer is bounded;
// counts are not.
func TestQuarantineLimitCapsRetention(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "sieve", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error { return errors.New("bad") }}, src)
	cfg := DefaultExecConfig()
	cfg.QuarantineLimit = 5
	out, st := runSingleSink(t, p, input(40), cfg)
	if len(out) != 0 {
		t.Fatalf("got %d records", len(out))
	}
	if len(st.Quarantined) != 5 {
		t.Fatalf("retained %d dead letters, want 5", len(st.Quarantined))
	}
	if st.TotalQuarantined() != 40 || st.TotalErrors() != 40 {
		t.Fatalf("quarantined/errors = %d/%d, want 40/40", st.TotalQuarantined(), st.TotalErrors())
	}
}

// TestWrappedStopFlowIsNotAnError: ErrStopFlow detection uses errors.Is,
// so wrapped filter verdicts don't count as failures.
func TestWrappedStopFlowIsNotAnError(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "drop", Pkg: BASE, Selectivity: 0,
		Fn: func(r Record, emit Emit) error { return fmt.Errorf("filtered out: %w", ErrStopFlow) }}, src)
	out, st := runSingleSink(t, p, input(10), DefaultExecConfig())
	if len(out) != 0 || st.TotalErrors() != 0 {
		t.Fatalf("out=%d errors=%d", len(out), st.TotalErrors())
	}
}

// TestErrorsLandInStatsAndObs: the regression gate for error accounting —
// failures inside high-DoP operator goroutines must show up, with equal
// counts, in ExecStats and the obs registry.
func TestErrorsLandInStatsAndObs(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	n := p.Add(&Op{Name: "flaky", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int)%4 == 0 {
				return errors.New("degenerate input")
			}
			emit(r)
			return nil
		}}, src)
	reg := obs.New()
	cfg := ExecConfig{DoP: 8, Metrics: reg}
	_, st := runSingleSink(t, p, input(200), cfg)

	const want = 50 // 200/4
	if st.TotalErrors() != want {
		t.Fatalf("ExecStats.TotalErrors = %d, want %d", st.TotalErrors(), want)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(MetricName(n, "errors")); got != want {
		t.Fatalf("obs %s = %d, want %d", MetricName(n, "errors"), got, want)
	}
	if got := snap.Counter(MetricName(n, "quarantined")); got != want {
		t.Fatalf("obs %s = %d, want %d", MetricName(n, "quarantined"), got, want)
	}
	if st.TotalQuarantined() != want || int64(len(st.Quarantined)) != want {
		t.Fatalf("quarantine counts %d/%d, want %d", st.TotalQuarantined(), len(st.Quarantined), want)
	}
}

// TestQuarantineDeterministicAcrossRuns: the dead-letter report is sorted,
// so two identical high-DoP runs render it identically.
func TestQuarantineDeterministicAcrossRuns(t *testing.T) {
	run := func() []QuarantinedRecord {
		p := &Plan{}
		src := p.Add(passOp("src"))
		p.Add(&Op{Name: "flaky", Pkg: IE, Selectivity: 1,
			Fn: func(r Record, emit Emit) error {
				if r["x"].(int)%7 == 0 {
					return fmt.Errorf("bad record %d", r["x"].(int)%3)
				}
				emit(r)
				return nil
			}}, src)
		_, st := runSingleSink(t, p, input(300), ExecConfig{DoP: 16})
		return st.Quarantined
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("quarantine order differs across identical runs")
	}
}
