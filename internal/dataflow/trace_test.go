package dataflow

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"webtextie/internal/obs/trace"
)

// tracedInput gives every record a string id so traces key on it.
func tracedInput(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{"id": fmt.Sprintf("doc-%04d", i), "x": i}
	}
	return recs
}

// faultyPlan: src -> shaky (errors on ids divisible by div) -> mark.
func faultyPlan(div int) *Plan {
	p := &Plan{}
	src := p.Add(passOp("src"))
	shaky := p.Add(&Op{Name: "shaky", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int)%div == 0 {
				return errors.New("degenerate document")
			}
			emit(r)
			return nil
		}}, src)
	p.Add(setOp("mark", "done", true), shaky)
	return p
}

// TestQuarantinedRecordPinnedLineage is the acceptance criterion: a
// quarantined record yields a pinned trace whose span tree names every
// operator hop it took before quarantine, and the dead-letter entry links
// back to the trace by ID.
func TestQuarantinedRecordPinnedLineage(t *testing.T) {
	rec := trace.NewRecorder(trace.DefaultConfig(5))
	_, stats, err := Execute(faultyPlan(10), tracedInput(60),
		ExecConfig{DoP: 4, Policy: Quarantine, Trace: rec, TraceKey: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Quarantined) == 0 {
		t.Fatal("no records quarantined")
	}
	s := rec.Snapshot()
	for _, qr := range stats.Quarantined {
		if qr.Trace == "" {
			t.Fatalf("quarantined record %v has no trace ID", qr.Rec)
		}
		id, err := trace.ParseID(qr.Trace)
		if err != nil {
			t.Fatal(err)
		}
		tr := s.Find(id)
		if tr == nil {
			t.Fatalf("quarantined trace %s not retained", qr.Trace)
		}
		if !tr.Pinned || !tr.HasErrClass("quarantine") {
			t.Fatalf("quarantined trace %s not pinned: %+v", qr.Trace, tr)
		}
		// The lineage names every hop: root -> src -> shaky, with the
		// quarantine event on the failing hop.
		text := s.Filter(trace.Filter{Key: tr.Key}).Text()
		for _, hop := range []string{
			"span dataflow.record",
			"span dataflow.op.src",
			"span dataflow.op.shaky",
			"error class=quarantine op=shaky",
		} {
			if !strings.Contains(text, hop) {
				t.Fatalf("lineage of %s missing %q:\n%s", tr.Key, hop, text)
			}
		}
		// A quarantined record never reached the downstream op.
		if strings.Contains(text, "dataflow.op.mark") {
			t.Fatalf("quarantined record shows post-quarantine hop:\n%s", text)
		}
	}
}

// TestExecuteTraceDeterministicUnderDoP: byte-identical exports from
// repeated DoP>1 runs — the concurrent-emitter half of the determinism
// claim, exercised through the real executor.
func TestExecuteTraceDeterministicUnderDoP(t *testing.T) {
	run := func(dop int) string {
		rec := trace.NewRecorder(trace.DefaultConfig(11))
		_, _, err := Execute(faultyPlan(7), tracedInput(120),
			ExecConfig{DoP: dop, Policy: Quarantine, OpRetries: 1, Trace: rec, TraceKey: "id"})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := rec.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	base := run(8)
	for i := 0; i < 3; i++ {
		if got := run(8); got != base {
			t.Fatalf("DoP=8 run %d exported different traces", i)
		}
	}
	// DoP must not change the trace content either: worker count is an
	// execution detail, not part of the record's story.
	if got := run(1); got != base {
		t.Fatal("DoP=1 and DoP=8 exported different traces")
	}
}

// TestPanicPinsTrace: a panicking UDF is recovered and the record's
// lineage is pinned with the panic error class.
func TestPanicPinsTrace(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "boom", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int) == 3 {
				panic("degenerate page")
			}
			emit(r)
			return nil
		}}, src)
	rec := trace.NewRecorder(trace.DefaultConfig(2))
	_, stats, err := Execute(p, tracedInput(10),
		ExecConfig{DoP: 2, Policy: Quarantine, Trace: rec, TraceKey: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerNode[1].Panics != 1 {
		t.Fatalf("want 1 panic, got %d", stats.PerNode[1].Panics)
	}
	pinned := rec.Snapshot().Filter(trace.Filter{ErrClass: "panic"})
	if len(pinned.Traces) != 1 || !pinned.Traces[0].Pinned {
		t.Fatalf("panic did not pin exactly one trace: %d", len(pinned.Traces))
	}
	if pinned.Traces[0].Key != "doc-0003" {
		t.Fatalf("wrong record pinned: %s", pinned.Traces[0].Key)
	}
}

// TestRetrySucceedsTraceShowsAttempts: a record that succeeds on retry
// carries op.retry events but no error class.
func TestRetrySucceedsTraceShowsAttempts(t *testing.T) {
	fails := map[int]int{}
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "flaky", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			x := r["x"].(int)
			if x == 5 && fails[x] < 2 {
				fails[x]++
				return errors.New("transient")
			}
			emit(r)
			return nil
		}}, src)
	rec := trace.NewRecorder(trace.DefaultConfig(3))
	_, stats, err := Execute(p, tracedInput(8),
		ExecConfig{DoP: 1, OpRetries: 2, Trace: rec, TraceKey: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerNode[1].Retries != 2 {
		t.Fatalf("want 2 retries, got %d", stats.PerNode[1].Retries)
	}
	s := rec.Snapshot()
	text := s.Filter(trace.Filter{Key: "doc-0005"}).Text()
	if !strings.Contains(text, "op.retry") {
		t.Fatalf("retried record's trace lacks op.retry:\n%s", text)
	}
	if tr := s.Filter(trace.Filter{Key: "doc-0005"}).Traces[0]; len(tr.ErrClasses) != 0 {
		t.Fatalf("recovered record should have no error class: %v", tr.ErrClasses)
	}
}

// TestTraceOffExecuteIdentical: an untraced execution returns the same
// results and stats as a traced one.
func TestTraceOffExecuteIdentical(t *testing.T) {
	run := func(rec *trace.Recorder) (map[int][]Record, *ExecStats) {
		out, stats, err := Execute(faultyPlan(10), tracedInput(60),
			ExecConfig{DoP: 4, Policy: Quarantine, Trace: rec, TraceKey: "id"})
		if err != nil {
			t.Fatal(err)
		}
		return out, stats
	}
	offOut, offStats := run(nil)
	onOut, onStats := run(trace.NewRecorder(trace.DefaultConfig(1)))
	if len(offOut) != len(onOut) {
		t.Fatal("tracing changed sink count")
	}
	for id := range offOut {
		if len(offOut[id]) != len(onOut[id]) {
			t.Fatalf("tracing changed sink %d size", id)
		}
	}
	if offStats.TotalQuarantined() != onStats.TotalQuarantined() {
		t.Fatal("tracing changed quarantine counts")
	}
	// The only permitted Quarantined difference is the trace ID itself.
	for i := range offStats.Quarantined {
		a, b := offStats.Quarantined[i], onStats.Quarantined[i]
		if a.NodeID != b.NodeID || a.Op != b.Op || a.Err != b.Err {
			t.Fatalf("tracing changed quarantine entry %d", i)
		}
		if a.Trace != "" || b.Trace == "" {
			t.Fatalf("trace IDs wrong: off=%q on=%q", a.Trace, b.Trace)
		}
	}
}

// TestFanOutLineage: one record emitted to two downstream readers shows
// both hops under the same trace.
func TestFanOutLineage(t *testing.T) {
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(setOp("left", "l", 1), src)
	p.Add(setOp("right", "r", 1), src)
	rec := trace.NewRecorder(trace.DefaultConfig(4))
	_, _, err := Execute(p, tracedInput(5), ExecConfig{DoP: 2, Trace: rec, TraceKey: "id"})
	if err != nil {
		t.Fatal(err)
	}
	text := rec.Snapshot().Filter(trace.Filter{Key: "doc-0000"}).Text()
	for _, hop := range []string{"dataflow.op.src", "dataflow.op.left", "dataflow.op.right"} {
		if !strings.Contains(text, hop) {
			t.Fatalf("fan-out lineage missing %q:\n%s", hop, text)
		}
	}
}
