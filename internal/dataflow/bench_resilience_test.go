package dataflow

import (
	"fmt"
	"testing"
)

// benchPlan builds the same 5-op linear flow BenchmarkExecuteLinear uses.
func benchPlan() *Plan {
	p := &Plan{}
	cur := p.Add(passOp("src"))
	for j := 0; j < 5; j++ {
		cur = p.Add(setOp(fmt.Sprint("op", j), fmt.Sprint("f", j), j), cur)
	}
	return p
}

// BenchmarkExecuteQuarantineFaultFree is the executor's happy path under
// the default error policy with no failures — the direct-emission fast
// path (no per-attempt buffering, no input cloning). Paired with
// BenchmarkExecuteLinear in BENCH_PR3.json as the overhead gate.
func BenchmarkExecuteQuarantineFaultFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, _ = Execute(benchPlan(), input(500), ExecConfig{DoP: 2, Policy: Quarantine})
	}
}

// BenchmarkExecuteOpRetryBudget prices the retry budget on a fault-free
// flow: with OpRetries > 0 every attempt buffers its emissions so failed
// attempts can be discarded, which costs one slice per record per op.
func BenchmarkExecuteOpRetryBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, _ = Execute(benchPlan(), input(500), ExecConfig{DoP: 2, OpRetries: 2})
	}
}
