package dataflow

import (
	"fmt"
	"sort"
	"testing"

	"webtextie/internal/obs"
)

// errOp fails on records whose x is divisible by mod (deterministic UDF
// crashes, the §5 "tools crash on degenerate input" case).
func errOp(name string, mod int) *Op {
	return &Op{Name: name, Pkg: BASE, Reads: []string{"x"}, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			if r["x"].(int)%mod == 0 {
				return fmt.Errorf("synthetic crash on %v", r["x"])
			}
			emit(r)
			return nil
		}}
}

// testPlan builds a small plan exercising filtering, mutation, and UDF
// errors: src -> even-filter -> mark -> crash-on-multiples-of-10.
func testPlan() *Plan {
	p := &Plan{}
	src := p.Add(passOp("src"))
	ev := p.Add(filterOp("even", func(r Record) bool { return r["x"].(int)%2 == 0 }, 0.5), src)
	mk := p.Add(setOp("mark", "y", "ok"), ev)
	p.Add(errOp("crashy", 10), mk)
	return p
}

// canonical renders a record set order-insensitively for comparison.
func canonical(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		keys := make([]string, 0, len(r))
		for k := range r {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s := ""
		for _, k := range keys {
			s += fmt.Sprintf("%s=%v;", k, r[k])
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// TestDoPEquivalence checks that the degree of parallelism changes only
// scheduling, never results: identical sink records (order-insensitive)
// and identical per-node In/Out/Errors totals for DoP 1, 4, and 16.
func TestDoPEquivalence(t *testing.T) {
	type run struct {
		dop   int
		sink  []string
		stats map[int][3]int64
	}
	var runs []run
	for _, dop := range []int{1, 4, 16} {
		p := testPlan()
		out, st := runSingleSink(t, p, input(200), ExecConfig{DoP: dop})
		perNode := map[int][3]int64{}
		for id, ns := range st.PerNode {
			perNode[id] = [3]int64{ns.In, ns.Out, ns.Errors}
		}
		runs = append(runs, run{dop, canonical(out), perNode})
	}
	// Sanity-check the DoP=1 baseline itself: 200 in, 100 even, 20 of
	// those are multiples of 10 and crash, 80 reach the sink.
	if len(runs[0].sink) != 80 {
		t.Fatalf("DoP=1 sink size = %d, want 80", len(runs[0].sink))
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if len(r.sink) != len(base.sink) {
			t.Fatalf("DoP=%d sink size = %d, DoP=1 = %d", r.dop, len(r.sink), len(base.sink))
		}
		for i := range base.sink {
			if r.sink[i] != base.sink[i] {
				t.Fatalf("DoP=%d sink record %d = %q, DoP=1 = %q", r.dop, i, r.sink[i], base.sink[i])
			}
		}
		for id, want := range base.stats {
			if got := r.stats[id]; got != want {
				t.Errorf("DoP=%d node %d In/Out/Errors = %v, DoP=1 = %v", r.dop, id, got, want)
			}
		}
	}
}

// TestExecMetricsMatchStats checks that the obs registry view of an
// execution agrees with the public ExecStats.
func TestExecMetricsMatchStats(t *testing.T) {
	reg := obs.New()
	p := testPlan()
	_, st := runSingleSink(t, p, input(200), ExecConfig{DoP: 4, Metrics: reg})
	snap := reg.Snapshot()

	if got := snap.Counter("dataflow.executions"); got != 1 {
		t.Errorf("dataflow.executions = %d, want 1", got)
	}
	if got := snap.Gauge("dataflow.records.inflight"); got != 0 {
		t.Errorf("records.inflight after completion = %d, want 0", got)
	}
	for _, n := range p.nodes {
		ns := st.PerNode[n.id]
		if got := snap.Counter(MetricName(n, "in")); got != ns.In {
			t.Errorf("%s = %d, ExecStats.In = %d", MetricName(n, "in"), got, ns.In)
		}
		if got := snap.Counter(MetricName(n, "out")); got != ns.Out {
			t.Errorf("%s = %d, ExecStats.Out = %d", MetricName(n, "out"), got, ns.Out)
		}
		if got := snap.Counter(MetricName(n, "errors")); got != ns.Errors {
			t.Errorf("%s = %d, ExecStats.Errors = %d", MetricName(n, "errors"), got, ns.Errors)
		}
		// The latency histogram observes once per input record; assert the
		// count (bucket placement is wall-clock and nondeterministic).
		if h, ok := snap.Hist(MetricName(n, "ms")); !ok || h.Count != ns.In {
			t.Errorf("%s count = %d (present=%v), want %d", MetricName(n, "ms"), h.Count, ok, ns.In)
		}
		if hw := snap.Gauge(MetricName(n, "queue.highwater")); hw < 0 {
			t.Errorf("%s = %d, want >= 0", MetricName(n, "queue.highwater"), hw)
		}
	}
	if h, ok := snap.Hist("dataflow.wall.ms"); !ok || h.Count != 1 {
		t.Errorf("dataflow.wall.ms count = %d (present=%v), want 1", h.Count, ok)
	}
}

// TestSharedRegistrySequentialExactness: two sequential executions into
// one shared registry must each report exact (non-cumulative) ExecStats,
// while the registry accumulates the totals.
func TestSharedRegistrySequentialExactness(t *testing.T) {
	reg := obs.New()
	for i := 0; i < 2; i++ {
		p := testPlan()
		_, st := runSingleSink(t, p, input(100), ExecConfig{DoP: 4, Metrics: reg})
		if st.PerNode[0].In != 100 {
			t.Fatalf("run %d: source In = %d, want 100 (stats leaked across runs)", i, st.PerNode[0].In)
		}
	}
	// Node ids restart per plan, so the second run hit the same metric
	// names and the registry holds the sum.
	if got := reg.Snapshot().Counter("dataflow.op.00.src.in"); got != 200 {
		t.Errorf("shared registry source in = %d, want 200", got)
	}
	if got := reg.Snapshot().Counter("dataflow.executions"); got != 2 {
		t.Errorf("dataflow.executions = %d, want 2", got)
	}
}
