package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ExecConfig controls plan execution.
type ExecConfig struct {
	// DoP is the number of worker goroutines per operator node.
	DoP int
	// ChannelBuffer sizes the inter-operator queues.
	ChannelBuffer int
}

// DefaultExecConfig uses DoP 4.
func DefaultExecConfig() ExecConfig { return ExecConfig{DoP: 4, ChannelBuffer: 64} }

// NodeStats aggregates one node's execution counters.
type NodeStats struct {
	In, Out int64
	// Errors counts records dropped by UDF errors — the paper's tools
	// crash on degenerate input; the flow counts and continues (§5).
	Errors int64
	// InitTime is the one-time startup duration (dictionary loads).
	InitTime time.Duration
}

// ExecStats describes one plan execution.
type ExecStats struct {
	// PerNode maps node id to its counters.
	PerNode map[int]*NodeStats
	// Wall is the end-to-end execution time.
	Wall time.Duration
}

// TotalErrors sums UDF failures across nodes.
func (s *ExecStats) TotalErrors() int64 {
	var t int64
	for _, ns := range s.PerNode {
		t += ns.Errors
	}
	return t
}

// Execute runs the plan over the input records. Records are fed to every
// node without inputs; the returned map holds the records that reached
// each sink node (keyed by node id).
func Execute(p *Plan, input []Record, cfg ExecConfig) (map[int][]Record, *ExecStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.DoP <= 0 {
		cfg.DoP = 1
	}
	if cfg.ChannelBuffer <= 0 {
		cfg.ChannelBuffer = 64
	}
	start := time.Now()

	stats := &ExecStats{PerNode: map[int]*NodeStats{}}
	for _, n := range p.nodes {
		stats.PerNode[n.id] = &NodeStats{}
	}

	// Topology.
	readers := map[*Node][]*Node{}
	for _, n := range p.nodes {
		for _, in := range n.Inputs {
			readers[in] = append(readers[in], n)
		}
	}
	inCh := map[*Node]chan Record{}
	upstreams := map[*Node]*sync.WaitGroup{}
	for _, n := range p.nodes {
		inCh[n] = make(chan Record, cfg.ChannelBuffer)
		wg := &sync.WaitGroup{}
		if len(n.Inputs) == 0 {
			wg.Add(1) // the feeder
		} else {
			wg.Add(len(n.Inputs))
		}
		upstreams[n] = wg
		go func(n *Node, wg *sync.WaitGroup) {
			wg.Wait()
			close(inCh[n])
		}(n, wg)
	}

	// Sink collection.
	sinkSet := map[*Node]bool{}
	for _, s := range p.Sinks() {
		sinkSet[s] = true
	}
	results := map[int][]Record{}
	var resultsMu sync.Mutex

	// Run the nodes.
	var nodeWG sync.WaitGroup
	for _, n := range p.nodes {
		ns := stats.PerNode[n.id]
		if n.Op.Init != nil {
			t0 := time.Now()
			if err := n.Op.Init(); err != nil {
				return nil, nil, fmt.Errorf("dataflow: init %q: %w", n.Op.Name, err)
			}
			ns.InitTime = time.Since(t0)
		}
		outs := readers[n]
		emit := func(rec Record) {
			atomic.AddInt64(&ns.Out, 1)
			if sinkSet[n] {
				resultsMu.Lock()
				results[n.id] = append(results[n.id], rec)
				resultsMu.Unlock()
				return
			}
			for i, r := range outs {
				if i == len(outs)-1 {
					inCh[r] <- rec
				} else {
					inCh[r] <- rec.Clone()
				}
			}
		}
		nodeWG.Add(1)
		go func(n *Node, ns *NodeStats, emit Emit) {
			defer nodeWG.Done()
			var workerWG sync.WaitGroup
			for w := 0; w < cfg.DoP; w++ {
				workerWG.Add(1)
				go func() {
					defer workerWG.Done()
					for rec := range inCh[n] {
						atomic.AddInt64(&ns.In, 1)
						if err := n.Op.Fn(rec, emit); err != nil {
							if err != ErrStopFlow {
								atomic.AddInt64(&ns.Errors, 1)
							}
						}
					}
				}()
			}
			workerWG.Wait()
			// Signal downstream that this upstream is done.
			for _, r := range readers[n] {
				upstreams[r].Done()
			}
		}(n, ns, emit)
	}

	// Feed sources. With several source nodes, each gets its own copy of
	// the records so concurrent operators never share mutable maps.
	var sources []*Node
	for _, n := range p.nodes {
		if len(n.Inputs) == 0 {
			sources = append(sources, n)
		}
	}
	for si, n := range sources {
		go func(n *Node, cloneAll bool) {
			for _, rec := range input {
				if cloneAll {
					inCh[n] <- rec.Clone()
				} else {
					inCh[n] <- rec
				}
			}
			upstreams[n].Done()
		}(n, si < len(sources)-1)
	}

	nodeWG.Wait()
	stats.Wall = time.Since(start)
	return results, stats, nil
}
