package dataflow

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/trace"
)

// ErrorPolicy selects Execute's response to UDF errors and panics.
type ErrorPolicy int

const (
	// Quarantine (the default) counts the failure, moves the offending
	// input record to the dead-letter output (ExecStats.Quarantined), and
	// keeps the flow running — the §5 robustness requirement: a single
	// malformed page must not kill an 80-day crawl analysis.
	Quarantine ErrorPolicy = iota
	// FailFast aborts the execution on the first terminal UDF error or
	// panic and returns it from Execute.
	FailFast
)

// defaultQuarantineLimit caps the retained dead-letter records when
// ExecConfig.QuarantineLimit is zero.
const defaultQuarantineLimit = 1024

// ExecConfig controls plan execution.
type ExecConfig struct {
	// DoP is the number of worker goroutines per operator node.
	DoP int
	// ChannelBuffer sizes the inter-operator queues.
	ChannelBuffer int
	// Metrics receives the execution's per-operator counters, latency
	// histograms, and queue gauges. Nil uses a fresh private registry so
	// ExecStats stays exact; pass obs.Default() (or any shared registry)
	// to accumulate across executions. Sharing one registry between
	// *concurrent* executions keeps the metric totals exact but makes the
	// per-execution ExecStats deltas approximate.
	Metrics *obs.Registry
	// Policy selects the response to UDF errors (Quarantine by default).
	Policy ErrorPolicy
	// OpRetries is the per-record retry budget for a failing operator:
	// the record is re-presented up to OpRetries more times before it is
	// quarantined (or, under FailFast, kills the run). Emissions of a
	// failed attempt are discarded, so retried records produce output
	// exactly once. 0 disables retries (and keeps the zero-overhead
	// unbuffered emit path).
	OpRetries int
	// QuarantineLimit caps the dead-letter records retained in
	// ExecStats.Quarantined (0 means 1024; negative retains none).
	// Overflowing records are still counted in stats and metrics.
	QuarantineLimit int
	// Trace, when set, records every record's lineage: one trace per input
	// record, one span per operator the record (or a record derived from
	// it) passes through, with retry/panic/quarantine events. Timestamps
	// are the plan-position logical clock (node id), so exports are
	// deterministic per seed even under DoP > 1. Under FailFast the drain
	// after an abort leaves unprocessed spans open — trace determinism is
	// only guaranteed under the Quarantine policy.
	Trace *trace.Recorder
	// TraceKey names the record field holding the document identity used
	// as the trace key (e.g. "id"). Records without the field fall back to
	// an input-index key.
	TraceKey string
	// Log, when set, receives the execution's event log: exec lifecycle,
	// per-record retry/panic/quarantine decisions, and one summary record
	// per operator. Timestamps are the same plan-position logical clock
	// the tracer uses, and evlog retention is order-independent, so the
	// exported log is byte-identical across DoP settings per seed.
	Log *evlog.Sink
	// Prof, when set, attributes execution cost per operator under
	// dataflow.op.<name> scopes: every processed record charges one
	// deterministic virtual-lane call plus a wall-lane bracket (real
	// nanoseconds and, with prof.Config.Alloc, allocation deltas) around
	// the operator invocation. Virtual-lane counts are DoP-independent
	// under the Quarantine policy — the same caveat as Trace.
	Prof *prof.Profiler
}

// DefaultExecConfig uses DoP 4.
func DefaultExecConfig() ExecConfig { return ExecConfig{DoP: 4, ChannelBuffer: 64} }

// NodeStats aggregates one node's execution counters.
type NodeStats struct {
	In, Out int64
	// Errors counts records an operator terminally failed on (after
	// retries) — quarantined under the default policy.
	Errors int64
	// Retries counts re-presented records; Panics counts recovered UDF
	// panics; Quarantined counts records moved to the dead-letter output.
	Retries, Panics, Quarantined int64
	// InitTime is the one-time startup duration (dictionary loads).
	InitTime time.Duration
}

// QuarantinedRecord is one dead-letter entry: the input record an
// operator could not process, with the terminal error.
type QuarantinedRecord struct {
	// NodeID and Op identify the failing operator instance.
	NodeID int
	Op     string
	// Err is the terminal error's message.
	Err string
	// Rec is the offending input record.
	Rec Record
	// Trace is the hex trace ID of the record's lineage (empty when the
	// execution ran without tracing) — the handle for reconstructing every
	// hop the record took before it was dead-lettered.
	Trace string
}

// ExecStats describes one plan execution.
type ExecStats struct {
	// PerNode maps node id to its counters.
	PerNode map[int]*NodeStats
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// Quarantined is the dead-letter output, sorted by (node, error,
	// record) so concurrent executions report deterministically. Capped
	// at ExecConfig.QuarantineLimit; NodeStats.Quarantined holds the
	// uncapped counts.
	Quarantined []QuarantinedRecord
}

// TotalErrors sums terminal UDF failures across nodes.
func (s *ExecStats) TotalErrors() int64 {
	var t int64
	for _, ns := range s.PerNode {
		t += ns.Errors
	}
	return t
}

// TotalRetries sums record re-presentations across nodes.
func (s *ExecStats) TotalRetries() int64 {
	var t int64
	for _, ns := range s.PerNode {
		t += ns.Retries
	}
	return t
}

// TotalQuarantined sums dead-lettered records across nodes (uncapped).
func (s *ExecStats) TotalQuarantined() int64 {
	var t int64
	for _, ns := range s.PerNode {
		t += ns.Quarantined
	}
	return t
}

// nodeMetrics bundles one node's obs instruments. The executor's bespoke
// atomic counters were replaced by these: ExecStats is now derived from
// registry deltas after the run.
type nodeMetrics struct {
	in, out, errs                *obs.Counter
	retries, panics, quarantined *obs.Counter
	in0, out0, errs0             int64 // registry values before this execution
	retries0, panics0, quar0     int64
	latency                      *obs.Histogram
	queueDepth, queueWater       *obs.Gauge
}

// MetricName returns the obs registry name for one per-operator metric of
// a plan node: dataflow.op.<id>.<opname>.<metric>. Ids are zero-padded so
// rendered snapshots sort in plan order.
func MetricName(n *Node, metric string) string {
	return fmt.Sprintf("dataflow.op.%02d.%s.%s", n.id, n.Op.Name, metric)
}

func newNodeMetrics(reg *obs.Registry, n *Node) *nodeMetrics {
	m := &nodeMetrics{
		in:          reg.Counter(MetricName(n, "in")),
		out:         reg.Counter(MetricName(n, "out")),
		errs:        reg.Counter(MetricName(n, "errors")),
		retries:     reg.Counter(MetricName(n, "retries")),
		panics:      reg.Counter(MetricName(n, "panics")),
		quarantined: reg.Counter(MetricName(n, "quarantined")),
		latency:     reg.Histogram(MetricName(n, "ms"), obs.DefaultMsBuckets...),
		queueDepth:  reg.Gauge(MetricName(n, "queue.depth")),
		queueWater:  reg.Gauge(MetricName(n, "queue.highwater")),
	}
	m.in0, m.out0, m.errs0 = m.in.Value(), m.out.Value(), m.errs.Value()
	m.retries0, m.panics0, m.quar0 = m.retries.Value(), m.panics.Value(), m.quarantined.Value()
	return m
}

// errPanic marks errors synthesized from recovered UDF panics.
var errPanic = errors.New("dataflow: operator panicked")

// safeUDF invokes a UDF with panic recovery: a panicking operator reads
// as an error instead of tearing down the whole execution.
func safeUDF(fn UDF, rec Record, emit Emit) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", errPanic, p)
		}
	}()
	return fn(rec, emit)
}

// flowItem is one record in flight between operators, paired with its
// lineage trace context (a zero Context when tracing is off).
type flowItem struct {
	rec Record
	tc  trace.Context
}

// quarantineLog collects dead-letter records across worker goroutines.
type quarantineLog struct {
	mu    sync.Mutex
	limit int
	recs  []QuarantinedRecord
}

func (q *quarantineLog) add(n *Node, rec Record, err error, tc trace.Context) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.recs) >= q.limit {
		return
	}
	id := ""
	if tc.Active() {
		id = tc.Trace.String()
	}
	q.recs = append(q.recs, QuarantinedRecord{
		NodeID: n.id, Op: n.Op.Name, Err: err.Error(), Rec: rec.Clone(), Trace: id,
	})
}

// sorted returns the dead-letter output in deterministic order: workers
// race to append, but the *set* per seed is fixed, so sorting by (node,
// error, record rendering) makes the report reproducible. fmt renders
// maps with sorted keys, giving a stable record key.
func (q *quarantineLog) sorted() []QuarantinedRecord {
	sort.Slice(q.recs, func(i, j int) bool {
		a, b := q.recs[i], q.recs[j]
		if a.NodeID != b.NodeID {
			return a.NodeID < b.NodeID
		}
		if a.Err != b.Err {
			return a.Err < b.Err
		}
		return fmt.Sprintf("%v", a.Rec) < fmt.Sprintf("%v", b.Rec)
	})
	return q.recs
}

// process runs one record through one operator under the error policy:
// panic recovery, up to cfg.OpRetries re-presentations (each attempt's
// emissions buffered and discarded on failure), then quarantine or abort.
// A non-nil return is a FailFast abort.
func process(n *Node, nm *nodeMetrics, cfg ExecConfig, item flowItem, emit Emit, q *quarantineLog, lg evlog.Logger) error {
	rec, tc := item.rec, item.tc
	ts := int64(n.id) // plan-position logical clock
	var lastErr error
	for attempt := 0; attempt <= cfg.OpRetries; attempt++ {
		in, out := rec, emit
		var buf []Record
		if cfg.OpRetries > 0 {
			// Buffer emissions so a failed attempt emits nothing and a
			// retry starts from a pristine record.
			out = func(r Record) { buf = append(buf, r) }
			if attempt > 0 {
				in = rec.Clone()
				nm.retries.Inc()
				tc.Event("op.retry", ts, trace.Int("attempt", int64(attempt)))
				lg.For(tc.Trace).Debug("op.retry", ts,
					trace.String("op", n.Op.Name), trace.Int("attempt", int64(attempt)))
			}
		}
		err := safeUDF(n.Op.Fn, in, out)
		if errors.Is(err, ErrStopFlow) {
			tc.Event("op.filtered", ts)
			return nil // filtered, not a failure
		}
		if err == nil {
			for _, r := range buf {
				emit(r)
			}
			return nil
		}
		if errors.Is(err, errPanic) {
			nm.panics.Inc()
			// Panic recovery is a flight-recorder event: pin the lineage.
			tc.Error("panic", ts, trace.String("op", n.Op.Name))
			lg.For(tc.Trace).Warn("op.panic", ts, trace.String("op", n.Op.Name))
		}
		lastErr = err
	}
	nm.errs.Inc()
	if cfg.Policy == FailFast {
		tc.Event("op.abort", ts, trace.String("cause", lastErr.Error()))
		lg.For(tc.Trace).Error("op.abort", ts,
			trace.String("op", n.Op.Name), trace.String("cause", lastErr.Error()))
		return fmt.Errorf("dataflow: op %q: %w", n.Op.Name, lastErr)
	}
	nm.quarantined.Inc()
	// Quarantine routing pins the record's full lineage so the dead letter
	// is reconstructible hop by hop.
	tc.Error("quarantine", ts,
		trace.String("op", n.Op.Name), trace.String("cause", lastErr.Error()))
	lg.For(tc.Trace).Warn("op.quarantine", ts,
		trace.String("op", n.Op.Name), trace.String("cause", lastErr.Error()))
	q.add(n, rec, lastErr, tc)
	return nil
}

// Execute runs the plan over the input records. Records are fed to every
// node without inputs; the returned map holds the records that reached
// each sink node (keyed by node id).
//
// UDF failures follow cfg.Policy: under Quarantine (default) the failing
// record lands in ExecStats.Quarantined and the flow continues; under
// FailFast the first terminal failure aborts the run and is returned.
// Operator panics are recovered and treated as errors either way.
func Execute(p *Plan, input []Record, cfg ExecConfig) (map[int][]Record, *ExecStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.DoP <= 0 {
		cfg.DoP = 1
	}
	if cfg.ChannelBuffer <= 0 {
		cfg.ChannelBuffer = 64
	}
	if cfg.QuarantineLimit == 0 {
		cfg.QuarantineLimit = defaultQuarantineLimit
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	wall := reg.StartSpan("dataflow.wall")
	reg.Counter("dataflow.executions").Inc()
	inflight := reg.Gauge("dataflow.records.inflight")

	// Event-log loggers (no-ops when cfg.Log is nil). lgOp is shared by
	// every worker goroutine: Sink.emit serializes, record content derives
	// only from (plan, seed), and retention is order-independent, so the
	// export is identical at any DoP. No rate limiting here — token
	// buckets are order-sensitive and would break that identity.
	lgExec := cfg.Log.Logger("dataflow.exec")
	lgOp := cfg.Log.Logger("dataflow.op")
	// exec.start deliberately omits DoP: the log contract is byte-identity
	// across DoP settings, and worker count is run shape, not plan content.
	lgExec.Info("exec.start", 0,
		trace.Int("records", int64(len(input))),
		trace.Int("nodes", int64(len(p.nodes))))

	stats := &ExecStats{PerNode: map[int]*NodeStats{}}
	metrics := map[int]*nodeMetrics{}
	for _, n := range p.nodes {
		stats.PerNode[n.id] = &NodeStats{}
		metrics[n.id] = newNodeMetrics(reg, n)
	}

	// Operator Init runs before any goroutine spawns, so an Init error
	// returns cleanly instead of leaking blocked workers.
	for _, n := range p.nodes {
		if n.Op.Init == nil {
			continue
		}
		sp := reg.Histogram("dataflow.init.ms", obs.DefaultMsBuckets...).Start()
		if err := n.Op.Init(); err != nil {
			return nil, nil, fmt.Errorf("dataflow: init %q: %w", n.Op.Name, err)
		}
		stats.PerNode[n.id].InitTime = sp.End()
	}

	quar := &quarantineLog{limit: cfg.QuarantineLimit}
	if quar.limit < 0 {
		quar.limit = 0
	}
	// abortErr holds the first FailFast error; once set, workers drain
	// their queues without processing so the topology still unwinds.
	var abortErr atomic.Pointer[error]

	// Topology.
	readers := map[*Node][]*Node{}
	for _, n := range p.nodes {
		for _, in := range n.Inputs {
			readers[in] = append(readers[in], n)
		}
	}
	inCh := map[*Node]chan flowItem{}
	upstreams := map[*Node]*sync.WaitGroup{}
	for _, n := range p.nodes {
		inCh[n] = make(chan flowItem, cfg.ChannelBuffer)
		wg := &sync.WaitGroup{}
		if len(n.Inputs) == 0 {
			wg.Add(1) // the feeder
		} else {
			wg.Add(len(n.Inputs))
		}
		upstreams[n] = wg
		go func(n *Node, wg *sync.WaitGroup) {
			wg.Wait()
			close(inCh[n])
		}(n, wg)
	}

	// Sink collection.
	sinkSet := map[*Node]bool{}
	for _, s := range p.Sinks() {
		sinkSet[s] = true
	}
	results := map[int][]Record{}
	var resultsMu sync.Mutex

	// Span names per node, via the sanctioned dotted-name builder (operator
	// names are config data, not compile-time constants).
	spanName := map[int]string{}
	for _, n := range p.nodes {
		spanName[n.id] = trace.TraceName("dataflow.op", n.Op.Name)
	}
	// Profiler cost scopes per node, likewise through the sanctioned
	// builder. A missing entry is the zero (disabled) Scope, so workers
	// index unconditionally.
	opScope := map[int]prof.Scope{}
	if cfg.Prof != nil {
		for _, n := range p.nodes {
			opScope[n.id] = cfg.Prof.Scope(prof.ScopeName("dataflow.op", n.Op.Name))
		}
	}
	// hopSlot keys a child span by (downstream node, emit index): the emit
	// index is serial within one process() call, so span IDs are
	// deterministic per record path regardless of worker interleaving.
	hopSlot := func(nodeID int, emitIdx int) uint64 {
		return uint64(nodeID)<<32 | uint64(emitIdx)
	}

	// Run the nodes.
	var nodeWG sync.WaitGroup
	for _, n := range p.nodes {
		nm := metrics[n.id]
		outs := readers[n]
		// emitFrom routes one emission, minting the downstream hop's span
		// as a child of the emitting record's span.
		emitFrom := func(rec Record, parent trace.Context, emitIdx int) {
			nm.out.Inc()
			if sinkSet[n] {
				resultsMu.Lock()
				results[n.id] = append(results[n.id], rec)
				resultsMu.Unlock()
				return
			}
			for i, r := range outs {
				out := rec
				if i != len(outs)-1 {
					out = rec.Clone()
				}
				//lintx:ignore tracename spanName entries are precomputed through TraceName at plan build
				tc := parent.StartSpanKeyed(spanName[r.id], hopSlot(r.id, emitIdx), int64(r.id))
				inCh[r] <- flowItem{rec: out, tc: tc}
			}
		}
		nodeWG.Add(1)
		go func(n *Node, nm *nodeMetrics) {
			defer nodeWG.Done()
			psc := opScope[n.id]
			var workerWG sync.WaitGroup
			for w := 0; w < cfg.DoP; w++ {
				workerWG.Add(1)
				go func() {
					defer workerWG.Done()
					for item := range inCh[n] {
						depth := int64(len(inCh[n]))
						nm.queueDepth.Set(depth)
						nm.queueWater.Max(depth)
						nm.in.Inc()
						if abortErr.Load() != nil {
							continue // fail-fast: drain without processing
						}
						inflight.Add(1)
						sp := nm.latency.Start()
						ph := psc.Enter()
						emitIdx := 0
						emit := func(rec Record) {
							emitFrom(rec, item.tc, emitIdx)
							emitIdx++
						}
						err := process(n, nm, cfg, item, emit, quar, lgOp)
						ph.Exit()
						psc.Add(1, 0)
						sp.End()
						item.tc.End(int64(n.id) + 1)
						inflight.Add(-1)
						if err != nil {
							abortErr.CompareAndSwap(nil, &err)
						}
					}
					nm.queueDepth.Set(0)
				}()
			}
			workerWG.Wait()
			// Signal downstream that this upstream is done.
			for _, r := range readers[n] {
				upstreams[r].Done()
			}
		}(n, nm)
	}

	// One lineage trace per input record, minted serially in input order so
	// trace IDs are deterministic. Keys come from the TraceKey field when
	// present.
	var roots []trace.Context
	if cfg.Trace != nil {
		roots = make([]trace.Context, len(input))
		for i, rec := range input {
			key := fmt.Sprintf("record.%06d", i)
			if cfg.TraceKey != "" {
				if s, ok := rec[cfg.TraceKey].(string); ok && s != "" {
					key = s
				}
			}
			roots[i] = cfg.Trace.Start("dataflow.record", key, 0, trace.Int("index", int64(i)))
		}
	}

	// Feed sources. With several source nodes, each gets its own copy of
	// the records so concurrent operators never share mutable maps, and its
	// own source-hop span under the record's root.
	var sources []*Node
	for _, n := range p.nodes {
		if len(n.Inputs) == 0 {
			sources = append(sources, n)
		}
	}
	for si, n := range sources {
		go func(n *Node, cloneAll bool) {
			for i, rec := range input {
				if cloneAll {
					rec = rec.Clone()
				}
				var tc trace.Context
				if roots != nil {
					//lintx:ignore tracename spanName entries are precomputed through TraceName at plan build
					tc = roots[i].StartSpanKeyed(spanName[n.id], hopSlot(n.id, 0), int64(n.id))
				}
				inCh[n] <- flowItem{rec: rec, tc: tc}
			}
			upstreams[n].Done()
		}(n, si < len(sources)-1)
	}

	nodeWG.Wait()
	// Close every record's trace at the end of the plan (serial, so
	// retention decisions replay identically run to run).
	for i := range roots {
		roots[i].Finish(int64(len(p.nodes)) + 1)
	}
	stats.Wall = wall.End()
	// Fill the public per-node stats from the registry deltas, and emit
	// the per-operator summaries serially in plan order (all workers have
	// joined, so these land after every per-record event).
	endTs := int64(len(p.nodes)) + 1
	for _, n := range p.nodes {
		ns, nm := stats.PerNode[n.id], metrics[n.id]
		ns.In = nm.in.Value() - nm.in0
		ns.Out = nm.out.Value() - nm.out0
		ns.Errors = nm.errs.Value() - nm.errs0
		ns.Retries = nm.retries.Value() - nm.retries0
		ns.Panics = nm.panics.Value() - nm.panics0
		ns.Quarantined = nm.quarantined.Value() - nm.quar0
		lgOp.Info("op.summary", endTs,
			trace.String("op", n.Op.Name), trace.Int("node", int64(n.id)),
			trace.Int("in", ns.In), trace.Int("out", ns.Out),
			trace.Int("quarantined", ns.Quarantined))
	}
	stats.Quarantined = quar.sorted()
	lgExec.Info("exec.done", endTs,
		trace.Int("quarantined", stats.TotalQuarantined()),
		trace.Int("retries", stats.TotalRetries()))
	if ep := abortErr.Load(); ep != nil {
		return nil, stats, *ep
	}
	return results, stats, nil
}
