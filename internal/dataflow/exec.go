package dataflow

import (
	"fmt"
	"sync"
	"time"

	"webtextie/internal/obs"
)

// ExecConfig controls plan execution.
type ExecConfig struct {
	// DoP is the number of worker goroutines per operator node.
	DoP int
	// ChannelBuffer sizes the inter-operator queues.
	ChannelBuffer int
	// Metrics receives the execution's per-operator counters, latency
	// histograms, and queue gauges. Nil uses a fresh private registry so
	// ExecStats stays exact; pass obs.Default() (or any shared registry)
	// to accumulate across executions. Sharing one registry between
	// *concurrent* executions keeps the metric totals exact but makes the
	// per-execution ExecStats deltas approximate.
	Metrics *obs.Registry
}

// DefaultExecConfig uses DoP 4.
func DefaultExecConfig() ExecConfig { return ExecConfig{DoP: 4, ChannelBuffer: 64} }

// NodeStats aggregates one node's execution counters.
type NodeStats struct {
	In, Out int64
	// Errors counts records dropped by UDF errors — the paper's tools
	// crash on degenerate input; the flow counts and continues (§5).
	Errors int64
	// InitTime is the one-time startup duration (dictionary loads).
	InitTime time.Duration
}

// ExecStats describes one plan execution.
type ExecStats struct {
	// PerNode maps node id to its counters.
	PerNode map[int]*NodeStats
	// Wall is the end-to-end execution time.
	Wall time.Duration
}

// TotalErrors sums UDF failures across nodes.
func (s *ExecStats) TotalErrors() int64 {
	var t int64
	for _, ns := range s.PerNode {
		t += ns.Errors
	}
	return t
}

// nodeMetrics bundles one node's obs instruments. The executor's bespoke
// atomic counters were replaced by these: ExecStats is now derived from
// registry deltas after the run.
type nodeMetrics struct {
	in, out, errs          *obs.Counter
	in0, out0, errs0       int64 // registry values before this execution
	latency                *obs.Histogram
	queueDepth, queueWater *obs.Gauge
}

// MetricName returns the obs registry name for one per-operator metric of
// a plan node: dataflow.op.<id>.<opname>.<metric>. Ids are zero-padded so
// rendered snapshots sort in plan order.
func MetricName(n *Node, metric string) string {
	return fmt.Sprintf("dataflow.op.%02d.%s.%s", n.id, n.Op.Name, metric)
}

func newNodeMetrics(reg *obs.Registry, n *Node) *nodeMetrics {
	m := &nodeMetrics{
		in:         reg.Counter(MetricName(n, "in")),
		out:        reg.Counter(MetricName(n, "out")),
		errs:       reg.Counter(MetricName(n, "errors")),
		latency:    reg.Histogram(MetricName(n, "ms"), obs.DefaultMsBuckets...),
		queueDepth: reg.Gauge(MetricName(n, "queue.depth")),
		queueWater: reg.Gauge(MetricName(n, "queue.highwater")),
	}
	m.in0, m.out0, m.errs0 = m.in.Value(), m.out.Value(), m.errs.Value()
	return m
}

// Execute runs the plan over the input records. Records are fed to every
// node without inputs; the returned map holds the records that reached
// each sink node (keyed by node id).
func Execute(p *Plan, input []Record, cfg ExecConfig) (map[int][]Record, *ExecStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.DoP <= 0 {
		cfg.DoP = 1
	}
	if cfg.ChannelBuffer <= 0 {
		cfg.ChannelBuffer = 64
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.New()
	}
	wall := reg.StartSpan("dataflow.wall")
	reg.Counter("dataflow.executions").Inc()
	inflight := reg.Gauge("dataflow.records.inflight")

	stats := &ExecStats{PerNode: map[int]*NodeStats{}}
	metrics := map[int]*nodeMetrics{}
	for _, n := range p.nodes {
		stats.PerNode[n.id] = &NodeStats{}
		metrics[n.id] = newNodeMetrics(reg, n)
	}

	// Topology.
	readers := map[*Node][]*Node{}
	for _, n := range p.nodes {
		for _, in := range n.Inputs {
			readers[in] = append(readers[in], n)
		}
	}
	inCh := map[*Node]chan Record{}
	upstreams := map[*Node]*sync.WaitGroup{}
	for _, n := range p.nodes {
		inCh[n] = make(chan Record, cfg.ChannelBuffer)
		wg := &sync.WaitGroup{}
		if len(n.Inputs) == 0 {
			wg.Add(1) // the feeder
		} else {
			wg.Add(len(n.Inputs))
		}
		upstreams[n] = wg
		go func(n *Node, wg *sync.WaitGroup) {
			wg.Wait()
			close(inCh[n])
		}(n, wg)
	}

	// Sink collection.
	sinkSet := map[*Node]bool{}
	for _, s := range p.Sinks() {
		sinkSet[s] = true
	}
	results := map[int][]Record{}
	var resultsMu sync.Mutex

	// Run the nodes.
	var nodeWG sync.WaitGroup
	for _, n := range p.nodes {
		ns := stats.PerNode[n.id]
		nm := metrics[n.id]
		if n.Op.Init != nil {
			sp := reg.Histogram("dataflow.init.ms", obs.DefaultMsBuckets...).Start()
			if err := n.Op.Init(); err != nil {
				return nil, nil, fmt.Errorf("dataflow: init %q: %w", n.Op.Name, err)
			}
			ns.InitTime = sp.End()
		}
		outs := readers[n]
		emit := func(rec Record) {
			nm.out.Inc()
			if sinkSet[n] {
				resultsMu.Lock()
				results[n.id] = append(results[n.id], rec)
				resultsMu.Unlock()
				return
			}
			for i, r := range outs {
				if i == len(outs)-1 {
					inCh[r] <- rec
				} else {
					inCh[r] <- rec.Clone()
				}
			}
		}
		nodeWG.Add(1)
		go func(n *Node, nm *nodeMetrics, emit Emit) {
			defer nodeWG.Done()
			var workerWG sync.WaitGroup
			for w := 0; w < cfg.DoP; w++ {
				workerWG.Add(1)
				go func() {
					defer workerWG.Done()
					for rec := range inCh[n] {
						depth := int64(len(inCh[n]))
						nm.queueDepth.Set(depth)
						nm.queueWater.Max(depth)
						nm.in.Inc()
						inflight.Add(1)
						sp := nm.latency.Start()
						err := n.Op.Fn(rec, emit)
						sp.End()
						inflight.Add(-1)
						if err != nil && err != ErrStopFlow {
							nm.errs.Inc()
						}
					}
					nm.queueDepth.Set(0)
				}()
			}
			workerWG.Wait()
			// Signal downstream that this upstream is done.
			for _, r := range readers[n] {
				upstreams[r].Done()
			}
		}(n, nm, emit)
	}

	// Feed sources. With several source nodes, each gets its own copy of
	// the records so concurrent operators never share mutable maps.
	var sources []*Node
	for _, n := range p.nodes {
		if len(n.Inputs) == 0 {
			sources = append(sources, n)
		}
	}
	for si, n := range sources {
		go func(n *Node, cloneAll bool) {
			for _, rec := range input {
				if cloneAll {
					inCh[n] <- rec.Clone()
				} else {
					inCh[n] <- rec
				}
			}
			upstreams[n].Done()
		}(n, si < len(sources)-1)
	}

	nodeWG.Wait()
	stats.Wall = wall.End()
	// Fill the public per-node stats from the registry deltas.
	for _, n := range p.nodes {
		ns, nm := stats.PerNode[n.id], metrics[n.id]
		ns.In = nm.in.Value() - nm.in0
		ns.Out = nm.out.Value() - nm.out0
		ns.Errors = nm.errs.Value() - nm.errs0
	}
	return results, stats, nil
}
