package dataflow

// The logical optimizer, after SOFA [23]: it rewrites linear operator
// chains using the operators' semantic annotations. Two rules are
// implemented, the ones that matter for the paper's flows:
//
//  1. selective-operator push-down: cheap filters move upstream past
//     expensive operators whenever the field read/write sets commute,
//     shrinking the data volume that reaches the heavyweight IE stages;
//  2. cost-aware chain ordering: among commuting neighbours, the one with
//     the smaller (selectivity-weighted) cost runs first.
//
// The optimizer only reorders within linear chains (single input, single
// reader) — fan-in/fan-out boundaries are barriers, as in SOFA's operator
// graphs.

// Optimize returns a new plan with the rewrite rules applied. The input
// plan is not modified.
type OptimizeStats struct {
	// Swaps is the number of pairwise reorderings applied.
	Swaps int
	// Chains is the number of linear chains considered.
	Chains int
}

// Optimize applies the rewrite rules in place and reports what it did.
func Optimize(p *Plan) OptimizeStats {
	var st OptimizeStats
	for _, chain := range linearChains(p) {
		st.Chains++
		st.Swaps += reorderChain(chain)
	}
	return st
}

// linearChains finds maximal runs of nodes n1 <- n2 <- ... where each link
// is single-input / single-reader.
func linearChains(p *Plan) [][]*Node {
	readers := map[*Node][]*Node{}
	for _, n := range p.nodes {
		for _, in := range n.Inputs {
			readers[in] = append(readers[in], n)
		}
	}
	inChain := map[*Node]bool{}
	var chains [][]*Node
	for _, n := range p.nodes {
		if inChain[n] {
			continue
		}
		// A chain starts at a node whose input link is not chainable.
		if chainablePred(n, readers) != nil {
			continue
		}
		var chain []*Node
		cur := n
		for cur != nil {
			chain = append(chain, cur)
			inChain[cur] = true
			cur = chainableSucc(cur, readers)
		}
		if len(chain) > 1 {
			chains = append(chains, chain)
		}
	}
	return chains
}

// chainablePred returns the single chainable input of n, if any.
func chainablePred(n *Node, readers map[*Node][]*Node) *Node {
	if len(n.Inputs) != 1 {
		return nil
	}
	in := n.Inputs[0]
	if len(readers[in]) != 1 {
		return nil
	}
	return in
}

// chainableSucc returns the single chainable reader of n, if any.
func chainableSucc(n *Node, readers map[*Node][]*Node) *Node {
	rs := readers[n]
	if len(rs) != 1 {
		return nil
	}
	succ := rs[0]
	if len(succ.Inputs) != 1 {
		return nil
	}
	return succ
}

// reorderChain bubble-sorts the chain's operators by the cost rule,
// swapping only commuting neighbours. It rewires the Op pointers (node
// identity and topology stay fixed, which keeps external references valid).
func reorderChain(chain []*Node) int {
	swaps := 0
	ops := make([]*Op, len(chain))
	for i, n := range chain {
		ops[i] = n.Op
	}
	// Bubble sort bounded by chain length; only adjacent commuting swaps.
	for pass := 0; pass < len(ops); pass++ {
		moved := false
		for i := 0; i+1 < len(ops); i++ {
			a, b := ops[i], ops[i+1]
			if !Commute(a, b) {
				continue
			}
			if rank(b) < rank(a) {
				ops[i], ops[i+1] = b, a
				swaps++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	for i, n := range chain {
		n.Op = ops[i]
	}
	return swaps
}

// rank orders operators for the cost rule: strongly selective, cheap
// operators first. Lower rank runs earlier.
func rank(o *Op) float64 {
	sel := o.Selectivity
	if sel <= 0 {
		sel = 1
	}
	cost := o.Cost.PerKBms
	if cost <= 0 {
		cost = 0.01
	}
	if o.Filter {
		// Filters carry no rewrite risk and shrink volume: run as early as
		// their dependencies allow. Rank below any non-filter.
		return sel - 1 // in [-1, 0)
	}
	return cost * sel
}
