package dataflow

import (
	"bytes"
	"errors"
	"testing"

	"webtextie/internal/obs/evlog"
)

// logPlan is a small flow with deterministic per-record failures: panics
// on x%20==0, terminal errors on x%10==5, one transient failure on
// x%7==0 (recovers on the retry), pass-through otherwise.
func logPlan(t *testing.T) *Plan {
	t.Helper()
	p := &Plan{}
	src := p.Add(passOp("src"))
	p.Add(&Op{Name: "flaky", Pkg: IE, Selectivity: 1,
		Fn: func(r Record, emit Emit) error {
			x := r["x"].(int)
			switch {
			case x%20 == 0:
				panic("nil dereference in tagger")
			case x%10 == 5:
				return errors.New("degenerate input")
			case x%7 == 0 && r["retried"] == nil:
				r["retried"] = true
				return errors.New("transient")
			}
			emit(r)
			return nil
		}}, src)
	return p
}

func runLogged(t *testing.T, dop int) *evlog.Snapshot {
	t.Helper()
	sink := evlog.NewSink(evlog.DefaultConfig(7))
	cfg := ExecConfig{DoP: dop, OpRetries: 2, Log: sink}
	if _, _, err := Execute(logPlan(t), input(120), cfg); err != nil {
		t.Fatal(err)
	}
	return sink.Snapshot()
}

// TestExecLogByteIdenticalAcrossDoP: the executor's event log rides the
// plan-position logical clock and evlog's order-independent retention,
// so a DoP-1 run and a DoP-4 run of the same plan export identical bytes
// in every format.
func TestExecLogByteIdenticalAcrossDoP(t *testing.T) {
	a, b := runLogged(t, 1), runLogged(t, 4)
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("JSON export differs across DoP:\n--- DoP 1 ---\n%s\n--- DoP 4 ---\n%s", aj, bj)
	}
	if a.Logfmt() != b.Logfmt() {
		t.Fatal("logfmt export differs across DoP")
	}
	if a.Text() != b.Text() {
		t.Fatal("text export differs across DoP")
	}
}

// TestExecLogContent: lifecycle, quarantine, panic, retry, and summary
// records all land with the expected components and levels.
func TestExecLogContent(t *testing.T) {
	snap := runLogged(t, 4)
	// 120 inputs: 6 panics (x%20==0), 12 errors at x%10==5, 18-1 transient
	// retries at x%7==0 minus overlaps — assert the structural invariants
	// rather than the exact tallies.
	if snap.ComponentTotal(evlog.Info, "dataflow.exec") != 2 {
		t.Errorf("exec lifecycle records = %d, want 2 (start+done)",
			snap.ComponentTotal(evlog.Info, "dataflow.exec"))
	}
	if got := snap.ComponentTotal(evlog.Warn, "dataflow.op"); got == 0 {
		t.Error("no warn-level op records (quarantine/panic) emitted")
	}
	msgs := map[string]int{}
	for _, r := range snap.Records {
		msgs[r.Msg]++
	}
	for _, want := range []string{"exec.start", "exec.done", "op.summary", "op.quarantine", "op.panic"} {
		if msgs[want] == 0 {
			t.Errorf("no %q record retained", want)
		}
	}
	if msgs["op.summary"] != 2 {
		t.Errorf("op.summary records = %d, want one per node (2)", msgs["op.summary"])
	}
}
