package dedup

import (
	"fmt"
	"strings"
	"testing"

	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func TestShingles(t *testing.T) {
	sh := Shingles("one two three four", 3)
	if len(sh) != 2 {
		t.Fatalf("shingles = %d, want 2", len(sh))
	}
	// Case-insensitive.
	a := Shingles("One Two Three", 3)
	b := Shingles("one two three", 3)
	if a[0] != b[0] {
		t.Error("shingles not case-folded")
	}
	if Shingles("", 3) != nil {
		t.Error("empty text should have no shingles")
	}
	if got := Shingles("short", 3); len(got) != 1 {
		t.Errorf("short text shingles = %d", len(got))
	}
}

func TestIdenticalTextsFullSimilarity(t *testing.T) {
	text := "the quick brown fox jumps over the lazy dog repeatedly every day"
	a, b := Sketch(text, 3), Sketch(text, 3)
	if got := Similarity(a, b); got != 1 {
		t.Fatalf("identical similarity = %v", got)
	}
}

func TestDisjointTextsLowSimilarity(t *testing.T) {
	a := Sketch("alpha beta gamma delta epsilon zeta eta theta iota kappa", 3)
	b := Sketch("one two three four five six seven eight nine ten eleven", 3)
	if got := Similarity(a, b); got > 0.2 {
		t.Fatalf("disjoint similarity = %v", got)
	}
}

func TestNearDuplicateHighSimilarity(t *testing.T) {
	// A varied base text (many distinct shingles) plus a short appended
	// notice — the mirror-page pattern.
	var b strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&b, "sentence %d mentions topic%d and topic%d in passing. ", i, i*3%17, i*5%23)
	}
	base := b.String()
	mutated := base + "one extra trailing sentence appended here"
	sim := Similarity(Sketch(base, 3), Sketch(mutated, 3))
	if sim < 0.8 {
		t.Fatalf("near-duplicate similarity = %v, want high", sim)
	}
}

func TestSimilarityTracksJaccard(t *testing.T) {
	// Construct texts with a controlled word overlap and check the MinHash
	// estimate lands near the true shingle Jaccard.
	r := rng.New(5)
	words := make([]string, 400)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", r.Intn(5000))
	}
	a := strings.Join(words[:300], " ")
	b := strings.Join(words[100:], " ") // 2/3 overlap in word positions
	sa, sb := Shingles(a, 3), Shingles(b, 3)
	// True Jaccard over shingle sets.
	set := map[uint64]bool{}
	for _, s := range sa {
		set[s] = true
	}
	inter := 0
	union := len(set)
	for _, s := range sb {
		if set[s] {
			inter++
		} else {
			union++
		}
	}
	trueJ := float64(inter) / float64(union)
	est := Similarity(MinHash(sa), MinHash(sb))
	if est < trueJ-0.2 || est > trueJ+0.2 {
		t.Fatalf("estimate %v too far from true Jaccard %v", est, trueJ)
	}
}

func TestIndexFindsNearDuplicates(t *testing.T) {
	idx := NewIndex(0.7)
	base := strings.Repeat("biomedical content about gene regulation and drug response in patients ", 15)
	if _, dup := idx.AddOrFind("original", Sketch(base, 3)); dup {
		t.Fatal("first document reported as dup")
	}
	mirror := base + "hosted mirror copy notice"
	dupOf, dup := idx.AddOrFind("mirror", Sketch(mirror, 3))
	if !dup || dupOf != "original" {
		t.Fatalf("mirror not detected: dup=%v of=%q", dup, dupOf)
	}
	other := strings.Repeat("completely different shopping content about prices and deals online ", 15)
	if _, dup := idx.AddOrFind("other", Sketch(other, 3)); dup {
		t.Fatal("unrelated document reported as dup")
	}
	if idx.Len() != 2 {
		t.Fatalf("index size = %d, want 2", idx.Len())
	}
}

func TestIndexManyDocumentsNoFalsePositives(t *testing.T) {
	// Generated documents are all distinct; none should collide.
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 200, Drugs: 80, Diseases: 80}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	r := rng.New(9)
	idx := NewIndex(0.8)
	dups := 0
	for i := 0; i < 300; i++ {
		d := gen.Doc(r, textgen.Relevant, fmt.Sprint("d", i))
		if _, dup := idx.AddOrFind(d.ID, Sketch(d.Text, 3)); dup {
			dups++
		}
	}
	if dups > 3 {
		t.Fatalf("%d/300 distinct documents flagged as near-duplicates", dups)
	}
}

func TestIndexConcurrentSafe(t *testing.T) {
	idx := NewIndex(0.9)
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				text := fmt.Sprintf("worker %d document %d with some distinct words %d %d", w, i, w*1000+i, i*7)
				idx.AddOrFind(fmt.Sprintf("w%d-%d", w, i), Sketch(text, 2))
			}
			done <- true
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if idx.Len() == 0 {
		t.Fatal("nothing indexed")
	}
}

func BenchmarkSketch(b *testing.B) {
	text := strings.Repeat("the patient was treated with the drug and responded well ", 50)
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		_ = Sketch(text, 3)
	}
}

func BenchmarkIndexAddOrFind(b *testing.B) {
	idx := NewIndex(0.8)
	sigs := make([]Signature, 200)
	for i := range sigs {
		sigs[i] = Sketch(fmt.Sprintf("document %d with content %d %d %d", i, i*3, i*7, i*11), 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.AddOrFind(fmt.Sprint("id", i), sigs[i%len(sigs)])
	}
}
