package dedup

import (
	"strings"
	"testing"

	"webtextie/internal/rng"
)

// TestASCIIShinglesEquivalence pins the equivalence the zero-alloc
// fingerprint path rests on: for ASCII text, span hashing (hashWindow)
// produces exactly the shingle hashes of the legacy
// lower-split-join-hash path. A divergence would silently change every
// dedup decision on the crawl.
func TestASCIIShinglesEquivalence(t *testing.T) {
	vocab := []string{"Alpha", "beta", "GAMMA-7", "the", "of", "X", "mixedCase", "a1b2"}
	seps := []string{" ", "  ", "\t", "\n", "\r\n", " \v "}
	r := rng.New(41)
	for trial := 0; trial < 300; trial++ {
		var b strings.Builder
		nw := r.Intn(12)
		for i := 0; i < nw; i++ {
			b.WriteString(vocab[r.Intn(len(vocab))])
			b.WriteString(seps[r.Intn(len(seps))])
		}
		text := b.String()
		for _, k := range []int{1, 2, 3, 5} {
			fast := Shingles(text, k)
			slow := shinglesUnicode(text, k)
			if len(fast) != len(slow) {
				t.Fatalf("k=%d: %d vs %d shingles on %q", k, len(fast), len(slow), text)
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("k=%d shingle %d: %#x vs %#x on %q", k, i, fast[i], slow[i], text)
				}
			}
		}
	}
}

// TestNonASCIITakesLegacyPath keeps the copying fold for text where
// per-byte case folding would be wrong.
func TestNonASCIITakesLegacyPath(t *testing.T) {
	text := "Straße und MÄRZ sind Wörter"
	got := Shingles(text, 2)
	want := shinglesUnicode(text, 2)
	if len(got) != len(want) {
		t.Fatalf("%d vs %d shingles", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("shingle %d differs", i)
		}
	}
}

// TestSeenMarkEpochReset exercises the epoch-marked candidate scratch
// across many probes, including the growth path, against duplicate and
// non-duplicate outcomes.
func TestSeenMarkEpochReset(t *testing.T) {
	idx := NewIndex(0.9)
	texts := []string{
		"the quick brown fox jumps over the lazy dog again and again",
		"a completely different document about web scale extraction",
		"yet another unrelated text mentioning genes drugs and diseases",
	}
	for i, tx := range texts {
		if _, dup := idx.AddOrFind(string(rune('a'+i)), Sketch(tx, 3)); dup {
			t.Fatalf("text %d falsely marked duplicate", i)
		}
	}
	// Re-probe each: must hit as duplicate of itself, across epochs.
	for round := 0; round < 5; round++ {
		for i, tx := range texts {
			dupOf, dup := idx.AddOrFind("probe", Sketch(tx, 3))
			if !dup || dupOf != string(rune('a'+i)) {
				t.Fatalf("round %d text %d: dup=%v of %q", round, i, dup, dupOf)
			}
		}
	}
	if idx.Len() != len(texts) {
		t.Fatalf("index grew to %d, want %d", idx.Len(), len(texts))
	}
}
