// Package dedup implements near-duplicate detection for web text:
// word-shingle MinHash signatures with LSH banding. Redundancy is one of
// the §1 challenges of web data ("analyzing web data is not trivial due to
// its scale, distribution, heterogeneity, redundancy, and questionable
// quality"): mirrors, syndicated articles and boilerplate-shifted copies
// survive exact-hash deduplication and inflate every frequency the content
// analysis reports.
//
// The construction is the standard one: k-word shingles hashed to 64 bits,
// an n-permutation MinHash signature (implemented as n independent
// mix-functions over the shingle hashes), and an LSH index with b bands of
// r rows (n = b·r) so that candidate pairs are only compared when they
// collide in at least one band.
package dedup

import (
	"strings"
	"sync"

	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// SignatureSize is the number of MinHash components.
const SignatureSize = 64

// Signature is a document's MinHash sketch.
type Signature [SignatureSize]uint64

// mix64 is a strong 64-bit mixer (splitmix64 finalizer).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashShingle hashes one shingle string.
func hashShingle(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// asciiSpace matches the ASCII subset of unicode.IsSpace, the separator
// set strings.Fields uses; on ASCII input the two tokenizations agree.
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// asciiOnly reports whether s contains only ASCII bytes.
func asciiOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// hashWindow is hashShingle(strings.Join(loweredWords[i:i+k], " "))
// computed directly over the word spans of text, byte for byte: the FNV
// stream sees each word's case-folded bytes with a single space between
// words, exactly what the Join-then-hash form feeds it (pinned by test).
// spans holds (start, end) pairs, two int32 per word.
func hashWindow(text string, spans []int32, i, k int) uint64 {
	h := uint64(14695981039346656037)
	for w := 0; w < k; w++ {
		if w > 0 {
			h ^= uint64(' ')
			h *= 1099511628211
		}
		s, e := spans[2*(i+w)], spans[2*(i+w)+1]
		for j := s; j < e; j++ {
			c := text[j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	return h
}

// Shingles returns the hashed k-word shingles of text (lower-cased,
// whitespace-tokenized). Texts shorter than k words yield one shingle.
// ASCII text — the hot mass of the crawl — is hashed straight off word
// spans without lower-casing, splitting, or joining copies; non-ASCII
// text takes the legacy copying path with identical results.
//
//lintx:hotpath shingle fingerprinting, run once per fetched document (ROADMAP item 2).
func Shingles(text string, k int) []uint64 {
	if k <= 0 {
		k = 3
	}
	if !asciiOnly(text) {
		return shinglesUnicode(text, k)
	}
	spans := make([]int32, 0, 2+len(text)/3)
	for i := 0; i < len(text); {
		if asciiSpace(text[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(text) && !asciiSpace(text[j]) {
			j++
		}
		spans = append(spans, int32(i), int32(j))
		i = j
	}
	nw := len(spans) / 2
	if nw == 0 {
		return nil
	}
	if nw <= k {
		out := make([]uint64, 1)
		out[0] = hashWindow(text, spans, 0, nw)
		return out
	}
	out := make([]uint64, 0, nw-k+1)
	for i := 0; i+k <= nw; i++ {
		out = append(out, hashWindow(text, spans, i, k))
	}
	return out
}

// shinglesUnicode is the legacy whole-copy shingle path, kept for
// non-ASCII documents where per-byte case folding is wrong.
func shinglesUnicode(text string, k int) []uint64 {
	//lintx:ignore allocfree non-ASCII fold and split copy once per document; the ASCII fast path covers the hot mass of the crawl
	words := strings.Fields(strings.ToLower(text))
	if len(words) == 0 {
		return nil
	}
	if len(words) <= k {
		out := make([]uint64, 1)
		//lintx:ignore allocfree single Join on a sub-k-word document, not per window
		out[0] = hashShingle(strings.Join(words, " "))
		return out
	}
	out := make([]uint64, 0, len(words)-k+1)
	for i := 0; i+k <= len(words); i++ {
		//lintx:ignore allocfree per-window Join survives only on the non-ASCII fallback; ASCII documents hash spans in place
		out = append(out, hashShingle(strings.Join(words[i:i+k], " ")))
	}
	return out
}

// MinHash computes the signature of a shingle set.
func MinHash(shingles []uint64) Signature {
	var sig Signature
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	if len(shingles) == 0 {
		return sig
	}
	for _, sh := range shingles {
		for i := 0; i < SignatureSize; i++ {
			// Per-component permutation: mix with a component-specific salt.
			v := mix64(sh ^ (uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d))
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// Sketch computes the signature of a text directly.
//
//lintx:hotpath per-document fingerprint entry on the crawl's dedup path (ROADMAP item 2).
func Sketch(text string, shingleK int) Signature {
	return MinHash(Shingles(text, shingleK))
}

// Similarity estimates the Jaccard similarity of the underlying shingle
// sets from two signatures.
func Similarity(a, b Signature) float64 {
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / SignatureSize
}

// Index is an LSH index over MinHash signatures, safe for concurrent use.
type Index struct {
	// Threshold is the similarity above which a document counts as a
	// duplicate of an indexed one.
	Threshold float64
	bands     int
	rows      int

	mu      sync.Mutex
	buckets []map[uint64][]int // per band: bucket-hash -> entry ids
	ids     []string
	sigs    []Signature

	// seenMark is the per-probe candidate-dedup scratch: seenMark[i] ==
	// seenEpoch means entry i was already compared this AddOrFind call.
	// Bumping the epoch resets the set without touching memory; the rare
	// wrap to 0 clears the slice once.
	seenMark  []uint32
	seenEpoch uint32

	cIndexed, cDup, cCand *obs.Counter
	lg                    evlog.Logger
}

// WithLog points the index at an event-log sink: duplicate hits are
// logged (sampled 1-in-4 by document id) on an index-size logical clock,
// deterministic when the index is fed serially. Returns the index for
// chaining.
func (x *Index) WithLog(sink *evlog.Sink) *Index {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.lg = sink.Logger("dedup.index")
	return x
}

// WithMetrics redirects the index's counters (dedup.indexed,
// dedup.duplicates, dedup.candidates) to the given registry; the default
// is obs.Default(). Returns the index for chaining.
func (x *Index) WithMetrics(reg *obs.Registry) *Index {
	reg = obs.Or(reg)
	x.mu.Lock()
	defer x.mu.Unlock()
	x.cIndexed = reg.Counter("dedup.indexed")
	x.cDup = reg.Counter("dedup.duplicates")
	x.cCand = reg.Counter("dedup.candidates")
	return x
}

// NewIndex builds an index with the given duplicate threshold (0 < t < 1)
// and 16 bands of 4 rows (a steep S-curve around ~0.5-0.7 similarity).
func NewIndex(threshold float64) *Index {
	const bands, rows = 16, 4
	idx := &Index{Threshold: threshold, bands: bands, rows: rows,
		buckets: make([]map[uint64][]int, bands)}
	for i := range idx.buckets {
		idx.buckets[i] = map[uint64][]int{}
	}
	return idx.WithMetrics(nil)
}

// Len returns the number of indexed documents.
func (x *Index) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.ids)
}

// bandHash hashes one band of the signature.
func (x *Index) bandHash(sig Signature, band int) uint64 {
	h := uint64(band) + 0x51_7c_c1_b7_27_22_0a_95
	for r := 0; r < x.rows; r++ {
		h = mix64(h ^ sig[band*x.rows+r])
	}
	return h
}

// AddOrFind checks the signature against the index; if a sufficiently
// similar document exists, its id is returned with dup=true and nothing is
// added. Otherwise the document is indexed.
//
//lintx:hotpath LSH probe+insert, run once per fetched document on the crawl's dedup path (ROADMAP item 2).
func (x *Index) AddOrFind(id string, sig Signature) (dupOf string, dup bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if need := len(x.ids); len(x.seenMark) < need {
		grown := make([]uint32, need*2+8)
		copy(grown, x.seenMark)
		x.seenMark = grown
	}
	x.seenEpoch++
	if x.seenEpoch == 0 {
		for i := range x.seenMark {
			x.seenMark[i] = 0
		}
		x.seenEpoch = 1
	}
	for b := 0; b < x.bands; b++ {
		h := x.bandHash(sig, b)
		for _, cand := range x.buckets[b][h] {
			if x.seenMark[cand] == x.seenEpoch {
				continue
			}
			x.seenMark[cand] = x.seenEpoch
			x.cCand.Inc()
			if Similarity(sig, x.sigs[cand]) >= x.Threshold {
				x.cDup.Inc()
				if x.lg.Enabled() {
					x.lg.Sample(id, 4).Debug("dedup.duplicate", int64(len(x.ids)),
						trace.String("id", id), trace.String("dup_of", x.ids[cand]))
				}
				return x.ids[cand], true
			}
		}
	}
	x.cIndexed.Inc()
	entry := len(x.ids)
	x.ids = append(x.ids, id)
	x.sigs = append(x.sigs, sig)
	for b := 0; b < x.bands; b++ {
		h := x.bandHash(sig, b)
		x.buckets[b][h] = append(x.buckets[b][h], entry)
	}
	return "", false
}
