// Package cluster simulates the paper's evaluation hardware: a 28-node
// cluster, 6-core Intel Xeon E5-2620 and 24 GB RAM per node (maximum DoP
// 168), 1 TB disk per node, HDFS with replication factor 3, and a 1 Gb
// interconnect (§4.2). The simulator is deterministic virtual-time
// modelling, not wall-clock measurement: it reproduces the *mechanisms*
// behind Figs 4 and 5 and the §4.2 war story —
//
//   - per-worker startup cost (dictionary loads ≈ 20 minutes) putting a
//     hard floor under scale-out curves;
//   - per-worker memory footprints capping the feasible DoP
//     (gene dictionaries need up to 20 GB; nodes have 24 GB → one worker
//     per node → DoP ≤ 28 for the entity flow);
//   - annotation-inflated intermediate data (1.6 TB derived from 1 TB raw)
//     over-stressing the 1 Gb network through HDFS replication;
//   - skew from heavy-tailed document lengths damping speedup.
//
// Cost constants are supplied by the caller, normally measured from the
// real operator implementations (see internal/core), then extrapolated.
package cluster

import (
	"fmt"
	"math"
)

// Config describes the simulated hardware.
type Config struct {
	// Nodes is the cluster size.
	Nodes int
	// CoresPerNode bounds workers per node by CPU.
	CoresPerNode int
	// RAMPerNodeGB bounds workers per node by memory.
	RAMPerNodeGB float64
	// NetworkGbps is the per-node link bandwidth.
	NetworkGbps float64
	// ReplicationFactor is the HDFS write amplification.
	ReplicationFactor int
}

// PaperCluster returns the §4.2 evaluation cluster.
func PaperCluster() Config {
	return Config{
		Nodes:             28,
		CoresPerNode:      6,
		RAMPerNodeGB:      24,
		NetworkGbps:       1,
		ReplicationFactor: 3,
	}
}

// MaxDoP returns the CPU-bound maximum degree of parallelism (168 for the
// paper cluster).
func (c Config) MaxDoP() int { return c.Nodes * c.CoresPerNode }

// FlowProfile is the cost signature of one data flow, normally derived
// from a dataflow.Plan via Profile().
type FlowProfile struct {
	// Name labels the flow in reports.
	Name string
	// PerKBms is virtual CPU milliseconds per KB of input per worker.
	PerKBms float64
	// StartupMs is per-worker initialization (dictionary builds).
	StartupMs float64
	// MemPerWorkerGB is the per-worker resident footprint.
	MemPerWorkerGB float64
	// OutputFactor is intermediate+output bytes per input byte.
	OutputFactor float64
	// Skew in [0, 1] dampens speedup for straggler-prone inputs
	// (heavy-tailed document lengths need load balancing, §4.3.1).
	Skew float64
	// LibraryConflict marks flows that cannot share a JVM/class-loader
	// with the rest of the pipeline (the OpenNLP 1.4-vs-1.5 clash, §4.2).
	LibraryConflict bool
}

// Result is one simulated run.
type Result struct {
	// Feasible reports whether the run can execute at all.
	Feasible bool
	// Reason explains infeasibility.
	Reason string
	// TotalSec is the simulated end-to-end time.
	TotalSec float64
	// ComputeSec / StartupSec / NetworkSec decompose it.
	ComputeSec, StartupSec, NetworkSec float64
	// WorkersPerNode and NodesUsed describe the placement.
	WorkersPerNode, NodesUsed int
	// NetworkBound marks runs dominated by the interconnect — the regime
	// that produced "unpredictable network delays which in turn led to
	// time-out induced crashes" (§4.2).
	NetworkBound bool
}

// WorkersPerNode returns how many workers of this flow fit on one node.
func (c Config) WorkersPerNode(fp FlowProfile) int {
	byCPU := c.CoresPerNode
	if fp.MemPerWorkerGB <= 0 {
		return byCPU
	}
	byMem := int(c.RAMPerNodeGB / fp.MemPerWorkerGB)
	if byMem < byCPU {
		return byMem
	}
	return byCPU
}

// FeasibleDoP returns the largest executable DoP for a flow (0 if the flow
// cannot run at all: per-worker memory exceeds node RAM).
func (c Config) FeasibleDoP(fp FlowProfile) int {
	wpn := c.WorkersPerNode(fp)
	return wpn * c.Nodes
}

// Simulate runs the virtual-time model for one flow over inputGB at the
// requested DoP.
func (c Config) Simulate(fp FlowProfile, inputGB float64, dop int) Result {
	if dop < 1 {
		dop = 1
	}
	wpn := c.WorkersPerNode(fp)
	if wpn == 0 {
		return Result{Feasible: false,
			Reason: fmt.Sprintf("per-worker memory %.1f GB exceeds node RAM %.1f GB",
				fp.MemPerWorkerGB, c.RAMPerNodeGB)}
	}
	maxDoP := wpn * c.Nodes
	if dop > maxDoP {
		return Result{Feasible: false,
			Reason: fmt.Sprintf("DoP %d exceeds memory-capped maximum %d (%d worker(s)/node)",
				dop, maxDoP, wpn)}
	}
	nodesUsed := (dop + wpn - 1) / wpn

	// Compute: per-worker share of the input, damped by skew-induced
	// stragglers (the slowest partition governs completion).
	perWorkerKB := inputGB * 1e6 / float64(dop)
	straggler := 1 + fp.Skew*math.Log(float64(dop)+1)
	compute := perWorkerKB * fp.PerKBms / 1000 * straggler
	startup := fp.StartupMs / 1000

	// Network: the input is read once and the annotated output written
	// with HDFS replication. HDFS spreads blocks cluster-wide, so the
	// aggregate bandwidth is that of all nodes, not just the workers'.
	totalGB := inputGB + inputGB*fp.OutputFactor*float64(c.ReplicationFactor)
	aggBandwidthGBs := float64(c.Nodes) * c.NetworkGbps / 8
	network := 0.0
	if aggBandwidthGBs > 0 {
		network = totalGB / aggBandwidthGBs
	}

	res := Result{
		Feasible:       true,
		ComputeSec:     compute,
		StartupSec:     startup,
		NetworkSec:     network,
		WorkersPerNode: wpn,
		NodesUsed:      nodesUsed,
	}
	// Compute and network overlap imperfectly; the longer one dominates
	// and the shorter contributes a congestion tail.
	if network > compute {
		res.NetworkBound = true
		res.TotalSec = startup + network + 0.25*compute
	} else {
		res.TotalSec = startup + compute + 0.25*network
	}
	return res
}

// SplitFlow partitions per-operator memory footprints into the fewest
// groups that each fit within limitGB, using first-fit-decreasing bin
// packing. This is the §4.2 war-story fix done by algorithm instead of by
// hand: "the scheduling component of Stratosphere does not consider memory
// consumption per worker node as optimization goal" — so the authors split
// the flow manually ("we split up the flow into different parts such that
// each part only required memory within the given limits"). Returns the
// groups as index lists into memGB, or an error if any single operator
// exceeds the limit.
func SplitFlow(memGB []float64, limitGB float64) ([][]int, error) {
	type item struct {
		idx int
		mem float64
	}
	items := make([]item, len(memGB))
	for i, m := range memGB {
		if m > limitGB {
			return nil, fmt.Errorf("cluster: operator %d needs %.1f GB, above the %.1f GB limit",
				i, m, limitGB)
		}
		items[i] = item{i, m}
	}
	// Sort decreasing by memory (insertion sort: operator counts are small).
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].mem > items[j-1].mem; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	var groups [][]int
	var loads []float64
	for _, it := range items {
		placed := false
		for g := range groups {
			if loads[g]+it.mem <= limitGB {
				groups[g] = append(groups[g], it.idx)
				loads[g] += it.mem
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{it.idx})
			loads = append(loads, it.mem)
		}
	}
	// Within each group, restore flow order.
	for _, g := range groups {
		for i := 1; i < len(g); i++ {
			for j := i; j > 0 && g[j] < g[j-1]; j-- {
				g[j], g[j-1] = g[j-1], g[j]
			}
		}
	}
	return groups, nil
}

// SweepPoint is one (DoP, result) pair of a scalability experiment.
type SweepPoint struct {
	DoP     int
	InputGB float64
	Result  Result
}

// ScaleOut fixes the input size and sweeps the DoP (Fig 5).
func (c Config) ScaleOut(fp FlowProfile, inputGB float64, dops []int) []SweepPoint {
	out := make([]SweepPoint, 0, len(dops))
	for _, d := range dops {
		out = append(out, SweepPoint{DoP: d, InputGB: inputGB, Result: c.Simulate(fp, inputGB, d)})
	}
	return out
}

// ScaleUp grows input and DoP together (Fig 4: "increased the number of
// available compute nodes synchronously to the amount of input data").
func (c Config) ScaleUp(fp FlowProfile, gbPerDoP float64, dops []int) []SweepPoint {
	out := make([]SweepPoint, 0, len(dops))
	for _, d := range dops {
		in := gbPerDoP * float64(d)
		out = append(out, SweepPoint{DoP: d, InputGB: in, Result: c.Simulate(fp, in, d)})
	}
	return out
}

// IdealScaleUp returns the flat reference line for a scale-up plot: the
// time the flow takes at the first point (perfect scale-up keeps it).
func IdealScaleUp(points []SweepPoint) float64 {
	for _, p := range points {
		if p.Result.Feasible {
			return p.Result.TotalSec
		}
	}
	return 0
}

// Speedup returns T(base)/T(d) for each point relative to the first
// feasible point of a scale-out sweep.
func Speedup(points []SweepPoint) map[int]float64 {
	out := map[int]float64{}
	var base float64
	for _, p := range points {
		if p.Result.Feasible {
			base = p.Result.TotalSec
			break
		}
	}
	if base == 0 {
		return out
	}
	for _, p := range points {
		if p.Result.Feasible && p.Result.TotalSec > 0 {
			out[p.DoP] = base / p.Result.TotalSec
		}
	}
	return out
}
