package cluster

import (
	"math"
	"testing"
)

// The two flows of §4.2, with paper-scale cost constants.
func linguisticFlow() FlowProfile {
	return FlowProfile{
		Name: "linguistic", PerKBms: 0.2, StartupMs: 2000,
		MemPerWorkerGB: 0.5, OutputFactor: 1.2, Skew: 0.01,
	}
}

func entityFlow() FlowProfile {
	return FlowProfile{
		Name: "entity", PerKBms: 1.4, StartupMs: 1200000, // 20-minute dictionary load
		MemPerWorkerGB: 20, OutputFactor: 0.4, Skew: 0.08,
	}
}

func TestPaperClusterShape(t *testing.T) {
	c := PaperCluster()
	if c.MaxDoP() != 168 {
		t.Errorf("MaxDoP = %d, want 168", c.MaxDoP())
	}
}

func TestMemoryCapsEntityDoP(t *testing.T) {
	// §4.2: "we could not run this flow with DoPs larger than 28 due to the
	// very high memory requirements of the dictionary-based taggers".
	c := PaperCluster()
	if got := c.WorkersPerNode(entityFlow()); got != 1 {
		t.Errorf("entity workers/node = %d, want 1", got)
	}
	if got := c.FeasibleDoP(entityFlow()); got != 28 {
		t.Errorf("entity max DoP = %d, want 28", got)
	}
	if got := c.FeasibleDoP(linguisticFlow()); got != 168 {
		t.Errorf("linguistic max DoP = %d, want 168", got)
	}
	res := c.Simulate(entityFlow(), 20, 56)
	if res.Feasible {
		t.Error("DoP 56 for the entity flow must be infeasible")
	}
}

func TestWarStoryCombinedFlowInfeasible(t *testing.T) {
	// §4.2: "The complete data flow ... needs roughly 60 GB main memory per
	// worker thread, which clearly exceeds the amount of RAM available on
	// each node."
	c := PaperCluster()
	combined := FlowProfile{Name: "consolidated", PerKBms: 1.6,
		StartupMs: 1300000, MemPerWorkerGB: 60, OutputFactor: 1.6}
	res := c.Simulate(combined, 1000, 28)
	if res.Feasible {
		t.Fatal("60 GB/worker flow must be infeasible on 24 GB nodes")
	}
	if res.Reason == "" {
		t.Error("no infeasibility reason")
	}
	// A 1 TB RAM single server (the paper's workaround) can run it.
	big := Config{Nodes: 1, CoresPerNode: 40, RAMPerNodeGB: 1024,
		NetworkGbps: 10, ReplicationFactor: 1}
	if got := big.WorkersPerNode(combined); got < 17 {
		t.Errorf("1TB server workers = %d, want >= 17 (paper used 40 threads for gene NER alone)", got)
	}
}

func TestScaleOutEntityPlateaus(t *testing.T) {
	// Fig 5: entity extraction scales until ~16, then startup dominates.
	c := PaperCluster()
	pts := c.ScaleOut(entityFlow(), 20, []int{4, 8, 12, 16, 20, 24, 28})
	byDoP := map[int]Result{}
	for _, p := range pts {
		if !p.Result.Feasible {
			t.Fatalf("DoP %d infeasible", p.DoP)
		}
		byDoP[p.DoP] = p.Result
	}
	// Times must decrease monotonically...
	if !(byDoP[4].TotalSec > byDoP[8].TotalSec && byDoP[8].TotalSec > byDoP[16].TotalSec) {
		t.Errorf("no speedup: %v", byDoP)
	}
	// ...but the 16→28 improvement must be marginal compared to 4→16
	// (the startup floor).
	gainEarly := byDoP[4].TotalSec - byDoP[16].TotalSec
	gainLate := byDoP[16].TotalSec - byDoP[28].TotalSec
	if gainLate > gainEarly/3 {
		t.Errorf("no plateau: early gain %.0fs, late gain %.0fs", gainEarly, gainLate)
	}
	// §4.2: "a decrease in execution time of up to 72%" until DoP 16.
	drop := 1 - byDoP[16].TotalSec/byDoP[4].TotalSec
	if drop < 0.5 || drop > 0.9 {
		t.Errorf("entity 4→16 drop = %.2f, want ~0.72", drop)
	}
	// The startup floor is a hard lower bound.
	for d, r := range byDoP {
		if r.TotalSec < entityFlow().StartupMs/1000 {
			t.Errorf("DoP %d below the startup floor", d)
		}
	}
}

func TestScaleOutLinguisticScalesFar(t *testing.T) {
	// Fig 5: the linguistic flow scales out "over the entire range of DoPs
	// without any problems", with a decrease of up to 95%.
	c := PaperCluster()
	pts := c.ScaleOut(linguisticFlow(), 20, []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 56, 84, 140, 156})
	first := pts[0].Result.TotalSec
	last := pts[len(pts)-1].Result
	if !last.Feasible {
		t.Fatal("DoP 156 infeasible for linguistic flow")
	}
	drop := 1 - last.TotalSec/first
	if drop < 0.9 {
		t.Errorf("linguistic drop = %.3f, want >= 0.9", drop)
	}
	// Monotone non-increasing within tolerance.
	prev := math.Inf(1)
	for _, p := range pts {
		if p.Result.TotalSec > prev*1.05 {
			t.Errorf("time increased at DoP %d", p.DoP)
		}
		prev = p.Result.TotalSec
	}
}

func TestScaleUpShapes(t *testing.T) {
	// Fig 4: linguistic ≈ ideal (flat), entity sub-linear (time grows).
	c := PaperCluster()
	dops := []int{1, 2, 4, 8, 12, 16, 20, 24, 28}
	ling := c.ScaleUp(linguisticFlow(), 1, dops)
	ent := c.ScaleUp(entityFlow(), 1, dops)

	lingFirst, lingLast := ling[0].Result.TotalSec, ling[len(ling)-1].Result.TotalSec
	if lingLast > lingFirst*1.6 {
		t.Errorf("linguistic scale-up far from ideal: %.0fs -> %.0fs", lingFirst, lingLast)
	}
	entFirst, entLast := ent[0].Result.TotalSec, ent[len(ent)-1].Result.TotalSec
	if entLast <= entFirst*1.05 {
		t.Errorf("entity scale-up suspiciously ideal: %.0fs -> %.0fs", entFirst, entLast)
	}
	// Entity must degrade relatively more than linguistic.
	if entLast/entFirst <= lingLast/lingFirst {
		t.Errorf("entity (%.2fx) did not degrade more than linguistic (%.2fx)",
			entLast/entFirst, lingLast/lingFirst)
	}
	if ideal := IdealScaleUp(ling); ideal != lingFirst {
		t.Errorf("IdealScaleUp = %v, want %v", ideal, lingFirst)
	}
}

func TestNetworkBoundAtFullCrawlScale(t *testing.T) {
	// §4.2 war story: at 1 TB input with 1.6x annotation inflation and
	// 3x replication, the 1 Gb network becomes the bottleneck.
	c := PaperCluster()
	heavy := linguisticFlow()
	heavy.OutputFactor = 1.6
	res := c.Simulate(heavy, 1000, 168)
	if !res.Feasible {
		t.Fatal(res.Reason)
	}
	if !res.NetworkBound {
		t.Errorf("1 TB run not network bound: compute=%.0fs network=%.0fs",
			res.ComputeSec, res.NetworkSec)
	}
	// Chunking the input (50 GB pieces, the paper's workaround) keeps each
	// piece's network time proportionally smaller but the same total; the
	// point of chunking is failure isolation, not throughput. Verify the
	// pieces are individually less network-stressed in absolute terms.
	chunk := c.Simulate(heavy, 50, 168)
	if chunk.NetworkSec >= res.NetworkSec {
		t.Error("chunked run not lighter on the network")
	}
}

func TestSpeedupHelper(t *testing.T) {
	c := PaperCluster()
	pts := c.ScaleOut(linguisticFlow(), 20, []int{1, 2, 4})
	sp := Speedup(pts)
	if sp[1] != 1 {
		t.Errorf("base speedup = %v", sp[1])
	}
	if sp[4] <= sp[2] || sp[2] <= sp[1] {
		t.Errorf("speedup not increasing: %v", sp)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	c := PaperCluster()
	a := c.Simulate(entityFlow(), 20, 8)
	b := c.Simulate(entityFlow(), 20, 8)
	if a != b {
		t.Fatal("simulation not deterministic")
	}
}

func TestZeroDoPClamped(t *testing.T) {
	c := PaperCluster()
	res := c.Simulate(linguisticFlow(), 1, 0)
	if !res.Feasible {
		t.Fatal("DoP 0 should clamp to 1")
	}
}

func TestSplitFlowBinPacking(t *testing.T) {
	// The §4.2 manual split, automated: gene 20 + disease 8 + drug 6 +
	// pos 0.25 + misc 0.5 GB against 24 GB nodes.
	mems := []float64{20, 8, 6, 0.25, 0.5}
	groups, err := SplitFlow(mems, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
	// Every group fits; every op appears exactly once.
	seen := map[int]bool{}
	for _, g := range groups {
		var load float64
		for _, idx := range g {
			if seen[idx] {
				t.Fatalf("op %d in two groups", idx)
			}
			seen[idx] = true
			load += mems[idx]
		}
		if load > 24 {
			t.Fatalf("group %v overloaded: %.1f GB", g, load)
		}
	}
	if len(seen) != len(mems) {
		t.Fatalf("ops covered: %d of %d", len(seen), len(mems))
	}
	// Group members keep flow order.
	for _, g := range groups {
		for i := 1; i < len(g); i++ {
			if g[i] < g[i-1] {
				t.Fatalf("group %v not in flow order", g)
			}
		}
	}
}

func TestSplitFlowSingleOversize(t *testing.T) {
	if _, err := SplitFlow([]float64{60}, 24); err == nil {
		t.Fatal("60 GB operator accepted on 24 GB nodes")
	}
}

func TestSplitFlowAllFitOneGroup(t *testing.T) {
	groups, err := SplitFlow([]float64{1, 2, 3}, 24)
	if err != nil || len(groups) != 1 {
		t.Fatalf("groups = %v err = %v", groups, err)
	}
}

func TestSplitFlowEmpty(t *testing.T) {
	groups, err := SplitFlow(nil, 24)
	if err != nil || len(groups) != 0 {
		t.Fatalf("empty split: %v %v", groups, err)
	}
}
