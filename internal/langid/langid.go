// Package langid implements character n-gram language identification, the
// "n-gram based language filter" of the paper's crawler (§2.1): pages not
// written in English are discarded because the downstream IE tools are
// language-sensitive. The method is Cavnar-Trenkle rank-order profiles over
// character trigrams, trained here on built-in seed text per language.
package langid

import (
	"sort"
	"strings"
)

// profileSize is the number of top n-grams kept per language profile.
const profileSize = 300

// Identifier scores text against a set of language profiles.
type Identifier struct {
	profiles map[string]map[string]int // lang -> ngram -> rank
}

// builtin seed text per language; a few hundred characters of common
// function-word-rich prose is enough for trigram profiles to separate
// European languages reliably.
var builtinSeeds = map[string]string{
	"en": `the of and to in is was for that it with as his on be at by this had
not are but from or have an they which one you were all her she there would
their we him been has when who will no more if out so up said what its about
than into them can only other time new some could these two may first then do`,
	"de": `der die und in den von zu das mit sich des auf für ist im dem nicht
ein eine als auch es an werden aus er hat dass sie nach wird bei einer um am
sind noch wie einem über einen so zum war haben nur oder aber vor zur bis mehr
durch man sein wurde sei`,
	"fr": `de la le et les des en un du une que est pour qui dans a par plus
pas au sur ne se ce il sont la mais comme ou si leur y dont aux avec cette ces
ses être fait elle deux même nous tout on ans entre sans autres après`,
	"es": `de la que el en y a los se del las un por con no una su para es al
lo como más pero sus le ya o este sí porque esta entre cuando muy sin sobre
también me hasta hay donde quien desde todo nos durante todos uno les`,
	"nl": `de het een en van in is dat op te zijn met voor niet aan er om ook
als dan maar bij of uit nog worden door naar heeft hij ze wordt tot je mijn
deze over zo kan geen hem dit onder tegen al waren veel meer doen moet`,
}

// New builds an identifier with the built-in language profiles.
func New() *Identifier {
	id := &Identifier{profiles: map[string]map[string]int{}}
	for lang, seed := range builtinSeeds {
		id.Train(lang, seed)
	}
	return id
}

// Train adds or replaces the profile for a language from sample text.
func (id *Identifier) Train(lang, sample string) {
	id.profiles[lang] = rankProfile(sample)
}

// Languages returns the known language codes, sorted.
func (id *Identifier) Languages() []string {
	out := make([]string, 0, len(id.profiles))
	for l := range id.profiles {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// rankProfile computes the rank-ordered trigram profile of text.
func rankProfile(text string) map[string]int {
	counts := ngramCounts(text)
	type kv struct {
		g string
		n int
	}
	all := make([]kv, 0, len(counts))
	for g, n := range counts {
		all = append(all, kv{g, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].g < all[j].g
	})
	if len(all) > profileSize {
		all = all[:profileSize]
	}
	ranks := make(map[string]int, len(all))
	for i, e := range all {
		ranks[e.g] = i
	}
	return ranks
}

func ngramCounts(text string) map[string]int {
	norm := normalize(text)
	counts := map[string]int{}
	for i := 0; i+3 <= len(norm); i++ {
		counts[norm[i:i+3]]++
	}
	return counts
}

// normalize lower-cases and collapses non-letters to single spaces so that
// profiles capture letter sequences, not punctuation.
func normalize(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	prevSpace := true
	for _, r := range text {
		switch {
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + 32)
			prevSpace = false
		case r >= 'a' && r <= 'z' || r > 127:
			b.WriteRune(r)
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return b.String()
}

// Identify returns the best-matching language and a confidence in (0, 1].
// Short or empty inputs return ("", 0): the paper's crawler separately
// drops too-short pages, so no guess is better than a wild one.
func (id *Identifier) Identify(text string) (lang string, confidence float64) {
	counts := ngramCounts(text)
	if len(counts) < 10 {
		return "", 0
	}
	doc := rankProfile(text)
	best, second := "", ""
	bestD, secondD := int(^uint(0)>>1), int(^uint(0)>>1)
	for l, prof := range id.profiles {
		d := outOfPlace(doc, prof)
		if d < bestD {
			second, secondD = best, bestD
			best, bestD = l, d
		} else if d < secondD {
			second, secondD = l, d
		}
	}
	_ = second
	if best == "" {
		return "", 0
	}
	// Confidence: relative margin between the best and second-best distance.
	if secondD == 0 {
		return best, 0
	}
	margin := float64(secondD-bestD) / float64(secondD)
	return best, 0.5 + margin/2
}

// IsEnglish is the crawler's filter predicate.
func (id *Identifier) IsEnglish(text string) bool {
	lang, conf := id.Identify(text)
	return lang == "en" && conf > 0.5
}

// outOfPlace is the Cavnar-Trenkle rank displacement distance.
func outOfPlace(doc, prof map[string]int) int {
	d := 0
	for g, r := range doc {
		pr, ok := prof[g]
		if !ok {
			d += profileSize
			continue
		}
		if pr > r {
			d += pr - r
		} else {
			d += r - pr
		}
	}
	return d
}
