package langid

import "testing"

var samples = map[string]string{
	"en": `The patients were treated with the new drug and the results showed
a significant reduction in tumor size across all groups that received the
higher dose during the second phase of the clinical trial.`,
	"de": `Die Patienten wurden mit dem neuen Medikament behandelt und die
Ergebnisse zeigten eine deutliche Verringerung der Tumorgröße in allen
Gruppen die während der zweiten Phase der Studie die höhere Dosis erhielten.`,
	"fr": `Les patients ont été traités avec le nouveau médicament et les
résultats ont montré une réduction significative de la taille des tumeurs
dans tous les groupes qui ont reçu la dose la plus élevée pendant la phase.`,
	"es": `Los pacientes fueron tratados con el nuevo medicamento y los
resultados mostraron una reducción significativa del tamaño del tumor en
todos los grupos que recibieron la dosis más alta durante la segunda fase.`,
}

func TestIdentifyKnownLanguages(t *testing.T) {
	id := New()
	for want, text := range samples {
		got, conf := id.Identify(text)
		if got != want {
			t.Errorf("Identify(%s sample) = %q (conf %.2f), want %q", want, got, conf, want)
		}
		if conf <= 0.5 {
			t.Errorf("%s: confidence %.2f too low", want, conf)
		}
	}
}

func TestIsEnglish(t *testing.T) {
	id := New()
	if !id.IsEnglish(samples["en"]) {
		t.Error("English sample rejected")
	}
	if id.IsEnglish(samples["de"]) {
		t.Error("German sample accepted as English")
	}
}

func TestShortInputReturnsUnknown(t *testing.T) {
	id := New()
	if lang, conf := id.Identify("hi"); lang != "" || conf != 0 {
		t.Errorf("short input = %q/%.2f, want empty", lang, conf)
	}
	if lang, _ := id.Identify(""); lang != "" {
		t.Errorf("empty input = %q", lang)
	}
}

func TestNonLetterInputReturnsUnknown(t *testing.T) {
	id := New()
	if lang, _ := id.Identify("12345 67890 !!! ??? ### 12345 67890"); lang != "" {
		t.Errorf("numeric input identified as %q", lang)
	}
}

func TestTrainNewLanguage(t *testing.T) {
	id := New()
	id.Train("xx", "zzq zzq zzq wqx wqx zzq qqz zzq wqx qqz zzq wqx zzq qqz")
	got, _ := id.Identify("zzq wqx qqz zzq zzq wqx zzq qqz wqx zzq zzq wqx")
	if got != "xx" {
		t.Errorf("custom language = %q, want xx", got)
	}
}

func TestLanguagesSorted(t *testing.T) {
	langs := New().Languages()
	if len(langs) < 5 {
		t.Fatalf("only %d built-in languages", len(langs))
	}
	for i := 1; i < len(langs); i++ {
		if langs[i-1] >= langs[i] {
			t.Fatalf("languages not sorted: %v", langs)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := normalize("Hello, WORLD!  42"); got != "hello world" && got != "hello world " {
		t.Errorf("normalize = %q", got)
	}
}

func TestMixedTextMajorityWins(t *testing.T) {
	id := New()
	mixed := samples["en"] + " " + samples["en"] + " Bonjour le monde."
	if got, _ := id.Identify(mixed); got != "en" {
		t.Errorf("mostly-English mixed text = %q", got)
	}
}

func BenchmarkIdentify(b *testing.B) {
	id := New()
	b.SetBytes(int64(len(samples["en"])))
	for i := 0; i < b.N; i++ {
		_, _ = id.Identify(samples["en"])
	}
}
