// Package stats provides the statistical machinery of §4.3: the
// Mann-Whitney-Wilcoxon rank test used to assess differences between
// corpora ("This test produces a P-value, which estimates the probability
// that the observed differences are due to random effects"), the
// Jensen-Shannon divergence used to compare entity-name distributions
// (§4.3.2), and descriptive statistics / histograms for the Fig 6-7
// distribution plots.
package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median, Q1, Q3 float64
}

// Summarize computes descriptive statistics. An empty sample returns the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	v := sumSq/n - s.Mean*s.Mean
	if v > 0 {
		s.Std = math.Sqrt(v)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.Q1 = quantile(sorted, 0.25)
	s.Q3 = quantile(sorted, 0.75)
	return s
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MannWhitney performs the two-sided Mann-Whitney-Wilcoxon test with the
// normal approximation (appropriate for the corpus-scale samples of §4.3)
// including tie correction. It returns the U statistic and the P-value.
func MannWhitney(a, b []float64) (u, p float64) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks; collect tie groups for the variance correction.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1
	u = math.Min(u1, u2)

	mean := fn1 * fn2 / 2
	nTot := fn1 + fn2
	varU := fn1 * fn2 / 12 * ((nTot + 1) - tieTerm/(nTot*(nTot-1)))
	if varU <= 0 {
		return u, 1
	}
	// Continuity correction.
	z := (math.Abs(u-mean) - 0.5) / math.Sqrt(varU)
	if z < 0 {
		z = 0
	}
	p = 2 * (1 - normCDF(z))
	if p > 1 {
		p = 1
	}
	return u, p
}

// normCDF is the standard normal CDF via erfc.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Distribution is a discrete probability distribution over string keys.
type Distribution map[string]float64

// NewDistribution normalizes counts into a distribution. Nil is returned
// for an empty or all-zero input.
func NewDistribution(counts map[string]int) Distribution {
	var total float64
	for _, c := range counts {
		if c > 0 {
			total += float64(c)
		}
	}
	if total == 0 {
		return nil
	}
	d := make(Distribution, len(counts))
	for k, c := range counts {
		if c > 0 {
			d[k] = float64(c) / total
		}
	}
	return d
}

// KL returns the Kullback-Leibler divergence D(p || q) in bits, treating
// missing q-mass as absolute (callers should use JSD for safety).
func KL(p, q Distribution) float64 {
	var d float64
	for k, pk := range p {
		if pk <= 0 {
			continue
		}
		qk := q[k]
		if qk <= 0 {
			return math.Inf(1)
		}
		d += pk * math.Log2(pk/qk)
	}
	return d
}

// JSD returns the Jensen-Shannon divergence between two distributions in
// bits, bounded in [0, 1] (§4.3.2: "JSD is a symmetric measure and results
// in values bounded ... 0 ≤ JSD ≤ 1").
func JSD(p, q Distribution) float64 {
	if p == nil && q == nil {
		return 0
	}
	if p == nil || q == nil {
		return 1
	}
	m := Distribution{}
	for k, v := range p {
		m[k] += v / 2
	}
	for k, v := range q {
		m[k] += v / 2
	}
	return KL(p, m)/2 + KL(q, m)/2
}

// Histogram is a fixed-bin histogram over float64 samples.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]).
	Edges  []float64
	Counts []int
	// Under/Over count samples outside the range.
	Under, Over int
}

// NewHistogram builds an empty histogram with nbins equal-width bins.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		return &Histogram{Edges: []float64{lo, hi}, Counts: make([]int, 1)}
	}
	h := &Histogram{Edges: make([]float64, nbins+1), Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for i := 0; i <= nbins; i++ {
		h.Edges[i] = lo + float64(i)*w
	}
	return h
}

// NewLogHistogram builds log-spaced bins, appropriate for the heavy-tailed
// length distributions of Fig 6a.
func NewLogHistogram(lo, hi float64, nbins int) *Histogram {
	if lo <= 0 {
		lo = 1
	}
	h := &Histogram{Edges: make([]float64, nbins+1), Counts: make([]int, nbins)}
	ratio := math.Pow(hi/lo, 1/float64(nbins))
	e := lo
	for i := 0; i <= nbins; i++ {
		h.Edges[i] = e
		e *= ratio
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Over++
		return
	}
	// Binary search for the bin.
	lo, hi := 0, len(h.Counts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if x >= h.Edges[mid] {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	h.Counts[lo]++
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
