package stats

import (
	"math"
	"testing"
	"testing/quick"

	"webtextie/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	_, p := MannWhitney(a, a)
	if p < 0.9 {
		t.Errorf("identical samples p = %v, want ~1", p)
	}
}

func TestMannWhitneySeparatedSamples(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = r.Norm(0, 1)
		b[i] = r.Norm(2, 1)
	}
	_, p := MannWhitney(a, b)
	if p > 0.001 {
		t.Errorf("separated samples p = %v, want < 0.001", p)
	}
}

func TestMannWhitneySameDistribution(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = r.Norm(5, 2)
		b[i] = r.Norm(5, 2)
	}
	_, p := MannWhitney(a, b)
	if p < 0.01 {
		t.Errorf("same-distribution p = %v, suspiciously small", p)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	a := []float64{1, 1, 1, 2, 2, 3}
	b := []float64{1, 2, 2, 3, 3, 3}
	u, p := MannWhitney(a, b)
	if math.IsNaN(u) || math.IsNaN(p) || p < 0 || p > 1 {
		t.Errorf("ties: u=%v p=%v", u, p)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, p := MannWhitney(nil, []float64{1}); p != 1 {
		t.Errorf("empty sample p = %v", p)
	}
}

func TestMannWhitneySymmetryProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]float64, 20+r.Intn(30))
		b := make([]float64, 20+r.Intn(30))
		for i := range a {
			a[i] = r.Norm(0, 1)
		}
		for i := range b {
			b[i] = r.Norm(0.5, 1)
		}
		_, p1 := MannWhitney(a, b)
		_, p2 := MannWhitney(b, a)
		return math.Abs(p1-p2) < 1e-9
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewDistribution(t *testing.T) {
	d := NewDistribution(map[string]int{"a": 3, "b": 1, "z": 0})
	if math.Abs(d["a"]-0.75) > 1e-9 || math.Abs(d["b"]-0.25) > 1e-9 {
		t.Errorf("distribution = %v", d)
	}
	if _, ok := d["z"]; ok {
		t.Error("zero-count key kept")
	}
	if NewDistribution(nil) != nil {
		t.Error("empty counts should yield nil")
	}
}

func TestJSDBounds(t *testing.T) {
	p := NewDistribution(map[string]int{"a": 1, "b": 1})
	if got := JSD(p, p); got > 1e-12 {
		t.Errorf("JSD(p,p) = %v", got)
	}
	q := NewDistribution(map[string]int{"c": 1, "d": 1})
	if got := JSD(p, q); math.Abs(got-1) > 1e-9 {
		t.Errorf("JSD(disjoint) = %v, want 1", got)
	}
}

func TestJSDSymmetryProperty(t *testing.T) {
	err := quick.Check(func(a, b, c, d uint8) bool {
		p := NewDistribution(map[string]int{"x": int(a) + 1, "y": int(b) + 1})
		q := NewDistribution(map[string]int{"x": int(c) + 1, "z": int(d) + 1})
		j1, j2 := JSD(p, q), JSD(q, p)
		return math.Abs(j1-j2) < 1e-12 && j1 >= 0 && j1 <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestJSDNil(t *testing.T) {
	p := NewDistribution(map[string]int{"a": 1})
	if JSD(nil, nil) != 0 || JSD(p, nil) != 1 || JSD(nil, p) != 1 {
		t.Error("nil distribution handling")
	}
}

func TestJSDSimilarCloserThanDissimilar(t *testing.T) {
	// The §4.3.2 use: relevant-vs-Medline must be closer than
	// relevant-vs-irrelevant when the supports overlap accordingly.
	rel := NewDistribution(map[string]int{"brca": 10, "tp53": 8, "egfr": 5, "webonly": 2})
	med := NewDistribution(map[string]int{"brca": 12, "tp53": 6, "egfr": 4, "medonly": 1})
	irr := NewDistribution(map[string]int{"faq": 10, "usa": 5, "brca": 1})
	if JSD(rel, med) >= JSD(rel, irr) {
		t.Errorf("JSD(rel,med)=%v >= JSD(rel,irr)=%v", JSD(rel, med), JSD(rel, irr))
	}
}

func TestKLInfinityOnMissingSupport(t *testing.T) {
	p := NewDistribution(map[string]int{"a": 1})
	q := NewDistribution(map[string]int{"b": 1})
	if !math.IsInf(KL(p, q), 1) {
		t.Error("KL with missing support should be +Inf")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 10000, 4)
	for _, x := range []float64{1, 9, 99, 999, 9999} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d (counts %v under %d over %d)", h.Total(), h.Counts, h.Under, h.Over)
	}
	// Each decade should land in its own bin.
	for i, c := range h.Counts {
		if i == 0 {
			if c != 2 { // 1 and 9
				t.Errorf("bin0 = %d", c)
			}
		} else if c != 1 {
			t.Errorf("bin%d = %d", i, c)
		}
	}
}

func TestHistogramAddProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHistogram(0, 100, 10)
		n := 200
		for i := 0; i < n; i++ {
			h.Add(r.Float64() * 120)
		}
		return h.Total()+h.Under+h.Over == n
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
