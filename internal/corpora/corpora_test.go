package corpora

import (
	"testing"

	"webtextie/internal/textgen"
)

// smallConfig returns a fast test-scale build.
func smallConfig() BuildConfig {
	cfg := DefaultBuildConfig()
	cfg.ScaleFactor = 100000 // Medline ~216 docs, PMC minimum 10
	cfg.SeedTermScale = 100
	cfg.Web.NumHosts = 80
	cfg.Crawl.MaxPages = 500
	cfg.Lexicon = textgen.LexiconSizes{Genes: 400, Drugs: 150, Diseases: 150}
	cfg.TrainDocsPerClass = 200
	return cfg
}

var cachedSet *Set

func testSet(t testing.TB) *Set {
	t.Helper()
	if cachedSet == nil {
		cachedSet = Build(smallConfig())
	}
	return cachedSet
}

func TestBuildProducesFourCorpora(t *testing.T) {
	s := testSet(t)
	for _, kind := range textgen.CorpusKinds {
		c := s.Corpus(kind)
		if c == nil || c.NumDocs() == 0 {
			t.Fatalf("corpus %v empty", kind)
		}
		for _, d := range c.Docs[:min(10, len(c.Docs))] {
			if d.ID == "" || d.Text == "" || d.RawBytes <= 0 {
				t.Fatalf("%v: bad document %+v", kind, d.ID)
			}
		}
	}
}

func TestScaledCounts(t *testing.T) {
	s := testSet(t)
	med := s.Corpus(textgen.Medline).NumDocs()
	want := PaperDocCount(textgen.Medline) / smallConfig().ScaleFactor
	if med != want {
		t.Errorf("Medline docs = %d, want %d", med, want)
	}
	if s.Corpus(textgen.PMC).NumDocs() < 10 {
		t.Error("PMC below minimum")
	}
}

func TestWebCorporaComeFromCrawl(t *testing.T) {
	s := testSet(t)
	if s.Crawl == nil {
		t.Fatal("no crawl result")
	}
	if s.Corpus(textgen.Relevant).NumDocs() != s.Crawl.Stats.Relevant {
		t.Error("relevant corpus size != crawl stats")
	}
	if s.Corpus(textgen.Irrelevant).NumDocs() != s.Crawl.Stats.Irrelevant {
		t.Error("irrelevant corpus size != crawl stats")
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	s := testSet(t)
	rows := s.Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKind := map[textgen.CorpusKind]Table3Row{}
	for _, r := range rows {
		byKind[r.Corpus] = r
		if r.PaperDocs == 0 || r.PaperSizeGB == 0 {
			t.Errorf("missing paper values in %+v", r)
		}
	}
	// Shape: mean net-text chars PMC > Relevant > Medline (Fig 6a), and
	// web docs carry markup overhead (raw > text).
	if !(byKind[textgen.PMC].MeanChars > byKind[textgen.Relevant].MeanChars) {
		t.Errorf("PMC mean %.0f <= Relevant %.0f",
			byKind[textgen.PMC].MeanChars, byKind[textgen.Relevant].MeanChars)
	}
	if !(byKind[textgen.Relevant].MeanChars > byKind[textgen.Medline].MeanChars) {
		t.Errorf("Relevant mean %.0f <= Medline %.0f",
			byKind[textgen.Relevant].MeanChars, byKind[textgen.Medline].MeanChars)
	}
	rel := s.Corpus(textgen.Relevant)
	if rel.MeanRawBytes() <= rel.MeanChars() {
		t.Error("web raw bytes should exceed net text length")
	}
	// Paper shape: irrelevant raw pages smaller than relevant on average.
	irr := s.Corpus(textgen.Irrelevant)
	if irr.MeanRawBytes() >= rel.MeanRawBytes() {
		t.Errorf("irrelevant mean raw %.0f >= relevant %.0f",
			irr.MeanRawBytes(), rel.MeanRawBytes())
	}
}

func TestChunks(t *testing.T) {
	s := testSet(t)
	c := s.Corpus(textgen.Medline)
	chunks := c.Chunks(10000)
	if len(chunks) < 2 {
		t.Fatalf("chunking produced %d chunks", len(chunks))
	}
	total := 0
	for i, ch := range chunks {
		var size int64
		for _, d := range ch {
			size += int64(d.RawBytes)
			total++
		}
		if size > 10000 && len(ch) > 1 {
			t.Errorf("chunk %d oversize: %d bytes, %d docs", i, size, len(ch))
		}
	}
	if total != c.NumDocs() {
		t.Errorf("chunks cover %d docs of %d", total, c.NumDocs())
	}
}

func TestChunksSingleOversizeDoc(t *testing.T) {
	c := &Corpus{Docs: []Document{{ID: "big", RawBytes: 999999, Text: "x"}}}
	chunks := c.Chunks(100)
	if len(chunks) != 1 || len(chunks[0]) != 1 {
		t.Fatalf("oversize doc chunking: %v", chunks)
	}
}

func TestTrainClassifierQuality(t *testing.T) {
	s := testSet(t)
	// Spot-check: the set's classifier separates fresh docs.
	gen := s.Generator
	r := gen.Lex // unused; keep structure simple
	_ = r
	if s.Classifier == nil || !s.Classifier.Trained() {
		t.Fatal("classifier untrained")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(smallConfig())
	b := Build(smallConfig())
	for _, kind := range textgen.CorpusKinds {
		ca, cb := a.Corpus(kind), b.Corpus(kind)
		if ca.NumDocs() != cb.NumDocs() {
			t.Fatalf("%v: doc counts differ (%d vs %d)", kind, ca.NumDocs(), cb.NumDocs())
		}
		if ca.NumDocs() > 0 && ca.Docs[0].Text != cb.Docs[0].Text {
			t.Fatalf("%v: first doc differs", kind)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
