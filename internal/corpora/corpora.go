// Package corpora constructs the four text collections of §4.3 (Table 3):
//
//   - Relevant:   crawled pages classified as biomedical (373 GB, 4.2 M docs)
//   - Irrelevant: crawled pages classified as off-domain (607 GB, 17.7 M docs)
//   - Medline:    21.7 M scientific abstracts (21 GB)
//   - PMC:        250,440 open-access full texts (19 GB)
//
// The web corpora come out of an actual focused crawl of the synthetic web;
// Medline and PMC are generated directly from their linguistic profiles.
// Everything is scaled by a configurable factor (default 1:10,000 by
// document count) and Table 3 reports both measured and rescaled numbers.
//
// The package also provides the chunked document store used by the §4.2
// war-story workaround ("we splitted the crawled data into chunks of 50 GB
// and executed the different flows separately on these chunks").
package corpora

import (
	"fmt"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// Document is one corpus document ready for analysis.
type Document struct {
	// ID is a corpus-unique identifier (URL for web documents).
	ID string
	// Text is the analysis text (extracted net text for web pages).
	Text string
	// Gold carries generation ground truth (nil for noise pages).
	Gold *textgen.Doc
	// RawBytes is the size of the original artifact (HTML page size for
	// web documents, text size otherwise) — the unit of Table 3's GB.
	RawBytes int
	// GoldRelevant is the true topical label (web documents only).
	GoldRelevant bool
}

// Corpus is one of the four collections.
type Corpus struct {
	Kind textgen.CorpusKind
	Docs []Document
}

// NumDocs returns the document count.
func (c *Corpus) NumDocs() int { return len(c.Docs) }

// RawBytes returns the total raw size.
func (c *Corpus) RawBytes() int64 {
	var t int64
	for _, d := range c.Docs {
		t += int64(d.RawBytes)
	}
	return t
}

// MeanChars returns the mean analysis-text length (Table 3's "mean no. of
// chars" for the generated corpora; for web corpora the paper reports raw
// page bytes, which MeanRawBytes provides).
func (c *Corpus) MeanChars() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	var t int64
	for _, d := range c.Docs {
		t += int64(len(d.Text))
	}
	return float64(t) / float64(len(c.Docs))
}

// MeanRawBytes returns the mean raw artifact size.
func (c *Corpus) MeanRawBytes() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	return float64(c.RawBytes()) / float64(len(c.Docs))
}

// Chunks splits the corpus into pieces of at most chunkBytes raw bytes
// (the 50 GB war-story workaround, scaled).
func (c *Corpus) Chunks(chunkBytes int64) [][]Document {
	var out [][]Document
	var cur []Document
	var size int64
	for _, d := range c.Docs {
		if size > 0 && size+int64(d.RawBytes) > chunkBytes {
			out = append(out, cur)
			cur = nil
			size = 0
		}
		cur = append(cur, d)
		size += int64(d.RawBytes)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// BuildConfig controls corpus construction.
type BuildConfig struct {
	// Seed drives all generation.
	Seed uint64
	// ScaleFactor divides the paper's document counts (default 10,000).
	ScaleFactor int
	// Web configures the synthetic web for the crawl-derived corpora.
	Web synthweb.Config
	// Crawl configures the focused crawler.
	Crawl crawler.Config
	// SeedTermScale divides Table 1's term-catalogue sizes (default 10).
	SeedTermScale int
	// Lexicon sizes the entity dictionaries.
	Lexicon textgen.LexiconSizes
	// DictCoverage is the in-dictionary fraction of lexicon entries.
	DictCoverage float64
	// TrainDocsPerClass sizes the crawler classifier's training set.
	TrainDocsPerClass int
	// Log, when set, receives the event log of corpus construction: the
	// seed-generation run and the focused crawl both report into it.
	Log *evlog.Sink
}

// DefaultBuildConfig returns the standard 1:10,000 setup.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		Seed:              1,
		ScaleFactor:       10000,
		Web:               synthweb.DefaultConfig(),
		Crawl:             crawler.DefaultConfig(),
		SeedTermScale:     10,
		Lexicon:           textgen.DefaultLexiconSizes(),
		DictCoverage:      0.75,
		TrainDocsPerClass: 400,
	}
}

// Paper-reported corpus sizes (Table 3).
var paperDocCounts = map[textgen.CorpusKind]int{
	textgen.Relevant:   4233523,
	textgen.Irrelevant: 17704365,
	textgen.Medline:    21686397,
	textgen.PMC:        250440,
}

// PaperDocCount returns Table 3's document count for a corpus.
func PaperDocCount(kind textgen.CorpusKind) int { return paperDocCounts[kind] }

// Set bundles the four corpora with the artifacts of their construction.
type Set struct {
	ByKind map[textgen.CorpusKind]*Corpus
	// Lexicon and Generator are the shared text resources.
	Lexicon   *textgen.Lexicon
	Generator *textgen.Generator
	// Web is the synthetic web the crawl ran against.
	Web *synthweb.Web
	// Crawl is the focused-crawl result behind the web corpora.
	Crawl *crawler.Result
	// Classifier is the trained relevance model.
	Classifier *classify.NaiveBayes
	// SeedRun is the seed-generation run that initialized the crawl.
	SeedRun seeds.Run
	cfg     BuildConfig
}

// Corpus returns one corpus of the set.
func (s *Set) Corpus(kind textgen.CorpusKind) *Corpus { return s.ByKind[kind] }

// Config returns the build configuration.
func (s *Set) Config() BuildConfig { return s.cfg }

// TrainClassifier builds the §2 relevance classifier: Medline abstracts as
// positives, random English web documents as negatives.
func TrainClassifier(gen *textgen.Generator, seed uint64, perClass int) *classify.NaiveBayes {
	clf := classify.New()
	r := rng.New(seed).Split("classifier-training")
	for i := 0; i < perClass; i++ {
		clf.Learn(gen.Doc(r, textgen.Medline, fmt.Sprint("train-m", i)).Text, classify.Relevant)
		clf.Learn(gen.Doc(r, textgen.Irrelevant, fmt.Sprint("train-w", i)).Text, classify.Irrelevant)
	}
	return clf
}

// Build constructs the full corpus set: trains the classifier, generates
// seeds, runs the focused crawl, and synthesizes Medline and PMC.
func Build(cfg BuildConfig) *Set {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = 10000
	}
	if cfg.SeedTermScale <= 0 {
		cfg.SeedTermScale = 10
	}
	lex := textgen.NewLexicon(rng.New(cfg.Seed).Split("lexicon"), cfg.Lexicon, cfg.DictCoverage)
	gen := textgen.NewGenerator(cfg.Seed+1, lex, textgen.DefaultProfiles())
	web := synthweb.New(cfg.Web, gen)
	clf := TrainClassifier(gen, cfg.Seed+2, cfg.TrainDocsPerClass)

	// Seed generation (§2.2, full catalogue).
	catalog := seeds.BuildCatalog(cfg.Seed+3, lex,
		seeds.ScaledSizes(seeds.PaperSizes(), cfg.SeedTermScale))
	run := seeds.GenerateLogged(seeds.DefaultEngines(cfg.Seed+4, web), catalog, cfg.Log)

	// Focused crawl, reporting into the process metric registry (the
	// cmds' -metrics flag dumps it at exit).
	cr := crawler.New(cfg.Crawl, web, clf).WithMetrics(obs.Default())
	if cfg.Log != nil {
		cr.WithLog(cfg.Log)
	}
	crawlRes := cr.Run(run.SeedURLs)

	set := &Set{
		ByKind:     map[textgen.CorpusKind]*Corpus{},
		Lexicon:    lex,
		Generator:  gen,
		Web:        web,
		Crawl:      crawlRes,
		Classifier: clf,
		SeedRun:    run,
		cfg:        cfg,
	}

	toDocs := func(pages []crawler.CrawledPage) []Document {
		out := make([]Document, 0, len(pages))
		for _, p := range pages {
			out = append(out, Document{
				ID: p.URL, Text: p.NetText, Gold: p.Gold,
				RawBytes: p.Bytes, GoldRelevant: p.GoldRelevant,
			})
		}
		return out
	}
	set.ByKind[textgen.Relevant] = &Corpus{Kind: textgen.Relevant, Docs: toDocs(crawlRes.Relevant)}
	set.ByKind[textgen.Irrelevant] = &Corpus{Kind: textgen.Irrelevant, Docs: toDocs(crawlRes.IrrelevantPages)}

	// Medline and PMC: generated at 1:ScaleFactor of Table 3's counts.
	r := rng.New(cfg.Seed).Split("corpora")
	for _, kind := range []textgen.CorpusKind{textgen.Medline, textgen.PMC} {
		n := paperDocCounts[kind] / cfg.ScaleFactor
		if n < 10 {
			n = 10
		}
		c := &Corpus{Kind: kind}
		for i := 0; i < n; i++ {
			d := gen.Doc(r, kind, fmt.Sprintf("%s-%d", kind, i))
			c.Docs = append(c.Docs, Document{
				ID: d.ID, Text: d.Text, Gold: d,
				RawBytes: len(d.Text), GoldRelevant: true,
			})
		}
		set.ByKind[kind] = c
	}
	return set
}

// Table3Row is one row of the reproduced Table 3.
type Table3Row struct {
	Corpus textgen.CorpusKind
	// Measured values from this build.
	Docs      int
	RawBytes  int64
	MeanChars float64
	// Paper-reported values.
	PaperDocs      int
	PaperSizeGB    float64
	PaperMeanChars float64
}

var paperTable3 = map[textgen.CorpusKind]struct {
	sizeGB    float64
	meanChars float64
}{
	textgen.Relevant:   {373, 88384},
	textgen.Irrelevant: {607, 37625},
	textgen.Medline:    {21, 865},
	textgen.PMC:        {19, 55704},
}

// Table3 reproduces Table 3 (measured vs paper).
func (s *Set) Table3() []Table3Row {
	var rows []Table3Row
	for _, kind := range textgen.CorpusKinds {
		c := s.ByKind[kind]
		p := paperTable3[kind]
		rows = append(rows, Table3Row{
			Corpus: kind, Docs: c.NumDocs(), RawBytes: c.RawBytes(),
			MeanChars:      c.MeanChars(),
			PaperDocs:      paperDocCounts[kind],
			PaperSizeGB:    p.sizeGB,
			PaperMeanChars: p.meanChars,
		})
	}
	return rows
}
