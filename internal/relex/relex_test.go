package relex

import (
	"fmt"
	"testing"

	"webtextie/internal/nlp"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func mk(text string, ms ...Mention) ([]nlp.Span, []Mention) {
	return nlp.SplitSentences(text), ms
}

func TestExtractTriggerRelation(t *testing.T) {
	text := "The BRCA1 gene regulates renal carcinoma in patients."
	sents, ms := mk(text,
		Mention{Type: "gene", Start: 4, End: 9, Surface: "BRCA1"},
		Mention{Type: "disease", Start: 25, End: 40, Surface: "renal carcinoma"},
	)
	rels := Extract(text, sents, ms, DefaultConfig())
	if len(rels) != 1 {
		t.Fatalf("relations = %+v", rels)
	}
	r := rels[0]
	if r.Trigger != "regulates" || r.Kind != "regulation" {
		t.Errorf("trigger = %q kind = %q", r.Trigger, r.Kind)
	}
	if r.Negated {
		t.Error("spurious negation")
	}
	if r.A.Surface != "BRCA1" || r.B.Surface != "renal carcinoma" {
		t.Errorf("participants: %+v", r)
	}
}

func TestExtractNegatedRelation(t *testing.T) {
	text := "The BRCA1 gene did not inhibit carcinoma growth."
	sents, ms := mk(text,
		Mention{Type: "gene", Start: 4, End: 9, Surface: "BRCA1"},
		Mention{Type: "disease", Start: 31, End: 40, Surface: "carcinoma"},
	)
	rels := Extract(text, sents, ms, DefaultConfig())
	if len(rels) != 1 || !rels[0].Negated {
		t.Fatalf("relations = %+v", rels)
	}
	if rels[0].Kind != "inhibition" {
		t.Errorf("kind = %q", rels[0].Kind)
	}
}

func TestNoTriggerNoRelation(t *testing.T) {
	text := "The BRCA1 gene and the carcinoma sample."
	sents, ms := mk(text,
		Mention{Type: "gene", Start: 4, End: 9, Surface: "BRCA1"},
		Mention{Type: "disease", Start: 23, End: 32, Surface: "carcinoma"},
	)
	if rels := Extract(text, sents, ms, DefaultConfig()); len(rels) != 0 {
		t.Fatalf("relations without trigger: %+v", rels)
	}
	// Co-occurrence mode keeps the pair.
	cfg := DefaultConfig()
	cfg.RequireTrigger = false
	rels := Extract(text, sents, ms, cfg)
	if len(rels) != 1 || rels[0].Kind != "cooccurrence" {
		t.Fatalf("cooccurrence mode: %+v", rels)
	}
}

func TestSentenceBoundaryScopesPairs(t *testing.T) {
	text := "The BRCA1 gene regulates growth. The carcinoma was treated."
	sents, ms := mk(text,
		Mention{Type: "gene", Start: 4, End: 9, Surface: "BRCA1"},
		Mention{Type: "disease", Start: 37, End: 46, Surface: "carcinoma"},
	)
	if rels := Extract(text, sents, ms, DefaultConfig()); len(rels) != 0 {
		t.Fatalf("cross-sentence pair extracted: %+v", rels)
	}
}

func TestSameTypeToggle(t *testing.T) {
	text := "BRCA1 activates TP53 downstream."
	sents, ms := mk(text,
		Mention{Type: "gene", Start: 0, End: 5, Surface: "BRCA1"},
		Mention{Type: "gene", Start: 16, End: 20, Surface: "TP53"},
	)
	if rels := Extract(text, sents, ms, DefaultConfig()); len(rels) != 1 {
		t.Fatalf("gene-gene: %+v", rels)
	}
	cfg := DefaultConfig()
	cfg.AllowSameType = false
	if rels := Extract(text, sents, ms, cfg); len(rels) != 0 {
		t.Fatalf("same-type pair kept: %+v", rels)
	}
}

func TestMaxPairDistance(t *testing.T) {
	text := "BRCA1 regulates something that eventually relates to carcinoma."
	sents, ms := mk(text,
		Mention{Type: "gene", Start: 0, End: 5, Surface: "BRCA1"},
		Mention{Type: "disease", Start: 54, End: 63, Surface: "carcinoma"},
	)
	cfg := DefaultConfig()
	cfg.MaxPairDistance = 10
	if rels := Extract(text, sents, ms, cfg); len(rels) != 0 {
		t.Fatalf("distant pair kept: %+v", rels)
	}
}

func TestOverlappingMentionsSkipped(t *testing.T) {
	text := "renal carcinoma regulates carcinoma."
	sents, ms := mk(text,
		Mention{Type: "disease", Start: 0, End: 15, Surface: "renal carcinoma"},
		Mention{Type: "disease", Start: 6, End: 15, Surface: "carcinoma"},
		Mention{Type: "disease", Start: 26, End: 35, Surface: "carcinoma"},
	)
	rels := Extract(text, sents, ms, DefaultConfig())
	for _, r := range rels {
		if r.A.End > r.B.Start {
			t.Fatalf("overlapping pair: %+v", r)
		}
	}
}

func TestPairKey(t *testing.T) {
	r := Relation{A: Mention{Type: "gene", Surface: "X"}, B: Mention{Type: "drug", Surface: "y"}}
	if r.PairKey() != "gene:X|drug:y" {
		t.Errorf("key = %q", r.PairKey())
	}
}

// TestAgainstGeneratorGold evaluates extraction on generated documents
// using gold mention spans, scoring against the generator's gold relations.
func TestAgainstGeneratorGold(t *testing.T) {
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 100, Diseases: 100}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	r := rng.New(42)
	var tp, fn, found int
	goldTotal := 0
	for i := 0; i < 300; i++ {
		d := gen.Doc(r, textgen.Medline, fmt.Sprint("m", i))
		if len(d.Relations) == 0 {
			continue
		}
		goldTotal += len(d.Relations)
		var ms []Mention
		for _, m := range d.Mentions {
			ms = append(ms, Mention{Type: m.Type.String(), Start: m.Start, End: m.End, Surface: m.Name})
		}
		rels := Extract(d.Text, nlp.SplitSentences(d.Text), ms, DefaultConfig())
		found += len(rels)
		// A gold relation is recovered when some extracted relation links
		// the same two spans.
		for _, g := range d.Relations {
			a, b := d.Mentions[g.A], d.Mentions[g.B]
			hit := false
			for _, rel := range rels {
				if rel.A.Start == a.Start && rel.A.End == a.End &&
					rel.B.Start == b.Start && rel.B.End == b.End {
					hit = true
					if g.Negated && !rel.Negated {
						t.Errorf("negated gold relation extracted as positive: %q", d.Text[a.Start:b.End])
					}
					break
				}
			}
			if hit {
				tp++
			} else {
				fn++
			}
		}
	}
	if goldTotal < 20 {
		t.Fatalf("only %d gold relations generated", goldTotal)
	}
	recall := float64(tp) / float64(tp+fn)
	if recall < 0.7 {
		t.Errorf("gold-relation recall = %.3f (%d/%d)", recall, tp, tp+fn)
	}
	if found == 0 {
		t.Fatal("nothing extracted")
	}
}

func BenchmarkExtract(b *testing.B) {
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 100, Diseases: 100}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	d := gen.Doc(rng.New(7), textgen.PMC, "bench")
	var ms []Mention
	for _, m := range d.Mentions {
		ms = append(ms, Mention{Type: m.Type.String(), Start: m.Start, End: m.End, Surface: m.Name})
	}
	sents := nlp.SplitSentences(d.Text)
	b.SetBytes(int64(len(d.Text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(d.Text, sents, ms, DefaultConfig())
	}
}
