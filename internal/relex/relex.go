// Package relex implements relation extraction between annotated entity
// mentions — the "semantic annotations (... relationships between
// entities)" the paper's IE operator package provides (§3.1). The method
// is sentence-scoped trigger-verb pattern matching over entity pairs, the
// classical co-occurrence + pattern baseline of biomedical RE, with
// negation awareness (the §4.3.1 motivation: "Detecting negation is
// important in many areas of natural language processing (e.g., ...
// relation extraction)").
package relex

import (
	"strings"

	"webtextie/internal/nlp"
)

// Mention is one entity mention as input to relation extraction.
type Mention struct {
	// Type is the entity class name ("gene", "drug", "disease").
	Type string
	// Start/End are byte offsets into the document text.
	Start, End int
	// Surface is the mention text.
	Surface string
}

// Relation is one extracted binary relation.
type Relation struct {
	// Sentence is the index of the carrying sentence.
	Sentence int
	// A is the left (subject-side) mention, B the right one.
	A, B Mention
	// Trigger is the matched verb/phrase connecting the pair.
	Trigger string
	// Kind classifies the relation by the trigger's semantic group.
	Kind string
	// Negated reports a negation particle between the mentions.
	Negated bool
}

// triggerGroups map connecting verbs to relation kinds. The inventory
// covers the verbs of the scientific register (and their inflections), so
// extraction works on exactly the prose the corpora contain.
var triggerGroups = map[string]string{
	"regulate": "regulation", "regulates": "regulation", "regulated": "regulation",
	"modulate": "regulation", "modulates": "regulation", "modulated": "regulation",
	"inhibit": "inhibition", "inhibits": "inhibition", "inhibited": "inhibition",
	"suppress": "inhibition", "suppresses": "inhibition", "suppressed": "inhibition",
	"activate": "activation", "activates": "activation", "activated": "activation",
	"induce": "activation", "induces": "activation", "induced": "activation",
	"cause": "causation", "causes": "causation", "caused": "causation",
	"affect": "association", "affects": "association", "affected": "association",
	"associated": "association", "bind": "binding", "binds": "binding",
	"target": "targeting", "targets": "targeting", "targeted": "targeting",
	"encode": "expression", "encodes": "expression", "encoded": "expression",
	"express": "expression", "expresses": "expression", "expressed": "expression",
	"mediate": "regulation", "mediates": "regulation", "mediated": "regulation",
	"reduce": "outcome", "reduces": "outcome", "reduced": "outcome",
	"increase": "outcome", "increases": "outcome", "increased": "outcome",
	"treat": "treatment", "treats": "treatment", "treated": "treatment",
	"observed": "observation", "measured": "observation", "analyzed": "observation",
	"identified": "observation", "detected": "observation", "reported": "observation",
	"evaluated": "observation", "compared": "observation",
}

// negationWords between a pair flips the Negated flag.
var negationWords = map[string]bool{"not": true, "nor": true, "neither": true}

// Config tunes extraction.
type Config struct {
	// MaxPairDistance is the maximum byte distance between the two
	// mentions; 0 means sentence-bounded only.
	MaxPairDistance int
	// RequireTrigger drops pairs with no trigger verb between them
	// (pure co-occurrence extraction when false).
	RequireTrigger bool
	// AllowSameType keeps X-X pairs (gene-gene interactions).
	AllowSameType bool
}

// DefaultConfig is trigger-required, sentence-bounded extraction.
func DefaultConfig() Config {
	return Config{MaxPairDistance: 0, RequireTrigger: true, AllowSameType: true}
}

// Extract finds relations among mentions over the document text. Sentences
// provide the pairing scope. Mentions may come from any tagger (gold,
// dictionary, or CRF); they only need correct spans.
func Extract(text string, sentences []nlp.Span, mentions []Mention, cfg Config) []Relation {
	var out []Relation
	for si, span := range sentences {
		// Mentions inside this sentence, in text order.
		var ms []Mention
		for _, m := range mentions {
			if m.Start >= span.Start && m.End <= span.End {
				ms = append(ms, m)
			}
		}
		if len(ms) < 2 {
			continue
		}
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				a, b := ms[i], ms[j]
				if a.End > b.Start {
					continue // overlapping spans
				}
				if !cfg.AllowSameType && a.Type == b.Type {
					continue
				}
				if cfg.MaxPairDistance > 0 && b.Start-a.End > cfg.MaxPairDistance {
					continue
				}
				between := text[a.End:b.Start]
				trigger, kind := findTrigger(between)
				if trigger == "" && cfg.RequireTrigger {
					continue
				}
				if trigger == "" {
					kind = "cooccurrence"
				}
				out = append(out, Relation{
					Sentence: si, A: a, B: b,
					Trigger: trigger, Kind: kind,
					Negated: hasNegation(between),
				})
			}
		}
	}
	return out
}

// findTrigger scans the inter-mention text for the first trigger verb.
func findTrigger(between string) (trigger, kind string) {
	for _, w := range fieldsLower(between) {
		if k, ok := triggerGroups[w]; ok {
			return w, k
		}
	}
	return "", ""
}

func hasNegation(between string) bool {
	for _, w := range fieldsLower(between) {
		if negationWords[w] {
			return true
		}
	}
	return false
}

// fieldsLower splits on non-letters and lower-cases, allocating modestly.
func fieldsLower(s string) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start >= 0 && end > start {
			out = append(out, strings.ToLower(s[start:end]))
		}
		start = -1
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(s))
	return out
}

// PairKey canonicalizes a relation's participants for set comparisons.
func (r Relation) PairKey() string {
	return r.A.Type + ":" + r.A.Surface + "|" + r.B.Type + ":" + r.B.Surface
}
