package mimetype

import (
	"strings"
	"testing"
)

func TestFromExtension(t *testing.T) {
	cases := map[string]Type{
		"/page.html": HTML, "/doc.HTM": HTML, "/a/b/readme.txt": Plain,
		"/paper.pdf": PDF, "/x.zip": Zip, "/img.png": PNG, "/p.jpg": JPEG,
	}
	for path, want := range cases {
		got, ok := FromExtension(path)
		if !ok || got != want {
			t.Errorf("FromExtension(%q) = %v/%v, want %v", path, got, ok, want)
		}
	}
	if _, ok := FromExtension("/noext"); ok {
		t.Error("extension found where none exists")
	}
	if _, ok := FromExtension("/weird.xyz123"); ok {
		t.Error("unknown extension mapped")
	}
}

func TestSniffMagic(t *testing.T) {
	cases := map[string]Type{
		"%PDF-1.4 blah":                                   PDF,
		"PK\x03\x04contents":                              Zip,
		"GIF89a....":                                      GIF,
		"\x89PNG\r\n\x1a\nrest":                           PNG,
		"\xff\xd8\xffjpegdata":                            JPEG,
		"\xd0\xcf\x11\xe0worddoc":                         MSWord,
		"<!DOCTYPE html><html></html>":                    HTML,
		"  \n<html><body>x":                               HTML,
		"Just some plain text without any markup at all.": Plain,
	}
	for content, want := range cases {
		if got := Sniff([]byte(content)); got != want {
			t.Errorf("Sniff(%q...) = %v, want %v", content[:min(12, len(content))], got, want)
		}
	}
}

func TestSniffBinary(t *testing.T) {
	bin := make([]byte, 200)
	for i := range bin {
		bin[i] = byte(i % 7) // lots of control bytes
	}
	if got := Sniff(bin); got != Unknown {
		t.Errorf("Sniff(binary) = %v, want Unknown", got)
	}
}

func TestSniffEmpty(t *testing.T) {
	if got := Sniff(nil); got != Unknown {
		t.Errorf("Sniff(nil) = %v", got)
	}
}

func TestDetectContentBeatsExtension(t *testing.T) {
	// §5 pathology: a binary PDF served under a .html name must be caught.
	pdf := []byte("%PDF-1.5 binary payload")
	if got := Detect("/download/page.html", pdf); got != PDF {
		t.Errorf("Detect(.html with PDF magic) = %v, want PDF", got)
	}
	// And an HTML page under a .pdf name is still HTML.
	html := []byte("<html><body>actual page</body></html>")
	if got := Detect("/files/report.pdf", html); got != HTML {
		t.Errorf("Detect(.pdf with HTML content) = %v, want HTML", got)
	}
}

func TestDetectFallsBackToExtension(t *testing.T) {
	// Content inconclusive (empty) → extension decides.
	if got := Detect("/img/logo.png", nil); got != PNG {
		t.Errorf("Detect(empty .png) = %v, want PNG", got)
	}
}

func TestIsTextual(t *testing.T) {
	if !HTML.IsTextual() || !Plain.IsTextual() {
		t.Error("HTML/Plain should be textual")
	}
	for _, tt := range []Type{PDF, Zip, GIF, PNG, JPEG, MSWord, Unknown} {
		if tt.IsTextual() {
			t.Errorf("%v should not be textual", tt)
		}
	}
}

func TestSniffLongInputBounded(t *testing.T) {
	long := strings.Repeat("plain text ", 100000)
	if got := Sniff([]byte(long)); got != Plain {
		t.Errorf("Sniff(long text) = %v", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
