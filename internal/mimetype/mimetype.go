// Package mimetype implements MIME type detection as used by the crawler's
// pre-filter (§2.1) — the Apache Tika substitute. Detection combines magic
// bytes, file-name extension, and a content heuristic, because each alone
// is unreliable: the paper singles out "reliable MIME-type detection" as an
// open problem (§5: large binary files masquerading as text slip through
// name-based detection).
package mimetype

import "strings"

// Type is a detected MIME type.
type Type string

// The types the synthetic web can serve.
const (
	HTML    Type = "text/html"
	Plain   Type = "text/plain"
	PDF     Type = "application/pdf"
	Zip     Type = "application/zip"
	GIF     Type = "image/gif"
	PNG     Type = "image/png"
	JPEG    Type = "image/jpeg"
	MSWord  Type = "application/msword"
	Unknown Type = "application/octet-stream"
)

// IsTextual reports whether the type carries extractable text.
func (t Type) IsTextual() bool { return t == HTML || t == Plain }

// byExtension maps URL path extensions to types.
var byExtension = map[string]Type{
	".html": HTML, ".htm": HTML, ".txt": Plain, ".pdf": PDF, ".zip": Zip,
	".gif": GIF, ".png": PNG, ".jpg": JPEG, ".jpeg": JPEG, ".doc": MSWord,
}

// magic prefixes, checked in order.
var magic = []struct {
	prefix string
	t      Type
}{
	{"%PDF-", PDF},
	{"PK\x03\x04", Zip},
	{"GIF87a", GIF},
	{"GIF89a", GIF},
	{"\x89PNG\r\n\x1a\n", PNG},
	{"\xff\xd8\xff", JPEG},
	{"\xd0\xcf\x11\xe0", MSWord},
}

// FromExtension detects by URL path alone (the cheap first-pass method).
func FromExtension(path string) (Type, bool) {
	dot := strings.LastIndexByte(path, '.')
	if dot < 0 {
		return Unknown, false
	}
	ext := strings.ToLower(path[dot:])
	if q := strings.IndexAny(ext, "?#"); q >= 0 {
		ext = ext[:q]
	}
	t, ok := byExtension[ext]
	return t, ok
}

// Sniff detects from content bytes: magic prefixes first, then an HTML
// probe, then a binary-vs-text heuristic over the first window.
func Sniff(content []byte) Type {
	head := content
	if len(head) > 512 {
		head = head[:512]
	}
	s := string(head)
	for _, m := range magic {
		if strings.HasPrefix(s, m.prefix) {
			return m.t
		}
	}
	trimmed := strings.TrimLeft(s, " \t\r\n")
	lower := strings.ToLower(trimmed)
	if strings.HasPrefix(lower, "<!doctype html") || strings.HasPrefix(lower, "<html") ||
		strings.Contains(lower, "<body") || strings.Contains(lower, "<head") {
		return HTML
	}
	// Binary heuristic: control bytes (outside tab/LF/CR) imply binary.
	binary := 0
	for i := 0; i < len(head); i++ {
		c := head[i]
		if c < 9 || (c > 13 && c < 32) || c == 127 {
			binary++
		}
	}
	if len(head) == 0 {
		return Unknown
	}
	if float64(binary)/float64(len(head)) > 0.02 {
		return Unknown
	}
	if strings.Contains(lower, "<") && strings.Contains(lower, ">") {
		return HTML
	}
	return Plain
}

// Detect combines extension and content sniffing: content wins on conflict
// (the Tika lesson: extensions lie; §5).
func Detect(path string, content []byte) Type {
	sniffed := Sniff(content)
	if sniffed != Plain && sniffed != Unknown {
		return sniffed
	}
	if ext, ok := FromExtension(path); ok && sniffed == Plain && !ext.IsTextual() {
		// Extension claims binary but content looks like text: distrust the
		// extension only if the content is decisively textual, which Plain
		// already asserts.
		return Plain
	}
	if sniffed == Unknown {
		if ext, ok := FromExtension(path); ok {
			return ext
		}
	}
	return sniffed
}
