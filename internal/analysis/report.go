package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Relativize rewrites diagnostic paths relative to base (typically the
// working directory) for compact, stable reports. Paths outside base are
// left absolute.
func Relativize(diags []Diagnostic, base string) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(base, d.Path); err == nil && !strings.HasPrefix(rel, "..") {
			d.Path = rel
		}
		out[i] = d
	}
	return out
}

// WriteText renders one diagnostic per line in file:line:col form.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the -json output schema.
type jsonReport struct {
	Count       int          `json:"count"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders the diagnostics as one JSON object with a stable
// field order: {"count": N, "diagnostics": [...]}.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Count: len(diags), Diagnostics: diags})
}
