package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// PkgPath is the import path (module path + directory suffix).
	PkgPath string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module. Packages inside
// the module are resolved from source by the loader itself (memoized, so
// shared dependencies are checked once); everything else — in this repo,
// only the standard library — is delegated to go/importer's source
// importer, which type-checks GOROOT sources and therefore needs no
// pre-built export data. _test.go files are never loaded.
type Loader struct {
	// Fset maps positions for every package this loader produces.
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.ImporterFrom
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader creates a loader for the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:       fset,
		moduleDir:  root,
		modulePath: modPath,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		mod := filepath.Join(d, "go.mod")
		if _, serr := os.Stat(mod); serr == nil {
			p, perr := modulePathOf(mod)
			if perr != nil {
				return "", "", perr
			}
			return d, p, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadDir loads the package in one directory (which must live inside the
// loader's module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	path, err := l.pathForDir(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// pathForDir maps an absolute directory to its import path.
func (l *Loader) pathForDir(abs string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("analysis: %s is outside module %s", abs, l.modulePath)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirForPath maps a module-internal import path to its directory.
func (l *Loader) dirForPath(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

// LoadPatterns loads every package matched by the given patterns: plain
// directories, or "dir/..." for a recursive walk. Walks skip testdata,
// hidden, and underscore-prefixed directories, exactly like the go tool.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		if !recursive {
			add(filepath.Clean(pat))
			continue
		}
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if p != root {
				base := d.Name()
				if base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") {
					return fs.SkipDir
				}
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %s: %w", pat, err)
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks one package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{PkgPath: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through this loader; everything else goes to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		p, err := l.load(path, l.dirForPath(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.moduleDir, mode)
}
