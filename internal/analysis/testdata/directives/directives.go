// Package directives is the fixture for the directive-parsing unit
// tests: every //lintx:ignore and //lintx:hotpath form, well-formed and
// malformed, in one file with stable line numbers.
package directives

import "strings"

// malformed ignore: check list but no reason (line 9).
//lintx:ignore maprange
var a = 1

// well-formed preceding-line ignore (line 13) covering line 14.
//lintx:ignore maprange the traversal sorts its output
var b = 2

var c = 3 //lintx:ignore lockcopy,maprange same-line, two checks

//lintx:ignore all blanket suppression with a reason
var d = 4

// HotRoot carries a well-formed hot-path annotation.
//
//lintx:hotpath inner loop of the fixture, exercised per document.
func HotRoot(s string) string { return strings.ToUpper(s) }

// BadRoot's annotation is missing its reason (line 27).
//
//lintx:hotpath
func BadRoot() {}

//lintx:hotpath floating outside any declaration's doc comment (line 31)
var e = 5

//lintx:hotpathology is not a directive: prefix followed by a non-space
var f = 6

// NotADirective exists so the file has a second clean declaration.
func NotADirective() {}
