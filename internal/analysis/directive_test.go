package analysis

// Direct unit tests for the directive layer: //lintx:ignore parsing and
// suppression matching (directive.go) and //lintx:hotpath root
// collection (hotpath.go), against the testdata/directives fixture.

import (
	"strings"
	"testing"
)

// loadDirectivesFixture loads the fixture package through the real
// loader, so comment attachment matches production exactly.
func loadDirectivesFixture(t *testing.T) *Package {
	t.Helper()
	l, err := NewLoader("testdata/directives")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/directives")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return pkg
}

func TestCollectIgnores(t *testing.T) {
	pkg := loadDirectivesFixture(t)
	igs, bad := collectIgnores(pkg)

	if len(bad) != 1 {
		t.Fatalf("got %d malformed-ignore diagnostics, want 1: %+v", len(bad), bad)
	}
	if bad[0].Check != "directive" || !strings.Contains(bad[0].Message, "lintx:ignore") {
		t.Errorf("malformed diagnostic = %+v", bad[0])
	}

	// The reason-less directive is rejected entirely: it must not appear
	// as a live suppression.
	if len(igs) != 3 {
		t.Fatalf("got %d parsed ignores, want 3: %+v", len(igs), igs)
	}
	wantChecks := []map[string]bool{
		{"maprange": true},
		{"lockcopy": true, "maprange": true},
		{"all": true},
	}
	for i, want := range wantChecks {
		got := igs[i].checks
		if len(got) != len(want) {
			t.Errorf("ignore %d: checks = %v, want %v", i, got, want)
			continue
		}
		for name := range want {
			if !got[name] {
				t.Errorf("ignore %d: missing check %q", i, name)
			}
		}
	}
}

func TestSuppressed(t *testing.T) {
	pkg := loadDirectivesFixture(t)
	igs, _ := collectIgnores(pkg)
	preceding, sameLine, blanket := igs[0], igs[1], igs[2]

	diag := func(path string, line int, check string) Diagnostic {
		return Diagnostic{Path: path, Line: line, Check: check, Message: "x"}
	}

	cases := []struct {
		name string
		d    Diagnostic
		want bool
	}{
		{"directive line itself", diag(preceding.path, preceding.line, "maprange"), true},
		{"line below the directive", diag(preceding.path, preceding.line+1, "maprange"), true},
		{"two lines below", diag(preceding.path, preceding.line+2, "maprange"), false},
		{"line above", diag(preceding.path, preceding.line-1, "maprange"), false},
		{"other check", diag(preceding.path, preceding.line, "lockcopy"), false},
		{"other file", diag("elsewhere.go", preceding.line, "maprange"), false},
		{"same-line multi-check first", diag(sameLine.path, sameLine.line, "lockcopy"), true},
		{"same-line multi-check second", diag(sameLine.path, sameLine.line, "maprange"), true},
		{"all matches any check", diag(blanket.path, blanket.line+1, "goroutine"), true},
	}
	for _, tc := range cases {
		if got := suppressed(tc.d, igs); got != tc.want {
			t.Errorf("%s: suppressed = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCollectHotpaths(t *testing.T) {
	pkg := loadDirectivesFixture(t)
	roots, bad := collectHotpaths(pkg)

	if len(roots) != 1 {
		t.Fatalf("got %d hot roots, want 1: %v", len(roots), roots)
	}
	for fn, reason := range roots {
		if fn.Name() != "HotRoot" {
			t.Errorf("root = %s, want HotRoot", fn.Name())
		}
		if want := "inner loop of the fixture, exercised per document."; reason != want {
			t.Errorf("reason = %q, want %q", reason, want)
		}
	}

	// BadRoot's reason-less annotation and the floating annotation above
	// a var each produce one directive diagnostic; //lintx:hotpathology
	// produces none.
	if len(bad) != 2 {
		t.Fatalf("got %d hotpath diagnostics, want 2: %+v", len(bad), bad)
	}
	var missingReason, floating int
	for _, d := range bad {
		if d.Check != "directive" {
			t.Errorf("diagnostic check = %q, want directive", d.Check)
		}
		switch {
		case strings.Contains(d.Message, "want //lintx:hotpath <reason>"):
			missingReason++
		case strings.Contains(d.Message, "doc comment of a function"):
			floating++
		default:
			t.Errorf("unexpected message %q", d.Message)
		}
	}
	if missingReason != 1 || floating != 1 {
		t.Errorf("missingReason=%d floating=%d, want 1 and 1", missingReason, floating)
	}
}

func TestCutHotpath(t *testing.T) {
	cases := []struct {
		in     string
		reason string
		ok     bool
	}{
		{"//lintx:hotpath per-page loop", "per-page loop", true},
		{"//lintx:hotpath\ttabbed reason", "tabbed reason", true},
		{"//lintx:hotpath", "", true}, // directive, empty reason: caller reports it
		{"//lintx:hotpathology", "", false},
		{"// plain comment", "", false},
	}
	for _, tc := range cases {
		reason, ok := cutHotpath(tc.in)
		if reason != tc.reason || ok != tc.ok {
			t.Errorf("cutHotpath(%q) = (%q, %v), want (%q, %v)", tc.in, reason, ok, tc.reason, tc.ok)
		}
	}
}
