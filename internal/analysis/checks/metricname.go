package checks

import (
	"go/ast"
	"go/constant"
	"regexp"

	"webtextie/internal/analysis"
)

// MetricName enforces the obs registry's naming contract at every
// call site of Registry.Counter/Gauge/Histogram/StartSpan: the name must
// be a compile-time constant matching the dotted lower-case grammar
//
//	name    = segment "." segment { "." segment }
//	segment = [a-z0-9_]+          (first segment starts with a letter)
//
// Constant names keep snapshot diffs stable across builds (renames show
// up in golden tests, not in production dashboards) and bound registry
// cardinality — a name interpolated from request data would grow the
// registry without limit. The one sanctioned builder is a function named
// MetricName (dataflow's per-operator namer), which owns the grammar for
// computed names.
var MetricName = &analysis.Analyzer{
	Name: "metricname",
	Doc: "obs registry keys must be compile-time constants matching the dotted " +
		"lower-case grammar (or built by a MetricName helper)",
	Run: runMetricName,
}

// metricNameRE is the dotted-name grammar.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// metricMethods are the Registry methods whose first argument is a name.
var metricMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "StartSpan": true,
}

func runMetricName(pass *analysis.Pass) {
	// The registry itself composes names internally (StartSpan's ".ms").
	if pkgPathMatches(pass.Pkg.PkgPath, "internal/obs") {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "internal/obs") {
				return true
			}
			if !metricMethods[fn.Name()] {
				return true
			}
			arg := call.Args[0]
			if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"metric name %q violates the dotted-name grammar (lower-case segments joined by dots)", name)
				}
				return true
			}
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if f := calleeFunc(info, inner); f != nil && f.Name() == "MetricName" {
					return true
				}
			}
			pass.Reportf(arg.Pos(),
				"metric name passed to %s must be a compile-time constant (or a MetricName builder call): "+
					"dynamic names destabilize snapshot diffs and unbound registry cardinality", fn.Name())
			return true
		})
	}
}
