package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"webtextie/internal/analysis"
)

// AllocFree flags heap-allocating constructs in functions statically
// reachable from a //lintx:hotpath root. The IE matching loops (dict
// Aho–Corasick scan, tokenizer, sentence splitter, dedup fingerprinting)
// run per document at web scale; a single per-call allocation there is a
// GC tax on every page crawled, and nothing in `go build` surfaces it.
// Each diagnostic prints the root-to-function call chain so the reader
// can see *why* the function is hot.
//
// Flagged: map literals, make(map)/make(chan), new, &composite-literal,
// non-empty slice literals, append without capacity evidence, string ↔
// []byte/[]rune conversions, and a curated set of known-allocating
// stdlib calls (all of fmt; strings/bytes/strconv/regexp/sort entries
// that return fresh memory or take closures).
//
// Not flagged — the accepted idioms: make([]T, n, c) is *the* prealloc
// idiom; append whose target traces to a parameter, receiver field,
// 3-arg make, or a reslice of one (capacity evidence); map indexing
// m[string(b)], which the compiler optimizes to a no-alloc lookup; and
// anything inside an `if ....Enabled() { ... }` guard, which is cold by
// construction.
var AllocFree = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "no heap-allocating constructs in functions reachable from a " +
		"//lintx:hotpath root: map/slice literals, make(map|chan), new, " +
		"escaping composite literals, append without capacity evidence, " +
		"string<->[]byte conversions, and known-allocating stdlib calls",
	Run: runAllocFree,
}

// allocPkgFuncs maps package path → allocating function/method names.
// A nil set means every function in the package allocates (fmt).
var allocPkgFuncs = map[string]map[string]bool{
	"fmt": nil,
	"strings": {
		"ToLower": true, "ToUpper": true, "Join": true, "Split": true,
		"SplitN": true, "Fields": true, "Replace": true, "ReplaceAll": true,
		"Repeat": true, "Map": true, "Clone": true, "Title": true,
	},
	"bytes": {
		"Join": true, "Split": true, "Fields": true, "Repeat": true,
		"ToLower": true, "ToUpper": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true,
	},
	"regexp": {
		"Compile": true, "MustCompile": true,
		"FindAllString": true, "FindAllStringIndex": true,
		"FindAllStringSubmatch": true, "FindAllStringSubmatchIndex": true,
		"FindAllIndex": true, "FindAll": true, "FindAllSubmatch": true,
		"FindStringSubmatch": true, "FindSubmatch": true,
		"FindStringIndex": true, "FindIndex": true,
		"ReplaceAll": true, "ReplaceAllString": true, "Split": true,
	},
	"sort": {"Slice": true, "SliceStable": true},
}

func runAllocFree(pass *analysis.Pass) {
	st, ok := hotReach(pass)
	if !ok {
		return
	}
	info := pass.TypesInfo()
	hotDecls(pass, st, func(fd *ast.FuncDecl, fn *types.Func, chain string) {
		guards := enabledGuardRanges(info, fd.Body)
		evidenced := capEvidenced(info, fd)
		exemptConv := mapIndexConversions(info, fd.Body)

		report := func(pos ast.Node, desc string) {
			if !inGuarded(pos.Pos(), guards) {
				pass.Reportf(pos.Pos(), "%s in hot path (%s)", desc, chain)
			}
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						report(x, "&composite literal escapes to the heap")
						return false // don't re-flag the literal inside
					}
				}
			case *ast.CompositeLit:
				tv, ok := info.Types[x]
				if !ok || tv.Type == nil {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(x, "map literal allocates")
				case *types.Slice:
					if len(x.Elts) > 0 {
						report(x, "slice literal allocates")
					}
				}
			case *ast.CallExpr:
				checkAllocCall(pass, info, x, report, evidenced, exemptConv)
			}
			return true
		})
	})
}

// checkAllocCall classifies one call expression in a hot function.
func checkAllocCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr,
	report func(ast.Node, string), evidenced map[*types.Var]bool, exemptConv map[ast.Expr]bool) {

	fun := ast.Unparen(call.Fun)

	// Conversions: string ↔ []byte/[]rune copy their operand.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) != 1 || exemptConv[call] {
			return
		}
		at, ok := info.Types[call.Args[0]]
		if !ok || at.Type == nil {
			return
		}
		// Constant operands are materialized in static data, not per call.
		if at.Value != nil {
			return
		}
		if kind := convKind(tv.Type, at.Type); kind != "" {
			report(call, "conversion "+kind+" copies its operand")
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				report(call, "new allocates")
			case "make":
				if len(call.Args) == 0 {
					return
				}
				tv, ok := info.Types[call.Args[0]]
				if !ok || tv.Type == nil {
					return
				}
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(call, "make(map) allocates")
				case *types.Chan:
					report(call, "make(chan) allocates")
					// make([]T, n[, c]) is the prealloc idiom: not flagged.
				}
			case "append":
				if len(call.Args) > 0 && !capEvidencedExpr(info, evidenced, call.Args[0]) {
					report(call, "append without capacity evidence may grow per call")
				}
			}
			return
		}
	}

	// Known-allocating stdlib calls.
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if names, ok := allocPkgFuncs[fn.Pkg().Path()]; ok {
		if names == nil || names[fn.Name()] {
			report(call, fn.Pkg().Name()+"."+fn.Name()+" allocates")
		}
	}
}

// convKind names a string↔[]byte/[]rune conversion, "" for any other.
func convKind(dst, src types.Type) string {
	dstName := byteRuneSliceOrString(dst)
	srcName := byteRuneSliceOrString(src)
	if dstName == "" || srcName == "" || dstName == srcName {
		return ""
	}
	if dstName == "string" || srcName == "string" {
		return dstName + "(" + srcName + ")"
	}
	return ""
}

// byteRuneSliceOrString classifies a type as "string", "[]byte",
// "[]rune", or "".
func byteRuneSliceOrString(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return "string"
		}
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			switch b.Kind() {
			case types.Byte:
				return "[]byte"
			case types.Rune:
				return "[]rune"
			}
		}
	}
	return ""
}

// mapIndexConversions collects conversion calls used directly as a map
// index (m[string(b)]): the compiler elides that allocation, so the
// conversion check exempts them.
func mapIndexConversions(info *types.Info, body *ast.BlockStmt) map[ast.Expr]bool {
	out := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[ix.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			if call, ok := ast.Unparen(ix.Index).(*ast.CallExpr); ok {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// capEvidenced computes the set of variables in fd that carry capacity
// evidence: the receiver and parameters (caller-owned buffers), anything
// assigned from a 3-arg make, and — by fixed point — anything assigned
// from a reslice, index, field, or append of an evidenced variable.
// Appending to an evidenced target is amortized-free when the caller
// sized the buffer; appending to anything else grows per call.
func capEvidenced(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	ev := map[*types.Var]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					ev[v] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)

	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					v := varOf(info, id)
					if v == nil || ev[v] {
						continue
					}
					if capEvidencedExpr(info, ev, st.Rhs[i]) {
						ev[v] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) != len(st.Values) {
					return true
				}
				for i, name := range st.Names {
					if v, ok := info.Defs[name].(*types.Var); ok && !ev[v] {
						if capEvidencedExpr(info, ev, st.Values[i]) {
							ev[v] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return ev
}

// varOf resolves an identifier to its variable object, whether this is
// its defining or a using occurrence.
func varOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// capEvidencedExpr reports whether an expression carries capacity
// evidence as an append target or assignment source.
func capEvidencedExpr(info *types.Info, ev map[*types.Var]bool, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v := varOf(info, x)
		return v != nil && ev[v]
	case *ast.SelectorExpr:
		return capEvidencedExpr(info, ev, x.X)
	case *ast.SliceExpr:
		return capEvidencedExpr(info, ev, x.X)
	case *ast.IndexExpr:
		return capEvidencedExpr(info, ev, x.X)
	case *ast.StarExpr:
		return capEvidencedExpr(info, ev, x.X)
	case *ast.CallExpr:
		fun := ast.Unparen(x.Fun)
		id, ok := fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		if !ok {
			return false
		}
		switch b.Name() {
		case "make":
			return len(x.Args) == 3 // explicit capacity
		case "append":
			return len(x.Args) > 0 && capEvidencedExpr(info, ev, x.Args[0])
		}
	}
	return false
}
