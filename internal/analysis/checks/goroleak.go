package checks

import (
	"go/ast"
	"go/types"

	"webtextie/internal/analysis"
)

// GoroLeak flags goroutine launches with no visible lifecycle signal. The
// dataflow executor and crawler spin up worker fleets per execution; a
// goroutine that nothing waits on, cancels, or closes outlives the run
// that spawned it, leaks under the race detector, and skews queue gauges.
//
// A `go func(){...}()` passes when its body references any of:
//
//   - a WaitGroup handoff (a .Done() or .Wait() call),
//   - close(ch) — it terminates a consumer and then itself,
//   - a context.Context value,
//   - a channel receive or a range over a channel (the goroutine ends
//     when the channel closes).
//
// A `go namedFunc(args)` passes when an argument carries the lifecycle:
// a context.Context, a channel, or a *sync.WaitGroup.
var GoroLeak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "goroutine launched without a lifecycle signal (WaitGroup Done/Wait, close, " +
		"context, or a channel it drains); unbounded goroutines outlive their run",
	Run: runGoroLeak,
}

func runGoroLeak(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if !hasLifecycleSignal(info, lit.Body) {
					pass.Reportf(g.Pos(),
						"goroutine has no lifecycle signal (no WaitGroup, close, context, or channel it drains)")
				}
				return true
			}
			ok = false
			for _, arg := range g.Call.Args {
				if tv, found := info.Types[arg]; found && isLifecycleType(tv.Type) {
					ok = true
					break
				}
			}
			if !ok {
				pass.Reportf(g.Pos(),
					"goroutine call carries no lifecycle argument (context, channel, or *sync.WaitGroup)")
			}
			return true
		})
	}
}

// hasLifecycleSignal scans a goroutine body for evidence its lifetime is
// managed.
func hasLifecycleSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
					found = true
				}
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			}
		case *ast.UnaryExpr:
			// A channel receive: the goroutine blocks on (and so is bound
			// to) another party.
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if tv, ok := info.Types[ast.Expr(n)]; ok && isContextType(tv.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isLifecycleType reports whether an argument type can carry a
// goroutine's lifecycle: a context, a channel, or a WaitGroup pointer.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			obj := named.Obj()
			return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
