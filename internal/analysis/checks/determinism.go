package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"webtextie/internal/analysis"
)

// Determinism flags reads of the wall clock and imports of math/rand
// outside the two packages allowed to touch real time and entropy:
// internal/obs (spans measure wall latency by design) and internal/rng
// (the seeded PRNG wraps its own source). Everything else in the repo is
// specified to be bit-reproducible per seed in virtual-clock units —
// crawler metrics, dataflow plans, corpus generation, experiment tables —
// and a single time.Now in one of those paths silently breaks the
// DoP-equivalence and two-run identity guarantees.
//
// Wall-clock timing that is genuinely wanted (progress displays,
// benchmark-style reports) should go through an obs span
// (Registry.StartSpan / Histogram.Start), which keeps the clock read
// inside the allowlisted package and records the measurement into the
// metric registry.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "wall-clock (time.Now/Since/...) or math/rand use outside internal/obs and internal/rng; " +
		"route timing through obs spans and randomness through internal/rng",
	Run: runDeterminism,
}

// determinismAllowed are the packages permitted to read real time/entropy.
// internal/obs/prof is its own entry (pkgPathMatches is boundary-exact):
// the profiler's wall lane reads time.Now by design, and its exports keep
// that lane out of the deterministic surface.
var determinismAllowed = []string{"internal/obs", "internal/obs/prof", "internal/rng"}

// wallClockFuncs are the time package functions that read or depend on
// the real clock. Constructors like time.Date and constants like
// time.Millisecond are pure and stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

func runDeterminism(pass *analysis.Pass) {
	for _, allowed := range determinismAllowed {
		if pkgPathMatches(pass.Pkg.PkgPath, allowed) {
			return
		}
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: deterministic paths must draw randomness from internal/rng", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock: use the virtual clock or an obs span (Registry.StartSpan)", fn.Name())
			}
			return true
		})
	}
}
