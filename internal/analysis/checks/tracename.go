package checks

import (
	"go/ast"
	"go/constant"
	"regexp"

	"webtextie/internal/analysis"
)

// TraceName enforces the trace recorder's naming contract at every call
// site into internal/obs/trace:
//
//   - span/event names (Recorder.Start, Context.StartSpan/StartSpanKeyed/
//     Event) must be compile-time constants in the dotted lower-case
//     grammar shared with metric names — trace exports are golden-tested,
//     so a name interpolated from data would destabilize every golden and
//     unbound the event vocabulary;
//   - mark names (Recorder.Mark) and error classes (Context.Error) must be
//     constant lower_snake identifiers (a single segment; dots allowed),
//     because error classes are filter keys on /traces and flight-recorder
//     pin reasons;
//   - attribute keys (trace.String/Int/Float) must be constant lower_snake
//     identifiers for the same reason: exports sort and render them, and
//     dynamic keys make two same-seed runs diverge.
//
// The one sanctioned builder is a function named TraceName (the dataflow
// executor's per-operator namer), which owns the grammar for computed
// names.
var TraceName = &analysis.Analyzer{
	Name: "tracename",
	Doc: "trace span/event names must be compile-time constants in the dotted " +
		"lower-case grammar and attr keys constant lower_snake identifiers " +
		"(or built by a TraceName helper)",
	Run: runTraceName,
}

// traceSegmentRE is the single-segment grammar (mark names, error classes,
// attribute keys); traceNameRE (= metricNameRE's shape) requires >=2
// dotted segments.
var (
	traceNameRE    = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)
	traceSegmentRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)
)

// traceNameMethods take a dotted name as their first argument;
// traceSegmentMethods take a single-segment name; traceAttrFuncs take an
// attribute key.
var (
	traceNameMethods    = map[string]bool{"Start": true, "StartSpan": true, "StartSpanKeyed": true, "Event": true}
	traceSegmentMethods = map[string]bool{"Mark": true, "Error": true}
	traceAttrFuncs      = map[string]bool{"String": true, "Int": true, "Float": true}
)

func runTraceName(pass *analysis.Pass) {
	// The trace package composes names internally; its own tests and
	// builders are the grammar's source of truth.
	if pkgPathMatches(pass.Pkg.PkgPath, "internal/obs/trace") {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "internal/obs/trace") {
				return true
			}
			var re *regexp.Regexp
			var what string
			switch {
			case traceNameMethods[fn.Name()]:
				re, what = traceNameRE, "trace name"
			case traceSegmentMethods[fn.Name()]:
				re, what = traceSegmentRE, "trace label"
			case traceAttrFuncs[fn.Name()]:
				re, what = traceSegmentRE, "trace attr key"
			default:
				return true
			}
			arg := call.Args[0]
			if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name := constant.StringVal(tv.Value)
				if !re.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"%s %q violates the lower-case dotted grammar", what, name)
				}
				return true
			}
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if f := calleeFunc(info, inner); f != nil && f.Name() == "TraceName" {
					return true
				}
			}
			pass.Reportf(arg.Pos(),
				"%s passed to %s must be a compile-time constant (or a TraceName builder call): "+
					"dynamic names break golden-tested trace exports and unbound the event vocabulary",
				what, fn.Name())
			return true
		})
	}
}
