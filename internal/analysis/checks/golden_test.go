package checks

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webtextie/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// TestGolden runs each analyzer over its fixture package in
// testdata/src/<check>/ and compares the rendered diagnostics against
// testdata/<check>.golden. Every fixture pairs true positives with clean
// variants and at least one lintx:ignore-suppressed case, so this fails
// on missed findings, on false positives, and — because each golden file
// is non-empty — whenever a check is disabled outright.
func TestGolden(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, az := range All() {
		t.Run(az.Name, func(t *testing.T) {
			loader, err := analysis.NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join("testdata", "src", az.Name)
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", dir, err)
			}
			diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{az})
			diags = analysis.Relativize(diags, cwd)
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics: the %s check is not firing", dir, az.Name)
			}
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := filepath.Join("testdata", az.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestGolden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestGoldenSuppression proves the fixtures' ignore directives are doing
// work: stripping them must strictly grow each analyzer's finding count.
func TestGoldenSuppression(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for _, az := range All() {
		t.Run(az.Name, func(t *testing.T) {
			loader, err := analysis.NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", az.Name))
			if err != nil {
				t.Fatal(err)
			}
			sess, _ := analysis.NewSession([]*analysis.Package{pkg})
			pass := &analysis.Pass{Analyzer: az, Pkg: pkg, Session: sess}
			az.Run(pass)
			raw := len(pass.Diagnostics())
			kept := len(analysis.Relativize(analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{az}), cwd))
			if kept >= raw {
				t.Errorf("%s: %d findings survive suppression out of %d raw — fixture has no effective ignore directive", az.Name, kept, raw)
			}
		})
	}
}
