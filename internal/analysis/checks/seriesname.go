package checks

import (
	"go/ast"
	"go/constant"

	"webtextie/internal/analysis"
)

// SeriesName enforces the time-series pillar's naming contract at every
// call site of series.Recorder.Observe: like metric names, a series name
// must be a compile-time constant matching the dotted lower-case grammar
// (metricNameRE). Series names are the join key between sampled registry
// metrics, /timeseries filters, and the doctor's time-aware rules — a
// dynamic name would fracture that join and grow the recorder without
// bound. The one sanctioned builder is a function named SeriesName, which
// owns the grammar for computed names.
var SeriesName = &analysis.Analyzer{
	Name: "seriesname",
	Doc: "series recorder keys must be compile-time constants matching the dotted " +
		"lower-case grammar (or built by a SeriesName helper)",
	Run: runSeriesName,
}

func runSeriesName(pass *analysis.Pass) {
	// The recorder itself and the sampling adapters compose names from
	// registry snapshots they already validated.
	if pkgPathMatches(pass.Pkg.PkgPath, "internal/obs/series") {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "internal/obs/series") {
				return true
			}
			if fn.Name() != "Observe" {
				return true
			}
			arg := call.Args[0]
			if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"series name %q violates the dotted-name grammar (lower-case segments joined by dots)", name)
				}
				return true
			}
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if f := calleeFunc(info, inner); f != nil && f.Name() == "SeriesName" {
					return true
				}
			}
			pass.Reportf(arg.Pos(),
				"series name passed to Observe must be a compile-time constant (or a SeriesName builder call): "+
					"dynamic names fracture the sampling/doctor join and unbound recorder growth")
			return true
		})
	}
}
