package checks_test

// The dogfood gate: the full analyzer suite over the whole module must
// report zero unsuppressed diagnostics. This is what keeps `make lint`
// green in CI a property of the tree rather than a habit — any new
// finding (or any malformed //lintx:ignore / //lintx:hotpath directive)
// fails `go test` too. It is also the regression test for the analyzers
// themselves: a check that starts over-reporting breaks this test on
// real code, not just on its fixture.

import (
	"os"
	"path/filepath"
	"testing"

	"webtextie/internal/analysis"
	"webtextie/internal/analysis/checks"
)

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRoot(t)
	l, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadPatterns(filepath.Join(root, "..."))
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern walk is broken", len(pkgs))
	}
	diags := analysis.Run(pkgs, checks.All())
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s: %s", d.Path, d.Line, d.Col, d.Check, d.Message)
	}
	if len(diags) > 0 {
		t.Errorf("%d unsuppressed diagnostics — fix or add a reasoned //lintx:ignore", len(diags))
	}
}
