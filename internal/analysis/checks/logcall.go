package checks

import (
	"go/ast"
	"go/constant"
	"go/types"

	"webtextie/internal/analysis"
)

// LogCall enforces the event-log discipline that makes the third
// observability pillar trustworthy:
//
//   - no ad-hoc printing outside package main: fmt.Print/Printf/Println,
//     fmt.Fprint* aimed at os.Stdout/os.Stderr, and the std log package
//     are all flagged in library packages. Library code reports through
//     internal/obs/evlog (or returns rendered strings for the cmds to
//     print); stray prints bypass retention, determinism, and the /logs
//     endpoint, and corrupt golden-tested cmd output;
//   - evlog message names (Logger.Debug/Info/Warn/Error) and component
//     names (Sink.Logger) must be compile-time constants in the dotted
//     lower-case grammar shared with metric and trace names — the doctor
//     and the /logs filters key on them, and log exports are compared
//     byte-for-byte across runs.
var LogCall = &analysis.Analyzer{
	Name: "logcall",
	Doc: "no fmt/log printing outside package main (library code logs via " +
		"evlog); evlog msg and component names must be constant dotted " +
		"lower-case identifiers",
	Run: runLogCall,
}

// logLevelMethods take a log message as their first argument.
var logLevelMethods = map[string]bool{"Debug": true, "Info": true, "Warn": true, "Error": true}

// printFuncs are the fmt functions that write to stdout directly;
// fprintFuncs write to an explicit writer (flagged only for os.Stdout /
// os.Stderr).
var (
	printFuncs  = map[string]bool{"Print": true, "Printf": true, "Println": true}
	fprintFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}
)

func runLogCall(pass *analysis.Pass) {
	// Binaries own stdout; the evlog package is the exporter layer that
	// renders records (its own formatting is the point, not a violation).
	if pass.Pkg.Types.Name() == "main" || pkgPathMatches(pass.Pkg.PkgPath, "internal/obs/evlog") {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "fmt":
				if printFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"fmt.%s outside package main bypasses the event log: "+
							"emit through evlog (or return the string for the cmd to print)",
						fn.Name())
					return true
				}
				if fprintFuncs[fn.Name()] && len(call.Args) > 0 && isStdStream(info, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"fmt.%s to os.%s outside package main bypasses the event log: "+
							"emit through evlog (or return the string for the cmd to print)",
						fn.Name(), stdStreamName(info, call.Args[0]))
					return true
				}
			case "log":
				pass.Reportf(call.Pos(),
					"log.%s outside package main bypasses the event log: "+
						"emit through evlog (or return an error for the cmd to handle)",
					fn.Name())
				return true
			}
			if !pkgPathMatches(fn.Pkg().Path(), "internal/obs/evlog") || len(call.Args) == 0 {
				return true
			}
			var what string
			switch {
			case logLevelMethods[fn.Name()]:
				what = "log message"
			case fn.Name() == "Logger":
				what = "log component"
			default:
				return true
			}
			arg := call.Args[0]
			if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				if name := constant.StringVal(tv.Value); !traceNameRE.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"%s %q violates the lower-case dotted grammar", what, name)
				}
				return true
			}
			pass.Reportf(arg.Pos(),
				"%s passed to %s must be a compile-time constant: the doctor and "+
					"/logs filters key on it, and log exports are byte-compared across runs",
				what, fn.Name())
			return true
		})
	}
}

// isStdStream reports whether an expression is os.Stdout or os.Stderr.
func isStdStream(info *types.Info, e ast.Expr) bool {
	return stdStreamName(info, e) != ""
}

// stdStreamName returns "Stdout"/"Stderr" for the os package variables,
// "" otherwise.
func stdStreamName(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return ""
	}
	if n := obj.Name(); n == "Stdout" || n == "Stderr" {
		return n
	}
	return ""
}
