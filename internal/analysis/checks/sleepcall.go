package checks

import (
	"go/ast"
	"go/types"

	"webtextie/internal/analysis"
)

// SleepCall flags blocking time primitives — time.Sleep, time.After,
// timers, tickers — in the crawl and dataflow packages. Those paths run
// on the deterministic discrete-event clock: retry backoff, retry-after
// windows, and breaker-open periods are all expressed in virtual
// milliseconds (crawldb.RetryState.NextEligibleMs) and elapse by
// advancing workerFree/hostFree, never by blocking a goroutine. A real
// sleep in a backoff loop would stall the test suite for the backoff's
// wall-clock duration and decouple the schedule from the virtual clock,
// breaking two-run identity.
//
// The check deliberately overlaps the broader determinism analyzer (which
// bans all wall-clock reads outside internal/obs + internal/rng): this
// one stays scoped to the resilience-bearing packages and names the
// virtual-clock alternative, so a finding here survives even if the
// determinism allowlist is ever loosened.
var SleepCall = &analysis.Analyzer{
	Name: "sleepcall",
	Doc: "time.Sleep/After/Tick/NewTimer/NewTicker/AfterFunc in crawler or dataflow paths; " +
		"backoff and delay must advance the virtual clock (crawldb NextEligibleMs), not block",
	Run: runSleepCall,
}

// sleepCallScope lists the package-path suffixes the check patrols: the
// crawl loop, its state store, the synthetic web (latency is data, not
// sleep), and the dataflow executor. The fixture package is included so
// the golden test exercises the check.
var sleepCallScope = []string{
	"internal/crawler",
	"internal/crawldb",
	"internal/dataflow",
	"internal/synthweb",
	"testdata/src/sleepcall",
}

// sleepFuncs are the blocking time-package primitives.
var sleepFuncs = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runSleepCall(pass *analysis.Pass) {
	inScope := false
	for _, suffix := range sleepCallScope {
		if pkgPathMatches(pass.Pkg.PkgPath, suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && sleepFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s blocks a deterministic path: express the delay in virtual ms "+
						"(crawldb Requeue/Defer NextEligibleMs) and let the clock advance", fn.Name())
			}
			return true
		})
	}
}
