// Package checks holds the domain analyzers lintx runs over this
// repository. Each encodes one invariant the reproduction's credibility
// rests on:
//
//	determinism  no wall-clock or math/rand outside internal/obs + internal/rng
//	maprange     no unordered map iteration feeding slices or channels
//	lockcopy     no sync.Mutex/WaitGroup/atomic values copied by value
//	goroleak     no goroutine without a lifecycle signal (WaitGroup, close,
//	             context, or channel it drains)
//	errsink      no discarded errors on store/crawldb write paths
//	metricname   obs registry keys are constants in the dotted-name grammar
//	tracename    trace span/event names are constants in the dotted-name
//	             grammar; attr keys are constant lower_snake identifiers
//	seriesname   series recorder keys are constants in the dotted-name
//	             grammar (the join key of sampling, /timeseries, doctor)
//	profname     profiler scope names are constants in the dotted-name
//	             grammar (the dots define the self/cum tree and the
//	             flame-stack frames)
//	sleepcall    no blocking time primitives in crawler/dataflow paths
//	             (backoff runs on the virtual clock, not time.Sleep)
//	logcall      no fmt/log printing outside package main (library code
//	             reports via evlog); evlog msg/component names are
//	             constants in the dotted-name grammar
//
// Three checks are call-graph-aware: they apply not per package but to
// every function statically reachable from a `//lintx:hotpath <reason>`
// root (see internal/analysis/callgraph), because the IE matching loops'
// throughput budget extends to everything they call:
//
//	allocfree      no heap-allocating constructs in hot functions — map
//	               and slice literals, make(map|chan), new, escaping
//	               composite literals, append without capacity evidence,
//	               string<->[]byte conversions, known-allocating stdlib
//	               calls; diagnostics print the root-to-here call chain
//	boxing         no implicit interface boxing and no variable-capturing
//	               closures in hot functions (the hidden allocations)
//	hotpathpurity  obs/evlog calls in hot functions must be free handle
//	               operations or sit behind an Enabled() guard
//
// The analyzers are deliberately narrow: they encode this repo's
// conventions, not general Go style. Suppress a finding with
// `//lintx:ignore <check> <reason>` on or directly above the line.
package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"webtextie/internal/analysis"
)

// All returns every analyzer in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		MapRange,
		LockCopy,
		GoroLeak,
		ErrSink,
		MetricName,
		TraceName,
		SeriesName,
		ProfName,
		SleepCall,
		LogCall,
		AllocFree,
		Boxing,
		HotPathPurity,
	}
}

// ByName resolves a comma-separated list of analyzer names.
func ByName(list string) ([]*analysis.Analyzer, []string) {
	byName := map[string]*analysis.Analyzer{}
	for _, az := range All() {
		byName[az.Name] = az
	}
	var out []*analysis.Analyzer
	var unknown []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if az, ok := byName[name]; ok {
			out = append(out, az)
		} else {
			unknown = append(unknown, name)
		}
	}
	return out, unknown
}

// pkgPathMatches reports whether path is the package named by suffix or a
// module-qualified form of it ("internal/obs" matches both "internal/obs"
// and "webtextie/internal/obs", but not "x/myinternal/obs").
func pkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeFunc resolves the function or method a call expression invokes,
// unwrapping parens and generic instantiation. Returns nil for calls
// through function-typed variables and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgCall reports whether a call expression is a selector call on the
// named imported package (e.g. sort.Strings) and returns the function name.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPaths ...string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	for _, p := range pkgPaths {
		if f.Pkg().Path() == p {
			return f.Name(), true
		}
	}
	return "", false
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// resultErrorIndexes returns the positions of error-typed results of a
// call (using the instantiated signature recorded by the type-checker).
func resultErrorIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	var out []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				out = append(out, i)
			}
		}
	default:
		if types.Identical(t, errorType) {
			out = append(out, 0)
		}
	}
	return out
}
