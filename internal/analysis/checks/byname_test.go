package checks_test

// Unit tests for the `lintx -checks` name resolution (satellite of the
// hot-path analyzer PR: the flag predates it, the test pins it now that
// check subsets are the documented way to run the hot-path suite alone).

import (
	"testing"

	"webtextie/internal/analysis/checks"
)

func TestByName(t *testing.T) {
	all := checks.All()
	if len(all) != 14 {
		t.Fatalf("All() returns %d analyzers, want 14 (update this test when adding a check)", len(all))
	}
	seen := map[string]bool{}
	for _, az := range all {
		if seen[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		seen[az.Name] = true
	}

	t.Run("single", func(t *testing.T) {
		got, unknown := checks.ByName("allocfree")
		if len(unknown) != 0 || len(got) != 1 || got[0].Name != "allocfree" {
			t.Errorf("got %v unknown=%v", got, unknown)
		}
	})
	t.Run("list preserves order and trims spaces", func(t *testing.T) {
		got, unknown := checks.ByName(" boxing , allocfree ,hotpathpurity")
		if len(unknown) != 0 {
			t.Fatalf("unknown = %v", unknown)
		}
		want := []string{"boxing", "allocfree", "hotpathpurity"}
		if len(got) != len(want) {
			t.Fatalf("got %d analyzers, want %d", len(got), len(want))
		}
		for i, az := range got {
			if az.Name != want[i] {
				t.Errorf("analyzer %d = %q, want %q", i, az.Name, want[i])
			}
		}
	})
	t.Run("unknown names reported", func(t *testing.T) {
		got, unknown := checks.ByName("allocfree,nosuchcheck,alsonot")
		if len(got) != 1 || got[0].Name != "allocfree" {
			t.Errorf("got = %v", got)
		}
		if len(unknown) != 2 || unknown[0] != "nosuchcheck" || unknown[1] != "alsonot" {
			t.Errorf("unknown = %v", unknown)
		}
	})
	t.Run("empty segments ignored", func(t *testing.T) {
		got, unknown := checks.ByName(",determinism,,")
		if len(unknown) != 0 || len(got) != 1 || got[0].Name != "determinism" {
			t.Errorf("got %v unknown=%v", got, unknown)
		}
	})
}
