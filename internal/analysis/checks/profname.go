package checks

import (
	"go/ast"
	"go/constant"

	"webtextie/internal/analysis"
)

// ProfName enforces the cost-profile pillar's naming contract at every
// call site of prof.Profiler.Scope: like metric and series names, a
// scope name must be a compile-time constant matching the dotted
// lower-case grammar (metricNameRE). Scope names are structural — the
// dots define the self/cumulative tree, the flame-stack frames, and the
// /profile filters — so a dynamic name would corrupt the tree shape and
// grow the profiler without bound. The one sanctioned builder is a
// function named ScopeName, which owns the grammar for computed names
// (the dataflow executor uses it to derive dataflow.op.<name> scopes).
var ProfName = &analysis.Analyzer{
	Name: "profname",
	Doc: "profiler scope names must be compile-time constants matching the dotted " +
		"lower-case grammar (or built by a ScopeName helper)",
	Run: runProfName,
}

func runProfName(pass *analysis.Pass) {
	// The profiler itself composes names it already validated (Merge,
	// Narrow, export derivation).
	if pkgPathMatches(pass.Pkg.PkgPath, "internal/obs/prof") {
		return
	}
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !pkgPathMatches(fn.Pkg().Path(), "internal/obs/prof") {
				return true
			}
			if fn.Name() != "Scope" {
				return true
			}
			arg := call.Args[0]
			if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"profiler scope name %q violates the dotted-name grammar (lower-case segments joined by dots)", name)
				}
				return true
			}
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if f := calleeFunc(info, inner); f != nil && f.Name() == "ScopeName" {
					return true
				}
			}
			pass.Reportf(arg.Pos(),
				"scope name passed to Scope must be a compile-time constant (or a ScopeName builder call): "+
					"dynamic names corrupt the self/cum tree and unbound profiler growth")
			return true
		})
	}
}
