package checks

import (
	"go/ast"
	"go/types"

	"webtextie/internal/analysis"
)

// LockCopy flags synchronization state copied by value: parameters and
// receivers that take a sync.Mutex/RWMutex/WaitGroup (or a struct
// containing one, or a sync/atomic value) by value, plain assignments
// that copy such a value, and range loops whose value variable copies
// one. A copied mutex guards nothing — goroutines lock different
// memory — and a copied WaitGroup waits on a counter nobody decrements;
// under the ROADMAP's heavy-parallel-traffic north star this is the most
// expensive class of silent bug.
//
// This overlaps `go vet -copylocks` on purpose: the vet pass only runs in
// `make verify`, while lintx also covers the repo-specific analyzers, so
// the invariant is stated in both gates.
var LockCopy = &analysis.Analyzer{
	Name: "lockcopy",
	Doc: "sync.Mutex/RWMutex/WaitGroup or sync/atomic value passed, received, or assigned by value; " +
		"copies desynchronize — share locks by pointer",
	Run: runLockCopy,
}

// syncTypes and atomicTypes are the by-value-unsafe types.
var syncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}
var atomicTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Value": true, "Pointer": true,
}

func runLockCopy(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkLockFields(pass, info, n.Recv, "receiver")
				}
				checkLockFields(pass, info, n.Type.Params, "parameter")
			case *ast.FuncLit:
				checkLockFields(pass, info, n.Type.Params, "parameter")
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if copiesLockValue(info, rhs) {
						pass.Reportf(rhs.Pos(),
							"assignment copies a value containing %s by value", lockIn(info.Types[rhs].Type))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := info.Types[n.Value].Type; t != nil && containsLock(t, nil) {
						pass.Reportf(n.Value.Pos(),
							"range value copies a value containing %s per iteration", lockIn(t))
					}
				}
			}
			return true
		})
	}
}

// checkLockFields flags by-value lock-carrying entries of a field list.
func checkLockFields(pass *analysis.Pass, info *types.Info, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		if _, isPtr := field.Type.(*ast.StarExpr); isPtr {
			continue
		}
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil || !containsLock(tv.Type, nil) {
			continue
		}
		pass.Reportf(field.Pos(), "%s passes a value containing %s by value: use a pointer", kind, lockIn(tv.Type))
	}
}

// copiesLockValue reports whether rhs copies existing memory (identifier,
// field, dereference, or element read — not a fresh composite literal or
// call result) of a lock-containing type.
func copiesLockValue(info *types.Info, rhs ast.Expr) bool {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := info.Types[rhs]
	return ok && tv.Type != nil && containsLock(tv.Type, nil)
}

// containsLock walks a type for by-value sync or sync/atomic state.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if syncTypes[obj.Name()] {
					return true
				}
			case "sync/atomic":
				if atomicTypes[obj.Name()] {
					return true
				}
			}
		}
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}

// lockIn names the first lock type found inside t, for messages.
func lockIn(t types.Type) string {
	name := "a lock"
	var walk func(types.Type, map[types.Type]bool) bool
	walk = func(t types.Type, seen map[types.Type]bool) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		switch t := t.(type) {
		case *types.Named:
			if obj := t.Obj(); obj != nil && obj.Pkg() != nil {
				p := obj.Pkg().Path()
				if (p == "sync" && syncTypes[obj.Name()]) || (p == "sync/atomic" && atomicTypes[obj.Name()]) {
					name = p + "." + obj.Name()
					return true
				}
			}
			return walk(t.Underlying(), seen)
		case *types.Struct:
			for i := 0; i < t.NumFields(); i++ {
				if walk(t.Field(i).Type(), seen) {
					return true
				}
			}
		case *types.Array:
			return walk(t.Elem(), seen)
		}
		return false
	}
	walk(t, map[types.Type]bool{})
	return name
}
