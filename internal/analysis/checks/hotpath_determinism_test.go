package checks

import (
	"path/filepath"
	"strings"
	"testing"

	"webtextie/internal/analysis"
)

// TestHotPathReportDeterminism pins the acceptance bar for the
// call-graph-aware checks: two runs from two fresh loaders — fresh file
// sets, fresh type universes, fresh sessions — must render byte-identical
// reports. Map iteration anywhere in graph construction, root collection,
// or reachability would break this.
func TestHotPathReportDeterminism(t *testing.T) {
	render := func() string {
		t.Helper()
		loader, err := analysis.NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		var pkgs []*analysis.Package
		for _, name := range []string{"allocfree", "boxing", "hotpathpurity"} {
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
		azs := []*analysis.Analyzer{AllocFree, Boxing, HotPathPurity}
		var b strings.Builder
		for _, d := range analysis.Run(pkgs, azs) {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("hot-path reports diverge across fresh runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "allocfree:") || !strings.Contains(a, "boxing:") || !strings.Contains(a, "hotpathpurity:") {
		t.Fatalf("expected findings from all three checks, got:\n%s", a)
	}
}
