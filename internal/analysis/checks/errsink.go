package checks

import (
	"go/ast"
	"go/types"

	"webtextie/internal/analysis"
)

// ErrSink flags discarded errors on the persistence write paths: any call
// into internal/store or internal/crawldb whose error result is dropped —
// as a bare expression statement, behind go/defer, or assigned to the
// blank identifier. The store is the pipeline's end product ("structured
// fact databases", §1); a swallowed Write or Close error silently
// truncates a chunk that an 80-day crawl paid for. Chunked storage gives
// failure *isolation*, not failure *tolerance* — the caller still has to
// look.
//
// Intentional best-effort writes must say so:
// //lintx:ignore errsink <why losing this write is acceptable>.
var ErrSink = &analysis.Analyzer{
	Name: "errsink",
	Doc: "error result of an internal/store or internal/crawldb call discarded " +
		"(expression statement, go/defer, or blank assignment)",
	Run: runErrSink,
}

// errSinkPkgs are the guarded persistence packages.
var errSinkPkgs = []string{"internal/store", "internal/crawldb"}

func runErrSink(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkSinkCall(pass, info, call, "ignored")
				}
			case *ast.DeferStmt:
				checkSinkCall(pass, info, n.Call, "discarded by defer")
			case *ast.GoStmt:
				checkSinkCall(pass, info, n.Call, "discarded by go")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !isSinkCall(info, call) {
					return true
				}
				for _, i := range resultErrorIndexes(info, call) {
					if i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(id.Pos(),
							"error from %s assigned to blank: check write-path errors", calleeName(info, call))
					}
				}
			}
			return true
		})
	}
}

// checkSinkCall reports a guarded call whose error results vanish whole.
func checkSinkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, how string) {
	if !isSinkCall(info, call) || len(resultErrorIndexes(info, call)) == 0 {
		return
	}
	pass.Reportf(call.Pos(), "error from %s %s: check write-path errors", calleeName(info, call), how)
}

// isSinkCall reports whether the callee lives in a guarded package.
func isSinkCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	for _, p := range errSinkPkgs {
		if pkgPathMatches(f.Pkg().Path(), p) {
			return true
		}
	}
	return false
}

// calleeName renders the callee for messages (pkg.Func or Type.Method).
func calleeName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return "call"
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Pkg().Name() + "." + f.Name()
}
