package checks

import (
	"go/ast"
	"go/types"

	"webtextie/internal/analysis"
	"webtextie/internal/analysis/callgraph"
)

// HotPathPurity polices the seam between the hot path and the
// observability plane. The hot-path reachability closure deliberately
// stops at internal/obs (see hotReach) — obs code is engineered to its
// own discipline — but the *calls into* that plane from hot code are
// exactly where diagnostics cost leaks into the per-document budget:
// evlog emission renders attributes, sampling hashes keys, registry
// lookups take locks. So inside hot functions, obs calls must either be
// free handle operations (Enabled, Counter.Inc/Add, Gauge.Set, Observe,
// and the trace attr constructors String/Int/Bool, which are cheap
// struct literals consumed by an already-guarded call) or sit inside an
// `if ....Enabled() { ... }` guard, the repo's established pattern for
// keeping log construction off the fast path.
var HotPathPurity = &analysis.Analyzer{
	Name: "hotpathpurity",
	Doc: "obs/evlog calls in functions reachable from a //lintx:hotpath " +
		"root must be free handle operations (Enabled, Inc, Add, Set, " +
		"Observe, attr constructors) or sit behind an Enabled() guard",
	Run: runHotPathPurity,
}

// purityAllowed are the obs-plane operations cheap enough for hot code:
// guard probes, pre-resolved metric handle updates, and the by-value
// trace attr constructors.
// Enter/Exit are the profiler's wall-lane bracket pair: two atomic adds
// and a clock read on pre-resolved scope handles, alloc-free by the prof
// package's own AllocsPerRun test.
var purityAllowed = map[string]bool{
	"Enabled": true, "Inc": true, "Add": true, "Set": true, "Observe": true,
	"String": true, "Int": true, "Bool": true,
	"Enter": true, "Exit": true,
}

func runHotPathPurity(pass *analysis.Pass) {
	st, ok := hotReach(pass)
	if !ok {
		return
	}
	// The obs packages themselves are off the hot closure by
	// construction, but guard anyway: if one is ever annotated, its
	// internal calls are its own business.
	if isObsPath(pass.Pkg.PkgPath) {
		return
	}
	info := pass.TypesInfo()
	hotDecls(pass, st, func(fd *ast.FuncDecl, fn *types.Func, chain string) {
		guards := enabledGuardRanges(info, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || callee.Pkg() == nil || !isObsPath(callee.Pkg().Path()) {
				return true
			}
			if purityAllowed[callee.Name()] {
				return true
			}
			if inGuarded(call.Pos(), guards) {
				return true
			}
			pass.Reportf(call.Pos(),
				"obs call %s in hot path (%s) must be behind an Enabled() guard",
				callgraph.Label(callee), chain)
			return true
		})
	})
}
