package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"webtextie/internal/analysis"
	"webtextie/internal/analysis/callgraph"
)

// This file is the shared substrate of the call-graph-aware hot-path
// checks (allocfree, boxing, hotpathpurity): the memoized call graph and
// hot-root reachability closure, the Enabled()-guard cold-region
// detector, and the obs-plane boundary predicate.

// hotState is built once per run and shared by every hot-path check
// across every package.
type hotState struct {
	graph *callgraph.Graph
	reach *callgraph.Reach
}

// hotReach returns the run's hot-path state. ok is false when the pass
// has no session (constructed outside analysis.Run) or the run has no
// //lintx:hotpath roots; the hot-path checks no-op then.
func hotReach(pass *analysis.Pass) (*hotState, bool) {
	sess := pass.Session
	if sess == nil || len(sess.Hotpaths()) == 0 {
		return nil, false
	}
	v := sess.Memo("checks.hotstate", func() any {
		g := callgraph.Build(sess.Pkgs)
		roots := make([]*types.Func, 0, len(sess.Hotpaths()))
		//lintx:ignore maprange Reachable sorts roots into deterministic node order before traversal
		for fn := range sess.Hotpaths() {
			roots = append(roots, fn)
		}
		// The observability plane is the hot path's boundary, not its
		// body: obs handles are engineered separately (lock-free counters,
		// guarded logging), and traversing into them would hold evlog
		// internals to the matching loop's allocation discipline. The
		// hotpathpurity check polices the call *into* the plane instead.
		r := g.Reachable(roots, func(n *callgraph.Node) bool {
			return isObsPath(n.Pkg.PkgPath)
		})
		return &hotState{graph: g, reach: r}
	})
	return v.(*hotState), true
}

// isObsPath reports whether an import path is internal/obs or one of its
// subpackages (evlog, trace, ...).
func isObsPath(path string) bool {
	return pkgPathMatches(path, "internal/obs") || strings.Contains("/"+path, "/internal/obs/")
}

// hotDecls calls fn for every function declaration in the pass's package
// that is reachable from a hot-path root, with its root-to-here chain.
func hotDecls(pass *analysis.Pass, st *hotState, visit func(fd *ast.FuncDecl, fn *types.Func, chain string)) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !st.reach.Contains(fn) {
				continue
			}
			visit(fd, fn, st.reach.ChainString(fn))
		}
	}
}

// posRange is a half-open source range.
type posRange struct{ from, to token.Pos }

// enabledGuardRanges returns the body ranges of `if ....Enabled() { ... }`
// statements. Code inside such a block is cold by construction — the
// guard is the repo's established pattern for keeping diagnostics off
// the hot path — so allocfree and boxing exempt it and hotpathpurity
// requires it around obs calls.
func enabledGuardRanges(info *types.Info, body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condCallsEnabled(info, ifs.Cond) {
			out = append(out, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

// condCallsEnabled reports whether a condition expression contains a
// call to a method named Enabled.
func condCallsEnabled(info *types.Info, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Enabled" {
				found = true
			}
		}
		return !found
	})
	return found
}

// inGuarded reports whether pos falls inside any of the ranges.
func inGuarded(pos token.Pos, ranges []posRange) bool {
	for _, r := range ranges {
		if pos >= r.from && pos < r.to {
			return true
		}
	}
	return false
}

// pointerShaped reports whether values of t fit an interface's data word
// without boxing: pointers, channels, maps, funcs, unsafe.Pointer — and
// interfaces themselves, where conversion is a repack, not a box.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}
