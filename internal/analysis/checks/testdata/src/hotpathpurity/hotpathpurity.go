// Package hotpathpurity exercises the hotpathpurity analyzer: obs-plane
// calls from hot functions must be free handle operations or sit behind
// an Enabled() guard. Pre-resolved counter updates and guarded logging
// are clean; unguarded emission, registry lookups, and sampler chains in
// hot code are flagged; cold twins and suppressed sites are not.
package hotpathpurity

import (
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// scanner holds pre-resolved obs handles, the pattern the check rewards:
// lookups happen at construction, the hot loop touches only handles.
type scanner struct {
	lg    evlog.Logger
	reg   *obs.Registry
	cHits *obs.Counter
}

// HotScan is the fixture's hot root.
//
//lintx:hotpath fixture: per-document scan loop.
func (s *scanner) HotScan(text string) int {
	s.cHits.Inc() // clean: pre-resolved handle op
	if s.lg.Enabled() {
		// clean: guarded emission, attr constructors included
		s.lg.Debug("fixture.scan", 0, trace.Int("len", int64(len(text))))
	}
	s.lg.Debug("fixture.scan.unguarded", 1)       // flagged
	s.reg.Counter("fixture.lookup").Inc()         // flagged: registry lookup
	s.lg.Sample("k", 4).Debug("fixture.scan", 2)  // flagged twice: Sample and Debug
	return len(text)
}

// HotLegacy carries a reasoned suppression on an unguarded emission.
//
//lintx:hotpath fixture: legacy diagnostics awaiting the guard sweep.
func (s *scanner) HotLegacy() {
	//lintx:ignore hotpathpurity guard sweep lands with the PR8 log audit
	s.lg.Debug("fixture.legacy", 3)
}

// coldScan mirrors HotScan without an annotation: clean.
func (s *scanner) coldScan() {
	s.lg.Debug("fixture.cold", 4)
	s.reg.Counter("fixture.cold").Inc()
}

var _ = (*scanner).coldScan
