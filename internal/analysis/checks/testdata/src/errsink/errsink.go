// Package errsink exercises the errsink analyzer: discarded errors on
// internal/store write paths are flagged; checked calls and suppressed
// best-effort writes are not.
package errsink

import "webtextie/internal/store"

// Drop swallows the write error and blanks the close error — both flagged.
func Drop(w *store.Writer, v any) {
	w.Write(v)
	_ = w.Close()
}

// DeferClose discards the final chunk flush behind defer — flagged.
func DeferClose(w *store.Writer, v any) error {
	defer w.Close()
	return w.Write(v)
}

// Checked is the correct shape — not flagged.
func Checked(w *store.Writer, v any) error {
	if err := w.Write(v); err != nil {
		return err
	}
	return w.Close()
}

// BestEffort is suppressed: an advisory write whose loss is acceptable.
func BestEffort(w *store.Writer, v any) {
	//lintx:ignore errsink advisory cache write; loss is acceptable
	w.Write(v)
}
