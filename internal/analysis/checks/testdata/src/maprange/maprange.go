// Package maprange exercises the maprange analyzer: map iteration feeding
// an ordered sink without a sort is flagged; the collect-then-sort idiom
// and suppressed loops are not.
package maprange

import "sort"

// Keys leaks map order: appends without a subsequent sort — flagged.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys collects then sorts — the sanctioned idiom, not flagged.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stream sends map entries on a channel in iteration order — flagged.
func Stream(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}

// Batch is suppressed: the consumer merges and sorts downstream.
func Batch(m map[string]int) []string {
	var out []string
	//lintx:ignore maprange consumer sorts the merged batch downstream
	for k := range m {
		out = append(out, k)
	}
	return out
}
