// Package determinism exercises the determinism analyzer: wall-clock
// reads and math/rand imports are flagged; suppressed lines are not.
package determinism

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice — both flagged.
func Elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// Roll draws from the global math/rand source; the import is flagged.
func Roll() int { return rand.Intn(6) }

// Stamp is suppressed: the harness wants one real timestamp.
func Stamp() time.Time {
	//lintx:ignore determinism report header wants one real timestamp
	return time.Now()
}
