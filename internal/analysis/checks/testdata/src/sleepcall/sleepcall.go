// Package sleepcall exercises the sleepcall analyzer: blocking time
// primitives in crawl/dataflow paths are flagged; virtual-clock
// bookkeeping and suppressed lines are not.
package sleepcall

import "time"

// retryState mimics the crawldb bookkeeping the check points at.
type retryState struct {
	attempts       int
	nextEligibleMs int64
}

// BackoffBlocking sleeps out the backoff for real — flagged.
func BackoffBlocking(attempt int) {
	time.Sleep(time.Duration(500<<attempt) * time.Millisecond)
}

// WaitWithTimeout races a channel against time.After — flagged.
func WaitWithTimeout(done chan struct{}) bool {
	select {
	case <-done:
		return true
	case <-time.After(2 * time.Second):
		return false
	}
}

// PollTicker spins a ticker — flagged twice (NewTicker and Tick).
func PollTicker() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	_ = time.Tick(time.Minute)
}

// BackoffVirtual is the sanctioned shape: the delay becomes data on the
// virtual clock, nothing blocks — clean.
func BackoffVirtual(rs *retryState, nowMs int64, attempt int) {
	rs.attempts = attempt + 1
	rs.nextEligibleMs = nowMs + int64(500<<attempt)
}

// DurationMath uses only pure time constructors — clean.
func DurationMath(ms int64) time.Duration {
	return time.Duration(ms) * time.Millisecond
}

// ShutdownGrace is suppressed: a process-exit grace period is wall-clock
// by nature and runs outside any deterministic path.
func ShutdownGrace() {
	//lintx:ignore sleepcall process shutdown grace period is wall-clock by design
	time.Sleep(10 * time.Millisecond)
}
