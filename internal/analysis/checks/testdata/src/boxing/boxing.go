// Package boxing exercises the boxing analyzer: concrete values boxed
// into interface parameters and results, capturing closures, and the
// clean cases — pointers, constants, guarded blocks, cold twins, and a
// suppressed legacy site.
package boxing

type sink struct{ vals []any }

func (s *sink) Add(v any) { s.vals = append(s.vals, v) }

func emitAll(vs ...any) int { return len(vs) }

// HotEmit boxes a concrete int into any, once directly and once through
// a variadic; the pointer and constant arguments are free.
//
//lintx:hotpath fixture: per-token emit loop.
func HotEmit(s *sink, n int) int {
	s.Add(n)  // flagged: int → any
	s.Add(&n) // clean: pointer-shaped
	s.Add(42) // clean: constant, lives in static data
	return emitAll(n, &n) // flagged once: first variadic element boxes
}

// HotClosure captures its locals; the closure allocates when it escapes.
//
//lintx:hotpath fixture: span accumulation loop.
func HotClosure(text string) func() int {
	total := 0
	return func() int { // flagged: captures text, total
		total += len(text)
		return total
	}
}

// HotReturn boxes a concrete struct into an interface result.
//
//lintx:hotpath fixture: per-match verdict constructor.
func HotReturn(n int) any {
	if n > 0 {
		return point{x: n} // flagged: point → any
	}
	return &point{x: n} // clean: pointer-shaped
}

type point struct{ x int }

type gate struct{ on bool }

func (g gate) Enabled() bool { return g.on }

// HotGuarded boxes only inside an Enabled() guard — cold, clean.
//
//lintx:hotpath fixture: scan loop with guarded diagnostics.
func HotGuarded(g gate, s *sink, n int) {
	if g.Enabled() {
		s.Add(n)
	}
}

// HotLegacy carries a reasoned suppression.
//
//lintx:hotpath fixture: legacy emit path awaiting a typed sink.
func HotLegacy(s *sink, n int) {
	//lintx:ignore boxing typed sink lands with the PR8 emit rewrite
	s.Add(n)
}

// coldEmit mirrors HotEmit without an annotation: clean.
func coldEmit(s *sink, n int) func() int {
	s.Add(n)
	return func() int { return n }
}

var _ = coldEmit
