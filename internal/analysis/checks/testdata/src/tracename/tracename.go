// Package tracename exercises the tracename analyzer: non-constant or
// grammar-violating span/event names and attr keys are flagged; constant
// dotted names, lower_snake labels, the TraceName builder, and suppressed
// legacy names are not.
package tracename

import "webtextie/internal/obs/trace"

// Good uses constant dotted names and lower_snake attr keys — not flagged.
func Good(rec *trace.Recorder) {
	tc := rec.Start("fixture.record", "doc-1", 0, trace.String("host", "h1"))
	sp := tc.StartSpan("fixture.op.parse", 1, trace.Int("attempt", 0))
	sp.Event("fixture.parse.ok", 2)
	sp.End(3)
	tc.Error("parse_failed", 4)
	rec.Mark("checkpoint", 5)
	tc.Finish(6)
}

// BadGrammar uses an upper-case, undotted span name — flagged.
func BadGrammar(rec *trace.Recorder) {
	rec.Start("FixtureRecord", "doc-2", 0).Finish(1)
}

// DynamicEvent interpolates data into an event name — flagged.
func DynamicEvent(tc trace.Context, verdict string) {
	tc.Event("fixture."+verdict, 0)
}

// BadAttrKey uses a dashed attribute key — flagged.
func BadAttrKey(tc trace.Context) {
	tc.Event("fixture.judge", 0, trace.String("Net-Text-Len", "9"))
}

// DynamicErrClass computes the error class — flagged (classes are filter
// keys on /traces).
func DynamicErrClass(tc trace.Context, cause string) {
	tc.Error(cause, 0)
}

// Built routes a computed span name through the sanctioned builder — not
// flagged.
func Built(tc trace.Context, op string) {
	tc.StartSpan(trace.TraceName("fixture.op", op), 0).End(1)
}

// Legacy is suppressed: an exporter consumed the old name until the
// migration lands.
func Legacy(tc trace.Context) {
	//lintx:ignore tracename legacy event name until the exporter migration lands
	tc.Event("LegacyEvent", 0)
}
