// Package profname exercises the profname analyzer: non-constant or
// grammar-violating profiler scope names are flagged; constant dotted
// names, the ScopeName builder, and suppressed legacy keys are not.
package profname

import "webtextie/internal/obs/prof"

// Good uses a constant dotted name — not flagged.
func Good(p *prof.Profiler) {
	p.Scope("fixture.good.stage")
}

// BadGrammar violates the dotted-name grammar — flagged.
func BadGrammar(p *prof.Profiler) {
	p.Scope("Fixture-Scope")
}

// Dynamic interpolates operator state into the name — flagged.
func Dynamic(p *prof.Profiler, op string) {
	p.Scope("fixture." + op)
}

// Built routes a computed name through the sanctioned builder — not
// flagged.
func Built(p *prof.Profiler, op string) {
	p.Scope(prof.ScopeName("fixture.op", op))
}

// Legacy is suppressed: a profile key kept until the dashboards migrate.
func Legacy(p *prof.Profiler) {
	//lintx:ignore profname legacy profile key until the dashboards migrate
	p.Scope("LegacyScope")
}
