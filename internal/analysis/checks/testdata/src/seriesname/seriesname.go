// Package seriesname exercises the seriesname analyzer: non-constant or
// grammar-violating series keys are flagged; constant dotted names, the
// SeriesName builder, and suppressed legacy keys are not.
package seriesname

import "webtextie/internal/obs/series"

// Good uses a constant dotted name — not flagged.
func Good(rec *series.Recorder) {
	rec.Observe("fixture.good.total", 1000, 1)
}

// BadGrammar violates the dotted-name grammar — flagged.
func BadGrammar(rec *series.Recorder) {
	rec.Observe("Fixture-Series", 1000, 1)
}

// Dynamic interpolates shard state into the key — flagged.
func Dynamic(rec *series.Recorder, shard string) {
	rec.Observe("fixture."+shard, 1000, 1)
}

// SeriesName is the sanctioned builder; it owns the grammar for computed
// names.
func SeriesName(metric string) string { return "fixture." + metric }

// Built routes a computed name through the builder — not flagged.
func Built(rec *series.Recorder, metric string) {
	rec.Observe(SeriesName(metric), 1000, 1)
}

// Legacy is suppressed: a dashboard key kept until the migration lands.
func Legacy(rec *series.Recorder) {
	//lintx:ignore seriesname legacy dashboard key until the migration lands
	rec.Observe("LegacySeries", 1000, 1)
}
