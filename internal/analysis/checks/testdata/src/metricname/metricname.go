// Package metricname exercises the metricname analyzer: non-constant or
// grammar-violating registry keys are flagged; constant dotted names, the
// MetricName builder, and suppressed legacy keys are not.
package metricname

import "webtextie/internal/obs"

// Good uses a constant dotted name — not flagged.
func Good(reg *obs.Registry) {
	reg.Counter("fixture.good.total").Inc()
}

// BadGrammar violates the dotted-name grammar — flagged.
func BadGrammar(reg *obs.Registry) {
	reg.Counter("Fixture-Total").Inc()
}

// Dynamic interpolates request data into the key — flagged.
func Dynamic(reg *obs.Registry, host string) {
	reg.Counter("fixture." + host).Inc()
}

// MetricName is the sanctioned builder; it owns the grammar for computed
// names.
func MetricName(op string) string { return "fixture." + op }

// Built routes a computed name through the builder — not flagged.
func Built(reg *obs.Registry, op string) {
	reg.Counter(MetricName(op)).Inc()
}

// Legacy is suppressed: a dashboard key kept until the migration lands.
func Legacy(reg *obs.Registry) {
	//lintx:ignore metricname legacy dashboard key until the migration lands
	reg.Counter("LegacyTotal").Inc()
}
