// Package allocfree exercises the allocfree analyzer: every flagged
// construct inside hot-reachable functions, the accepted prealloc and
// lookup idioms that stay clean, Enabled()-guarded cold regions, an
// ignore-suppressed legacy site, and an unannotated cold twin proving
// reachability scoping.
package allocfree

import (
	"fmt"
	"strings"
)

var table = map[string]int{"a": 1}

// HotScan is the fixture's root; helper below is hot only through it.
//
//lintx:hotpath fixture: innermost per-document scan loop.
func HotScan(text string) int {
	m := map[byte]int{'a': 1} // flagged: map literal
	b := []byte(text)         // flagged: conversion
	var acc []int
	acc = append(acc, helper(b)) // flagged: append without evidence
	return len(acc) + len(m)
}

// helper is hot via HotScan, not annotated itself.
func helper(b []byte) int {
	s := string(b) // flagged: conversion
	return len(s)
}

// HotEscapes collects the remaining flagged constructs.
//
//lintx:hotpath fixture: per-token classification loop.
func HotEscapes(n int) int {
	p := new(int)            // flagged: new
	q := &point{x: n}        // flagged: &composite literal
	w := []int{1, 2}         // flagged: slice literal
	mm := make(map[int]int)  // flagged: make(map)
	ch := make(chan int, 1)  // flagged: make(chan)
	s := fmt.Sprint(n)       // flagged: fmt call
	t := strings.ToLower(s)  // flagged: strings.ToLower
	ch <- n
	return *p + q.x + w[0] + len(mm) + len(t) + <-ch
}

type point struct{ x int }

// HotPrealloc shows the evidence idioms: 3-arg make, parameter-owned
// buffers, reslices of them, and appends to any of those — all clean.
//
//lintx:hotpath fixture: batch accumulation loop with caller-owned buffers.
func HotPrealloc(dst []int, n int) []int {
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	out := dst[:0]
	out = append(out, buf...)
	scratch := make([]int, n) // make([]T, n) itself is the prealloc idiom
	_ = scratch
	return out
}

// HotLookup indexes a map with a converted key: the compiler elides that
// allocation, so it is clean.
//
//lintx:hotpath fixture: per-token dictionary probe.
func HotLookup(b []byte) int {
	return table[string(b)]
}

type gate struct{ on bool }

func (g gate) Enabled() bool { return g.on }

// HotGuarded allocates only inside an Enabled() guard: cold by
// construction, clean.
//
//lintx:hotpath fixture: scan loop with guarded diagnostics.
func HotGuarded(g gate, n int) string {
	if g.Enabled() {
		return fmt.Sprintf("n=%d", n)
	}
	return ""
}

// HotLegacy carries a reasoned suppression on a known-allocating call.
//
//lintx:hotpath fixture: legacy fold path awaiting the ASCII rewrite.
func HotLegacy(s string) string {
	//lintx:ignore allocfree legacy case folding; ASCII fast path lands next pass
	return strings.ToLower(s)
}

// Cold mirrors HotScan without an annotation: nothing here is flagged.
func Cold(text string) int {
	m := map[byte]int{'a': 1}
	b := []byte(text)
	var acc []int
	acc = append(acc, len(b))
	return len(acc) + len(m)
}
