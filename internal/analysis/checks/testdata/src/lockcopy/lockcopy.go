// Package lockcopy exercises the lockcopy analyzer: receivers, params,
// and assignments that copy a lock by value are flagged; pointer passing
// and suppressed copies are not.
package lockcopy

import "sync"

// Guarded couples a mutex with the state it guards.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the receiver's mutex on every call — flagged.
func (g Guarded) ByValue() int { return g.n }

// Take copies its argument's mutex — flagged.
func Take(g Guarded) int { return g.n }

// Snapshot copies the whole guarded struct — flagged.
func Snapshot(g *Guarded) int {
	c := *g
	return c.n
}

// Ptr passes by pointer — not flagged.
func (g *Guarded) Ptr() int { return g.n }

// FromZero is suppressed: copying the zero value before first use.
func FromZero() int {
	var g Guarded
	//lintx:ignore lockcopy zero-value copy before the lock is ever held
	c := g
	return c.n
}
