// Package logcall exercises the logcall analyzer: ad-hoc printing in
// library code and non-constant or grammar-violating evlog names are
// flagged; evlog emission, buffer writes, and suppressed cases are not.
package logcall

import (
	"fmt"
	"log"
	"os"
	"strings"

	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// Good reports through evlog with constant dotted names — not flagged.
func Good(sink *evlog.Sink) {
	lg := sink.Logger("fixture.engine")
	lg.Info("fixture.start", 0, trace.Int("items", 3))
	lg.Warn("fixture.degraded", 1, trace.String("cause", "timeout"))
}

// GoodBuffer renders into a builder for the cmd to print — not flagged
// (fmt.Fprintf to a non-stream writer is fine).
func GoodBuffer() string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary: %d items\n", 3)
	return b.String()
}

// BadPrintf prints straight to stdout from library code — flagged.
func BadPrintf(n int) {
	fmt.Printf("processed %d items\n", n)
}

// BadFprintStderr aims Fprintln at os.Stderr — flagged.
func BadFprintStderr(err error) {
	fmt.Fprintln(os.Stderr, "warning:", err)
}

// BadStdLog uses the std log package — flagged.
func BadStdLog(err error) {
	log.Printf("fixture failed: %v", err)
}

// BadMsgGrammar uses an undotted upper-case message — flagged.
func BadMsgGrammar(lg evlog.Logger) {
	lg.Info("FixtureDone", 2)
}

// BadDynamicMsg interpolates data into the message — flagged.
func BadDynamicMsg(lg evlog.Logger, verdict string) {
	lg.Debug("fixture."+verdict, 3)
}

// BadComponent computes the component name — flagged.
func BadComponent(sink *evlog.Sink, shard string) {
	sink.Logger("fixture."+shard).Info("fixture.shard", 4)
}

// Legacy is suppressed: the progress print predates the event log.
func Legacy(n int) {
	//lintx:ignore logcall progress print predates the event log; migrating next pass
	fmt.Println("progress:", n)
}
