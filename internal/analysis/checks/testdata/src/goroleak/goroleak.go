// Package goroleak exercises the goroleak analyzer: goroutines with no
// lifecycle signal are flagged; WaitGroup/channel/context-bound ones and
// suppressed daemons are not.
package goroleak

import (
	"context"
	"sync"
)

// FireAndForget launches a worker nothing waits on — flagged.
func FireAndForget() {
	go func() {
		println("orphan")
	}()
}

// Orphan passes no lifecycle-shaped argument — flagged.
func Orphan() {
	go step(3)
}

func step(n int) { _ = n }

// Drain ends when the producer closes the channel — not flagged.
func Drain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Tracked hands its completion to a WaitGroup — not flagged.
func Tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// Watched passes a context to a named function — not flagged.
func Watched(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// Daemon is suppressed: a process-lifetime flusher by design.
func Daemon() {
	//lintx:ignore goroleak process-lifetime metrics flusher by design
	go func() {
		println("flush")
	}()
}
