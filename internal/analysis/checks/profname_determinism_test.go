package checks

import (
	"path/filepath"
	"strings"
	"testing"

	"webtextie/internal/analysis"
)

// TestProfNameReportDeterminism runs profname over its fixture from two
// fresh loaders — fresh file sets, fresh type universes — and demands
// byte-identical reports, the same bar the hot-path checks meet.
func TestProfNameReportDeterminism(t *testing.T) {
	render := func() string {
		t.Helper()
		loader, err := analysis.NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "profname"))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{ProfName}) {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("profname reports diverge across fresh runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "profname:") {
		t.Fatalf("expected profname findings, got:\n%s", a)
	}
}
