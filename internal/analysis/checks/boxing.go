package checks

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"webtextie/internal/analysis"
)

// Boxing flags the two classic *hidden* allocations in hot-path code —
// the ones allocfree's syntactic patterns cannot see because no literal
// or make appears in the source:
//
//   - implicit interface conversions: passing or returning a concrete,
//     non-pointer-shaped value where an interface is expected boxes the
//     value onto the heap (constants are exempt — the compiler
//     materializes them in static data);
//   - variable-capturing closures: a func literal that references
//     variables of its enclosing function forces a closure object (and
//     usually the captured variables) onto the heap the moment it
//     escapes, and Go's escape analysis gives no source-level signal.
//
// Scope and exemptions mirror allocfree: only functions reachable from a
// //lintx:hotpath root, and Enabled()-guarded blocks are cold.
var Boxing = &analysis.Analyzer{
	Name: "boxing",
	Doc: "no implicit interface boxing (concrete non-pointer values passed " +
		"or returned as interfaces) and no variable-capturing closures in " +
		"functions reachable from a //lintx:hotpath root",
	Run: runBoxing,
}

func runBoxing(pass *analysis.Pass) {
	st, ok := hotReach(pass)
	if !ok {
		return
	}
	info := pass.TypesInfo()
	qual := types.RelativeTo(pass.Pkg.Types)
	hotDecls(pass, st, func(fd *ast.FuncDecl, fn *types.Func, chain string) {
		guards := enabledGuardRanges(info, fd.Body)
		report := func(pos ast.Node, desc string) {
			if !inGuarded(pos.Pos(), guards) {
				pass.Reportf(pos.Pos(), "%s in hot path (%s)", desc, chain)
			}
		}

		var lits []*ast.FuncLit
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
			return true
		})

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if names := capturedVars(info, fd, x); len(names) != 0 {
					report(x, "closure captures "+strings.Join(names, ", ")+" and allocates when it escapes")
				}
			case *ast.CallExpr:
				checkBoxingCall(info, qual, x, report)
			case *ast.ReturnStmt:
				checkBoxingReturn(info, qual, fd, lits, x, report)
			}
			return true
		})
	})
}

// capturedVars returns the sorted names of enclosing-function variables
// a func literal references.
func capturedVars(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing declaration (so not a
		// package-level or other-function variable) but outside the
		// literal itself (so not the literal's own params or locals).
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			seen[v.Name()] = true
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// checkBoxingCall flags concrete non-pointer-shaped arguments passed to
// interface-typed parameters.
func checkBoxingCall(info *types.Info, qual types.Qualifier, call *ast.CallExpr, report func(ast.Node, string)) {
	fun := ast.Unparen(call.Fun)
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return // conversion, or unresolved
	}
	if _, ok := info.Uses[identOf(fun)].(*types.Builtin); ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				if i == params.Len()-1 {
					pt = params.At(i).Type() // slice passed whole: no boxing
				}
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if desc := boxedDesc(info, qual, arg, pt); desc != "" {
			report(arg, desc)
		}
	}
}

// checkBoxingReturn flags concrete non-pointer-shaped values returned as
// interface results. Returns inside func literals are judged against the
// literal's own signature.
func checkBoxingReturn(info *types.Info, qual types.Qualifier, fd *ast.FuncDecl, lits []*ast.FuncLit, ret *ast.ReturnStmt, report func(ast.Node, string)) {
	var sig *types.Signature
	var innermost *ast.FuncLit
	for _, l := range lits {
		if ret.Pos() > l.Pos() && ret.End() <= l.End() {
			if innermost == nil || l.Pos() > innermost.Pos() {
				innermost = l
			}
		}
	}
	if innermost != nil {
		tv, ok := info.Types[innermost]
		if !ok {
			return
		}
		sig, ok = tv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
	} else {
		fn, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		sig = fn.Type().(*types.Signature)
	}
	results := sig.Results()
	if len(ret.Results) != results.Len() {
		return // naked return or single multi-value call
	}
	for i, e := range ret.Results {
		rt := results.At(i).Type()
		if !types.IsInterface(rt) {
			continue
		}
		if desc := boxedDesc(info, qual, e, rt); desc != "" {
			report(e, desc)
		}
	}
}

// boxedDesc describes the boxing a concrete expression suffers when
// converted to interface type it, "" when the conversion is free.
func boxedDesc(info *types.Info, qual types.Qualifier, e ast.Expr, it types.Type) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	if tv.Value != nil {
		return "" // constants live in static data
	}
	if pointerShaped(tv.Type) {
		return ""
	}
	return "implicit conversion of " + types.TypeString(tv.Type, qual) + " to " +
		types.TypeString(it, qual) + " boxes the value"
}

// identOf unwraps an expression to its identifier, nil if it is not one.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}
