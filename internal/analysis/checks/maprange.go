package checks

import (
	"go/ast"
	"go/types"

	"webtextie/internal/analysis"
)

// MapRange flags range loops over maps whose bodies emit into an ordered
// sink — appending to a slice declared outside the loop, or sending on a
// channel — without a subsequent sort in the same block. Go randomizes
// map iteration order per run, so such loops are exactly how silent
// nondeterminism enters otherwise bit-reproducible outputs (snapshot
// diffs, fetch lists, report tables).
//
// Loops that only aggregate (sums, counts, set inserts) are order-
// independent and are not flagged. The accepted fix is the idiom used
// throughout the repo: collect keys, sort them, then iterate the sorted
// slice — or sort the collected output before it escapes.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "map iteration emitting to a slice or channel without a subsequent sort; " +
		"map order is randomized per run — sort keys (or the output) before emitting",
	Run: runMapRange,
}

func runMapRange(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				if rng, ok := stmt.(*ast.RangeStmt); ok {
					checkMapRange(pass, info, rng, list[i+1:])
				}
			}
			return true
		})
	}
}

// checkMapRange inspects one range statement; following holds the
// statements after it in the same block (where an ordering sort may live).
func checkMapRange(pass *analysis.Pass, info *types.Info, rng *ast.RangeStmt, following []ast.Stmt) {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	sent := false
	targets := map[types.Object]string{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			sent = true
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				obj, name := emitTarget(info, n.Lhs[i])
				// A slice rooted in a variable declared inside the loop
				// body never leaks iteration order past one iteration.
				if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()) {
					continue
				}
				targets[obj] = name
			}
		}
		return true
	})

	if sent {
		pass.Reportf(rng.For,
			"range over map sends on a channel: map iteration order is randomized per run")
	}
	for obj, name := range targets {
		if !sortedAfter(info, following, obj) {
			pass.Reportf(rng.For,
				"range over map appends to %q without a subsequent sort: map iteration order is randomized per run", name)
		}
	}
}

// emitTarget resolves the variable an append assigns to — the base
// identifier of a plain name or a selector chain (s.out → s), so a
// struct declared inside the loop is correctly treated as loop-local.
// Index expressions (grouping into a map of slices) are ignored — their
// per-key order comes from the value stream, not from this loop's key
// order being observed directly.
func emitTarget(info *types.Info, lhs ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return info.ObjectOf(e), e.Name
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return info.ObjectOf(base), base.Name + "." + e.Sel.Name
		}
	}
	return nil, ""
}

// sortedAfter reports whether any statement after the loop (in the same
// block) passes obj to a sort/slices ordering function.
func sortedAfter(info *types.Info, following []ast.Stmt, obj types.Object) bool {
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := isPkgCall(info, call, "sort", "slices"); !ok {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
