// Package analysis is a from-scratch, stdlib-only static-analysis
// framework in the spirit of golang.org/x/tools/go/analysis, specialised
// for this repository's invariants. The paper's evaluation is only
// credible because runs are repeatable; our reproduction goes further and
// promises bit-reproducible crawler and dataflow metrics per seed in
// virtual-clock units. Nothing in the compiler enforces that promise —
// wall-clock reads, unordered map iteration, copied locks, leaked
// goroutines, and unstable metric names all slip through `go build`. The
// analyzers built on this framework (internal/analysis/checks, driven by
// cmd/lintx) make those invariants machine-checked.
//
// The framework provides:
//
//   - a module-aware package loader with full go/types type-checking
//     (load.go), so analyzers can resolve what a selector actually refers
//     to instead of pattern-matching source text;
//   - the Analyzer interface and position-carrying Diagnostics;
//   - `//lintx:ignore <check>[,<check>] <reason>` suppression directives
//     (directive.go) — a reason is mandatory, and malformed directives are
//     themselves diagnostics;
//   - deterministic text and JSON reporting (report.go).
//
// Analyzers receive one type-checked package at a time and report through
// Pass.Reportf. The runner (Run) applies suppression and sorts
// diagnostics by position so output is stable across runs — the linter
// holds itself to the determinism bar it enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the check in reports and in //lintx:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `lintx -list` prints.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package
	// Session is the run-wide state shared by every pass: the full
	// package set, //lintx:hotpath roots, and the cross-package memo
	// space (call graph, reachability). Nil when a pass is constructed
	// outside Run without a session; analyzers that need it must
	// degrade to a no-op in that case.
	Session *Session

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Path:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, raw — before the
// runner applies //lintx:ignore suppression.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Diagnostic is one finding, addressed by file position.
type Diagnostic struct {
	Path    string `json:"path"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Path, d.Line, d.Col, d.Check, d.Message)
}
