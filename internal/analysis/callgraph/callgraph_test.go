package callgraph

import (
	"go/types"
	"strings"
	"testing"

	"webtextie/internal/analysis"
)

// loadFixture loads the cg fixture package with a fresh loader.
func loadFixture(t *testing.T) *analysis.Package {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/cg")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// fn finds a fixture function by its Label.
func fn(t *testing.T, g *Graph, label string) *types.Func {
	t.Helper()
	for _, n := range g.Nodes() {
		if Label(n.Func) == label {
			return n.Func
		}
	}
	t.Fatalf("no node labeled %q; have %s", label, g.Dump())
	return nil
}

func TestStaticChain(t *testing.T) {
	pkg := loadFixture(t)
	g := Build([]*analysis.Package{pkg})

	root := fn(t, g, "cg.root")
	leaf := fn(t, g, "cg.leaf")
	r := g.Reachable([]*types.Func{root}, nil)

	for _, label := range []string{"cg.root", "cg.T.M", "cg.helper", "cg.leaf"} {
		if !r.Contains(fn(t, g, label)) {
			t.Errorf("%s not reachable from cg.root", label)
		}
	}
	if got, want := r.ChainString(leaf), "cg.root → cg.T.M → cg.helper → cg.leaf"; got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	if got := r.ChainString(root); got != "cg.root" {
		t.Errorf("root chain = %q, want length-1 chain", got)
	}

	// helper calls leaf twice but carries one edge.
	if n := g.Node(fn(t, g, "cg.helper")); len(n.calls) != 1 {
		t.Errorf("cg.helper has %d edges, want 1", len(n.calls))
	}
}

func TestDynamicCallsAreUnknown(t *testing.T) {
	pkg := loadFixture(t)
	g := Build([]*analysis.Package{pkg})

	for _, tc := range []struct {
		label   string
		unknown int
	}{
		{"cg.viaInterface", 1},
		{"cg.viaValue", 1},
		{"cg.withLit", 1}, // f() — the closure body itself is not unknown
		{"cg.conv", 0},
	} {
		n := g.Node(fn(t, g, tc.label))
		if n.UnknownCalls != tc.unknown {
			t.Errorf("%s: UnknownCalls = %d, want %d", tc.label, n.UnknownCalls, tc.unknown)
		}
	}

	// Interface dispatch must not reach the implementation.
	r := g.Reachable([]*types.Func{fn(t, g, "cg.viaInterface")}, nil)
	if r.Contains(fn(t, g, "cg.Impl.Do")) {
		t.Error("cg.Impl.Do reachable through interface dispatch; graph is guessing targets")
	}
	if r.Contains(fn(t, g, "cg.leaf")) {
		t.Error("cg.leaf reachable from cg.viaInterface; unknown calls must not expand")
	}
}

func TestClosureBodyBelongsToDecl(t *testing.T) {
	pkg := loadFixture(t)
	g := Build([]*analysis.Package{pkg})

	r := g.Reachable([]*types.Func{fn(t, g, "cg.withLit")}, nil)
	if !r.Contains(fn(t, g, "cg.leaf")) {
		t.Error("cg.leaf not reachable from cg.withLit; closure body's calls were lost")
	}
}

func TestSkipPrunesTraversal(t *testing.T) {
	pkg := loadFixture(t)
	g := Build([]*analysis.Package{pkg})

	root := fn(t, g, "cg.root")
	r := g.Reachable([]*types.Func{root}, func(n *Node) bool {
		return Label(n.Func) == "cg.helper"
	})
	if r.Contains(fn(t, g, "cg.helper")) {
		t.Error("skipped node is a member")
	}
	if r.Contains(fn(t, g, "cg.leaf")) {
		t.Error("cg.leaf reachable through a skipped node")
	}
	if !r.Contains(fn(t, g, "cg.T.M")) {
		t.Error("cg.T.M should still be reachable")
	}
}

// TestDumpDeterministic pins construction determinism: two graphs built
// from two fresh loads render byte-identically.
func TestDumpDeterministic(t *testing.T) {
	a := Build([]*analysis.Package{loadFixture(t)}).Dump()
	b := Build([]*analysis.Package{loadFixture(t)}).Dump()
	if a != b {
		t.Fatalf("Dump diverges across fresh builds:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "cg.root") {
		t.Fatalf("Dump missing cg.root:\n%s", a)
	}
}
