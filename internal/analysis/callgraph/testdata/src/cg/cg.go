// Package cg is the call-graph fixture: a static chain, dynamic calls
// the graph must refuse to resolve, a closure whose calls belong to the
// declaring function, and a conversion that is not a call at all.
package cg

// T anchors a concrete-receiver method in the chain.
type T struct{ n int }

// root is the fixture's entry point: root → T.M → helper → leaf.
func root() int {
	t := &T{n: 1}
	return t.M()
}

// M is a pointer-receiver method; static dispatch.
func (t *T) M() int { return helper(t.n) }

func helper(n int) int { return leaf(n) + leaf(n) } // duplicate site: one edge

func leaf(n int) int { return n + 1 }

// I forces dynamic dispatch.
type I interface{ Do() int }

// Impl satisfies I; its method body is a node but must not be reachable
// through the interface call below.
type Impl struct{}

func (Impl) Do() int { return leaf(0) }

// viaInterface calls through an interface: unknown callee.
func viaInterface(i I) int { return i.Do() }

// viaValue calls a func-typed parameter: unknown callee.
func viaValue(f func() int) int { return f() }

// withLit declares a closure — its body's call to leaf belongs to
// withLit — then calls it through the variable, which is unknown.
func withLit() int {
	f := func() int { return leaf(2) }
	return f()
}

// conv is a type conversion, not a call: no edge, nothing unknown.
func conv(b []byte) string { return string(b) }

var _ = []any{root, viaInterface, viaValue, withLit, conv}
