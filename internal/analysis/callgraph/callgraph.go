// Package callgraph builds a deterministic, type-resolved call graph
// over the packages of one analysis run, the substrate for the hot-path
// checks (allocfree, boxing, hotpathpurity): a //lintx:hotpath root's
// allocation discipline has to hold not just in the annotated function
// but in everything it calls, and only a call graph can say what that
// closure is.
//
// Resolution is intentionally static and conservative:
//
//   - direct calls to package-level functions and methods on concrete
//     receivers resolve to their declarations (generics are unwrapped to
//     the generic declaration);
//   - calls through interfaces, function-typed variables and fields,
//     and method values are *unknown*: the graph records the site count
//     but never guesses a target, so reachability is a lower bound —
//     exactly what a lint wants, since a false "reachable" would flag
//     cold code and a directive can always annotate a dynamic callee's
//     implementation as its own root;
//   - function literals are not separate nodes: a closure's body belongs
//     to the function that declares it, which matches how the checks
//     attribute its allocations.
//
// Construction is deterministic: nodes are ordered by (package path,
// file, offset), edges by callee order, and breadth-first reachability
// visits that order only — two runs over the same source produce
// byte-identical Dump output and diagnostics (pinned by test).
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"webtextie/internal/analysis"
)

// Node is one declared function or method in the loaded package set.
type Node struct {
	// Func is the type-checker's object for the declaration.
	Func *types.Func
	// Decl is the declaration, body included.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *analysis.Package
	// UnknownCalls counts call sites in the body whose callee cannot be
	// resolved statically (interface dispatch, func values). The graph
	// never expands through them.
	UnknownCalls int

	index int
	calls []edge
}

// edge is one resolved static call: callee plus the first site that
// calls it (later duplicate sites don't add edges).
type edge struct {
	callee *Node
	site   token.Pos
}

// Graph is the call graph over one package set.
type Graph struct {
	fset  *token.FileSet
	nodes map[*types.Func]*Node
	order []*Node
}

// Build constructs the graph over the given packages.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{nodes: map[*types.Func]*Node{}}
	sorted := make([]*analysis.Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].PkgPath < sorted[j].PkgPath })

	for _, pkg := range sorted {
		if g.fset == nil {
			g.fset = pkg.Fset
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || fn == nil {
					continue
				}
				g.nodes[fn] = &Node{Func: fn, Decl: fd, Pkg: pkg}
			}
		}
	}

	// Deterministic node order: declaration position within the sorted
	// package sequence. File names inside one package are already
	// loader-sorted; positions order declarations within a file.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						if n := g.nodes[fn]; n != nil {
							n.index = len(g.order)
							g.order = append(g.order, n)
						}
					}
				}
			}
		}
	}

	for _, n := range g.order {
		g.resolveCalls(n)
	}
	return g
}

// resolveCalls populates one node's edges by walking its body (function
// literals included — their calls belong to the declaring function).
func (g *Graph) resolveCalls(n *Node) {
	info := n.Pkg.Info
	seen := map[*Node]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, known := resolveCallee(info, call)
		if !known {
			n.UnknownCalls++
			return true
		}
		if fn == nil {
			return true // builtin or conversion: not a call edge
		}
		callee, ok := g.nodes[fn]
		if !ok {
			return true // external (stdlib or unloaded package)
		}
		if !seen[callee] {
			seen[callee] = true
			n.calls = append(n.calls, edge{callee: callee, site: call.Pos()})
		}
		return true
	})
	sort.Slice(n.calls, func(i, j int) bool { return n.calls[i].callee.index < n.calls[j].callee.index })
}

// resolveCallee classifies one call expression. Returns (fn, true) for a
// statically resolved function or method on a concrete receiver,
// (nil, true) for builtins, conversions, and immediately-invoked
// function literals (no edge, but nothing unknown either), and
// (nil, false) for dynamic calls: interface dispatch, func-typed
// variables and fields, method values.
func resolveCallee(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[e.X]; ok && !tv.IsType() {
			fun = ast.Unparen(e.X) // generic instantiation
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil, true // conversion
	}
	switch e := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Builtin:
			return nil, true
		case *types.TypeName:
			return nil, true
		case *types.Func:
			return origin(obj), true
		default:
			return nil, false // func-typed variable or unresolved
		}
	case *ast.SelectorExpr:
		switch obj := info.Uses[e.Sel].(type) {
		case *types.TypeName:
			return nil, true
		case *types.Func:
			if sig, ok := obj.Type().(*types.Signature); ok {
				if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
					return nil, false // dynamic dispatch
				}
			}
			return origin(obj), true
		default:
			return nil, false // func-typed field or unresolved
		}
	case *ast.FuncLit:
		return nil, true // body walked as part of the enclosing decl
	}
	return nil, false
}

// origin maps an instantiated generic function back to its declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// Node returns the graph node for a function, nil if it has no
// declaration in the loaded set.
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every node in deterministic order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.order))
	copy(out, g.order)
	return out
}

// Label renders a compact, stable name for a function: pkg.Func for
// package-level functions, pkg.Type.Method for methods (pointer
// receivers included).
func Label(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// Reach is the closure of functions reachable from a root set through
// static call edges, with the breadth-first discovery parent of each
// member — enough to print one call chain from a root to any member.
type Reach struct {
	member map[*types.Func]bool
	parent map[*types.Func]*types.Func
}

// Reachable computes the reachability closure from roots. Roots not
// declared in the graph are dropped. skip, if non-nil, prunes traversal:
// a node for which it returns true is neither visited nor expanded (the
// checks use it to stop at the observability plane). The traversal is
// breadth-first in node order, so the discovery parents — and every
// diagnostic chain derived from them — are deterministic.
func (g *Graph) Reachable(roots []*types.Func, skip func(*Node) bool) *Reach {
	r := &Reach{member: map[*types.Func]bool{}, parent: map[*types.Func]*types.Func{}}
	var queue []*Node
	rootNodes := make([]*Node, 0, len(roots))
	for _, fn := range roots {
		if n := g.nodes[fn]; n != nil {
			rootNodes = append(rootNodes, n)
		}
	}
	sort.Slice(rootNodes, func(i, j int) bool { return rootNodes[i].index < rootNodes[j].index })
	for _, n := range rootNodes {
		if skip != nil && skip(n) {
			continue
		}
		if !r.member[n.Func] {
			r.member[n.Func] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.calls {
			c := e.callee
			if r.member[c.Func] || (skip != nil && skip(c)) {
				continue
			}
			r.member[c.Func] = true
			r.parent[c.Func] = n.Func
			queue = append(queue, c)
		}
	}
	return r
}

// Contains reports whether fn is reachable.
func (r *Reach) Contains(fn *types.Func) bool { return r.member[fn] }

// Chain returns one root-to-fn call chain (roots have length-1 chains);
// nil if fn is not reachable.
func (r *Reach) Chain(fn *types.Func) []*types.Func {
	if !r.member[fn] {
		return nil
	}
	var rev []*types.Func
	for f := fn; f != nil; f = r.parent[f] {
		rev = append(rev, f)
	}
	out := make([]*types.Func, len(rev))
	for i, f := range rev {
		out[len(rev)-1-i] = f
	}
	return out
}

// ChainString renders Chain as "root → … → fn" with Label names.
func (r *Reach) ChainString(fn *types.Func) string {
	chain := r.Chain(fn)
	if chain == nil {
		return ""
	}
	parts := make([]string, len(chain))
	for i, f := range chain {
		parts[i] = Label(f)
	}
	return strings.Join(parts, " → ")
}

// Dump renders the whole graph, one node per line in deterministic
// order: "label file:line -> callee, callee... [unknown=N]". This is the
// construction-determinism surface the tests byte-compare.
func (g *Graph) Dump() string {
	var b strings.Builder
	for _, n := range g.order {
		pos := g.fset.Position(n.Decl.Pos())
		fmt.Fprintf(&b, "%s %s:%d ->", Label(n.Func), pos.Filename, pos.Line)
		for i, e := range n.calls {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte(' ')
			b.WriteString(Label(e.callee.Func))
		}
		if n.UnknownCalls > 0 {
			fmt.Fprintf(&b, " [unknown=%d]", n.UnknownCalls)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
