package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathPrefix introduces a hot-path root annotation. The grammar is
//
//	//lintx:hotpath <reason>
//
// placed inside the doc comment of a function or method declaration. The
// annotated function becomes a root for the call-graph-aware checks
// (allocfree, boxing, hotpathpurity): everything statically reachable
// from a root is held to the hot-path discipline. The reason (mandatory)
// says why the function is hot — which loop it sits in, which figure or
// benchmark its throughput feeds — so the annotation set stays auditable
// the same way ignore directives do.
const hotpathPrefix = "//lintx:hotpath"

// collectHotpaths parses every //lintx:hotpath directive in the package.
// Directives in a function's doc comment map that function to its
// reason; a directive with no reason, or one floating outside any
// function declaration's doc comment, is returned as a diagnostic of the
// pseudo-check "directive" — like malformed ignores, malformed hot-root
// claims are themselves hygiene violations.
func collectHotpaths(pkg *Package) (map[*types.Func]string, []Diagnostic) {
	roots := map[*types.Func]string{}
	var bad []Diagnostic
	attached := map[*ast.Comment]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := cutHotpath(c.Text)
				if !ok {
					continue
				}
				attached[c] = true
				if rest == "" {
					pos := pkg.Fset.Position(c.Pos())
					bad = append(bad, Diagnostic{
						Path: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "directive",
						Message: "malformed directive: want //lintx:hotpath <reason>",
					})
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
					roots[fn] = rest
				}
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok := cutHotpath(c.Text); !ok || attached[c] {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				bad = append(bad, Diagnostic{
					Path: pos.Filename, Line: pos.Line, Col: pos.Column,
					Check:   "directive",
					Message: "//lintx:hotpath must sit in the doc comment of a function or method declaration",
				})
			}
		}
	}
	return roots, bad
}

// cutHotpath splits a comment into (trimmed reason, is-hotpath-directive).
// A prefix match followed by a non-space rune ("//lintx:hotpathX") is not
// a directive.
func cutHotpath(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, hotpathPrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// Session is the shared cross-package state of one analysis run: the
// full package set, the //lintx:hotpath roots collected from it, and a
// memo space so expensive cross-package artifacts (the call graph, the
// hot-path reachability closure) are built once per run instead of once
// per package per analyzer.
type Session struct {
	// Pkgs is the complete package set under analysis.
	Pkgs []*Package

	hot  map[*types.Func]string
	memo map[string]any
}

// NewSession collects hot-path roots over the package set and returns
// the session plus any malformed-directive diagnostics.
func NewSession(pkgs []*Package) (*Session, []Diagnostic) {
	s := &Session{Pkgs: pkgs, hot: map[*types.Func]string{}, memo: map[string]any{}}
	var bad []Diagnostic
	for _, pkg := range pkgs {
		roots, b := collectHotpaths(pkg)
		bad = append(bad, b...)
		for fn, reason := range roots {
			s.hot[fn] = reason
		}
	}
	return s, bad
}

// Hotpaths returns the annotated hot-path root functions with their
// reasons. Callers must not mutate the map.
func (s *Session) Hotpaths() map[*types.Func]string { return s.hot }

// Memo returns the value cached under key, calling build to produce it
// on first use. Analyzers share one memo space per run, so keys carry
// the owning subsystem as a prefix ("callgraph.graph").
func (s *Session) Memo(key string, build func() any) any {
	if v, ok := s.memo[key]; ok {
		return v
	}
	v := build()
	s.memo[key] = v
	return v
}
