package analysis

import (
	"strings"
)

// ignorePrefix introduces a suppression directive. The full grammar is
//
//	//lintx:ignore <check>[,<check>...] <reason>
//
// where <check> is an analyzer name or "all", and <reason> (mandatory) is
// free text explaining why the finding is acceptable. A directive
// suppresses matching diagnostics on its own line (trailing comment) and
// on the line directly below (standalone comment above the offending
// statement).
const ignorePrefix = "//lintx:ignore"

// ignore is one parsed suppression directive.
type ignore struct {
	path   string
	line   int
	checks map[string]bool // lower-case names; "all" matches every check
}

// collectIgnores parses every //lintx:ignore directive in the package.
// Malformed directives (no check list, or a missing reason) are returned
// as diagnostics of the pseudo-check "directive" — an unexplained
// suppression is itself a hygiene violation.
func collectIgnores(pkg *Package) ([]ignore, []Diagnostic) {
	var igs []ignore
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Path: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   "directive",
						Message: "malformed directive: want //lintx:ignore <check>[,<check>] <reason>",
					})
					continue
				}
				checks := map[string]bool{}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						checks[strings.ToLower(name)] = true
					}
				}
				igs = append(igs, ignore{path: pos.Filename, line: pos.Line, checks: checks})
			}
		}
	}
	return igs, bad
}

// suppressed reports whether a diagnostic is covered by any directive.
func suppressed(d Diagnostic, igs []ignore) bool {
	for _, ig := range igs {
		if d.Path != ig.path {
			continue
		}
		if d.Line != ig.line && d.Line != ig.line+1 {
			continue
		}
		if ig.checks["all"] || ig.checks[d.Check] {
			return true
		}
	}
	return false
}
