package analysis

import "sort"

// Run applies every analyzer to every package, drops diagnostics covered
// by //lintx:ignore directives, and returns the survivors sorted by
// position (then check name) so output is deterministic. All passes
// share one Session, so hot-path roots annotated in any package are
// visible to the call-graph-aware checks in every other.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	sess, bad := NewSession(pkgs)
	diags := []Diagnostic{}
	diags = append(diags, bad...)
	for _, pkg := range pkgs {
		igs, bad := collectIgnores(pkg)
		diags = append(diags, bad...)
		for _, az := range analyzers {
			pass := &Pass{Analyzer: az, Pkg: pkg, Session: sess}
			az.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(d, igs) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags
}
