package core

// Operator-level tests: each registry operator exercised in isolation
// through a tiny Meteor script, so both the operator semantics and the
// script/engine integration are covered.

import (
	"fmt"
	"strings"
	"testing"

	"webtextie/internal/dataflow"
	"webtextie/internal/meteor"
	"webtextie/internal/nlp"
	"webtextie/internal/textgen"
)

// runOp executes `$x = read from 'in'; $y = <stmt>; write $y to 'out';`.
func runOp(t *testing.T, reg *Registry, stmt string, in []dataflow.Record) []dataflow.Record {
	t.Helper()
	script := "$x = read from 'in';\n$y = " + stmt + " $x;\nwrite $y to 'out';\n"
	// Allow parameterized statements written as "op ... with k=v" by
	// splicing the input variable before "with".
	if i := strings.Index(stmt, " with "); i >= 0 {
		script = "$x = read from 'in';\n$y = " + stmt[:i] + " $x " + stmt[i+1:] + ";\nwrite $y to 'out';\n"
	}
	out, _, err := meteor.Run(script, reg, map[string][]dataflow.Record{"in": in},
		false, dataflow.ExecConfig{DoP: 1})
	if err != nil {
		t.Fatalf("script %q: %v", script, err)
	}
	return out["out"]
}

func rec(kv ...any) dataflow.Record {
	r := dataflow.Record{}
	for i := 0; i+1 < len(kv); i += 2 {
		r[kv[i].(string)] = kv[i+1]
	}
	return r
}

func TestOpFilterLength(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	out := runOp(t, reg, "filter_length with min=5, max=10",
		[]dataflow.Record{rec("id", "a", "text", "hi"), rec("id", "b", "text", "just right"),
			rec("id", "c", "text", "way too long for the filter")})
	if len(out) != 1 || out[0]["id"] != "b" {
		t.Fatalf("out = %v", out)
	}
}

func TestOpCounts(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	out := runOp(t, reg, "count_words", []dataflow.Record{rec("id", "a", "text", "one two three")})
	if out[0]["words"] != 3 {
		t.Fatalf("words = %v", out[0]["words"])
	}
	out = runOp(t, reg, "count_chars", []dataflow.Record{rec("id", "a", "text", "abcd")})
	if out[0]["chars"] != 4 {
		t.Fatalf("chars = %v", out[0]["chars"])
	}
}

func TestOpProjectAndRename(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	out := runOp(t, reg, "project with keep='id'",
		[]dataflow.Record{rec("id", "a", "text", "x", "junk", 1)})
	if _, ok := out[0]["junk"]; ok {
		t.Fatal("project kept junk")
	}
	if out[0]["id"] != "a" {
		t.Fatal("project dropped id")
	}
	out = runOp(t, reg, "rename_field with from='text', to='body'",
		[]dataflow.Record{rec("text", "x")})
	if out[0]["body"] != "x" {
		t.Fatalf("rename: %v", out[0])
	}
}

func TestOpSampleDeterministic(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	var in []dataflow.Record
	for i := 0; i < 200; i++ {
		in = append(in, rec("id", fmt.Sprint("doc", i)))
	}
	a := runOp(t, reg, "sample with rate=0.3", in)
	b := runOp(t, reg, "sample with rate=0.3", in)
	if len(a) != len(b) {
		t.Fatalf("sample not deterministic: %d vs %d", len(a), len(b))
	}
	if len(a) < 30 || len(a) > 90 {
		t.Errorf("sample rate off: %d/200", len(a))
	}
}

func TestOpDedupe(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	out := runOp(t, reg, "dedupe_exact", []dataflow.Record{
		rec("id", "a", "text", "same"), rec("id", "b", "text", "same"),
		rec("id", "c", "text", "different")})
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d", len(out))
	}
}

func TestOpMimeFilter(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	out := runOp(t, reg, "mime_filter", []dataflow.Record{
		rec("id", "http://x/p.html", "html", "<html><body>text page</body></html>"),
		rec("id", "http://x/f.pdf", "html", "%PDF-1.4 binary blob")})
	if len(out) != 1 || out[0]["id"] != "http://x/p.html" {
		t.Fatalf("mime filter: %v", out)
	}
}

func TestOpBoilerplateAndMarkup(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	html := `<html><body><nav><a href="/">Home</a><a href="/a">A</a></nav>` +
		`<p>` + strings.Repeat("real content words here ", 10) + `</p></body></html>`
	out := runOp(t, reg, "boilerplate_detect", []dataflow.Record{rec("id", "u", "html", html)})
	text := out[0]["text"].(string)
	if !strings.Contains(text, "real content") || strings.Contains(text, "Home") {
		t.Fatalf("net text = %q", text)
	}
	out = runOp(t, reg, "remove_markup", []dataflow.Record{rec("id", "u", "html", html)})
	if !strings.Contains(out[0]["text"].(string), "Home") {
		t.Fatal("remove_markup should keep everything")
	}
}

func TestOpLanguageFilter(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	en := "The patients were treated with the new drug and the results showed a significant reduction in tumor size across all groups that received it."
	de := "Die Patienten wurden mit dem neuen Medikament behandelt und die Ergebnisse zeigten eine deutliche Verringerung der Tumorgröße in allen Gruppen."
	out := runOp(t, reg, "language_filter with lang=en", []dataflow.Record{
		rec("id", "en", "text", en), rec("id", "de", "text", de)})
	if len(out) != 1 || out[0]["id"] != "en" {
		t.Fatalf("language filter: %v", out)
	}
}

func TestOpSentencesTokensPos(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	script := `
$x = read from 'in';
$s = annotate_sentences $x;
$t = annotate_tokens $s;
$p = pos_tag $t;
write $p to 'out';
`
	out, _, err := meteor.Run(script, reg, map[string][]dataflow.Record{
		"in": {rec("id", "d", "text", "The drug works. The gene regulates growth.")}},
		false, dataflow.ExecConfig{DoP: 1})
	if err != nil {
		t.Fatal(err)
	}
	r0 := out["out"][0]
	sents := r0["sentences"].([]nlp.Span)
	if len(sents) != 2 {
		t.Fatalf("sentences = %d", len(sents))
	}
	toks := r0["tokens"].([][]nlp.TokenSpan)
	if len(toks) != 2 || len(toks[0]) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	pos := r0["pos"].([][]string)
	if len(pos) != 2 || len(pos[0]) != len(toks[0]) {
		t.Fatalf("pos = %v", pos)
	}
}

func TestOpEntityPipeline(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	// Use a dictionary name guaranteed to exist.
	var gene string
	for _, e := range s.Set.Lexicon.ByType(textgen.Gene) {
		if e.InDictionary && !strings.Contains(e.Name, " ") {
			gene = e.Name
			break
		}
	}
	if gene == "" {
		t.Skip("no single-word dictionary gene")
	}
	script := `
$x = read from 'in';
$s = annotate_sentences $x;
$t = annotate_tokens $s;
$d = annotate_entities_dict $t with type=gene;
$m = merge_entities $d;
$c = count_entities $m;
write $c to 'out';
`
	text := "The " + gene + " gene regulates the pathway. The " + gene + " gene was studied."
	out, _, err := meteor.Run(script, reg, map[string][]dataflow.Record{
		"in": {rec("id", "d", "text", text)}}, false, dataflow.ExecConfig{DoP: 1})
	if err != nil {
		t.Fatal(err)
	}
	r0 := out["out"][0]
	if r0["n_entities"].(int) < 2 {
		t.Fatalf("entities = %v", r0["entities"])
	}
	ents := r0["entities"].([]EntityAnn)
	for _, e := range ents {
		if text[e.Start:e.End] != e.Surface {
			t.Fatalf("span mismatch: %+v", e)
		}
	}
}

func TestOpSplitSentenceRecords(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	script := `
$x = read from 'in';
$s = annotate_sentences $x;
$r = split_sentence_records $s;
write $r to 'out';
`
	out, _, err := meteor.Run(script, reg, map[string][]dataflow.Record{
		"in": {rec("id", "d", "text", "First sentence. Second one. Third here.")}},
		false, dataflow.ExecConfig{DoP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 3 {
		t.Fatalf("sentence records = %d", len(out["out"]))
	}
	for _, r := range out["out"] {
		if r["doc_id"] != "d" {
			t.Fatalf("doc_id = %v", r["doc_id"])
		}
	}
}

func TestOpFilterTLA(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	in := rec("id", "d", "entities", []EntityAnn{
		{Type: textgen.Gene, Method: ML, Surface: "FAQ", Start: 0, End: 3},
		{Type: textgen.Gene, Method: ML, Surface: "BRCA1", Start: 10, End: 15},
		{Type: textgen.Gene, Method: Dict, Surface: "TLA", Start: 20, End: 23},
	})
	out := runOp(t, reg, "filter_tla_entities", []dataflow.Record{in})
	ents := out[0]["entities"].([]EntityAnn)
	if len(ents) != 2 {
		t.Fatalf("entities after TLA filter = %v", ents)
	}
	removed := out[0]["tla_removed"].([]EntityAnn)
	if len(removed) != 1 || removed[0].Surface != "FAQ" {
		t.Fatalf("removed = %v", removed)
	}
}

func TestOpKeepEntities(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	in := rec("id", "d", "entities", []EntityAnn{
		{Type: textgen.Gene, Method: ML, Surface: "A"},
		{Type: textgen.Drug, Method: Dict, Surface: "B"},
	})
	out := runOp(t, reg, "keep_entities_of_type with type=drug", []dataflow.Record{in})
	ents := out[0]["entities"].([]EntityAnn)
	if len(ents) != 1 || ents[0].Surface != "B" {
		t.Fatalf("by type: %v", ents)
	}
	out = runOp(t, reg, "keep_entities_by_method with method=ml", []dataflow.Record{in})
	ents = out[0]["entities"].([]EntityAnn)
	if len(ents) != 1 || ents[0].Surface != "A" {
		t.Fatalf("by method: %v", ents)
	}
}

func TestOpUnknownTypeRejected(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	if _, err := reg.Resolve("annotate_entities_dict", meteor.Params{"type": {Str: "planet"}}); err == nil {
		t.Fatal("unknown entity type accepted")
	}
	if _, err := reg.Resolve("no_such_operator", meteor.Params{}); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestOpLimit(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	var in []dataflow.Record
	for i := 0; i < 50; i++ {
		in = append(in, rec("id", fmt.Sprint(i)))
	}
	out := runOp(t, reg, "limit with n=7", in)
	if len(out) != 7 {
		t.Fatalf("limit kept %d", len(out))
	}
}

func TestOpDedupeNear(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	var b strings.Builder
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&b, "sentence %d covers topic%d and topic%d in detail. ", i, i*3%17, i*5%23)
	}
	base := b.String()
	in := []dataflow.Record{
		rec("id", "orig", "text", base),
		rec("id", "mirror", "text", base+" hosted mirror copy notice"),
		rec("id", "other", "text", strings.Repeat("totally different shopping prices and deals online today ", 12)),
	}
	out := runOp(t, reg, "dedupe_near with threshold=0.7", in)
	if len(out) != 2 {
		t.Fatalf("dedupe_near kept %d records: %v", len(out), out)
	}
	for _, r := range out {
		if r["id"] == "mirror" {
			t.Fatal("near-duplicate mirror survived")
		}
	}
}

func TestDedupeNearCatchesSynthwebMirrors(t *testing.T) {
	// End-to-end: crawl pages including mirrors; dedupe_near must remove
	// near-copies that dedupe_exact misses.
	s, _ := testSystem(t)
	reg := s.Registry()
	var recs []dataflow.Record
	seenMirror := false
	for _, h := range s.Set.Web.Hosts {
		for i := 2; i < h.Pages && len(recs) < 250; i++ {
			p, err := s.Set.Web.Fetch("http://" + h.Name + "/p" + itoa(i) + ".html")
			if err != nil || !p.MIME.IsTextual() || p.NetText == "" {
				continue
			}
			if p.MirrorOf != "" {
				// Include the mirror's source too, so the pair is present.
				if src, err := s.Set.Web.Fetch(p.MirrorOf); err == nil && src.NetText != "" {
					seenMirror = true
					recs = append(recs,
						dataflow.Record{"id": src.URL, "text": src.NetText},
						dataflow.Record{"id": p.URL, "text": p.NetText})
				}
			}
		}
	}
	if !seenMirror {
		t.Skip("no mirrors in crawled sample")
	}
	exact := runOp(t, reg, "dedupe_exact", recs)
	near := runOp(t, reg, "dedupe_near with threshold=0.75", recs)
	if len(near) >= len(exact) {
		t.Fatalf("near-dedup (%d kept) no better than exact (%d kept) on %d records",
			len(near), len(exact), len(recs))
	}
}
