package core

import (
	"webtextie/internal/cluster"
	"webtextie/internal/dataflow"
	"webtextie/internal/meteor"
)

// Flow constructors. The consolidated flow is Fig 2: "The complete data
// flow comprising all required analysis for this study consists of 38
// elementary operators" — web pages are filtered, markup is detected,
// repaired and removed, sentence/token boundaries are annotated, and the
// flow forks into the linguistic analysis (pronouns/negation/parenthesis)
// and the biomedical content analysis (POS tagging, then gene/drug/disease
// annotation by both a dictionary and an ML tagger per class).

// webPretreatment appends the web-specific head of the flow (HTML
// treatment; skipped for Medline/PMC, §4.3: "the same IE flow (downstream
// from the HTML treatment)").
func (r *Registry) webPretreatment(p *dataflow.Plan, src *dataflow.Node) *dataflow.Node {
	n := p.Add(r.Op("filter_html_length", meteor.Params{"max": num(2 << 20)}), src) // 1 exclude extremely long documents
	n = p.Add(r.Op("mime_filter", nil), n)                                          // 2
	n = p.Add(r.Op("parse_html", nil), n)                                           // 3 detect markup
	n = p.Add(r.Op("repair_markup", nil), n)                                        // 4 repair errors
	n = p.Add(r.Op("boilerplate_detect", nil), n)                                   // 5 remove markup / net text
	n = p.Add(r.Op("extract_links", nil), n)                                        // 6
	n = p.Add(r.Op("extract_title", nil), n)                                        // 7
	n = p.Add(r.Op("language_filter", nil), n)                                      // 8
	n = p.Add(r.Op("normalize_whitespace", nil), n)                                 // 9
	n = p.Add(r.Op("filter_length", meteor.Params{"min": num(100)}), n)             // 10
	n = p.Add(r.Op("dedupe_exact", nil), n)                                         // 11
	return n
}

// nlpShared appends sentence and token annotation.
func (r *Registry) nlpShared(p *dataflow.Plan, n *dataflow.Node) *dataflow.Node {
	n = p.Add(r.Op("annotate_sentences", nil), n)                                           // 12
	n = p.Add(r.Op("filter_degenerate_sentences", meteor.Params{"max_chars": num(600)}), n) // 13
	n = p.Add(r.Op("annotate_tokens", nil), n)                                              // 14
	n = p.Add(r.Op("count_sentences", nil), n)                                              // 15
	n = p.Add(r.Op("token_count", nil), n)                                                  // 16
	return n
}

// linguisticBranch appends the linguistic analysis.
func (r *Registry) linguisticBranch(p *dataflow.Plan, n *dataflow.Node) *dataflow.Node {
	n = p.Add(r.Op("annotate_negation", nil), n) // 17
	n = p.Add(r.Op("annotate_pronouns", nil), n) // 18
	n = p.Add(r.Op("annotate_parens", nil), n)   // 19
	n = p.Add(r.Op("ling_stats", nil), n)        // 20
	n = p.Add(r.Op("count_chars", nil), n)       // 21
	n = p.Add(r.Op("project", meteor.Params{
		"keep": {Str: "id ling anns chars n_sentences n_tokens"}}), n) // 22
	return n
}

// entityBranch appends the biomedical content analysis.
func (r *Registry) entityBranch(p *dataflow.Plan, n *dataflow.Node) *dataflow.Node {
	n = p.Add(r.Op("pos_tag", nil), n) // 23
	for _, t := range []string{"gene", "drug", "disease"} {
		n = p.Add(r.Op("annotate_entities_dict", meteor.Params{"type": {Str: t}}), n) // 24-26
	}
	for _, t := range []string{"gene", "drug", "disease"} {
		n = p.Add(r.Op("annotate_entities_ml", meteor.Params{"type": {Str: t}}), n) // 27-29
	}
	n = p.Add(r.Op("merge_entities", nil), n)          // 30
	n = p.Add(r.Op("resolve_entity_overlaps", nil), n) // 31
	n = p.Add(r.Op("filter_tla_entities", nil), n)     // 32
	n = p.Add(r.Op("abbreviations", nil), n)           // 33
	n = p.Add(r.Op("entity_names", nil), n)            // 34
	n = p.Add(r.Op("count_entities", nil), n)          // 35
	n = p.Add(r.Op("project", meteor.Params{
		"keep": {Str: "id entities names n_entities abbrevs pos_failed n_sentences tla_removed"}}), n) // 36
	return n
}

func num(v float64) meteor.Value { return meteor.Value{Num: v, IsNum: true} }

// ConsolidatedFlow builds the full Fig 2 plan over web input: 38 operator
// nodes (11 web pretreatment + 5 shared NLP + 6 linguistic + 14 entity +
// source + final union).
func (r *Registry) ConsolidatedFlow() *dataflow.Plan {
	p := &dataflow.Plan{}
	src := p.Add(r.Op("identity", nil)) // 37 (source)
	n := r.webPretreatment(p, src)
	n = r.nlpShared(p, n)
	lingOut := r.linguisticBranch(p, n)
	entOut := r.entityBranch(p, n)
	p.Add(r.Op("union", nil), lingOut, entOut) // 38 (merge of the two result streams)
	return p
}

// LinguisticFlow builds the standalone linguistic flow of §4.2 ("both
// first filter long texts, repair and remove HTML markup, and annotate
// sentence and token boundaries ... the linguistic data flow detects
// pronouns, negation, and parenthesis").
func (r *Registry) LinguisticFlow(web bool) *dataflow.Plan {
	p := &dataflow.Plan{}
	n := p.Add(r.Op("identity", nil))
	if web {
		n = r.webPretreatment(p, n)
	}
	n = r.nlpShared(p, n)
	r.linguisticBranch(p, n)
	return p
}

// EntityFlow builds the standalone entity-extraction flow of §4.2.
func (r *Registry) EntityFlow(web bool) *dataflow.Plan {
	p := &dataflow.Plan{}
	n := p.Add(r.Op("identity", nil))
	if web {
		n = r.webPretreatment(p, n)
	}
	n = r.nlpShared(p, n)
	r.entityBranch(p, n)
	return p
}

// EntityClassFlow builds the per-entity-class flow of the §4.2 war story
// ("we created ... one flow per entity class of the biomedical analysis").
func (r *Registry) EntityClassFlow(class string, web bool) *dataflow.Plan {
	p := &dataflow.Plan{}
	n := p.Add(r.Op("identity", nil))
	if web {
		n = r.webPretreatment(p, n)
	}
	n = r.nlpShared(p, n)
	n = p.Add(r.Op("pos_tag", nil), n)
	n = p.Add(r.Op("annotate_entities_dict", meteor.Params{"type": {Str: class}}), n)
	n = p.Add(r.Op("annotate_entities_ml", meteor.Params{"type": {Str: class}}), n)
	n = p.Add(r.Op("merge_entities", nil), n)
	p.Add(r.Op("filter_tla_entities", nil), n)
	return p
}

// RelationFlow builds the extension flow (beyond the paper's Fig 2):
// entity extraction followed by trigger-based relation extraction — the
// direction the paper's conclusion calls "studying these sets in more
// detail will be the next step in our research".
func (r *Registry) RelationFlow(web bool) *dataflow.Plan {
	p := &dataflow.Plan{}
	n := p.Add(r.Op("identity", nil))
	if web {
		n = r.webPretreatment(p, n)
	}
	n = r.nlpShared(p, n)
	n = p.Add(r.Op("pos_tag", nil), n)
	for _, t := range []string{"gene", "drug", "disease"} {
		n = p.Add(r.Op("annotate_entities_dict", meteor.Params{"type": {Str: t}}), n)
		n = p.Add(r.Op("annotate_entities_ml", meteor.Params{"type": {Str: t}}), n)
	}
	n = p.Add(r.Op("merge_entities", nil), n)
	n = p.Add(r.Op("resolve_entity_overlaps", nil), n)
	n = p.Add(r.Op("filter_tla_entities", nil), n)
	n = p.Add(r.Op("annotate_relations", nil), n)
	n = p.Add(r.Op("count_relations", nil), n)
	p.Add(r.Op("project", meteor.Params{
		"keep": {Str: "id relations n_relations n_sentences"}}), n)
	return p
}

// ConsolidatedMeteorScript is the Fig 2 flow expressed in the Meteor
// dialect — the paper's headline usability claim made concrete.
const ConsolidatedMeteorScript = `
-- Fig 2: consolidated analysis flow for crawled web documents.
$pages  = read from 'crawl';
$sized  = filter_html_length $pages with max=2097152;
$txtish = mime_filter $sized;
$parsed = parse_html $txtish;
$fixed  = repair_markup $parsed;
$net    = boilerplate_detect $fixed;
$linked = extract_links $net;
$titled = extract_title $linked;
$en     = language_filter $titled with lang=en;
$norm   = normalize_whitespace $en;
$long   = filter_length $norm with min=100;
$uniq   = dedupe_exact $long;
$sents  = annotate_sentences $uniq;
$capped = filter_degenerate_sentences $sents with max_chars=600;
$toks   = annotate_tokens $capped;

-- linguistic analysis branch
$neg    = annotate_negation $toks;
$pron   = annotate_pronouns $neg;
$paren  = annotate_parens $pron;
$lstats = ling_stats $paren;
write $lstats to 'linguistic';

-- biomedical content analysis branch
$pos    = pos_tag $toks;
$dg     = annotate_entities_dict $pos  with type=gene;
$dd     = annotate_entities_dict $dg   with type=drug;
$ds     = annotate_entities_dict $dd   with type=disease;
$mg     = annotate_entities_ml   $ds   with type=gene;
$md     = annotate_entities_ml   $mg   with type=drug;
$ms     = annotate_entities_ml   $md   with type=disease;
$merged = merge_entities $ms;
$tlaok  = filter_tla_entities $merged;
write $tlaok to 'entities';
`

// --- Flow profiles for the simulated cluster ---

// MeasuredProfile derives a cluster.FlowProfile from a plan's operator
// cost annotations (our implementations' costs).
func MeasuredProfile(name string, p *dataflow.Plan, outputFactor, skew float64) cluster.FlowProfile {
	var perKB, startup float64
	var mem int64
	for _, n := range p.Nodes() {
		perKB += n.Op.Cost.PerKBms
		startup += n.Op.Cost.StartupMs
		mem += n.Op.Cost.MemoryBytes
	}
	return cluster.FlowProfile{
		Name: name, PerKBms: perKB, StartupMs: startup,
		MemPerWorkerGB: float64(mem) / (1 << 30),
		OutputFactor:   outputFactor, Skew: skew,
	}
}

// PaperProfiles returns the flow profiles calibrated to the paper's
// reported constants: the 20-minute gene-dictionary load, the 6-20 GB
// dictionary footprints summing to ~34 GB for the entity flow and ~60 GB
// for the consolidated flow, annotation output of 1.2 TB (linguistic) and
// 0.4 TB (entities) per 1 TB input, and heavier skew for the entity flow.
func PaperProfiles() (linguistic, entity, consolidated cluster.FlowProfile) {
	linguistic = cluster.FlowProfile{
		Name: "linguistic", PerKBms: 0.2, StartupMs: 2000,
		MemPerWorkerGB: 0.5, OutputFactor: 1.2, Skew: 0.01,
	}
	entity = cluster.FlowProfile{
		Name: "entity", PerKBms: 1.4, StartupMs: 20 * 60 * 1000,
		MemPerWorkerGB: 20, OutputFactor: 0.4, Skew: 0.08,
	}
	consolidated = cluster.FlowProfile{
		Name: "consolidated", PerKBms: 1.6, StartupMs: 22 * 60 * 1000,
		MemPerWorkerGB: 60, OutputFactor: 1.6, Skew: 0.08,
		LibraryConflict: true, // OpenNLP 1.4 vs 1.5 (§4.2)
	}
	return linguistic, entity, consolidated
}
