// Package core is the end-to-end system of the paper: it wires the focused
// crawler, the corpus builders, and the NLP/IE tool suite into the
// declarative data flows of §3 and exposes every experiment of §4.
//
// A System owns all trained components — the Naive Bayes relevance
// classifier (trained Medline-vs-web, §2), the HMM POS tagger (MedPost
// substitute), three dictionary matchers built from the synthesized
// Gene Ontology / Drugbank / MeSH-scale dictionaries, and three CRF entity
// taggers trained on Medline-profile text (BANNER / ChemSpot substitutes) —
// plus the operator registry that makes them available to Meteor scripts.
package core

import (
	"fmt"

	"webtextie/internal/corpora"
	"webtextie/internal/dataflow"
	"webtextie/internal/ie/crf"
	"webtextie/internal/ie/dict"
	"webtextie/internal/nlp/postag"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/trace"
	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

// Method distinguishes the two extraction approaches compared throughout
// §4.3 (Table 4, Figs 7-8).
type Method int

const (
	// Dict is fuzzy dictionary matching (LINNAEUS-style automaton).
	Dict Method = iota
	// ML is CRF-based tagging (BANNER/ChemSpot-style).
	ML
)

// Methods lists both in reporting order.
var Methods = []Method{Dict, ML}

// String names the method as in Table 4.
func (m Method) String() string {
	if m == Dict {
		return "Dict."
	}
	return "ML"
}

// EntityAnn is one extracted entity mention (the payload of the "entities"
// record field).
type EntityAnn struct {
	Type    textgen.EntityType
	Method  Method
	Start   int
	End     int
	Surface string
}

// Config controls system construction.
type Config struct {
	// Corpora configures corpus construction (including the crawl).
	Corpora corpora.BuildConfig
	// CRFTrainDocs is the number of Medline documents the ML taggers are
	// trained on.
	CRFTrainDocs int
	// POSTrainDocs is the number of Medline documents the POS tagger is
	// trained on.
	POSTrainDocs int
	// POSMaxTokens is the POS tagger's crash threshold (Fig 3a).
	POSMaxTokens int
	// ExecPolicy selects the dataflow executor's response to UDF errors
	// during analysis (dataflow.Quarantine by default: count, dead-letter,
	// continue; dataflow.FailFast aborts the run on the first failure).
	ExecPolicy dataflow.ErrorPolicy
	// ExecOpRetries is the executor's per-record operator retry budget.
	ExecOpRetries int
	// ExecTrace, when set, records per-record lineage traces for every
	// dataflow execution the system runs (keyed by the record's "id").
	ExecTrace *trace.Recorder
	// ExecLog, when set, receives the event log of every dataflow
	// execution the system runs, and (unless Corpora.Log is already set)
	// of corpus construction too — the third observability pillar.
	ExecLog *evlog.Sink
	// ExecProf, when set, attributes per-operator cost for every dataflow
	// execution the system runs — the fifth observability pillar.
	ExecProf *prof.Profiler
}

// DefaultConfig returns the standard full-scale (1:10,000) setup.
func DefaultConfig() Config {
	return Config{
		Corpora:      corpora.DefaultBuildConfig(),
		CRFTrainDocs: 300,
		POSTrainDocs: 300,
		POSMaxTokens: 400,
	}
}

// TestConfig returns a reduced setup for fast tests and examples.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpora.ScaleFactor = 100000
	cfg.Corpora.SeedTermScale = 100
	cfg.Corpora.Web.NumHosts = 80
	cfg.Corpora.Crawl.MaxPages = 400
	cfg.Corpora.Lexicon = textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}
	cfg.Corpora.TrainDocsPerClass = 200
	cfg.CRFTrainDocs = 150
	cfg.POSTrainDocs = 150
	return cfg
}

// System is the assembled end-to-end text-analytics system.
type System struct {
	Cfg Config
	// Set holds the four corpora and the crawl artifacts.
	Set *corpora.Set
	// POS is the HMM part-of-speech tagger.
	POS *postag.Tagger
	// DictMatchers holds the per-class dictionary automatons.
	DictMatchers map[textgen.EntityType]*dict.Matcher
	// CRFTaggers holds the per-class ML taggers.
	CRFTaggers map[textgen.EntityType]*crf.Tagger
}

// NewSystem builds corpora and trains every component. Construction is
// deterministic in the config seed.
func NewSystem(cfg Config) *System {
	if cfg.Corpora.Log == nil {
		cfg.Corpora.Log = cfg.ExecLog
	}
	set := corpora.Build(cfg.Corpora)
	s := &System{
		Cfg:          cfg,
		Set:          set,
		DictMatchers: map[textgen.EntityType]*dict.Matcher{},
		CRFTaggers:   map[textgen.EntityType]*crf.Tagger{},
	}

	// POS tagger: trained on Medline-profile gold tags (MedPost was
	// trained on Medline sentences).
	r := rng.New(cfg.Corpora.Seed).Split("postag-training")
	var posData [][]postag.TaggedToken
	for i := 0; i < cfg.POSTrainDocs; i++ {
		d := set.Generator.Doc(r, textgen.Medline, fmt.Sprint("pos-train", i))
		for _, sent := range d.Sentences {
			row := make([]postag.TaggedToken, len(sent.Tokens))
			for j, tok := range sent.Tokens {
				row[j] = postag.TaggedToken{Word: tok.Text, Tag: tok.Tag}
			}
			posData = append(posData, row)
		}
	}
	posCfg := postag.DefaultConfig()
	if cfg.POSMaxTokens != 0 {
		posCfg.MaxTokens = cfg.POSMaxTokens
	}
	s.POS = postag.Train(posData, posCfg)

	// Dictionary matchers from the curated (in-dictionary) surfaces.
	for _, t := range textgen.EntityTypes {
		s.DictMatchers[t] = dict.Build(t.String(),
			set.Lexicon.DictionarySurfaces(t), dict.DefaultOptions())
	}

	// CRF taggers trained on Medline-profile documents only (§5: "all
	// ML-based methods ... employ models trained on Medline abstracts").
	rc := rng.New(cfg.Corpora.Seed).Split("crf-training")
	var crfDocs []*textgen.Doc
	for i := 0; i < cfg.CRFTrainDocs; i++ {
		crfDocs = append(crfDocs, set.Generator.Doc(rc, textgen.Medline, fmt.Sprint("crf-train", i)))
	}
	for _, t := range textgen.EntityTypes {
		s.CRFTaggers[t] = crf.Train(t, crf.TrainingSentences(crfDocs, t), crf.DefaultConfig())
	}
	return s
}

// ExtractDict runs dictionary NER of one class over text.
func (s *System) ExtractDict(t textgen.EntityType, text string) []EntityAnn {
	ms := s.DictMatchers[t].Find(text)
	out := make([]EntityAnn, len(ms))
	for i, m := range ms {
		out[i] = EntityAnn{Type: t, Method: Dict, Start: m.Start, End: m.End, Surface: m.Surface}
	}
	return out
}

// ExtractML runs CRF NER of one class over text.
func (s *System) ExtractML(t textgen.EntityType, text string) []EntityAnn {
	ms := s.CRFTaggers[t].Extract(text)
	out := make([]EntityAnn, len(ms))
	for i, m := range ms {
		out[i] = EntityAnn{Type: t, Method: ML, Start: m.Start, End: m.End, Surface: m.Surface}
	}
	return out
}
