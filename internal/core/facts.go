package core

import (
	"fmt"

	"webtextie/internal/corpora"
	"webtextie/internal/store"
)

// ExportFacts runs the analysis flow over a corpus and writes every
// extracted entity mention as a store.Fact into chunked JSONL under dir —
// the "structured fact database" end product of the pipeline (§1). It
// returns the analysis and the number of facts written.
func (s *System) ExportFacts(reg *Registry, c *corpora.Corpus, dop int,
	dir string, chunkBytes int64) (*CorpusAnalysis, int64, error) {

	w, err := store.NewWriter(dir, "facts-"+c.Kind.String(), chunkBytes)
	if err != nil {
		return nil, 0, err
	}
	var writeErr error
	a, err := s.AnalyzeCorpusFunc(reg, c, dop, func(docID string, ents []EntityAnn) {
		if writeErr != nil {
			return
		}
		for _, e := range ents {
			writeErr = w.Write(store.Fact{
				DocID: docID, Corpus: c.Kind.String(),
				Type: e.Type.String(), Method: e.Method.String(),
				Surface: e.Surface, Start: e.Start, End: e.End,
			})
			if writeErr != nil {
				return
			}
		}
	})
	if cerr := w.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil {
		err = writeErr
	}
	if err != nil {
		return nil, 0, fmt.Errorf("core: exporting facts: %w", err)
	}
	return a, w.Records(), nil
}
