package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"webtextie/internal/annot"
	"webtextie/internal/boiler"
	"webtextie/internal/classify"
	"webtextie/internal/dataflow"
	"webtextie/internal/dedup"
	"webtextie/internal/htmlkit"
	"webtextie/internal/langid"
	"webtextie/internal/ling"
	"webtextie/internal/meteor"
	"webtextie/internal/mimetype"
	"webtextie/internal/nlp"
	"webtextie/internal/relex"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// Record field conventions shared by all operators:
//
//	id        string              document identifier / URL
//	html      string              raw HTML (web documents)
//	text      string              analysis text
//	mime      string              detected MIME type
//	lang      string              detected language
//	sentences []nlp.Span          sentence spans over text
//	tokens    [][]nlp.TokenSpan   per-sentence tokens
//	pos       [][]string          per-sentence POS tags
//	pos_failed int                sentences the tagger crashed on
//	anns      []annot.Annotation  linguistic annotations
//	ling      ling.DocStats       per-document linguistic measurements
//	entities  []EntityAnn         extracted entity mentions
//	relevant  bool                classifier decision
//	prob      float64             classifier posterior

// opBuilder constructs an operator from parameters.
type opBuilder func(p meteor.Params) (*dataflow.Op, error)

// Registry resolves operator names for Meteor scripts and programmatic
// flow construction. It holds the trained components of a System.
type Registry struct {
	sys      *System
	builders map[string]opBuilder
	langID   *langid.Identifier
}

// Registry returns the system's operator registry.
func (s *System) Registry() *Registry {
	r := &Registry{sys: s, builders: map[string]opBuilder{}, langID: langid.New()}
	r.registerBase()
	r.registerWA()
	r.registerDC()
	r.registerIE()
	return r
}

// Resolve implements meteor.Registry.
func (r *Registry) Resolve(name string, params meteor.Params) (*dataflow.Op, error) {
	b, ok := r.builders[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown operator %q", name)
	}
	return b(params)
}

// Names returns all registered operator names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.builders))
	for n := range r.builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Op resolves an operator programmatically, panicking on unknown names —
// for the built-in flow constructors, where a miss is a programming error.
func (r *Registry) Op(name string, params meteor.Params) *dataflow.Op {
	if params == nil {
		params = meteor.Params{}
	}
	op, err := r.Resolve(name, params)
	if err != nil {
		panic(err)
	}
	return op
}

func (r *Registry) register(name string, b opBuilder) {
	if _, dup := r.builders[name]; dup {
		panic("core: duplicate operator " + name)
	}
	r.builders[name] = b
}

// --- field access helpers ---

func strField(rec dataflow.Record, field string) string {
	if v, ok := rec[field].(string); ok {
		return v
	}
	return ""
}

func intField(rec dataflow.Record, field string) int {
	switch v := rec[field].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return 0
}

func withField(rec dataflow.Record, field string, v any) dataflow.Record {
	out := rec.Clone()
	out[field] = v
	return out
}

func paramStr(p meteor.Params, key, def string) string {
	if v, ok := p[key]; ok && v.Str != "" {
		return v.Str
	}
	return def
}

func paramNum(p meteor.Params, key string, def float64) float64 {
	if v, ok := p[key]; ok && v.IsNum {
		return v.Num
	}
	return def
}

var errNoParam = errors.New("core: missing required parameter")

// --- BASE package: general-purpose relational operators ---

func (r *Registry) registerBase() {
	simpleFilter := func(name string, sel float64, reads []string, keep func(dataflow.Record, meteor.Params) bool) {
		r.register(name, func(p meteor.Params) (*dataflow.Op, error) {
			return &dataflow.Op{Name: name, Pkg: dataflow.BASE, Filter: true,
				Reads: reads, Selectivity: sel, Cost: dataflow.Cost{PerKBms: 0.001},
				Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
					if keep(rec, p) {
						emit(rec)
					}
					return nil
				}}, nil
		})
	}

	simpleFilter("filter_length", 0.85, []string{"text"}, func(rec dataflow.Record, p meteor.Params) bool {
		n := len(strField(rec, "text"))
		min := int(paramNum(p, "min", 0))
		max := int(paramNum(p, "max", 1<<30))
		return n >= min && n <= max
	})
	simpleFilter("filter_html_length", 0.95, []string{"html"}, func(rec dataflow.Record, p meteor.Params) bool {
		n := len(strField(rec, "html"))
		return n <= int(paramNum(p, "max", 1<<30))
	})
	simpleFilter("filter_empty_text", 0.95, []string{"text"}, func(rec dataflow.Record, p meteor.Params) bool {
		return strings.TrimSpace(strField(rec, "text")) != ""
	})
	simpleFilter("filter_min_sentences", 0.9, []string{"sentences"}, func(rec dataflow.Record, p meteor.Params) bool {
		spans, _ := rec["sentences"].([]nlp.Span)
		return len(spans) >= int(paramNum(p, "min", 1))
	})
	simpleFilter("filter_field_exists", 0.9, []string{"*"}, func(rec dataflow.Record, p meteor.Params) bool {
		_, ok := rec[paramStr(p, "field", "")]
		return ok
	})
	simpleFilter("filter_num_range", 0.7, []string{"*"}, func(rec dataflow.Record, p meteor.Params) bool {
		v := intField(rec, paramStr(p, "field", ""))
		return v >= int(paramNum(p, "min", -1<<30)) && v <= int(paramNum(p, "max", 1<<30))
	})

	r.register("sample", func(p meteor.Params) (*dataflow.Op, error) {
		rate := paramNum(p, "rate", 0.1)
		return &dataflow.Op{Name: "sample", Pkg: dataflow.BASE, Filter: true,
			Reads: []string{"id"}, Selectivity: rate,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				h := fnv.New64a()
				h.Write([]byte(strField(rec, "id")))
				if float64(h.Sum64()%10000)/10000 < rate {
					emit(rec)
				}
				return nil
			}}, nil
	})

	r.register("limit", func(p meteor.Params) (*dataflow.Op, error) {
		max := int64(paramNum(p, "n", 1000))
		var seen atomic.Int64
		return &dataflow.Op{Name: "limit", Pkg: dataflow.BASE, Filter: true,
			Reads: []string{}, Selectivity: 0.5,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				if seen.Add(1) <= max {
					emit(rec)
				}
				return nil
			}}, nil
	})

	r.register("project", func(p meteor.Params) (*dataflow.Op, error) {
		keepList := paramStr(p, "keep", "")
		if keepList == "" {
			return nil, fmt.Errorf("project: %w: keep", errNoParam)
		}
		keep := map[string]bool{}
		for _, f := range strings.Split(keepList, " ") {
			keep[f] = true
		}
		return &dataflow.Op{Name: "project", Pkg: dataflow.BASE,
			Reads: []string{"*"}, Writes: []string{"*"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				out := dataflow.Record{}
				for k, v := range rec {
					if keep[k] || k == meteor.SourceField {
						out[k] = v
					}
				}
				emit(out)
				return nil
			}}, nil
	})

	r.register("drop_field", func(p meteor.Params) (*dataflow.Op, error) {
		field := paramStr(p, "field", "")
		return &dataflow.Op{Name: "drop_field", Pkg: dataflow.BASE,
			Reads: []string{}, Writes: []string{field}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				out := rec.Clone()
				delete(out, field)
				emit(out)
				return nil
			}}, nil
	})

	r.register("rename_field", func(p meteor.Params) (*dataflow.Op, error) {
		from, to := paramStr(p, "from", ""), paramStr(p, "to", "")
		if from == "" || to == "" {
			return nil, fmt.Errorf("rename_field: %w: from/to", errNoParam)
		}
		return &dataflow.Op{Name: "rename_field", Pkg: dataflow.BASE,
			Reads: []string{from}, Writes: []string{from, to}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				out := rec.Clone()
				if v, ok := out[from]; ok {
					out[to] = v
					delete(out, from)
				}
				emit(out)
				return nil
			}}, nil
	})

	r.register("set_field", func(p meteor.Params) (*dataflow.Op, error) {
		field := paramStr(p, "field", "tag")
		var val any
		if v, ok := p["value"]; ok {
			if v.IsNum {
				val = v.Num
			} else {
				val = v.Str
			}
		}
		return &dataflow.Op{Name: "set_field", Pkg: dataflow.BASE,
			Reads: []string{}, Writes: []string{field}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, field, val))
				return nil
			}}, nil
	})

	countOp := func(name, reads, writes string, count func(dataflow.Record) int) {
		r.register(name, func(p meteor.Params) (*dataflow.Op, error) {
			return &dataflow.Op{Name: name, Pkg: dataflow.BASE,
				Reads: []string{reads}, Writes: []string{writes}, Selectivity: 1,
				Cost: dataflow.Cost{PerKBms: 0.005},
				Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
					emit(withField(rec, writes, count(rec)))
					return nil
				}}, nil
		})
	}
	countOp("count_chars", "text", "chars", func(rec dataflow.Record) int {
		return len(strField(rec, "text"))
	})
	countOp("count_words", "text", "words", func(rec dataflow.Record) int {
		return len(strings.Fields(strField(rec, "text")))
	})
	countOp("count_sentences", "sentences", "n_sentences", func(rec dataflow.Record) int {
		spans, _ := rec["sentences"].([]nlp.Span)
		return len(spans)
	})
	countOp("count_entities", "entities", "n_entities", func(rec dataflow.Record) int {
		ents, _ := rec["entities"].([]EntityAnn)
		return len(ents)
	})
	countOp("count_links", "links", "n_links", func(rec dataflow.Record) int {
		links, _ := rec["links"].([]htmlkit.Link)
		return len(links)
	})

	r.register("identity", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "identity", Pkg: dataflow.BASE,
			Reads: []string{}, Writes: []string{}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(rec)
				return nil
			}}, nil
	})
	r.register("union", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "union", Pkg: dataflow.BASE,
			Reads: []string{}, Writes: []string{}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(rec)
				return nil
			}}, nil
	})
	r.register("tag_source", func(p meteor.Params) (*dataflow.Op, error) {
		v := paramStr(p, "value", "unknown")
		return &dataflow.Op{Name: "tag_source", Pkg: dataflow.BASE,
			Reads: []string{}, Writes: []string{"source"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "source", v))
				return nil
			}}, nil
	})
	r.register("hash_id", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "hash_id", Pkg: dataflow.BASE,
			Reads: []string{"id"}, Writes: []string{"hash"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				h := fnv.New64a()
				h.Write([]byte(strField(rec, "id")))
				emit(withField(rec, "hash", int(h.Sum64()&0x7fffffff)))
				return nil
			}}, nil
	})
	r.register("lowercase_text", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "lowercase_text", Pkg: dataflow.BASE,
			Reads: []string{"text"}, Writes: []string{"text"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.01},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "text", strings.ToLower(strField(rec, "text"))))
				return nil
			}}, nil
	})
	r.register("truncate_text", func(p meteor.Params) (*dataflow.Op, error) {
		max := int(paramNum(p, "max", 100000))
		return &dataflow.Op{Name: "truncate_text", Pkg: dataflow.BASE,
			Reads: []string{"text"}, Writes: []string{"text"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				t := strField(rec, "text")
				if len(t) > max {
					emit(withField(rec, "text", t[:max]))
				} else {
					emit(rec)
				}
				return nil
			}}, nil
	})
}

// --- WA package: web analytics operators ---

func (r *Registry) registerWA() {
	r.register("mime_detect", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "mime_detect", Pkg: dataflow.WA,
			Reads: []string{"id", "html"}, Writes: []string{"mime"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.005},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				mt := mimetype.Detect(strField(rec, "id"), []byte(strField(rec, "html")))
				emit(withField(rec, "mime", string(mt)))
				return nil
			}}, nil
	})
	r.register("mime_filter", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "mime_filter", Pkg: dataflow.WA, Filter: true,
			Reads: []string{"id", "html"}, Selectivity: 0.9,
			Cost: dataflow.Cost{PerKBms: 0.005},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				if mimetype.Detect(strField(rec, "id"), []byte(strField(rec, "html"))).IsTextual() {
					emit(rec)
				}
				return nil
			}}, nil
	})
	r.register("parse_html", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "parse_html", Pkg: dataflow.WA,
			Reads: []string{"html"}, Writes: []string{"html_tokens"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.05},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "html_tokens", htmlkit.Tokenize(strField(rec, "html"))))
				return nil
			}}, nil
	})
	r.register("repair_markup", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "repair_markup", Pkg: dataflow.WA,
			Reads: []string{"html_tokens"}, Writes: []string{"html_tokens", "repairs"},
			Selectivity: 1, Cost: dataflow.Cost{PerKBms: 0.03},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				toks, _ := rec["html_tokens"].([]htmlkit.Token)
				repaired, stats := htmlkit.Repair(toks)
				out := rec.Clone()
				out["html_tokens"] = repaired
				out["repairs"] = stats.Total()
				emit(out)
				return nil
			}}, nil
	})
	r.register("remove_markup", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "remove_markup", Pkg: dataflow.WA,
			Reads: []string{"html"}, Writes: []string{"text"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.08},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "text", htmlkit.StripMarkup(strField(rec, "html"))))
				return nil
			}}, nil
	})
	r.register("boilerplate_detect", func(p meteor.Params) (*dataflow.Op, error) {
		c := boiler.Default()
		if paramNum(p, "keep_tables", 0) > 0 {
			c.KeepTables = true
		}
		return &dataflow.Op{Name: "boilerplate_detect", Pkg: dataflow.WA,
			Reads:       []string{"html"},
			Writes:      []string{"text", "blocks_total", "blocks_content", "repairs"},
			Selectivity: 1, Cost: dataflow.Cost{PerKBms: 0.1},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				res := c.Extract(strField(rec, "html"))
				out := rec.Clone()
				out["text"] = res.NetText
				out["blocks_total"] = res.TotalBlocks
				out["blocks_content"] = res.ContentBlocks
				out["repairs"] = res.RepairStats.Total()
				emit(out)
				return nil
			}}, nil
	})
	r.register("extract_links", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "extract_links", Pkg: dataflow.WA,
			Reads: []string{"html"}, Writes: []string{"links"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.05},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "links", htmlkit.ExtractLinks(htmlkit.Tokenize(strField(rec, "html")))))
				return nil
			}}, nil
	})
	r.register("extract_title", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "extract_title", Pkg: dataflow.WA,
			Reads: []string{"html"}, Writes: []string{"title"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "title", htmlkit.Title(htmlkit.Tokenize(strField(rec, "html")))))
				return nil
			}}, nil
	})
	r.register("language_detect", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "language_detect", Pkg: dataflow.WA,
			Reads: []string{"text"}, Writes: []string{"lang", "lang_conf"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.05},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				lang, conf := r.langID.Identify(strField(rec, "text"))
				out := rec.Clone()
				out["lang"] = lang
				out["lang_conf"] = conf
				emit(out)
				return nil
			}}, nil
	})
	r.register("language_filter", func(p meteor.Params) (*dataflow.Op, error) {
		want := paramStr(p, "lang", "en")
		return &dataflow.Op{Name: "language_filter", Pkg: dataflow.WA, Filter: true,
			Reads: []string{"text"}, Selectivity: 0.85,
			Cost: dataflow.Cost{PerKBms: 0.05},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				lang, conf := r.langID.Identify(strField(rec, "text"))
				if lang == want && conf > 0.5 {
					emit(rec)
				}
				return nil
			}}, nil
	})
	r.register("url_host", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "url_host", Pkg: dataflow.WA,
			Reads: []string{"id"}, Writes: []string{"host"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				host, _, err := synthweb.SplitURL(strField(rec, "id"))
				if err != nil {
					host = ""
				}
				emit(withField(rec, "host", host))
				return nil
			}}, nil
	})
	r.register("strip_scripts", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "strip_scripts", Pkg: dataflow.WA,
			Reads: []string{"html"}, Writes: []string{"html"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				toks := htmlkit.Tokenize(strField(rec, "html"))
				// Re-rendering without script bodies: the tokenizer already
				// drops raw-text content, so a simple strip suffices.
				var b strings.Builder
				for _, t := range toks {
					if t.Type == htmlkit.Text {
						b.WriteString(t.Data)
						b.WriteByte(' ')
					}
				}
				emit(withField(rec, "html", b.String()))
				return nil
			}}, nil
	})
}

// --- DC package: data cleansing operators ---

func (r *Registry) registerDC() {
	r.register("dedupe_exact", func(p meteor.Params) (*dataflow.Op, error) {
		var mu sync.Mutex
		seen := map[uint64]bool{}
		return &dataflow.Op{Name: "dedupe_exact", Pkg: dataflow.DC, Filter: true,
			Reads: []string{"text"}, Selectivity: 0.95,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				h := fnv.New64a()
				h.Write([]byte(strField(rec, "text")))
				k := h.Sum64()
				mu.Lock()
				dup := seen[k]
				seen[k] = true
				mu.Unlock()
				if !dup {
					emit(rec)
				}
				return nil
			}}, nil
	})
	r.register("dedupe_near", func(p meteor.Params) (*dataflow.Op, error) {
		threshold := paramNum(p, "threshold", 0.8)
		idx := dedup.NewIndex(threshold)
		return &dataflow.Op{Name: "dedupe_near", Pkg: dataflow.DC, Filter: true,
			Reads: []string{"text", "id"}, Selectivity: 0.95,
			Cost: dataflow.Cost{PerKBms: 0.1, MemoryBytes: 256 << 20},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				sig := dedup.Sketch(strField(rec, "text"), 3)
				if _, dup := idx.AddOrFind(strField(rec, "id"), sig); !dup {
					emit(rec)
				}
				return nil
			}}, nil
	})
	r.register("normalize_whitespace", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "normalize_whitespace", Pkg: dataflow.DC,
			Reads: []string{"text"}, Writes: []string{"text"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.01},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "text", strings.Join(strings.Fields(strField(rec, "text")), " ")))
				return nil
			}}, nil
	})
	r.register("remove_control_chars", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "remove_control_chars", Pkg: dataflow.DC,
			Reads: []string{"text"}, Writes: []string{"text"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				cleaned := strings.Map(func(c rune) rune {
					if c < 32 && c != '\n' && c != '\t' {
						return -1
					}
					return c
				}, strField(rec, "text"))
				emit(withField(rec, "text", cleaned))
				return nil
			}}, nil
	})
	r.register("classify_relevance", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "classify_relevance", Pkg: dataflow.DC,
			Reads: []string{"text"}, Writes: []string{"relevant", "prob"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.1, MemoryBytes: 64 << 20},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				prob := r.sys.Set.Classifier.ProbRelevant(strField(rec, "text"))
				out := rec.Clone()
				out["prob"] = prob
				out["relevant"] = r.sys.Set.Classifier.Classify(strField(rec, "text")) == classify.Relevant
				emit(out)
				return nil
			}}, nil
	})
	r.register("relevance_filter", func(p meteor.Params) (*dataflow.Op, error) {
		thresh := paramNum(p, "threshold", 0.5)
		return &dataflow.Op{Name: "relevance_filter", Pkg: dataflow.DC, Filter: true,
			Reads: []string{"text"}, Selectivity: 0.4,
			Cost: dataflow.Cost{PerKBms: 0.1, MemoryBytes: 64 << 20},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				if r.sys.Set.Classifier.ProbRelevant(strField(rec, "text")) >= thresh {
					emit(rec)
				}
				return nil
			}}, nil
	})
	r.register("merge_entities", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "merge_entities", Pkg: dataflow.DC,
			Reads: []string{"entities"}, Writes: []string{"entities"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				ents, _ := rec["entities"].([]EntityAnn)
				type key struct {
					t          textgen.EntityType
					m          Method
					start, end int
				}
				seen := map[key]bool{}
				out := make([]EntityAnn, 0, len(ents))
				for _, e := range ents {
					k := key{e.Type, e.Method, e.Start, e.End}
					if !seen[k] {
						seen[k] = true
						out = append(out, e)
					}
				}
				sort.Slice(out, func(i, j int) bool {
					if out[i].Start != out[j].Start {
						return out[i].Start < out[j].Start
					}
					return out[i].End < out[j].End
				})
				emit(withField(rec, "entities", out))
				return nil
			}}, nil
	})
	r.register("filter_tla_entities", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "filter_tla_entities", Pkg: dataflow.DC,
			Reads: []string{"entities"}, Writes: []string{"entities", "tla_removed"},
			Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				ents, _ := rec["entities"].([]EntityAnn)
				out := make([]EntityAnn, 0, len(ents))
				var removed []EntityAnn
				for _, e := range ents {
					// The paper filters TLAs from ML gene annotations only
					// (§4.3.2); the removals are kept for Table 4, which
					// reports the unfiltered ML counts.
					if e.Method == ML && e.Type == textgen.Gene && isTLA(e.Surface) {
						removed = append(removed, e)
						continue
					}
					out = append(out, e)
				}
				o := rec.Clone()
				o["entities"] = out
				o["tla_removed"] = removed
				emit(o)
				return nil
			}}, nil
	})
	r.register("resolve_entity_overlaps", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "resolve_entity_overlaps", Pkg: dataflow.DC,
			Reads: []string{"entities"}, Writes: []string{"entities"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				ents, _ := rec["entities"].([]EntityAnn)
				sort.Slice(ents, func(i, j int) bool {
					if ents[i].Start != ents[j].Start {
						return ents[i].Start < ents[j].Start
					}
					return ents[i].End-ents[i].Start > ents[j].End-ents[j].Start
				})
				var out []EntityAnn
				lastEnd := map[Method]int{}
				for _, e := range ents {
					if e.Start < lastEnd[e.Method] {
						continue
					}
					out = append(out, e)
					lastEnd[e.Method] = e.End
				}
				emit(withField(rec, "entities", out))
				return nil
			}}, nil
	})
	r.register("trim_text", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "trim_text", Pkg: dataflow.DC,
			Reads: []string{"text"}, Writes: []string{"text"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "text", strings.TrimSpace(strField(rec, "text"))))
				return nil
			}}, nil
	})
}

func isTLA(s string) bool {
	if len(s) != 3 {
		return false
	}
	for i := 0; i < 3; i++ {
		if s[i] < 'A' || s[i] > 'Z' {
			return false
		}
	}
	return true
}

// --- IE package: information extraction operators ---

func (r *Registry) registerIE() {
	r.register("annotate_sentences", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "annotate_sentences", Pkg: dataflow.IE,
			Reads: []string{"text"}, Writes: []string{"sentences"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.02},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "sentences", nlp.SplitSentences(strField(rec, "text"))))
				return nil
			}}, nil
	})
	r.register("annotate_tokens", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "annotate_tokens", Pkg: dataflow.IE,
			Reads: []string{"text", "sentences"}, Writes: []string{"tokens"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.05},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				text := strField(rec, "text")
				spans, _ := rec["sentences"].([]nlp.Span)
				toks := make([][]nlp.TokenSpan, len(spans))
				for i, s := range spans {
					toks[i] = nlp.Tokenize(text[s.Start:s.End], s.Start)
				}
				emit(withField(rec, "tokens", toks))
				return nil
			}}, nil
	})
	r.register("pos_tag", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "pos_tag", Pkg: dataflow.IE,
			Reads: []string{"tokens"}, Writes: []string{"pos", "pos_failed"},
			Selectivity: 1,
			Cost:        dataflow.Cost{PerKBms: 0.5, StartupMs: 1500, MemoryBytes: 256 << 20},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				toks, _ := rec["tokens"].([][]nlp.TokenSpan)
				pos := make([][]string, len(toks))
				failed := 0
				for i, sent := range toks {
					words := make([]string, len(sent))
					for j, t := range sent {
						words[j] = t.Text
					}
					tags, err := r.sys.POS.Tag(words)
					if err != nil {
						// MedPost-style crash on a degenerate sentence: skip
						// the sentence, keep the document (§4.2/§5).
						failed++
						continue
					}
					pos[i] = tags
				}
				out := rec.Clone()
				out["pos"] = pos
				out["pos_failed"] = failed
				emit(out)
				return nil
			}}, nil
	})
	r.register("pos_tag_strict", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "pos_tag_strict", Pkg: dataflow.IE,
			Reads: []string{"tokens"}, Writes: []string{"pos"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.5, StartupMs: 1500, MemoryBytes: 256 << 20},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				toks, _ := rec["tokens"].([][]nlp.TokenSpan)
				pos := make([][]string, len(toks))
				for i, sent := range toks {
					words := make([]string, len(sent))
					for j, t := range sent {
						words[j] = t.Text
					}
					tags, err := r.sys.POS.Tag(words)
					if err != nil {
						return err // drops the whole document — the unpatched tool
					}
					pos[i] = tags
				}
				emit(withField(rec, "pos", pos))
				return nil
			}}, nil
	})

	lingOp := func(name string, kind annot.Kind) {
		r.register(name, func(p meteor.Params) (*dataflow.Op, error) {
			return &dataflow.Op{Name: name, Pkg: dataflow.IE,
				Reads: []string{"text", "sentences", "id"}, Writes: []string{"anns"},
				Selectivity: 1, Cost: dataflow.Cost{PerKBms: 0.05},
				Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
					text := strField(rec, "text")
					spans, _ := rec["sentences"].([]nlp.Span)
					all := ling.Analyze(strField(rec, "id"), text, spans)
					prev, _ := rec["anns"].([]annot.Annotation)
					out := append(append([]annot.Annotation{}, prev...), filterKind(all, kind)...)
					emit(withField(rec, "anns", out))
					return nil
				}}, nil
		})
	}
	lingOp("annotate_negation", annot.KindNegation)
	lingOp("annotate_pronouns", annot.KindPronoun)
	lingOp("annotate_parens", annot.KindParen)

	r.register("ling_stats", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "ling_stats", Pkg: dataflow.IE,
			Reads: []string{"text", "id"}, Writes: []string{"ling"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 0.15},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(withField(rec, "ling", ling.Measure(strField(rec, "id"), strField(rec, "text"))))
				return nil
			}}, nil
	})

	entityType := func(p meteor.Params) (textgen.EntityType, error) {
		switch paramStr(p, "type", "") {
		case "gene":
			return textgen.Gene, nil
		case "drug":
			return textgen.Drug, nil
		case "disease":
			return textgen.Disease, nil
		default:
			return textgen.None, fmt.Errorf("annotate_entities: unknown type %q", paramStr(p, "type", ""))
		}
	}
	r.register("annotate_entities_dict", func(p meteor.Params) (*dataflow.Op, error) {
		t, err := entityType(p)
		if err != nil {
			return nil, err
		}
		m := r.sys.DictMatchers[t]
		st := m.Stats()
		return &dataflow.Op{Name: "annotate_entities_dict:" + t.String(), Pkg: dataflow.IE,
			Reads: []string{"text", "entities"}, Writes: []string{"entities"}, Selectivity: 1,
			Cost: dataflow.Cost{
				PerKBms:   0.05,
				StartupMs: paperScaledStartupMs(t),
				// The expanded automaton footprint, extrapolated to the
				// paper's dictionary sizes (6-20 GB per worker, §4.2).
				MemoryBytes: paperScaledMemory(t, st.ApproxBytes()),
			},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				prev, _ := rec["entities"].([]EntityAnn)
				found := r.sys.ExtractDict(t, strField(rec, "text"))
				emit(withField(rec, "entities", append(append([]EntityAnn{}, prev...), found...)))
				return nil
			}}, nil
	})
	r.register("annotate_entities_ml", func(p meteor.Params) (*dataflow.Op, error) {
		t, err := entityType(p)
		if err != nil {
			return nil, err
		}
		return &dataflow.Op{Name: "annotate_entities_ml:" + t.String(), Pkg: dataflow.IE,
			Reads: []string{"text", "entities"}, Writes: []string{"entities"}, Selectivity: 1,
			Cost: dataflow.Cost{PerKBms: 30, StartupMs: 10000, MemoryBytes: 2 << 30},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				prev, _ := rec["entities"].([]EntityAnn)
				found := r.sys.ExtractML(t, strField(rec, "text"))
				emit(withField(rec, "entities", append(append([]EntityAnn{}, prev...), found...)))
				return nil
			}}, nil
	})
	r.register("abbreviations", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "abbreviations", Pkg: dataflow.IE,
			Reads: []string{"text"}, Writes: []string{"abbrevs"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				text := strField(rec, "text")
				var abbrevs []string
				for i := 0; i+4 < len(text); i++ {
					if text[i] == '(' && i+4 < len(text) && text[i+4] == ')' &&
						isTLA(text[i+1:i+4]) {
						abbrevs = append(abbrevs, text[i+1:i+4])
					}
				}
				emit(withField(rec, "abbrevs", abbrevs))
				return nil
			}}, nil
	})
	r.register("sentence_lengths", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "sentence_lengths", Pkg: dataflow.IE,
			Reads: []string{"sentences"}, Writes: []string{"sent_lengths"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				spans, _ := rec["sentences"].([]nlp.Span)
				ls := make([]int, len(spans))
				for i, s := range spans {
					ls[i] = s.Len()
				}
				emit(withField(rec, "sent_lengths", ls))
				return nil
			}}, nil
	})
	r.register("filter_degenerate_sentences", func(p meteor.Params) (*dataflow.Op, error) {
		max := int(paramNum(p, "max_chars", 600))
		return &dataflow.Op{Name: "filter_degenerate_sentences", Pkg: dataflow.IE,
			Reads: []string{"text", "sentences"}, Writes: []string{"text", "sentences"},
			Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				// The §5 workaround: "we eventually had to define a hard
				// upper limit on the texts to be analyzed". Over-long
				// "sentences" (navigation residue, keyword soup) are cut
				// out of the analysis text entirely, so no downstream tool
				// — POS tagging or NER — ever sees them.
				text := strField(rec, "text")
				spans, _ := rec["sentences"].([]nlp.Span)
				dropped := false
				var parts []string
				for _, s := range spans {
					if s.Len() <= max {
						parts = append(parts, text[s.Start:s.End])
					} else {
						dropped = true
					}
				}
				if !dropped {
					emit(rec)
					return nil
				}
				newText := strings.Join(parts, " ")
				out := rec.Clone()
				out["text"] = newText
				out["sentences"] = nlp.SplitSentences(newText)
				emit(out)
				return nil
			}}, nil
	})
	r.register("token_count", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "token_count", Pkg: dataflow.IE,
			Reads: []string{"tokens"}, Writes: []string{"n_tokens"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				toks, _ := rec["tokens"].([][]nlp.TokenSpan)
				n := 0
				for _, s := range toks {
					n += len(s)
				}
				emit(withField(rec, "n_tokens", n))
				return nil
			}}, nil
	})
	r.register("split_sentence_records", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "split_sentence_records", Pkg: dataflow.IE,
			Reads: []string{"text", "sentences", "id"}, Writes: []string{"*"},
			Selectivity: 8, // 1:N — one output record per sentence
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				text := strField(rec, "text")
				spans, _ := rec["sentences"].([]nlp.Span)
				id := strField(rec, "id")
				for i, s := range spans {
					emit(dataflow.Record{
						"id":       fmt.Sprintf("%s#s%d", id, i),
						"doc_id":   id,
						"sentence": i,
						"text":     text[s.Start:s.End],
					})
				}
				return nil
			}}, nil
	})
	r.register("keep_entities_of_type", func(p meteor.Params) (*dataflow.Op, error) {
		t, err := entityType(p)
		if err != nil {
			return nil, err
		}
		return &dataflow.Op{Name: "keep_entities_of_type:" + t.String(), Pkg: dataflow.IE,
			Reads: []string{"entities"}, Writes: []string{"entities"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				ents, _ := rec["entities"].([]EntityAnn)
				out := make([]EntityAnn, 0, len(ents))
				for _, e := range ents {
					if e.Type == t {
						out = append(out, e)
					}
				}
				emit(withField(rec, "entities", out))
				return nil
			}}, nil
	})
	r.register("keep_entities_by_method", func(p meteor.Params) (*dataflow.Op, error) {
		var m Method
		switch paramStr(p, "method", "dict") {
		case "dict":
			m = Dict
		case "ml":
			m = ML
		default:
			return nil, fmt.Errorf("keep_entities_by_method: unknown method %q", paramStr(p, "method", ""))
		}
		return &dataflow.Op{Name: "keep_entities_by_method", Pkg: dataflow.IE,
			Reads: []string{"entities"}, Writes: []string{"entities"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				ents, _ := rec["entities"].([]EntityAnn)
				out := make([]EntityAnn, 0, len(ents))
				for _, e := range ents {
					if e.Method == m {
						out = append(out, e)
					}
				}
				emit(withField(rec, "entities", out))
				return nil
			}}, nil
	})
	r.register("count_negations", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "count_negations", Pkg: dataflow.IE,
			Reads: []string{"anns"}, Writes: []string{"n_negations"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				anns, _ := rec["anns"].([]annot.Annotation)
				n := 0
				for _, a := range anns {
					if a.Kind == annot.KindNegation {
						n++
					}
				}
				emit(withField(rec, "n_negations", n))
				return nil
			}}, nil
	})
	r.register("count_pronouns", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "count_pronouns", Pkg: dataflow.IE,
			Reads: []string{"anns"}, Writes: []string{"n_pronouns"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				anns, _ := rec["anns"].([]annot.Annotation)
				n := 0
				for _, a := range anns {
					if a.Kind == annot.KindPronoun {
						n++
					}
				}
				emit(withField(rec, "n_pronouns", n))
				return nil
			}}, nil
	})
	r.register("entity_density", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "entity_density", Pkg: dataflow.IE,
			Reads: []string{"entities", "sentences"}, Writes: []string{"entities_per_ksent"},
			Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				ents, _ := rec["entities"].([]EntityAnn)
				spans, _ := rec["sentences"].([]nlp.Span)
				d := 0.0
				if len(spans) > 0 {
					d = 1000 * float64(len(ents)) / float64(len(spans))
				}
				emit(withField(rec, "entities_per_ksent", d))
				return nil
			}}, nil
	})
	r.register("annotate_relations", func(p meteor.Params) (*dataflow.Op, error) {
		cfg := relex.DefaultConfig()
		if paramNum(p, "cooccurrence", 0) > 0 {
			cfg.RequireTrigger = false
		}
		if paramStr(p, "cross_type_only", "") == "true" {
			cfg.AllowSameType = false
		}
		if d := paramNum(p, "max_distance", 0); d > 0 {
			cfg.MaxPairDistance = int(d)
		}
		return &dataflow.Op{Name: "annotate_relations", Pkg: dataflow.IE,
			Reads: []string{"text", "sentences", "entities"}, Writes: []string{"relations"},
			Selectivity: 1, Cost: dataflow.Cost{PerKBms: 0.1},
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				text := strField(rec, "text")
				spans, _ := rec["sentences"].([]nlp.Span)
				ents, _ := rec["entities"].([]EntityAnn)
				var ms []relex.Mention
				seen := map[[2]int]bool{}
				for _, e := range ents {
					k := [2]int{e.Start, e.End}
					if seen[k] {
						continue // dictionary and ML agreeing on a span
					}
					seen[k] = true
					ms = append(ms, relex.Mention{
						Type: e.Type.String(), Start: e.Start, End: e.End,
						Surface: e.Surface,
					})
				}
				emit(withField(rec, "relations", relex.Extract(text, spans, ms, cfg)))
				return nil
			}}, nil
	})
	r.register("count_relations", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "count_relations", Pkg: dataflow.IE,
			Reads: []string{"relations"}, Writes: []string{"n_relations"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				rels, _ := rec["relations"].([]relex.Relation)
				emit(withField(rec, "n_relations", len(rels)))
				return nil
			}}, nil
	})
	r.register("entity_names", func(p meteor.Params) (*dataflow.Op, error) {
		return &dataflow.Op{Name: "entity_names", Pkg: dataflow.IE,
			Reads: []string{"entities"}, Writes: []string{"names"}, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				ents, _ := rec["entities"].([]EntityAnn)
				seen := map[string]bool{}
				var names []string
				for _, e := range ents {
					if !seen[e.Surface] {
						seen[e.Surface] = true
						names = append(names, e.Surface)
					}
				}
				sort.Strings(names)
				emit(withField(rec, "names", names))
				return nil
			}}, nil
	})
}

func filterKind(anns []annot.Annotation, kind annot.Kind) []annot.Annotation {
	var out []annot.Annotation
	for _, a := range anns {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// paperScaledStartupMs returns the dictionary-load startup cost
// extrapolated to the paper's dictionary sizes: the gene dictionary
// (700,000 entries) took ~20 minutes to load (§4.2).
func paperScaledStartupMs(t textgen.EntityType) float64 {
	switch t {
	case textgen.Gene:
		return 20 * 60 * 1000
	case textgen.Disease:
		return 2 * 60 * 1000
	case textgen.Drug:
		return 90 * 1000
	}
	return 0
}

// paperScaledMemory extrapolates our measured automaton footprint to the
// paper's dictionary scale (§4.2: 6-20 GB per worker).
func paperScaledMemory(t textgen.EntityType, measured int64) int64 {
	switch t {
	case textgen.Gene:
		return 20 << 30
	case textgen.Disease:
		return 8 << 30
	case textgen.Drug:
		return 6 << 30
	}
	return measured
}
