package core

import (
	"fmt"
	"reflect"

	"webtextie/internal/crawler"
	"webtextie/internal/dataflow"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
)

// ResilienceReport demonstrates the fault-injection and resilience layer:
// the same seeded web is crawled with and without retries, with dead hosts
// behind circuit breakers, interrupted/resumed from a checkpoint, and the
// IE data flow digests poisoned records under both error policies. Every
// number here is deterministic in the config seed — rerunning the report
// reproduces the same failures, the same retries, the same breaker trips.
func (e *Experiments) ResilienceReport() string {
	s := e.System()
	cfgC := s.Cfg.Corpora

	catalog := seeds.BuildCatalog(cfgC.Seed+3, s.Set.Lexicon,
		seeds.CatalogSizes{General: 4, Disease: 10, Drug: 8, Gene: 12})
	seedURLs := seeds.Generate(seeds.DefaultEngines(cfgC.Seed+4, s.Set.Web), catalog).SeedURLs

	crawlCfg := func() crawler.Config {
		cfg := cfgC.Crawl
		cfg.MaxPages = 400
		return cfg
	}

	var r report
	r.title("RESILIENCE — deterministic faults, retries, breakers, checkpoint/resume")

	r.section("1. retries recover transient faults (flaky URLs, 429s, slow hosts)")
	chaosCfg := cfgC.Web
	chaosCfg.FailureRate = 0.35
	chaosCfg.RateLimitShare = 0.25
	chaosCfg.SlowHostShare = 0.2
	chaos := synthweb.New(chaosCfg, s.Set.Generator)
	clean := crawler.New(crawlCfg(), s.Set.Web, s.Set.Classifier.Clone()).Run(seedURLs).Stats
	noRetry := crawlCfg()
	noRetry.MaxRetries = 0
	nr := crawler.New(noRetry, chaos, s.Set.Classifier.Clone()).Run(seedURLs).Stats
	wr := crawler.New(crawlCfg(), chaos, s.Set.Classifier.Clone()).Run(seedURLs).Stats
	r.line("fault-free web:             %4d fetched, %4d relevant", clean.Fetched, clean.Relevant)
	r.line("35%% flaky, retries off:     %4d fetched, %4d relevant, %4d fetch errors",
		nr.Fetched, nr.Relevant, nr.FetchErrors)
	r.line("35%% flaky, retries on:      %4d fetched, %4d relevant (%d retries, %d exhausted, %d rate-limited)",
		wr.Fetched, wr.Relevant, wr.Retries, wr.RetriesExhausted, wr.RateLimited)
	r.line("virtual crawl time:         %s clean vs %s under faults (backoff + retry-after + latency)",
		msString(clean.VirtualMs), msString(wr.VirtualMs))

	r.section("2. circuit breakers fence off dead hosts")
	deadCfg := chaosCfg
	deadCfg.DeadHostShare = 0.12
	deadWeb := synthweb.New(deadCfg, s.Set.Generator)
	ds := crawler.New(crawlCfg(), deadWeb, s.Set.Classifier.Clone()).Run(seedURLs).Stats
	r.line("12%% of hosts down: %d fetched, %d relevant", ds.Fetched, ds.Relevant)
	r.line("breakers opened %d times and deferred %d fetches away from dead hosts",
		ds.BreakerOpens, ds.BreakerDeferred)
	r.line("%d URLs abandoned after exhausting their %d-retry budget",
		ds.RetriesExhausted, crawlCfg().MaxRetries)

	r.section("3. checkpoint/resume reproduces the uninterrupted crawl")
	// Shrink the fetch lists so the crawl spans many cycles and the
	// checkpoint lands mid-crawl, not after the MaxPages stop.
	ckCfg := crawlCfg()
	ckCfg.FetchListSize = 50
	full := crawler.New(ckCfg, chaos, s.Set.Classifier.Clone())
	full.Seed(seedURLs)
	for full.Step() {
	}
	want := full.Finish().Stats

	half := crawler.New(ckCfg, chaos, s.Set.Classifier.Clone())
	half.Seed(seedURLs)
	for i := 0; i < 3 && half.Step(); i++ {
	}
	blob, err := half.Checkpoint().Marshal()
	if err != nil {
		r.line("checkpoint failed: %v", err)
		return r.String()
	}
	cp, err := crawler.UnmarshalCheckpoint(blob)
	if err != nil {
		r.line("checkpoint parse failed: %v", err)
		return r.String()
	}
	resumed, err := crawler.Resume(ckCfg, chaos, s.Set.Classifier.Clone(), cp)
	if err != nil {
		r.line("resume failed: %v", err)
		return r.String()
	}
	for resumed.Step() {
	}
	got := resumed.Finish().Stats
	r.line("checkpoint at cycle %d: %d bytes of JSON", cp.Stats.Cycles, len(blob))
	r.line("uninterrupted:      %4d fetched, %4d relevant, %d cycles", want.Fetched, want.Relevant, want.Cycles)
	r.line("interrupt + resume: %4d fetched, %4d relevant, %d cycles", got.Fetched, got.Relevant, got.Cycles)
	r.line("final statistics identical: %v", reflect.DeepEqual(want, got))

	r.section("4. data-flow error policy: quarantine vs fail-fast")
	mkPlan := func() *dataflow.Plan {
		p := &dataflow.Plan{}
		src := p.Add(&dataflow.Op{Name: "ingest", Pkg: dataflow.BASE, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				emit(rec)
				return nil
			}})
		p.Add(&dataflow.Op{Name: "fragile-tagger", Pkg: dataflow.IE, Selectivity: 1,
			Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
				i := rec["i"].(int)
				if i%50 == 0 {
					panic("tagger crash on degenerate sentence")
				}
				if i%9 == 0 {
					return errStaticDegenerate
				}
				emit(rec)
				return nil
			}}, src)
		return p
	}
	recs := make([]dataflow.Record, 200)
	for i := range recs {
		recs[i] = dataflow.Record{"i": i}
	}
	p := mkPlan()
	out, st, err := dataflow.Execute(p, recs, dataflow.ExecConfig{DoP: 4})
	if err != nil {
		r.line("quarantine run failed: %v", err)
		return r.String()
	}
	sink := p.Sinks()[0].ID()
	r.line("quarantine policy: %d/%d records survived a tagger that crashes or errors on 1 in ~8",
		len(out[sink]), len(recs))
	r.line("  %d errors (%d of them panics), %d records dead-lettered with their failing operator",
		st.TotalErrors(), totalPanics(st), st.TotalQuarantined())
	ff := dataflow.ExecConfig{DoP: 4, Policy: dataflow.FailFast}
	if _, _, err := dataflow.Execute(mkPlan(), recs, ff); err != nil {
		r.line("fail-fast policy:  run aborted — %v", err)
	} else {
		r.line("fail-fast policy:  unexpectedly succeeded")
	}
	return r.String()
}

// errStaticDegenerate is package-level so the quarantine report renders the
// same error text every run.
var errStaticDegenerate = errDegenerate{}

type errDegenerate struct{}

func (errDegenerate) Error() string { return "degenerate sentence: no tokens" }

// totalPanics sums recovered panics across all plan nodes.
func totalPanics(st *dataflow.ExecStats) int64 {
	var n int64
	for _, ns := range st.PerNode {
		n += ns.Panics
	}
	return n
}

// msString renders virtual milliseconds as seconds with one decimal.
func msString(ms int64) string {
	return fmt.Sprintf("%.1fs", float64(ms)/1000)
}
