package core

import (
	"webtextie/internal/crawler"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
)

// ExtensionsReport covers the features the paper names as future work and
// that this reproduction implements:
//
//   - §5 "Crawling and text analytics as a consolidated process": the IE
//     pipeline's dictionary matchers feed the crawler's relevance decision
//     (EntityBoost);
//   - §2.1 incremental classifier updates during the crawl (SelfTraining);
//   - robustness under transient fetch failures (real crawls lose fetches
//     constantly; the pipeline must not care).
func (e *Experiments) ExtensionsReport() string {
	s := e.System()
	cfgC := s.Cfg.Corpora

	catalog := seeds.BuildCatalog(cfgC.Seed+3, s.Set.Lexicon,
		seeds.CatalogSizes{General: 4, Disease: 10, Drug: 8, Gene: 12})
	seedURLs := seeds.Generate(seeds.DefaultEngines(cfgC.Seed+4, s.Set.Web), catalog).SeedURLs

	var r report
	r.title("EXTENSIONS — the paper's future-work items, implemented")

	r.section("1. consolidated crawl+IE relevance (§5)")
	strict := s.Set.Classifier.Clone()
	strict.Threshold = 0.999
	runBoost := func(boost bool) crawler.Stats {
		cfg := cfgC.Crawl
		cfg.MaxPages = 500
		cfg.EntityBoost = boost
		c := crawler.New(cfg, s.Set.Web, strict.Clone())
		if boost {
			c.WithEntityMatchers(s.DictMatchers)
		}
		return c.Run(seedURLs).Stats
	}
	plain := runBoost(false)
	boosted := runBoost(true)
	r.line("precision-geared classifier alone:   %4d relevant docs", plain.Relevant)
	r.line("with entity-density boost:           %4d relevant docs (%d rescued by the IE signal)",
		boosted.Relevant, boosted.EntityBoosted)

	r.section("2. incremental classifier updates during the crawl (§2.1)")
	cfg := cfgC.Crawl
	cfg.MaxPages = 500
	cfg.SelfTraining = true
	st := crawler.New(cfg, s.Set.Web, s.Set.Classifier.Clone()).Run(seedURLs).Stats
	r.line("self-training crawl: %d model updates over %d classified pages, %d relevant",
		st.SelfTrainUpdates, st.Classified(), st.Relevant)

	r.section("3. robustness under transient fetch failures")
	webCfg := cfgC.Web
	webCfg.FailureRate = 0.15
	failing := synthweb.New(webCfg, s.Set.Generator)
	cfg2 := cfgC.Crawl
	cfg2.MaxPages = 500
	fs := crawler.New(cfg2, failing, s.Set.Classifier).Run(seedURLs).Stats
	r.line("15%% injected fetch failures: %d errors absorbed, crawl still yielded %d relevant docs",
		fs.FetchErrors, fs.Relevant)
	return r.String()
}
