package core

import (
	"fmt"
	"sort"
	"strings"

	"webtextie/internal/textgen"
)

// Experiments lazily materializes the shared state the §4 experiments
// need: the system (corpora + trained tools) and the full content analysis.
// Every experiment method returns a formatted report comparing the paper's
// reported values against this build's measurements.
type Experiments struct {
	cfg Config
	sys *System
	as  *AnalysisSet
	reg *Registry
}

// NewExperiments prepares an experiment runner (nothing is built yet).
func NewExperiments(cfg Config) *Experiments {
	return &Experiments{cfg: cfg}
}

// NewExperimentsFromSystem wraps an already-built system (avoids a second
// corpus build when the caller owns one).
func NewExperimentsFromSystem(sys *System) *Experiments {
	return &Experiments{cfg: sys.Cfg, sys: sys}
}

// System builds (once) and returns the system.
func (e *Experiments) System() *System {
	if e.sys == nil {
		e.sys = NewSystem(e.cfg)
	}
	return e.sys
}

// Reg returns the shared operator registry.
func (e *Experiments) Reg() *Registry {
	if e.reg == nil {
		e.reg = e.System().Registry()
	}
	return e.reg
}

// Analysis builds (once) and returns the four corpus analyses.
func (e *Experiments) Analysis() *AnalysisSet {
	if e.as == nil {
		as, err := e.System().AnalyzeAll(4)
		if err != nil {
			panic(fmt.Sprintf("core: analysis failed: %v", err))
		}
		e.as = as
	}
	return e.as
}

// report is a small builder for aligned experiment output.
type report struct {
	b strings.Builder
}

func (r *report) title(s string) {
	r.b.WriteString(s + "\n" + strings.Repeat("=", len(s)) + "\n")
}

func (r *report) section(s string) {
	r.b.WriteString("\n" + s + "\n" + strings.Repeat("-", len(s)) + "\n")
}

func (r *report) line(format string, args ...any) {
	fmt.Fprintf(&r.b, format+"\n", args...)
}

func (r *report) String() string { return r.b.String() }

// corpusOrder returns analyses in Table 3/4 order.
func (e *Experiments) corpusOrder() []*CorpusAnalysis {
	as := e.Analysis()
	out := make([]*CorpusAnalysis, 0, 4)
	for _, kind := range textgen.CorpusKinds {
		out = append(out, as.ByKind[kind])
	}
	return out
}

// sortedKeys returns map keys sorted (for deterministic report output).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
