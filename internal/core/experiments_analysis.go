package core

import (
	"fmt"
	"strings"
	"time"

	"webtextie/internal/cluster"
	"webtextie/internal/dataflow"
	"webtextie/internal/eval"
	"webtextie/internal/ling"
	"webtextie/internal/obs"
	"webtextie/internal/relex"
	"webtextie/internal/rng"
	"webtextie/internal/stats"
	"webtextie/internal/textgen"
)

// Fig3 reproduces Fig 3: per-sentence runtimes of POS tagging (a) and of
// dictionary vs ML entity annotation (b) as functions of input length.
// These are real wall-clock measurements of our implementations.
func (e *Experiments) Fig3() string {
	s := e.System()
	gen := s.Set.Generator
	r0 := rng.New(99).Split("fig3")

	// Build sentences of growing length by concatenating generated ones.
	type probe struct {
		words []string
		text  string
	}
	var probes []probe
	var words []string
	var texts []string
	for len(words) < 1200 {
		d := gen.Doc(r0, textgen.Medline, "fig3")
		for _, sent := range d.Sentences {
			for _, tok := range sent.Tokens {
				words = append(words, tok.Text)
			}
		}
		texts = append(texts, d.Text)
		for _, n := range []int{10, 25, 50, 100, 200, 400, 800, 1200} {
			if len(words) >= n && len(probes) < 8 && (len(probes) == 0 || len(probes[len(probes)-1].words) < n) {
				probes = append(probes, probe{
					words: append([]string(nil), words[:n]...),
					text:  strings.Join(words[:n], " "),
				})
			}
		}
	}

	timeIt := func(f func()) time.Duration {
		// Repeat to get measurable times on fast paths.
		const reps = 20
		sp := obs.Default().StartSpan("experiments.fig3.probe")
		for i := 0; i < reps; i++ {
			f()
		}
		return sp.End() / reps
	}

	var r report
	r.title("Fig 3 — tool runtimes vs input length (wall-clock, this machine)")
	r.section("(a) POS tagging (HMM order 3); paper: linear with fluctuations, crashes on very long sentences")
	r.line("%10s %14s %10s", "tokens", "time/sentence", "status")
	posUnbounded := s.POS
	for _, p := range probes {
		_, err := posUnbounded.Tag(p.words)
		if err != nil {
			r.line("%10d %14s %10s", len(p.words), "-", "CRASH ("+err.Error()[:24]+"...)")
			continue
		}
		d := timeIt(func() { _, _ = posUnbounded.Tag(p.words) })
		r.line("%10d %14s %10s", len(p.words), d, "ok")
	}

	r.section("(b) entity annotation; paper: dict vs ML differ by up to three orders of magnitude")
	r.line("%10s %14s %14s %10s", "chars", "dict (gene)", "ML (gene)", "ratio")
	for _, p := range probes {
		dDict := timeIt(func() { _ = s.DictMatchers[textgen.Gene].Find(p.text) })
		dML := timeIt(func() { _ = s.CRFTaggers[textgen.Gene].Extract(p.text) })
		ratio := float64(dML) / float64(maxDur(dDict, time.Nanosecond))
		r.line("%10d %14s %14s %9.0fx", len(p.text), dDict, dML, ratio)
	}
	st := s.DictMatchers[textgen.Gene].Stats()
	r.line("\ngene dictionary: %d entries -> %d surfaces -> %d automaton nodes, built in %s",
		st.Entries, st.Surfaces, st.Nodes, st.BuildTime)
	r.line("paper-scale extrapolation: 700,000 entries, ~20 min load, 6-20 GB per worker (§4.2)")
	return r.String()
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Fig4 reproduces Fig 4: scale-up of the linguistic and entity flows
// (input grows with DoP) on the simulated paper cluster.
func (e *Experiments) Fig4() string {
	ling, ent, _ := PaperProfiles()
	c := cluster.PaperCluster()
	dops := []int{1, 2, 4, 8, 12, 16, 20, 24, 28}

	lp := c.ScaleUp(ling, 1, dops)
	ep := c.ScaleUp(ent, 1, dops)

	var r report
	r.title("Fig 4 — scale-up (DoP grows with input, 1 GB per DoP; simulated paper cluster)")
	r.line("paper: linguistic flow ≈ ideal scale-up; entity flow sub-linear at large DoP/input")
	r.section("measured (virtual time, seconds)")
	r.line("%8s %10s %14s %14s %12s", "DoP", "input GB", "linguistic", "entity", "ideal(ling)")
	ideal := cluster.IdealScaleUp(lp)
	for i := range dops {
		r.line("%8d %10.0f %14.0f %14.0f %12.0f",
			dops[i], lp[i].InputGB, lp[i].Result.TotalSec, ep[i].Result.TotalSec, ideal)
	}
	lRatio := lp[len(lp)-1].Result.TotalSec / lp[0].Result.TotalSec
	eRatio := ep[len(ep)-1].Result.TotalSec / ep[0].Result.TotalSec
	r.line("\ndegradation 1 -> 28: linguistic %.2fx (≈ ideal), entity %.2fx (sub-linear)", lRatio, eRatio)
	return r.String()
}

// Fig5 reproduces Fig 5: scale-out of both flows over a fixed 20 GB sample.
func (e *Experiments) Fig5() string {
	ling, ent, _ := PaperProfiles()
	c := cluster.PaperCluster()
	dops := []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 56, 84, 140, 156}

	lp := c.ScaleOut(ling, 20, dops)
	ep := c.ScaleOut(ent, 20, dops)

	var r report
	r.title("Fig 5 — scale-out (fixed 20 GB sample; simulated paper cluster)")
	r.line("paper: entity flow infeasible outside DoP 4..28 (runtime/memory), plateau past 16 (startup);")
	r.line("       linguistic flow scales over the whole range, up to 95%% time reduction")
	r.section("measured (virtual time, seconds)")
	r.line("%8s %14s %14s", "DoP", "linguistic", "entity")
	for i := range dops {
		entStr := "infeasible"
		if ep[i].Result.Feasible {
			if dops[i] < 4 {
				entStr = fmt.Sprintf("%.0f (excessive)", ep[i].Result.TotalSec)
			} else {
				entStr = fmt.Sprintf("%.0f", ep[i].Result.TotalSec)
			}
		}
		r.line("%8d %14.0f %14s", dops[i], lp[i].Result.TotalSec, entStr)
	}
	// Key shape numbers.
	byDoP := map[int]cluster.SweepPoint{}
	for _, p := range ep {
		byDoP[p.DoP] = p
	}
	if byDoP[4].Result.Feasible && byDoP[16].Result.Feasible {
		r.line("\nentity 4 -> 16 time reduction: %.0f%% (paper: up to 72%%)",
			100*(1-byDoP[16].Result.TotalSec/byDoP[4].Result.TotalSec))
	}
	lFirst, lLast := lp[0].Result.TotalSec, lp[len(lp)-1].Result.TotalSec
	r.line("linguistic 1 -> 156 time reduction: %.0f%% (paper: up to 95%%)", 100*(1-lLast/lFirst))
	r.line("entity max feasible DoP: %d (memory-capped; paper: 28)", cluster.PaperCluster().FeasibleDoP(ent))
	return r.String()
}

// WarStory reproduces the §4.2 "processing the entire crawl" feasibility
// analysis: the consolidated flow cannot run on the cluster; the split
// flows can; gene NER needs the 1 TB RAM server; chunking relieves the
// network.
func (e *Experiments) WarStory() string {
	ling, ent, cons := PaperProfiles()
	c := cluster.PaperCluster()

	var r report
	r.title("§4.2 — processing the entire crawl: a war story (simulated)")
	r.section("1. consolidated 38-operator flow (60 GB/worker)")
	res := c.Simulate(cons, 1000, 28)
	r.line("feasible: %v — %s", res.Feasible, res.Reason)
	if cons.LibraryConflict {
		r.line("additionally: OpenNLP 1.4 vs 1.5 class-loader conflict forces the disease tagger into a separate run")
	}

	r.section("2. split flows on the 28-node cluster")
	for _, fp := range []cluster.FlowProfile{ling, ent} {
		res := c.Simulate(fp, 1000, c.FeasibleDoP(fp))
		r.line("%-12s feasible at DoP %3d: %6.0f s total (compute %5.0f, startup %5.0f, network %5.0f)%s",
			fp.Name, c.FeasibleDoP(fp), res.TotalSec, res.ComputeSec, res.StartupSec, res.NetworkSec,
			boundNote(res))
	}

	r.section("3. gene NER on the 1 TB RAM server (paper: 40 threads)")
	big := cluster.Config{Nodes: 1, CoresPerNode: 40, RAMPerNodeGB: 1024, NetworkGbps: 10, ReplicationFactor: 1}
	geneFlow := cluster.FlowProfile{Name: "gene-ner", PerKBms: 0.9,
		StartupMs: 20 * 60 * 1000, MemPerWorkerGB: 20, OutputFactor: 0.2, Skew: 0.08}
	res = big.Simulate(geneFlow, 373, 40)
	r.line("gene NER on 373 GB relevant corpus: feasible=%v, %.0f s at DoP 40 (%d workers/node)",
		res.Feasible, res.TotalSec, res.WorkersPerNode)

	r.section("4. memory-aware flow splitting (what the scheduler should have done)")
	// Per-class memory footprints of the heavy IE operators.
	classMem := []float64{20, 8, 6, 0.25, 0.5} // gene, disease, drug dicts; POS; misc
	groups, err := cluster.SplitFlow(classMem, c.RAMPerNodeGB)
	if err != nil {
		r.line("split failed: %v", err)
	} else {
		names := []string{"gene-dict", "disease-dict", "drug-dict", "pos", "misc"}
		r.line("first-fit-decreasing split into %d runs on %.0f GB nodes (paper split by hand):", len(groups), c.RAMPerNodeGB)
		for gi, g := range groups {
			row := ""
			for _, idx := range g {
				row += names[idx] + " "
			}
			r.line("  run %d: %s", gi+1, row)
		}
	}

	r.section("5. intermediate data and the 1 Gb network")
	heavy := ling
	heavy.OutputFactor = 1.6 // 1.6 TB derived from 1 TB raw (§4.2)
	full := c.Simulate(heavy, 1000, 168)
	chunk := c.Simulate(heavy, 50, 168)
	r.line("full 1 TB pass: network-bound=%v (network %4.0f s vs compute %4.0f s) — the timeout regime",
		full.NetworkBound, full.NetworkSec, full.ComputeSec)
	r.line("50 GB chunks (paper's workaround): per-chunk network %4.0f s — failure isolation per chunk",
		chunk.NetworkSec)
	return r.String()
}

func boundNote(res cluster.Result) string {
	if res.NetworkBound {
		return "  [network-bound]"
	}
	return ""
}

// Fig6 reproduces Fig 6: document length, sentence length, and negation
// distributions per corpus, with Mann-Whitney-Wilcoxon significance.
func (e *Experiments) Fig6() string {
	var r report
	r.title("Fig 6 — linguistic properties per corpus")

	lengths := map[textgen.CorpusKind][]float64{}
	sentLens := map[textgen.CorpusKind][]float64{}
	negs := map[textgen.CorpusKind][]float64{}
	for _, a := range e.corpusOrder() {
		for _, l := range a.Ling {
			lengths[a.Kind] = append(lengths[a.Kind], float64(l.Chars))
			if l.Sentences > 0 {
				sentLens[a.Kind] = append(sentLens[a.Kind], l.MeanSentenceLen)
				negs[a.Kind] = append(negs[a.Kind], l.NegPerSentence())
			}
		}
	}

	r.section("(a) document length (net text, chars)")
	r.line("paper ordering: PMC > Relevant > Irrelevant > Medline; Relevant has the largest variance")
	r.line("%-12s %8s %10s %10s %10s %10s", "corpus", "n", "mean", "median", "std", "max")
	for _, kind := range textgen.CorpusKinds {
		s := stats.Summarize(lengths[kind])
		r.line("%-12s %8d %10.0f %10.0f %10.0f %10.0f", kind, s.N, s.Mean, s.Median, s.Std, s.Max)
	}

	r.section("(b) mean sentence length (chars)")
	r.line("%-12s %10s %10s", "corpus", "mean", "median")
	for _, kind := range textgen.CorpusKinds {
		s := stats.Summarize(sentLens[kind])
		r.line("%-12s %10.1f %10.1f", kind, s.Mean, s.Median)
	}

	r.section("(c) negation per sentence")
	r.line("paper ordering: PMC ≈ Irrelevant > Relevant > Medline")
	r.line("%-12s %10s", "corpus", "mean")
	for _, kind := range textgen.CorpusKinds {
		s := stats.Summarize(negs[kind])
		r.line("%-12s %10.4f", kind, s.Mean)
	}

	r.section("Mann-Whitney-Wilcoxon P-values (document length; paper: all pairwise P < 0.01)")
	kinds := textgen.CorpusKinds
	for i := 0; i < len(kinds); i++ {
		for j := i + 1; j < len(kinds); j++ {
			_, p := stats.MannWhitney(lengths[kinds[i]], lengths[kinds[j]])
			r.line("%-12s vs %-12s P = %.2g", kinds[i], kinds[j], p)
		}
	}
	return r.String()
}

// Pronouns reproduces the §4.3.1 pronoun and parenthesis incidences.
func (e *Experiments) Pronouns() string {
	var r report
	r.title("§4.3.1 — pronoun and parenthesis incidence per 1000 sentences")
	r.line("paper: demonstrative/relative/object pronouns lower in web corpora than PMC;")
	r.line("       parentheses highest in PMC, then Relevant, Medline; lowest in Irrelevant")
	r.section("measured")
	header := fmt.Sprintf("%-12s", "corpus")
	for _, c := range ling.PronounClassNames {
		header += fmt.Sprintf(" %13s", c)
	}
	header += fmt.Sprintf(" %13s", "parens")
	r.line("%s", header)
	for _, a := range e.corpusOrder() {
		var sents float64
		var prons [6]float64
		var parens float64
		for _, l := range a.Ling {
			sents += float64(l.Sentences)
			for i, n := range l.Pronouns {
				prons[i] += float64(n)
			}
			parens += float64(l.Parens)
		}
		if sents == 0 {
			continue
		}
		row := fmt.Sprintf("%-12s", a.Kind)
		for _, n := range prons {
			row += fmt.Sprintf(" %13.1f", 1000*n/sents)
		}
		row += fmt.Sprintf(" %13.1f", 1000*parens/sents)
		r.line("%s", row)
	}
	return r.String()
}

// Table4 reproduces Table 4: distinct entity names by corpus and method.
func (e *Experiments) Table4() string {
	paper := map[textgen.CorpusKind]map[Method]map[textgen.EntityType]int{
		textgen.Relevant: {
			Dict: {textgen.Disease: 26344, textgen.Drug: 17974, textgen.Gene: 73435},
			ML:   {textgen.Disease: 629384, textgen.Drug: 28660, textgen.Gene: 5506579},
		},
		textgen.Irrelevant: {
			Dict: {textgen.Disease: 5318, textgen.Drug: 8456, textgen.Gene: 22131},
			ML:   {textgen.Disease: 119638, textgen.Drug: 15875, textgen.Gene: 991010},
		},
		textgen.Medline: {
			Dict: {textgen.Disease: 11194, textgen.Drug: 12164, textgen.Gene: 29928},
			ML:   {textgen.Disease: 343184, textgen.Drug: 20282, textgen.Gene: 4715194},
		},
		textgen.PMC: {
			Dict: {textgen.Disease: 12291, textgen.Drug: 15013, textgen.Gene: 92319},
			ML:   {textgen.Disease: 277211, textgen.Drug: 25462, textgen.Gene: 1858709},
		},
	}

	var r report
	r.title("Table 4 — number of distinct entity names by corpus and method")
	r.line("%-12s %-6s | %9s %9s %9s | %9s %9s %9s", "corpus", "method",
		"paper dis", "paper drug", "paper gene", "ours dis", "ours drug", "ours gene")
	for _, a := range e.corpusOrder() {
		for _, m := range Methods {
			geneCount := len(a.DistinctNames[m][textgen.Gene])
			if m == ML {
				geneCount = len(a.RawMLGeneNames) // Table 4 reports pre-TLA-filter counts
			}
			r.line("%-12s %-6s | %9d %9d %9d | %9d %9d %9d",
				a.Kind, m,
				paper[a.Kind][m][textgen.Disease], paper[a.Kind][m][textgen.Drug], paper[a.Kind][m][textgen.Gene],
				len(a.DistinctNames[m][textgen.Disease]),
				len(a.DistinctNames[m][textgen.Drug]),
				geneCount)
		}
	}
	rel := e.Analysis().ByKind[textgen.Relevant]
	r.line("\nshape checks: ML > Dict for every corpus/class; Relevant >> Irrelevant;")
	r.line("gene ML explosion on web text: %d raw ML gene names -> %d after TLA filtering (paper: 5.5M -> 2.3M)",
		len(rel.RawMLGeneNames), len(rel.DistinctNames[ML][textgen.Gene]))
	return r.String()
}

// Fig7 reproduces Fig 7: entity-mention incidence per corpus, as the §4.3.2
// per-1000-sentence averages.
func (e *Experiments) Fig7() string {
	paperAvg := map[textgen.EntityType]map[textgen.CorpusKind]float64{
		textgen.Disease: {textgen.Relevant: 128.49, textgen.Irrelevant: 4.57, textgen.Medline: 204.92, textgen.PMC: 117.51},
		textgen.Drug:    {textgen.Relevant: 97.83, textgen.Irrelevant: 6.85, textgen.Medline: 293.95, textgen.PMC: 275.95},
		textgen.Gene:    {textgen.Relevant: 128.23, textgen.Irrelevant: 4.39, textgen.Medline: 415.58, textgen.PMC: 74.12},
	}

	var r report
	r.title("Fig 7 — entity annotations per 1000 sentences (dictionary-based)")
	r.line("%-10s %-12s %12s %12s", "class", "corpus", "paper avg", "ours")
	for _, et := range textgen.EntityTypes {
		for _, a := range e.corpusOrder() {
			r.line("%-10s %-12s %12.2f %12.2f", et, a.Kind,
				paperAvg[et][a.Kind], a.MentionsPer1000Sentences(Dict, et))
		}
	}
	r.line("\n(ML-based incidences follow the same orderings; the gene ML counts on web")
	r.line("text are dominated by TLA false positives before filtering, §4.3.2)")
	return r.String()
}

// Fig8 reproduces Fig 8: the overlap of distinct dictionary-extracted
// entity names across the four corpora.
func (e *Experiments) Fig8() string {
	var r report
	r.title("Fig 8 — annotation overlap of distinct entity names (dictionary-based)")
	r.line("paper: Rel∩Irr ≈ 15%% (disease) / 30%% (drug) / 17%% (gene) of relevant names;")
	r.line("       overlap with Medline/PMC considerably larger (6-60%%)")
	as := e.Analysis()
	for _, et := range textgen.EntityTypes {
		rel, irr, med, pmc := as.DistinctNameSets(Dict, et)
		o := eval.ComputeOverlap(rel, irr, med, pmc)
		r.section(fmt.Sprintf("(%s) %d distinct names total", et, o.Total))
		r.line("%s", o.FormatVenn())
		r.line("pairwise shares of relevant names also found in ...")
		r.line("  irrelevant: %5.1f%%   medline: %5.1f%%   pmc: %5.1f%%",
			100*eval.PairOverlapShare(rel, irr),
			100*eval.PairOverlapShare(rel, med),
			100*eval.PairOverlapShare(rel, pmc))
	}
	return r.String()
}

// RelationsReport is an EXTENSION beyond the paper's evaluation: it runs
// the relation-extraction flow over the relevant-web and Medline corpora
// and compares the extracted relation inventories — the paper's stated
// next step ("Studying these sets in more detail will be the next step in
// our research", §4.3.2).
func (e *Experiments) RelationsReport() string {
	s := e.System()
	reg := e.Reg()
	plan := reg.RelationFlow(false)

	extract := func(kind textgen.CorpusKind) (rels int, kinds map[string]int, pairs map[string]bool, negated int) {
		kinds = map[string]int{}
		pairs = map[string]bool{}
		c := s.Set.Corpus(kind)
		recs := make([]dataflow.Record, len(c.Docs))
		for i, d := range c.Docs {
			recs[i] = dataflow.Record{"id": d.ID, "text": d.Text}
		}
		results, _, err := dataflow.Execute(plan, recs, dataflow.ExecConfig{DoP: 4})
		if err != nil {
			panic(err)
		}
		for _, sink := range plan.Sinks() {
			for _, rec := range results[sink.ID()] {
				rs, _ := rec["relations"].([]relex.Relation)
				for _, rel := range rs {
					rels++
					kinds[rel.Kind]++
					pairs[rel.PairKey()] = true
					if rel.Negated {
						negated++
					}
				}
			}
		}
		return
	}

	var r report
	r.title("EXTENSION — relation extraction over the corpora (beyond the paper)")
	r.line("%-12s %10s %10s %10s", "corpus", "relations", "distinct", "negated")
	webRels, webKinds, webPairs, webNeg := extract(textgen.Relevant)
	medRels, medKinds, medPairs, medNeg := extract(textgen.Medline)
	r.line("%-12s %10d %10d %10d", "Relevant", webRels, len(webPairs), webNeg)
	r.line("%-12s %10d %10d %10d", "Medline", medRels, len(medPairs), medNeg)

	r.section("relation kinds (Relevant / Medline)")
	for _, k := range sortedKeys(webKinds) {
		r.line("%-14s %6d / %d", k, webKinds[k], medKinds[k])
	}
	// Web-only relation pairs: candidate knowledge absent from the
	// literature, now at the relation level rather than the name level.
	webOnly := 0
	for p := range webPairs {
		if !medPairs[p] {
			webOnly++
		}
	}
	r.line("\nrelation pairs found on the relevant web but not in Medline: %d of %d (%.1f%%)",
		webOnly, len(webPairs), 100*float64(webOnly)/float64(max(1, len(webPairs))))
	return r.String()
}

// JSDReport reproduces the §4.3.2 Jensen-Shannon divergences between
// entity-name distributions.
func (e *Experiments) JSDReport() string {
	var r report
	r.title("§4.3.2 — Jensen-Shannon divergence between entity-name distributions")
	r.line("paper ranges: JSD(rel,irrel) 0.45-0.65 > JSD(rel,medl) 0.29-0.36, JSD(rel,pmc) 0.17-0.34;")
	r.line("              JSD(irrel,medl) 0.45-0.69, JSD(irrel,pmc) 0.39-0.66")
	as := e.Analysis()
	pairs := []struct {
		a, b textgen.CorpusKind
	}{
		{textgen.Relevant, textgen.Irrelevant},
		{textgen.Relevant, textgen.Medline},
		{textgen.Relevant, textgen.PMC},
		{textgen.Irrelevant, textgen.Medline},
		{textgen.Irrelevant, textgen.PMC},
		{textgen.Medline, textgen.PMC},
	}
	r.section("measured (dictionary-based)")
	r.line("%-26s %10s %10s %10s", "pair", "disease", "drug", "gene")
	for _, p := range pairs {
		row := fmt.Sprintf("%-26s", p.a.String()+" vs "+p.b.String())
		for _, et := range textgen.EntityTypes {
			da := as.ByKind[p.a].Distribution(Dict, et)
			db := as.ByKind[p.b].Distribution(Dict, et)
			row += fmt.Sprintf(" %10.4f", stats.JSD(da, db))
		}
		r.line("%s", row)
	}
	return r.String()
}
