package core

import (
	"fmt"

	"webtextie/internal/boiler"
	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/graph"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// Table1 reproduces Table 1: search-term catalogue sizes per category,
// with example terms.
func (e *Experiments) Table1() string {
	s := e.System()
	scale := s.Cfg.Corpora.SeedTermScale
	catalog := seeds.BuildCatalog(s.Cfg.Corpora.Seed+3, s.Set.Lexicon,
		seeds.ScaledSizes(seeds.PaperSizes(), scale))
	subset := seeds.ScaledSizes(seeds.PaperSubsetSizes(), scale)

	var r report
	r.title("Table 1 — search terms by category for seed URL retrieval")
	r.line("%-18s %10s %10s %8s %8s   %s", "category", "paper", "paper(1st)", "ours", "ours(1st)", "example terms")
	paper := seeds.PaperSizes()
	paperSub := seeds.PaperSubsetSizes()
	rows := []struct {
		cat        seeds.Category
		p, ps, sub int
	}{
		{seeds.General, paper.General, paperSub.General, subset.General},
		{seeds.DiseaseSpecific, paper.Disease, paperSub.Disease, subset.Disease},
		{seeds.DrugSpecific, paper.Drug, paperSub.Drug, subset.Drug},
		{seeds.GeneSpecific, paper.Gene, paperSub.Gene, subset.Gene},
	}
	for _, row := range rows {
		terms := catalog.Terms[row.cat]
		examples := ""
		if len(terms) >= 2 {
			examples = terms[0] + ", " + terms[1]
		}
		r.line("%-18s %10d %10d %8d %8d   %s",
			row.cat, row.p, row.ps, len(terms), row.sub, examples)
	}
	r.line("total terms: paper %d, ours %d (scale 1:%d)",
		paper.General+paper.Disease+paper.Drug+paper.Gene, catalog.Total(), scale)
	return r.String()
}

// SeedsExperiment reproduces the §2.2 story: the small first-run seed list
// exhausts its frontier quickly; the full catalogue sustains a much larger
// crawl.
func (e *Experiments) SeedsExperiment() string {
	s := e.System()
	cfg := s.Cfg.Corpora
	scale := cfg.SeedTermScale

	small := seeds.BuildCatalog(cfg.Seed+3, s.Set.Lexicon,
		seeds.ScaledSizes(seeds.PaperSubsetSizes(), scale*4))
	large := seeds.BuildCatalog(cfg.Seed+3, s.Set.Lexicon,
		seeds.ScaledSizes(seeds.PaperSizes(), scale))

	// Both runs report into the system's event-log sink (no-op when -log
	// is off): the first crawl's frontier.exhausted records are the §2.2
	// story told by the third pillar.
	runSmall := seeds.GenerateLogged(seeds.DefaultEngines(cfg.Seed+4, s.Set.Web), small, s.Cfg.ExecLog)
	runLarge := seeds.GenerateLogged(seeds.DefaultEngines(cfg.Seed+4, s.Set.Web), large, s.Cfg.ExecLog)

	crawlCfg := cfg.Crawl
	crawlCfg.MaxPages = 0 // run to exhaustion
	crawlCfg.MaxPagesPerHost = 60
	clf := s.Set.Classifier
	crawlWith := func(seedURLs []string) *crawler.Result {
		c := crawler.New(crawlCfg, s.Set.Web, clf)
		if s.Cfg.ExecLog != nil {
			c.WithLog(s.Cfg.ExecLog)
		}
		return c.Run(seedURLs)
	}
	resSmall := crawlWith(runSmall.SeedURLs)
	resLarge := crawlWith(runLarge.SeedURLs)

	var r report
	r.title("§2.2 — seed-list size gates crawl size")
	r.line("paper: 45,227 seeds -> crawl died (frontier emptied); 485,462 seeds -> ~1 TB crawl")
	r.section("measured")
	r.line("%-22s %12s %12s %14s %16s", "run", "seeds", "queries", "relevant docs", "frontier emptied")
	r.line("%-22s %12d %12d %14d %16v", "first (subset terms)",
		len(runSmall.SeedURLs), runSmall.QueriesIssued, resSmall.Stats.Relevant, resSmall.Stats.FrontierEmptied)
	r.line("%-22s %12d %12d %14d %16v", "second (full terms)",
		len(runLarge.SeedURLs), runLarge.QueriesIssued, resLarge.Stats.Relevant, resLarge.Stats.FrontierEmptied)
	if resSmall.Stats.Relevant > 0 {
		r.line("yield ratio second/first: %.1fx (seed ratio %.1fx)",
			float64(resLarge.Stats.Relevant)/float64(resSmall.Stats.Relevant),
			float64(len(runLarge.SeedURLs))/float64(len(runSmall.SeedURLs)))
	}
	return r.String()
}

// CrawlStats reproduces the §4.1 crawl accounting: harvest rate, filter
// reductions, download rate, and link locality.
func (e *Experiments) CrawlStats() string {
	s := e.System()
	st := s.Set.Crawl.Stats
	loc := graph.Locality(s.Set.Crawl.LinkDB)

	var r report
	r.title("§4.1 — focused crawl statistics")
	r.line("%-34s %14s %14s", "measure", "paper", "measured")
	r.line("%-34s %14s %14d", "pages fetched", "~21,000,000", st.Fetched)
	r.line("%-34s %14s %14.1f%%", "harvest rate (bytes)", "38%", 100*st.HarvestRate())
	r.line("%-34s %14s %14.1f%%", "harvest rate (docs)", "19%", 100*st.HarvestRateDocs())
	r.line("%-34s %14s %14.1f%%", "MIME filter reduction", "9.5%",
		100*float64(st.FilteredMIME)/float64(max(1, st.Fetched)))
	r.line("%-34s %14s %14.1f%%", "language filter reduction", "14%",
		100*float64(st.FilteredLang)/float64(max(1, st.Fetched)))
	r.line("%-34s %14s %14.1f%%", "length filter reduction", "17%",
		100*float64(st.FilteredLength)/float64(max(1, st.Fetched)))
	r.line("%-34s %14s %14.2f", "download rate (docs/s, simulated)", "3-4", st.DocsPerSecond())
	r.line("%-34s %14s %14.1f%%", "intra-host out-link share", "high (§2.2)", 100*loc.IntraShare())
	r.line("%-34s %14s %14d", "robots.txt blocks", "respected", st.RobotsBlocked)
	r.line("%-34s %14s %14d", "crawl cycles", "-", st.Cycles)
	return r.String()
}

// ClassifierQuality reproduces §4.1's classifier numbers: 10-fold CV on
// the training corpus (paper: P 98% / R 83%) and a 200-page crawl sample
// against gold labels (paper: P 94% / R 90%).
func (e *Experiments) ClassifierQuality() string {
	s := e.System()
	gen := s.Set.Generator
	r0 := rng.New(s.Cfg.Corpora.Seed).Split("clf-eval")

	// Rebuild the training distribution for cross-validation.
	var examples []classify.Example
	for i := 0; i < s.Cfg.Corpora.TrainDocsPerClass; i++ {
		examples = append(examples,
			classify.Example{Text: gen.Doc(r0, textgen.Medline, fmt.Sprint("cvm", i)).Text, Class: classify.Relevant},
			classify.Example{Text: gen.Doc(r0, textgen.Irrelevant, fmt.Sprint("cvw", i)).Text, Class: classify.Irrelevant})
	}
	cv := classify.CrossValidate(examples, 10, 0.5)

	// 200-page crawl sample: 100 relevant + 100 irrelevant, judged against
	// generator gold labels (the paper used manual judgement).
	var sample classify.Quality
	count := func(pages []crawler.CrawledPage, predictedRelevant bool, n int) {
		for i := 0; i < len(pages) && i < n; i++ {
			gold := pages[i].GoldRelevant
			switch {
			case predictedRelevant && gold:
				sample.TP++
			case predictedRelevant && !gold:
				sample.FP++
			case !predictedRelevant && !gold:
				sample.TN++
			default:
				sample.FN++
			}
		}
	}
	count(s.Set.Crawl.Relevant, true, 100)
	count(s.Set.Crawl.IrrelevantPages, false, 100)

	var r report
	r.title("§4.1 — relevance classifier quality")
	r.line("%-30s %10s %10s %10s %10s", "evaluation", "paper P", "paper R", "ours P", "ours R")
	r.line("%-30s %10s %10s %9.1f%% %9.1f%%", "10-fold cross-validation", "98%", "83%",
		100*cv.Precision(), 100*cv.Recall())
	r.line("%-30s %10s %10s %9.1f%% %9.1f%%", "200-page crawl sample", "94%", "90%",
		100*sample.Precision(), 100*sample.Recall())
	return r.String()
}

// BoilerplateQuality reproduces §4.1's boilerplate-detection numbers:
// a gold-standard page set (paper: P 90% / R 82% on 1,906 pages) and the
// 200-page crawl sample (paper: P 98% / R 72%; tables and lists missed).
func (e *Experiments) BoilerplateQuality() string {
	s := e.System()
	c := boiler.Default()

	// "Gold standard": freshly rendered pages with known net text.
	evalPages := func(n int) (p, rc float64, cnt int) {
		var sumP, sumR float64
		for _, h := range s.Set.Web.Hosts {
			if h.Hub {
				continue
			}
			for i := 1; i < h.Pages && cnt < n; i++ {
				page, err := s.Set.Web.Fetch(synthweb.PageURL(h.Name, i))
				if err != nil || !page.MIME.IsTextual() || page.Lang != "en" || len(page.NetText) < 300 {
					continue
				}
				res := c.Extract(string(page.Body))
				pp, rr := boiler.WordOverlapPR(res.NetText, page.NetText)
				sumP += pp
				sumR += rr
				cnt++
			}
			if cnt >= n {
				break
			}
		}
		if cnt == 0 {
			return 0, 0, 0
		}
		return sumP / float64(cnt), sumR / float64(cnt), cnt
	}
	goldP, goldR, goldN := evalPages(190) // 1,906 scaled 1:10

	// Crawl sample: the already-extracted net text of 200 crawled pages.
	var sumP, sumR float64
	sampleN := 0
	for _, pg := range s.Set.Crawl.Relevant {
		if sampleN >= 200 || pg.Gold == nil {
			break
		}
		p, r := boiler.WordOverlapPR(pg.NetText, pg.Gold.Text)
		sumP += p
		sumR += r
		sampleN++
	}

	var r report
	r.title("§4.1 — boilerplate detection quality (net-text word overlap)")
	r.line("%-34s %9s %9s %9s %9s %6s", "evaluation", "paper P", "paper R", "ours P", "ours R", "n")
	r.line("%-34s %9s %9s %8.1f%% %8.1f%% %6d", "gold-standard pages", "90%", "82%",
		100*goldP, 100*goldR, goldN)
	if sampleN > 0 {
		r.line("%-34s %9s %9s %8.1f%% %8.1f%% %6d", "crawl sample", "98%", "72%",
			100*sumP/float64(sampleN), 100*sumR/float64(sampleN), sampleN)
	}
	r.line("note: recall losses concentrate in tables/lists, as in the paper (see boiler.KeepTables ablation)")
	return r.String()
}

// Table2 reproduces Table 2: the top-30 domains by PageRank over the
// crawled link graph.
func (e *Experiments) Table2() string {
	s := e.System()
	g := graph.FromLinkDB(s.Set.Crawl.LinkDB)
	ranks := g.PageRank(0.85, 100, 1e-10)
	top := graph.TopHosts(ranks, 30)

	var r report
	r.title("Table 2 — top-30 domains by PageRank over the crawled graph")
	r.line("paper: 30 domains incl. nih.gov, cancer.org, wikipedia.org, arxiv.org, blogs.nature.com ...")
	r.section("measured")
	for i := 0; i < len(top); i += 2 {
		if i+1 < len(top) {
			r.line("%-34s %-34s", top[i].Host, top[i+1].Host)
		} else {
			r.line("%-34s", top[i].Host)
		}
	}
	// How many of the paper's domains made our top 30?
	paperSet := map[string]bool{}
	for _, h := range []string{
		"nih.gov", "cancer.org", "cancer.net", "biomedcentral.com", "cdc.gov",
		"healthline.com", "wikipedia.org", "arxiv.org", "blogs.nature.com",
		"blogger.com", "wordpress.org", "slideshare.net", "reuters.com",
	} {
		paperSet[h] = true
	}
	hits := 0
	for _, t := range top {
		if paperSet[t.Host] {
			hits++
		}
	}
	r.line("\n%d of %d probed paper-listed domains appear in our top 30", hits, len(paperSet))
	return r.String()
}

// Table3 reproduces Table 3: corpus summary.
func (e *Experiments) Table3() string {
	s := e.System()
	rows := s.Set.Table3()
	scale := s.Cfg.Corpora.ScaleFactor

	var r report
	r.title("Table 3 — summary of data sets (scaled 1:" + fmt.Sprint(scale) + ")")
	r.line("%-12s %14s %12s | %12s %12s %14s", "corpus",
		"paper docs", "paper mean", "ours docs", "ours mean", "ours raw bytes")
	for _, row := range rows {
		r.line("%-12s %14d %12.0f | %12d %12.0f %14d",
			row.Corpus, row.PaperDocs, row.PaperMeanChars,
			row.Docs, row.MeanChars, row.RawBytes)
	}
	r.line("\nshape checks: net-text length PMC > Relevant > Irrelevant > Medline;")
	r.line("web corpora carry raw-markup overhead (raw bytes >> net chars)")
	return r.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
