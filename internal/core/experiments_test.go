package core

import (
	"strings"
	"testing"

	"webtextie/internal/dataflow"
	"webtextie/internal/textgen"
)

// experimentsFixture reuses the cached system and pre-computed analysis.
func experimentsFixture(t testing.TB) *Experiments {
	t.Helper()
	sys, as := testSystem(t)
	e := NewExperimentsFromSystem(sys)
	e.as = as
	return e
}

func TestExperimentReportsGenerate(t *testing.T) {
	e := experimentsFixture(t)
	cases := []struct {
		name     string
		run      func() string
		mustHave []string
	}{
		{"Table1", e.Table1, []string{"general terms", "disease-specific", "gene-specific", "500"}},
		{"CrawlStats", e.CrawlStats, []string{"harvest rate", "MIME filter", "docs/s"}},
		{"ClassifierQuality", e.ClassifierQuality, []string{"cross-validation", "crawl sample", "98%"}},
		{"BoilerplateQuality", e.BoilerplateQuality, []string{"gold-standard", "crawl sample"}},
		{"Table2", e.Table2, []string{"PageRank", "top 30"}},
		{"Table3", e.Table3, []string{"Relevant", "Medline", "PMC", "865"}},
		{"Fig4", e.Fig4, []string{"scale-up", "linguistic", "entity"}},
		{"Fig5", e.Fig5, []string{"scale-out", "infeasible", "95%"}},
		{"WarStory", e.WarStory, []string{"60 GB", "OpenNLP", "network"}},
		{"Fig6", e.Fig6, []string{"document length", "negation", "Mann-Whitney"}},
		{"Pronouns", e.Pronouns, []string{"demonstrative", "parens"}},
		{"Table4", e.Table4, []string{"distinct entity names", "5506579", "TLA"}},
		{"Fig7", e.Fig7, []string{"1000 sentences", "128.49", "415.58"}},
		{"Fig8", e.Fig8, []string{"overlap", "irrelevant:", "medline:"}},
		{"JSD", e.JSDReport, []string{"Jensen-Shannon", "Relevant vs Irrelevant"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := c.run()
			if len(out) < 100 {
				t.Fatalf("report too short:\n%s", out)
			}
			for _, probe := range c.mustHave {
				if !strings.Contains(out, probe) {
					t.Errorf("report missing %q:\n%s", probe, out)
				}
			}
		})
	}
}

func TestFig3Report(t *testing.T) {
	// Fig 3 measures wall-clock; run it separately (it is slower).
	e := experimentsFixture(t)
	out := e.Fig3()
	if !strings.Contains(out, "POS tagging") || !strings.Contains(out, "dict (gene)") {
		t.Fatalf("Fig3 report:\n%s", out)
	}
	// The ML-vs-dict gap must be large (paper: up to 3 orders of magnitude).
	if !strings.Contains(out, "x") {
		t.Error("no ratio column")
	}
}

func TestSeedsExperimentReport(t *testing.T) {
	e := experimentsFixture(t)
	out := e.SeedsExperiment()
	for _, probe := range []string{"45,227", "frontier emptied", "yield ratio"} {
		if !strings.Contains(out, probe) {
			t.Errorf("seeds report missing %q:\n%s", probe, out)
		}
	}
}

func TestRelationsReportExtension(t *testing.T) {
	e := experimentsFixture(t)
	out := e.RelationsReport()
	for _, probe := range []string{"relation", "Relevant", "Medline", "regulation"} {
		if !strings.Contains(out, probe) {
			t.Errorf("relations report missing %q:\n%s", probe, out)
		}
	}
}

func TestRelationFlowRuns(t *testing.T) {
	sys, _ := testSystem(t)
	reg := sys.Registry()
	plan := reg.RelationFlow(false)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	c := sys.Set.Corpus(textgen.Medline)
	recs := make([]dataflow.Record, 0, 30)
	for _, d := range c.Docs[:30] {
		recs = append(recs, dataflow.Record{"id": d.ID, "text": d.Text})
	}
	results, _, err := dataflow.Execute(plan, recs, dataflow.ExecConfig{DoP: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sink := range plan.Sinks() {
		for _, rec := range results[sink.ID()] {
			total += rec["n_relations"].(int)
		}
	}
	if total == 0 {
		t.Fatal("no relations extracted from 30 Medline docs")
	}
}
