package core

import (
	"fmt"

	"webtextie/internal/corpora"
	"webtextie/internal/dataflow"
	"webtextie/internal/ling"
	"webtextie/internal/obs"
	"webtextie/internal/stats"
	"webtextie/internal/textgen"
)

// AnalysisFlow builds the full analysis plan (both branches) with or
// without the web pretreatment head. This is the flow the content analysis
// of §4.3 runs: "we also analyzed abstracts and full-texts from Medline and
// PMC using the same IE flow (downstream from the HTML treatment)".
func (r *Registry) AnalysisFlow(web bool) *dataflow.Plan {
	p := &dataflow.Plan{}
	n := p.Add(r.Op("identity", nil))
	if web {
		n = r.webPretreatment(p, n)
	}
	n = r.nlpShared(p, n)
	lingOut := r.linguisticBranch(p, n)
	entOut := r.entityBranch(p, n)
	p.Add(r.Op("union", nil), lingOut, entOut)
	return p
}

// CorpusAnalysis aggregates the per-corpus measurements behind Table 4 and
// Figs 6-8.
type CorpusAnalysis struct {
	Kind      textgen.CorpusKind
	Docs      int
	Sentences int

	// Ling holds per-document linguistic statistics (Fig 6).
	Ling []ling.DocStats

	// DistinctNames[m][t] is the distinct surface-form set (Table 4, Fig 8).
	DistinctNames map[Method]map[textgen.EntityType]map[string]bool
	// NameCounts[m][t] are mention frequencies per name (JSD, §4.3.2).
	NameCounts map[Method]map[textgen.EntityType]map[string]int
	// MentionsPerDoc[m][t] holds per-document mention counts (Fig 7).
	MentionsPerDoc map[Method]map[textgen.EntityType][]float64
	// TotalMentions[m][t] is the corpus-wide mention count.
	TotalMentions map[Method]map[textgen.EntityType]int

	// PosFailed counts sentences the POS tagger crashed on (§4.2).
	PosFailed int
	// FlowErrors counts records dropped by operator failures.
	FlowErrors int64
	// FlowRetries counts operator attempts replayed under ExecOpRetries.
	FlowRetries int64
	// FlowQuarantined counts records dead-lettered by the executor.
	FlowQuarantined int64

	// RawMLGeneNames is the distinct ML gene-name set BEFORE TLA filtering
	// (Table 4 reports this; Fig 7c the filtered set). TLARemoved counts
	// the filtered mentions.
	RawMLGeneNames map[string]bool
	TLARemoved     int
}

// newCorpusAnalysis allocates the nested maps.
func newCorpusAnalysis(kind textgen.CorpusKind) *CorpusAnalysis {
	a := &CorpusAnalysis{
		Kind:           kind,
		DistinctNames:  map[Method]map[textgen.EntityType]map[string]bool{},
		NameCounts:     map[Method]map[textgen.EntityType]map[string]int{},
		MentionsPerDoc: map[Method]map[textgen.EntityType][]float64{},
		TotalMentions:  map[Method]map[textgen.EntityType]int{},
		RawMLGeneNames: map[string]bool{},
	}
	for _, m := range Methods {
		a.DistinctNames[m] = map[textgen.EntityType]map[string]bool{}
		a.NameCounts[m] = map[textgen.EntityType]map[string]int{}
		a.MentionsPerDoc[m] = map[textgen.EntityType][]float64{}
		a.TotalMentions[m] = map[textgen.EntityType]int{}
		for _, t := range textgen.EntityTypes {
			a.DistinctNames[m][t] = map[string]bool{}
			a.NameCounts[m][t] = map[string]int{}
		}
	}
	return a
}

// MentionsPer1000Sentences returns the §4.3.2 avg_* measure for one
// method/type (mentions per 1000 sentences), combining both methods when
// method < 0.
func (a *CorpusAnalysis) MentionsPer1000Sentences(m Method, t textgen.EntityType) float64 {
	if a.Sentences == 0 {
		return 0
	}
	return 1000 * float64(a.TotalMentions[m][t]) / float64(a.Sentences)
}

// CombinedMentionsPer1000 combines both extraction methods (the paper's
// "for both annotation methods combined" measure for drugs).
func (a *CorpusAnalysis) CombinedMentionsPer1000(t textgen.EntityType) float64 {
	if a.Sentences == 0 {
		return 0
	}
	total := a.TotalMentions[Dict][t] + a.TotalMentions[ML][t]
	return 1000 * float64(total) / float64(a.Sentences)
}

// Distribution returns the entity-name frequency distribution for JSD.
func (a *CorpusAnalysis) Distribution(m Method, t textgen.EntityType) stats.Distribution {
	return stats.NewDistribution(a.NameCounts[m][t])
}

// AnalyzeCorpus runs the analysis flow over one corpus and aggregates the
// results. DoP controls the local executor's parallelism.
func (s *System) AnalyzeCorpus(reg *Registry, c *corpora.Corpus, dop int) (*CorpusAnalysis, error) {
	return s.AnalyzeCorpusFunc(reg, c, dop, nil)
}

// AnalyzeCorpusFunc is AnalyzeCorpus with an optional per-document callback
// receiving the extracted entity mentions — the hook fact exporters use.
// The callback runs on the aggregation goroutine (no synchronization
// needed).
func (s *System) AnalyzeCorpusFunc(reg *Registry, c *corpora.Corpus, dop int,
	onEntities func(docID string, ents []EntityAnn)) (*CorpusAnalysis, error) {
	plan := reg.AnalysisFlow(false)
	dataflow.Optimize(plan)

	records := make([]dataflow.Record, len(c.Docs))
	for i, d := range c.Docs {
		records[i] = dataflow.Record{"id": d.ID, "text": d.Text}
	}
	// Per-operator counters/latency go to the process registry (dumped by
	// the cmds' -metrics flag); AnalyzeAll runs corpora sequentially, so
	// the shared registry keeps ExecStats exact.
	results, execStats, err := dataflow.Execute(plan, records,
		dataflow.ExecConfig{DoP: dop, Metrics: obs.Default(),
			Policy: s.Cfg.ExecPolicy, OpRetries: s.Cfg.ExecOpRetries,
			Trace: s.Cfg.ExecTrace, TraceKey: "id", Log: s.Cfg.ExecLog,
			Prof: s.Cfg.ExecProf})
	if err != nil {
		return nil, fmt.Errorf("core: analyzing %v: %w", c.Kind, err)
	}

	a := newCorpusAnalysis(c.Kind)
	a.Docs = len(c.Docs)
	a.FlowErrors = execStats.TotalErrors()
	a.FlowRetries = execStats.TotalRetries()
	a.FlowQuarantined = execStats.TotalQuarantined()
	sinks := plan.Sinks()
	if len(sinks) != 1 {
		return nil, fmt.Errorf("core: analysis flow has %d sinks", len(sinks))
	}
	for _, rec := range results[sinks[0].ID()] {
		if lstats, ok := rec["ling"].(ling.DocStats); ok {
			a.Ling = append(a.Ling, lstats)
			a.Sentences += lstats.Sentences
			continue
		}
		if ents, ok := rec["entities"].([]EntityAnn); ok {
			a.PosFailed += intField(rec, "pos_failed")
			if onEntities != nil {
				onEntities(strField(rec, "id"), ents)
			}
			perDoc := map[Method]map[textgen.EntityType]int{
				Dict: {}, ML: {},
			}
			for _, e := range ents {
				a.DistinctNames[e.Method][e.Type][e.Surface] = true
				a.NameCounts[e.Method][e.Type][e.Surface]++
				a.TotalMentions[e.Method][e.Type]++
				perDoc[e.Method][e.Type]++
				if e.Method == ML && e.Type == textgen.Gene {
					a.RawMLGeneNames[e.Surface] = true
				}
			}
			if removed, ok := rec["tla_removed"].([]EntityAnn); ok {
				a.TLARemoved += len(removed)
				for _, e := range removed {
					a.RawMLGeneNames[e.Surface] = true
				}
			}
			for _, m := range Methods {
				for _, t := range textgen.EntityTypes {
					a.MentionsPerDoc[m][t] = append(a.MentionsPerDoc[m][t],
						float64(perDoc[m][t]))
				}
			}
		}
	}
	return a, nil
}

// AnalysisSet holds the four corpus analyses plus the shared registry —
// the complete substrate of the §4.3 content comparison.
type AnalysisSet struct {
	System   *System
	Registry *Registry
	ByKind   map[textgen.CorpusKind]*CorpusAnalysis
}

// AnalyzeAll runs the analysis flow over all four corpora.
func (s *System) AnalyzeAll(dop int) (*AnalysisSet, error) {
	reg := s.Registry()
	out := &AnalysisSet{System: s, Registry: reg,
		ByKind: map[textgen.CorpusKind]*CorpusAnalysis{}}
	for _, kind := range textgen.CorpusKinds {
		a, err := s.AnalyzeCorpus(reg, s.Set.Corpus(kind), dop)
		if err != nil {
			return nil, err
		}
		out.ByKind[kind] = a
	}
	return out, nil
}

// DistinctNameSets returns, for one method and type, the four distinct-name
// sets in corpus order — the Fig 8 input.
func (as *AnalysisSet) DistinctNameSets(m Method, t textgen.EntityType) (rel, irr, med, pmc map[string]bool) {
	return as.ByKind[textgen.Relevant].DistinctNames[m][t],
		as.ByKind[textgen.Irrelevant].DistinctNames[m][t],
		as.ByKind[textgen.Medline].DistinctNames[m][t],
		as.ByKind[textgen.PMC].DistinctNames[m][t]
}
