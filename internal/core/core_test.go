package core

import (
	"strings"
	"sync"
	"testing"

	"webtextie/internal/dataflow"
	"webtextie/internal/meteor"
	"webtextie/internal/stats"
	"webtextie/internal/store"
	"webtextie/internal/textgen"
)

var (
	sysOnce   sync.Once
	sysCached *System
	asCached  *AnalysisSet
	asErr     error
)

// testSystem builds (once) the test-scale system and full analysis.
func testSystem(t testing.TB) (*System, *AnalysisSet) {
	t.Helper()
	sysOnce.Do(func() {
		sysCached = NewSystem(TestConfig())
		asCached, asErr = sysCached.AnalyzeAll(4)
	})
	if asErr != nil {
		t.Fatal(asErr)
	}
	return sysCached, asCached
}

func TestSystemConstruction(t *testing.T) {
	s, _ := testSystem(t)
	if s.POS == nil {
		t.Fatal("no POS tagger")
	}
	for _, et := range textgen.EntityTypes {
		if s.DictMatchers[et] == nil || s.CRFTaggers[et] == nil {
			t.Fatalf("missing taggers for %v", et)
		}
	}
	if s.Set.Crawl.Stats.Fetched == 0 {
		t.Fatal("no crawl happened")
	}
}

func TestRegistryShipsOver60Operators(t *testing.T) {
	// §3.1: "the system ships more than 60 different operators organized
	// in four packages".
	s, _ := testSystem(t)
	names := s.Registry().Names()
	if len(names) < 40 {
		t.Fatalf("registry has %d operators", len(names))
	}
	t.Logf("registry: %d operators", len(names))
	// All four packages must be populated.
	pkgs := map[dataflow.Pkg]int{}
	reg := s.Registry()
	for _, n := range names {
		op, err := reg.Resolve(n, meteor.Params{"type": {Str: "gene"}, "keep": {Str: "id"},
			"from": {Str: "a"}, "to": {Str: "b"}})
		if err != nil {
			t.Errorf("resolve %q: %v", n, err)
			continue
		}
		pkgs[op.Pkg]++
	}
	for _, p := range []dataflow.Pkg{dataflow.BASE, dataflow.IE, dataflow.WA, dataflow.DC} {
		if pkgs[p] < 5 {
			t.Errorf("package %s has only %d operators", p, pkgs[p])
		}
	}
}

func TestConsolidatedFlowHas38Operators(t *testing.T) {
	// §3.2: "The complete data flow ... consists of 38 elementary
	// operators."
	s, _ := testSystem(t)
	plan := s.Registry().ConsolidatedFlow()
	if got := plan.Size(); got != 38 {
		t.Fatalf("consolidated flow has %d operators, want 38\n%s", got, plan)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both branches must exist: two project nodes feeding the final union.
	if len(plan.Sinks()) != 1 {
		t.Fatalf("sinks = %d", len(plan.Sinks()))
	}
}

func TestConsolidatedMeteorScriptCompiles(t *testing.T) {
	s, _ := testSystem(t)
	script, err := meteor.Parse(ConsolidatedMeteorScript)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := meteor.Compile(script, s.Registry())
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Plan.Size() < 25 {
		t.Errorf("meteor plan only %d nodes", compiled.Plan.Size())
	}
	if err := compiled.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeteorScriptRunsOnRawPages(t *testing.T) {
	// End-to-end: fetch raw pages from the synthetic web and push them
	// through the scripted consolidated flow.
	s, _ := testSystem(t)
	var recs []dataflow.Record
	for _, h := range s.Set.Web.Hosts {
		if !h.Biomed || h.Hub {
			continue
		}
		for i := 1; i < h.Pages && len(recs) < 30; i++ {
			p, err := s.Set.Web.Fetch("http://" + h.Name + "/p" + itoa(i) + ".html")
			if err != nil {
				continue
			}
			recs = append(recs, dataflow.Record{"id": p.URL, "html": string(p.Body)})
		}
		if len(recs) >= 30 {
			break
		}
	}
	out, execStats, err := meteor.Run(ConsolidatedMeteorScript, s.Registry(),
		map[string][]dataflow.Record{"crawl": recs}, true, dataflow.ExecConfig{DoP: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["linguistic"]) == 0 {
		t.Error("no linguistic results")
	}
	if len(out["entities"]) == 0 {
		t.Error("no entity results")
	}
	// The flow must survive malformed pages without aborting.
	_ = execStats
	for _, rec := range out["entities"] {
		if _, ok := rec["entities"].([]EntityAnn); !ok {
			t.Fatalf("entity record missing entities field: %v", rec)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestAnalysisProducesAllCorpora(t *testing.T) {
	_, as := testSystem(t)
	for _, kind := range textgen.CorpusKinds {
		a := as.ByKind[kind]
		if a == nil || a.Docs == 0 {
			t.Fatalf("no analysis for %v", kind)
		}
		if a.Sentences == 0 {
			t.Errorf("%v: no sentences counted", kind)
		}
		if len(a.Ling) == 0 {
			t.Errorf("%v: no linguistic stats", kind)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	// Table 4 shapes: (a) ML produces substantially more distinct names
	// than dictionaries for genes; (b) relevant >> irrelevant for every
	// class and method.
	_, as := testSystem(t)
	rel := as.ByKind[textgen.Relevant]
	irr := as.ByKind[textgen.Irrelevant]
	for _, et := range textgen.EntityTypes {
		for _, m := range Methods {
			r := len(rel.DistinctNames[m][et])
			i := len(irr.DistinctNames[m][et])
			if r == 0 {
				t.Errorf("%v/%v: no names in relevant corpus", m, et)
				continue
			}
			if i >= r {
				t.Errorf("%v/%v: irrelevant (%d) >= relevant (%d)", m, et, i, r)
			}
		}
	}
	// Gene explosion: raw ML distinct names outnumber dictionary names.
	mlRaw := len(rel.RawMLGeneNames)
	dictN := len(rel.DistinctNames[Dict][textgen.Gene])
	if mlRaw <= dictN {
		t.Errorf("raw ML gene names (%d) not > dict names (%d)", mlRaw, dictN)
	}
	// The TLA filter must remove something on web text (§4.3.2).
	if rel.TLARemoved == 0 {
		t.Error("TLA filter removed nothing on the relevant web corpus")
	}
	filtered := len(rel.DistinctNames[ML][textgen.Gene])
	if filtered >= mlRaw {
		t.Errorf("TLA filtering did not shrink distinct gene names: %d -> %d", mlRaw, filtered)
	}
}

func TestFig6LinguisticOrderings(t *testing.T) {
	_, as := testSystem(t)
	meanChars := func(kind textgen.CorpusKind) float64 {
		var sum float64
		a := as.ByKind[kind]
		for _, l := range a.Ling {
			sum += float64(l.Chars)
		}
		return sum / float64(len(a.Ling))
	}
	negPerSent := func(kind textgen.CorpusKind) float64 {
		var neg, sents float64
		for _, l := range as.ByKind[kind].Ling {
			neg += float64(l.Negations)
			sents += float64(l.Sentences)
		}
		return neg / sents
	}
	// Fig 6a: PMC > Relevant > Irrelevant > Medline (net-text doc length).
	if !(meanChars(textgen.PMC) > meanChars(textgen.Relevant) &&
		meanChars(textgen.Relevant) > meanChars(textgen.Irrelevant) &&
		meanChars(textgen.Irrelevant) > meanChars(textgen.Medline)) {
		t.Errorf("doc length ordering: pmc=%.0f rel=%.0f irr=%.0f med=%.0f",
			meanChars(textgen.PMC), meanChars(textgen.Relevant),
			meanChars(textgen.Irrelevant), meanChars(textgen.Medline))
	}
	// Fig 6c: negation PMC > Relevant > Medline.
	if !(negPerSent(textgen.PMC) > negPerSent(textgen.Relevant) &&
		negPerSent(textgen.Relevant) > negPerSent(textgen.Medline)) {
		t.Errorf("negation ordering: pmc=%.3f rel=%.3f med=%.3f",
			negPerSent(textgen.PMC), negPerSent(textgen.Relevant),
			negPerSent(textgen.Medline))
	}
	// The differences must be statistically significant (P < 0.01), as the
	// paper reports for every pairwise comparison.
	lengths := func(kind textgen.CorpusKind) []float64 {
		var out []float64
		for _, l := range as.ByKind[kind].Ling {
			out = append(out, float64(l.Chars))
		}
		return out
	}
	_, p := stats.MannWhitney(lengths(textgen.Relevant), lengths(textgen.Medline))
	if p > 0.01 {
		t.Errorf("relevant-vs-medline doc length P = %v, want < 0.01", p)
	}
}

func TestFig7EntityIncidences(t *testing.T) {
	_, as := testSystem(t)
	// §4.3.2 per-1000-sentence shapes (dictionary-based, as reported for
	// genes): medline > relevant > irrelevant.
	rel := as.ByKind[textgen.Relevant]
	irr := as.ByKind[textgen.Irrelevant]
	med := as.ByKind[textgen.Medline]
	for _, et := range textgen.EntityTypes {
		r := rel.MentionsPer1000Sentences(Dict, et)
		i := irr.MentionsPer1000Sentences(Dict, et)
		m := med.MentionsPer1000Sentences(Dict, et)
		if !(r > i) {
			t.Errorf("%v: relevant density %.1f <= irrelevant %.1f", et, r, i)
		}
		if !(m > r) {
			t.Errorf("%v: medline density %.1f <= relevant %.1f", et, m, r)
		}
	}
}

func TestJSDRelationships(t *testing.T) {
	// §4.3.2: JSD(rel, irrel) > JSD(rel, medline) and > JSD(rel, pmc):
	// the relevant crawl is distributionally closer to the scientific
	// literature than to the rejected pages.
	_, as := testSystem(t)
	for _, et := range textgen.EntityTypes {
		rel := as.ByKind[textgen.Relevant].Distribution(Dict, et)
		irr := as.ByKind[textgen.Irrelevant].Distribution(Dict, et)
		med := as.ByKind[textgen.Medline].Distribution(Dict, et)
		if rel == nil || irr == nil || med == nil {
			t.Logf("%v: skipping, empty distribution", et)
			continue
		}
		jsdRelIrr := stats.JSD(rel, irr)
		jsdRelMed := stats.JSD(rel, med)
		if jsdRelIrr <= jsdRelMed {
			t.Errorf("%v: JSD(rel,irr)=%.3f <= JSD(rel,med)=%.3f",
				et, jsdRelIrr, jsdRelMed)
		}
	}
}

func TestExtractHelpers(t *testing.T) {
	s, _ := testSystem(t)
	lex := s.Set.Lexicon
	var inDict *textgen.Entry
	for _, e := range lex.ByType(textgen.Disease) {
		if e.InDictionary && !strings.Contains(e.Name, " ") {
			inDict = e
			break
		}
	}
	if inDict == nil {
		t.Skip("no single-word in-dictionary disease")
	}
	text := "Patients with " + inDict.Name + " were treated."
	found := s.ExtractDict(textgen.Disease, text)
	ok := false
	for _, f := range found {
		if f.Surface == inDict.Name {
			ok = true
		}
	}
	if !ok {
		t.Errorf("dictionary missed %q in %q (got %v)", inDict.Name, text, found)
	}
}

func TestAnalysisDeterministic(t *testing.T) {
	s, as := testSystem(t)
	reg := s.Registry()
	again, err := s.AnalyzeCorpus(reg, s.Set.Corpus(textgen.Medline), 2)
	if err != nil {
		t.Fatal(err)
	}
	base := as.ByKind[textgen.Medline]
	if again.Sentences != base.Sentences || again.Docs != base.Docs {
		t.Errorf("re-analysis differs: %d/%d vs %d/%d sentences/docs",
			again.Sentences, again.Docs, base.Sentences, base.Docs)
	}
	for _, m := range Methods {
		for _, et := range textgen.EntityTypes {
			if len(again.DistinctNames[m][et]) != len(base.DistinctNames[m][et]) {
				t.Errorf("%v/%v distinct names differ", m, et)
			}
		}
	}
}

func TestPaperProfilesConsistency(t *testing.T) {
	ling, ent, cons := PaperProfiles()
	if ling.MemPerWorkerGB >= ent.MemPerWorkerGB {
		t.Error("linguistic flow should be lighter than entity flow")
	}
	if cons.MemPerWorkerGB < ent.MemPerWorkerGB {
		t.Error("consolidated flow must be at least as heavy as the entity flow")
	}
	if !cons.LibraryConflict {
		t.Error("consolidated flow must carry the OpenNLP conflict")
	}
}

func TestMeasuredProfile(t *testing.T) {
	s, _ := testSystem(t)
	plan := s.Registry().EntityFlow(false)
	fp := MeasuredProfile("entity-measured", plan, 0.4, 0.08)
	if fp.PerKBms <= 0 || fp.StartupMs <= 0 || fp.MemPerWorkerGB <= 0 {
		t.Errorf("profile = %+v", fp)
	}
	lp := MeasuredProfile("ling-measured", s.Registry().LinguisticFlow(false), 1.2, 0.01)
	if lp.PerKBms >= fp.PerKBms {
		t.Error("linguistic flow should be cheaper per KB than entity flow")
	}
}

func TestExportFacts(t *testing.T) {
	s, _ := testSystem(t)
	reg := s.Registry()
	dir := t.TempDir()
	a, facts, err := s.ExportFacts(reg, s.Set.Corpus(textgen.Medline), 2, dir, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if facts == 0 {
		t.Fatal("no facts exported")
	}
	// Every exported fact must be readable and well-formed.
	n, chunkErrs, err := store.Read(dir, "facts-Medline", func(f store.Fact) error {
		if f.DocID == "" || f.Surface == "" || f.Start >= f.End {
			t.Fatalf("bad fact: %+v", f)
		}
		if f.Type != "gene" && f.Type != "drug" && f.Type != "disease" {
			t.Fatalf("bad type: %+v", f)
		}
		return nil
	})
	if err != nil || chunkErrs != 0 {
		t.Fatalf("read: %v (%d chunk errors)", err, chunkErrs)
	}
	if int64(n) != facts {
		t.Fatalf("read %d facts, wrote %d", n, facts)
	}
	// The export's analysis matches a plain analysis.
	plain, err := s.AnalyzeCorpus(reg, s.Set.Corpus(textgen.Medline), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sentences != a.Sentences {
		t.Error("export analysis differs from plain analysis")
	}
}
