// Package eval provides the evaluation utilities the paper's quality
// assessments need: exact-span precision/recall/F1 for entity annotation
// against generator gold standards, and the four-set overlap partitions
// behind Fig 8 (annotation overlap of distinct entity names across the
// Relevant / Irrelevant / Medline / PMC corpora).
package eval

import (
	"fmt"
	"sort"
	"strings"
)

// Span identifies a labelled text region for matching.
type Span struct {
	Start, End int
}

// PRF holds precision/recall/F1 counts.
type PRF struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP), vacuously 1.
func (q PRF) Precision() float64 {
	if q.TP+q.FP == 0 {
		return 1
	}
	return float64(q.TP) / float64(q.TP+q.FP)
}

// Recall returns TP/(TP+FN), vacuously 1.
func (q PRF) Recall() float64 {
	if q.TP+q.FN == 0 {
		return 1
	}
	return float64(q.TP) / float64(q.TP+q.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (q PRF) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates counts.
func (q *PRF) Add(o PRF) { q.TP += o.TP; q.FP += o.FP; q.FN += o.FN }

// ScoreSpans compares predicted spans against gold with exact matching.
func ScoreSpans(gold, pred []Span) PRF {
	gset := make(map[Span]bool, len(gold))
	for _, g := range gold {
		gset[g] = true
	}
	var q PRF
	for _, p := range pred {
		if gset[p] {
			q.TP++
			delete(gset, p)
		} else {
			q.FP++
		}
	}
	q.FN = len(gset)
	return q
}

// SetMembership is a bitmask over the four corpora for one entity name.
type SetMembership uint8

// Bit positions follow the paper's corpus order.
const (
	InRelevant SetMembership = 1 << iota
	InIrrelevant
	InMedline
	InPMC
)

// regionNames maps non-empty membership masks to human-readable labels.
func (m SetMembership) String() string {
	if m == 0 {
		return "none"
	}
	var parts []string
	if m&InRelevant != 0 {
		parts = append(parts, "Rel")
	}
	if m&InIrrelevant != 0 {
		parts = append(parts, "Irr")
	}
	if m&InMedline != 0 {
		parts = append(parts, "Med")
	}
	if m&InPMC != 0 {
		parts = append(parts, "PMC")
	}
	return strings.Join(parts, "∩")
}

// Overlap is the 15-region partition of a 4-set Venn diagram (Fig 8):
// for each non-empty subset of corpora, the number of distinct names found
// in exactly that subset.
type Overlap struct {
	// Region maps a membership mask (1..15) to its exclusive name count.
	Region [16]int
	// Total is the number of distinct names across all corpora.
	Total int
}

// ComputeOverlap partitions distinct names by corpus membership. Each
// argument is the distinct-name set extracted from one corpus.
func ComputeOverlap(rel, irr, med, pmc map[string]bool) Overlap {
	var o Overlap
	all := map[string]SetMembership{}
	mark := func(set map[string]bool, bit SetMembership) {
		for name := range set {
			all[name] |= bit
		}
	}
	mark(rel, InRelevant)
	mark(irr, InIrrelevant)
	mark(med, InMedline)
	mark(pmc, InPMC)
	for _, m := range all {
		o.Region[m]++
	}
	o.Total = len(all)
	return o
}

// Share returns a region's share of all distinct names, in percent.
func (o Overlap) Share(m SetMembership) float64 {
	if o.Total == 0 {
		return 0
	}
	return 100 * float64(o.Region[m]) / float64(o.Total)
}

// PairOverlapShare returns the fraction of corpus A's distinct names also
// found in corpus B (the §4.3.2 "overlap of extracted names between
// relevant and irrelevant documents is ... approximately 15%" figures).
func PairOverlapShare(a, b map[string]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	inter := 0
	for name := range a {
		if b[name] {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}

// FormatVenn renders the non-zero regions as a sorted report table.
func (o Overlap) FormatVenn() string {
	type row struct {
		mask  SetMembership
		count int
	}
	var rows []row
	for m := SetMembership(1); m < 16; m++ {
		if o.Region[m] > 0 {
			rows = append(rows, row{m, o.Region[m]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %8d  %6.2f%%\n", r.mask.String(), r.count, o.Share(r.mask))
	}
	return b.String()
}
