package eval

import (
	"strings"
	"testing"
)

func TestScoreSpans(t *testing.T) {
	gold := []Span{{0, 5}, {10, 15}, {20, 25}}
	pred := []Span{{0, 5}, {10, 14}, {30, 35}}
	q := ScoreSpans(gold, pred)
	if q.TP != 1 || q.FP != 2 || q.FN != 2 {
		t.Errorf("PRF = %+v", q)
	}
	if q.Precision() != 1.0/3 {
		t.Errorf("precision = %v", q.Precision())
	}
	if q.Recall() != 1.0/3 {
		t.Errorf("recall = %v", q.Recall())
	}
	if q.F1() != 1.0/3 {
		t.Errorf("f1 = %v", q.F1())
	}
}

func TestScoreSpansDuplicatePredictions(t *testing.T) {
	q := ScoreSpans([]Span{{0, 5}}, []Span{{0, 5}, {0, 5}})
	if q.TP != 1 || q.FP != 1 {
		t.Errorf("duplicate handling: %+v", q)
	}
}

func TestPRFVacuous(t *testing.T) {
	var q PRF
	if q.Precision() != 1 || q.Recall() != 1 {
		t.Error("vacuous PRF should be 1")
	}
}

func TestPRFAdd(t *testing.T) {
	q := PRF{TP: 1, FP: 2, FN: 3}
	q.Add(PRF{TP: 10, FP: 20, FN: 30})
	if q.TP != 11 || q.FP != 22 || q.FN != 33 {
		t.Errorf("Add = %+v", q)
	}
}

func set(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestComputeOverlap(t *testing.T) {
	o := ComputeOverlap(
		set("a", "b", "c"), // relevant
		set("b"),           // irrelevant
		set("c", "d"),      // medline
		set("c", "e"),      // pmc
	)
	if o.Total != 5 {
		t.Fatalf("total = %d", o.Total)
	}
	if o.Region[InRelevant] != 1 { // "a" only in relevant
		t.Errorf("Rel-only = %d", o.Region[InRelevant])
	}
	if o.Region[InRelevant|InIrrelevant] != 1 { // "b"
		t.Errorf("Rel∩Irr = %d", o.Region[InRelevant|InIrrelevant])
	}
	if o.Region[InRelevant|InMedline|InPMC] != 1 { // "c"
		t.Errorf("Rel∩Med∩PMC = %d", o.Region[InRelevant|InMedline|InPMC])
	}
	if o.Region[InMedline] != 1 || o.Region[InPMC] != 1 { // "d", "e"
		t.Errorf("singles: med=%d pmc=%d", o.Region[InMedline], o.Region[InPMC])
	}
}

func TestOverlapShares(t *testing.T) {
	o := ComputeOverlap(set("a", "b"), set("b"), nil, nil)
	if got := o.Share(InRelevant); got != 50 {
		t.Errorf("share = %v", got)
	}
	var empty Overlap
	if empty.Share(InRelevant) != 0 {
		t.Error("empty overlap share != 0")
	}
}

func TestRegionSumsToTotal(t *testing.T) {
	o := ComputeOverlap(set("a", "b", "c"), set("b", "x"), set("c", "y"), set("z"))
	sum := 0
	for m := 1; m < 16; m++ {
		sum += o.Region[m]
	}
	if sum != o.Total {
		t.Errorf("regions sum %d != total %d", sum, o.Total)
	}
}

func TestPairOverlapShare(t *testing.T) {
	a := set("x", "y", "z", "w")
	b := set("x", "y", "q")
	if got := PairOverlapShare(a, b); got != 0.5 {
		t.Errorf("share = %v", got)
	}
	if PairOverlapShare(nil, b) != 0 {
		t.Error("empty A share != 0")
	}
}

func TestMembershipString(t *testing.T) {
	if got := (InRelevant | InPMC).String(); got != "Rel∩PMC" {
		t.Errorf("mask string = %q", got)
	}
	if got := SetMembership(0).String(); got != "none" {
		t.Errorf("zero mask = %q", got)
	}
}

func TestFormatVenn(t *testing.T) {
	o := ComputeOverlap(set("a", "b"), set("b"), set("c"), nil)
	out := o.FormatVenn()
	if !strings.Contains(out, "Rel∩Irr") || !strings.Contains(out, "Med") {
		t.Errorf("FormatVenn output:\n%s", out)
	}
}
