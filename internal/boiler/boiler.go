// Package boiler re-implements Boilerpipe-style boilerplate detection [15]:
// classify each text block of a web page as content or boilerplate using
// shallow text features only (no rendering, no DOM geometry). The paper
// uses this to recover "net text" from crawled pages before classification
// and IE (§2.1), and reports precision ~90-98% with recall 72-82% — recall
// losses concentrated in tables and lists (§4.1), a behaviour this
// implementation intentionally shares because the features are the same.
package boiler

import (
	"strings"

	"webtextie/internal/htmlkit"
)

// Classifier assigns content/boilerplate labels to text blocks. The default
// decision function is a port of Boilerpipe's "NumWordsRulesClassifier"
// decision-tree: thresholds on the current, previous, and next block's word
// count and link density.
type Classifier struct {
	// MinWords is the minimum words for a block to be considered content
	// without contextual support.
	MinWords int
	// MaxLinkDensity is the link-density threshold above which a block is
	// always boilerplate.
	MaxLinkDensity float64
	// KeepTables controls whether table/list blocks can be content. The
	// stock rules drop most of them (the recall loss the paper laments);
	// setting this to true is the "fix the tables/lists problem" ablation.
	KeepTables bool
}

// Default returns the stock rule set, matching Boilerpipe's published
// thresholds.
func Default() *Classifier {
	return &Classifier{MinWords: 12, MaxLinkDensity: 0.33}
}

// Label is the per-block classification result.
type Label struct {
	Block   htmlkit.Block
	Content bool
}

// Classify labels each block. The decision for block i looks at blocks
// i-1 and i+1 (density-contextual rules), as in the original classifier.
// The labels slice is the only allocation.
//
//lintx:hotpath per-block boilerplate classification loop, run once per fetched page (ROADMAP item 2).
func (c *Classifier) Classify(blocks []htmlkit.Block) []Label {
	labels := make([]Label, len(blocks))
	for i, b := range blocks {
		labels[i] = Label{Block: b, Content: c.isContent(blocks, i)}
	}
	return labels
}

func (c *Classifier) isContent(blocks []htmlkit.Block, i int) bool {
	b := &blocks[i]
	if b.Words == 0 {
		return false
	}
	if b.LinkDensity() > c.MaxLinkDensity {
		return false
	}
	if !c.KeepTables && (b.Tag == "td" || b.Tag == "th" || b.Tag == "tr" ||
		b.Tag == "table" || b.Tag == "li" || b.Tag == "dt" || b.Tag == "dd") {
		// Tables and lists "often contain valuable facts [but] are not
		// recognized properly in many cases" (§4.1) — the stock rules treat
		// them as boilerplate unless they are long prose.
		if b.Words < 3*c.MinWords {
			return false
		}
	}
	prevDense := i > 0 && blocks[i-1].LinkDensity() > c.MaxLinkDensity
	nextWords := 0
	if i+1 < len(blocks) {
		nextWords = blocks[i+1].Words
	}
	prevWords := 0
	if i > 0 {
		prevWords = blocks[i-1].Words
	}
	switch {
	case b.Words >= c.MinWords:
		return true
	case b.Words >= c.MinWords/2 && (prevWords >= c.MinWords || nextWords >= c.MinWords) && !prevDense:
		// Short block sandwiched between long content blocks: keep.
		return true
	default:
		return false
	}
}

// Result is the outcome of net-text extraction for one page.
type Result struct {
	// NetText is the recovered main text, blocks joined with newlines.
	NetText string
	// ContentBlocks / TotalBlocks summarize the classification.
	ContentBlocks, TotalBlocks int
	// RepairStats records the markup repairs performed along the way.
	RepairStats htmlkit.RepairStats
}

// Extract runs the full pipeline on raw HTML: tokenize → repair → block
// segmentation → block classification → net text.
func (c *Classifier) Extract(html string) Result {
	tokens, stats := htmlkit.Repair(htmlkit.Tokenize(html))
	blocks := htmlkit.ExtractBlocks(tokens)
	labels := c.Classify(blocks)
	var parts []string
	content := 0
	for _, l := range labels {
		if l.Content {
			parts = append(parts, l.Block.Text)
			content++
		}
	}
	return Result{
		NetText:       strings.Join(parts, "\n"),
		ContentBlocks: content,
		TotalBlocks:   len(blocks),
		RepairStats:   stats,
	}
}

// WordOverlapPR scores extraction quality the way the paper does: "quality
// measures are computed based on the amount of net text being correctly
// identified" (§4.1). It compares bags of words: precision is the fraction
// of extracted words present in the gold net text, recall the fraction of
// gold words recovered.
func WordOverlapPR(extracted, gold string) (precision, recall float64) {
	ew := wordBag(extracted)
	gw := wordBag(gold)
	if len(ew) == 0 && len(gw) == 0 {
		return 1, 1
	}
	var hit, extTotal, goldTotal int
	for w, n := range ew {
		extTotal += n
		if g := gw[w]; g > 0 {
			if n < g {
				hit += n
			} else {
				hit += g
			}
		}
	}
	for _, n := range gw {
		goldTotal += n
	}
	if extTotal > 0 {
		precision = float64(hit) / float64(extTotal)
	}
	if goldTotal > 0 {
		recall = float64(hit) / float64(goldTotal)
	}
	return precision, recall
}

func wordBag(s string) map[string]int {
	bag := map[string]int{}
	for _, w := range strings.Fields(s) {
		bag[strings.ToLower(strings.Trim(w, ".,;:()[]\"'"))]++
	}
	delete(bag, "")
	return bag
}
