package boiler

import (
	"strings"
	"testing"

	"webtextie/internal/htmlkit"
)

const samplePage = `<html><head><title>Gene news</title>
<script>track();</script></head><body>
<nav><a href="/">Home</a> <a href="/news">News</a> <a href="/about">About</a> <a href="/contact">Contact</a></nav>
<div class="ads"><a href="http://ads.example/click">Buy cheap pills now best price online today</a></div>
<article>
<p>Researchers reported today that the BRCA1 gene regulates a novel pathway
involved in breast cancer progression, according to a large cohort study
published this week in a major journal of molecular medicine.</p>
<p>The study analyzed samples from more than two thousand patients and found
significantly elevated expression levels in tumor tissue compared with
healthy controls across all age groups examined by the investigators.</p>
</article>
<footer><a href="/privacy">Privacy</a> | <a href="/terms">Terms</a> | Copyright 2016</footer>
</body></html>`

func TestExtractKeepsArticleDropsChrome(t *testing.T) {
	res := Default().Extract(samplePage)
	if !strings.Contains(res.NetText, "BRCA1 gene regulates") {
		t.Errorf("article text lost: %q", res.NetText)
	}
	if !strings.Contains(res.NetText, "two thousand patients") {
		t.Errorf("second paragraph lost: %q", res.NetText)
	}
	for _, chrome := range []string{"Home", "Privacy", "cheap pills", "track()"} {
		if strings.Contains(res.NetText, chrome) {
			t.Errorf("boilerplate %q leaked into net text", chrome)
		}
	}
	if res.ContentBlocks == 0 || res.ContentBlocks >= res.TotalBlocks {
		t.Errorf("blocks: %d content of %d total", res.ContentBlocks, res.TotalBlocks)
	}
}

func TestLinkDenseBlockIsBoilerplate(t *testing.T) {
	c := Default()
	blocks := []htmlkit.Block{
		{Text: "a b c d e f g h i j k l m n o", Words: 15, LinkedWords: 15, Tag: "p"},
	}
	labels := c.Classify(blocks)
	if labels[0].Content {
		t.Error("fully-linked long block classified as content")
	}
}

func TestLongProseIsContent(t *testing.T) {
	c := Default()
	blocks := []htmlkit.Block{
		{Text: strings.Repeat("word ", 30), Words: 30, Tag: "p"},
	}
	if !c.Classify(blocks)[0].Content {
		t.Error("long prose block classified as boilerplate")
	}
}

func TestShortBlockBetweenContentKept(t *testing.T) {
	c := Default()
	blocks := []htmlkit.Block{
		{Text: strings.Repeat("w ", 40), Words: 40, Tag: "p"},
		{Text: strings.Repeat("w ", 8), Words: 8, Tag: "p"},
		{Text: strings.Repeat("w ", 40), Words: 40, Tag: "p"},
	}
	labels := c.Classify(blocks)
	if !labels[1].Content {
		t.Error("sandwiched short block dropped")
	}
}

func TestIsolatedShortBlockDropped(t *testing.T) {
	c := Default()
	blocks := []htmlkit.Block{
		{Text: "short", Words: 1, Tag: "p"},
	}
	if c.Classify(blocks)[0].Content {
		t.Error("isolated one-word block kept")
	}
}

func TestTablesDroppedByDefault(t *testing.T) {
	// §4.1: "tables and lists, which often contain valuable facts, are not
	// recognized properly in many cases" — the stock rules drop them.
	c := Default()
	blocks := []htmlkit.Block{
		{Text: strings.Repeat("cell ", 15), Words: 15, Tag: "td"},
	}
	if c.Classify(blocks)[0].Content {
		t.Error("medium-length table cell kept by stock rules")
	}
	c.KeepTables = true
	if !c.Classify(blocks)[0].Content {
		t.Error("KeepTables ablation did not keep the cell")
	}
}

func TestEmptyBlocksNeverContent(t *testing.T) {
	c := Default()
	labels := c.Classify([]htmlkit.Block{{Text: "", Words: 0}})
	if labels[0].Content {
		t.Error("empty block classified as content")
	}
}

func TestWordOverlapPRPerfect(t *testing.T) {
	p, r := WordOverlapPR("the quick brown fox", "the quick brown fox")
	if p != 1 || r != 1 {
		t.Errorf("P=%v R=%v, want 1,1", p, r)
	}
}

func TestWordOverlapPRPartial(t *testing.T) {
	// Extracted = half of gold plus one extra word.
	p, r := WordOverlapPR("alpha beta extra", "alpha beta gamma delta")
	if p < 0.6 || p > 0.7 {
		t.Errorf("precision = %v, want 2/3", p)
	}
	if r != 0.5 {
		t.Errorf("recall = %v, want 0.5", r)
	}
}

func TestWordOverlapPREmpty(t *testing.T) {
	if p, r := WordOverlapPR("", ""); p != 1 || r != 1 {
		t.Errorf("empty/empty = %v,%v", p, r)
	}
	if p, _ := WordOverlapPR("", "gold words"); p != 0 {
		t.Errorf("empty extraction precision = %v", p)
	}
	if _, r := WordOverlapPR("some words", ""); r != 0 {
		t.Errorf("empty gold recall = %v", r)
	}
}

func TestWordOverlapCaseAndPunct(t *testing.T) {
	p, r := WordOverlapPR("Hello, World.", "hello world")
	if p != 1 || r != 1 {
		t.Errorf("case/punct not normalized: P=%v R=%v", p, r)
	}
}

func TestExtractMalformedInput(t *testing.T) {
	// Must never panic and should still recover the prose.
	res := Default().Extract("<div><p>" + strings.Repeat("meaningful content words here ", 10) + "<b>no closing tags at all")
	if !strings.Contains(res.NetText, "meaningful content") {
		t.Errorf("net text = %q", res.NetText)
	}
	if res.RepairStats.Total() == 0 {
		t.Error("expected repairs on malformed input")
	}
}

func BenchmarkExtract(b *testing.B) {
	b.SetBytes(int64(len(samplePage)))
	c := Default()
	for i := 0; i < b.N; i++ {
		_ = c.Extract(samplePage)
	}
}
