package boiler

import (
	"strings"
	"testing"
	"unicode/utf8"

	"webtextie/internal/rng"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// FuzzExtract drives the full net-text extraction pipeline with arbitrary
// bytes, seeded with corrupted synthetic-web pages and handcrafted
// degenerate markup. The extractor must never panic, its counters must
// stay consistent, and valid-UTF-8 input must yield valid-UTF-8 net text.
func FuzzExtract(f *testing.F) {
	lex := textgen.NewLexicon(rng.New(21), textgen.DefaultLexiconSizes(), 0.75)
	gen := textgen.NewGenerator(22, lex, textgen.DefaultProfiles())
	cfg := synthweb.DefaultConfig()
	cfg.Seed = 21
	cfg.NumHosts = 3
	cfg.CorruptShare = 1.0
	web := synthweb.New(cfg, gen)
	added := 0
	for _, h := range web.Hosts {
		for i := 0; i < h.Pages && added < 10; i++ {
			p, err := web.Fetch(synthweb.PageURL(h.Name, i))
			if err != nil {
				continue
			}
			f.Add(string(p.Body))
			added++
		}
	}
	for _, s := range []string{
		"",
		"<html><body><p>unclosed<div>and nested",
		"<td><table><tr>backwards table",
		"<a href=x>all <a href=y>linked <a href=z>words",
		"<script>var html = '<p>fake'</script><p>real text here",
		strings.Repeat("<li>item ", 500),
		"<div \xff\xfe>binary attr</div> trailing \x00",
	} {
		f.Add(s)
	}

	c := Default()
	f.Fuzz(func(t *testing.T, html string) {
		res := c.Extract(html)
		if res.ContentBlocks < 0 || res.TotalBlocks < 0 || res.ContentBlocks > res.TotalBlocks {
			t.Fatalf("inconsistent block counts: %+v", res)
		}
		if res.TotalBlocks == 0 && res.NetText != "" {
			t.Fatalf("net text %q from zero blocks", res.NetText)
		}
		if utf8.ValidString(html) && !utf8.ValidString(res.NetText) {
			t.Fatalf("Extract produced invalid UTF-8 from valid input: %q", res.NetText)
		}
	})
}
