package crawldb

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestRequeueBackoffEligibility(t *testing.T) {
	db := New()
	db.Inject("http://a.com/1", "a.com")
	db.Inject("http://a.com/2", "a.com")
	list := db.GenerateAt(10, 10, 0)
	if len(list) != 2 {
		t.Fatalf("generated %d, want 2", len(list))
	}
	// First URL fails, retried at t=500; second succeeds.
	if got := db.Requeue("http://a.com/1", "a.com", 500); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
	db.SetStatus("http://a.com/2", Fetched)

	if list = db.GenerateAt(10, 10, 499); list != nil {
		t.Fatalf("backoff not honored: got %v at t=499", list)
	}
	if next, ok := db.NextEligible(); !ok || next != 500 {
		t.Fatalf("NextEligible = %d,%v, want 500,true", next, ok)
	}
	list = db.GenerateAt(10, 10, 500)
	if len(list) != 1 || list[0].URL != "http://a.com/1" {
		t.Fatalf("retry not generated at t=500: %v", list)
	}
	if db.Attempts("http://a.com/1") != 1 {
		t.Fatalf("attempts = %d", db.Attempts("http://a.com/1"))
	}
	// Terminal status clears the retry state.
	db.SetStatus("http://a.com/1", Failed)
	if db.Attempts("http://a.com/1") != 0 {
		t.Fatal("terminal status did not clear retry state")
	}
}

func TestGenerateAtPreservesQueueOrder(t *testing.T) {
	db := New()
	for _, u := range []string{"http://a.com/1", "http://a.com/2", "http://a.com/3"} {
		db.Inject(u, "a.com")
	}
	db.GenerateAt(10, 10, 0)
	// Requeue out of order: /3 eligible first, then /1.
	db.Requeue("http://a.com/1", "a.com", 800)
	db.Requeue("http://a.com/3", "a.com", 200)
	db.SetStatus("http://a.com/2", Fetched)

	list := db.GenerateAt(10, 10, 200)
	if len(list) != 1 || list[0].URL != "http://a.com/3" {
		t.Fatalf("at t=200 got %v, want only /3", list)
	}
	list = db.GenerateAt(10, 10, 800)
	if len(list) != 1 || list[0].URL != "http://a.com/1" {
		t.Fatalf("at t=800 got %v, want /1", list)
	}
	if db.Pending() != 0 {
		t.Fatalf("pending = %d", db.Pending())
	}
}

func TestDeferKeepsAttemptCount(t *testing.T) {
	db := New()
	db.Inject("http://b.com/1", "b.com")
	db.GenerateAt(10, 10, 0)
	db.Defer("http://b.com/1", "b.com", 3000)
	if got := db.Attempts("http://b.com/1"); got != 0 {
		t.Fatalf("Defer consumed an attempt: %d", got)
	}
	if list := db.GenerateAt(10, 10, 2999); list != nil {
		t.Fatal("deferred URL generated early")
	}
	if list := db.GenerateAt(10, 10, 3000); len(list) != 1 {
		t.Fatal("deferred URL not generated at eligibility")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := New()
	db.Inject("http://a.com/1", "a.com")
	db.Inject("http://a.com/2", "a.com")
	db.Inject("http://b.com/1", "b.com")
	db.GenerateAt(2, 2, 0)
	db.SetStatus("http://a.com/1", Fetched)
	db.Requeue("http://a.com/2", "a.com", 700)

	snap := db.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	restored := FromSnapshot(decoded)

	if restored.Pending() != db.Pending() || restored.Known() != db.Known() {
		t.Fatalf("pending/known diverge: %d/%d vs %d/%d",
			restored.Pending(), restored.Known(), db.Pending(), db.Known())
	}
	if restored.Attempts("http://a.com/2") != 1 {
		t.Fatal("retry state lost in round trip")
	}
	// Both must generate identical fetch lists from here on.
	for _, now := range []int64{0, 700} {
		a := db.GenerateAt(10, 10, now)
		b := restored.GenerateAt(10, 10, now)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("at t=%d lists diverge: %v vs %v", now, a, b)
		}
	}
}

func TestLinkSnapshotRoundTrip(t *testing.T) {
	l := NewLinkDB()
	l.AddLinks("http://a.com/1", []string{"http://b.com/1", "http://b.com/2"})
	l.AddLinks("http://b.com/1", []string{"http://a.com/1"})

	restored := FromLinkSnapshot(l.Snapshot())
	if restored.Edges() != l.Edges() {
		t.Fatalf("edges = %d, want %d", restored.Edges(), l.Edges())
	}
	if restored.InDegree("http://b.com/2") != 1 || restored.InDegree("http://a.com/1") != 1 {
		t.Fatal("in-degrees lost")
	}
	if !reflect.DeepEqual(restored.Pages(), l.Pages()) {
		t.Fatal("page sets diverge")
	}
}
