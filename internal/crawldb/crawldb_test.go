package crawldb

import (
	"fmt"
	"testing"
)

func TestInjectDedup(t *testing.T) {
	db := New()
	if !db.Inject("http://a.com/1", "a.com") {
		t.Fatal("first inject rejected")
	}
	if db.Inject("http://a.com/1", "a.com") {
		t.Fatal("duplicate inject accepted")
	}
	if db.Pending() != 1 || db.Known() != 1 {
		t.Errorf("pending=%d known=%d", db.Pending(), db.Known())
	}
}

func TestGenerateRespectsPerHostCap(t *testing.T) {
	db := New()
	for i := 0; i < 20; i++ {
		db.Inject(fmt.Sprintf("http://a.com/%d", i), "a.com")
		db.Inject(fmt.Sprintf("http://b.com/%d", i), "b.com")
	}
	list := db.Generate(100, 5)
	perHost := map[string]int{}
	for _, it := range list {
		perHost[it.Host]++
	}
	if perHost["a.com"] != 5 || perHost["b.com"] != 5 {
		t.Errorf("per-host counts: %v", perHost)
	}
	if db.Pending() != 30 {
		t.Errorf("pending = %d, want 30", db.Pending())
	}
}

func TestGenerateRespectsTotal(t *testing.T) {
	db := New()
	for i := 0; i < 50; i++ {
		db.Inject(fmt.Sprintf("http://h%d.com/x", i), fmt.Sprintf("h%d.com", i))
	}
	list := db.Generate(7, 500)
	if len(list) != 7 {
		t.Errorf("generated %d, want 7", len(list))
	}
}

func TestGenerateDrainsFrontier(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.Inject(fmt.Sprintf("http://a.com/%d", i), "a.com")
	}
	seen := map[string]bool{}
	for {
		list := db.Generate(3, 500)
		if len(list) == 0 {
			break
		}
		for _, it := range list {
			if seen[it.URL] {
				t.Fatalf("URL %s generated twice", it.URL)
			}
			seen[it.URL] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("drained %d URLs, want 10", len(seen))
	}
	if db.Pending() != 0 {
		t.Errorf("pending = %d after drain", db.Pending())
	}
}

func TestGenerateDeterministicOrder(t *testing.T) {
	build := func() *CrawlDB {
		db := New()
		db.Inject("http://b.com/1", "b.com")
		db.Inject("http://a.com/1", "a.com")
		db.Inject("http://a.com/2", "a.com")
		return db
	}
	l1 := build().Generate(10, 500)
	l2 := build().Generate(10, 500)
	if len(l1) != len(l2) {
		t.Fatal("lengths differ")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	// Injection order preserved: b.com first.
	if l1[0].Host != "b.com" {
		t.Errorf("first host = %s, want b.com (injection order)", l1[0].Host)
	}
}

func TestStatusLifecycle(t *testing.T) {
	db := New()
	db.Inject("http://a.com/1", "a.com")
	s, ok := db.StatusOf("http://a.com/1")
	if !ok || s != Unfetched {
		t.Fatalf("status = %v/%v", s, ok)
	}
	db.SetStatus("http://a.com/1", Fetched)
	if s, _ := db.StatusOf("http://a.com/1"); s != Fetched {
		t.Errorf("status = %v after SetStatus", s)
	}
	counts := db.Counts()
	if counts[Fetched] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if _, ok := db.StatusOf("http://unknown/"); ok {
		t.Error("unknown URL has status")
	}
}

func TestLinkDB(t *testing.T) {
	l := NewLinkDB()
	l.AddLinks("http://a.com/1", []string{"http://b.com/1", "http://c.com/1"})
	l.AddLinks("http://b.com/1", []string{"http://c.com/1"})
	if l.Edges() != 3 {
		t.Errorf("edges = %d", l.Edges())
	}
	if got := l.InDegree("http://c.com/1"); got != 2 {
		t.Errorf("in-degree = %d", got)
	}
	if got := len(l.OutLinks("http://a.com/1")); got != 2 {
		t.Errorf("out-links = %d", got)
	}
	pages := l.Pages()
	if len(pages) != 2 || pages[0] != "http://a.com/1" {
		t.Errorf("pages = %v", pages)
	}
}

func TestLinkDBReplace(t *testing.T) {
	l := NewLinkDB()
	l.AddLinks("http://a.com/1", []string{"http://b.com/1"})
	l.AddLinks("http://a.com/1", []string{"http://c.com/1", "http://d.com/1"})
	if l.Edges() != 2 {
		t.Errorf("edges = %d after replace", l.Edges())
	}
	if l.InDegree("http://b.com/1") != 0 {
		t.Error("old target in-degree not decremented")
	}
	if l.InDegree("http://c.com/1") != 1 {
		t.Error("new target in-degree wrong")
	}
}

func TestLinkDBForEachSorted(t *testing.T) {
	l := NewLinkDB()
	l.AddLinks("http://z.com/1", nil)
	l.AddLinks("http://a.com/1", nil)
	var order []string
	l.ForEach(func(src string, _ []string) { order = append(order, src) })
	if len(order) != 2 || order[0] != "http://a.com/1" {
		t.Errorf("ForEach order = %v", order)
	}
}
