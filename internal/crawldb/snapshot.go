package crawldb

// Snapshotting: the CrawlDB and LinkDB freeze to plain JSON-encodable
// values and restore losslessly, which is what crawl checkpoint/resume is
// built on — a crawl interrupted mid-cycle restarts from the snapshot and
// produces a byte-identical final corpus (encoding/json renders map keys
// sorted, so the serialized form is itself deterministic).

// Snapshot is the frozen state of a CrawlDB.
type Snapshot struct {
	Status    map[string]Status     `json:"status"`
	Frontier  map[string][]string   `json:"frontier"`
	HostOrder []string              `json:"host_order"`
	Retry     map[string]RetryState `json:"retry,omitempty"`
	Traces    map[string]uint64     `json:"traces,omitempty"`
}

// Snapshot freezes the database. The result shares no state with the db.
func (db *CrawlDB) Snapshot() Snapshot {
	s := Snapshot{
		Status:    make(map[string]Status, len(db.status)),
		Frontier:  make(map[string][]string, len(db.frontier)),
		HostOrder: append([]string(nil), db.hostOrder...),
		Retry:     make(map[string]RetryState, len(db.retry)),
	}
	for u, st := range db.status {
		s.Status[u] = st
	}
	for h, q := range db.frontier {
		s.Frontier[h] = append([]string(nil), q...)
	}
	for u, rs := range db.retry {
		s.Retry[u] = rs
	}
	if len(db.trace) > 0 {
		s.Traces = make(map[string]uint64, len(db.trace))
		for u, id := range db.trace {
			s.Traces[u] = id
		}
	}
	return s
}

// FromSnapshot rebuilds a CrawlDB from a frozen state. The pending count
// is recomputed from the frontier.
func FromSnapshot(s Snapshot) *CrawlDB {
	db := New()
	for u, st := range s.Status {
		db.status[u] = st
	}
	for h, q := range s.Frontier {
		db.frontier[h] = append([]string(nil), q...)
		db.pending += len(q)
	}
	db.hostOrder = append([]string(nil), s.HostOrder...)
	for u, rs := range s.Retry {
		db.retry[u] = rs
	}
	for u, id := range s.Traces {
		db.trace[u] = id
	}
	return db
}

// LinkSnapshot is the frozen state of a LinkDB (out-links only; in-degrees
// and edge counts are derived on restore).
type LinkSnapshot struct {
	Out map[string][]string `json:"out"`
}

// Snapshot freezes the link graph.
func (l *LinkDB) Snapshot() LinkSnapshot {
	s := LinkSnapshot{Out: make(map[string][]string, len(l.out))}
	for src, targets := range l.out {
		s.Out[src] = append([]string(nil), targets...)
	}
	return s
}

// FromLinkSnapshot rebuilds a LinkDB from a frozen state.
func FromLinkSnapshot(s LinkSnapshot) *LinkDB {
	l := NewLinkDB()
	for src, targets := range s.Out {
		l.AddLinks(src, targets)
	}
	return l
}
