// Package crawldb implements the crawl-state stores of the Nutch-style
// architecture in Fig 1: the CrawlDB (the crawl frontier: URLs known but
// not yet fetched, plus the fetch status of visited URLs) and the LinkDB
// (the link-graph structure of crawled pages). Both are in-memory,
// deterministic, and support the politeness constraints of §4.1: per-host
// fetch lists capped at a configurable size "to prevent threads from
// blocking each other" (the paper uses 500).
package crawldb

import "sort"

// Status is the lifecycle state of a URL in the CrawlDB.
type Status int

const (
	// Unfetched means the URL sits in the frontier.
	Unfetched Status = iota
	// Fetched means the URL was downloaded successfully.
	Fetched
	// Failed means the fetch errored (404, robots, bad scheme).
	Failed
	// Filtered means a pre-filter discarded the page (MIME/lang/length).
	Filtered
)

// CrawlDB is the frontier and URL-status store. It is not safe for
// concurrent use; the crawler serializes access (generate/fetch/update
// cycles, as in Nutch).
type CrawlDB struct {
	status map[string]Status
	// frontier holds unfetched URLs per host, FIFO within a host.
	frontier map[string][]string
	// hostOrder keeps deterministic iteration order over hosts.
	hostOrder []string
	pending   int
}

// New returns an empty CrawlDB.
func New() *CrawlDB {
	return &CrawlDB{status: map[string]Status{}, frontier: map[string][]string{}}
}

// Inject adds a URL to the frontier if it is unknown (the Nutch injector).
// It returns true if the URL was new.
func (db *CrawlDB) Inject(url, host string) bool {
	if _, known := db.status[url]; known {
		return false
	}
	db.status[url] = Unfetched
	if _, ok := db.frontier[host]; !ok {
		db.hostOrder = append(db.hostOrder, host)
	}
	db.frontier[host] = append(db.frontier[host], url)
	db.pending++
	return true
}

// SetStatus records the outcome of a fetch attempt.
func (db *CrawlDB) SetStatus(url string, s Status) {
	db.status[url] = s
}

// StatusOf returns a URL's status and whether it is known.
func (db *CrawlDB) StatusOf(url string) (Status, bool) {
	s, ok := db.status[url]
	return s, ok
}

// Pending returns the number of URLs still in the frontier.
func (db *CrawlDB) Pending() int { return db.pending }

// Known returns the number of URLs ever seen.
func (db *CrawlDB) Known() int { return len(db.status) }

// FetchItem is one entry of a generated fetch list.
type FetchItem struct {
	URL  string
	Host string
}

// Generate produces the next fetch list: up to maxPerHost URLs from each
// host with pending work, up to total URLs overall. Hosts are visited in
// injection order, which keeps runs deterministic. Generated URLs leave
// the frontier immediately (they are "in flight").
func (db *CrawlDB) Generate(total, maxPerHost int) []FetchItem {
	if maxPerHost <= 0 {
		maxPerHost = 500 // the paper's fetch-list cap (§4.1)
	}
	var out []FetchItem
	for _, host := range db.hostOrder {
		if len(out) >= total {
			break
		}
		q := db.frontier[host]
		n := maxPerHost
		if n > len(q) {
			n = len(q)
		}
		if rem := total - len(out); n > rem {
			n = rem
		}
		for _, u := range q[:n] {
			out = append(out, FetchItem{URL: u, Host: host})
		}
		db.frontier[host] = q[n:]
		db.pending -= n
	}
	// Drop empty hosts from the order lazily.
	if len(out) == 0 {
		return nil
	}
	return out
}

// Counts returns the number of URLs per status.
func (db *CrawlDB) Counts() map[Status]int {
	out := map[Status]int{}
	for _, s := range db.status {
		out[s]++
	}
	return out
}

// LinkDB stores the directed link graph of crawled pages.
type LinkDB struct {
	// out maps a source URL to its out-link targets.
	out map[string][]string
	// inCount tracks in-degree per URL.
	inCount map[string]int
	edges   int
}

// NewLinkDB returns an empty LinkDB.
func NewLinkDB() *LinkDB {
	return &LinkDB{out: map[string][]string{}, inCount: map[string]int{}}
}

// AddLinks records the out-links of a crawled page (replacing any previous
// record for the same source).
func (l *LinkDB) AddLinks(src string, targets []string) {
	if old, ok := l.out[src]; ok {
		for _, t := range old {
			l.inCount[t]--
		}
		l.edges -= len(old)
	}
	cp := make([]string, len(targets))
	copy(cp, targets)
	l.out[src] = cp
	for _, t := range cp {
		l.inCount[t]++
	}
	l.edges += len(cp)
}

// OutLinks returns the recorded out-links of a URL.
func (l *LinkDB) OutLinks(src string) []string { return l.out[src] }

// InDegree returns the number of recorded links pointing at a URL.
func (l *LinkDB) InDegree(url string) int { return l.inCount[url] }

// Pages returns all source URLs in sorted order.
func (l *LinkDB) Pages() []string {
	out := make([]string, 0, len(l.out))
	for u := range l.out {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Edges returns the total number of recorded links.
func (l *LinkDB) Edges() int { return l.edges }

// ForEach visits every (src, targets) pair in sorted source order.
func (l *LinkDB) ForEach(fn func(src string, targets []string)) {
	for _, src := range l.Pages() {
		fn(src, l.out[src])
	}
}
