// Package crawldb implements the crawl-state stores of the Nutch-style
// architecture in Fig 1: the CrawlDB (the crawl frontier: URLs known but
// not yet fetched, plus the fetch status of visited URLs) and the LinkDB
// (the link-graph structure of crawled pages). Both are in-memory,
// deterministic, and support the politeness constraints of §4.1: per-host
// fetch lists capped at a configurable size "to prevent threads from
// blocking each other" (the paper uses 500).
package crawldb

import (
	"math"
	"sort"
)

// Status is the lifecycle state of a URL in the CrawlDB.
type Status int

const (
	// Unfetched means the URL sits in the frontier.
	Unfetched Status = iota
	// Fetched means the URL was downloaded successfully.
	Fetched
	// Failed means the fetch errored (404, robots, bad scheme).
	Failed
	// Filtered means a pre-filter discarded the page (MIME/lang/length).
	Filtered
)

// RetryState is the per-URL retry bookkeeping: how many fetch attempts
// have failed so far and the earliest virtual time the URL may re-enter a
// fetch list (backoff, retry-after, breaker-open windows).
type RetryState struct {
	Attempts       int   `json:"attempts"`
	NextEligibleMs int64 `json:"next_eligible_ms"`
}

// CrawlDB is the frontier and URL-status store. It is not safe for
// concurrent use; the crawler serializes access (generate/fetch/update
// cycles, as in Nutch).
type CrawlDB struct {
	status map[string]Status
	// frontier holds unfetched URLs per host, FIFO within a host.
	frontier map[string][]string
	// hostOrder keeps deterministic iteration order over hosts.
	hostOrder []string
	// retry holds the failed-attempt state of URLs awaiting a retry.
	retry   map[string]RetryState
	pending int
	// trace maps a URL to its obs trace ID (stamped at frontier insertion)
	// so a URL's lineage survives checkpoint/resume along with the frontier.
	trace map[string]uint64
}

// New returns an empty CrawlDB.
func New() *CrawlDB {
	return &CrawlDB{
		status:   map[string]Status{},
		frontier: map[string][]string{},
		retry:    map[string]RetryState{},
		trace:    map[string]uint64{},
	}
}

// SetTrace associates a URL with its trace ID. Zero clears the entry.
func (db *CrawlDB) SetTrace(url string, id uint64) {
	if id == 0 {
		delete(db.trace, url)
		return
	}
	db.trace[url] = id
}

// TraceOf returns the trace ID stamped on a URL, if any.
func (db *CrawlDB) TraceOf(url string) (uint64, bool) {
	id, ok := db.trace[url]
	return id, ok
}

// Inject adds a URL to the frontier if it is unknown (the Nutch injector).
// It returns true if the URL was new.
func (db *CrawlDB) Inject(url, host string) bool {
	if _, known := db.status[url]; known {
		return false
	}
	db.status[url] = Unfetched
	if _, ok := db.frontier[host]; !ok {
		db.hostOrder = append(db.hostOrder, host)
	}
	db.frontier[host] = append(db.frontier[host], url)
	db.pending++
	return true
}

// SetStatus records the outcome of a fetch attempt. Terminal statuses
// (anything but Unfetched) clear the URL's retry state.
func (db *CrawlDB) SetStatus(url string, s Status) {
	db.status[url] = s
	if s != Unfetched {
		delete(db.retry, url)
	}
}

// Requeue returns a generated (in-flight) URL to the frontier after a
// failed attempt: the attempt counter is incremented and the URL becomes
// eligible for fetch lists again once the virtual clock reaches
// nextEligibleMs. Returns the total number of failed attempts so far.
func (db *CrawlDB) Requeue(url, host string, nextEligibleMs int64) int {
	rs := db.retry[url]
	rs.Attempts++
	rs.NextEligibleMs = nextEligibleMs
	db.retry[url] = rs
	db.requeue(url, host)
	return rs.Attempts
}

// Defer returns a generated URL to the frontier without consuming a retry
// attempt — used when the crawler itself declines the fetch (open circuit
// breaker) rather than the fetch failing.
func (db *CrawlDB) Defer(url, host string, nextEligibleMs int64) {
	rs := db.retry[url]
	rs.NextEligibleMs = nextEligibleMs
	db.retry[url] = rs
	db.requeue(url, host)
}

// requeue places an in-flight URL back on its host queue.
func (db *CrawlDB) requeue(url, host string) {
	db.status[url] = Unfetched
	if _, ok := db.frontier[host]; !ok {
		db.hostOrder = append(db.hostOrder, host)
	}
	db.frontier[host] = append(db.frontier[host], url)
	db.pending++
}

// Attempts returns how many fetch attempts of a URL have failed so far.
func (db *CrawlDB) Attempts(url string) int { return db.retry[url].Attempts }

// NextEligible returns the earliest NextEligibleMs across the frontier
// and whether the frontier holds any URL at all. A crawler whose fetch
// list came back empty advances its virtual clock to this time.
func (db *CrawlDB) NextEligible() (int64, bool) {
	if db.pending == 0 {
		return 0, false
	}
	earliest := int64(math.MaxInt64)
	for _, host := range db.hostOrder {
		for _, u := range db.frontier[host] {
			if t := db.retry[u].NextEligibleMs; t < earliest {
				earliest = t
			}
		}
	}
	return earliest, true
}

// StatusOf returns a URL's status and whether it is known.
func (db *CrawlDB) StatusOf(url string) (Status, bool) {
	s, ok := db.status[url]
	return s, ok
}

// Pending returns the number of URLs still in the frontier.
func (db *CrawlDB) Pending() int { return db.pending }

// Known returns the number of URLs ever seen.
func (db *CrawlDB) Known() int { return len(db.status) }

// FetchItem is one entry of a generated fetch list.
type FetchItem struct {
	URL  string
	Host string
}

// Generate produces the next fetch list ignoring retry eligibility — the
// original time-free surface, equivalent to GenerateAt at the end of time.
func (db *CrawlDB) Generate(total, maxPerHost int) []FetchItem {
	return db.GenerateAt(total, maxPerHost, math.MaxInt64)
}

// GenerateAt produces the next fetch list as of virtual time nowMs: up to
// maxPerHost URLs from each host with pending work, up to total URLs
// overall, skipping URLs whose retry backoff has not yet elapsed
// (NextEligibleMs > nowMs). Hosts are visited in injection order and
// queues stay FIFO, which keeps runs deterministic. Generated URLs leave
// the frontier immediately (they are "in flight"); skipped URLs keep
// their queue position.
func (db *CrawlDB) GenerateAt(total, maxPerHost int, nowMs int64) []FetchItem {
	if maxPerHost <= 0 {
		maxPerHost = 500 // the paper's fetch-list cap (§4.1)
	}
	var out []FetchItem
	for _, host := range db.hostOrder {
		if len(out) >= total {
			break
		}
		q := db.frontier[host]
		if len(q) == 0 {
			continue
		}
		n := maxPerHost
		if rem := total - len(out); n > rem {
			n = rem
		}
		kept := q[:0:0]
		taken := 0
		for i, u := range q {
			if taken >= n {
				kept = append(kept, q[i:]...)
				break
			}
			if db.retry[u].NextEligibleMs > nowMs {
				kept = append(kept, u)
				continue
			}
			out = append(out, FetchItem{URL: u, Host: host})
			taken++
		}
		db.frontier[host] = kept
		db.pending -= taken
	}
	// Drop empty hosts from the order lazily.
	if len(out) == 0 {
		return nil
	}
	return out
}

// Counts returns the number of URLs per status.
func (db *CrawlDB) Counts() map[Status]int {
	out := map[Status]int{}
	for _, s := range db.status {
		out[s]++
	}
	return out
}

// LinkDB stores the directed link graph of crawled pages.
type LinkDB struct {
	// out maps a source URL to its out-link targets.
	out map[string][]string
	// inCount tracks in-degree per URL.
	inCount map[string]int
	edges   int
}

// NewLinkDB returns an empty LinkDB.
func NewLinkDB() *LinkDB {
	return &LinkDB{out: map[string][]string{}, inCount: map[string]int{}}
}

// AddLinks records the out-links of a crawled page (replacing any previous
// record for the same source).
func (l *LinkDB) AddLinks(src string, targets []string) {
	if old, ok := l.out[src]; ok {
		for _, t := range old {
			l.inCount[t]--
		}
		l.edges -= len(old)
	}
	cp := make([]string, len(targets))
	copy(cp, targets)
	l.out[src] = cp
	for _, t := range cp {
		l.inCount[t]++
	}
	l.edges += len(cp)
}

// OutLinks returns the recorded out-links of a URL.
func (l *LinkDB) OutLinks(src string) []string { return l.out[src] }

// InDegree returns the number of recorded links pointing at a URL.
func (l *LinkDB) InDegree(url string) int { return l.inCount[url] }

// Pages returns all source URLs in sorted order.
func (l *LinkDB) Pages() []string {
	out := make([]string, 0, len(l.out))
	for u := range l.out {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Edges returns the total number of recorded links.
func (l *LinkDB) Edges() int { return l.edges }

// ForEach visits every (src, targets) pair in sorted source order.
func (l *LinkDB) ForEach(fn func(src string, targets []string)) {
	for _, src := range l.Pages() {
		fn(src, l.out[src])
	}
}
