package classify

import (
	"fmt"
	"testing"

	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The BRCA1 gene, treated-with 42 mg/kg doses!")
	want := []string{"the", "brca1", "gene", "treated", "with", "mg", "kg", "doses"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeDropsNumbersAndSingles(t *testing.T) {
	got := Tokenize("a 1 22 333 bb")
	if len(got) != 1 || got[0] != "bb" {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestUntrainedReturnsHalf(t *testing.T) {
	nb := New()
	if p := nb.ProbRelevant("anything"); p != 0.5 {
		t.Errorf("untrained prob = %v", p)
	}
}

func TestLearnAndClassifyToy(t *testing.T) {
	nb := New()
	nb.Learn("gene protein mutation tumor patient", Relevant)
	nb.Learn("gene expression pathway disease clinical", Relevant)
	nb.Learn("cheap shoes free shipping sale discount", Irrelevant)
	nb.Learn("football season team game score", Irrelevant)
	if nb.Classify("the gene mutation in the patient") != Relevant {
		t.Error("biomedical text classified irrelevant")
	}
	if nb.Classify("buy cheap shoes on sale") != Irrelevant {
		t.Error("shopping text classified relevant")
	}
}

func TestIncrementalLearning(t *testing.T) {
	nb := New()
	nb.Learn("alpha beta", Relevant)
	nb.Learn("gamma delta", Irrelevant)
	before := nb.ProbRelevant("epsilon zeta")
	// Teach the model that "epsilon zeta" is relevant; probability must rise.
	for i := 0; i < 5; i++ {
		nb.Learn("epsilon zeta", Relevant)
	}
	after := nb.ProbRelevant("epsilon zeta")
	if after <= before {
		t.Errorf("incremental update had no effect: before=%v after=%v", before, after)
	}
}

func TestThresholdTradesPrecisionForRecall(t *testing.T) {
	examples := syntheticExamples(t, 400)
	train, test := examples[:300], examples[300:]
	low := Train(train, 0.3)
	high := Train(train, 0.97)
	qLow := Evaluate(low, test)
	qHigh := Evaluate(high, test)
	if qHigh.Precision() < qLow.Precision() {
		t.Errorf("high threshold precision %.3f < low threshold %.3f",
			qHigh.Precision(), qLow.Precision())
	}
	if qHigh.Recall() > qLow.Recall() {
		t.Errorf("high threshold recall %.3f > low threshold %.3f",
			qHigh.Recall(), qLow.Recall())
	}
}

// syntheticExamples builds a balanced Medline-vs-web training set, exactly
// the construction of §2.
func syntheticExamples(t testing.TB, n int) []Example {
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 100, Diseases: 100}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	r := rng.New(3)
	out := make([]Example, 0, n)
	for i := 0; i < n/2; i++ {
		out = append(out, Example{Text: gen.Doc(r, textgen.Medline, fmt.Sprint("m", i)).Text, Class: Relevant})
		out = append(out, Example{Text: gen.Doc(r, textgen.Irrelevant, fmt.Sprint("w", i)).Text, Class: Irrelevant})
	}
	return out
}

func TestCrossValidationQualityOnSyntheticCorpus(t *testing.T) {
	// §4.1: "Our classifier achieved a precision of 98% at a recall of 83%
	// in 10-fold cross validation." We require the same regime: high P & R.
	q := CrossValidate(syntheticExamples(t, 600), 10, 0.5)
	if q.Precision() < 0.9 {
		t.Errorf("CV precision = %.3f, want > 0.9", q.Precision())
	}
	if q.Recall() < 0.8 {
		t.Errorf("CV recall = %.3f, want > 0.8", q.Recall())
	}
}

func TestQualityMetrics(t *testing.T) {
	q := Quality{TP: 8, FP: 2, TN: 9, FN: 1}
	if p := q.Precision(); p != 0.8 {
		t.Errorf("precision = %v", p)
	}
	if r := q.Recall(); r < 0.888 || r > 0.889 {
		t.Errorf("recall = %v", r)
	}
	if a := q.Accuracy(); a != 0.85 {
		t.Errorf("accuracy = %v", a)
	}
	if f := q.F1(); f < 0.84 || f > 0.85 {
		t.Errorf("f1 = %v", f)
	}
}

func TestQualityDegenerate(t *testing.T) {
	var q Quality
	if q.Precision() != 1 || q.Recall() != 1 || q.Accuracy() != 1 || q.F1() != 1 {
		t.Error("empty quality should be all-1 (vacuous)")
	}
	q2 := Quality{FN: 5}
	if q2.Recall() != 0 {
		t.Errorf("all-FN recall = %v", q2.Recall())
	}
}

func TestQualityAdd(t *testing.T) {
	a := Quality{TP: 1, FP: 2, TN: 3, FN: 4}
	a.Add(Quality{TP: 10, FP: 20, TN: 30, FN: 40})
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Errorf("Add = %+v", a)
	}
}

func TestTopWords(t *testing.T) {
	nb := New()
	for i := 0; i < 5; i++ {
		nb.Learn("tumor gene mutation tumor tumor", Relevant)
		nb.Learn("shoes sale discount shoes shoes", Irrelevant)
	}
	top := nb.TopWords(Relevant, 2)
	if len(top) == 0 {
		t.Fatal("no top words")
	}
	for _, w := range top {
		if w == "shoes" || w == "sale" {
			t.Errorf("irrelevant indicator %q in relevant top words", w)
		}
	}
}

func TestClassString(t *testing.T) {
	if Relevant.String() != "relevant" || Irrelevant.String() != "irrelevant" {
		t.Error("Class.String broken")
	}
}

func BenchmarkClassify(b *testing.B) {
	examples := syntheticExamples(b, 200)
	nb := Train(examples, 0.5)
	text := examples[0].Text
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nb.Classify(text)
	}
}
