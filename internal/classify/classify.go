// Package classify implements the focused crawler's relevance classifier
// (§2.1): a multinomial Naive Bayes model over a bag-of-words document
// representation. The paper chose Naive Bayes "due to its robustness with
// respect to class imbalance ... and its ability to update its model
// incrementally"; both properties hold here (log-space class priors can be
// overridden; Learn can be called after training).
//
// The classifier is trained exactly as in the paper: positive examples are
// Medline-style abstracts, negatives are random English web documents
// (common-crawl substitute). The paper notes this introduces a bias because
// "a typical Medline abstract is quite different from a typical web page"
// (§2) — the same bias emerges here and is visible in the gap between
// cross-validation and crawl-sample quality (see EXPERIMENTS.md).
package classify

import (
	"math"
	"sort"
	"strings"
)

// Class is a binary relevance label.
type Class int

const (
	// Irrelevant is the negative class.
	Irrelevant Class = iota
	// Relevant is the positive class.
	Relevant
)

// String names the class.
func (c Class) String() string {
	if c == Relevant {
		return "relevant"
	}
	return "irrelevant"
}

// Tokenize converts text to the bag-of-words features: lower-cased
// alphanumeric runs, with pure numbers and single characters dropped.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() >= 2 {
			w := cur.String()
			digitsOnly := true
			for i := 0; i < len(w); i++ {
				if w[i] < '0' || w[i] > '9' {
					digitsOnly = false
					break
				}
			}
			if !digitsOnly {
				out = append(out, w)
			}
		}
		cur.Reset()
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			cur.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			cur.WriteRune(r + 32)
		default:
			flush()
		}
	}
	flush()
	return out
}

// NaiveBayes is a multinomial Naive Bayes text classifier with Laplace
// smoothing. The zero value is an untrained classifier; use New.
type NaiveBayes struct {
	wordCounts [2]map[string]int
	totalWords [2]int
	docs       [2]int
	vocab      map[string]struct{}

	// Threshold is the posterior probability of Relevant required to
	// classify as relevant. 0.5 is the Bayes decision; the paper's model
	// is "geared towards high precision" (§4.1), corresponding to a higher
	// threshold — the precision/yield trade-off discussed in §5.
	Threshold float64
}

// New returns an empty classifier with the default 0.5 threshold.
func New() *NaiveBayes {
	return &NaiveBayes{
		wordCounts: [2]map[string]int{{}, {}},
		vocab:      map[string]struct{}{},
		Threshold:  0.5,
	}
}

// Learn incrementally updates the model with one labelled document.
func (nb *NaiveBayes) Learn(text string, class Class) {
	nb.LearnTokens(Tokenize(text), class)
}

// LearnTokens is Learn for pre-tokenized input.
func (nb *NaiveBayes) LearnTokens(tokens []string, class Class) {
	nb.docs[class]++
	for _, w := range tokens {
		nb.wordCounts[class][w]++
		nb.totalWords[class]++
		nb.vocab[w] = struct{}{}
	}
}

// Trained reports whether both classes have at least one example.
func (nb *NaiveBayes) Trained() bool { return nb.docs[0] > 0 && nb.docs[1] > 0 }

// Clone returns an independent deep copy of the model (for experiments
// that update one instance incrementally while keeping the original).
func (nb *NaiveBayes) Clone() *NaiveBayes {
	out := New()
	out.Threshold = nb.Threshold
	out.totalWords = nb.totalWords
	out.docs = nb.docs
	for c := 0; c < 2; c++ {
		for w, n := range nb.wordCounts[c] {
			out.wordCounts[c][w] = n
		}
	}
	for w := range nb.vocab {
		out.vocab[w] = struct{}{}
	}
	return out
}

// LogPosterior returns the unnormalized log joint probability of each class.
func (nb *NaiveBayes) logJoint(tokens []string) (lIrr, lRel float64) {
	totalDocs := nb.docs[0] + nb.docs[1]
	v := float64(len(nb.vocab))
	var l [2]float64
	for c := 0; c < 2; c++ {
		l[c] = math.Log(float64(nb.docs[c]+1) / float64(totalDocs+2))
		denom := math.Log(float64(nb.totalWords[c]) + v)
		for _, w := range tokens {
			l[c] += math.Log(float64(nb.wordCounts[c][w])+1) - denom
		}
	}
	return l[0], l[1]
}

// ProbRelevant returns P(Relevant | text) in [0, 1].
func (nb *NaiveBayes) ProbRelevant(text string) float64 {
	return nb.ProbRelevantTokens(Tokenize(text))
}

// ProbRelevantTokens is ProbRelevant for pre-tokenized input.
//
// The returned probability is length-calibrated: the class log-odds are
// normalized by the token count before the logistic transform. Raw
// multinomial NB posteriors saturate at 0/1 for documents of hundreds of
// words, which would make the decision threshold useless as a
// precision/yield knob — and tuning that knob is exactly the §5 trade-off
// ("one could tune the classifier towards more recall during crawling").
// The 0.5 decision boundary is unaffected (sigmoid(x) >= 0.5 iff x >= 0).
func (nb *NaiveBayes) ProbRelevantTokens(tokens []string) float64 {
	if !nb.Trained() {
		return 0.5
	}
	lIrr, lRel := nb.logJoint(tokens)
	n := float64(len(tokens))
	if n < 1 {
		n = 1
	}
	perToken := (lRel - lIrr) / n
	return 1 / (1 + math.Exp(-8*perToken))
}

// Classify applies the decision threshold.
func (nb *NaiveBayes) Classify(text string) Class {
	if nb.ProbRelevant(text) >= nb.Threshold {
		return Relevant
	}
	return Irrelevant
}

// ClassifyTokens is Classify for pre-tokenized input.
func (nb *NaiveBayes) ClassifyTokens(tokens []string) Class {
	if nb.ProbRelevantTokens(tokens) >= nb.Threshold {
		return Relevant
	}
	return Irrelevant
}

// TopWords returns the n strongest indicator words for a class by
// log-likelihood ratio — useful for model inspection in reports.
func (nb *NaiveBayes) TopWords(class Class, n int) []string {
	other := 1 - class
	type scored struct {
		w string
		s float64
	}
	v := float64(len(nb.vocab))
	var all []scored
	for w := range nb.vocab {
		pc := (float64(nb.wordCounts[class][w]) + 1) / (float64(nb.totalWords[class]) + v)
		po := (float64(nb.wordCounts[other][w]) + 1) / (float64(nb.totalWords[other]) + v)
		if nb.wordCounts[class][w] >= 3 {
			all = append(all, scored{w, math.Log(pc / po)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].w < all[j].w
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.w
	}
	return out
}

// Example is one labelled training document.
type Example struct {
	Text  string
	Class Class
}

// Train builds a classifier from a labelled set.
func Train(examples []Example, threshold float64) *NaiveBayes {
	nb := New()
	nb.Threshold = threshold
	for _, ex := range examples {
		nb.Learn(ex.Text, ex.Class)
	}
	return nb
}

// Quality holds binary classification quality measures with respect to the
// Relevant class.
type Quality struct {
	TP, FP, TN, FN int
}

// Precision returns TP / (TP + FP); 1 if no positives were predicted.
func (q Quality) Precision() float64 {
	if q.TP+q.FP == 0 {
		return 1
	}
	return float64(q.TP) / float64(q.TP+q.FP)
}

// Recall returns TP / (TP + FN); 1 if no positives exist.
func (q Quality) Recall() float64 {
	if q.TP+q.FN == 0 {
		return 1
	}
	return float64(q.TP) / float64(q.TP+q.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (q Quality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct decisions.
func (q Quality) Accuracy() float64 {
	total := q.TP + q.FP + q.TN + q.FN
	if total == 0 {
		return 1
	}
	return float64(q.TP+q.TN) / float64(total)
}

// Add accumulates another quality count.
func (q *Quality) Add(o Quality) {
	q.TP += o.TP
	q.FP += o.FP
	q.TN += o.TN
	q.FN += o.FN
}

// Evaluate scores a trained classifier on a labelled set.
func Evaluate(nb *NaiveBayes, examples []Example) Quality {
	var q Quality
	for _, ex := range examples {
		got := nb.Classify(ex.Text)
		switch {
		case got == Relevant && ex.Class == Relevant:
			q.TP++
		case got == Relevant && ex.Class == Irrelevant:
			q.FP++
		case got == Irrelevant && ex.Class == Irrelevant:
			q.TN++
		default:
			q.FN++
		}
	}
	return q
}

// CrossValidate performs k-fold cross-validation (the paper uses 10-fold,
// §4.1) and returns the pooled quality over all folds. Fold assignment is
// round-robin, so callers should pre-shuffle if example order is biased.
func CrossValidate(examples []Example, k int, threshold float64) Quality {
	if k < 2 {
		k = 2
	}
	var total Quality
	for fold := 0; fold < k; fold++ {
		var train, test []Example
		for i, ex := range examples {
			if i%k == fold {
				test = append(test, ex)
			} else {
				train = append(train, ex)
			}
		}
		nb := Train(train, threshold)
		total.Add(Evaluate(nb, test))
	}
	return total
}
