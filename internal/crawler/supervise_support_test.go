package crawler

import (
	"strings"
	"testing"

	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// TestCheckpointSilentLeavesNoResidue: supervision snapshots a crawler
// every round; those snapshots must not alter any export. An announcing
// Checkpoint leaves a checkpoint.saved log record and a trace mark — a
// CheckpointSilent leaves neither, so a run peppered with silent
// checkpoints exports the same bytes as an untouched run.
func TestCheckpointSilentLeavesNoResidue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 150
	traceCfg := trace.DefaultConfig(9)
	logCfg := evlog.DefaultConfig(9)

	run := func(snapshot func(*Crawler)) (string, string) {
		p := chaosPipeline(t, 40, chaosWeb)
		rec := trace.NewRecorder(traceCfg)
		c := New(cfg, p.web, p.clf).WithTrace(rec).WithLog(evlog.NewSink(logCfg))
		c.Seed(defaultSeeds(t, p))
		for c.Step() {
			if snapshot != nil {
				snapshot(c)
			}
		}
		res := c.Finish()
		return res.Logs.Logfmt(), rec.Snapshot().Text()
	}

	logsRef, tracesRef := run(nil)
	logsSilent, tracesSilent := run(func(c *Crawler) { c.CheckpointSilent() })
	if logsSilent != logsRef {
		t.Error("CheckpointSilent altered the log export")
	}
	if tracesSilent != tracesRef {
		t.Error("CheckpointSilent altered the trace export")
	}

	logsLoud, _ := run(func(c *Crawler) { c.Checkpoint() })
	if !strings.Contains(logsLoud, "checkpoint.saved") {
		t.Error("announcing Checkpoint left no checkpoint.saved record")
	}
	if logsLoud == logsRef {
		t.Error("announcing Checkpoint was expected to alter the log export")
	}
}

// TestStepFaultFiresOncePerCycle: the supervision crash hook fires once
// per Step, after the first fetch has already mutated crawl state —
// a panic there leaves a genuinely half-stepped crawler, which is what
// checkpoint rollback must be able to undo. Clearing the hook stops it.
func TestStepFaultFiresOncePerCycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 100
	cfg.FetchListSize = 40 // small cycles so the budget spans several Steps
	p := chaosPipeline(t, 40, nil)
	c := New(cfg, p.web, p.clf)
	c.Seed(defaultSeeds(t, p))

	fired := 0
	var fetchedAtFire int
	c.WithStepFault(func() {
		fired++
		fetchedAtFire = c.stats.Fetched
	})
	fetchedBefore := c.stats.Fetched
	if !c.Step() {
		t.Fatal("first step ended the crawl")
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times in one cycle, want 1", fired)
	}
	if fetchedAtFire != fetchedBefore+1 {
		t.Errorf("hook fired with %d pages fetched, want mid-cycle after the first fetch (%d)",
			fetchedAtFire, fetchedBefore+1)
	}
	c.Step()
	if fired != 2 {
		t.Fatalf("hook fired %d times over two cycles, want 2", fired)
	}
	c.WithStepFault(nil)
	c.Step()
	if fired != 2 {
		t.Error("cleared hook still fired")
	}
}

// TestStepFaultPanicIsRecoverable: a panic from the hook mid-cycle, then
// a Resume from the pre-crash checkpoint, replays the interrupted cycle
// to the same final stats as a run that never crashed.
func TestStepFaultPanicIsRecoverable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 120
	cfg.FetchListSize = 40 // the crash must land mid-run, not after the budget
	seedsOf := func(p *pipeline) []string { return defaultSeeds(t, p) }

	p1 := chaosPipeline(t, 40, chaosWeb)
	ref := New(cfg, p1.web, p1.clf).Run(seedsOf(p1))

	p2 := chaosPipeline(t, 40, chaosWeb)
	c := New(cfg, p2.web, p2.clf)
	c.Seed(seedsOf(p2))
	if !c.Step() {
		t.Fatal("first step ended the crawl")
	}
	raw, err := c.CheckpointSilent().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c.WithStepFault(func() { panic("OOM-killed mid-cycle") })
	crashed := func() (v any) {
		defer func() { v = recover() }()
		c.Step()
		return nil
	}()
	if crashed != "OOM-killed mid-cycle" {
		t.Fatalf("expected the injected panic, got %v", crashed)
	}

	cp, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	p3 := chaosPipeline(t, 40, chaosWeb)
	rc, err := Resume(cfg, p3.web, p3.clf, cp)
	if err != nil {
		t.Fatal(err)
	}
	for rc.Step() {
	}
	got := rc.Finish()
	if got.Stats != ref.Stats {
		t.Fatalf("recovered stats diverge:\nwant %+v\ngot  %+v", ref.Stats, got.Stats)
	}
	if got.Metrics.Text() != ref.Metrics.Text() {
		t.Error("recovered metric export diverges")
	}
}
