// Package crawler implements the focused crawler of §2: a Nutch-style
// generate/fetch/update loop (Fig 1) extended with the paper's focusing
// components — MIME-type filter, document-length filter, n-gram language
// filter, Boilerpipe-style net-text extraction, and a Naive Bayes relevance
// classifier. Links are followed only from pages classified as relevant
// (configurable tunnelling past irrelevant pages is the §5 ablation).
//
// Fetching is simulated against a synthweb.Web under a deterministic
// discrete-event clock that models politeness delays (robots.txt crawl
// delays, per-host serialization) and per-page processing cost, so the
// crawl reports a download rate comparable in kind to the paper's
// "3-4 documents per second" (§4.1) without wall-clock dependence.
package crawler

import (
	"strings"
	"sync/atomic"

	"webtextie/internal/boiler"
	"webtextie/internal/classify"
	"webtextie/internal/crawldb"
	"webtextie/internal/ie/dict"
	"webtextie/internal/langid"
	"webtextie/internal/mimetype"
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// Config controls a crawl.
type Config struct {
	// MaxPages stops the crawl after this many successful fetches
	// ("the desired corpus size is reached", §2.1). 0 means unlimited.
	MaxPages int
	// FetchListSize is the number of URLs generated per cycle.
	FetchListSize int
	// MaxPerHostPerCycle caps each host's share of a fetch list
	// (paper: 500, §4.1).
	MaxPerHostPerCycle int
	// MaxPagesPerHost is the spider-trap guard: total fetches per host.
	MaxPagesPerHost int
	// MinNetTextLen is the document-length filter threshold (chars).
	MinNetTextLen int
	// MaxNetTextLen filters "extremely long documents" (Fig 2, first step).
	MaxNetTextLen int
	// Tunnelling is the number of consecutive irrelevant pages the crawler
	// follows links through. 1 reproduces the paper's setup (stop
	// immediately); 2 or 3 is the §5 "not stopping immediately" ablation.
	Tunnelling int
	// Workers is the number of simulated fetcher threads.
	Workers int
	// FetchCostMs and ProcessCostMs model per-page network and
	// filter+classify time in the virtual clock.
	FetchCostMs, ProcessCostMs int

	// EntityBoost enables the §5 "consolidated process" extension: the IE
	// pipeline's dictionary matchers feed the relevance decision ("the
	// occurrence of gene names or disease names are strong indicators for
	// biomedical content"). A page the classifier rejects is kept anyway
	// when its entity density exceeds EntityBoostDensity mentions per 100
	// words.
	EntityBoost        bool
	EntityBoostDensity float64

	// SelfTraining enables the §2.1 incremental-update extension ("its
	// ability to update its model incrementally, although we currently
	// don't use this feature"): pages classified with confidence beyond
	// SelfTrainingMargin (both directions) are fed back into the model.
	SelfTraining       bool
	SelfTrainingMargin float64

	// MaxRetries is the per-URL retry budget for transient fetch failures
	// (injected errors, truncated bodies, host-down, rate limits). 0
	// disables retries: every fetch error is terminal, the pre-resilience
	// behavior.
	MaxRetries int
	// BackoffBaseMs and BackoffMaxMs bound the exponential retry backoff
	// (base<<attempt, capped, plus deterministic jitter) on the virtual
	// clock.
	BackoffBaseMs, BackoffMaxMs int
	// BreakerFailures is the consecutive-failure threshold that opens a
	// host's circuit breaker. 0 disables breakers.
	BreakerFailures int
	// BreakerOpenMs is how long an open breaker rejects fetches before
	// letting a half-open probe through.
	BreakerOpenMs int
}

// DefaultConfig returns the calibrated crawl configuration.
func DefaultConfig() Config {
	return Config{
		MaxPages:           0,
		FetchListSize:      2000,
		MaxPerHostPerCycle: 500,
		MaxPagesPerHost:    300,
		MinNetTextLen:      250,
		MaxNetTextLen:      1 << 20,
		Tunnelling:         1,
		Workers:            16,
		FetchCostMs:        200,
		ProcessCostMs:      2500,
		EntityBoostDensity: 1.0,
		SelfTrainingMargin: 0.45,
		MaxRetries:         3,
		BackoffBaseMs:      500,
		BackoffMaxMs:       60_000,
		BreakerFailures:    5,
		BreakerOpenMs:      30_000,
	}
}

// CrawledPage is one stored page of the crawl output.
type CrawledPage struct {
	URL string
	// NetText is the boilerplate-stripped text actually extracted.
	NetText string
	// Gold is the generation ground truth (nil for noise pages).
	Gold *textgen.Doc
	// GoldRelevant is the true topical label.
	GoldRelevant bool
	// Bytes is the raw page size.
	Bytes int
}

// Stats aggregates the §4.1 crawl accounting.
type Stats struct {
	// Fetched is the number of successful downloads.
	Fetched int
	// FetchErrors counts 404s/unknown hosts; RobotsBlocked counts URLs the
	// politeness rules forbade.
	FetchErrors, RobotsBlocked int
	// FilteredMIME/FilteredLang/FilteredLength count pre-filter discards.
	FilteredMIME, FilteredLang, FilteredLength int
	// Relevant/Irrelevant count classified pages; *Bytes their raw sizes.
	Relevant, Irrelevant           int
	RelevantBytes, IrrelevantBytes int
	// FrontierEmptied reports whether the crawl died naturally (§2.2).
	FrontierEmptied bool
	// EntityBoosted counts pages rescued by the entity-density signal
	// (EntityBoost extension).
	EntityBoosted int
	// SelfTrainUpdates counts incremental classifier updates
	// (SelfTraining extension).
	SelfTrainUpdates int
	// VirtualMs is the simulated crawl duration.
	VirtualMs int64
	// Cycles is the number of generate/fetch/update rounds.
	Cycles int
	// Retries counts requeues after transient failures; RetriesExhausted
	// counts URLs abandoned after MaxRetries failed attempts.
	Retries, RetriesExhausted int
	// RateLimited counts 429-style rejections honored via retry-after.
	RateLimited int
	// BreakerOpens counts closed->open circuit-breaker transitions;
	// BreakerDeferred counts fetches an open breaker pushed back into the
	// frontier.
	BreakerOpens, BreakerDeferred int
}

// Classified returns the number of pages that reached the classifier.
func (s *Stats) Classified() int { return s.Relevant + s.Irrelevant }

// HarvestRate returns the byte-weighted harvest rate (the paper's 38% is
// 373 GB relevant of 980 GB classified, §4.1).
func (s *Stats) HarvestRate() float64 {
	total := s.RelevantBytes + s.IrrelevantBytes
	if total == 0 {
		return 0
	}
	return float64(s.RelevantBytes) / float64(total)
}

// HarvestRateDocs returns the document-count harvest rate.
func (s *Stats) HarvestRateDocs() float64 {
	if s.Classified() == 0 {
		return 0
	}
	return float64(s.Relevant) / float64(s.Classified())
}

// DocsPerSecond returns the simulated download throughput.
func (s *Stats) DocsPerSecond() float64 {
	if s.VirtualMs == 0 {
		return 0
	}
	return float64(s.Fetched) / (float64(s.VirtualMs) / 1000)
}

// Result is the complete crawl output.
type Result struct {
	Stats    Stats
	Relevant []CrawledPage
	// IrrelevantPages holds the pages classified off-domain (the fourth
	// corpus of §4.3).
	IrrelevantPages []CrawledPage
	LinkDB          *crawldb.LinkDB
	CrawlDB         *crawldb.CrawlDB
	// Metrics is the crawl's obs registry frozen at the end of Run —
	// per-cycle fetch counts, filter/classify counters, frontier gauges,
	// politeness-stall and per-page cost histograms.
	Metrics obs.Snapshot
	// Logs is the crawl's event log frozen at the end of Run (nil when the
	// crawl ran without a log sink).
	Logs *evlog.Snapshot
	// Series is the crawl's time-series pillar frozen at the end of Run —
	// one per-cycle sample stream per counter/gauge, on the virtual clock
	// (nil when the crawl ran without a series recorder).
	Series *series.Snapshot
	// Profile is the crawl's cost profile frozen at the end of Run —
	// virtual milliseconds and call counts attributed to the
	// frontier/fetch/filter/classify stage tree, plus the wall lane
	// (nil when the crawl ran without a profiler).
	Profile *prof.Snapshot
}

// metrics bundles the crawler's obs instruments. Counters mirror the
// fields of Stats (kept for API compatibility); the histograms expose the
// distributions Stats cannot: fetches per cycle, politeness stalls, and
// per-page cost on the virtual clock.
type metrics struct {
	reg *obs.Registry

	cycles, fetchOK, fetchErr, fetchBytes *obs.Counter
	robotsBlocked, stalls, links          *obs.Counter
	filterMIME, filterLang, filterLength  *obs.Counter
	classifyRelevant, classifyIrrelevant  *obs.Counter
	entityBoosted, selfTrain              *obs.Counter
	retrySched, retryExhausted            *obs.Counter
	rateLimited, hostDown, truncated      *obs.Counter
	frontierTrap                          *obs.Counter
	breakerOpened, breakerHalfOpen        *obs.Counter
	breakerClosed, breakerDeferred        *obs.Counter
	idleAdvances                          *obs.Counter
	frontierPending, frontierKnown        *obs.Gauge
	virtualMs, breakerOpenHosts           *obs.Gauge
	cycleFetched, stallMs, pageCost       *obs.Histogram
	retryBackoffMs                        *obs.Histogram
}

// cycleBuckets histogram the number of fetches per generate/fetch cycle.
var cycleBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg:                reg,
		cycles:             reg.Counter("crawler.cycles"),
		fetchOK:            reg.Counter("crawler.fetch.ok"),
		fetchErr:           reg.Counter("crawler.fetch.errors"),
		fetchBytes:         reg.Counter("crawler.fetch.bytes"),
		robotsBlocked:      reg.Counter("crawler.robots.blocked"),
		stalls:             reg.Counter("crawler.politeness.stalls"),
		links:              reg.Counter("crawler.links.discovered"),
		filterMIME:         reg.Counter("crawler.filter.mime"),
		filterLang:         reg.Counter("crawler.filter.lang"),
		filterLength:       reg.Counter("crawler.filter.length"),
		classifyRelevant:   reg.Counter("crawler.classify.relevant"),
		classifyIrrelevant: reg.Counter("crawler.classify.irrelevant"),
		entityBoosted:      reg.Counter("crawler.entity.boosted"),
		selfTrain:          reg.Counter("crawler.selftrain.updates"),
		retrySched:         reg.Counter("crawler.retry.scheduled"),
		retryExhausted:     reg.Counter("crawler.retry.exhausted"),
		rateLimited:        reg.Counter("crawler.fetch.ratelimited"),
		frontierTrap:       reg.Counter("crawler.frontier.trap"),
		hostDown:           reg.Counter("crawler.fetch.hostdown"),
		truncated:          reg.Counter("crawler.fetch.truncated"),
		breakerOpened:      reg.Counter("crawler.breaker.opened"),
		breakerHalfOpen:    reg.Counter("crawler.breaker.halfopen"),
		breakerClosed:      reg.Counter("crawler.breaker.closed"),
		breakerDeferred:    reg.Counter("crawler.breaker.deferred"),
		idleAdvances:       reg.Counter("crawler.clock.idle.advances"),
		frontierPending:    reg.Gauge("crawler.frontier.pending"),
		frontierKnown:      reg.Gauge("crawler.frontier.known"),
		virtualMs:          reg.Gauge("crawler.virtual.ms"),
		breakerOpenHosts:   reg.Gauge("crawler.breaker.open.hosts"),
		cycleFetched:       reg.Histogram("crawler.cycle.fetched", cycleBuckets...),
		stallMs:            reg.Histogram("crawler.politeness.stall.ms", obs.DefaultMsBuckets...),
		pageCost:           reg.Histogram("crawler.page.cost.ms", obs.DefaultMsBuckets...),
		retryBackoffMs:     reg.Histogram("crawler.retry.backoff.ms", obs.DefaultMsBuckets...),
	}
}

// Crawler wires the components together.
type Crawler struct {
	cfg    Config
	web    *synthweb.Web
	clf    *classify.NaiveBayes
	lang   *langid.Identifier
	boiler *boiler.Classifier
	// matchers power the EntityBoost extension (nil disables it even when
	// the config asks for it).
	matchers map[textgen.EntityType]*dict.Matcher

	db  *crawldb.CrawlDB
	ldb *crawldb.LinkDB

	// tunnelDepth tracks, per URL, how many consecutive irrelevant hops
	// preceded it (0 for seeds and links from relevant pages).
	tunnelDepth map[string]int
	// perHost counts fetches per host for the trap guard.
	perHost map[string]int
	// clock state: per-host earliest next fetch, per-worker availability.
	hostFree   map[string]int64
	workerFree []int64
	// breakers holds each host's circuit breaker (created on first fetch).
	breakers map[string]*breaker

	// relevant/irrelevant accumulate the two crawled corpora.
	relevant, irrelevant []CrawledPage

	// router, when set, intercepts frontier insertions for URLs whose host
	// belongs to another shard (see WithRouter).
	router func(url, host string, depth int) bool

	// stepFault, when set, is invoked once per Step midway through the
	// fetch cycle — after the first fetch has mutated crawl state (see
	// WithStepFault).
	stepFault func()

	stats Stats
	m     *metrics
	// resumeMetrics remembers the checkpoint's metric snapshot so that
	// WithMetrics on a resumed crawler re-seeds the new registry too.
	resumeMetrics *obs.Snapshot

	// rec is the optional per-URL trace recorder (nil = tracing off).
	rec *trace.Recorder
	// resumeTraces remembers the checkpoint's trace snapshot for WithTrace.
	resumeTraces *trace.Snapshot
	// logs is the optional event-log sink (nil = logging off); lg holds the
	// component loggers built from it (zero Loggers when logging is off).
	logs *evlog.Sink
	lg   crawlLogs
	// resumeLogs remembers the checkpoint's log snapshot for WithLog.
	resumeLogs *evlog.Snapshot
	// series is the optional time-series recorder (nil = sampling off):
	// every cycle ends with one registry sample on the virtual clock.
	series *series.Recorder
	// resumeSeries remembers the checkpoint's series snapshot for WithSeries.
	resumeSeries *series.Snapshot
	// prof is the optional cost profiler (nil = profiling off); pf holds
	// the pre-resolved stage scopes (zero Scopes when profiling is off,
	// so hot-path attribution costs one nil comparison).
	prof *prof.Profiler
	pf   crawlScopes
	// resumeProf remembers the checkpoint's profile snapshot for WithProf.
	resumeProf *prof.Snapshot
	// live publishes a Stats copy after every cycle so debug-server
	// goroutines can read crawl progress without racing the crawl loop.
	live atomic.Pointer[Stats]
}

// New builds a crawler over a synthetic web with a trained classifier.
func New(cfg Config, web *synthweb.Web, clf *classify.NaiveBayes) *Crawler {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Crawler{
		cfg:         cfg,
		web:         web,
		clf:         clf,
		lang:        langid.New(),
		boiler:      boiler.Default(),
		db:          crawldb.New(),
		ldb:         crawldb.NewLinkDB(),
		tunnelDepth: map[string]int{},
		perHost:     map[string]int{},
		hostFree:    map[string]int64{},
		workerFree:  make([]int64, cfg.Workers),
		breakers:    map[string]*breaker{},
		m:           newMetrics(obs.New()),
	}
}

// WithMetrics points the crawler's instruments at the given registry
// (e.g. obs.Default() for a process-wide `--metrics` dump). By default
// each crawler writes into a fresh private registry, snapshotted into
// Result.Metrics. Returns the crawler for chaining.
func (c *Crawler) WithMetrics(reg *obs.Registry) *Crawler {
	c.m = newMetrics(obs.Or(reg))
	if c.resumeMetrics != nil {
		c.m.reg.Load(*c.resumeMetrics)
	}
	return c
}

// WithTrace points the crawler at a trace recorder: every URL gets a trace
// at frontier insertion, and fetch attempts, backoffs, breaker transitions,
// filter/classify verdicts, and checkpoint boundaries are recorded in
// virtual-clock time. On a resumed crawler the checkpoint's trace snapshot
// is loaded first, so the recorder continues the original ID stream.
// Returns the crawler for chaining.
func (c *Crawler) WithTrace(rec *trace.Recorder) *Crawler {
	c.rec = rec
	if c.resumeTraces != nil {
		rec.Load(c.resumeTraces)
	}
	return c
}

// crawlLogs bundles the crawler's component loggers. The zero value is
// all no-op loggers — logging-off call sites cost one nil comparison.
type crawlLogs struct {
	frontier, fetch, filter, classify Logger
	breaker, cycle, checkpoint        Logger
	// crawl shares the cycle component but skips its rate limit so the
	// terminal crawl.done record always lands.
	crawl Logger
}

// Logger aliases evlog.Logger so crawlLogs stays readable.
type Logger = evlog.Logger

// WithLog points the crawler at an event-log sink: frontier, fetch,
// filter, classify, breaker, and checkpoint decisions are logged in
// virtual-clock time, hot paths sampled or rate-limited, every record
// carrying its URL's trace ID when tracing is on. On a resumed crawler
// the checkpoint's log snapshot is loaded first, so the sink continues
// the original stream and budgets. Returns the crawler for chaining.
func (c *Crawler) WithLog(sink *evlog.Sink) *Crawler {
	c.logs = sink
	if c.resumeLogs != nil {
		sink.Load(c.resumeLogs)
	}
	c.lg = crawlLogs{
		frontier:   sink.Logger("crawler.frontier"),
		fetch:      sink.Logger("crawler.fetch"),
		filter:     sink.Logger("crawler.filter"),
		classify:   sink.Logger("crawler.classify"),
		breaker:    sink.Logger("crawler.breaker"),
		cycle:      sink.Logger("crawler.cycle").RateLimit(8, 1),
		checkpoint: sink.Logger("crawler.checkpoint"),
		crawl:      sink.Logger("crawler.cycle"),
	}
	return c
}

// LogSink returns the attached event-log sink (nil when logging is off).
func (c *Crawler) LogSink() *evlog.Sink { return c.logs }

// WithSeries points the crawler at a time-series recorder: every cycle
// ends with one sample of the full metric registry (counters and gauges)
// plus the derived harvest-rate series, stamped with the cycle's virtual
// completion time. On a resumed crawler the checkpoint's series snapshot
// is loaded first, so the streams continue exactly where they stopped.
// Returns the crawler for chaining.
func (c *Crawler) WithSeries(rec *series.Recorder) *Crawler {
	c.series = rec
	if c.resumeSeries != nil {
		rec.Load(c.resumeSeries)
	}
	return c
}

// SeriesRecorder returns the attached recorder (nil when sampling is off).
func (c *Crawler) SeriesRecorder() *series.Recorder { return c.series }

// crawlScopes bundles the crawler's pre-resolved profiler scopes. The
// zero value is all disabled Scopes — profiling-off call sites cost one
// nil comparison, the same discipline as crawlLogs.
type crawlScopes struct {
	cycle, frontier, fetch, filter, classify, checkpoint prof.Scope
}

// WithProf points the crawler at a cost profiler: each cycle's
// generate/fetch work is bracketed on the wall lane (crawl.cycle,
// crawl.cycle.frontier, crawl.checkpoint), and every fetched page's
// deterministic virtual-clock cost is attributed to the stage that
// consumed it — stall+fetch time to crawl.cycle.fetch, processing time
// to crawl.cycle.filter or crawl.cycle.classify by where the page left
// the pipeline (fetch-error pages charge processing to the fetch
// stage). On a resumed crawler the checkpoint's profile snapshot is
// loaded first, so the accumulators continue exactly where they
// stopped. Returns the crawler for chaining.
func (c *Crawler) WithProf(p *prof.Profiler) *Crawler {
	c.prof = p
	if c.resumeProf != nil {
		p.Load(c.resumeProf)
	}
	c.pf = crawlScopes{
		cycle:      p.Scope("crawl.cycle"),
		frontier:   p.Scope("crawl.cycle.frontier"),
		fetch:      p.Scope("crawl.cycle.fetch"),
		filter:     p.Scope("crawl.cycle.filter"),
		classify:   p.Scope("crawl.cycle.classify"),
		checkpoint: p.Scope("crawl.checkpoint"),
	}
	return c
}

// Profiler returns the attached profiler (nil when profiling is off).
func (c *Crawler) Profiler() *prof.Profiler { return c.prof }

// MetricsSnapshot freezes the crawler's metric registry. Call it only
// between Step calls — the shard runner merges per-shard snapshots at
// round barriers into the fleet-level series sample.
func (c *Crawler) MetricsSnapshot() obs.Snapshot { return c.m.reg.Snapshot() }

// sampleSeries records one end-of-cycle sample of every counter and
// gauge, stamped with the crawl's virtual duration so far. The gauges
// that Finish normally refreshes are refreshed here first so the sample
// reflects end-of-cycle state; Finish overwrites them again, so final
// metric exports are unchanged by sampling.
func (c *Crawler) sampleSeries() {
	c.m.frontierPending.Set(int64(c.db.Pending()))
	c.m.frontierKnown.Set(int64(c.db.Known()))
	c.m.virtualMs.Set(c.stats.VirtualMs)
	at := c.stats.VirtualMs
	c.series.Sample(at, c.m.reg.Snapshot())
	c.series.Observe("crawler.harvest.rate.docs", at, c.stats.HarvestRateDocs())
}

// LiveStats returns the most recent published Stats copy (nil before the
// first cycle). Safe to call concurrently with a running crawl — this is
// the debug server's /progress source.
func (c *Crawler) LiveStats() *Stats { return c.live.Load() }

// TraceRecorder returns the attached recorder (nil when tracing is off).
func (c *Crawler) TraceRecorder() *trace.Recorder { return c.rec }

// CurrentStats returns a copy of the crawl statistics so far. Unlike
// LiveStats it reads the crawl loop's own state, so call it only between
// Step calls — the shard runner reads it at round barriers to enforce the
// fleet-wide page budget.
func (c *Crawler) CurrentStats() Stats { return c.stats }

// WithEntityMatchers supplies the dictionary matchers the EntityBoost
// extension consults (§5: crawling and text analytics as a consolidated
// process). Returns the crawler for chaining.
func (c *Crawler) WithEntityMatchers(m map[textgen.EntityType]*dict.Matcher) *Crawler {
	c.matchers = m
	return c
}

// entityDensity returns dictionary mentions per 100 words of text.
func (c *Crawler) entityDensity(text string) float64 {
	words := len(strings.Fields(text))
	if words == 0 {
		return 0
	}
	mentions := 0
	for _, m := range c.matchers {
		mentions += len(m.Find(text))
	}
	return 100 * float64(mentions) / float64(words)
}

// WithRouter installs a frontier router for sharded crawls: every URL
// about to enter the frontier is offered to the router first, and a true
// return means the URL belongs to another shard and was taken (queued as
// cross-shard mail). The router runs before the trap, robots, and dedup
// checks, so a routed URL's entire lifecycle — politeness, accounting,
// retries, breakers — happens on its home shard. Returns the crawler for
// chaining.
func (c *Crawler) WithRouter(route func(url, host string, depth int) bool) *Crawler {
	c.router = route
	return c
}

// WithStepFault installs a fault-injection hook for supervised crawls:
// f runs once per Step, mid-cycle — after the first fetch of the round
// has already advanced the clock, metrics, and frontier, so a panic
// raised by f leaves genuinely half-mutated state behind. A supervisor
// arms it with a deterministic crash schedule and recovers the panic at
// the shard boundary; nil disarms. Returns the crawler for chaining.
func (c *Crawler) WithStepFault(f func()) *Crawler {
	c.stepFault = f
	return c
}

// InjectURL offers one URL to the frontier through the same guarded path
// seeds take — how a shard runner delivers cross-shard mail. Call it only
// between Step calls (never mid-cycle).
func (c *Crawler) InjectURL(url string, depth int) {
	c.inject(url, depth)
}

// Pending returns the number of frontier URLs awaiting fetch. A shard
// runner polls this to decide whether the shard still has work before
// spending a Step on it.
func (c *Crawler) Pending() int { return c.db.Pending() }

// MarkFrontierEmptied records frontier exhaustion (stat flag plus the
// once-only pinned Warn). A shard runner skips Step on empty shards — a
// shard idle this round may receive mail the next — so Step never gets to
// observe exhaustion itself; the runner calls this at true end of crawl.
func (c *Crawler) MarkFrontierEmptied() { c.markFrontierEmptied() }

// inject adds a URL to the frontier if robots and trap guards allow it.
func (c *Crawler) inject(url string, depth int) {
	host, path, err := synthweb.SplitURL(url)
	if err != nil {
		return
	}
	if c.router != nil && c.router(url, host, depth) {
		return
	}
	if c.perHost[host] >= c.cfg.MaxPagesPerHost {
		c.m.frontierTrap.Inc()
		if c.lg.frontier.Enabled() {
			c.lg.frontier.Sample(host, 4).Debug("frontier.trap", c.nowMs(),
				trace.String("host", host))
		}
		return
	}
	rb, ok := c.web.Robots(host)
	if !ok {
		return // unknown host; fetching would 404 anyway
	}
	if !rb.Allowed(path) {
		c.stats.RobotsBlocked++
		c.m.robotsBlocked.Inc()
		return
	}
	if c.db.Inject(url, host) {
		c.tunnelDepth[url] = depth
		// Stamp the URL with its lineage trace at frontier insertion.
		tc := c.rec.Start("crawler.url", url, c.nowMs(), trace.String("host", host))
		if tc.Active() {
			tc.Event("frontier.inject", c.nowMs(), trace.Int("depth", int64(depth)))
			c.db.SetTrace(url, uint64(tc.Trace))
		}
		if c.lg.frontier.Enabled() {
			c.lg.frontier.For(tc.Trace).Sample(url, 8).Debug("frontier.inject", c.nowMs(),
				trace.String("url", url), trace.Int("depth", int64(depth)))
		}
	} else if d, ok := c.tunnelDepth[url]; ok && depth < d {
		// A better (shallower) path to a known URL keeps the smaller depth.
		c.tunnelDepth[url] = depth
	}
}

// Run executes the crawl from the given seed list.
func (c *Crawler) Run(seedURLs []string) *Result {
	c.Seed(seedURLs)
	for c.Step() {
	}
	return c.Finish()
}

// Seed injects the seed list into the frontier (the Nutch injector).
func (c *Crawler) Seed(seedURLs []string) {
	for _, u := range seedURLs {
		c.inject(u, 0)
	}
}

// nowMs is the crawl's current virtual time: the earliest moment any
// worker could start a fetch.
func (c *Crawler) nowMs() int64 {
	now := c.workerFree[0]
	for _, w := range c.workerFree[1:] {
		if w < now {
			now = w
		}
	}
	return now
}

// Step runs one generate/fetch/update cycle and reports whether the crawl
// should continue. When every frontier URL is backing off, the virtual
// clock idle-advances to the earliest eligibility instead of giving up —
// retries are bounded, so this always terminates. Checkpoint between Step
// calls to snapshot the crawl at a cycle boundary.
func (c *Crawler) Step() bool {
	if c.cfg.MaxPages > 0 && c.stats.Fetched >= c.cfg.MaxPages {
		return false
	}
	c.m.frontierPending.Set(int64(c.db.Pending()))
	c.m.frontierKnown.Set(int64(c.db.Known()))
	fh := c.pf.frontier.Enter()
	list := c.db.GenerateAt(c.cfg.FetchListSize, c.cfg.MaxPerHostPerCycle, c.nowMs())
	if len(list) == 0 {
		next, ok := c.db.NextEligible()
		if !ok {
			fh.Exit()
			c.markFrontierEmptied()
			return false
		}
		// Everything pending is waiting out a backoff or breaker window:
		// fast-forward the idle workers to the earliest eligibility.
		c.m.idleAdvances.Inc()
		for i := range c.workerFree {
			if c.workerFree[i] < next {
				c.workerFree[i] = next
			}
		}
		list = c.db.GenerateAt(c.cfg.FetchListSize, c.cfg.MaxPerHostPerCycle, c.nowMs())
		if len(list) == 0 {
			fh.Exit()
			c.markFrontierEmptied()
			return false
		}
	}
	fh.Exit()
	ch := c.pf.cycle.Enter()
	c.stats.Cycles++
	c.m.cycles.Inc()
	before := c.stats.Fetched
	c.fetchCycle(list)
	c.m.cycleFetched.Observe(float64(c.stats.Fetched - before))
	c.lg.cycle.Info("cycle.done", c.nowMs(),
		trace.Int("cycle", int64(c.stats.Cycles)),
		trace.Int("fetched", int64(c.stats.Fetched-before)),
		trace.Int("pending", int64(c.db.Pending())))
	if c.series != nil {
		c.sampleSeries()
	}
	ch.Exit()
	s := c.stats
	c.live.Store(&s)
	return true
}

// markFrontierEmptied records frontier exhaustion exactly once. The flag
// and the pinned Warn both ride the checkpoint, so a resumed run that
// immediately re-discovers the empty frontier must not re-emit the record
// — the export would gain a duplicate relative to an uninterrupted run.
func (c *Crawler) markFrontierEmptied() {
	if c.stats.FrontierEmptied {
		return
	}
	c.stats.FrontierEmptied = true
	c.lg.frontier.Warn("frontier.exhausted", c.nowMs(),
		trace.Int("known", int64(c.db.Known())))
}

// Finish freezes the crawl into a Result.
func (c *Crawler) Finish() *Result {
	c.m.frontierPending.Set(int64(c.db.Pending()))
	c.m.frontierKnown.Set(int64(c.db.Known()))
	c.m.virtualMs.Set(c.stats.VirtualMs)
	c.lg.crawl.Info("crawl.done", c.nowMs(),
		trace.Int("fetched", int64(c.stats.Fetched)),
		trace.Int("relevant", int64(c.stats.Relevant)),
		trace.Int("cycles", int64(c.stats.Cycles)))
	res := &Result{Stats: c.stats, LinkDB: c.ldb, CrawlDB: c.db}
	res.Relevant = c.relevant
	res.IrrelevantPages = c.irrelevant
	res.Metrics = c.m.reg.Snapshot()
	if c.logs != nil {
		res.Logs = c.logs.Snapshot()
	}
	if c.series != nil {
		res.Series = c.series.Snapshot()
	}
	if c.prof != nil {
		res.Profile = c.prof.Snapshot()
	}
	s := c.stats
	c.live.Store(&s)
	return res
}

func (c *Crawler) fetchCycle(list []crawldb.FetchItem) {
	for n, item := range list {
		if c.cfg.MaxPages > 0 && c.stats.Fetched >= c.cfg.MaxPages {
			return
		}
		c.fetchOne(item)
		if n == 0 && c.stepFault != nil {
			c.stepFault()
		}
	}
}

// advanceClock schedules one fetch on the discrete-event clock;
// stats.VirtualMs tracks the latest completion time. Politeness stalls —
// time the chosen worker sits idle waiting for the target host's crawl
// delay to elapse — and the resulting per-page cost are observed on the
// virtual clock, so the histograms are deterministic for a given seed.
// latencyMs is extra server-side latency (slow hosts) on top of the base
// fetch cost. The return values break the page's worker-time cost down
// for the profiler's virtual lane: fetchMs is stall + fetch + latency,
// processMs the downstream filter+classify budget.
func (c *Crawler) advanceClock(host string, delayMs, latencyMs int) (fetchMs, processMs int64) {
	// Earliest available worker.
	w := 0
	for i := 1; i < len(c.workerFree); i++ {
		if c.workerFree[i] < c.workerFree[w] {
			w = i
		}
	}
	start := c.workerFree[w]
	if hf := c.hostFree[host]; hf > start {
		c.m.stalls.Inc()
		c.m.stallMs.Observe(float64(hf - start))
		start = hf
	}
	end := start + int64(c.cfg.FetchCostMs) + int64(latencyMs) + int64(c.cfg.ProcessCostMs)
	// Per-page processing cost: worker-available to page done, stalls
	// included (the §4.1 "3-4 documents per second" accounting).
	c.m.pageCost.Observe(float64(end - c.workerFree[w]))
	fetchMs = start + int64(c.cfg.FetchCostMs) + int64(latencyMs) - c.workerFree[w]
	processMs = int64(c.cfg.ProcessCostMs)
	c.workerFree[w] = end
	c.hostFree[host] = start + int64(delayMs)
	if end > c.stats.VirtualMs {
		c.stats.VirtualMs = end
	}
	return fetchMs, processMs
}

// traceOf re-enters a URL's lineage trace from the ID stamped in the
// CrawlDB. Returns a no-op context when tracing is off or the URL has none.
func (c *Crawler) traceOf(url string) trace.Context {
	if c.rec == nil {
		return trace.Context{}
	}
	id, ok := c.db.TraceOf(url)
	if !ok {
		return trace.Context{}
	}
	return c.rec.Context(trace.TraceID(id))
}

// finishTrace closes a URL's trace with its terminal status.
func (c *Crawler) finishTrace(tc trace.Context, status string, atMs int64) {
	if !tc.Active() {
		return
	}
	tc.Event("crawl.done", atMs, trace.String("status", status))
	tc.Finish(atMs)
}

func (c *Crawler) fetchOne(item crawldb.FetchItem) {
	rb, _ := c.web.Robots(item.Host)
	tc := c.traceOf(item.URL)
	if c.breakerRejects(item, tc) {
		return
	}
	attempt := c.db.Attempts(item.URL)
	at := tc.StartSpan("crawler.fetch.attempt", c.nowMs(), trace.Int("attempt", int64(attempt)))
	page, info, err := c.web.FetchAttempt(item.URL, attempt)
	fetchMs, processMs := c.advanceClock(item.Host, rb.CrawlDelayMs, info.LatencyMs)
	c.pf.fetch.Add(1, fetchMs)
	if err != nil {
		// A failed fetch still consumes the page's processing budget on
		// the clock; no filter/classify stage ran, so it stays on fetch.
		c.pf.fetch.Add(0, processMs)
		at.End(c.nowMs())
		c.onFetchError(item, attempt, info, err, tc)
		return
	}
	at.Event("fetch.ok", c.nowMs(), trace.Int("bytes", int64(len(page.Body))))
	at.End(c.nowMs())
	if c.lg.fetch.Enabled() {
		c.lg.fetch.For(tc.Trace).Sample(item.URL, 8).Debug("fetch.ok", c.nowMs(),
			trace.String("url", item.URL), trace.Int("bytes", int64(len(page.Body))))
	}
	c.breakerAlive(item.Host, tc)
	c.stats.Fetched++
	c.m.fetchOK.Inc()
	c.m.fetchBytes.Add(int64(len(page.Body)))
	c.perHost[item.Host]++

	// MIME filter (content-based detection, the Tika lesson of §5).
	if !mimetype.Detect(item.URL, page.Body).IsTextual() {
		c.pf.filter.Add(1, processMs)
		c.stats.FilteredMIME++
		c.m.filterMIME.Inc()
		c.db.SetStatus(item.URL, crawldb.Filtered)
		tc.Event("filter.mime", c.nowMs())
		if c.lg.filter.Enabled() {
			c.lg.filter.For(tc.Trace).Sample(item.URL, 4).Debug("filter.mime", c.nowMs(),
				trace.String("url", item.URL))
		}
		c.finishTrace(tc, "filtered", c.nowMs())
		return
	}

	// Net-text extraction (Boilerpipe).
	ext := c.boiler.Extract(string(page.Body))
	netText := ext.NetText

	// Length filters.
	if len(netText) > c.cfg.MaxNetTextLen {
		c.pf.filter.Add(1, processMs)
		c.stats.FilteredLength++
		c.m.filterLength.Inc()
		c.db.SetStatus(item.URL, crawldb.Filtered)
		tc.Event("filter.length", c.nowMs(), trace.Int("net_text_len", int64(len(netText))))
		if c.lg.filter.Enabled() {
			c.lg.filter.For(tc.Trace).Sample(item.URL, 4).Debug("filter.length", c.nowMs(),
				trace.String("url", item.URL), trace.Int("net_text_len", int64(len(netText))))
		}
		c.finishTrace(tc, "filtered", c.nowMs())
		return
	}

	// Language filter.
	if !c.lang.IsEnglish(netText) {
		c.pf.filter.Add(1, processMs)
		c.stats.FilteredLang++
		c.m.filterLang.Inc()
		c.db.SetStatus(item.URL, crawldb.Filtered)
		tc.Event("filter.lang", c.nowMs())
		if c.lg.filter.Enabled() {
			c.lg.filter.For(tc.Trace).Sample(item.URL, 4).Debug("filter.lang", c.nowMs(),
				trace.String("url", item.URL))
		}
		c.finishTrace(tc, "filtered", c.nowMs())
		return
	}

	if len(netText) < c.cfg.MinNetTextLen {
		c.pf.filter.Add(1, processMs)
		c.stats.FilteredLength++
		c.m.filterLength.Inc()
		c.db.SetStatus(item.URL, crawldb.Filtered)
		tc.Event("filter.length", c.nowMs(), trace.Int("net_text_len", int64(len(netText))))
		if c.lg.filter.Enabled() {
			c.lg.filter.For(tc.Trace).Sample(item.URL, 4).Debug("filter.length", c.nowMs(),
				trace.String("url", item.URL), trace.Int("net_text_len", int64(len(netText))))
		}
		c.finishTrace(tc, "filtered", c.nowMs())
		return
	}

	// Pages past the filters spend their processing budget classifying.
	c.pf.classify.Add(1, processMs)

	// Record the link structure of every parsed page.
	c.ldb.AddLinks(page.URL, page.Links)
	c.m.links.Add(int64(len(page.Links)))

	// Relevance classification on the extracted net text.
	prob := c.clf.ProbRelevant(netText)
	relevant := prob >= c.clf.Threshold

	// §5 consolidated-process extension: the IE pipeline's dictionaries
	// rescue pages the bag-of-words classifier rejects.
	if !relevant && c.cfg.EntityBoost && c.matchers != nil {
		if c.entityDensity(netText) >= c.cfg.EntityBoostDensity {
			relevant = true
			c.stats.EntityBoosted++
			c.m.entityBoosted.Inc()
			tc.Event("classify.entity.boost", c.nowMs())
			if c.lg.classify.Enabled() {
				c.lg.classify.For(tc.Trace).Sample(item.URL, 4).Debug("classify.entity.boost",
					c.nowMs(), trace.String("url", item.URL))
			}
		}
	}

	// §2.1 incremental-update extension: self-train on confident decisions.
	if c.cfg.SelfTraining {
		margin := c.cfg.SelfTrainingMargin
		if prob >= 0.5+margin {
			c.clf.Learn(netText, classify.Relevant)
			c.stats.SelfTrainUpdates++
			c.m.selfTrain.Inc()
		} else if prob <= 0.5-margin {
			c.clf.Learn(netText, classify.Irrelevant)
			c.stats.SelfTrainUpdates++
			c.m.selfTrain.Inc()
		}
	}
	c.db.SetStatus(item.URL, crawldb.Fetched)

	stored := CrawledPage{
		URL:          page.URL,
		NetText:      netText,
		Gold:         page.Doc,
		GoldRelevant: page.Relevant,
		Bytes:        len(page.Body),
	}
	depth := c.tunnelDepth[item.URL]
	if relevant {
		c.stats.Relevant++
		c.m.classifyRelevant.Inc()
		c.stats.RelevantBytes += len(page.Body)
		c.relevant = append(c.relevant, stored)
		tc.Event("classify.verdict", c.nowMs(),
			trace.String("verdict", "relevant"), trace.Float("prob", prob))
		if c.lg.classify.Enabled() {
			c.lg.classify.For(tc.Trace).Sample(item.URL, 4).Debug("classify.verdict", c.nowMs(),
				trace.String("url", item.URL), trace.String("verdict", "relevant"))
		}
		c.finishTrace(tc, "relevant", c.nowMs())
		for _, l := range page.Links {
			c.inject(l, 0)
		}
		return
	}
	c.stats.Irrelevant++
	c.m.classifyIrrelevant.Inc()
	c.stats.IrrelevantBytes += len(page.Body)
	c.irrelevant = append(c.irrelevant, stored)
	tc.Event("classify.verdict", c.nowMs(),
		trace.String("verdict", "irrelevant"), trace.Float("prob", prob))
	if c.lg.classify.Enabled() {
		c.lg.classify.For(tc.Trace).Sample(item.URL, 4).Debug("classify.verdict", c.nowMs(),
			trace.String("url", item.URL), trace.String("verdict", "irrelevant"))
	}
	c.finishTrace(tc, "irrelevant", c.nowMs())
	// Tunnelling: follow links from irrelevant pages up to depth n-1.
	if depth+1 < c.cfg.Tunnelling {
		for _, l := range page.Links {
			c.inject(l, depth+1)
		}
	}
}
