package crawler

import (
	"testing"

	"webtextie/internal/obs/evlog"
)

// Structured logging touches the same hot paths tracing does (frontier
// insertion, fetch outcomes, filter verdicts) plus the error paths. The
// pair below prices it under chaos; BENCH_PR5.json commits both, and the
// logging-off numbers double as the no-regression gate (bench_pr5_test.go)
// — with no sink attached every call site is one nil comparison.

func benchChaosCrawlLog(b *testing.B, logged bool) {
	p := chaosPipeline(b, 80, nil)
	seedList := defaultSeeds(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxPages = 500
		c := New(cfg, p.web, p.clf)
		if logged {
			c.WithLog(evlog.NewSink(evlog.DefaultConfig(1)))
		}
		_ = c.Run(seedList)
	}
}

func BenchmarkCrawlChaosLogOff(b *testing.B) { benchChaosCrawlLog(b, false) }

func BenchmarkCrawlChaosLogOn(b *testing.B) { benchChaosCrawlLog(b, true) }
