package crawler

import (
	"fmt"
	"sort"
	"testing"

	"webtextie/internal/classify"
	"webtextie/internal/rng"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// chaosPipeline is newPipeline with a fault-injected web.
func chaosPipeline(t testing.TB, hosts int, mutate func(*synthweb.Config)) *pipeline {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	cfg := synthweb.DefaultConfig()
	cfg.NumHosts = hosts
	if mutate != nil {
		mutate(&cfg)
	}
	web := synthweb.New(cfg, gen)

	clf := classify.New()
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		clf.Learn(gen.Doc(r, textgen.Medline, fmt.Sprint("m", i)).Text, classify.Relevant)
		clf.Learn(gen.Doc(r, textgen.Irrelevant, fmt.Sprint("w", i)).Text, classify.Irrelevant)
	}
	return &pipeline{lex: lex, gen: gen, web: web, clf: clf}
}

func urlSet(pages []CrawledPage) map[string]bool {
	s := make(map[string]bool, len(pages))
	for _, p := range pages {
		s[p.URL] = true
	}
	return s
}

func sortedURLs(pages []CrawledPage) []string {
	out := make([]string, 0, len(pages))
	for _, p := range pages {
		out = append(out, p.URL)
	}
	sort.Strings(out)
	return out
}

// chaosWeb is the full fault surface: flaky URLs, dead hosts, latency
// spikes, throttling, and truncated transfers.
func chaosWeb(c *synthweb.Config) {
	c.FailureRate = 0.3
	c.DeadHostShare = 0.1
	c.SlowHostShare = 0.2
	c.RateLimitShare = 0.2
	c.TruncateRate = 0.05
}

// TestChaosCrawlDeterministic: two same-seed crawls over a heavily faulty
// web — retries, backoff, breakers and all — produce identical stats,
// corpora, and metric snapshots.
func TestChaosCrawlDeterministic(t *testing.T) {
	run := func() *Result {
		p := chaosPipeline(t, 50, chaosWeb)
		cfg := DefaultConfig()
		cfg.MaxPages = 400
		return New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if len(a.Relevant) != len(b.Relevant) {
		t.Fatal("relevant corpus size differs")
	}
	for i := range a.Relevant {
		if a.Relevant[i].URL != b.Relevant[i].URL || a.Relevant[i].NetText != b.Relevant[i].NetText {
			t.Fatalf("corpus diverges at %d", i)
		}
	}
	if at, bt := a.Metrics.Text(), b.Metrics.Text(); at != bt {
		t.Fatalf("metric snapshots differ:\n%s\nvs\n%s", at, bt)
	}
	// The fault machinery actually fired and is visible in obs.
	if a.Stats.Retries == 0 || a.Metrics.Counter("crawler.retry.scheduled") == 0 {
		t.Error("no retries scheduled under chaos")
	}
	if a.Metrics.Counter("crawler.fetch.hostdown") == 0 {
		t.Error("no host-down failures observed under chaos")
	}
	if a.Stats.RateLimited == 0 || a.Metrics.Counter("crawler.fetch.ratelimited") == 0 {
		t.Error("no rate-limit rejections observed under chaos")
	}
}

// TestChaosRetriesRecoverEverything: with no dead hosts and no truncation,
// every fault is recoverable within the retry budget, so the crawl run to
// frontier exhaustion stores exactly the corpus of the fault-free crawl —
// page for page.
func TestChaosRetriesRecoverEverything(t *testing.T) {
	crawl := func(mutate func(*synthweb.Config)) *Result {
		p := chaosPipeline(t, 40, mutate)
		cfg := DefaultConfig()
		cfg.MaxPagesPerHost = 1 << 20 // trap guard off: injection timing must not matter
		return New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	}
	clean := crawl(nil)
	faulty := crawl(func(c *synthweb.Config) {
		c.FailureRate = 0.4
		c.SlowHostShare = 0.25
		c.RateLimitShare = 0.3
	})
	if got, want := sortedURLs(faulty.Relevant), sortedURLs(clean.Relevant); len(got) != len(want) {
		t.Fatalf("relevant corpus: %d pages faulty vs %d clean", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("corpus diverges: %s vs %s", got[i], want[i])
			}
		}
	}
	if faulty.Stats.Retries == 0 {
		t.Fatal("faulty crawl never retried")
	}
	if faulty.Stats.RetriesExhausted != 0 {
		t.Fatalf("%d URLs abandoned despite every fault being recoverable", faulty.Stats.RetriesExhausted)
	}
	// Slow hosts cost virtual time: the faulty crawl must be slower.
	if faulty.Stats.VirtualMs <= clean.Stats.VirtualMs {
		t.Error("injected latency did not slow the virtual clock")
	}
}

// TestChaosDeadHostsExcluded: with dead hosts in the mix, the converged
// corpus is the fault-free corpus minus pages on dead hosts (and pages
// only discoverable through them) — nothing on a live host that the crawl
// discovered is lost, and breakers open on the dead hosts.
func TestChaosDeadHostsExcluded(t *testing.T) {
	mutate := func(c *synthweb.Config) {
		c.FailureRate = 0.35
		c.DeadHostShare = 0.12
		c.RateLimitShare = 0.25
	}
	crawl := func(m func(*synthweb.Config)) (*Result, *pipeline) {
		p := chaosPipeline(t, 40, m)
		cfg := DefaultConfig()
		cfg.MaxPagesPerHost = 1 << 20
		return New(cfg, p.web, p.clf).Run(defaultSeeds(t, p)), p
	}
	clean, _ := crawl(nil)
	faulty, fp := crawl(mutate)

	cleanSet := urlSet(clean.Relevant)
	deadHosts := map[string]bool{}
	for _, h := range fp.web.Hosts {
		if fp.web.HostFaults(h.Name).Dead {
			deadHosts[h.Name] = true
		}
	}
	if len(deadHosts) == 0 {
		t.Fatal("no dead hosts drawn at share 0.12")
	}
	onDeadHost := func(u string) bool {
		h, _, err := synthweb.SplitURL(u)
		return err == nil && deadHosts[h]
	}
	// (1) Nothing from a dead host made it into the corpus.
	for u := range urlSet(faulty.Relevant) {
		if onDeadHost(u) {
			t.Fatalf("dead-host page %s in corpus", u)
		}
		// (2) Everything stored is part of the fault-free corpus.
		if !cleanSet[u] {
			t.Fatalf("faulty crawl stored %s, absent from fault-free corpus", u)
		}
	}
	// (3) Every fault-free relevant page on a live host that the faulty
	// crawl discovered was recovered by the retry machinery.
	faultySet := urlSet(faulty.Relevant)
	lost := 0
	for u := range cleanSet {
		if onDeadHost(u) {
			continue
		}
		if _, known := faulty.CrawlDB.StatusOf(u); known && !faultySet[u] {
			t.Errorf("live-host page %s discovered but lost", u)
			lost++
			if lost > 5 {
				t.FailNow()
			}
		}
	}
	// (4) Coverage stays substantial: dead hosts cost their own pages, not
	// the crawl.
	if len(faultySet) < len(cleanSet)/2 {
		t.Fatalf("corpus collapsed: %d of %d fault-free pages", len(faultySet), len(cleanSet))
	}
	// (5) Breakers tripped on the dead hosts and are visible in obs.
	if faulty.Stats.BreakerOpens == 0 || faulty.Metrics.Counter("crawler.breaker.opened") == 0 {
		t.Error("no breaker opened despite dead hosts")
	}
	if faulty.Metrics.Counter("crawler.breaker.deferred") == 0 {
		t.Error("open breakers never deferred a fetch")
	}
}
