// Resilience: the crawler's response to the synthetic web's fault model
// (synthweb/faults.go). Transient failures are retried with exponential
// backoff and deterministic jitter on the virtual clock; rate limits honor
// the server's retry-after; hosts that fail repeatedly trip a per-host
// circuit breaker (closed -> open -> half-open probe -> closed) so a dead
// host costs the crawl a bounded number of probes instead of a full retry
// budget per URL. Every delay is derived from (config, URL, attempt), so
// chaos crawls stay bit-reproducible.

package crawler

import (
	"errors"
	"fmt"
	"hash/fnv"

	"webtextie/internal/crawldb"
	"webtextie/internal/obs/trace"
	"webtextie/internal/synthweb"
)

// breaker state machine values.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

// breaker is one host's circuit breaker.
type breaker struct {
	// fails counts consecutive breaker-relevant failures while closed.
	fails int
	// state is brClosed, brOpen, or brHalfOpen.
	state int
	// openUntil is the virtual time an open breaker admits a probe.
	openUntil int64
}

// BreakerState is the JSON-encodable form of one host's breaker, exported
// for checkpoints.
type BreakerState struct {
	Fails       int    `json:"fails"`
	State       string `json:"state"`
	OpenUntilMs int64  `json:"open_until_ms,omitempty"`
}

var breakerStateNames = map[int]string{brClosed: "closed", brOpen: "open", brHalfOpen: "halfopen"}

func (b *breaker) export() BreakerState {
	return BreakerState{Fails: b.fails, State: breakerStateNames[b.state], OpenUntilMs: b.openUntil}
}

func importBreaker(s BreakerState) (*breaker, error) {
	b := &breaker{fails: s.Fails, openUntil: s.OpenUntilMs}
	switch s.State {
	case "closed", "":
		b.state = brClosed
	case "open":
		b.state = brOpen
	case "halfopen":
		b.state = brHalfOpen
	default:
		return nil, fmt.Errorf("crawler: unknown breaker state %q", s.State)
	}
	return b, nil
}

// setOpenHostsGauge publishes the number of currently-open breakers.
func (c *Crawler) setOpenHostsGauge() {
	open := 0
	for _, b := range c.breakers {
		if b.state == brOpen {
			open++
		}
	}
	c.m.breakerOpenHosts.Set(int64(open))
}

// breakerRejects consults the host's breaker before a fetch. An open
// breaker defers the URL to its reopen time (no retry attempt consumed);
// once the virtual clock reaches openUntil the breaker half-opens and the
// current URL goes through as the probe.
func (c *Crawler) breakerRejects(item crawldb.FetchItem, tc trace.Context) bool {
	if c.cfg.BreakerFailures <= 0 {
		return false
	}
	br := c.breakers[item.Host]
	if br == nil || br.state != brOpen {
		return false
	}
	if c.nowMs() >= br.openUntil {
		br.state = brHalfOpen
		c.m.breakerHalfOpen.Inc()
		c.setOpenHostsGauge()
		tc.Event("breaker.halfopen", c.nowMs(), trace.String("host", item.Host))
		c.lg.breaker.For(tc.Trace).Info("breaker.halfopen", c.nowMs(),
			trace.String("host", item.Host))
		return false
	}
	c.db.Defer(item.URL, item.Host, br.openUntil)
	c.stats.BreakerDeferred++
	c.m.breakerDeferred.Inc()
	tc.Event("breaker.defer", c.nowMs(),
		trace.String("host", item.Host), trace.Int("until_ms", br.openUntil))
	if c.lg.breaker.Enabled() {
		c.lg.breaker.For(tc.Trace).Sample(item.URL, 4).Debug("breaker.defer", c.nowMs(),
			trace.String("host", item.Host), trace.Int("until_ms", br.openUntil))
	}
	return true
}

// breakerAlive records proof the host is serving (success, 404, 429): the
// consecutive-failure count resets and a half-open probe closes the
// breaker.
func (c *Crawler) breakerAlive(host string, tc trace.Context) {
	if c.cfg.BreakerFailures <= 0 {
		return
	}
	br := c.breakers[host]
	if br == nil {
		return
	}
	br.fails = 0
	if br.state != brClosed {
		br.state = brClosed
		c.m.breakerClosed.Inc()
		c.setOpenHostsGauge()
		tc.Event("breaker.closed", c.nowMs(), trace.String("host", host))
		c.lg.breaker.For(tc.Trace).Info("breaker.closed", c.nowMs(),
			trace.String("host", host))
	}
}

// breakerCharge records a breaker-relevant failure. A failed half-open
// probe reopens immediately; a closed breaker opens once consecutive
// failures reach the threshold.
func (c *Crawler) breakerCharge(host string, now int64, tc trace.Context) {
	if c.cfg.BreakerFailures <= 0 {
		return
	}
	br := c.breakers[host]
	if br == nil {
		br = &breaker{}
		c.breakers[host] = br
	}
	open := false
	switch br.state {
	case brHalfOpen:
		open = true
	case brClosed:
		br.fails++
		open = br.fails >= c.cfg.BreakerFailures
	}
	if open {
		br.state = brOpen
		br.openUntil = now + int64(c.cfg.BreakerOpenMs)
		c.stats.BreakerOpens++
		c.m.breakerOpened.Inc()
		c.setOpenHostsGauge()
		// Flight recorder: the URL whose failure tripped the breaker keeps
		// its full lineage pinned past ring-buffer eviction.
		tc.Error("breaker_open", now,
			trace.String("host", host), trace.Int("until_ms", br.openUntil))
		c.lg.breaker.For(tc.Trace).Warn("breaker.open", now,
			trace.String("host", host), trace.Int("until_ms", br.openUntil))
	}
}

// backoffDelay is the retry delay after a failed attempt: exponential in
// the attempt number, capped at BackoffMaxMs, plus a deterministic jitter
// in [0, BackoffBaseMs) hashed from (URL, attempt) so co-failing URLs
// don't retry in lockstep.
func (c *Crawler) backoffDelay(url string, attempt int) int64 {
	base := int64(c.cfg.BackoffBaseMs)
	if base <= 0 {
		return 0
	}
	shift := uint(attempt)
	if shift > 20 {
		shift = 20
	}
	d := base << shift
	if max := int64(c.cfg.BackoffMaxMs); max > 0 && d > max {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", url, attempt)
	return d + int64(h.Sum64()%uint64(base))
}

// scheduleRetry requeues a failed URL, eligible again at eligibleMs.
func (c *Crawler) scheduleRetry(item crawldb.FetchItem, eligibleMs int64) {
	c.db.Requeue(item.URL, item.Host, eligibleMs)
	c.stats.Retries++
	c.m.retrySched.Inc()
}

// abandon marks a URL terminally failed after its retry budget ran out.
// The trace is pinned (retry exhaustion is an error-class event) and
// finished.
func (c *Crawler) abandon(url string, tc trace.Context, now int64) {
	c.db.SetStatus(url, crawldb.Failed)
	if c.cfg.MaxRetries > 0 {
		c.stats.RetriesExhausted++
		c.m.retryExhausted.Inc()
		tc.Error("retry_exhausted", now, trace.Int("attempts", int64(c.cfg.MaxRetries+1)))
		c.lg.fetch.For(tc.Trace).Warn("retry.exhausted", now,
			trace.String("url", url), trace.Int("attempts", int64(c.cfg.MaxRetries+1)))
	}
	c.finishTrace(tc, "failed", now)
}

// onFetchError classifies a failed fetch attempt and decides between
// retry, breaker accounting, and terminal failure:
//
//   - rate limits (429) honor the server's retry-after and never charge
//     the breaker (the host is alive, just throttling);
//   - transient errors, truncated bodies, and dead hosts charge the
//     breaker and back off exponentially while the budget lasts;
//   - 404s and malformed URLs fail permanently (retrying is futile) and
//     count as proof of life for the breaker.
func (c *Crawler) onFetchError(item crawldb.FetchItem, attempt int, info synthweb.FetchInfo, err error, tc trace.Context) {
	c.stats.FetchErrors++
	c.m.fetchErr.Inc()
	now := c.nowMs()
	tc.Event("fetch.error", now,
		trace.Int("attempt", int64(attempt)), trace.String("cause", err.Error()))
	if c.lg.fetch.Enabled() {
		c.lg.fetch.For(tc.Trace).Warn("fetch.error", now,
			trace.String("url", item.URL), trace.Int("attempt", int64(attempt)),
			trace.String("cause", err.Error()))
	}
	switch {
	case errors.Is(err, synthweb.ErrRateLimited):
		c.stats.RateLimited++
		c.m.rateLimited.Inc()
		c.breakerAlive(item.Host, tc)
		if attempt < c.cfg.MaxRetries {
			tc.Event("retry.ratelimit", now, trace.Int("retry_after_ms", int64(info.RetryAfterMs)))
			c.scheduleRetry(item, now+int64(info.RetryAfterMs))
		} else {
			c.abandon(item.URL, tc, now)
		}
	case errors.Is(err, synthweb.ErrHostDown),
		errors.Is(err, synthweb.ErrFetchFailed),
		errors.Is(err, synthweb.ErrTruncated):
		if errors.Is(err, synthweb.ErrHostDown) {
			c.m.hostDown.Inc()
		}
		if errors.Is(err, synthweb.ErrTruncated) {
			c.m.truncated.Inc()
		}
		c.breakerCharge(item.Host, now, tc)
		if attempt < c.cfg.MaxRetries {
			d := c.backoffDelay(item.URL, attempt)
			c.m.retryBackoffMs.Observe(float64(d))
			tc.Event("retry.backoff", now,
				trace.Int("attempt", int64(attempt)), trace.Int("delay_ms", d))
			if c.lg.fetch.Enabled() {
				c.lg.fetch.For(tc.Trace).Sample(item.URL, 4).Debug("retry.backoff", now,
					trace.String("url", item.URL), trace.Int("delay_ms", d))
			}
			c.scheduleRetry(item, now+d)
		} else {
			c.abandon(item.URL, tc, now)
		}
	default:
		c.breakerAlive(item.Host, tc)
		c.db.SetStatus(item.URL, crawldb.Failed)
		c.finishTrace(tc, "failed", now)
	}
}
