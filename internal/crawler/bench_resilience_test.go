package crawler

import "testing"

// The resilience machinery (retry bookkeeping, breaker checks, attempt
// lookups) sits on the per-fetch hot path. These benchmarks pin its cost
// on a fault-free web: "legacy" runs with retries and breakers disabled
// (the pre-resilience configuration), "resilient" with the default knobs.
// BENCH_PR3.json commits the pair; the gap must stay within a few percent.

func benchCrawl(b *testing.B, mutate func(*Config)) {
	p := newPipeline(b, 80)
	seedList := defaultSeeds(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxPages = 500
		if mutate != nil {
			mutate(&cfg)
		}
		_ = New(cfg, p.web, p.clf).Run(seedList)
	}
}

func BenchmarkCrawlFaultFreeLegacy(b *testing.B) {
	benchCrawl(b, func(cfg *Config) {
		cfg.MaxRetries = 0
		cfg.BreakerFailures = 0
	})
}

func BenchmarkCrawlFaultFreeResilient(b *testing.B) {
	benchCrawl(b, nil)
}

// BenchmarkCrawlChaosResilient measures the crawl under heavy injected
// faults — reference point, not a regression gate (it does strictly more
// work: retries, backoff scheduling, breaker transitions).
func BenchmarkCrawlChaosResilient(b *testing.B) {
	p := chaosPipeline(b, 80, nil)
	seedList := defaultSeeds(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxPages = 500
		_ = New(cfg, p.web, p.clf).Run(seedList)
	}
}
