// Checkpoint/resume: a crawl can be frozen between Step calls, serialized
// to JSON, and resumed in a fresh process — the resumed crawl produces a
// byte-identical final corpus and metric snapshot. The checkpoint stores
// only crawl *state* (frontier, statuses, retry/breaker/clock state, the
// URLs of pages kept so far, the metric snapshot); page contents are
// rebuilt on resume by re-reading the deterministic web, which keeps
// checkpoints small and avoids serializing generator internals.

package crawler

import (
	"encoding/json"
	"fmt"

	"webtextie/internal/classify"
	"webtextie/internal/crawldb"
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
	"webtextie/internal/synthweb"
)

// Checkpoint is a crawl frozen at a cycle boundary. encoding/json sorts
// map keys, so the serialized form is deterministic.
type Checkpoint struct {
	Stats       Stats                   `json:"stats"`
	DB          crawldb.Snapshot        `json:"crawldb"`
	Links       crawldb.LinkSnapshot    `json:"linkdb"`
	TunnelDepth map[string]int          `json:"tunnel_depth,omitempty"`
	PerHost     map[string]int          `json:"per_host,omitempty"`
	HostFree    map[string]int64        `json:"host_free,omitempty"`
	WorkerFree  []int64                 `json:"worker_free"`
	Breakers    map[string]BreakerState `json:"breakers,omitempty"`
	// RelevantURLs/IrrelevantURLs identify the pages stored so far, in
	// crawl order; Resume re-reads their contents from the web.
	RelevantURLs   []string `json:"relevant_urls"`
	IrrelevantURLs []string `json:"irrelevant_urls"`
	// Metrics continues the obs streams across the restart.
	Metrics obs.Snapshot `json:"metrics"`
	// Traces continues the trace recorder across the restart (nil when the
	// crawl ran without tracing). Marks are stripped: they are live-debug
	// annotations, and keeping them would make a resumed run's trace export
	// differ from an uninterrupted run's.
	Traces *trace.Snapshot `json:"traces,omitempty"`
	// Logs continues the event-log sink across the restart (nil when the
	// crawl ran without logging). Snapshotted before the checkpoint.saved
	// record is emitted, so a resumed run's log export matches an
	// uninterrupted run's byte for byte.
	Logs *evlog.Snapshot `json:"logs,omitempty"`
	// Series continues the time-series recorder across the restart (nil
	// when the crawl ran without sampling). Checkpoints land between Step
	// calls — after the cycle's sample — so a resumed run's series export
	// matches an uninterrupted run's byte for byte.
	Series *series.Snapshot `json:"series,omitempty"`
	// Profile continues the cost profiler across the restart (nil when
	// the crawl ran without profiling). The virtual lane replays exactly,
	// so a resumed run's profile exports match an uninterrupted run's
	// byte for byte; the wall lane carries over as a running total.
	Profile *prof.Snapshot `json:"profile,omitempty"`
}

// Checkpoint freezes the crawler's state. Call it between Step calls
// (never mid-cycle). The result shares no mutable state with the crawler.
func (c *Crawler) Checkpoint() *Checkpoint { return c.checkpoint(true) }

// CheckpointSilent freezes the crawler's state without announcing the
// boundary: no trace mark, no checkpoint.saved log record. Supervisors
// take one of these at every round barrier as the shard's restart point;
// a snapshot the operator never asked for must not alter the exports,
// or a recovered run's logs would diverge from a fault-free run's.
func (c *Crawler) CheckpointSilent() *Checkpoint { return c.checkpoint(false) }

func (c *Crawler) checkpoint(announce bool) *Checkpoint {
	ph := c.pf.checkpoint.Enter()
	defer ph.Exit()
	cp := &Checkpoint{
		Stats:       c.stats,
		DB:          c.db.Snapshot(),
		Links:       c.ldb.Snapshot(),
		TunnelDepth: make(map[string]int, len(c.tunnelDepth)),
		PerHost:     make(map[string]int, len(c.perHost)),
		HostFree:    make(map[string]int64, len(c.hostFree)),
		WorkerFree:  append([]int64(nil), c.workerFree...),
		Breakers:    make(map[string]BreakerState, len(c.breakers)),
		Metrics:     c.m.reg.Snapshot(),
	}
	for u, d := range c.tunnelDepth {
		cp.TunnelDepth[u] = d
	}
	for h, n := range c.perHost {
		cp.PerHost[h] = n
	}
	for h, t := range c.hostFree {
		cp.HostFree[h] = t
	}
	for h, b := range c.breakers {
		cp.Breakers[h] = b.export()
	}
	for _, p := range c.relevant {
		cp.RelevantURLs = append(cp.RelevantURLs, p.URL)
	}
	for _, p := range c.irrelevant {
		cp.IrrelevantURLs = append(cp.IrrelevantURLs, p.URL)
	}
	if c.rec != nil {
		// Record the boundary in the live recorder (visible on /traces and
		// in end-of-run exports), then freeze without marks for the replay
		// state. Silent checkpoints skip the live mark entirely.
		if announce {
			c.rec.Mark("checkpoint", c.nowMs(), trace.Int("cycle", int64(c.stats.Cycles)))
		}
		snap := c.rec.Snapshot()
		snap.Marks = nil
		cp.Traces = snap
	}
	if c.logs != nil {
		// Freeze the log stream first, then announce the boundary only to
		// the live sink — the mirror of the Mark-stripping above.
		cp.Logs = c.logs.Snapshot()
		if announce {
			c.lg.checkpoint.Info("checkpoint.saved", c.nowMs(),
				trace.Int("cycle", int64(c.stats.Cycles)))
		}
	}
	if c.series != nil {
		cp.Series = c.series.Snapshot()
	}
	if c.prof != nil {
		cp.Profile = c.prof.Snapshot()
	}
	return cp
}

// Marshal serializes the checkpoint to deterministic indented JSON.
func (cp *Checkpoint) Marshal() ([]byte, error) {
	return json.MarshalIndent(cp, "", "  ")
}

// UnmarshalCheckpoint parses a serialized checkpoint.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// rebuildCorpus re-reads stored pages from the deterministic web,
// bypassing fault injection and the fetch counter (the original crawl
// already paid for these fetches).
func (c *Crawler) rebuildCorpus(urls []string) ([]CrawledPage, error) {
	var out []CrawledPage
	for _, u := range urls {
		page, err := c.web.PageContent(u)
		if err != nil {
			return nil, fmt.Errorf("crawler: resume cannot rebuild %s: %w", u, err)
		}
		ext := c.boiler.Extract(string(page.Body))
		out = append(out, CrawledPage{
			URL:          page.URL,
			NetText:      ext.NetText,
			Gold:         page.Doc,
			GoldRelevant: page.Relevant,
			Bytes:        len(page.Body),
		})
	}
	return out, nil
}

// Resume rebuilds a crawler from a checkpoint. The caller must supply the
// same config and an identically-constructed web and classifier (same
// seeds, same training) as the original crawl; with those in hand the
// resumed crawl's remaining Steps reproduce the uninterrupted run exactly.
// A SelfTraining crawl mutates its classifier as it runs — resuming one
// requires the caller to restore the classifier to its checkpoint-time
// state (or keep SelfTraining off for checkpointed crawls).
func Resume(cfg Config, web *synthweb.Web, clf *classify.NaiveBayes, cp *Checkpoint) (*Crawler, error) {
	c := New(cfg, web, clf)
	c.stats = cp.Stats
	c.db = crawldb.FromSnapshot(cp.DB)
	c.ldb = crawldb.FromLinkSnapshot(cp.Links)
	for u, d := range cp.TunnelDepth {
		c.tunnelDepth[u] = d
	}
	for h, n := range cp.PerHost {
		c.perHost[h] = n
	}
	for h, t := range cp.HostFree {
		c.hostFree[h] = t
	}
	if len(cp.WorkerFree) != len(c.workerFree) {
		return nil, fmt.Errorf("crawler: checkpoint has %d workers, config wants %d",
			len(cp.WorkerFree), len(c.workerFree))
	}
	copy(c.workerFree, cp.WorkerFree)
	for h, s := range cp.Breakers {
		br, err := importBreaker(s)
		if err != nil {
			return nil, err
		}
		c.breakers[h] = br
	}
	var err error
	if c.relevant, err = c.rebuildCorpus(cp.RelevantURLs); err != nil {
		return nil, err
	}
	if c.irrelevant, err = c.rebuildCorpus(cp.IrrelevantURLs); err != nil {
		return nil, err
	}
	snap := cp.Metrics
	c.resumeMetrics = &snap
	c.m.reg.Load(snap)
	// Tracing resumes lazily: WithTrace loads this into the new recorder.
	c.resumeTraces = cp.Traces
	// Logging resumes lazily too: WithLog loads this into the new sink.
	c.resumeLogs = cp.Logs
	// Sampling resumes lazily too: WithSeries loads this into the new
	// recorder.
	c.resumeSeries = cp.Series
	// Profiling resumes lazily too: WithProf loads this into the new
	// profiler.
	c.resumeProf = cp.Profile
	return c, nil
}
