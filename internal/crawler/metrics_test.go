package crawler

import (
	"testing"

	"webtextie/internal/obs"
	"webtextie/internal/synthweb"
)

// TestMetricsZeroPageCrawl: an empty seed list must terminate immediately
// with an all-zero metric snapshot (no phantom cycles or fetches).
func TestMetricsZeroPageCrawl(t *testing.T) {
	p := newPipeline(t, 20)
	res := New(DefaultConfig(), p.web, p.clf).Run(nil)
	if res.Stats.Fetched != 0 || res.Stats.Cycles != 0 {
		t.Fatalf("zero-seed crawl did work: %+v", res.Stats)
	}
	if !res.Stats.FrontierEmptied {
		t.Error("zero-seed crawl should report an emptied frontier")
	}
	snap := res.Metrics
	for _, name := range []string{
		"crawler.cycles", "crawler.fetch.ok", "crawler.fetch.errors",
		"crawler.fetch.bytes", "crawler.robots.blocked",
		"crawler.links.discovered", "crawler.classify.relevant",
	} {
		if v := snap.Counter(name); v != 0 {
			t.Errorf("%s = %d, want 0", name, v)
		}
	}
	for _, name := range []string{"crawler.frontier.pending", "crawler.frontier.known", "crawler.virtual.ms"} {
		if v := snap.Gauge(name); v != 0 {
			t.Errorf("%s = %d, want 0", name, v)
		}
	}
	if h, ok := snap.Hist("crawler.page.cost.ms"); ok && h.Count != 0 {
		t.Errorf("crawler.page.cost.ms count = %d, want 0", h.Count)
	}
}

// trapSeeds returns the default seeds plus direct trap entry points for
// every trap host that robots.txt does not protect.
func trapSeeds(t *testing.T, p *pipeline) []string {
	t.Helper()
	seedURLs := defaultSeeds(t, p)
	traps := 0
	for _, h := range p.web.Hosts {
		if h.Trap && !h.DisallowTrap {
			seedURLs = append(seedURLs, synthweb.TrapURL(h.Name, 1))
			traps++
		}
	}
	if traps == 0 {
		t.Skip("no unprotected trap hosts in this web")
	}
	return seedURLs
}

// TestMetricsMatchStatsOnTrapCrawl drives a crawl seeded into spider traps
// and checks that every obs counter agrees with the corresponding Stats
// field — the registry is a second, independently-maintained account of
// the same events.
func TestMetricsMatchStatsOnTrapCrawl(t *testing.T) {
	p := newPipeline(t, 60)
	cfg := DefaultConfig()
	cfg.MaxPages = 400
	res := New(cfg, p.web, p.clf).Run(trapSeeds(t, p))
	st := res.Stats
	if st.Fetched == 0 {
		t.Fatal("nothing fetched")
	}
	snap := res.Metrics

	checks := []struct {
		name string
		want int64
	}{
		{"crawler.cycles", int64(st.Cycles)},
		{"crawler.fetch.ok", int64(st.Fetched)},
		{"crawler.fetch.errors", int64(st.FetchErrors)},
		{"crawler.robots.blocked", int64(st.RobotsBlocked)},
		{"crawler.filter.mime", int64(st.FilteredMIME)},
		{"crawler.filter.lang", int64(st.FilteredLang)},
		{"crawler.filter.length", int64(st.FilteredLength)},
		{"crawler.classify.relevant", int64(st.Relevant)},
		{"crawler.classify.irrelevant", int64(st.Irrelevant)},
		{"crawler.entity.boosted", int64(st.EntityBoosted)},
		{"crawler.selftrain.updates", int64(st.SelfTrainUpdates)},
	}
	for _, c := range checks {
		if got := snap.Counter(c.name); got != c.want {
			t.Errorf("%s = %d, Stats says %d", c.name, got, c.want)
		}
	}
	var bytes int64
	for _, pg := range res.Relevant {
		bytes += int64(pg.Bytes)
	}
	for _, pg := range res.IrrelevantPages {
		bytes += int64(pg.Bytes)
	}
	if got := snap.Counter("crawler.fetch.bytes"); got < bytes {
		t.Errorf("crawler.fetch.bytes = %d, classified pages alone have %d", got, bytes)
	}
	if got := snap.Gauge("crawler.virtual.ms"); got != st.VirtualMs {
		t.Errorf("crawler.virtual.ms = %d, Stats says %d", got, st.VirtualMs)
	}
	// Per-cycle fetch histogram: one observation per cycle, summing to the
	// total fetch count.
	if h, ok := snap.Hist("crawler.cycle.fetched"); !ok || h.Count != int64(st.Cycles) || int64(h.Sum) != int64(st.Fetched) {
		t.Errorf("crawler.cycle.fetched count=%d sum=%v, want count=%d sum=%d",
			h.Count, h.Sum, st.Cycles, st.Fetched)
	}
	// Page cost is observed once per fetch attempt (successful or failed).
	if h, ok := snap.Hist("crawler.page.cost.ms"); !ok || h.Count != int64(st.Fetched+st.FetchErrors) {
		t.Errorf("crawler.page.cost.ms count = %d, want %d", h.Count, st.Fetched+st.FetchErrors)
	}
}

// TestMetricsDeterministic: the crawler's instruments observe only
// virtual-clock and count values, so two identical crawls must render
// byte-identical snapshots.
func TestMetricsDeterministic(t *testing.T) {
	render := func() string {
		p := newPipeline(t, 40)
		cfg := DefaultConfig()
		cfg.MaxPages = 200
		return New(cfg, p.web, p.clf).Run(defaultSeeds(t, p)).Metrics.Text()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same-seed crawls rendered different snapshots:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// TestWithMetricsSharedRegistry: WithMetrics(reg) must report into the
// caller's registry and accumulate across crawls.
func TestWithMetricsSharedRegistry(t *testing.T) {
	reg := obs.New()
	var fetched int64
	for i := 0; i < 2; i++ {
		p := newPipeline(t, 30)
		cfg := DefaultConfig()
		cfg.MaxPages = 100
		res := New(cfg, p.web, p.clf).WithMetrics(reg).Run(defaultSeeds(t, p))
		fetched += int64(res.Stats.Fetched)
	}
	if got := reg.Snapshot().Counter("crawler.fetch.ok"); got != fetched {
		t.Errorf("shared registry fetch.ok = %d, want %d", got, fetched)
	}
	if got := reg.Snapshot().Counter("crawler.cycles"); got == 0 {
		t.Error("shared registry has no cycles")
	}
}
