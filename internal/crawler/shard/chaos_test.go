// Sharded chaos: the fault machinery (retries, backoff, rate limits,
// circuit breakers) must stay shard-local and the merged corpus must not
// depend on the shard count. Run under -race via `make chaos` — the
// DoP > 1 rounds exercise the worker pool with the full fault surface on.

package shard

import (
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/synthweb"
)

// chaosWeb mirrors the unsharded chaos suite's fault surface.
func chaosWeb(c *synthweb.Config) {
	c.FailureRate = 0.3
	c.DeadHostShare = 0.1
	c.SlowHostShare = 0.2
	c.RateLimitShare = 0.2
	c.TruncateRate = 0.05
}

// uncappedChaos drops the per-host page cap: with faults on, the order
// hosts hit the cap is the one remaining order-dependent cutoff, so an
// S-independent corpus comparison needs the cap out of the way.
func uncappedChaos(cfg *crawler.Config) {
	cfg.MaxPages = 0
	cfg.MaxPagesPerHost = 100_000
}

// Under the full fault surface, every URL a shard ever touched must hash
// to that shard — politeness, retries, and breakers never cross shards.
func TestChaosShardLocality(t *testing.T) {
	e := newEnv(t, 60, chaosWeb)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 4, Parallelism: 4}
	uncappedChaos(&cfg.Crawl)
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(e.seeds)
	if !res.Stats.FrontierEmptied {
		t.Error("chaos fleet should drain its frontiers")
	}
	if res.Stats.Retries == 0 || res.Stats.BreakerOpens == 0 {
		t.Fatalf("fault machinery never engaged: %d retries, %d breaker opens",
			res.Stats.Retries, res.Stats.BreakerOpens)
	}
	for i, ps := range res.PerShard {
		for url := range ps.CrawlDB.Snapshot().Status {
			host, _, err := synthweb.SplitURL(url)
			if err != nil {
				t.Fatalf("shard %d tracked unparseable URL %q", i, url)
			}
			if got := Of(host, cfg.Shards); got != i {
				t.Fatalf("shard %d tracked %q, which hashes to shard %d", i, url, got)
			}
		}
	}
}

// The reachable set is a property of the web, not of the partitioning:
// with faults on and the page caps off, a 4-shard crawl must store
// exactly the URLs an unsharded crawl stores. (Byte identity across S is
// not expected — virtual clocks differ — but the corpus membership is.)
func TestChaosCorpusIndependentOfShardCount(t *testing.T) {
	e := newEnv(t, 50, chaosWeb)

	cfg := crawler.DefaultConfig()
	uncappedChaos(&cfg)
	plain := crawler.New(cfg, e.newWeb(), e.clf).Run(e.seeds)

	scfg := Config{Crawl: cfg, Shards: 4, Parallelism: 4}
	r, err := New(scfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	sharded := r.Run(e.seeds)

	urlSet := func(pages []crawler.CrawledPage) map[string]bool {
		out := make(map[string]bool, len(pages))
		for _, p := range pages {
			out[p.URL] = true
		}
		return out
	}
	compare := func(class string, plainPages, shardedPages []crawler.CrawledPage) {
		want, got := urlSet(plainPages), urlSet(shardedPages)
		for u := range want {
			if !got[u] {
				t.Errorf("%s corpus: %s stored unsharded but missing at S=4", class, u)
			}
		}
		for u := range got {
			if !want[u] {
				t.Errorf("%s corpus: %s stored at S=4 but not unsharded", class, u)
			}
		}
	}
	compare("relevant", plain.Relevant, sharded.Relevant)
	compare("irrelevant", plain.IrrelevantPages, sharded.IrrelevantPages)
	if plain.Stats.Fetched != sharded.Stats.Fetched {
		t.Errorf("fetched counts diverge: %d unsharded, %d at S=4",
			plain.Stats.Fetched, sharded.Stats.Fetched)
	}
}

// Chaos + DoP invariance: the full fault surface must not reintroduce
// schedule dependence. Same fleet, 1 vs 4 workers, byte-identical
// exports.
func TestChaosShardedCrawlDeterministicAcrossDoP(t *testing.T) {
	e := newEnv(t, 50, chaosWeb)
	run := func(parallelism int) exports {
		cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 4, Parallelism: parallelism}
		// The fleet budget is enforced at round barriers, so it is as
		// DoP-invisible as the rest of the plan — and it keeps the -race
		// run affordable.
		cfg.Crawl.MaxPages = 500
		return runShardedCfg(t, e, cfg)
	}
	a := run(1)
	if a.stats.Retries == 0 {
		t.Fatal("chaos run never retried — fault surface not engaged")
	}
	diffExports(t, "chaos DoP 4", a, run(4))
}
