// Checkpoint/resume for the fleet: the runner freezes at a round barrier
// — a consistent cut, since all mail is delivered before the barrier ends
// — into one manifest holding every shard's own crawler checkpoint. A
// shard (or the whole fleet) killed mid-round loses only that round;
// resuming from the last barrier re-executes it deterministically, so the
// resumed fleet's merged exports are byte-identical to an uninterrupted
// run's.

package shard

import (
	"encoding/json"
	"fmt"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/synthweb"
)

// Checkpoint is a sharded crawl frozen at a round barrier: the fleet
// manifest plus one serialized crawler checkpoint per shard.
type Checkpoint struct {
	Shards  int  `json:"shards"`
	Rounds  int  `json:"rounds"`
	Stopped bool `json:"stopped"`
	// Crawlers holds shard i's crawler.Checkpoint at index i.
	Crawlers []json.RawMessage `json:"crawlers"`
}

// Checkpoint freezes the fleet. Call it between Round calls (never
// mid-round): outboxes are empty at barriers, so no mail needs
// serializing — the frontier state in each shard checkpoint is complete.
func (r *Runner) Checkpoint() (*Checkpoint, error) {
	cp := &Checkpoint{
		Shards:   r.cfg.Shards,
		Rounds:   r.rounds,
		Stopped:  r.stopped,
		Crawlers: make([]json.RawMessage, len(r.shards)),
	}
	for i, s := range r.shards {
		data, err := s.c.Checkpoint().Marshal()
		if err != nil {
			return nil, fmt.Errorf("shard: checkpointing shard %d: %w", i, err)
		}
		cp.Crawlers[i] = data
	}
	return cp, nil
}

// Marshal serializes the manifest to deterministic indented JSON.
func (cp *Checkpoint) Marshal() ([]byte, error) {
	return json.MarshalIndent(cp, "", "  ")
}

// UnmarshalCheckpoint parses a serialized fleet checkpoint.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// Resume rebuilds a fleet from a checkpoint. As with crawler.Resume, the
// caller supplies the same config, web factory, and classifier as the
// original run; the shard count must match the manifest (the partitioning
// is part of the crawl plan — resharding a frontier is a data migration,
// not a resume). Parallelism is free to differ: it is not part of the
// crawl state. Attach observability with WithTrace/WithLog after Resume,
// exactly as on a fresh runner — each shard then continues its
// checkpointed trace and log streams.
func Resume(cfg Config, newWeb func() *synthweb.Web, clf *classify.NaiveBayes, cp *Checkpoint) (*Runner, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.Shards != cp.Shards {
		return nil, fmt.Errorf("shard: checkpoint has %d shards, config wants %d", cp.Shards, cfg.Shards)
	}
	if len(cp.Crawlers) != cp.Shards {
		return nil, fmt.Errorf("shard: checkpoint holds %d crawler states for %d shards",
			len(cp.Crawlers), cp.Shards)
	}
	if cfg.Crawl.SelfTraining {
		return nil, fmt.Errorf("shard: SelfTraining mutates the shared classifier; run it unsharded")
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.Shards
	}
	r := &Runner{cfg: cfg, clf: clf, shards: make([]*shardState, cfg.Shards)}
	r.rounds = cp.Rounds
	r.stopped = cp.Stopped
	shardCfg := cfg.Crawl
	shardCfg.MaxPages = 0
	for i := range r.shards {
		ccp, err := crawler.UnmarshalCheckpoint(cp.Crawlers[i])
		if err != nil {
			return nil, fmt.Errorf("shard: parsing shard %d checkpoint: %w", i, err)
		}
		s := &shardState{idx: i, web: newWeb(), outbox: make([][]mail, cfg.Shards)}
		s.c, err = crawler.Resume(shardCfg, s.web, clf, ccp)
		if err != nil {
			return nil, fmt.Errorf("shard: resuming shard %d: %w", i, err)
		}
		r.installRouter(s)
		r.shards[i] = s
	}
	return r, nil
}
