// Checkpoint/resume for the fleet: the runner freezes at a round barrier
// — a consistent cut, since all mail is delivered before the barrier ends
// — into one manifest holding every shard's own crawler checkpoint. A
// shard (or the whole fleet) killed mid-round loses only that round;
// resuming from the last barrier re-executes it deterministically, so the
// resumed fleet's merged exports are byte-identical to an uninterrupted
// run's.

package shard

import (
	"encoding/json"
	"errors"
	"fmt"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/obs/series"
	"webtextie/internal/synthweb"
)

// Sentinel errors for the rejection paths callers legitimately branch on
// (errors.Is-testable). New and Resume wrap these with context.
var (
	// ErrReshard: the checkpoint's shard count differs from the config's.
	// The partitioning is part of the crawl plan — resharding a frontier
	// is a data migration, not a resume.
	ErrReshard = errors.New("shard count differs from checkpoint (resharding is a data migration, not a resume)")
	// ErrSelfTraining: SelfTraining mutates the shared classifier, which
	// would make shards race on model updates and break DoP-independence.
	ErrSelfTraining = errors.New("SelfTraining mutates the shared classifier; run it unsharded")
	// ErrManifest: the checkpoint manifest is structurally inconsistent
	// (crawler-state count does not match its own shard count).
	ErrManifest = errors.New("checkpoint manifest is inconsistent")
)

// Checkpoint is a sharded crawl frozen at a round barrier: the fleet
// manifest plus one serialized crawler checkpoint per shard.
type Checkpoint struct {
	Shards  int  `json:"shards"`
	Rounds  int  `json:"rounds"`
	Stopped bool `json:"stopped"`
	// Fenced lists shards that were fenced (degraded mode) when the
	// checkpoint was taken, ascending. Omitted for healthy fleets.
	Fenced []int `json:"fenced,omitempty"`
	// Degraded carries the fencing records for the fenced shards.
	Degraded []DegradedPartition `json:"degraded,omitempty"`
	// Crawlers holds shard i's crawler.Checkpoint at index i.
	Crawlers []json.RawMessage `json:"crawlers"`
	// Series continues the fleet time-series recorder across the restart
	// (nil when the fleet ran without sampling). Checkpoints land at round
	// barriers — after EndRound's sample — so a resumed fleet's series
	// export matches an uninterrupted run's byte for byte.
	Series *series.Snapshot `json:"series,omitempty"`
}

// Checkpoint freezes the fleet. Call it between Round calls (never
// mid-round): outboxes are empty at barriers, so no mail needs
// serializing — the frontier state in each shard checkpoint is complete.
func (r *Runner) Checkpoint() (*Checkpoint, error) {
	cp := &Checkpoint{
		Shards:   r.cfg.Shards,
		Rounds:   r.rounds,
		Stopped:  r.stopped,
		Degraded: append([]DegradedPartition(nil), r.degraded...),
		Crawlers: make([]json.RawMessage, len(r.shards)),
	}
	for i, f := range r.fenced {
		if f {
			cp.Fenced = append(cp.Fenced, i)
		}
	}
	for i, s := range r.shards {
		data, err := s.c.Checkpoint().Marshal()
		if err != nil {
			return nil, fmt.Errorf("shard: checkpointing shard %d: %w", i, err)
		}
		cp.Crawlers[i] = data
	}
	if r.series != nil {
		cp.Series = r.series.Snapshot()
	}
	return cp, nil
}

// Marshal serializes the manifest to deterministic indented JSON.
func (cp *Checkpoint) Marshal() ([]byte, error) {
	return json.MarshalIndent(cp, "", "  ")
}

// UnmarshalCheckpoint parses a serialized fleet checkpoint.
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// Resume rebuilds a fleet from a checkpoint. As with crawler.Resume, the
// caller supplies the same config, web factory, and classifier as the
// original run; the shard count must match the manifest (the partitioning
// is part of the crawl plan — resharding a frontier is a data migration,
// not a resume). Parallelism is free to differ: it is not part of the
// crawl state. Attach observability with WithTrace/WithLog after Resume,
// exactly as on a fresh runner — each shard then continues its
// checkpointed trace and log streams.
func Resume(cfg Config, newWeb func() *synthweb.Web, clf *classify.NaiveBayes, cp *Checkpoint) (*Runner, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.Shards != cp.Shards {
		return nil, fmt.Errorf("shard: checkpoint has %d shards, config wants %d: %w",
			cp.Shards, cfg.Shards, ErrReshard)
	}
	if len(cp.Crawlers) != cp.Shards {
		return nil, fmt.Errorf("shard: checkpoint holds %d crawler states for %d shards: %w",
			len(cp.Crawlers), cp.Shards, ErrManifest)
	}
	if cfg.Crawl.SelfTraining {
		return nil, fmt.Errorf("shard: %w", ErrSelfTraining)
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.Shards
	}
	r := newRunner(cfg, clf)
	r.rounds = cp.Rounds
	r.stopped = cp.Stopped
	r.degraded = append([]DegradedPartition(nil), cp.Degraded...)
	for _, i := range cp.Fenced {
		if i < 0 || i >= cfg.Shards {
			return nil, fmt.Errorf("shard: checkpoint fences shard %d of %d: %w",
				i, cp.Shards, ErrManifest)
		}
		r.fenced[i] = true
	}
	for i := range r.shards {
		ccp, err := crawler.UnmarshalCheckpoint(cp.Crawlers[i])
		if err != nil {
			return nil, fmt.Errorf("shard: parsing shard %d checkpoint: %w", i, err)
		}
		s := &shardState{idx: i, web: newWeb(), outbox: make([][]mail, cfg.Shards)}
		s.c, err = crawler.Resume(r.shardCfg, s.web, clf, ccp)
		if err != nil {
			return nil, fmt.Errorf("shard: resuming shard %d: %w", i, err)
		}
		r.installRouter(s)
		r.shards[i] = s
	}
	// Sampling resumes lazily: WithSeries loads this into the new fleet
	// recorder.
	r.resumeSeries = cp.Series
	return r, nil
}
