package shard

import (
	"bytes"
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/trace"
)

// runShardedProf executes a budgeted sharded crawl with per-shard
// profiling and returns the merged deterministic exports plus the
// result.
func runShardedProf(t *testing.T, e *env, shards, parallelism, maxPages int) (string, string, []byte, *Result) {
	t.Helper()
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: shards, Parallelism: parallelism}
	cfg.Crawl.MaxPages = maxPages
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithProf(prof.Config{})
	res := r.Run(e.seeds)
	if res.Profile == nil {
		t.Fatal("fleet with profilers produced no merged profile")
	}
	js, err := res.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return res.Profile.TopK(0), res.Profile.Folded(), js, res
}

// TestFleetProfileDeterministicAcrossDoP: profilers are shard-scoped and
// merged in shard order, so for a fixed shard count the merged profile
// exports are byte-identical at any degree of parallelism.
func TestFleetProfileDeterministicAcrossDoP(t *testing.T) {
	e := newEnv(t, 120, nil)
	const shards = 4
	baseTopK, baseFolded, baseJSON, res := runShardedProf(t, e, shards, 1, 800)
	fetch := res.Profile.Get("crawl.cycle.fetch")
	if fetch == nil || fetch.Calls == 0 {
		t.Fatalf("merged fetch scope unpopulated: %+v", fetch)
	}
	// Merged calls sum across shards: one per fleet-wide fetch attempt.
	if want := res.Stats.Fetched + res.Stats.FetchErrors; fetch.Calls != int64(want) {
		t.Errorf("merged fetch calls = %d, want %d fleet fetch attempts", fetch.Calls, want)
	}
	for _, dop := range []int{2, shards} {
		topk, folded, js, _ := runShardedProf(t, e, shards, dop, 800)
		if topk != baseTopK {
			t.Errorf("DoP %d profile TopK diverges from DoP 1", dop)
		}
		if folded != baseFolded {
			t.Errorf("DoP %d profile folded stacks diverge from DoP 1", dop)
		}
		if !bytes.Equal(js, baseJSON) {
			t.Errorf("DoP %d profile JSON diverges from DoP 1", dop)
		}
	}
}

// TestFleetProfilingInvisible: attaching per-shard profilers must not
// change any other export surface.
func TestFleetProfilingInvisible(t *testing.T) {
	e := newEnv(t, 60, nil)
	plain := runSharded(t, e, 3, 3, 300)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 3}
	cfg.Crawl.MaxPages = 300
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7)).WithProf(prof.Config{})
	res := r.Run(e.seeds)
	if plain.corpus != res.CorpusManifest() {
		t.Error("corpus manifest changes when fleet profiling is on")
	}
	if plain.metrics != res.Metrics.Text() {
		t.Error("metric export changes when fleet profiling is on")
	}
	if plain.traces != res.Traces.Text() {
		t.Error("trace export changes when fleet profiling is on")
	}
	if plain.logs != res.Logs.Logfmt() {
		t.Error("log export changes when fleet profiling is on")
	}
}

// TestFleetProfileIdenticalAfterResume: a fleet checkpointed at a round
// barrier and resumed in fresh objects (at a different DoP) exports a
// byte-identical merged profile — each shard's virtual lane rides its
// embedded crawler checkpoint.
func TestFleetProfileIdenticalAfterResume(t *testing.T) {
	e := newEnv(t, 80, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 2}
	cfg.Crawl.MaxPages = 400

	ref, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.WithProf(prof.Config{}).Run(e.seeds)

	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithProf(prof.Config{})
	r.Seed(e.seeds)
	for i := 0; i < 3 && r.Round(); i++ {
	}
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	resumedCfg := cfg
	resumedCfg.Parallelism = 3
	rr, err := Resume(resumedCfg, e.newWeb, e.clf, cp2)
	if err != nil {
		t.Fatal(err)
	}
	rr.WithProf(prof.Config{}) // each shard loads its checkpointed snapshot
	for rr.Round() {
	}
	gotRes := rr.Finish()

	if refRes.Profile.TopK(0) != gotRes.Profile.TopK(0) {
		t.Fatalf("merged profile TopK diverges after resume:\n--- uninterrupted\n%s\n--- resumed\n%s",
			refRes.Profile.TopK(0), gotRes.Profile.TopK(0))
	}
	if refRes.Profile.Folded() != gotRes.Profile.Folded() {
		t.Fatal("merged profile folded stacks diverge after resume")
	}
	refJSON, err := refRes.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := gotRes.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("merged profile JSON exports diverge after resume")
	}
}
