// Merging: a sharded crawl ends with S private results; this file folds
// them into one fleet-level Result deterministically. Every merge is
// order-independent in substance (shards own disjoint URL and host
// populations) and performed in shard-index order in form, so one fleet
// always renders one byte sequence regardless of how many goroutines ran
// the rounds.

package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"webtextie/internal/crawldb"
	"webtextie/internal/crawler"
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
)

// Result is the merged output of a sharded crawl.
type Result struct {
	// Stats aggregates the fleet: additive fields sum across shards,
	// VirtualMs is the maximum shard clock (shards run in parallel, so the
	// fleet is done when its slowest shard is), Cycles counts fleet-wide
	// generate/fetch cycles, and FrontierEmptied holds only when every
	// shard drained.
	Stats crawler.Stats
	// Relevant and IrrelevantPages are the merged corpora in canonical
	// (URL-sorted) order — shard interleaving has no meaningful global
	// discovery order to preserve.
	Relevant        []crawler.CrawledPage
	IrrelevantPages []crawler.CrawledPage
	// LinkDB is the union link graph (source pages are fetched on exactly
	// one shard, so sources never conflict).
	LinkDB *crawldb.LinkDB
	// Metrics folds the per-shard registries with obs.Snapshot.Merge:
	// counters and histograms sum; gauges sum too, so e.g. the merged
	// crawler.virtual.ms gauge is the total shard-clock time (cost),
	// while Stats.VirtualMs is the parallel makespan.
	Metrics obs.Snapshot
	// Traces is the merged trace export (nil when tracing was off).
	Traces *trace.Snapshot
	// Logs is the merged event-log export (nil when logging was off).
	Logs *evlog.Snapshot
	// Series is the fleet time-series export (nil when sampling was off):
	// one per-round sample stream per metric, already merged across shards
	// on the makespan clock.
	Series *series.Snapshot
	// Profile is the fleet cost profile (nil when profiling was off):
	// per-shard snapshots folded with prof.Merge in shard order, so
	// virtual-lane stage costs sum across the fleet (worker time, like
	// the merged crawler.virtual.ms gauge — not makespan).
	Profile *prof.Snapshot
	// PerShard holds each shard's own result, indexed by shard.
	PerShard []*crawler.Result
	// Rounds is the number of fleet supersteps executed.
	Rounds int
	// Stopped reports whether the fleet page budget ended the crawl.
	Stopped bool
	// Degraded lists host-hash partitions fenced out of the fleet, in
	// fencing order; empty for a healthy run. A degraded corpus is still
	// internally consistent — each fenced shard contributes its last
	// barrier state — but its host coverage has known holes.
	Degraded []DegradedPartition
}

// DegradedPartition records one host-hash partition the fleet lost: the
// shard was fenced after its recovery budget ran out, and every URL in
// its partition discovered afterwards was dropped.
type DegradedPartition struct {
	// Shard is the fenced partition's index (hosts with
	// Of(host, S) == Shard are the missing population).
	Shard int `json:"shard"`
	// FencedAtRound is the fleet round count when the shard was fenced.
	FencedAtRound int `json:"fenced_at_round"`
	// PendingLost is the frontier size abandoned at fencing time.
	PendingLost int `json:"pending_lost"`
	// MailLost counts cross-shard discoveries dropped at barriers after
	// fencing.
	MailLost int `json:"mail_lost,omitempty"`
}

// Finish drains the fleet into a merged Result. When the crawl ended by
// exhaustion (not the page budget), each drained shard records frontier
// exhaustion first — the runner never lets a shard observe mid-crawl
// emptiness (mail could still arrive), so the terminal mark happens here.
func (r *Runner) Finish() *Result {
	if !r.stopped {
		for i, s := range r.shards {
			// A fenced shard's frontier was abandoned, not drained — it
			// never records exhaustion, so the fleet-level
			// FrontierEmptied flag stays false on degraded runs.
			if !r.fenced[i] && s.c.Pending() == 0 {
				s.c.MarkFrontierEmptied()
			}
		}
	}
	perShard := make([]*crawler.Result, len(r.shards))
	for i, s := range r.shards {
		perShard[i] = s.c.Finish()
	}
	out := &Result{
		LinkDB:   crawldb.NewLinkDB(),
		PerShard: perShard,
		Rounds:   r.rounds,
		Stopped:  r.stopped,
		Degraded: append([]DegradedPartition(nil), r.degraded...),
	}
	for i, res := range perShard {
		out.Stats = mergeStats(out.Stats, res.Stats, i == 0)
		out.Relevant = append(out.Relevant, res.Relevant...)
		out.IrrelevantPages = append(out.IrrelevantPages, res.IrrelevantPages...)
		res.LinkDB.ForEach(func(src string, targets []string) {
			out.LinkDB.AddLinks(src, targets)
		})
		if i == 0 {
			out.Metrics = res.Metrics
		} else {
			out.Metrics = out.Metrics.Merge(res.Metrics)
		}
	}
	sortCorpus(out.Relevant)
	sortCorpus(out.IrrelevantPages)
	if r.shards[0].rec != nil {
		snaps := make([]*trace.Snapshot, len(r.shards))
		for i, s := range r.shards {
			snaps[i] = s.rec.Snapshot()
		}
		out.Traces = trace.Merge(snaps...)
	}
	if perShard[0].Logs != nil {
		snaps := make([]*evlog.Snapshot, len(perShard))
		for i, res := range perShard {
			snaps[i] = res.Logs
		}
		out.Logs = evlog.Merge(snaps...)
	}
	if r.series != nil {
		out.Series = r.series.Snapshot()
	}
	if perShard[0].Profile != nil {
		snaps := make([]*prof.Snapshot, len(perShard))
		for i, res := range perShard {
			snaps[i] = res.Profile
		}
		out.Profile = prof.Merge(snaps...)
	}
	return out
}

// mergeStats folds one shard's stats into the fleet aggregate.
func mergeStats(acc, s crawler.Stats, first bool) crawler.Stats {
	out := acc
	out.Fetched += s.Fetched
	out.FetchErrors += s.FetchErrors
	out.RobotsBlocked += s.RobotsBlocked
	out.FilteredMIME += s.FilteredMIME
	out.FilteredLang += s.FilteredLang
	out.FilteredLength += s.FilteredLength
	out.Relevant += s.Relevant
	out.Irrelevant += s.Irrelevant
	out.RelevantBytes += s.RelevantBytes
	out.IrrelevantBytes += s.IrrelevantBytes
	out.EntityBoosted += s.EntityBoosted
	out.SelfTrainUpdates += s.SelfTrainUpdates
	out.Cycles += s.Cycles
	out.Retries += s.Retries
	out.RetriesExhausted += s.RetriesExhausted
	out.RateLimited += s.RateLimited
	out.BreakerOpens += s.BreakerOpens
	out.BreakerDeferred += s.BreakerDeferred
	if s.VirtualMs > out.VirtualMs {
		out.VirtualMs = s.VirtualMs
	}
	if first {
		out.FrontierEmptied = s.FrontierEmptied
	} else {
		out.FrontierEmptied = out.FrontierEmptied && s.FrontierEmptied
	}
	return out
}

// sortCorpus puts a merged corpus into canonical URL order (URLs are
// unique across shards, so the order is total).
func sortCorpus(pages []crawler.CrawledPage) {
	sort.Slice(pages, func(i, j int) bool { return pages[i].URL < pages[j].URL })
}

// CorpusManifest renders the merged corpora as one canonical line per
// page — URL, raw size, gold label, and an FNV-1a digest of the extracted
// net text — relevant pages first, each group URL-sorted. Two crawls
// stored identical corpora iff their manifests are byte-identical; the
// determinism and checkpoint suites compare this form.
//
// A degraded run appends one `deg` footer line per fenced partition, so
// a manifest consumer cannot mistake a corpus with known coverage holes
// for a complete one. Healthy runs emit no footer, keeping the form
// byte-compatible with every pre-supervision manifest.
func (res *Result) CorpusManifest() string {
	var b strings.Builder
	render := func(class string, pages []crawler.CrawledPage) {
		for _, p := range pages {
			h := fnv.New64a()
			h.Write([]byte(p.NetText))
			fmt.Fprintf(&b, "%s %s bytes=%d gold=%t text=%016x\n",
				class, p.URL, p.Bytes, p.GoldRelevant, h.Sum64())
		}
	}
	render("rel", res.Relevant)
	render("irr", res.IrrelevantPages)
	shards := len(res.PerShard)
	for _, d := range res.Degraded {
		fmt.Fprintf(&b, "deg shard=%d/%d fenced_round=%d pending_lost=%d mail_lost=%d\n",
			d.Shard, shards, d.FencedAtRound, d.PendingLost, d.MailLost)
	}
	return b.String()
}
