package shard

import (
	"bytes"
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
)

// runShardedSeries executes a budgeted sharded crawl with fleet sampling
// and returns the series exports plus the merged result.
func runShardedSeries(t *testing.T, e *env, shards, parallelism, maxPages int) (string, []byte, *Result) {
	t.Helper()
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: shards, Parallelism: parallelism}
	cfg.Crawl.MaxPages = maxPages
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithSeries(series.DefaultConfig())
	res := r.Run(e.seeds)
	if res.Series == nil {
		t.Fatal("fleet with a series recorder produced no series snapshot")
	}
	js, err := res.Series.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return res.Series.CSV(), js, res
}

// TestFleetSeriesDeterministicAcrossDoP: fleet sampling happens at the
// round barrier on one goroutine, so for a fixed shard count the series
// exports are byte-identical at any degree of parallelism.
func TestFleetSeriesDeterministicAcrossDoP(t *testing.T) {
	e := newEnv(t, 120, nil)
	const shards = 4
	baseCSV, baseJSON, res := runShardedSeries(t, e, shards, 1, 800)
	if len(res.Series.Series) == 0 {
		t.Fatal("DoP-1 fleet retained no series")
	}
	// One sample per round, per metric.
	fetchOK := res.Series.Get("crawler.fetch.ok")
	if fetchOK == nil {
		t.Fatal("crawler.fetch.ok fleet series missing")
	}
	if int(fetchOK.Total) != res.Rounds {
		t.Errorf("fleet crawler.fetch.ok has %d samples for %d rounds", fetchOK.Total, res.Rounds)
	}
	if res.Series.Get("fleet.rounds") == nil || res.Series.Get("crawler.harvest.rate.docs") == nil {
		t.Error("derived fleet series missing")
	}
	// Samples are stamped on the makespan clock: the last sample's time
	// is the fleet's virtual duration.
	if last, ok := fetchOK.Last(); !ok || last.AtMs != res.Stats.VirtualMs {
		t.Errorf("last sample at %v, want the fleet makespan %d", last, res.Stats.VirtualMs)
	}
	for _, dop := range []int{2, shards} {
		csv, js, _ := runShardedSeries(t, e, shards, dop, 800)
		if csv != baseCSV {
			t.Errorf("DoP %d series CSV diverges from DoP 1", dop)
		}
		if !bytes.Equal(js, baseJSON) {
			t.Errorf("DoP %d series JSON diverges from DoP 1", dop)
		}
	}
}

// TestFleetSeriesDeterministicAcrossRuns: rerunning the identical fleet
// plan reproduces the series exports byte for byte.
func TestFleetSeriesDeterministicAcrossRuns(t *testing.T) {
	e := newEnv(t, 80, nil)
	csvA, jsA, _ := runShardedSeries(t, e, 3, 3, 400)
	csvB, jsB, _ := runShardedSeries(t, e, 3, 3, 400)
	if csvA != csvB || !bytes.Equal(jsA, jsB) {
		t.Error("fleet series exports diverge across identical runs")
	}
}

// TestFleetSeriesSamplingInvisible: attaching the fleet recorder must not
// change any other export surface — sampling only reads barrier state.
func TestFleetSeriesSamplingInvisible(t *testing.T) {
	e := newEnv(t, 60, nil)
	plain := runSharded(t, e, 3, 3, 300)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 3}
	cfg.Crawl.MaxPages = 300
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7)).WithSeries(series.DefaultConfig())
	res := r.Run(e.seeds)
	if plain.corpus != res.CorpusManifest() {
		t.Error("corpus manifest changes when fleet sampling is on")
	}
	if plain.metrics != res.Metrics.Text() {
		t.Error("metric export changes when fleet sampling is on")
	}
	if plain.logs != res.Logs.Logfmt() {
		t.Error("log export changes when fleet sampling is on")
	}
}

// TestFleetSeriesIdenticalAfterResume: a fleet checkpointed at a round
// barrier and resumed in fresh objects exports byte-identical series.
func TestFleetSeriesIdenticalAfterResume(t *testing.T) {
	e := newEnv(t, 80, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 2}
	cfg.Crawl.MaxPages = 400
	sCfg := series.Config{RawCap: 16, RollupEvery: 2, Tiers: 2, TierCap: 8}

	// Uninterrupted reference.
	ref, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.WithSeries(sCfg).Run(e.seeds)

	// Interrupted run: a few rounds, checkpoint, JSON round-trip, resume
	// at a different DoP, finish.
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithSeries(sCfg)
	r.Seed(e.seeds)
	for i := 0; i < 3 && r.Round(); i++ {
	}
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	resumedCfg := cfg
	resumedCfg.Parallelism = 3
	rr, err := Resume(resumedCfg, e.newWeb, e.clf, cp2)
	if err != nil {
		t.Fatal(err)
	}
	rr.WithSeries(series.DefaultConfig()) // Load adopts the checkpoint's config
	for rr.Round() {
	}
	gotRes := rr.Finish()

	if refRes.Series.CSV() != gotRes.Series.CSV() {
		t.Fatal("fleet series CSV exports diverge after resume")
	}
	refJSON, err := refRes.Series.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := gotRes.Series.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("fleet series JSON exports diverge after resume")
	}
	if len(refRes.Series.Series) == 0 {
		t.Fatal("reference fleet retained no series")
	}
}
