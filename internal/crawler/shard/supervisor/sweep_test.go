package supervisor

import (
	"fmt"
	"testing"

	"webtextie/internal/synthweb"
)

// TestCrashSweepEveryShardEveryRound is the exhaustive recovery
// property: for EVERY (shard, round) crash point in the run, the
// recovered exports are byte-identical to the fault-free run — at DoP 1
// and at full DoP. No crash point is special: the first round (no prior
// round's checkpoint refresh), budget-stopping rounds, and drain rounds
// all recover through the same rollback.
func TestCrashSweepEveryShardEveryRound(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is the long chaos gate; run without -short")
	}
	const shards = 3
	e := newEnv(t, 50, nil)
	base := runPlain(t, e, fleetCfg(shards, 1))
	if base.rounds < 3 {
		t.Fatalf("need >= 3 rounds for a meaningful sweep, got %d", base.rounds)
	}
	for round := 0; round < base.rounds; round++ {
		for s := 0; s < shards; s++ {
			crash := &synthweb.CrashPlan{Points: []synthweb.CrashPoint{
				{Shard: s, Round: round, Attempts: 1},
			}}
			for _, dop := range []int{1, shards} {
				label := fmt.Sprintf("crash(shard=%d, round=%d) DoP %d", s, round, dop)
				got, rep, _ := runSupervised(t, e, fleetCfg(shards, dop),
					Config{RecoveryBudget: 1, Crash: crash, Seed: 7})
				// A shard with no pending work in the crash round never
				// steps, so the point never fires — still must match.
				if rep.Crashes > 1 {
					t.Fatalf("%s: single point fired %d times", label, rep.Crashes)
				}
				if len(rep.Fenced) != 0 {
					t.Fatalf("%s: recovery fenced %v", label, rep.Fenced)
				}
				diffExports(t, label, base, got)
				if t.Failed() {
					return // first divergence is enough; don't flood the log
				}
			}
		}
	}
}
