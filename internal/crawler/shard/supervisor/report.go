// The supervision report: what the supervisor did, as data (for
// cmd/crawl's summary and the doctor) and as exports (the supervision
// pillars, mergeable with the crawl pillars for diagnosis).

package supervisor

import (
	"fmt"
	"strings"

	"webtextie/internal/crawler/shard"
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// Report summarizes a supervised run.
type Report struct {
	// Restarts[i] is the number of checkpoint restarts granted shard i.
	Restarts []int
	// Stalls[i] is the number of rounds shard i was flagged a straggler.
	Stalls []int
	// Fenced lists the shards fenced after exhausting their recovery
	// budget, ascending. Non-empty means the run completed degraded.
	Fenced []int
	// Crashes is the total number of panics observed (injected or real).
	Crashes int
	// MailDropped is the total number of cross-shard discoveries dropped
	// because their destination partition was fenced.
	MailDropped int

	// Metrics/Traces/Logs are the supervision pillars' exports — the
	// fleet.* counters, the shard.restart/stall/fenced marks, and the
	// fleet.supervisor log records. Separate from the crawl exports by
	// design; merge them (obs.Snapshot.Merge, trace.Merge, evlog.Merge)
	// only when diagnosing.
	Metrics obs.Snapshot
	Traces  *trace.Snapshot
	Logs    *evlog.Snapshot
}

// Report snapshots the supervisor's state. Call it after the run; the
// result shares no mutable state with the supervisor.
func (s *Supervisor) Report() *Report {
	rep := &Report{
		Restarts:    append([]int(nil), s.restarts...),
		Stalls:      append([]int(nil), s.stalls...),
		Crashes:     s.crashes,
		MailDropped: s.dropped,
		Metrics:     s.reg.Snapshot(),
		Traces:      s.rec.Snapshot(),
		Logs:        s.sink.Snapshot(),
	}
	for i := 0; i < s.r.Shards(); i++ {
		if s.r.Fenced(i) {
			rep.Fenced = append(rep.Fenced, i)
		}
	}
	return rep
}

// Quiet reports whether supervision had nothing to do: no crashes, no
// stalls, no fencing. cmd/crawl prints the recovery summary only when
// there is something to say.
func (rep *Report) Quiet() bool {
	return rep.Crashes == 0 && rep.MailDropped == 0 && len(rep.Fenced) == 0 && sum(rep.Stalls) == 0
}

// Summary renders the human-readable recovery summary cmd/crawl prints
// alongside the stats block. One line per shard that needed attention,
// then the fleet totals; deterministic.
func (rep *Report) Summary(degraded []shard.DegradedPartition) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet recovery: %d crash(es), %d restart(s), %d stall flag(s), %d shard(s) fenced\n",
		rep.Crashes, sum(rep.Restarts), sum(rep.Stalls), len(rep.Fenced))
	for i := range rep.Restarts {
		if rep.Restarts[i] == 0 && rep.Stalls[i] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  shard %d: %d restart(s), %d stall flag(s)\n",
			i, rep.Restarts[i], rep.Stalls[i])
	}
	for _, d := range degraded {
		fmt.Fprintf(&b, "  DEGRADED: partition %d fenced at round %d (%d frontier URLs abandoned, %d discoveries dropped)\n",
			d.Shard, d.FencedAtRound, d.PendingLost, d.MailLost)
	}
	if len(degraded) > 0 {
		fmt.Fprintf(&b, "  corpus has known coverage holes: hosts hashing to fenced partitions are missing\n")
	}
	return b.String()
}

func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
