package supervisor

import (
	"testing"

	"webtextie/internal/obs/series"
	"webtextie/internal/synthweb"
)

// TestCrashRecoverySeriesByteIdentical: the time-series pillar rides the
// same determinism contract as the other three. Fleet sampling happens in
// EndRound, which the supervised loop shares with the plain one, so a
// supervised run under a recovered crash schedule exports series
// byte-identical to the fault-free unsupervised run's — at DoP 1 and 4.
// (The fleet recorder is runner-owned: shard restarts rebuild crawlers,
// never the recorder, and a replayed round reaches the same barrier
// state it would have fault-free.)
func TestCrashRecoverySeriesByteIdentical(t *testing.T) {
	e := newEnv(t, 60, nil)
	ref := newFleet(t, e, fleetCfg(4, 1)).WithSeries(series.DefaultConfig()).Run(e.seeds)
	if ref.Series == nil || len(ref.Series.Series) == 0 {
		t.Fatal("reference fleet retained no series")
	}
	if ref.Rounds < 3 {
		t.Fatalf("need >= 3 rounds to place the crash schedule, got %d", ref.Rounds)
	}
	refCSV := ref.Series.CSV()
	crash := &synthweb.CrashPlan{Points: []synthweb.CrashPoint{
		{Shard: 0, Round: 1, Attempts: 1},
		{Shard: 1, Round: 2, Attempts: 1},
	}}
	for _, dop := range []int{1, 4} {
		fleet := newFleet(t, e, fleetCfg(4, dop)).WithSeries(series.DefaultConfig())
		sup := New(fleet, Config{RecoveryBudget: 3, Crash: crash, Seed: 7})
		res, err := sup.Run(e.seeds)
		if err != nil {
			t.Fatal(err)
		}
		if sup.Report().Crashes == 0 {
			t.Fatalf("DoP %d: crash schedule never fired", dop)
		}
		if got := res.Series.CSV(); got != refCSV {
			t.Errorf("DoP %d: supervised series CSV diverges from fault-free run", dop)
		}
	}
}
