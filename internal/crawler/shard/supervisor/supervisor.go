// Package supervisor makes the shard fleet self-healing. The plain
// shard.Runner has the monolithic failure mode the paper's production
// crawl could not afford: one shard panicking mid-step — a tagger
// segfaulting on a degenerate page (§5), a worker OOM-killed (§4.1) —
// aborts the whole ~1M-page run. The supervisor wraps the same round
// primitives (Active, StepShard, DeliverMail, EndRound) with three
// layers of fault tolerance:
//
//   - Crash recovery. Every shard step runs behind panic isolation
//     (shard.StepShard). On a crash the shard is rolled back to its last
//     barrier checkpoint — taken silently every round, so supervision
//     never perturbs the exports — and the step is re-executed. Shard
//     state is pure in (config, checkpoint), so the replayed step
//     produces exactly the history the crashed one would have: a
//     recovered run's merged corpus, metrics, trace, and log exports are
//     byte-identical to a fault-free run's, at any degree of parallelism.
//
//   - Stall detection. Shards advance private virtual clocks; a shard
//     whose per-round clock advance exceeds StallFactor times the fleet
//     median is flagged a straggler. Virtual time cannot hang, so this
//     is detection-only: a shard.stall event through all three pillars,
//     feeding the doctor, never a restart.
//
//   - Degraded completion. Each shard has a bounded recovery budget.
//     When a poisoned shard crashes past it, the shard is rolled back to
//     its barrier state one last time and fenced: it never steps again,
//     mail addressed to it is dropped (and counted), and the run
//     finishes with the surviving partitions. The missing host-hash
//     partitions are recorded on Result.Degraded and in the
//     CorpusManifest footer — the corpus shrinks loudly, never silently.
//
// Supervision has its own three observability pillars (a fleet.* metric
// registry, a trace recorder for shard.crash/restart/stall/fenced marks,
// an event-log sink under component fleet.supervisor), kept separate
// from the crawl pillars: the crawl exports must stay byte-identical to
// an unsupervised run's, while the supervision exports describe the
// faults. Callers merge the two views only for diagnosis (crawl-doctor).
//
// Injected faults come from synthweb.CrashPlan — shard s panics mid-step
// at round r for its first k attempts, pure in the plan seed — so chaos
// runs are replayable bit for bit.
package supervisor

import (
	"fmt"
	"sort"

	"webtextie/internal/crawler/shard"
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
	"webtextie/internal/synthweb"
)

// DefaultRecoveryBudget is the per-shard restart allowance cmd/crawl
// defaults to.
const DefaultRecoveryBudget = 3

// Config controls fleet supervision.
type Config struct {
	// RecoveryBudget is the maximum number of checkpoint restarts a
	// single shard is granted over the whole run. A shard that crashes
	// after exhausting it is fenced. 0 means fence on the first crash.
	RecoveryBudget int
	// StallFactor flags a shard as stalled when its per-round virtual
	// clock advance exceeds StallFactor times the fleet median advance.
	// 0 disables stall detection; values below ~2 are noisy.
	StallFactor float64
	// Crash is the injected shard-crash schedule (nil or empty: no
	// injection — real panics are still recovered).
	Crash *synthweb.CrashPlan
	// Seed seeds the supervision trace and log pillars.
	Seed uint64
}

// Supervisor drives a shard.Runner with crash recovery, stall detection,
// and degraded-mode completion. Not safe for concurrent use.
type Supervisor struct {
	r   *shard.Runner
	cfg Config

	// Supervision pillars — separate from the crawl pillars so crash
	// recovery leaves the crawl exports byte-identical to a fault-free
	// run while still recording every fault.
	reg  *obs.Registry
	rec  *trace.Recorder
	sink *evlog.Sink
	lg   evlog.Logger

	crashesC  *obs.Counter
	restartsC *obs.Counter
	stallsC   *obs.Counter
	fencedC   *obs.Counter
	droppedC  *obs.Counter
	roundsC   *obs.Counter

	restarts []int    // cumulative restarts per shard
	stalls   []int    // cumulative stall flags per shard
	crashes  int      // total panics observed (injected or real)
	dropped  int      // total mail insertions dropped at fenced shards
	ckpts    [][]byte // last barrier checkpoint per shard
	outcomes []stepOutcome
	primed   bool // barrier checkpoints exist for round 0
}

// stepOutcome is one shard's step result for the current round, written
// by its worker goroutine and read post-barrier in shard order.
type stepOutcome struct {
	crashes  []string // panic messages, attempt order
	restarts int      // recoveries performed this round
	fence    error    // non-nil: recovery budget exhausted, fence post-barrier
}

// New wraps a runner in a supervisor. Attach the runner's observability
// (WithTrace/WithLog) before supervising: restarts re-wire whatever is
// installed at the time of the crash.
func New(r *shard.Runner, cfg Config) *Supervisor {
	n := r.Shards()
	s := &Supervisor{
		r:        r,
		cfg:      cfg,
		reg:      obs.New(),
		rec:      trace.NewRecorder(trace.DefaultConfig(cfg.Seed)),
		sink:     evlog.NewSink(evlog.DefaultConfig(cfg.Seed)),
		restarts: make([]int, n),
		stalls:   make([]int, n),
		ckpts:    make([][]byte, n),
		outcomes: make([]stepOutcome, n),
	}
	s.lg = s.sink.Logger("fleet.supervisor")
	s.crashesC = s.reg.Counter("fleet.shard.crashes")
	s.restartsC = s.reg.Counter("fleet.shard.restarts")
	s.stallsC = s.reg.Counter("fleet.shard.stalls")
	s.fencedC = s.reg.Counter("fleet.shard.fenced")
	s.droppedC = s.reg.Counter("fleet.mail.dropped")
	s.roundsC = s.reg.Counter("fleet.rounds")
	return s
}

// Round executes one supervised fleet superstep and reports whether the
// crawl should continue. The error path is exceptional (a checkpoint
// that cannot marshal, a restart that cannot resume) — injected crashes
// and budget exhaustion are handled, not returned.
func (s *Supervisor) Round() (bool, error) {
	if s.r.Done() {
		return false, nil
	}
	if !s.primed {
		if err := s.refreshCheckpoints(s.allShards()); err != nil {
			return false, err
		}
		s.primed = true
	}
	active := s.r.Active()
	if len(active) == 0 {
		s.r.MarkDrained()
		return false, nil
	}
	round := s.r.Rounds()
	before := s.clocks()

	// Step every active shard behind panic isolation, recovering inside
	// the worker: each worker touches only its own shard's state and
	// outcome slot, so recovery parallelizes exactly like clean steps.
	s.r.ParallelOver(active, func(i int) {
		s.outcomes[i] = s.stepWithRecovery(i, round)
	})

	// Post-barrier bookkeeping runs in ascending shard order with a
	// fleet-makespan timestamp, so supervision events are identical at
	// every degree of parallelism.
	now := s.makespan()
	for _, i := range active {
		o := &s.outcomes[i]
		for k, msg := range o.crashes {
			s.crashes++
			s.crashesC.Inc()
			s.lg.Warn("shard.crash", now,
				trace.Int("shard", int64(i)),
				trace.Int("round", int64(round)),
				trace.Int("attempt", int64(k)),
				trace.String("panic", msg))
		}
		if o.restarts > 0 {
			s.restarts[i] += o.restarts
			s.restartsC.Add(int64(o.restarts))
			s.rec.Mark("shard.restart", now,
				trace.Int("shard", int64(i)),
				trace.Int("round", int64(round)),
				trace.Int("restarts", int64(o.restarts)))
			s.lg.Warn("shard.restart", now,
				trace.Int("shard", int64(i)),
				trace.Int("round", int64(round)),
				trace.Int("restarts", int64(o.restarts)),
				trace.Int("budget_left", int64(s.cfg.RecoveryBudget-s.restarts[i])))
		}
		if o.fence != nil {
			s.r.Fence(i)
			s.fencedC.Inc()
			s.rec.Mark("shard.fenced", now,
				trace.Int("shard", int64(i)),
				trace.Int("round", int64(round)))
			s.lg.Error("shard.fenced", now,
				trace.Int("shard", int64(i)),
				trace.Int("round", int64(round)),
				trace.Int("restarts", int64(s.restarts[i])),
				trace.String("cause", o.fence.Error()))
		}
		o.crashes, o.restarts, o.fence = nil, 0, nil
	}
	s.detectStalls(active, before, round, now)

	if n := s.r.DeliverMail(); n > 0 {
		s.dropped += n
		s.droppedC.Add(int64(n))
		s.lg.Warn("shard.mail.dropped", now,
			trace.Int("round", int64(round)),
			trace.Int("dropped", int64(n)))
	}
	cont := s.r.EndRound()
	s.roundsC.Inc()
	if cont {
		// Refresh the restart points: the barrier state (post-mail) is
		// what a crash next round rolls back to.
		if err := s.refreshCheckpoints(s.liveShards()); err != nil {
			return false, err
		}
	}
	return cont, nil
}

// stepWithRecovery steps shard i, restarting from the barrier checkpoint
// on each panic until the step succeeds or the shard's recovery budget
// runs out. Runs on a worker goroutine; touches only shard i's state.
func (s *Supervisor) stepWithRecovery(i, round int) stepOutcome {
	var o stepOutcome
	for attempt := 0; ; attempt++ {
		s.armCrash(i, round, attempt)
		err := s.r.StepShard(i)
		if err == nil {
			return o
		}
		o.crashes = append(o.crashes, err.Error())
		exhausted := s.restarts[i]+o.restarts >= s.cfg.RecoveryBudget
		// Roll back to the barrier state either way: a retry replays
		// from it, and a fenced shard must contribute a consistent
		// barrier state to the merged corpus, not a half-stepped one.
		if rerr := s.r.RestartShard(i, s.ckpts[i]); rerr != nil {
			o.fence = fmt.Errorf("restart failed after %v: %w", err, rerr)
			return o
		}
		if exhausted {
			o.fence = err
			return o
		}
		o.restarts++
	}
}

// armCrash installs (or clears) the injected mid-step panic for this
// attempt. The schedule is pure in (plan, shard, round, attempt), so
// chaos runs replay identically at any degree of parallelism.
func (s *Supervisor) armCrash(i, round, attempt int) {
	if s.cfg.Crash.Empty() {
		return
	}
	c := s.r.Shard(i)
	if s.cfg.Crash.Crashes(i, round, attempt) {
		c.WithStepFault(func() {
			panic(fmt.Sprintf("injected crash: shard %d round %d attempt %d", i, round, attempt))
		})
	} else {
		c.WithStepFault(nil)
	}
}

// detectStalls compares each active shard's per-round virtual-clock
// advance against the fleet median and records stragglers. Fenced
// shards are excluded — their clocks were rolled back, not stalled.
func (s *Supervisor) detectStalls(active []int, before []int64, round int, now int64) {
	if s.cfg.StallFactor <= 0 {
		return
	}
	after := s.clocks()
	var deltas []int64
	for _, i := range active {
		if !s.r.Fenced(i) {
			deltas = append(deltas, after[i]-before[i])
		}
	}
	if len(deltas) < 2 {
		return // a lone shard has no fleet to straggle behind
	}
	sorted := append([]int64(nil), deltas...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return
	}
	deadline := int64(s.cfg.StallFactor * float64(median))
	for _, i := range active {
		if s.r.Fenced(i) {
			continue
		}
		if d := after[i] - before[i]; d > deadline {
			s.stalls[i]++
			s.stallsC.Inc()
			s.rec.Mark("shard.stall", now,
				trace.Int("shard", int64(i)),
				trace.Int("round", int64(round)),
				trace.Int("advance_ms", d),
				trace.Int("median_ms", median))
			s.lg.Warn("shard.stall", now,
				trace.Int("shard", int64(i)),
				trace.Int("round", int64(round)),
				trace.Int("advance_ms", d),
				trace.Int("median_ms", median))
		}
	}
}

// refreshCheckpoints takes a silent barrier checkpoint of each listed
// shard, in parallel (disjoint slots).
func (s *Supervisor) refreshCheckpoints(indices []int) error {
	errs := make([]error, s.r.Shards())
	s.r.ParallelOver(indices, func(i int) {
		s.ckpts[i], errs[i] = s.r.BarrierCheckpoint(i)
	})
	for _, i := range indices {
		if errs[i] != nil {
			return fmt.Errorf("supervisor: checkpointing shard %d: %w", i, errs[i])
		}
	}
	return nil
}

func (s *Supervisor) allShards() []int {
	out := make([]int, s.r.Shards())
	for i := range out {
		out[i] = i
	}
	return out
}

func (s *Supervisor) liveShards() []int {
	var out []int
	for i := 0; i < s.r.Shards(); i++ {
		if !s.r.Fenced(i) {
			out = append(out, i)
		}
	}
	return out
}

// clocks returns each shard's current virtual-clock reading.
func (s *Supervisor) clocks() []int64 {
	out := make([]int64, s.r.Shards())
	for i := range out {
		out[i] = s.r.Shard(i).CurrentStats().VirtualMs
	}
	return out
}

// makespan returns the fleet's parallel makespan — the slowest shard's
// virtual clock. Supervision events are stamped with it: deterministic,
// monotone per round, independent of the degree of parallelism.
func (s *Supervisor) makespan() int64 {
	var max int64
	for _, ms := range s.clocks() {
		if ms > max {
			max = ms
		}
	}
	return max
}

// Run executes the supervised crawl to completion: seed, supervised
// rounds until the budget or the frontiers end it, merge. The merged
// Result carries the crawl-pillar exports; supervision exports come
// from Report.
func (s *Supervisor) Run(seedURLs []string) (*shard.Result, error) {
	s.r.Seed(seedURLs)
	for {
		cont, err := s.Round()
		if err != nil {
			return nil, err
		}
		if !cont {
			break
		}
	}
	return s.r.Finish(), nil
}
