package supervisor

import (
	"bytes"
	"testing"

	"webtextie/internal/obs/prof"
	"webtextie/internal/synthweb"
)

// TestCrashRecoveryProfileByteIdentical: the cost-profile pillar rides
// the fleet's recovery contract. A restarted shard rebuilds its crawler
// from the last checkpoint — whose profile snapshot restores the virtual
// lane exactly — and replays the lost round to the same attribution, so
// a supervised run under a recovered crash schedule exports a merged
// profile byte-identical to the fault-free unsupervised run's, at DoP 1
// and 4. (The replayed round's extra wall-lane brackets never reach the
// deterministic exports: TopK, folded stacks, and JSON read the virtual
// lane only.)
func TestCrashRecoveryProfileByteIdentical(t *testing.T) {
	e := newEnv(t, 60, nil)
	ref := newFleet(t, e, fleetCfg(4, 1)).WithProf(prof.Config{}).Run(e.seeds)
	if ref.Profile == nil || len(ref.Profile.Scopes) == 0 {
		t.Fatal("reference fleet retained no profile")
	}
	if ref.Rounds < 3 {
		t.Fatalf("need >= 3 rounds to place the crash schedule, got %d", ref.Rounds)
	}
	refTopK, refFolded := ref.Profile.TopK(0), ref.Profile.Folded()
	refJSON, err := ref.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	crash := &synthweb.CrashPlan{Points: []synthweb.CrashPoint{
		{Shard: 0, Round: 1, Attempts: 1},
		{Shard: 1, Round: 2, Attempts: 1},
	}}
	for _, dop := range []int{1, 4} {
		fleet := newFleet(t, e, fleetCfg(4, dop)).WithProf(prof.Config{})
		sup := New(fleet, Config{RecoveryBudget: 3, Crash: crash, Seed: 7})
		res, err := sup.Run(e.seeds)
		if err != nil {
			t.Fatal(err)
		}
		if sup.Report().Crashes == 0 {
			t.Fatalf("DoP %d: crash schedule never fired", dop)
		}
		if got := res.Profile.TopK(0); got != refTopK {
			t.Errorf("DoP %d: supervised profile TopK diverges from fault-free run:\n--- fault-free\n%s\n--- recovered\n%s",
				dop, refTopK, got)
		}
		if res.Profile.Folded() != refFolded {
			t.Errorf("DoP %d: supervised profile folded stacks diverge from fault-free run", dop)
		}
		js, err := res.Profile.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js, refJSON) {
			t.Errorf("DoP %d: supervised profile JSON diverges from fault-free run", dop)
		}
	}
}
