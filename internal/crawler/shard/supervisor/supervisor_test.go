package supervisor

import (
	"fmt"
	"strings"
	"testing"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/crawler/shard"
	"webtextie/internal/obs/doctor"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// env mirrors the shard package's test environment: a web factory (each
// shard owns a private universe), a shared read-only classifier, seeds.
type env struct {
	webCfg synthweb.Config
	clf    *classify.NaiveBayes
	seeds  []string
}

func (e *env) newWeb() *synthweb.Web {
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	return synthweb.New(e.webCfg, gen)
}

func newEnv(t testing.TB, hosts int, mutate func(*synthweb.Config)) *env {
	t.Helper()
	e := &env{}
	e.webCfg = synthweb.DefaultConfig()
	e.webCfg.NumHosts = hosts
	if mutate != nil {
		mutate(&e.webCfg)
	}
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	e.clf = classify.New()
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		e.clf.Learn(gen.Doc(r, textgen.Medline, fmt.Sprint("m", i)).Text, classify.Relevant)
		e.clf.Learn(gen.Doc(r, textgen.Irrelevant, fmt.Sprint("w", i)).Text, classify.Irrelevant)
	}
	catalog := seeds.BuildCatalog(4, lex, seeds.CatalogSizes{General: 10, Disease: 60, Drug: 40, Gene: 80})
	e.seeds = seeds.Generate(seeds.DefaultEngines(5, e.newWeb()), catalog).SeedURLs
	return e
}

// fleetCfg is the shared fleet shape of this suite: small cycles force a
// multi-round run so there are rounds to crash in.
func fleetCfg(shards, parallelism int) shard.Config {
	cfg := shard.Config{Crawl: crawler.DefaultConfig(), Shards: shards, Parallelism: parallelism}
	cfg.Crawl.MaxPages = 480
	cfg.Crawl.FetchListSize = 40
	return cfg
}

// exports bundles every byte surface of the crawl pillars.
type exports struct {
	corpus  string
	metrics string
	traces  string
	logs    string
	stats   crawler.Stats
	rounds  int
}

func exportsOf(t *testing.T, res *shard.Result) exports {
	t.Helper()
	return exports{
		corpus:  res.CorpusManifest(),
		metrics: res.Metrics.Text(),
		traces:  res.Traces.Text(),
		logs:    res.Logs.Logfmt(),
		stats:   res.Stats,
		rounds:  res.Rounds,
	}
}

func diffExports(t *testing.T, label string, want, got exports) {
	t.Helper()
	check := func(surface, w, g string) {
		if w != g {
			i := 0
			for i < len(w) && i < len(g) && w[i] == g[i] {
				i++
			}
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			clip := func(s string) string {
				if i+80 < len(s) {
					return s[lo : i+80]
				}
				return s[lo:]
			}
			t.Errorf("%s: %s export differs at byte %d\nwant ...%q...\ngot  ...%q...",
				label, surface, i, clip(w), clip(g))
		}
	}
	check("corpus", want.corpus, got.corpus)
	check("metrics", want.metrics, got.metrics)
	check("trace", want.traces, got.traces)
	check("log", want.logs, got.logs)
	if want.stats != got.stats {
		t.Errorf("%s: stats differ:\nwant %+v\ngot  %+v", label, want.stats, got.stats)
	}
	if want.rounds != got.rounds {
		t.Errorf("%s: rounds differ: want %d, got %d", label, want.rounds, got.rounds)
	}
}

func newFleet(t *testing.T, e *env, cfg shard.Config) *shard.Runner {
	t.Helper()
	r, err := shard.New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7))
	return r
}

// runPlain runs the unsupervised fleet.
func runPlain(t *testing.T, e *env, cfg shard.Config) exports {
	t.Helper()
	return exportsOf(t, newFleet(t, e, cfg).Run(e.seeds))
}

// runSupervised runs the supervised fleet and returns its exports and
// the supervision report.
func runSupervised(t *testing.T, e *env, cfg shard.Config, scfg Config) (exports, *Report, *shard.Result) {
	t.Helper()
	sup := New(newFleet(t, e, cfg), scfg)
	res, err := sup.Run(e.seeds)
	if err != nil {
		t.Fatal(err)
	}
	return exportsOf(t, res), sup.Report(), res
}

// TestSupervisionIsInvisibleOnCleanRuns: with no faults, a supervised
// fleet's exports are byte-identical to an unsupervised one's — the
// silent barrier checkpoints leave no residue in any pillar.
func TestSupervisionIsInvisibleOnCleanRuns(t *testing.T) {
	e := newEnv(t, 60, nil)
	base := runPlain(t, e, fleetCfg(3, 1))
	if base.rounds < 2 {
		t.Fatalf("need a multi-round fleet, got %d rounds", base.rounds)
	}
	for _, dop := range []int{1, 3} {
		got, rep, _ := runSupervised(t, e, fleetCfg(3, dop), Config{RecoveryBudget: 3, Seed: 7})
		diffExports(t, fmt.Sprintf("supervised DoP %d", dop), base, got)
		if !rep.Quiet() {
			t.Errorf("DoP %d: clean run report not quiet: %+v", dop, rep)
		}
	}
}

// TestCrashRecoveryByteIdentical is the chaos determinism gate: under an
// injected crash schedule whose recovery budget is not exhausted, the
// merged corpus, metrics, trace, and log exports are byte-identical to
// the fault-free run's — at DoP 1 and DoP 4.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	e := newEnv(t, 60, nil)
	base := runPlain(t, e, fleetCfg(4, 1))
	if base.rounds < 3 {
		t.Fatalf("need >= 3 rounds to place the crash schedule, got %d", base.rounds)
	}
	crash := &synthweb.CrashPlan{Points: []synthweb.CrashPoint{
		{Shard: 0, Round: 1, Attempts: 1},
		{Shard: 2, Round: 1, Attempts: 2}, // crash the recovered shard again
		{Shard: 1, Round: 2, Attempts: 1},
	}}
	for _, dop := range []int{1, 4} {
		got, rep, _ := runSupervised(t, e, fleetCfg(4, dop),
			Config{RecoveryBudget: 3, Crash: crash, Seed: 7})
		diffExports(t, fmt.Sprintf("chaos DoP %d", dop), base, got)
		if rep.Crashes == 0 {
			t.Fatalf("DoP %d: crash schedule never fired", dop)
		}
		if len(rep.Fenced) != 0 {
			t.Errorf("DoP %d: budget 3 should recover everything, fenced %v", dop, rep.Fenced)
		}
		if rep.Restarts[0] == 0 || rep.Restarts[2] == 0 {
			t.Errorf("DoP %d: expected restarts on shards 0 and 2, got %v", dop, rep.Restarts)
		}
	}
}

// TestRandomCrashScheduleReplayable: the seeded random crash tier is
// pure in the plan, so two supervised runs under the same plan agree on
// every export byte and on the supervision history — at any DoP.
func TestRandomCrashScheduleReplayable(t *testing.T) {
	e := newEnv(t, 60, nil)
	crash := &synthweb.CrashPlan{Seed: 99, Rate: 0.25, MaxAttempts: 2}
	a, repA, _ := runSupervised(t, e, fleetCfg(3, 1), Config{RecoveryBudget: 5, Crash: crash, Seed: 7})
	if repA.Crashes == 0 {
		t.Skip("rate 0.25 scheduled no crashes in this run shape; nothing to replay")
	}
	for _, dop := range []int{1, 3} {
		b, repB, _ := runSupervised(t, e, fleetCfg(3, dop), Config{RecoveryBudget: 5, Crash: crash, Seed: 7})
		diffExports(t, fmt.Sprintf("replay DoP %d", dop), a, b)
		if repA.Crashes != repB.Crashes || fmt.Sprint(repA.Restarts) != fmt.Sprint(repB.Restarts) {
			t.Errorf("DoP %d: supervision history diverged: %d/%v vs %d/%v",
				dop, repA.Crashes, repA.Restarts, repB.Crashes, repB.Restarts)
		}
	}
}

// TestDegradedCompletion: a shard crashing past its recovery budget is
// fenced; the run still completes, deterministically at any DoP, with
// the missing partition enumerated everywhere it matters.
func TestDegradedCompletion(t *testing.T) {
	e := newEnv(t, 60, nil)
	crash := &synthweb.CrashPlan{Points: []synthweb.CrashPoint{
		{Shard: 1, Round: 1, Attempts: 1000}, // poisoned: never clears
	}}
	scfg := Config{RecoveryBudget: 2, Crash: crash, Seed: 7}
	base, rep, res := runSupervised(t, e, fleetCfg(3, 1), scfg)

	if len(rep.Fenced) != 1 || rep.Fenced[0] != 1 {
		t.Fatalf("Fenced = %v, want [1]", rep.Fenced)
	}
	if rep.Restarts[1] != 2 {
		t.Errorf("fenced shard got %d restarts, want its full budget 2", rep.Restarts[1])
	}
	if rep.Crashes != 3 {
		t.Errorf("crashes = %d, want budget+1 = 3", rep.Crashes)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Shard != 1 || res.Degraded[0].FencedAtRound != 1 {
		t.Fatalf("Degraded = %+v, want shard 1 fenced at round 1", res.Degraded)
	}
	if !strings.Contains(base.corpus, "deg shard=1/3 fenced_round=1") {
		t.Error("corpus manifest lacks the deg footer for shard 1")
	}
	if res.Stats.FrontierEmptied {
		t.Error("degraded run claims an emptied frontier")
	}
	if res.Stats.Fetched == 0 {
		t.Error("degraded run fetched nothing — survivors did not finish")
	}
	sum := rep.Summary(res.Degraded)
	if !strings.Contains(sum, "DEGRADED: partition 1") {
		t.Errorf("summary lacks the degraded banner:\n%s", sum)
	}

	// Degraded completion is itself deterministic: same schedule, DoP 3.
	got, _, _ := runSupervised(t, e, fleetCfg(3, 3), scfg)
	diffExports(t, "degraded DoP 3", base, got)
}

// TestStallDetectionDeterministic: slow hosts skew per-round clock
// advances; the straggler flags are pure functions of the run, so two
// runs at different DoP agree exactly.
func TestStallDetectionDeterministic(t *testing.T) {
	e := newEnv(t, 60, func(c *synthweb.Config) { c.SlowHostShare = 0.3 })
	scfg := Config{RecoveryBudget: 3, StallFactor: 1.5, Seed: 7}
	a, repA, _ := runSupervised(t, e, fleetCfg(3, 1), scfg)
	b, repB, _ := runSupervised(t, e, fleetCfg(3, 3), scfg)
	diffExports(t, "stall DoP 3", a, b)
	if fmt.Sprint(repA.Stalls) != fmt.Sprint(repB.Stalls) {
		t.Errorf("stall history diverged: %v vs %v", repA.Stalls, repB.Stalls)
	}
	if repA.Crashes != 0 {
		t.Errorf("stall run observed %d crashes, want 0", repA.Crashes)
	}
}

// TestSupervisionPillarsAndDoctor: supervision events land in the
// supervisor's own pillars (fleet.* metrics, fleet.supervisor logs,
// shard.* marks), the crawl pillars stay clean, and the merged view
// triggers the shard-crash-loop and degraded-completion doctor rules.
func TestSupervisionPillarsAndDoctor(t *testing.T) {
	e := newEnv(t, 60, nil)
	crash := &synthweb.CrashPlan{Points: []synthweb.CrashPoint{
		{Shard: 0, Round: 1, Attempts: 1},
		{Shard: 1, Round: 1, Attempts: 1000},
	}}
	got, rep, res := runSupervised(t, e, fleetCfg(3, 1),
		Config{RecoveryBudget: 1, Crash: crash, Seed: 7})

	if strings.Contains(got.logs, "fleet.supervisor") {
		t.Error("supervision records leaked into the crawl log export")
	}
	if rep.Metrics.Counter("fleet.shard.crashes") == 0 {
		t.Error("fleet.shard.crashes counter is zero")
	}
	if rep.Metrics.Counter("fleet.shard.fenced") != 1 {
		t.Errorf("fleet.shard.fenced = %d, want 1", rep.Metrics.Counter("fleet.shard.fenced"))
	}
	if !strings.Contains(rep.Logs.Logfmt(), "shard.restart") {
		t.Error("supervision log lacks shard.restart records")
	}
	if !strings.Contains(rep.Logs.Logfmt(), "shard.fenced") {
		t.Error("supervision log lacks the shard.fenced record")
	}
	marks := rep.Traces.Marks
	found := map[string]bool{}
	for _, m := range marks {
		found[m.Name] = true
	}
	if !found["shard.restart"] || !found["shard.fenced"] {
		t.Errorf("supervision trace marks %v lack shard.restart/shard.fenced", found)
	}

	diag := doctor.Diagnose(doctor.Input{
		Metrics: res.Metrics.Merge(rep.Metrics),
		Traces:  trace.Merge(res.Traces, rep.Traces),
		Logs:    evlog.Merge(res.Logs, rep.Logs),
	})
	rules := map[string]bool{}
	for _, f := range diag.Findings {
		rules[f.Rule] = true
	}
	if !rules["shard-crash-loop"] {
		t.Error("merged diagnosis lacks shard-crash-loop")
	}
	if !rules["degraded-completion"] {
		t.Error("merged diagnosis lacks degraded-completion")
	}
}
