// The PR-8 bench: the PR-6 fleet plan (a 12k-page budget against the
// ~1M-page web, 4 shards at DoP 4) run under supervision with no crash
// schedule. Supervision off the fault path costs one silent checkpoint
// per shard per round and zero virtual time, so the gated metric —
// virtual throughput (vdocs/s) — must match the unsupervised BENCH_PR6
// DoP-4 number within 2% (see bench_pr8_test.go at the repo root).
//
// The PR-9 benches rerun the same plan with fleet series sampling off and
// on. Sampling off must cost nothing (the gate in bench_pr9_test.go pins
// it within 2% of BENCH_PR8); sampling on adds one registry merge per
// round barrier, and its bench documents that price.
//
// The PR-10 benches rerun the plan once more with per-shard cost
// profiling off and on. Profiling off must cost nothing (the gate in
// bench_pr10_test.go pins it within 2% of BENCH_PR9); profiling on adds
// two atomic adds per stage per cycle plus one snapshot merge at Finish,
// and its bench documents that price.

package supervisor

import (
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/crawler/shard"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/synthweb"
)

// supervisedBenchPlan runs the shared 12k-page DoP-4 fleet plan, with or
// without the fleet series recorder and cost profilers, and reports the
// gated metrics.
func supervisedBenchPlan(b *testing.B, withSeries, withProf bool) {
	e := newEnv(b, 1, func(c *synthweb.Config) {
		*c = synthweb.ScaledConfig(1, 36)
	})
	webPages := e.newWeb().TotalPages()
	cfg := shard.Config{Crawl: crawler.DefaultConfig(), Shards: 4, Parallelism: 4}
	cfg.Crawl.MaxPages = 12_000
	b.ResetTimer()
	var res *shard.Result
	var rep *Report
	for i := 0; i < b.N; i++ {
		r, err := shard.New(cfg, e.newWeb, e.clf)
		if err != nil {
			b.Fatal(err)
		}
		if withSeries {
			r.WithSeries(series.DefaultConfig())
		}
		if withProf {
			r.WithProf(prof.Config{})
		}
		sup := New(r, Config{RecoveryBudget: DefaultRecoveryBudget, Seed: 7})
		if res, err = sup.Run(e.seeds); err != nil {
			b.Fatal(err)
		}
		rep = sup.Report()
	}
	if res.Stats.Fetched < cfg.Crawl.MaxPages {
		b.Fatalf("fetched %d pages, want the full %d budget", res.Stats.Fetched, cfg.Crawl.MaxPages)
	}
	if !rep.Quiet() {
		b.Fatalf("clean bench run drew supervisor intervention: %+v", rep)
	}
	if withSeries {
		if res.Series == nil || len(res.Series.Series) == 0 {
			b.Fatal("sampling-on bench produced no series")
		}
		var samples int64
		for _, sd := range res.Series.Series {
			samples += sd.Total
		}
		b.ReportMetric(float64(samples), "samples")
	}
	if withProf {
		if res.Profile == nil || len(res.Profile.Scopes) == 0 {
			b.Fatal("profiling-on bench produced no merged profile")
		}
		b.ReportMetric(float64(len(res.Profile.Scopes)), "scopes")
	}
	b.ReportMetric(float64(res.Stats.Fetched)*1000/float64(res.Stats.VirtualMs), "vdocs/s")
	b.ReportMetric(float64(webPages), "webpages")
	b.ReportMetric(float64(res.Stats.Fetched), "fetched")
}

func BenchmarkSupervisedShardCrawlDoP4(b *testing.B) {
	supervisedBenchPlan(b, false, false)
}

func BenchmarkSupervisedShardCrawlSeriesOffDoP4(b *testing.B) {
	supervisedBenchPlan(b, false, false)
}

func BenchmarkSupervisedShardCrawlSeriesOnDoP4(b *testing.B) {
	supervisedBenchPlan(b, true, false)
}

func BenchmarkSupervisedShardCrawlProfOffDoP4(b *testing.B) {
	supervisedBenchPlan(b, false, false)
}

func BenchmarkSupervisedShardCrawlProfOnDoP4(b *testing.B) {
	supervisedBenchPlan(b, false, true)
}
