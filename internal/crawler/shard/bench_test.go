// The PR-6 bench pair: one crawl plan (~12k pages of a ~1M-page web) run
// at DoP 1 and DoP 4. On the wall clock the speedup depends on the host
// machine; the gated metric is virtual throughput — fetched pages per
// virtual second, where a sharded fleet's virtual duration is its slowest
// shard's clock. That is the machine-independent statement of why the
// paper ran its crawl partitioned: S shards do the same work in ~1/S of
// the (virtual) time. BENCH_PR6.json pins DoP 4 >= 2x DoP 1.

package shard

import (
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/synthweb"
)

// benchEnv builds the ~1M-page universe (ScaledConfig factor 36: 25200
// hosts, ~989k regular pages) with the standard classifier and seed list.
func benchEnv(b *testing.B) *env {
	return newEnv(b, 1, func(c *synthweb.Config) {
		*c = synthweb.ScaledConfig(1, 36)
	})
}

func benchShardCrawl(b *testing.B, shards, parallelism int) {
	e := benchEnv(b)
	webPages := e.newWeb().TotalPages()
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: shards, Parallelism: parallelism}
	cfg.Crawl.MaxPages = 12_000
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		r, err := New(cfg, e.newWeb, e.clf)
		if err != nil {
			b.Fatal(err)
		}
		res = r.Run(e.seeds)
	}
	if res.Stats.Fetched < cfg.Crawl.MaxPages {
		b.Fatalf("fetched %d pages, want the full %d budget", res.Stats.Fetched, cfg.Crawl.MaxPages)
	}
	b.ReportMetric(float64(res.Stats.Fetched)*1000/float64(res.Stats.VirtualMs), "vdocs/s")
	b.ReportMetric(float64(webPages), "webpages")
	b.ReportMetric(float64(res.Stats.Fetched), "fetched")
}

func BenchmarkShardCrawlDoP1(b *testing.B) { benchShardCrawl(b, 1, 1) }

func BenchmarkShardCrawlDoP4(b *testing.B) { benchShardCrawl(b, 4, 4) }
