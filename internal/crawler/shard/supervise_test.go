package shard

import (
	"errors"
	"strings"
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// TestStepShardRecoversPanic: a panic inside a shard's crawl cycle
// surfaces as a StepPanicError and leaves no half-round mail behind.
func TestStepShardRecoversPanic(t *testing.T) {
	e := newEnv(t, 40, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 2, Parallelism: 1}
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.Seed(e.seeds)
	crashed := -1
	for _, i := range r.Active() {
		r.Shard(i).WithStepFault(func() { panic("tagger segfault") })
		err := r.StepShard(i)
		if err == nil {
			t.Fatalf("shard %d: armed panic did not surface", i)
		}
		var pe *StepPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("shard %d: error %T is not a StepPanicError", i, err)
		}
		if pe.Shard != i || pe.Value != "tagger segfault" {
			t.Errorf("shard %d: StepPanicError = %+v", i, pe)
		}
		if !strings.Contains(err.Error(), "step panicked") {
			t.Errorf("error text %q lacks panic context", err)
		}
		crashed = i
		break
	}
	if crashed < 0 {
		t.Fatal("no active shard to crash")
	}
	// The crashed shard fetched mid-cycle (the fault fires after the first
	// fetch) but its outbox must be empty: no half-round mail leaks.
	for d, box := range r.shards[crashed].outbox {
		if len(box) != 0 {
			t.Errorf("crashed shard kept %d mail items for shard %d", len(box), d)
		}
	}
}

// TestRestartShardReplaysIdentically is the determinism core of crash
// recovery: crash a shard mid-run, roll it back to its barrier
// checkpoint, re-step, finish — every export must be byte-identical to
// the fault-free run.
func TestRestartShardReplaysIdentically(t *testing.T) {
	e := newEnv(t, 60, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 1}
	cfg.Crawl.MaxPages = 300
	cfg.Crawl.FetchListSize = 40 // small cycles force a multi-round fleet
	base := runShardedCfg(t, e, cfg)
	if base.rounds < 2 {
		t.Fatalf("need a multi-round run to crash mid-run, got %d rounds", base.rounds)
	}

	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7))
	r.Seed(e.seeds)
	ckpts := make([][]byte, cfg.Shards)
	refresh := func() {
		for i := range ckpts {
			if ckpts[i], err = r.BarrierCheckpoint(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	refresh()
	crashes := 0
	for {
		active := r.Active()
		if len(active) == 0 {
			r.MarkDrained()
			break
		}
		for _, i := range active {
			// Crash the first active shard of round 1, twice in a row —
			// recovery must also recover a crash of the recovered shard.
			if r.Rounds() == 1 && i == active[0] {
				for k := 0; k < 2; k++ {
					r.Shard(i).WithStepFault(func() { panic("boom") })
					if err := r.StepShard(i); err == nil {
						t.Fatal("armed panic did not surface")
					}
					crashes++
					if err := r.RestartShard(i, ckpts[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := r.StepShard(i); err != nil {
				t.Fatal(err)
			}
		}
		r.DeliverMail()
		if !r.EndRound() {
			break
		}
		refresh()
	}
	if crashes != 2 {
		t.Fatalf("staged 2 crashes, executed %d", crashes)
	}
	res := r.Finish()
	got := exportsOf(t, res)
	diffExports(t, "crash-recovered", base, got)
}

// exportsOf renders a Result's byte surfaces (the recovered-run half of
// diffExports comparisons).
func exportsOf(t *testing.T, res *Result) exports {
	t.Helper()
	tj, err := res.Traces.JSON()
	if err != nil {
		t.Fatal(err)
	}
	lj, err := res.Logs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return exports{
		corpus:   res.CorpusManifest(),
		metrics:  res.Metrics.Text(),
		traces:   res.Traces.Text(),
		tracesJS: string(tj),
		logs:     res.Logs.Logfmt(),
		logsJS:   string(lj),
		stats:    res.Stats,
		rounds:   res.Rounds,
	}
}

// TestResumeSentinelErrors: the rejection paths return errors.Is-testable
// sentinels, wrapped with context.
func TestResumeSentinelErrors(t *testing.T) {
	e := newEnv(t, 30, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 2}
	cfg.Crawl.MaxPages = 60
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(e.seeds)
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	reshard := cfg
	reshard.Shards = 3
	if _, err := Resume(reshard, e.newWeb, e.clf, cp); !errors.Is(err, ErrReshard) {
		t.Errorf("resharding resume: err = %v, want ErrReshard", err)
	}

	selfTrain := cfg
	selfTrain.Crawl.SelfTraining = true
	if _, err := Resume(selfTrain, e.newWeb, e.clf, cp); !errors.Is(err, ErrSelfTraining) {
		t.Errorf("self-training resume: err = %v, want ErrSelfTraining", err)
	}
	if _, err := New(selfTrain, e.newWeb, e.clf); !errors.Is(err, ErrSelfTraining) {
		t.Errorf("self-training New: err = %v, want ErrSelfTraining", err)
	}

	short := *cp
	short.Crawlers = cp.Crawlers[:1]
	if _, err := Resume(cfg, e.newWeb, e.clf, &short); !errors.Is(err, ErrManifest) {
		t.Errorf("truncated manifest: err = %v, want ErrManifest", err)
	}
	bad := *cp
	bad.Fenced = []int{5}
	if _, err := Resume(cfg, e.newWeb, e.clf, &bad); !errors.Is(err, ErrManifest) {
		t.Errorf("out-of-range fence: err = %v, want ErrManifest", err)
	}
}

// TestFenceDegradesLoudly: fencing removes the shard from the fleet,
// drops (and counts) its mail, surfaces the loss on Result.Degraded and
// as a deg footer in the corpus manifest, and survives a fleet
// checkpoint round trip.
func TestFenceDegradesLoudly(t *testing.T) {
	e := newEnv(t, 60, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 1}
	cfg.Crawl.FetchListSize = 40
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.Seed(e.seeds)
	if !r.Round() {
		t.Fatal("fleet drained in one round; cannot stage fencing")
	}

	victim := r.Active()[0]
	pendingLost := r.Shard(victim).Pending()
	r.Fence(victim)
	if !r.Fenced(victim) {
		t.Fatal("Fence did not mark the shard")
	}
	r.Fence(victim) // idempotent: no duplicate degraded record
	for _, i := range r.Active() {
		if i == victim {
			t.Fatal("fenced shard still listed active")
		}
	}

	dropped := 0
	for r.Round() {
		// Run the survivors down; Round's internal DeliverMail drops the
		// fenced shard's inbound mail silently, so re-count via the
		// degraded record below.
	}
	res := r.Finish()
	if len(res.Degraded) != 1 {
		t.Fatalf("Degraded = %+v, want exactly one record", res.Degraded)
	}
	d := res.Degraded[0]
	if d.Shard != victim || d.FencedAtRound != 1 || d.PendingLost != pendingLost {
		t.Errorf("degraded record %+v, want shard=%d fenced_at=1 pending_lost=%d",
			d, victim, pendingLost)
	}
	dropped = d.MailLost
	if res.Stats.FrontierEmptied {
		t.Error("degraded run claims an emptied frontier")
	}
	manifest := res.CorpusManifest()
	if !strings.Contains(manifest, "deg shard=") {
		t.Error("corpus manifest lacks the deg footer")
	}
	footer := manifest[strings.Index(manifest, "deg shard="):]
	if !strings.Contains(footer, "pending_lost=") || !strings.Contains(footer, "mail_lost=") {
		t.Errorf("deg footer %q lacks loss accounting", strings.TrimSpace(footer))
	}
	_ = dropped

	// Fenced state survives the fleet checkpoint round trip.
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	data, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Resume(cfg, e.newWeb, e.clf, cp2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Fenced(victim) {
		t.Error("fence lost across checkpoint round trip")
	}
	res2 := r2.Finish()
	if len(res2.Degraded) != 1 || res2.Degraded[0].Shard != victim {
		t.Errorf("resumed Degraded = %+v, want the original record", res2.Degraded)
	}
}

// TestDeliverMailCountsDrops: mail addressed to a fenced shard is
// dropped and counted on its degraded record.
func TestDeliverMailCountsDrops(t *testing.T) {
	e := newEnv(t, 60, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 1}
	cfg.Crawl.FetchListSize = 40
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.Seed(e.seeds)

	// Step every shard manually so outboxes are loaded, then fence one
	// destination before the barrier delivery.
	for _, i := range r.Active() {
		if err := r.StepShard(i); err != nil {
			t.Fatal(err)
		}
	}
	victim := -1
	queued := 0
	for dst := 0; dst < cfg.Shards; dst++ {
		n := 0
		for _, s := range r.shards {
			n += len(s.outbox[dst])
		}
		if n > 0 {
			victim, queued = dst, n
			break
		}
	}
	if victim < 0 {
		t.Skip("no cross-shard mail this round; cannot exercise drops")
	}
	pendingBefore := r.Shard(victim).Pending()
	r.Fence(victim)
	if got := r.DeliverMail(); got != queued {
		t.Errorf("DeliverMail dropped %d, want %d", got, queued)
	}
	if got := r.Shard(victim).Pending(); got != pendingBefore {
		t.Errorf("fenced shard's frontier grew: %d -> %d", pendingBefore, got)
	}
	if r.degraded[0].MailLost != queued {
		t.Errorf("MailLost = %d, want %d", r.degraded[0].MailLost, queued)
	}
}
