package shard

import (
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/ie/dict"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
	"webtextie/internal/textgen"
)

// exports bundles every byte surface a crawl publishes: the corpus
// manifest, the metrics text rendering, and the trace and log exports in
// both human and machine forms.
type exports struct {
	corpus   string
	metrics  string
	traces   string
	tracesJS string
	logs     string
	logsJS   string
	stats    crawler.Stats
	rounds   int
}

func runSharded(t *testing.T, e *env, shards, parallelism, maxPages int) exports {
	t.Helper()
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: shards, Parallelism: parallelism}
	cfg.Crawl.MaxPages = maxPages
	return runShardedCfg(t, e, cfg)
}

func runShardedCfg(t *testing.T, e *env, cfg Config) exports {
	t.Helper()
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7))
	res := r.Run(e.seeds)
	tj, err := res.Traces.JSON()
	if err != nil {
		t.Fatalf("trace JSON export: %v", err)
	}
	lj, err := res.Logs.JSON()
	if err != nil {
		t.Fatalf("log JSON export: %v", err)
	}
	return exports{
		corpus:   res.CorpusManifest(),
		metrics:  res.Metrics.Text(),
		traces:   res.Traces.Text(),
		tracesJS: string(tj),
		logs:     res.Logs.Logfmt(),
		logsJS:   string(lj),
		stats:    res.Stats,
		rounds:   res.Rounds,
	}
}

func diffExports(t *testing.T, label string, want, got exports) {
	t.Helper()
	check := func(surface, w, g string) {
		if w != g {
			i := 0
			for i < len(w) && i < len(g) && w[i] == g[i] {
				i++
			}
			lo, hi := i-80, i+80
			if lo < 0 {
				lo = 0
			}
			clip := func(s string) string {
				if hi < len(s) {
					return s[lo:hi]
				}
				return s[lo:]
			}
			t.Errorf("%s: %s export differs at byte %d\nwant ...%q...\ngot  ...%q...",
				label, surface, i, clip(w), clip(g))
		}
	}
	check("corpus", want.corpus, got.corpus)
	check("metrics", want.metrics, got.metrics)
	check("trace", want.traces, got.traces)
	check("trace-json", want.tracesJS, got.tracesJS)
	check("log", want.logs, got.logs)
	check("log-json", want.logsJS, got.logsJS)
	if want.stats != got.stats {
		t.Errorf("%s: stats differ:\nwant %+v\ngot  %+v", label, want.stats, got.stats)
	}
	if want.rounds != got.rounds {
		t.Errorf("%s: rounds differ: want %d, got %d", label, want.rounds, got.rounds)
	}
}

// The tentpole property: for a fixed shard count, the degree of
// parallelism is invisible. DoP 1 and DoP N produce byte-identical merged
// corpus, metrics, trace, and log exports.
func TestShardedCrawlDeterministicAcrossDoP(t *testing.T) {
	e := newEnv(t, 120, nil)
	const shards = 4
	base := runSharded(t, e, shards, 1, 800)
	if base.corpus == "" {
		t.Fatal("DoP-1 run produced an empty corpus manifest")
	}
	if base.stats.Fetched < 800 {
		t.Fatalf("DoP-1 run fetched %d pages, want the full 800 budget", base.stats.Fetched)
	}
	for _, dop := range []int{2, shards} {
		got := runSharded(t, e, shards, dop, 800)
		diffExports(t, "DoP "+string(rune('0'+dop)), base, got)
	}
}

// Repeating the identical run must also be byte-stable (no hidden global
// state leaks between fleets).
func TestShardedCrawlDeterministicAcrossRuns(t *testing.T) {
	e := newEnv(t, 80, nil)
	a := runSharded(t, e, 3, 3, 400)
	b := runSharded(t, e, 3, 3, 400)
	diffExports(t, "rerun", a, b)
}

// A 1-shard fleet is the unsharded crawler wearing a harness: with no
// page budget (the one knob the runner enforces differently — at
// barriers instead of mid-cycle), its exports must be byte-identical to
// crawler.Run on the same universe.
func TestSingleShardMatchesPlainCrawler(t *testing.T) {
	e := newEnv(t, 40, nil)

	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 1}
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7))
	res := r.Run(e.seeds)

	rec := trace.NewRecorder(trace.DefaultConfig(7))
	plainCrawler := crawler.New(crawler.DefaultConfig(), e.newWeb(), e.clf).
		WithTrace(rec).
		WithLog(evlog.NewSink(evlog.DefaultConfig(7)))
	plain := plainCrawler.Run(e.seeds)

	if !res.Stats.FrontierEmptied || !plain.Stats.FrontierEmptied {
		t.Fatal("both runs should exhaust their frontiers")
	}
	if res.Stats != plain.Stats {
		t.Errorf("stats diverge:\nsharded %+v\nplain   %+v", res.Stats, plain.Stats)
	}
	plainRes := &Result{
		Stats:           plain.Stats,
		Relevant:        append([]crawler.CrawledPage(nil), plain.Relevant...),
		IrrelevantPages: append([]crawler.CrawledPage(nil), plain.IrrelevantPages...),
	}
	sortCorpus(plainRes.Relevant)
	sortCorpus(plainRes.IrrelevantPages)
	if res.CorpusManifest() != plainRes.CorpusManifest() {
		t.Error("corpus manifests diverge")
	}
	if res.Metrics.Text() != plain.Metrics.Text() {
		t.Error("metric exports diverge")
	}
	if res.Traces.Text() != rec.Snapshot().Text() {
		t.Error("trace exports diverge")
	}
	if res.Logs.Logfmt() != plain.Logs.Logfmt() {
		t.Error("log exports diverge")
	}
}

// Entity matchers ride along unchanged: a sharded crawl with shared
// read-only dictionaries is still DoP-invisible.
func TestShardedCrawlWithEntityMatchersDeterministic(t *testing.T) {
	e := newEnv(t, 60, nil)
	matchers := map[textgen.EntityType]*dict.Matcher{}
	for _, et := range textgen.EntityTypes {
		matchers[et] = dict.Build(et.String(), e.lex.DictionarySurfaces(et), dict.DefaultOptions())
	}
	run := func(parallelism int) string {
		cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 4, Parallelism: parallelism}
		cfg.Crawl.MaxPages = 300
		cfg.Crawl.EntityBoost = true
		cfg.Crawl.EntityBoostDensity = 0.5
		r, err := New(cfg, e.newWeb, e.clf)
		if err != nil {
			t.Fatal(err)
		}
		r.WithEntityMatchers(matchers)
		return r.Run(e.seeds).CorpusManifest()
	}
	if run(1) != run(4) {
		t.Error("entity-boosted sharded crawl is not DoP-invisible")
	}
}
