package shard

import (
	"fmt"
	"hash/fnv"
	"testing"

	"webtextie/internal/rng"
	"webtextie/internal/synthweb"
)

// hostNames enumerates a mixed population of plausible host names, seeded
// so the property tests are reproducible.
func hostNames(n int) []string {
	r := rng.New(99)
	tlds := []string{"com", "org", "edu", "gov", "net", "io"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("host-%d-%d.%s", i, r.Intn(1<<20), tlds[r.Intn(len(tlds))]))
	}
	return out
}

// The partition must be total (every host gets a shard in range) and
// stable (the same host always gets the same shard), for every shard
// count.
func TestPartitionTotalAndStable(t *testing.T) {
	hosts := hostNames(2000)
	for _, shards := range []int{1, 2, 3, 4, 7, 16, 64} {
		for _, h := range hosts {
			got := Of(h, shards)
			if got < 0 || got >= shards {
				t.Fatalf("Of(%q, %d) = %d, out of range", h, shards, got)
			}
			if again := Of(h, shards); again != got {
				t.Fatalf("Of(%q, %d) unstable: %d then %d", h, shards, got, again)
			}
		}
	}
}

// The assignment is pure in the FNV-1a hash: shard = fnv64a(host) mod N.
// Pinning the formula (not just the behaviour) keeps checkpoints portable
// — a resumed fleet must agree with the original about host ownership.
func TestPartitionIsFNVModulo(t *testing.T) {
	for _, h := range hostNames(500) {
		hash := fnv.New64a()
		hash.Write([]byte(h))
		want := int(hash.Sum64() % 8)
		if got := Of(h, 8); got != want {
			t.Fatalf("Of(%q, 8) = %d, want fnv64a mod 8 = %d", h, got, want)
		}
	}
}

// Every URL of a host must land on the host's shard — the property that
// keeps politeness, trap guards, retries, and breakers shard-local.
func TestPartitionKeysOnHostOnly(t *testing.T) {
	e := newEnv(t, 60, nil)
	web := e.newWeb()
	for _, h := range web.Hosts {
		want := Of(h.Name, 4)
		for idx := 0; idx < h.Pages; idx += 1 + h.Pages/7 {
			u := synthweb.PageURL(h.Name, idx)
			host, _, err := synthweb.SplitURL(u)
			if err != nil {
				t.Fatalf("SplitURL(%q): %v", u, err)
			}
			if got := Of(host, 4); got != want {
				t.Fatalf("URL %q hashed to shard %d, its host to %d", u, got, want)
			}
		}
	}
}

// Resharding N -> M moves exactly the hosts whose hash demands it:
// a host relocates iff fnv64a(host) mod M differs from mod N, and hosts
// that stay put stay because the arithmetic says so — there is no hidden
// order- or history-dependent state in the assignment.
func TestReshardingMovesOnlyHashDemandedHosts(t *testing.T) {
	hosts := hostNames(3000)
	pairs := [][2]int{{1, 4}, {4, 8}, {4, 5}, {8, 3}, {16, 4}}
	for _, p := range pairs {
		n, m := p[0], p[1]
		moved := 0
		for _, h := range hosts {
			hash := fnv.New64a()
			hash.Write([]byte(h))
			sum := hash.Sum64()
			before, after := Of(h, n), Of(h, m)
			wantBefore, wantAfter := int(sum%uint64(n)), int(sum%uint64(m))
			if n == 1 {
				wantBefore = 0
			}
			if m == 1 {
				wantAfter = 0
			}
			if before != wantBefore || after != wantAfter {
				t.Fatalf("reshard %d->%d: host %q assignments (%d,%d) disagree with hash (%d,%d)",
					n, m, h, before, after, wantBefore, wantAfter)
			}
			if before != after {
				moved++
			}
		}
		if m > 1 && n != m && moved == 0 {
			t.Errorf("reshard %d->%d moved no hosts out of %d — suspicious for a modulo change",
				n, m, len(hosts))
		}
	}
}

// With enough hosts, every shard of a small fleet owns a non-trivial
// slice of the population (FNV-1a spreads host names roughly uniformly).
func TestPartitionBalance(t *testing.T) {
	hosts := hostNames(4000)
	const shards = 4
	var counts [shards]int
	for _, h := range hosts {
		counts[Of(h, shards)]++
	}
	for i, c := range counts {
		if c < len(hosts)/shards/2 {
			t.Errorf("shard %d owns %d of %d hosts — worse than half the fair share", i, c, len(hosts))
		}
	}
}
