package shard

import (
	"fmt"
	"testing"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// env bundles a sharded crawl environment: a web *factory* (each shard
// needs its own universe instance — synthweb counts fetches and the
// generator draws from pooled RNGs, neither of which may be shared across
// shard goroutines), a shared read-only classifier, and a seed list.
type env struct {
	webCfg synthweb.Config
	lex    *textgen.Lexicon
	clf    *classify.NaiveBayes
	seeds  []string
}

// newWeb builds one private universe instance. Every call constructs a
// fresh lexicon and generator from the same seeds, so all instances are
// identical by construction yet share no mutable state.
func (e *env) newWeb() *synthweb.Web {
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	return synthweb.New(e.webCfg, gen)
}

func newEnv(t testing.TB, hosts int, mutate func(*synthweb.Config)) *env {
	t.Helper()
	e := &env{}
	e.webCfg = synthweb.DefaultConfig()
	e.webCfg.NumHosts = hosts
	if mutate != nil {
		mutate(&e.webCfg)
	}

	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	e.lex = lex
	e.clf = classify.New()
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		e.clf.Learn(gen.Doc(r, textgen.Medline, fmt.Sprint("m", i)).Text, classify.Relevant)
		e.clf.Learn(gen.Doc(r, textgen.Irrelevant, fmt.Sprint("w", i)).Text, classify.Irrelevant)
	}

	catalog := seeds.BuildCatalog(4, lex, seeds.CatalogSizes{General: 10, Disease: 60, Drug: 40, Gene: 80})
	e.seeds = seeds.Generate(seeds.DefaultEngines(5, e.newWeb()), catalog).SeedURLs
	return e
}

func TestRunnerRejectsBadConfig(t *testing.T) {
	e := newEnv(t, 20, nil)
	if _, err := New(Config{Crawl: crawler.DefaultConfig(), Shards: 0}, e.newWeb, e.clf); err == nil {
		t.Error("Shards=0 accepted")
	}
	cfg := crawler.DefaultConfig()
	cfg.SelfTraining = true
	if _, err := New(Config{Crawl: cfg, Shards: 2}, e.newWeb, e.clf); err == nil {
		t.Error("SelfTraining accepted in sharded mode")
	}
}

func TestShardedCrawlCoversFleet(t *testing.T) {
	e := newEnv(t, 100, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 4}
	cfg.Crawl.MaxPages = 600
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run(e.seeds)
	if !res.Stopped {
		t.Error("600-page budget did not stop the fleet")
	}
	if res.Stats.Fetched < 600 {
		t.Errorf("fetched %d pages, want >= budget 600", res.Stats.Fetched)
	}
	if over := res.Stats.Fetched - 600; over > cfg.Shards*cfg.Crawl.FetchListSize {
		t.Errorf("budget overshoot %d exceeds one round (%d)", over, cfg.Shards*cfg.Crawl.FetchListSize)
	}
	if len(res.Relevant) == 0 || len(res.IrrelevantPages) == 0 {
		t.Fatalf("merged corpora empty: %d relevant, %d irrelevant",
			len(res.Relevant), len(res.IrrelevantPages))
	}
	if res.Stats.Relevant != len(res.Relevant) || res.Stats.Irrelevant != len(res.IrrelevantPages) {
		t.Error("merged stats and corpora sizes disagree")
	}
	// More than one shard must have participated: seeds spread over many
	// hosts, and host hashing spreads hosts over shards.
	working := 0
	for _, ps := range res.PerShard {
		if ps.Stats.Fetched > 0 {
			working++
		}
	}
	if working < 2 {
		t.Errorf("only %d of %d shards fetched anything", working, cfg.Shards)
	}
	// URL-sorted canonical corpus order, no duplicates across shards.
	for i := 1; i < len(res.Relevant); i++ {
		if res.Relevant[i-1].URL >= res.Relevant[i].URL {
			t.Fatalf("merged corpus not strictly URL-sorted at %d: %q >= %q",
				i, res.Relevant[i-1].URL, res.Relevant[i].URL)
		}
	}
}
