// Package shard runs the focused crawler horizontally partitioned, the
// way the paper's production crawl ran on a cluster (§4.1): the URL space
// is split by FNV host hash into S shards, each shard owns a complete
// crawler — its own frontier, CrawlDB, politeness clocks, circuit
// breakers, metric registry, trace recorder, and event-log sink — and the
// fleet advances in BSP-style rounds. Within a round every shard with
// pending work executes one generate/fetch/update cycle; links that leave
// a shard's host partition are not injected locally but queued as mail,
// and at the round barrier all mail is delivered in deterministic
// (destination, source, discovery) order.
//
// Because a host's URLs all hash to one shard, everything host-scoped —
// robots politeness, spider-trap guards, retry backoff, circuit breakers
// — stays shard-local by construction. Shards share only read-only state
// (the trained classifier, entity dictionaries); each gets a private
// *synthweb.Web (and generator) from the caller's factory, so no mutable
// state crosses a shard boundary. That isolation is what makes the degree
// of parallelism invisible: running the same S-shard plan with 1 worker
// or S workers executes identical per-shard histories, and the merged
// corpus, metrics, trace, and log exports are byte-identical — the
// property the determinism suite pins.
package shard

import (
	"fmt"
	"hash/fnv"
	"sync"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/ie/dict"
	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// Of returns the shard owning a host: FNV-1a over the host name, modulo
// the shard count. The assignment is a pure function of (host, shards) —
// independent of discovery order, stable across runs and resumes.
func Of(host string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(host))
	return int(h.Sum64() % uint64(shards))
}

// Config controls a sharded crawl.
type Config struct {
	// Crawl is the per-shard crawler configuration. MaxPages is the
	// fleet-wide budget: it is enforced at round barriers against the sum
	// of shard fetch counts, so the fleet may overshoot by at most one
	// round (<= Shards * FetchListSize pages).
	Crawl crawler.Config
	// Shards is the number of frontier partitions S. The partitioning is
	// part of the crawl plan: changing S changes which virtual clock each
	// host's fetches land on, so byte identity holds across degrees of
	// parallelism for a fixed S, not across different S.
	Shards int
	// Parallelism is the number of OS goroutines executing shard steps
	// within a round (the DoP). It bounds resource use only — any value
	// produces identical results. 0 means Shards.
	Parallelism int
}

// mail is one cross-shard frontier insertion, queued at discovery and
// delivered at the round barrier.
type mail struct {
	URL   string
	Depth int
}

// shardState is one shard of the fleet.
type shardState struct {
	idx int
	c   *crawler.Crawler
	web *synthweb.Web
	rec *trace.Recorder
	// outbox[d] holds this round's mail for shard d in discovery order.
	outbox [][]mail
}

// Runner drives a sharded crawl in rounds.
type Runner struct {
	cfg Config
	// shardCfg is the per-shard crawler config actually installed: cfg.Crawl
	// with MaxPages zeroed (the fleet budget is enforced at barriers).
	// RestartShard rebuilds crashed shards from it.
	shardCfg crawler.Config
	clf      *classify.NaiveBayes
	shards   []*shardState

	// fenced marks shards a supervisor removed from the fleet after their
	// recovery budget ran out; degraded records why. Fenced shards never
	// step again and mail addressed to them is dropped at barriers.
	fenced   []bool
	degraded []DegradedPartition

	// traceCfg/logCfg/profCfg/matchers remember the observability and
	// extension wiring so RestartShard can re-attach it to a rebuilt shard.
	traceCfg *trace.Config
	logCfg   *evlog.Config
	profCfg  *prof.Config
	matchers map[textgen.EntityType]*dict.Matcher

	// series is the fleet-level time-series recorder (nil = sampling
	// off): one sample per BSP round of the merged shard registries,
	// stamped on the fleet makespan clock. The recorder is runner-owned —
	// shard restarts never touch it — and the sample happens post-barrier
	// in EndRound, single-threaded, so the streams are identical at any
	// degree of parallelism.
	series *series.Recorder
	// resumeSeries remembers the fleet checkpoint's series snapshot for
	// WithSeries.
	resumeSeries *series.Snapshot

	rounds   int
	stopped  bool // fleet page budget reached
	finished bool // every frontier drained
}

// New builds a sharded crawl over Shards private webs from the factory.
// The factory must return identically-constructed, mutually independent
// webs (same config and seed, fresh generator per call) — each shard
// fetches only from its own instance, so the universes must agree and
// must not share mutable state. The classifier is shared read-only;
// SelfTraining is rejected because it would make shards race on model
// updates and break the DoP-independence contract.
func New(cfg Config, newWeb func() *synthweb.Web, clf *classify.NaiveBayes) (*Runner, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.Crawl.SelfTraining {
		return nil, fmt.Errorf("shard: %w", ErrSelfTraining)
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.Shards
	}
	r := newRunner(cfg, clf)
	for i := range r.shards {
		s := &shardState{idx: i, web: newWeb(), outbox: make([][]mail, cfg.Shards)}
		s.c = crawler.New(r.shardCfg, s.web, clf)
		r.installRouter(s)
		r.shards[i] = s
	}
	return r, nil
}

// newRunner builds the fleet shell New and Resume share. Callers fill in
// r.shards.
func newRunner(cfg Config, clf *classify.NaiveBayes) *Runner {
	shardCfg := cfg.Crawl
	shardCfg.MaxPages = 0 // the fleet budget is enforced at round barriers
	return &Runner{
		cfg:      cfg,
		shardCfg: shardCfg,
		clf:      clf,
		shards:   make([]*shardState, cfg.Shards),
		fenced:   make([]bool, cfg.Shards),
	}
}

// installRouter points a shard's crawler at the fleet: URLs whose host
// hashes elsewhere leave the local frontier path and queue as mail.
func (r *Runner) installRouter(s *shardState) {
	shards := r.cfg.Shards
	s.c.WithRouter(func(url, host string, depth int) bool {
		d := Of(host, shards)
		if d == s.idx {
			return false
		}
		s.outbox[d] = append(s.outbox[d], mail{URL: url, Depth: depth})
		return true
	})
}

// WithTrace attaches one trace recorder per shard, all bounded by cfg.
// Shards trace disjoint URL populations, so per-shard recorders with the
// same seed mint non-colliding IDs; Finish merges the snapshots in shard
// order. On a resumed runner each recorder loads its shard's checkpoint
// snapshot. Returns the runner for chaining.
func (r *Runner) WithTrace(cfg trace.Config) *Runner {
	r.traceCfg = &cfg
	for _, s := range r.shards {
		s.rec = trace.NewRecorder(cfg)
		s.c.WithTrace(s.rec)
	}
	return r
}

// WithLog attaches one event-log sink per shard, all bounded by cfg.
// Finish merges the snapshots into one canonical export. On a resumed
// runner each sink loads its shard's checkpoint snapshot. Returns the
// runner for chaining.
func (r *Runner) WithLog(cfg evlog.Config) *Runner {
	r.logCfg = &cfg
	for _, s := range r.shards {
		s.c.WithLog(evlog.NewSink(cfg))
	}
	return r
}

// WithSeries attaches a fleet-level time-series recorder: every round
// barrier folds the per-shard metric registries into one snapshot
// (obs.Snapshot.Merge in shard order) and records it as a single sample
// at the fleet makespan — the maximum shard virtual clock — plus the
// derived fleet harvest-rate series. Sampling runs post-barrier on one
// goroutine, so exports are byte-identical across DoP 1 vs N; on a
// resumed runner the fleet checkpoint's series snapshot is loaded first.
// Returns the runner for chaining.
func (r *Runner) WithSeries(cfg series.Config) *Runner {
	r.series = series.New(cfg)
	if r.resumeSeries != nil {
		r.series.Load(r.resumeSeries)
	}
	return r
}

// SeriesRecorder returns the fleet recorder (nil when sampling is off).
func (r *Runner) SeriesRecorder() *series.Recorder { return r.series }

// WithProf attaches one cost profiler per shard, all with cfg. Each
// shard attributes its own virtual-clock stage costs — virtual time is
// shard-scoped, so a fleet-level profiler would race and double-count —
// and Finish folds the snapshots with prof.Merge in shard order, making
// the merged profile byte-identical across DoP 1 vs N for a fixed shard
// count. On a resumed runner each profiler loads its shard's checkpoint
// snapshot. Returns the runner for chaining.
func (r *Runner) WithProf(cfg prof.Config) *Runner {
	r.profCfg = &cfg
	for _, s := range r.shards {
		s.c.WithProf(prof.New(cfg))
	}
	return r
}

// sampleSeries records one fleet sample at the current round barrier.
// Fenced shards still contribute: their last barrier state is genuinely
// part of the merged exports.
func (r *Runner) sampleSeries() {
	var merged obs.Snapshot
	var makespanMs int64
	var relevant, irrelevant int
	for i, s := range r.shards {
		if i == 0 {
			merged = s.c.MetricsSnapshot()
		} else {
			merged = merged.Merge(s.c.MetricsSnapshot())
		}
		st := s.c.CurrentStats()
		if st.VirtualMs > makespanMs {
			makespanMs = st.VirtualMs
		}
		relevant += st.Relevant
		irrelevant += st.Irrelevant
	}
	r.series.Sample(makespanMs, merged)
	rate := 0.0
	if relevant+irrelevant > 0 {
		rate = float64(relevant) / float64(relevant+irrelevant)
	}
	r.series.Observe("crawler.harvest.rate.docs", makespanMs, rate)
	r.series.Observe("fleet.rounds", makespanMs, float64(r.rounds))
}

// WithEntityMatchers shares the read-only entity dictionaries with every
// shard (the EntityBoost extension). Returns the runner for chaining.
func (r *Runner) WithEntityMatchers(m map[textgen.EntityType]*dict.Matcher) *Runner {
	r.matchers = m
	for _, s := range r.shards {
		s.c.WithEntityMatchers(m)
	}
	return r
}

// Shard returns shard i's crawler (tests inspect per-shard state).
// After RestartShard the previous crawler is gone — callers must not
// cache the pointer across rounds under supervision.
func (r *Runner) Shard(i int) *crawler.Crawler { return r.shards[i].c }

// Shards returns the partition count S.
func (r *Runner) Shards() int { return r.cfg.Shards }

// Rounds returns the number of completed rounds.
func (r *Runner) Rounds() int { return r.rounds }

// Stopped reports whether the fleet page budget ended the crawl (false
// means the frontiers drained).
func (r *Runner) Stopped() bool { return r.stopped }

// Seed partitions the seed list across shards by host hash, preserving
// list order within each shard. URLs that do not parse go to shard 0,
// whose injector discards them — the same silent drop an unsharded crawl
// applies.
func (r *Runner) Seed(seedURLs []string) {
	for _, u := range seedURLs {
		d := 0
		if host, _, err := synthweb.SplitURL(u); err == nil {
			d = Of(host, r.cfg.Shards)
		}
		r.shards[d].c.InjectURL(u, 0)
	}
}

// Round executes one fleet superstep — every shard with pending work runs
// one crawl cycle, then all cross-shard mail is delivered — and reports
// whether the crawl should continue. Steps run on up to Parallelism
// goroutines; shards touch no shared mutable state, so the interleaving
// cannot influence any shard's history.
//
// Round is the unsupervised path: a panic in any shard propagates and
// kills the whole fleet. The supervisor package composes the same
// primitives (Active, StepShard, DeliverMail, EndRound) with panic
// recovery and checkpoint-based restart instead.
func (r *Runner) Round() bool {
	if r.stopped || r.finished {
		return false
	}
	active := r.Active()
	if len(active) == 0 {
		r.finished = true
		return false
	}
	r.ParallelOver(active, func(i int) { r.shards[i].c.Step() })
	r.DeliverMail()
	return r.EndRound()
}

// Active returns the indices of shards that should step this round:
// unfenced, with pending frontier work. Ascending order.
func (r *Runner) Active() []int {
	var active []int
	for i, s := range r.shards {
		if !r.fenced[i] && s.c.Pending() > 0 {
			active = append(active, i)
		}
	}
	return active
}

// StepShard runs one crawl cycle on shard i, converting a panic anywhere
// in the cycle into an error. On panic the shard's crawler is left
// mid-cycle — internally inconsistent, holding partial state — and its
// outbox may hold mail from the aborted cycle; the outbox is cleared here
// (so no half-round mail ever leaks to the fleet) and the caller must
// either RestartShard from a checkpoint or Fence the shard before the
// fleet advances.
func (r *Runner) StepShard(i int) (err error) {
	s := r.shards[i]
	defer func() {
		if v := recover(); v != nil {
			for d := range s.outbox {
				s.outbox[d] = s.outbox[d][:0]
			}
			err = &StepPanicError{Shard: i, Value: v}
		}
	}()
	s.c.Step()
	return nil
}

// StepPanicError reports a panic captured inside one shard's crawl cycle.
type StepPanicError struct {
	Shard int
	Value any // the recovered panic value
}

func (e *StepPanicError) Error() string {
	return fmt.Sprintf("shard %d: step panicked: %v", e.Shard, e.Value)
}

// ParallelOver runs fn(i) for each listed shard index across the worker
// pool and barriers on completion. Shard indices are disjoint and shards
// share no mutable state, so fn invocations cannot race as long as each
// touches only its own shard.
func (r *Runner) ParallelOver(indices []int, fn func(i int)) {
	workers := r.cfg.Parallelism
	if workers > len(indices) {
		workers = len(indices)
	}
	if workers <= 1 {
		for _, i := range indices {
			fn(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for _, i := range indices {
		work <- i
	}
	close(work)
	wg.Wait()
}

// BarrierCheckpoint freezes shard i silently — no trace mark, no
// checkpoint.saved record — and returns the serialized checkpoint. This
// is the supervisor's per-round restart point; it must not perturb the
// exports, or a supervised fault-free run would diverge from an
// unsupervised one.
func (r *Runner) BarrierCheckpoint(i int) ([]byte, error) {
	return r.shards[i].c.CheckpointSilent().Marshal()
}

// RestartShard discards shard i's crawler and rebuilds it from a
// serialized checkpoint taken by BarrierCheckpoint (or Checkpoint). The
// shard's web is reused — its only mutations (fetch counter, lazy page
// cache) are invisible to crawl output — and the fleet's router,
// matchers, trace recorder, and log sink are re-attached, with the
// recorder and sink reloading the checkpoint's snapshots. Because shard
// state is pure in (config, checkpoint), the rebuilt shard replays the
// rounds after the checkpoint exactly as the crashed one would have.
// Safe to call concurrently for distinct shards.
func (r *Runner) RestartShard(i int, ckpt []byte) error {
	cp, err := crawler.UnmarshalCheckpoint(ckpt)
	if err != nil {
		return fmt.Errorf("shard %d: restart: %w", i, err)
	}
	s := r.shards[i]
	c, err := crawler.Resume(r.shardCfg, s.web, r.clf, cp)
	if err != nil {
		return fmt.Errorf("shard %d: restart: %w", i, err)
	}
	s.c = c
	for d := range s.outbox {
		s.outbox[d] = s.outbox[d][:0]
	}
	r.installRouter(s)
	if r.traceCfg != nil {
		s.rec = trace.NewRecorder(*r.traceCfg)
		c.WithTrace(s.rec)
	}
	if r.logCfg != nil {
		c.WithLog(evlog.NewSink(*r.logCfg))
	}
	if r.profCfg != nil {
		c.WithProf(prof.New(*r.profCfg))
	}
	if r.matchers != nil {
		c.WithEntityMatchers(r.matchers)
	}
	return nil
}

// Fence permanently removes shard i from the fleet: it never steps
// again, mail addressed to it is dropped at barriers, and the loss is
// recorded so Result and CorpusManifest can report the missing
// partition instead of silently shrinking the corpus. The caller should
// first RestartShard from the last good checkpoint so the fenced
// shard's contribution to the merged corpus is a consistent barrier
// state, not a half-stepped one.
func (r *Runner) Fence(i int) {
	if r.fenced[i] {
		return
	}
	r.fenced[i] = true
	r.degraded = append(r.degraded, DegradedPartition{
		Shard:         i,
		FencedAtRound: r.rounds,
		PendingLost:   r.shards[i].c.Pending(),
	})
}

// Fenced reports whether shard i has been fenced.
func (r *Runner) Fenced(i int) bool { return r.fenced[i] }

// DeliverMail drains every outbox in (destination, source, discovery)
// order — a fixed order, so frontier insertion sequences are identical
// across runs and degrees of parallelism. Mail addressed to a fenced
// shard is dropped; the count of dropped insertions is returned and
// accumulated on the destination's DegradedPartition record.
func (r *Runner) DeliverMail() int {
	dropped := 0
	for dst := range r.shards {
		for _, src := range r.shards {
			if r.fenced[dst] {
				if n := len(src.outbox[dst]); n > 0 {
					dropped += n
					r.addMailLost(dst, n)
				}
			} else {
				for _, m := range src.outbox[dst] {
					r.shards[dst].c.InjectURL(m.URL, m.Depth)
				}
			}
			src.outbox[dst] = src.outbox[dst][:0]
		}
	}
	return dropped
}

func (r *Runner) addMailLost(shard, n int) {
	for j := range r.degraded {
		if r.degraded[j].Shard == shard {
			r.degraded[j].MailLost += n
			return
		}
	}
}

// EndRound closes the current superstep: advances the round counter,
// enforces the fleet page budget, and checks whether any live shard
// still has work. Returns true if the crawl should continue.
func (r *Runner) EndRound() bool {
	r.rounds++
	if r.series != nil {
		r.sampleSeries()
	}
	if max := r.cfg.Crawl.MaxPages; max > 0 && r.totalFetched() >= max {
		r.stopped = true
		return false
	}
	for i, s := range r.shards {
		if !r.fenced[i] && s.c.Pending() > 0 {
			return true
		}
	}
	r.finished = true
	return false
}

// Done reports whether the crawl has ended (budget reached or all live
// frontiers drained).
func (r *Runner) Done() bool { return r.stopped || r.finished }

// MarkDrained records that the fleet found no active shard at round
// entry (supervised loops call this where Round sets finished).
func (r *Runner) MarkDrained() { r.finished = true }

// totalFetched sums fetched pages across the fleet (read at barriers).
// Fenced shards still count: their pages were genuinely fetched and are
// genuinely in the merged corpus.
func (r *Runner) totalFetched() int {
	total := 0
	for _, s := range r.shards {
		total += s.c.CurrentStats().Fetched
	}
	return total
}

// Run executes the sharded crawl to completion: seed, rounds until the
// budget or the frontiers end it, merge.
func (r *Runner) Run(seedURLs []string) *Result {
	r.Seed(seedURLs)
	for r.Round() {
	}
	return r.Finish()
}
