// Package shard runs the focused crawler horizontally partitioned, the
// way the paper's production crawl ran on a cluster (§4.1): the URL space
// is split by FNV host hash into S shards, each shard owns a complete
// crawler — its own frontier, CrawlDB, politeness clocks, circuit
// breakers, metric registry, trace recorder, and event-log sink — and the
// fleet advances in BSP-style rounds. Within a round every shard with
// pending work executes one generate/fetch/update cycle; links that leave
// a shard's host partition are not injected locally but queued as mail,
// and at the round barrier all mail is delivered in deterministic
// (destination, source, discovery) order.
//
// Because a host's URLs all hash to one shard, everything host-scoped —
// robots politeness, spider-trap guards, retry backoff, circuit breakers
// — stays shard-local by construction. Shards share only read-only state
// (the trained classifier, entity dictionaries); each gets a private
// *synthweb.Web (and generator) from the caller's factory, so no mutable
// state crosses a shard boundary. That isolation is what makes the degree
// of parallelism invisible: running the same S-shard plan with 1 worker
// or S workers executes identical per-shard histories, and the merged
// corpus, metrics, trace, and log exports are byte-identical — the
// property the determinism suite pins.
package shard

import (
	"fmt"
	"hash/fnv"
	"sync"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/ie/dict"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// Of returns the shard owning a host: FNV-1a over the host name, modulo
// the shard count. The assignment is a pure function of (host, shards) —
// independent of discovery order, stable across runs and resumes.
func Of(host string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(host))
	return int(h.Sum64() % uint64(shards))
}

// Config controls a sharded crawl.
type Config struct {
	// Crawl is the per-shard crawler configuration. MaxPages is the
	// fleet-wide budget: it is enforced at round barriers against the sum
	// of shard fetch counts, so the fleet may overshoot by at most one
	// round (<= Shards * FetchListSize pages).
	Crawl crawler.Config
	// Shards is the number of frontier partitions S. The partitioning is
	// part of the crawl plan: changing S changes which virtual clock each
	// host's fetches land on, so byte identity holds across degrees of
	// parallelism for a fixed S, not across different S.
	Shards int
	// Parallelism is the number of OS goroutines executing shard steps
	// within a round (the DoP). It bounds resource use only — any value
	// produces identical results. 0 means Shards.
	Parallelism int
}

// mail is one cross-shard frontier insertion, queued at discovery and
// delivered at the round barrier.
type mail struct {
	URL   string
	Depth int
}

// shardState is one shard of the fleet.
type shardState struct {
	idx int
	c   *crawler.Crawler
	web *synthweb.Web
	rec *trace.Recorder
	// outbox[d] holds this round's mail for shard d in discovery order.
	outbox [][]mail
}

// Runner drives a sharded crawl in rounds.
type Runner struct {
	cfg    Config
	clf    *classify.NaiveBayes
	shards []*shardState

	rounds   int
	stopped  bool // fleet page budget reached
	finished bool // every frontier drained
}

// New builds a sharded crawl over Shards private webs from the factory.
// The factory must return identically-constructed, mutually independent
// webs (same config and seed, fresh generator per call) — each shard
// fetches only from its own instance, so the universes must agree and
// must not share mutable state. The classifier is shared read-only;
// SelfTraining is rejected because it would make shards race on model
// updates and break the DoP-independence contract.
func New(cfg Config, newWeb func() *synthweb.Web, clf *classify.NaiveBayes) (*Runner, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.Crawl.SelfTraining {
		return nil, fmt.Errorf("shard: SelfTraining mutates the shared classifier; run it unsharded")
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = cfg.Shards
	}
	r := &Runner{cfg: cfg, clf: clf, shards: make([]*shardState, cfg.Shards)}
	shardCfg := cfg.Crawl
	shardCfg.MaxPages = 0 // the fleet budget is enforced at round barriers
	for i := range r.shards {
		s := &shardState{idx: i, web: newWeb(), outbox: make([][]mail, cfg.Shards)}
		s.c = crawler.New(shardCfg, s.web, clf)
		r.installRouter(s)
		r.shards[i] = s
	}
	return r, nil
}

// installRouter points a shard's crawler at the fleet: URLs whose host
// hashes elsewhere leave the local frontier path and queue as mail.
func (r *Runner) installRouter(s *shardState) {
	shards := r.cfg.Shards
	s.c.WithRouter(func(url, host string, depth int) bool {
		d := Of(host, shards)
		if d == s.idx {
			return false
		}
		s.outbox[d] = append(s.outbox[d], mail{URL: url, Depth: depth})
		return true
	})
}

// WithTrace attaches one trace recorder per shard, all bounded by cfg.
// Shards trace disjoint URL populations, so per-shard recorders with the
// same seed mint non-colliding IDs; Finish merges the snapshots in shard
// order. On a resumed runner each recorder loads its shard's checkpoint
// snapshot. Returns the runner for chaining.
func (r *Runner) WithTrace(cfg trace.Config) *Runner {
	for _, s := range r.shards {
		s.rec = trace.NewRecorder(cfg)
		s.c.WithTrace(s.rec)
	}
	return r
}

// WithLog attaches one event-log sink per shard, all bounded by cfg.
// Finish merges the snapshots into one canonical export. On a resumed
// runner each sink loads its shard's checkpoint snapshot. Returns the
// runner for chaining.
func (r *Runner) WithLog(cfg evlog.Config) *Runner {
	for _, s := range r.shards {
		s.c.WithLog(evlog.NewSink(cfg))
	}
	return r
}

// WithEntityMatchers shares the read-only entity dictionaries with every
// shard (the EntityBoost extension). Returns the runner for chaining.
func (r *Runner) WithEntityMatchers(m map[textgen.EntityType]*dict.Matcher) *Runner {
	for _, s := range r.shards {
		s.c.WithEntityMatchers(m)
	}
	return r
}

// Shard returns shard i's crawler (tests inspect per-shard state).
func (r *Runner) Shard(i int) *crawler.Crawler { return r.shards[i].c }

// Rounds returns the number of completed rounds.
func (r *Runner) Rounds() int { return r.rounds }

// Stopped reports whether the fleet page budget ended the crawl (false
// means the frontiers drained).
func (r *Runner) Stopped() bool { return r.stopped }

// Seed partitions the seed list across shards by host hash, preserving
// list order within each shard. URLs that do not parse go to shard 0,
// whose injector discards them — the same silent drop an unsharded crawl
// applies.
func (r *Runner) Seed(seedURLs []string) {
	for _, u := range seedURLs {
		d := 0
		if host, _, err := synthweb.SplitURL(u); err == nil {
			d = Of(host, r.cfg.Shards)
		}
		r.shards[d].c.InjectURL(u, 0)
	}
}

// Round executes one fleet superstep — every shard with pending work runs
// one crawl cycle, then all cross-shard mail is delivered — and reports
// whether the crawl should continue. Steps run on up to Parallelism
// goroutines; shards touch no shared mutable state, so the interleaving
// cannot influence any shard's history.
func (r *Runner) Round() bool {
	if r.stopped || r.finished {
		return false
	}
	var active []*shardState
	for _, s := range r.shards {
		if s.c.Pending() > 0 {
			active = append(active, s)
		}
	}
	if len(active) == 0 {
		r.finished = true
		return false
	}
	r.runSteps(active)
	r.deliverMail()
	r.rounds++
	if max := r.cfg.Crawl.MaxPages; max > 0 && r.totalFetched() >= max {
		r.stopped = true
		return false
	}
	for _, s := range r.shards {
		if s.c.Pending() > 0 {
			return true
		}
	}
	r.finished = true
	return false
}

// runSteps executes one Step per active shard across the worker pool and
// barriers on completion.
func (r *Runner) runSteps(active []*shardState) {
	workers := r.cfg.Parallelism
	if workers > len(active) {
		workers = len(active)
	}
	if workers <= 1 {
		for _, s := range active {
			s.c.Step()
		}
		return
	}
	work := make(chan *shardState)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range work {
				s.c.Step()
			}
		}()
	}
	for _, s := range active {
		work <- s
	}
	close(work)
	wg.Wait()
}

// deliverMail drains every outbox in (destination, source, discovery)
// order — a fixed order, so frontier insertion sequences are identical
// across runs and degrees of parallelism.
func (r *Runner) deliverMail() {
	for dst := range r.shards {
		for _, src := range r.shards {
			for _, m := range src.outbox[dst] {
				r.shards[dst].c.InjectURL(m.URL, m.Depth)
			}
			src.outbox[dst] = src.outbox[dst][:0]
		}
	}
}

// totalFetched sums fetched pages across the fleet (read at barriers).
func (r *Runner) totalFetched() int {
	total := 0
	for _, s := range r.shards {
		total += s.c.CurrentStats().Fetched
	}
	return total
}

// Run executes the sharded crawl to completion: seed, rounds until the
// budget or the frontiers end it, merge.
func (r *Runner) Run(seedURLs []string) *Result {
	r.Seed(seedURLs)
	for r.Round() {
	}
	return r.Finish()
}
