package shard

import (
	"testing"

	"webtextie/internal/crawler"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
	"webtextie/internal/synthweb"
)

// finishExports renders a finished fleet's byte surfaces.
func finishExports(t *testing.T, res *Result) exports {
	t.Helper()
	out := exports{
		corpus:  res.CorpusManifest(),
		metrics: res.Metrics.Text(),
		stats:   res.Stats,
		rounds:  res.Rounds,
	}
	if res.Traces != nil {
		out.traces = res.Traces.Text()
		tj, err := res.Traces.JSON()
		if err != nil {
			t.Fatalf("trace JSON export: %v", err)
		}
		out.tracesJS = string(tj)
	}
	if res.Logs != nil {
		out.logs = res.Logs.Logfmt()
		lj, err := res.Logs.JSON()
		if err != nil {
			t.Fatalf("log JSON export: %v", err)
		}
		out.logsJS = string(lj)
	}
	return out
}

// The satellite property: kill the fleet at a round barrier, resume from
// the serialized manifest, and the merged corpus, metrics, trace, and
// log exports are byte-identical to an uninterrupted run — faults on,
// observability on.
func TestShardCheckpointResumeByteIdentical(t *testing.T) {
	e := newEnv(t, 40, func(c *synthweb.Config) {
		c.FailureRate = 0.25
		c.RateLimitShare = 0.2
		c.TruncateRate = 0.05
	})
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 3, Parallelism: 3}
	cfg.Crawl.MaxPages = 600
	// Small fetch lists stretch the crawl over many rounds so there is a
	// mid-crawl barrier to interrupt at.
	cfg.Crawl.FetchListSize = 60

	newRunner := func() *Runner {
		r, err := New(cfg, e.newWeb, e.clf)
		if err != nil {
			t.Fatal(err)
		}
		return r.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7))
	}

	// Uninterrupted reference run.
	want := finishExports(t, newRunner().Run(e.seeds))

	// Interrupted run: stop after 3 rounds, serialize, "kill the fleet",
	// resume from bytes, crawl to the end.
	first := newRunner()
	first.Seed(e.seeds)
	for i := 0; i < 3; i++ {
		if !first.Round() {
			t.Fatalf("fleet finished in %d rounds — too small to interrupt", i)
		}
	}
	cp, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	data, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(cfg, e.newWeb, e.clf, restored)
	if err != nil {
		t.Fatal(err)
	}
	resumed.WithTrace(trace.DefaultConfig(7)).WithLog(evlog.DefaultConfig(7))
	for resumed.Round() {
	}
	got := finishExports(t, resumed.Finish())

	diffExports(t, "resumed", want, got)
}

// A resumed fleet must also still be DoP-invisible: resume with a
// different parallelism than the original run and the exports must not
// move.
func TestShardResumeWithDifferentParallelism(t *testing.T) {
	e := newEnv(t, 30, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 4, Parallelism: 4}
	cfg.Crawl.MaxPages = 400
	cfg.Crawl.FetchListSize = 50

	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	want := finishExports(t, r.Run(e.seeds))

	first, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	first.Seed(e.seeds)
	first.Round()
	first.Round()
	cp, err := first.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	serialCfg := cfg
	serialCfg.Parallelism = 1
	resumed, err := Resume(serialCfg, e.newWeb, e.clf, cp)
	if err != nil {
		t.Fatal(err)
	}
	for resumed.Round() {
	}
	diffExports(t, "serial resume", want, finishExports(t, resumed.Finish()))
}

func TestShardResumeValidation(t *testing.T) {
	e := newEnv(t, 20, nil)
	cfg := Config{Crawl: crawler.DefaultConfig(), Shards: 2}
	r, err := New(cfg, e.newWeb, e.clf)
	if err != nil {
		t.Fatal(err)
	}
	r.Seed(e.seeds)
	r.Round()
	cp, err := r.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Shards = 3
	if _, err := Resume(bad, e.newWeb, e.clf, cp); err == nil {
		t.Error("resharding 2 -> 3 on resume accepted; want error")
	}
	selfTrain := cfg
	selfTrain.Crawl.SelfTraining = true
	if _, err := Resume(selfTrain, e.newWeb, e.clf, cp); err == nil {
		t.Error("SelfTraining accepted on resume; want error")
	}
	truncated := *cp
	truncated.Crawlers = cp.Crawlers[:1]
	if _, err := Resume(cfg, e.newWeb, e.clf, &truncated); err == nil {
		t.Error("manifest with missing shard states accepted; want error")
	}
	if _, err := UnmarshalCheckpoint([]byte("{not json")); err == nil {
		t.Error("corrupt manifest accepted; want error")
	}
}
