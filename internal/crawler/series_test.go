package crawler

import (
	"bytes"
	"strings"
	"testing"

	"webtextie/internal/obs/series"
)

// runWithSeries executes a budgeted chaos crawl with per-cycle sampling
// and returns the series exports.
func runWithSeries(t *testing.T, maxPages int) (csv string, js []byte, res *Result) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxPages = maxPages
	p := chaosPipeline(t, 50, chaosWeb)
	c := New(cfg, p.web, p.clf).WithSeries(series.New(series.DefaultConfig()))
	res = c.Run(defaultSeeds(t, p))
	if res.Series == nil {
		t.Fatal("crawl with a series recorder produced no series snapshot")
	}
	js, err := res.Series.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return res.Series.CSV(), js, res
}

// TestSeriesExportDeterministic: identical crawls sample identical series.
func TestSeriesExportDeterministic(t *testing.T) {
	csvA, jsA, resA := runWithSeries(t, 250)
	csvB, jsB, _ := runWithSeries(t, 250)
	if csvA != csvB {
		t.Error("series CSV exports diverge across identical runs")
	}
	if !bytes.Equal(jsA, jsB) {
		t.Error("series JSON exports diverge across identical runs")
	}
	// The sample streams really are per-cycle: every counter series holds
	// one point per cycle (none evicted at this scale).
	fetchOK := resA.Series.Get("crawler.fetch.ok")
	if fetchOK == nil {
		t.Fatal("crawler.fetch.ok series missing")
	}
	if int(fetchOK.Total) != resA.Stats.Cycles {
		t.Errorf("crawler.fetch.ok has %d samples for %d cycles", fetchOK.Total, resA.Stats.Cycles)
	}
	if hr := resA.Series.Get("crawler.harvest.rate.docs"); hr == nil {
		t.Error("derived harvest-rate series missing")
	} else if v, _ := hr.Last(); v.V != resA.Stats.HarvestRateDocs() {
		t.Errorf("final harvest-rate sample %v != Stats.HarvestRateDocs %v", v.V, resA.Stats.HarvestRateDocs())
	}
	// Timestamps ride the virtual clock, monotonically nondecreasing.
	for i := 1; i < len(fetchOK.Points); i++ {
		if fetchOK.Points[i].AtMs < fetchOK.Points[i-1].AtMs {
			t.Fatalf("series timestamps regress at %d: %v", i, fetchOK.Points[i-1:i+1])
		}
	}
}

// TestSeriesSamplingInvisibleToMetrics: attaching a recorder must not
// change the final metric export — sampleSeries refreshes only gauges
// that Finish overwrites anyway.
func TestSeriesSamplingInvisibleToMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 200
	p1 := chaosPipeline(t, 40, chaosWeb)
	plain := New(cfg, p1.web, p1.clf).Run(defaultSeeds(t, p1))
	p2 := chaosPipeline(t, 40, chaosWeb)
	sampled := New(cfg, p2.web, p2.clf).
		WithSeries(series.New(series.DefaultConfig())).
		Run(defaultSeeds(t, p2))
	if plain.Metrics.Text() != sampled.Metrics.Text() {
		t.Error("metric exports diverge when sampling is on")
	}
	if plain.Stats != sampled.Stats {
		t.Error("stats diverge when sampling is on")
	}
}

// TestCheckpointResumeSeriesExportIdentical: a crawl interrupted after a
// few cycles and resumed in fresh objects exports byte-identical series —
// the raw rings, rollup tiers, and partial accumulators all ride the
// checkpoint.
func TestCheckpointResumeSeriesExportIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 250
	seedsOf := func(p *pipeline) []string { return defaultSeeds(t, p) }
	// A small config so rollup flushes and a partial accumulator are both
	// in play at the cut point.
	sCfg := series.Config{RawCap: 8, RollupEvery: 2, Tiers: 2, TierCap: 4}

	p1 := chaosPipeline(t, 50, chaosWeb)
	ref := New(cfg, p1.web, p1.clf).WithSeries(series.New(sCfg)).Run(seedsOf(p1))

	p2 := chaosPipeline(t, 50, chaosWeb)
	c := New(cfg, p2.web, p2.clf).WithSeries(series.New(sCfg))
	c.Seed(seedsOf(p2))
	for i := 0; i < 3 && c.Step(); i++ {
	}
	raw, err := c.Checkpoint().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"series"`) {
		t.Fatal("checkpoint JSON carries no series snapshot")
	}
	cp, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	p3 := chaosPipeline(t, 50, chaosWeb)
	rc, err := Resume(cfg, p3.web, p3.clf, cp)
	if err != nil {
		t.Fatal(err)
	}
	rc.WithSeries(series.New(series.DefaultConfig())) // Load adopts the checkpoint's config
	for rc.Step() {
	}
	got := rc.Finish()

	if ref.Series.CSV() != got.Series.CSV() {
		t.Fatalf("series CSV exports diverge after resume:\n--- uninterrupted\n%s\n--- resumed\n%s",
			ref.Series.CSV(), got.Series.CSV())
	}
	refJSON, err := ref.Series.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.Series.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("series JSON exports diverge after resume")
	}
	if len(ref.Series.Series) == 0 {
		t.Fatal("reference run retained no series")
	}
}
