package crawler

import (
	"bytes"
	"strings"
	"testing"

	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
)

// runWithProf executes a budgeted chaos crawl with the profiler attached
// and returns the result (Profile is always non-nil).
func runWithProf(t *testing.T, maxPages int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxPages = maxPages
	p := chaosPipeline(t, 50, chaosWeb)
	c := New(cfg, p.web, p.clf).WithProf(prof.New(prof.Config{}))
	res := c.Run(defaultSeeds(t, p))
	if res.Profile == nil {
		t.Fatal("crawl with a profiler produced no profile snapshot")
	}
	return res
}

// TestProfileStageAccounting pins the crawl's cost attribution: every
// stage scope is populated, all virtual time lands in the three costed
// stages, and the wall lane brackets cycles without touching the
// virtual lane.
func TestProfileStageAccounting(t *testing.T) {
	res := runWithProf(t, 250)
	s := res.Profile

	fetch := s.Get("crawl.cycle.fetch")
	if fetch == nil || fetch.Calls == 0 || fetch.VirtualMs == 0 {
		t.Fatalf("fetch scope unpopulated: %+v", fetch)
	}
	// One virtual-lane call per fetch attempt, successful or not.
	if want := res.Stats.Fetched + res.Stats.FetchErrors; fetch.Calls != int64(want) {
		t.Errorf("fetch calls = %d, want %d fetch attempts", fetch.Calls, want)
	}
	filter := s.Get("crawl.cycle.filter")
	classify := s.Get("crawl.cycle.classify")
	if filter == nil || classify == nil || classify.Calls == 0 {
		t.Fatalf("filter/classify scopes unpopulated: %+v %+v", filter, classify)
	}
	// Every page past the filters was classified.
	if want := res.Stats.Relevant + res.Stats.Irrelevant; classify.Calls != int64(want) {
		t.Errorf("classify calls = %d, want %d classified pages", classify.Calls, want)
	}

	// The export total is exactly the sum of scope self times, and the
	// cycle scope's cumulative time covers its stage children.
	exp := s.Export()
	var sum int64
	for _, es := range exp.Scopes {
		sum += es.SelfMs
	}
	if exp.TotalVirtualMs != sum {
		t.Errorf("export total %d != scope self sum %d", exp.TotalVirtualMs, sum)
	}
	var cycle *prof.ExportScope
	for i := range exp.Scopes {
		if exp.Scopes[i].Name == "crawl.cycle" {
			cycle = &exp.Scopes[i]
		}
	}
	if cycle == nil {
		t.Fatal("crawl.cycle scope missing from export")
	}
	if want := fetch.VirtualMs + filter.VirtualMs + classify.VirtualMs; cycle.CumMs != want {
		t.Errorf("crawl.cycle cum %d != stage self sum %d", cycle.CumMs, want)
	}
	if cycle.SelfMs != 0 || cycle.Calls != 0 {
		t.Errorf("crawl.cycle virtual lane not empty: %+v (wall brackets must not leak)", cycle)
	}
	// The wall lane did observe the cycles.
	if cyc := s.Get("crawl.cycle"); cyc.Brackets == 0 || cyc.WallNs <= 0 {
		t.Errorf("crawl.cycle wall lane empty: %+v", cyc)
	}
}

// TestProfileExportsDeterministic: identical crawls attribute identical
// costs — every deterministic export form is byte-stable across runs.
func TestProfileExportsDeterministic(t *testing.T) {
	a, b := runWithProf(t, 250).Profile, runWithProf(t, 250).Profile
	if a.TopK(0) != b.TopK(0) {
		t.Error("TopK exports diverge across identical runs")
	}
	if a.Folded() != b.Folded() {
		t.Error("folded exports diverge across identical runs")
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Error("JSON exports diverge across identical runs")
	}
}

// TestProfilingInvisible is the twin discipline of the other pillars:
// attaching the profiler must not change one byte of any other export —
// corpus, metrics, traces, logs, or series.
func TestProfilingInvisible(t *testing.T) {
	run := func(withProf bool) (*Result, string) {
		cfg := DefaultConfig()
		cfg.MaxPages = 200
		p := chaosPipeline(t, 40, chaosWeb)
		rec := trace.NewRecorder(trace.DefaultConfig(7))
		c := New(cfg, p.web, p.clf).
			WithTrace(rec).
			WithLog(evlog.NewSink(evlog.DefaultConfig(7))).
			WithSeries(series.New(series.DefaultConfig()))
		if withProf {
			c.WithProf(prof.New(prof.Config{}))
		}
		return c.Run(defaultSeeds(t, p)), rec.Snapshot().Text()
	}
	plain, plainTraces := run(false)
	profiled, profiledTraces := run(true)
	if plain.Stats != profiled.Stats {
		t.Error("stats diverge when profiling is on")
	}
	if plain.Metrics.Text() != profiled.Metrics.Text() {
		t.Error("metric export diverges when profiling is on")
	}
	if plainTraces != profiledTraces {
		t.Error("trace export diverges when profiling is on")
	}
	if plain.Logs.Logfmt() != profiled.Logs.Logfmt() {
		t.Error("log export diverges when profiling is on")
	}
	if plain.Series.CSV() != profiled.Series.CSV() {
		t.Error("series export diverges when profiling is on")
	}
	if profiled.Profile == nil || plain.Profile != nil {
		t.Error("profile presence does not match the attached profiler")
	}
}

// TestCheckpointResumeProfileExportIdentical: a crawl interrupted after
// a few cycles and resumed in fresh objects exports a byte-identical
// profile — the virtual lane rides the checkpoint, and the extra
// checkpoint bracket stays in the (non-exported) wall lane.
func TestCheckpointResumeProfileExportIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 250

	p1 := chaosPipeline(t, 50, chaosWeb)
	ref := New(cfg, p1.web, p1.clf).WithProf(prof.New(prof.Config{})).Run(defaultSeeds(t, p1))

	p2 := chaosPipeline(t, 50, chaosWeb)
	c := New(cfg, p2.web, p2.clf).WithProf(prof.New(prof.Config{}))
	c.Seed(defaultSeeds(t, p2))
	for i := 0; i < 3 && c.Step(); i++ {
	}
	raw, err := c.Checkpoint().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"profile"`) {
		t.Fatal("checkpoint JSON carries no profile snapshot")
	}
	cp, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	p3 := chaosPipeline(t, 50, chaosWeb)
	rc, err := Resume(cfg, p3.web, p3.clf, cp)
	if err != nil {
		t.Fatal(err)
	}
	rc.WithProf(prof.New(prof.Config{})) // WithProf loads the checkpoint's snapshot
	for rc.Step() {
	}
	got := rc.Finish()

	if ref.Profile.TopK(0) != got.Profile.TopK(0) {
		t.Fatalf("profile TopK diverges after resume:\n--- uninterrupted\n%s\n--- resumed\n%s",
			ref.Profile.TopK(0), got.Profile.TopK(0))
	}
	if ref.Profile.Folded() != got.Profile.Folded() {
		t.Fatal("profile folded stacks diverge after resume")
	}
	refJSON, err := ref.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.Profile.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("profile JSON exports diverge after resume")
	}
}
