package crawler

// Tests for the §5 / §2.1 extension features: entity-boosted relevance
// (crawling and text analytics as a consolidated process), incremental
// classifier self-training, and robustness under injected fetch failures.

import (
	"testing"

	"webtextie/internal/classify"
	"webtextie/internal/ie/dict"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// matchersFor builds dictionary matchers from the pipeline's lexicon.
func matchersFor(p *pipeline) map[textgen.EntityType]*dict.Matcher {
	out := map[textgen.EntityType]*dict.Matcher{}
	for _, t := range textgen.EntityTypes {
		out[t] = dict.Build(t.String(), p.lex.DictionarySurfaces(t), dict.DefaultOptions())
	}
	return out
}

// weakClassifier trains a deliberately under-trained model so that the
// bag-of-words signal alone misses relevant pages.
func weakClassifier(p *pipeline) *classify.NaiveBayes {
	clf := classify.New()
	// Only 3 documents per class: barely any vocabulary coverage.
	r := rng.New(1000)
	for i := 0; i < 3; i++ {
		clf.Learn(p.gen.Doc(r, textgen.Medline, "wm").Text, classify.Relevant)
		clf.Learn(p.gen.Doc(r, textgen.Irrelevant, "ww").Text, classify.Irrelevant)
	}
	clf.Threshold = 0.999 // precision-geared: rejects anything uncertain
	return clf
}

func TestEntityBoostRescuesPages(t *testing.T) {
	p := newPipeline(t, 80)
	seedList := p.seedRun(t, seeds.CatalogSizes{General: 4, Disease: 8, Drug: 6, Gene: 10})

	weak := weakClassifier(p)
	cfg := DefaultConfig()
	cfg.MaxPages = 500

	plain := New(cfg, p.web, copyNB(weak)).Run(seedList)

	cfg2 := cfg
	cfg2.EntityBoost = true
	boosted := New(cfg2, p.web, copyNB(weak)).WithEntityMatchers(matchersFor(p)).Run(seedList)

	if boosted.Stats.EntityBoosted == 0 {
		t.Fatal("entity boost never fired")
	}
	if boosted.Stats.Relevant <= plain.Stats.Relevant {
		t.Errorf("entity boost did not increase yield: %d vs %d",
			boosted.Stats.Relevant, plain.Stats.Relevant)
	}
	// The rescued pages must be mostly genuinely relevant: entity density
	// is a high-precision signal.
	goldRel := 0
	for _, pg := range boosted.Relevant {
		if pg.GoldRelevant {
			goldRel++
		}
	}
	prec := float64(goldRel) / float64(len(boosted.Relevant))
	if prec < 0.7 {
		t.Errorf("boosted corpus precision = %.2f", prec)
	}
}

func TestSelfTrainingUpdatesModel(t *testing.T) {
	p := newPipeline(t, 80)
	seedList := p.seedRun(t, seeds.CatalogSizes{General: 4, Disease: 8, Drug: 6, Gene: 10})
	cfg := DefaultConfig()
	cfg.MaxPages = 400
	cfg.SelfTraining = true
	clf := copyNB(p.clf)
	res := New(cfg, p.web, clf).Run(seedList)
	if res.Stats.SelfTrainUpdates == 0 {
		t.Fatal("self-training never updated the model")
	}
	// Yield quality must not collapse (self-training can drift; here the
	// signal is strong enough that precision stays high).
	goldRel := 0
	for _, pg := range res.Relevant {
		if pg.GoldRelevant {
			goldRel++
		}
	}
	if prec := float64(goldRel) / float64(max(1, len(res.Relevant))); prec < 0.8 {
		t.Errorf("self-trained corpus precision = %.2f", prec)
	}
}

func TestCrawlSurvivesFetchFailures(t *testing.T) {
	p := newPipeline(t, 80)
	// Rebuild the same web with failure injection.
	cfgWeb := synthweb.DefaultConfig()
	cfgWeb.NumHosts = 80
	cfgWeb.FailureRate = 0.15
	failingWeb := synthweb.New(cfgWeb, p.gen)

	seedList := p.seedRun(t, seeds.CatalogSizes{General: 4, Disease: 8, Drug: 6, Gene: 10})
	cfg := DefaultConfig()
	cfg.MaxPages = 400
	res := New(cfg, failingWeb, p.clf).Run(seedList)
	if res.Stats.FetchErrors == 0 {
		t.Fatal("no fetch failures injected")
	}
	if res.Stats.Relevant == 0 {
		t.Fatal("crawl produced nothing under failures")
	}
	rate := float64(res.Stats.FetchErrors) /
		float64(res.Stats.FetchErrors+res.Stats.Fetched)
	if rate < 0.05 || rate > 0.30 {
		t.Errorf("failure rate = %.3f, want ~0.15", rate)
	}
}

func TestFailureInjectionDeterministic(t *testing.T) {
	cfgWeb := synthweb.DefaultConfig()
	cfgWeb.NumHosts = 40
	cfgWeb.FailureRate = 0.2
	p := newPipeline(t, 40)
	web := synthweb.New(cfgWeb, p.gen)
	u := synthweb.PageURL(web.Hosts[3].Name, 1)
	_, err1 := web.Fetch(u)
	_, err2 := web.Fetch(u)
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("failure injection not deterministic per URL")
	}
}

// copyNB returns an independent model copy.
func copyNB(nb *classify.NaiveBayes) *classify.NaiveBayes { return nb.Clone() }
