package crawler

import (
	"strings"
	"testing"

	"webtextie/internal/obs/trace"
)

// chaosTracedRun drives a chaos crawl with a trace recorder attached and
// returns the recorder.
func chaosTracedRun(t testing.TB, maxPages int) *trace.Recorder {
	t.Helper()
	p := chaosPipeline(t, 50, chaosWeb)
	cfg := DefaultConfig()
	cfg.MaxPages = maxPages
	rec := trace.NewRecorder(trace.DefaultConfig(1))
	New(cfg, p.web, p.clf).WithTrace(rec).Run(defaultSeeds(t, p))
	return rec
}

// TestChaosTraceDeterministic: two same-seed chaos crawls export
// byte-identical traces in every format.
func TestChaosTraceDeterministic(t *testing.T) {
	a := chaosTracedRun(t, 250).Snapshot()
	b := chaosTracedRun(t, 250).Snapshot()
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("same-seed chaos crawls exported different trace JSON")
	}
	if a.Text() != b.Text() {
		t.Fatal("same-seed chaos crawls exported different trace text")
	}
	ac, _ := a.Chrome()
	bc, _ := b.Chrome()
	if string(ac) != string(bc) {
		t.Fatal("same-seed chaos crawls exported different chrome JSON")
	}
}

// TestBreakerOpenYieldsPinnedLineage is the acceptance criterion: a
// breaker-opened host pins a trace whose span tree names every hop —
// frontier insertion, each fetch attempt, each backoff, the breaker
// transition — and the trace survives eviction.
func TestBreakerOpenYieldsPinnedLineage(t *testing.T) {
	rec := chaosTracedRun(t, 250)
	s := rec.Snapshot()

	opened := s.Filter(trace.Filter{ErrClass: "breaker_open"})
	if len(opened.Traces) == 0 {
		t.Fatal("chaos crawl opened no breakers (fault config too mild?)")
	}
	for _, tr := range opened.Traces {
		if !tr.Pinned {
			t.Fatalf("breaker_open trace %s not pinned", tr.ID)
		}
	}
	// The lineage of one pinned trace names every hop.
	tr := opened.Traces[0]
	text := s.Filter(trace.Filter{Key: tr.Key, PinnedOnly: true}).Text()
	for _, hop := range []string{
		"span crawler.url",
		"frontier.inject",
		"span crawler.fetch.attempt",
		"fetch.error",
		"error class=breaker_open",
	} {
		if !strings.Contains(text, hop) {
			t.Fatalf("pinned lineage missing %q:\n%s", hop, text)
		}
	}
	// Backoffs appear somewhere among the pinned breaker traces (an open
	// breaker requires repeated failures, which back off while budget
	// lasts).
	if !strings.Contains(opened.Text(), "retry.backoff") {
		t.Fatalf("no retry.backoff recorded in breaker lineages:\n%s", opened.Text())
	}
}

// TestRetryExhaustionPinsTrace: a URL that runs out of retry budget is a
// flight-recorder event too.
func TestRetryExhaustionPinsTrace(t *testing.T) {
	// Small web, no page cap: the crawl runs to frontier exhaustion, so
	// every dead-host URL burns its full retry budget (breakers off).
	p := chaosPipeline(t, 10, chaosWeb)
	cfg := DefaultConfig()
	cfg.BreakerFailures = 0
	rec := trace.NewRecorder(trace.DefaultConfig(1))
	New(cfg, p.web, p.clf).WithTrace(rec).Run(defaultSeeds(t, p))
	s := rec.Snapshot()
	exhausted := s.Filter(trace.Filter{ErrClass: "retry_exhausted"})
	if len(exhausted.Traces) == 0 {
		t.Fatal("no URL exhausted its retry budget despite disabled breakers")
	}
	for _, tr := range exhausted.Traces {
		if !tr.Pinned {
			t.Fatalf("retry_exhausted trace %s not pinned", tr.ID)
		}
		if !tr.Done {
			t.Fatalf("retry_exhausted trace %s not finished", tr.ID)
		}
	}
}

// TestTraceOffCrawlIdentical: attaching no recorder changes nothing about
// the crawl itself (stats and corpus match a traced run).
func TestTraceOffCrawlIdentical(t *testing.T) {
	run := func(withTrace bool) *Result {
		p := chaosPipeline(t, 50, chaosWeb)
		cfg := DefaultConfig()
		cfg.MaxPages = 250
		c := New(cfg, p.web, p.clf)
		if withTrace {
			c.WithTrace(trace.NewRecorder(trace.DefaultConfig(1)))
		}
		return c.Run(defaultSeeds(t, p))
	}
	off, on := run(false), run(true)
	if off.Stats != on.Stats {
		t.Fatalf("tracing changed crawl stats:\noff: %+v\non:  %+v", off.Stats, on.Stats)
	}
	if len(off.Relevant) != len(on.Relevant) {
		t.Fatal("tracing changed the relevant corpus")
	}
	if off.Metrics.Text() != on.Metrics.Text() {
		t.Fatal("tracing changed the metric snapshot")
	}
}

// TestCrawlTraceIDsStoredInDB: every traced URL's ID is resolvable through
// the CrawlDB, so lineage lookups by URL work after the crawl.
func TestCrawlTraceIDsStoredInDB(t *testing.T) {
	p := chaosPipeline(t, 20, nil)
	cfg := DefaultConfig()
	cfg.MaxPages = 100
	rec := trace.NewRecorder(trace.DefaultConfig(7))
	res := New(cfg, p.web, p.clf).WithTrace(rec).Run(defaultSeeds(t, p))

	s := rec.Snapshot()
	checked := 0
	for _, page := range res.Relevant {
		id, ok := res.CrawlDB.TraceOf(page.URL)
		if !ok {
			t.Fatalf("no trace ID stored for crawled %s", page.URL)
		}
		if tr := s.Find(trace.TraceID(id)); tr != nil {
			if tr.Key != page.URL {
				t.Fatalf("trace %s key %q != URL %q", tr.ID, tr.Key, page.URL)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no crawled page's trace survived retention; widen bounds")
	}
}
