package crawler

import (
	"fmt"
	"strings"
	"testing"

	"webtextie/internal/classify"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// pipeline bundles a small but complete crawl environment.
type pipeline struct {
	lex *textgen.Lexicon
	gen *textgen.Generator
	web *synthweb.Web
	clf *classify.NaiveBayes
}

func newPipeline(t testing.TB, hosts int) *pipeline {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	cfg := synthweb.DefaultConfig()
	cfg.NumHosts = hosts
	web := synthweb.New(cfg, gen)

	// Train the relevance classifier as in §2: Medline abstracts vs random
	// English web documents.
	clf := classify.New()
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		clf.Learn(gen.Doc(r, textgen.Medline, fmt.Sprint("m", i)).Text, classify.Relevant)
		clf.Learn(gen.Doc(r, textgen.Irrelevant, fmt.Sprint("w", i)).Text, classify.Irrelevant)
	}
	return &pipeline{lex: lex, gen: gen, web: web, clf: clf}
}

func (p *pipeline) seedRun(t testing.TB, sizes seeds.CatalogSizes) []string {
	t.Helper()
	catalog := seeds.BuildCatalog(4, p.lex, sizes)
	return seeds.Generate(seeds.DefaultEngines(5, p.web), catalog).SeedURLs
}

func defaultSeeds(t testing.TB, p *pipeline) []string {
	return p.seedRun(t, seeds.CatalogSizes{General: 10, Disease: 60, Drug: 40, Gene: 80})
}

func TestCrawlProducesBothCorpora(t *testing.T) {
	p := newPipeline(t, 100)
	cfg := DefaultConfig()
	cfg.MaxPages = 600
	res := New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	if res.Stats.Fetched == 0 {
		t.Fatal("nothing fetched")
	}
	if len(res.Relevant) == 0 {
		t.Fatal("no relevant pages")
	}
	if len(res.IrrelevantPages) == 0 {
		t.Fatal("no irrelevant pages")
	}
	if res.Stats.Relevant != len(res.Relevant) || res.Stats.Irrelevant != len(res.IrrelevantPages) {
		t.Error("stats and corpora sizes disagree")
	}
}

func TestCrawlDeterministic(t *testing.T) {
	run := func() *Result {
		p := newPipeline(t, 60)
		cfg := DefaultConfig()
		cfg.MaxPages = 400
		return New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if len(a.Relevant) != len(b.Relevant) {
		t.Fatal("relevant corpus size differs")
	}
	for i := range a.Relevant {
		if a.Relevant[i].URL != b.Relevant[i].URL {
			t.Fatalf("crawl order differs at %d", i)
		}
	}
}

func TestFiltersFire(t *testing.T) {
	p := newPipeline(t, 100)
	cfg := DefaultConfig()
	cfg.MaxPages = 800
	res := New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	s := res.Stats
	if s.FilteredMIME == 0 {
		t.Error("MIME filter never fired")
	}
	if s.FilteredLang == 0 {
		t.Error("language filter never fired")
	}
	if s.FilteredLength == 0 {
		t.Error("length filter never fired")
	}
	// §4.1 rates: MIME 9.5%, language 14%, length 17% of fetched docs.
	fm := float64(s.FilteredMIME) / float64(s.Fetched)
	if fm < 0.01 || fm > 0.30 {
		t.Errorf("MIME filter rate = %.3f", fm)
	}
}

func TestHarvestRateInBand(t *testing.T) {
	p := newPipeline(t, 100)
	cfg := DefaultConfig()
	cfg.MaxPages = 1000
	res := New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	hr := res.Stats.HarvestRate()
	// Paper: 38%; published focused crawlers: 25-45%. Accept a wide band;
	// the shape requirement is "well above random, well below perfect".
	if hr < 0.15 || hr > 0.85 {
		t.Errorf("harvest rate = %.3f, want within (0.15, 0.85)", hr)
	}
	if res.Stats.HarvestRateDocs() <= 0 {
		t.Error("doc harvest rate = 0")
	}
}

func TestSmallSeedListDiesLargeSurvives(t *testing.T) {
	// §2.2: the 45K-seed crawl "terminated quickly due to an emptied
	// CrawlDB"; the 485K-seed crawl sustained a 1 TB corpus.
	p := newPipeline(t, 100)
	smallSeeds := p.seedRun(t, seeds.CatalogSizes{General: 2, Disease: 1, Drug: 1, Gene: 1})
	largeSeeds := p.seedRun(t, seeds.CatalogSizes{General: 10, Disease: 80, Drug: 60, Gene: 120})

	cfg := DefaultConfig()
	cfg.MaxPagesPerHost = 60
	small := New(cfg, p.web, p.clf).Run(smallSeeds)
	large := New(cfg, p.web, p.clf).Run(largeSeeds)
	if !small.Stats.FrontierEmptied {
		t.Error("small-seed crawl did not exhaust its frontier")
	}
	if large.Stats.Relevant <= 2*small.Stats.Relevant {
		t.Errorf("large crawl (%d relevant) not substantially bigger than small (%d)",
			large.Stats.Relevant, small.Stats.Relevant)
	}
}

func TestTrapGuardBoundsPerHost(t *testing.T) {
	p := newPipeline(t, 100)
	cfg := DefaultConfig()
	cfg.MaxPagesPerHost = 50
	cfg.MaxPages = 800
	c := New(cfg, p.web, p.clf)
	res := c.Run(defaultSeeds(t, p))
	perHost := map[string]int{}
	count := func(pages []CrawledPage) {
		for _, pg := range pages {
			h, _, _ := synthweb.SplitURL(pg.URL)
			perHost[h]++
		}
	}
	count(res.Relevant)
	count(res.IrrelevantPages)
	for h, n := range perHost {
		// Injection happens before the guard increments, so allow the cap
		// plus one generate-cycle of slack.
		if n > cfg.MaxPagesPerHost+cfg.MaxPerHostPerCycle {
			t.Errorf("host %s got %d pages, cap %d", h, n, cfg.MaxPagesPerHost)
		}
	}
}

func TestTrapURLsNeverDominat(t *testing.T) {
	p := newPipeline(t, 100)
	cfg := DefaultConfig()
	cfg.MaxPages = 600
	res := New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	traps := 0
	for _, pg := range append(res.Relevant, res.IrrelevantPages...) {
		if strings.Contains(pg.URL, "/trap/") {
			traps++
		}
	}
	if traps > res.Stats.Fetched/5 {
		t.Errorf("trap pages = %d of %d fetched: trap guard ineffective", traps, res.Stats.Fetched)
	}
}

func TestRobotsRespected(t *testing.T) {
	p := newPipeline(t, 100)
	// Find a host with a disallowed trap.
	var guarded *synthweb.Host
	for _, h := range p.web.Hosts {
		if h.DisallowTrap {
			guarded = h
			break
		}
	}
	if guarded == nil {
		t.Skip("no robots-guarded host")
	}
	cfg := DefaultConfig()
	cfg.MaxPages = 200
	c := New(cfg, p.web, p.clf)
	res := c.Run([]string{synthweb.TrapURL(guarded.Name, 0), synthweb.PageURL(guarded.Name, 1)})
	for _, pg := range append(res.Relevant, res.IrrelevantPages...) {
		if strings.Contains(pg.URL, guarded.Name+"/trap/") {
			t.Fatalf("robots-disallowed URL fetched: %s", pg.URL)
		}
	}
	if res.Stats.RobotsBlocked == 0 {
		t.Error("RobotsBlocked = 0")
	}
}

func TestTunnellingIncreasesYield(t *testing.T) {
	// §5: "Another approach would be to also follow links from pages
	// classified as irrelevant, but only with a small margin."
	p := newPipeline(t, 100)
	seedList := p.seedRun(t, seeds.CatalogSizes{General: 6, Disease: 4, Drug: 3, Gene: 5})

	cfg1 := DefaultConfig()
	cfg1.Tunnelling = 1
	cfg1.MaxPagesPerHost = 40
	r1 := New(cfg1, p.web, p.clf).Run(seedList)

	cfg2 := cfg1
	cfg2.Tunnelling = 2
	r2 := New(cfg2, p.web, p.clf).Run(seedList)

	if r2.Stats.Relevant < r1.Stats.Relevant {
		t.Errorf("tunnelling reduced yield: %d vs %d", r2.Stats.Relevant, r1.Stats.Relevant)
	}
	if r2.Stats.Fetched <= r1.Stats.Fetched {
		t.Errorf("tunnelling did not explore more: %d vs %d fetched",
			r2.Stats.Fetched, r1.Stats.Fetched)
	}
}

func TestClassifierQualityOnCrawlSample(t *testing.T) {
	// §4.1: on a 200-page crawl sample, estimated P=94% / R=90%. We check
	// the same regime against generator gold labels.
	p := newPipeline(t, 100)
	cfg := DefaultConfig()
	cfg.MaxPages = 800
	res := New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	var q classify.Quality
	for _, pg := range res.Relevant {
		if pg.GoldRelevant {
			q.TP++
		} else {
			q.FP++
		}
	}
	for _, pg := range res.IrrelevantPages {
		if pg.GoldRelevant {
			q.FN++
		} else {
			q.TN++
		}
	}
	if q.Precision() < 0.80 {
		t.Errorf("crawl-sample precision = %.3f (paper: 0.94)", q.Precision())
	}
	if q.Recall() < 0.70 {
		t.Errorf("crawl-sample recall = %.3f (paper: 0.90)", q.Recall())
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	p := newPipeline(t, 60)
	cfg := DefaultConfig()
	cfg.MaxPages = 300
	res := New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	if res.Stats.VirtualMs <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	dps := res.Stats.DocsPerSecond()
	if dps <= 0 || dps > 1000 {
		t.Errorf("docs/s = %.2f", dps)
	}
}

func TestLinkDBPopulated(t *testing.T) {
	p := newPipeline(t, 60)
	cfg := DefaultConfig()
	cfg.MaxPages = 400
	res := New(cfg, p.web, p.clf).Run(defaultSeeds(t, p))
	if res.LinkDB.Edges() == 0 {
		t.Fatal("LinkDB empty")
	}
	if len(res.LinkDB.Pages()) == 0 {
		t.Fatal("LinkDB has no pages")
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Relevant: 3, Irrelevant: 1, RelevantBytes: 300, IrrelevantBytes: 700,
		Fetched: 10, VirtualMs: 2000}
	if s.Classified() != 4 {
		t.Errorf("Classified = %d", s.Classified())
	}
	if s.HarvestRate() != 0.3 {
		t.Errorf("HarvestRate = %v", s.HarvestRate())
	}
	if s.HarvestRateDocs() != 0.75 {
		t.Errorf("HarvestRateDocs = %v", s.HarvestRateDocs())
	}
	if s.DocsPerSecond() != 5 {
		t.Errorf("DocsPerSecond = %v", s.DocsPerSecond())
	}
	var zero Stats
	if zero.HarvestRate() != 0 || zero.DocsPerSecond() != 0 || zero.HarvestRateDocs() != 0 {
		t.Error("zero stats not handled")
	}
}

func BenchmarkCrawl500Pages(b *testing.B) {
	p := newPipeline(b, 80)
	seedList := defaultSeeds(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxPages = 500
		_ = New(cfg, p.web, p.clf).Run(seedList)
	}
}
