package crawler

import (
	"testing"

	"webtextie/internal/obs/trace"
)

// Tracing touches the per-URL hot path (one root span per frontier
// insertion) and the error paths (events per attempt/backoff/breaker
// transition). The pair below prices it under chaos, where the flight
// recorder does the most work; BENCH_PR4.json commits both, and the
// tracing-off numbers double as the no-regression gate against the PR3
// baseline (bench_pr4_test.go).

func benchChaosCrawl(b *testing.B, traced bool) {
	p := chaosPipeline(b, 80, nil)
	seedList := defaultSeeds(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxPages = 500
		c := New(cfg, p.web, p.clf)
		if traced {
			c.WithTrace(trace.NewRecorder(trace.DefaultConfig(1)))
		}
		_ = c.Run(seedList)
	}
}

func BenchmarkCrawlChaosTraceOff(b *testing.B) { benchChaosCrawl(b, false) }

func BenchmarkCrawlChaosTraceOn(b *testing.B) { benchChaosCrawl(b, true) }
