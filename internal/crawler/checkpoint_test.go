package crawler

import (
	"bytes"
	"strings"
	"testing"

	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// TestCheckpointResumeByteIdentical: a crawl interrupted mid-run,
// serialized through JSON, and resumed in fresh objects finishes with the
// same stats, corpora, metric snapshot, and exported traces as the
// uninterrupted crawl.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 250
	seedsOf := func(p *pipeline) []string { return defaultSeeds(t, p) }
	traceCfg := trace.DefaultConfig(9)

	// Uninterrupted reference run over a faulty web (retry and breaker
	// state must survive the checkpoint).
	p1 := chaosPipeline(t, 50, chaosWeb)
	refRec := trace.NewRecorder(traceCfg)
	ref := New(cfg, p1.web, p1.clf).WithTrace(refRec).Run(seedsOf(p1))

	// Interrupted run: a few cycles, checkpoint, JSON round-trip, resume
	// with freshly built (same-seed) web and classifier, finish.
	p2 := chaosPipeline(t, 50, chaosWeb)
	c := New(cfg, p2.web, p2.clf).WithTrace(trace.NewRecorder(traceCfg))
	c.Seed(seedsOf(p2))
	for i := 0; i < 3 && c.Step(); i++ {
	}
	raw, err := c.Checkpoint().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	p3 := chaosPipeline(t, 50, chaosWeb)
	rc, err := Resume(cfg, p3.web, p3.clf, cp)
	if err != nil {
		t.Fatal(err)
	}
	gotRec := trace.NewRecorder(traceCfg)
	rc.WithTrace(gotRec)
	for rc.Step() {
	}
	got := rc.Finish()

	// The trace recorder's exported JSON must be identical between the
	// uninterrupted run and the killed-and-resumed run.
	refTraces, err := refRec.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	gotTraces, err := gotRec.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refTraces, gotTraces) {
		t.Fatalf("trace exports diverge after resume:\n--- uninterrupted\n%s\n--- resumed\n%s",
			refTraces, gotTraces)
	}

	if got.Stats != ref.Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", got.Stats, ref.Stats)
	}
	if len(got.Relevant) != len(ref.Relevant) || len(got.IrrelevantPages) != len(ref.IrrelevantPages) {
		t.Fatalf("corpus sizes diverge: %d/%d vs %d/%d",
			len(got.Relevant), len(got.IrrelevantPages), len(ref.Relevant), len(ref.IrrelevantPages))
	}
	// Gold is a pointer into the generating web, so compare pages by
	// content, not pointer identity.
	samePage := func(a, b CrawledPage) bool {
		if a.URL != b.URL || a.NetText != b.NetText || a.GoldRelevant != b.GoldRelevant || a.Bytes != b.Bytes {
			return false
		}
		if (a.Gold == nil) != (b.Gold == nil) {
			return false
		}
		return a.Gold == nil || a.Gold.Text == b.Gold.Text
	}
	for i := range ref.Relevant {
		if !samePage(got.Relevant[i], ref.Relevant[i]) {
			t.Fatalf("relevant page %d diverges:\n%+v\n%+v", i, got.Relevant[i], ref.Relevant[i])
		}
	}
	for i := range ref.IrrelevantPages {
		if !samePage(got.IrrelevantPages[i], ref.IrrelevantPages[i]) {
			t.Fatalf("irrelevant page %d diverges", i)
		}
	}
	if gt, rt := got.Metrics.Text(), ref.Metrics.Text(); gt != rt {
		t.Fatalf("metric snapshots diverge:\n%s\nvs\n%s", gt, rt)
	}
	if got.LinkDB.Edges() != ref.LinkDB.Edges() {
		t.Fatal("link graphs diverge")
	}
}

// TestCheckpointSerializationDeterministic: the serialized checkpoint is
// itself byte-identical across same-seed runs.
func TestCheckpointSerializationDeterministic(t *testing.T) {
	snap := func() []byte {
		p := chaosPipeline(t, 40, chaosWeb)
		cfg := DefaultConfig()
		cfg.MaxPages = 150
		c := New(cfg, p.web, p.clf)
		c.Seed(defaultSeeds(t, p))
		for i := 0; i < 2 && c.Step(); i++ {
		}
		raw, err := c.Checkpoint().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if a, b := snap(), snap(); !bytes.Equal(a, b) {
		t.Fatal("checkpoint serialization is not deterministic")
	}
}

// TestResumeRejectsWorkerMismatch: resuming under a different worker count
// would silently change the clock schedule — it must error instead.
func TestResumeRejectsWorkerMismatch(t *testing.T) {
	p := chaosPipeline(t, 30, nil)
	cfg := DefaultConfig()
	cfg.MaxPages = 60
	c := New(cfg, p.web, p.clf)
	c.Seed(defaultSeeds(t, p))
	c.Step()
	cp := c.Checkpoint()

	bad := cfg
	bad.Workers = cfg.Workers + 1
	if _, err := Resume(bad, p.web, p.clf, cp); err == nil {
		t.Fatal("worker-count mismatch accepted")
	}
}

// TestResumeRebuildFailureSurfaces: a checkpoint referencing a page the
// supplied web cannot serve (wrong web) fails loudly, not silently.
func TestResumeRebuildFailureSurfaces(t *testing.T) {
	p := chaosPipeline(t, 30, nil)
	cfg := DefaultConfig()
	cfg.MaxPages = 60
	c := New(cfg, p.web, p.clf)
	c.Seed(defaultSeeds(t, p))
	for i := 0; i < 2 && c.Step(); i++ {
	}
	cp := c.Checkpoint()
	if len(cp.RelevantURLs) == 0 {
		t.Skip("no stored pages to corrupt")
	}
	cp.RelevantURLs[0] = "http://no-such-host.example/x"
	if _, err := Resume(cfg, p.web, p.clf, cp); err == nil {
		t.Fatal("unreadable checkpoint page accepted")
	}
}

// TestCheckpointResumeLogExportIdentical: the third pillar rides the
// checkpoint too — a crawl killed mid-run and resumed in fresh objects
// exports the same event-log bytes as the uninterrupted run. The sink is
// snapshotted before checkpoint.saved is emitted, so the announcement
// lives only in the interrupted run's live sink, never in the export the
// resumed run rebuilds from.
func TestCheckpointResumeLogExportIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 250
	seedsOf := func(p *pipeline) []string { return defaultSeeds(t, p) }
	logCfg := evlog.DefaultConfig(9)

	p1 := chaosPipeline(t, 50, chaosWeb)
	refSink := evlog.NewSink(logCfg)
	New(cfg, p1.web, p1.clf).WithLog(refSink).Run(seedsOf(p1))

	p2 := chaosPipeline(t, 50, chaosWeb)
	c := New(cfg, p2.web, p2.clf).WithLog(evlog.NewSink(logCfg))
	c.Seed(seedsOf(p2))
	for i := 0; i < 3 && c.Step(); i++ {
	}
	raw, err := c.Checkpoint().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	p3 := chaosPipeline(t, 50, chaosWeb)
	rc, err := Resume(cfg, p3.web, p3.clf, cp)
	if err != nil {
		t.Fatal(err)
	}
	gotSink := evlog.NewSink(logCfg)
	rc.WithLog(gotSink)
	for rc.Step() {
	}
	rc.Finish()

	refSnap, gotSnap := refSink.Snapshot(), gotSink.Snapshot()
	if a, b := refSnap.Logfmt(), gotSnap.Logfmt(); a != b {
		t.Fatalf("logfmt exports diverge after resume:\n--- uninterrupted\n%s\n--- resumed\n%s", a, b)
	}
	refJSON, err := refSnap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := gotSnap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatal("JSON exports diverge after resume")
	}
	if refSnap.Text() != gotSnap.Text() {
		t.Fatal("text exports diverge after resume")
	}
	// Sanity: the run actually logged something worth comparing.
	if len(refSnap.Records) == 0 || refSnap.Stats.Emitted == 0 {
		t.Fatalf("reference run retained no log records: %+v", refSnap.Stats)
	}
}

// TestCheckpointAfterExhaustionLogExportIdentical: the edge where the
// frontier empties before the checkpoint budget is spent. The pinned
// frontier.exhausted Warn rides the snapshot, and the resumed run's first
// Step re-discovers the empty frontier — it must not emit the record a
// second time, or the export gains a duplicate relative to an
// uninterrupted run.
func TestCheckpointAfterExhaustionLogExportIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPages = 0 // run to frontier exhaustion
	logCfg := evlog.DefaultConfig(9)
	seedsOf := func(p *pipeline) []string { return defaultSeeds(t, p)[:2] }

	p1 := chaosPipeline(t, 12, nil)
	refSink := evlog.NewSink(logCfg)
	ref := New(cfg, p1.web, p1.clf).WithLog(refSink).Run(seedsOf(p1))
	if !ref.Stats.FrontierEmptied {
		t.Fatal("reference crawl did not exhaust its frontier")
	}

	// Interrupted run: step past exhaustion (the checkpoint budget
	// outlives the crawl), checkpoint, resume, finish.
	p2 := chaosPipeline(t, 12, nil)
	c := New(cfg, p2.web, p2.clf).WithLog(evlog.NewSink(logCfg))
	c.Seed(seedsOf(p2))
	for c.Step() {
	}
	raw, err := c.Checkpoint().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := UnmarshalCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	p3 := chaosPipeline(t, 12, nil)
	rc, err := Resume(cfg, p3.web, p3.clf, cp)
	if err != nil {
		t.Fatal(err)
	}
	gotSink := evlog.NewSink(logCfg)
	rc.WithLog(gotSink)
	for rc.Step() {
	}
	rc.Finish()

	refOut, gotOut := refSink.Snapshot().Logfmt(), gotSink.Snapshot().Logfmt()
	if n := strings.Count(gotOut, "msg=frontier.exhausted"); n != 1 {
		t.Errorf("resumed export has %d frontier.exhausted records, want 1", n)
	}
	if refOut != gotOut {
		t.Fatalf("logfmt exports diverge after post-exhaustion resume:\n--- uninterrupted\n%s\n--- resumed\n%s",
			refOut, gotOut)
	}
}
