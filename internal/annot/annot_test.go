package annot

import (
	"testing"
	"testing/quick"
)

func TestAddAndOrder(t *testing.T) {
	s := &Store{}
	s.Add(Annotation{DocID: "b", Start: 5, End: 9, Kind: KindEntity})
	s.Add(Annotation{DocID: "a", Start: 10, End: 12, Kind: KindEntity})
	s.Add(Annotation{DocID: "a", Start: 2, End: 4, Kind: KindEntity})
	all := s.All()
	if all[0].DocID != "a" || all[0].Start != 2 {
		t.Errorf("order wrong: %+v", all)
	}
	if all[2].DocID != "b" {
		t.Errorf("order wrong: %+v", all)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestCoversOverlaps(t *testing.T) {
	a := Annotation{Start: 5, End: 15}
	if !a.Covers(Annotation{Start: 6, End: 10}) {
		t.Error("Covers failed")
	}
	if a.Covers(Annotation{Start: 6, End: 20}) {
		t.Error("Covers too permissive")
	}
	if !a.Overlaps(Annotation{Start: 14, End: 30}) {
		t.Error("Overlaps failed")
	}
	if a.Overlaps(Annotation{Start: 15, End: 20}) {
		t.Error("touching spans are not overlapping")
	}
}

func TestOverlapsSymmetricProperty(t *testing.T) {
	err := quick.Check(func(a1, a2, b1, b2 uint8) bool {
		x := Annotation{Start: int(min8(a1, a2)), End: int(max8(a1, a2)) + 1}
		y := Annotation{Start: int(min8(b1, b2)), End: int(max8(b1, b2)) + 1}
		return x.Overlaps(y) == y.Overlaps(x)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}
func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func TestByKindByDoc(t *testing.T) {
	s := &Store{}
	s.Add(Annotation{DocID: "d1", Kind: KindEntity, Start: 0, End: 1})
	s.Add(Annotation{DocID: "d1", Kind: KindNegation, Start: 2, End: 3})
	s.Add(Annotation{DocID: "d2", Kind: KindEntity, Start: 0, End: 1})
	if got := len(s.ByKind(KindEntity)); got != 2 {
		t.Errorf("ByKind = %d", got)
	}
	if got := len(s.ByDoc("d1")); got != 2 {
		t.Errorf("ByDoc = %d", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := &Store{}, &Store{}
	a.Add(Annotation{DocID: "x", Start: 0, End: 1})
	b.Add(Annotation{DocID: "y", Start: 0, End: 1})
	m := Merge(a, b)
	if m.Len() != 2 {
		t.Errorf("merged len = %d", m.Len())
	}
}

func TestDedupeExact(t *testing.T) {
	s := &Store{}
	s.Add(Annotation{DocID: "d", Start: 0, End: 5, Kind: KindEntity, Value: "gene", Source: "dict"})
	s.Add(Annotation{DocID: "d", Start: 0, End: 5, Kind: KindEntity, Value: "gene", Source: "ml"})
	s.Add(Annotation{DocID: "d", Start: 0, End: 5, Kind: KindEntity, Value: "drug", Source: "ml"})
	d := s.DedupeExact()
	if d.Len() != 2 {
		t.Errorf("deduped len = %d", d.Len())
	}
}

func TestResolveOverlapsKeepsLongest(t *testing.T) {
	s := &Store{}
	s.Add(Annotation{DocID: "d", Start: 0, End: 3, Kind: KindEntity, Value: "short"})
	s.Add(Annotation{DocID: "d", Start: 1, End: 10, Kind: KindEntity, Value: "long"})
	s.Add(Annotation{DocID: "d", Start: 20, End: 25, Kind: KindEntity, Value: "separate"})
	s.Add(Annotation{DocID: "d", Start: 0, End: 2, Kind: KindNegation, Value: "other-kind"})
	r := s.ResolveOverlaps(KindEntity)
	ents := r.ByKind(KindEntity)
	if len(ents) != 2 {
		t.Fatalf("entities after resolve = %d: %+v", len(ents), ents)
	}
	if ents[0].Value != "long" || ents[1].Value != "separate" {
		t.Errorf("resolve kept: %+v", ents)
	}
	if len(r.ByKind(KindNegation)) != 1 {
		t.Error("other kinds must pass through")
	}
}

func TestResolveOverlapsAcrossDocs(t *testing.T) {
	s := &Store{}
	s.Add(Annotation{DocID: "a", Start: 0, End: 5, Kind: KindEntity, Value: "a1"})
	s.Add(Annotation{DocID: "b", Start: 0, End: 5, Kind: KindEntity, Value: "b1"})
	r := s.ResolveOverlaps(KindEntity)
	if r.Len() != 2 {
		t.Errorf("same-span different-doc annotations merged: %d", r.Len())
	}
}
