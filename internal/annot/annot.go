// Package annot defines the stand-off annotation model shared by all IE
// operators (§3.2): every analysis result is recorded "together with
// information on document ID, sentence ID, and start/end positions" rather
// than by mutating the text. Annotation stores support merging results from
// multiple annotators (the IE package's annotation-merge operators, §3.1).
package annot

import "sort"

// Kind classifies an annotation.
type Kind string

// The annotation kinds the pipeline produces.
const (
	KindSentence Kind = "sentence"
	KindToken    Kind = "token"
	KindPOS      Kind = "pos"
	KindNegation Kind = "negation"
	KindPronoun  Kind = "pronoun"
	KindParen    Kind = "paren"
	KindEntity   Kind = "entity"
)

// Annotation is one stand-off annotation.
type Annotation struct {
	// DocID identifies the document.
	DocID string
	// Sentence is the index of the containing sentence (-1 if unknown).
	Sentence int
	// Start/End are byte offsets into the document text.
	Start, End int
	// Kind classifies the annotation.
	Kind Kind
	// Value carries the payload: the POS tag, entity type, pronoun class,
	// matched surface form, etc.
	Value string
	// Source names the producing annotator ("dict:gene", "ml:drug",
	// "medpost", ...), so dictionary- and ML-produced entities remain
	// distinguishable for Table 4 / Fig 7 / Fig 8.
	Source string
}

// Covers reports whether a fully contains o.
func (a Annotation) Covers(o Annotation) bool {
	return a.Start <= o.Start && a.End >= o.End
}

// Overlaps reports whether the two spans intersect.
func (a Annotation) Overlaps(o Annotation) bool {
	return a.Start < o.End && o.Start < a.End
}

// Store is an ordered collection of annotations for one or more documents.
// The zero value is usable.
type Store struct {
	anns   []Annotation
	sorted bool
}

// Add appends one annotation.
func (s *Store) Add(a Annotation) {
	s.anns = append(s.anns, a)
	s.sorted = false
}

// AddAll appends a batch.
func (s *Store) AddAll(as []Annotation) {
	s.anns = append(s.anns, as...)
	s.sorted = false
}

// Len returns the number of annotations.
func (s *Store) Len() int { return len(s.anns) }

// All returns the annotations ordered by (DocID, Start, End, Kind).
func (s *Store) All() []Annotation {
	if !s.sorted {
		sort.Slice(s.anns, func(i, j int) bool {
			a, b := s.anns[i], s.anns[j]
			if a.DocID != b.DocID {
				return a.DocID < b.DocID
			}
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.End != b.End {
				return a.End < b.End
			}
			return a.Kind < b.Kind
		})
		s.sorted = true
	}
	return s.anns
}

// ByKind returns the annotations of one kind, ordered.
func (s *Store) ByKind(k Kind) []Annotation {
	var out []Annotation
	for _, a := range s.All() {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// ByDoc returns the annotations of one document, ordered.
func (s *Store) ByDoc(docID string) []Annotation {
	var out []Annotation
	for _, a := range s.All() {
		if a.DocID == docID {
			out = append(out, a)
		}
	}
	return out
}

// Merge combines several stores into a new one.
func Merge(stores ...*Store) *Store {
	out := &Store{}
	for _, s := range stores {
		out.AddAll(s.anns)
	}
	return out
}

// DedupeExact removes annotations identical in (DocID, span, Kind, Value),
// keeping the first Source. This is the merge-annotations-with-different-
// schemes operator applied to the common case of two taggers agreeing.
func (s *Store) DedupeExact() *Store {
	type key struct {
		doc        string
		start, end int
		kind       Kind
		value      string
	}
	seen := map[key]bool{}
	out := &Store{}
	for _, a := range s.All() {
		k := key{a.DocID, a.Start, a.End, a.Kind, a.Value}
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Add(a)
	}
	return out
}

// ResolveOverlaps keeps, among overlapping annotations of the same Kind in
// the same document, only the longest (ties: earliest). This implements the
// left-longest-match policy dictionary taggers need after variant matching.
func (s *Store) ResolveOverlaps(kind Kind) *Store {
	out := &Store{}
	var current *Annotation
	for _, a := range s.All() {
		if a.Kind != kind {
			out.Add(a)
			continue
		}
		if current == nil {
			c := a
			current = &c
			continue
		}
		if a.DocID == current.DocID && a.Overlaps(*current) {
			if a.End-a.Start > current.End-current.Start {
				*current = a
			}
			continue
		}
		out.Add(*current)
		c := a
		current = &c
	}
	if current != nil {
		out.Add(*current)
	}
	return out
}
