package meteor

// Property tests: the parser must never panic on arbitrary input, and
// valid scripts must round-trip through the compiler.

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"webtextie/internal/rng"
)

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	err := quick.Check(func(src string) bool {
		_, _ = Parse(src) // error is fine; panic is not
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	// Garbage built from valid token fragments is more likely to reach
	// deep parser states than raw random strings.
	pieces := []string{
		"$x", "=", "read", "from", "'a'", ";", "write", "to", "with",
		"op_name", ",", "min", "3.14", "--", "\n", "'unterminated",
		"$", "$$", "''",
	}
	r := rng.New(7)
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		_, _ = Parse(b.String())
	}
}

func TestValidScriptsAlwaysCompile(t *testing.T) {
	// Generate random valid linear scripts; they must parse and compile.
	r := rng.New(11)
	ops := []string{"filter_min", "double", "label", "union"}
	for trial := 0; trial < 100; trial++ {
		var b strings.Builder
		b.WriteString("$v0 = read from 'src';\n")
		n := 1 + r.Intn(6)
		for i := 1; i <= n; i++ {
			op := ops[r.Intn(len(ops))]
			switch op {
			case "filter_min":
				b.WriteString(sprintf("$v%d = filter_min $v%d with min=%d;\n", i, i-1, r.Intn(10)))
			case "label":
				b.WriteString(sprintf("$v%d = label $v%d with value='x%d';\n", i, i-1, i))
			default:
				b.WriteString(sprintf("$v%d = %s $v%d;\n", i, op, i-1))
			}
		}
		b.WriteString(sprintf("write $v%d to 'out';\n", n))
		s, err := Parse(b.String())
		if err != nil {
			t.Fatalf("trial %d parse: %v\n%s", trial, err, b.String())
		}
		if _, err := Compile(s, toyRegistry()); err != nil {
			t.Fatalf("trial %d compile: %v\n%s", trial, err, b.String())
		}
	}
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
