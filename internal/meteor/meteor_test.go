package meteor

import (
	"fmt"
	"strings"
	"testing"

	"webtextie/internal/dataflow"
)

// toyRegistry resolves a few synthetic operators.
func toyRegistry() Registry {
	return RegistryFunc(func(name string, params Params) (*dataflow.Op, error) {
		switch name {
		case "filter_min":
			min := params["min"].Num
			return &dataflow.Op{Name: name, Pkg: dataflow.BASE, Filter: true,
				Reads: []string{"x"}, Selectivity: 0.5,
				Fn: func(r dataflow.Record, emit dataflow.Emit) error {
					if float64(r["x"].(int)) >= min {
						emit(r)
					}
					return nil
				}}, nil
		case "double":
			return &dataflow.Op{Name: name, Pkg: dataflow.BASE,
				Reads: []string{"x"}, Writes: []string{"y"}, Selectivity: 1,
				Fn: func(r dataflow.Record, emit dataflow.Emit) error {
					out := r.Clone()
					out["y"] = r["x"].(int) * 2
					emit(out)
					return nil
				}}, nil
		case "label":
			lbl := params["value"].Str
			return &dataflow.Op{Name: name, Pkg: dataflow.DC,
				Reads: []string{}, Writes: []string{"label"}, Selectivity: 1,
				Fn: func(r dataflow.Record, emit dataflow.Emit) error {
					out := r.Clone()
					out["label"] = lbl
					emit(out)
					return nil
				}}, nil
		case "union":
			return &dataflow.Op{Name: name, Pkg: dataflow.BASE,
				Reads: []string{}, Writes: []string{}, Selectivity: 1,
				Fn: func(r dataflow.Record, emit dataflow.Emit) error {
					emit(r)
					return nil
				}}, nil
		default:
			return nil, fmt.Errorf("unknown operator %q", name)
		}
	})
}

func records(n int) []dataflow.Record {
	out := make([]dataflow.Record, n)
	for i := range out {
		out[i] = dataflow.Record{"x": i}
	}
	return out
}

const basicScript = `
-- a simple linear flow
$in   = read from 'src';
$big  = filter_min $in with min=5;
$dbl  = double $big;
write $dbl to 'out';
`

func TestParseBasic(t *testing.T) {
	s, err := Parse(basicScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	if s.Stmts[0].Source != "src" || s.Stmts[0].Var != "in" {
		t.Errorf("read stmt: %+v", s.Stmts[0])
	}
	if s.Stmts[1].OpName != "filter_min" || s.Stmts[1].Params["min"].Num != 5 {
		t.Errorf("op stmt: %+v", s.Stmts[1])
	}
	if s.Stmts[3].SinkName != "out" {
		t.Errorf("write stmt: %+v", s.Stmts[3])
	}
}

func TestRunBasic(t *testing.T) {
	out, stats, err := Run(basicScript, toyRegistry(),
		map[string][]dataflow.Record{"src": records(10)}, false, dataflow.DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := out["out"]
	if len(recs) != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	for _, r := range recs {
		if r["y"].(int) != r["x"].(int)*2 {
			t.Errorf("bad record %v", r)
		}
		if _, ok := r[SourceField]; ok {
			t.Error("source tag leaked to output")
		}
	}
	if stats.Wall <= 0 {
		t.Error("no wall time")
	}
}

func TestRunWithOptimizer(t *testing.T) {
	// Results must be identical with and without optimization.
	in := map[string][]dataflow.Record{"src": records(20)}
	plain, _, err := Run(basicScript, toyRegistry(), in, false, dataflow.DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Run(basicScript, toyRegistry(), in, true, dataflow.DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain["out"]) != len(opt["out"]) {
		t.Fatalf("optimizer changed cardinality: %d vs %d", len(plain["out"]), len(opt["out"]))
	}
}

func TestMultipleSourcesAndSinks(t *testing.T) {
	script := `
$a = read from 'alpha';
$b = read from 'beta';
$la = label $a with value='A';
$lb = label $b with value='B';
$all = union $la $lb;
write $all to 'merged';
write $la to 'onlyA';
`
	out, _, err := Run(script, toyRegistry(), map[string][]dataflow.Record{
		"alpha": records(3),
		"beta":  records(4),
	}, false, dataflow.DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out["merged"]) != 7 {
		t.Errorf("merged = %d", len(out["merged"]))
	}
	if len(out["onlyA"]) != 3 {
		t.Errorf("onlyA = %d", len(out["onlyA"]))
	}
	for _, r := range out["onlyA"] {
		if r["label"] != "A" {
			t.Errorf("wrong label: %v", r)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                     // empty
		"$x = read from 'a'",                   // missing semicolon
		"$x = ;",                               // missing operator
		"write $x to 'y';",                     // undefined var (compile error)
		"$x = read from 'a'; $y = bogus $x;",   // unknown op (compile error)
		"$x = double;",                         // op without input
		"$x = read 'a';",                       // missing from
		"$x = read from 'a1; write $x to 'o';", // unterminated string
	}
	for _, src := range cases {
		s, err := Parse(src)
		if err != nil {
			continue // parse error is fine
		}
		if _, err := Compile(s, toyRegistry()); err == nil {
			t.Errorf("script %q compiled without error", src)
		}
	}
}

func TestCompileRequiresWrite(t *testing.T) {
	s, err := Parse("$x = read from 'a';")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s, toyRegistry()); err == nil ||
		!strings.Contains(err.Error(), "write") {
		t.Errorf("err = %v", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	script := `
-- leading comment
$in = read from 'src';   -- trailing comment
write $in to 'out'; -- done
`
	out, _, err := Run(script, toyRegistry(),
		map[string][]dataflow.Record{"src": records(2)}, false, dataflow.DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 2 {
		t.Errorf("out = %d", len(out["out"]))
	}
}

func TestStringAndIdentParams(t *testing.T) {
	s, err := Parse(`$a = read from 'x'; $b = label $a with value=hello; write $b to 'o';`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stmts[1].Params["value"].Str != "hello" {
		t.Errorf("ident param: %+v", s.Stmts[1].Params)
	}
}

func TestUndefinedInputVariable(t *testing.T) {
	s, err := Parse(`$a = read from 'x'; $b = double $zzz; write $b to 'o';`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(s, toyRegistry()); err == nil {
		t.Fatal("undefined input not rejected")
	}
}

func TestPlanSizeMatchesScript(t *testing.T) {
	s, err := Parse(basicScript)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s, toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	// read + filter + double + write = 4 nodes.
	if c.Plan.Size() != 4 {
		t.Errorf("plan size = %d", c.Plan.Size())
	}
	if len(c.Sources) != 1 || c.Sources[0] != "src" {
		t.Errorf("sources = %v", c.Sources)
	}
}
