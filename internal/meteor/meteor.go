// Package meteor implements the declarative scripting layer of §3.1: "data
// flows are specified in a declarative scripting language called Meteor
// [13]. Meteor scripts are composed of primitive operators, which are
// defined in domain-specific packages". A script is parsed into an
// algebraic representation (a dataflow.Plan), logically optimized, and
// executed by the dataflow engine — the same layering as
// script → Sopremo algebra → optimized plan → execution graph.
//
// The grammar is a compact Meteor dialect:
//
//	$pages  = read from 'crawl';
//	$short  = filter_length $pages with min=250, max=1000000;
//	$clean  = remove_markup $short;
//	write $clean to 'out';
//
// Statement forms:
//
//	$var = read from 'name';
//	$var = <operator> $input [$input2 ...] [with k=v, k=v ...];
//	write $var to 'name';
//
// Comments run from "--" to end of line.
package meteor

import (
	"fmt"
	"strconv"

	"webtextie/internal/dataflow"
)

// Value is an operator parameter: a string or a number.
type Value struct {
	Str   string
	Num   float64
	IsNum bool
}

// Params maps parameter names to values.
type Params map[string]Value

// Registry resolves operator names (with parameters) to dataflow operators.
type Registry interface {
	Resolve(name string, params Params) (*dataflow.Op, error)
}

// RegistryFunc adapts a function to the Registry interface.
type RegistryFunc func(name string, params Params) (*dataflow.Op, error)

// Resolve implements Registry.
func (f RegistryFunc) Resolve(name string, params Params) (*dataflow.Op, error) {
	return f(name, params)
}

// --- Lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokVar         // $name
	tokIdent
	tokString
	tokNumber
	tokEquals
	tokComma
	tokSemi
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func (l *lexer) error(format string, args ...any) error {
	return fmt.Errorf("meteor: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case c == '=':
		l.pos++
		return token{tokEquals, "=", l.line}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", l.line}, nil
	case c == ';':
		l.pos++
		return token{tokSemi, ";", l.line}, nil
	case c == '\'' || c == '"':
		q := c
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != q {
			if l.src[l.pos] == '\n' {
				return token{}, l.error("unterminated string")
			}
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.error("unterminated string")
		}
		text := l.src[s:l.pos]
		l.pos++
		return token{tokString, text, l.line}, nil
	case c == '$':
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == s {
			return token{}, l.error("empty variable name")
		}
		return token{tokVar, l.src[s:l.pos], l.line}, nil
	case c >= '0' && c <= '9' || c == '-' || c == '.':
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' ||
			l.src[l.pos] == '.' || l.src[l.pos] == '-' || l.src[l.pos] == 'e') {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], l.line}, nil
	case isIdentChar(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], l.line}, nil
	default:
		return token{}, l.error("unexpected character %q", string(c))
	}
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_'
}

// --- AST ---

// Stmt is one parsed statement.
type Stmt struct {
	// Assign: Var = Op(Inputs, Params) or Var = read from Source.
	Var    string
	OpName string // "" for read
	Inputs []string
	Params Params
	Source string // read-from name
	// Write: SinkVar -> SinkName.
	SinkVar, SinkName string
	Line              int
}

// Script is a parsed Meteor script.
type Script struct {
	Stmts []Stmt
}

// Parse lexes and parses a script.
func Parse(src string) (*Script, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	return p.parse()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("meteor: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errorf("expected %s, got %q", what, p.cur().text)
	}
	t := p.cur()
	p.advance()
	return t, nil
}

func (p *parser) parse() (*Script, error) {
	s := &Script{}
	for p.cur().kind != tokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, st)
	}
	if len(s.Stmts) == 0 {
		return nil, fmt.Errorf("meteor: empty script")
	}
	return s, nil
}

func (p *parser) statement() (Stmt, error) {
	line := p.cur().line
	switch p.cur().kind {
	case tokIdent:
		if p.cur().text != "write" {
			return Stmt{}, p.errorf("expected 'write' or assignment, got %q", p.cur().text)
		}
		p.advance()
		v, err := p.expect(tokVar, "variable")
		if err != nil {
			return Stmt{}, err
		}
		if t, err := p.expect(tokIdent, "'to'"); err != nil || t.text != "to" {
			if err == nil {
				err = p.errorf("expected 'to', got %q", t.text)
			}
			return Stmt{}, err
		}
		name, err := p.expect(tokString, "sink name")
		if err != nil {
			return Stmt{}, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return Stmt{}, err
		}
		return Stmt{SinkVar: v.text, SinkName: name.text, Line: line}, nil

	case tokVar:
		v := p.cur()
		p.advance()
		if _, err := p.expect(tokEquals, "'='"); err != nil {
			return Stmt{}, err
		}
		op, err := p.expect(tokIdent, "operator name")
		if err != nil {
			return Stmt{}, err
		}
		if op.text == "read" {
			if t, err := p.expect(tokIdent, "'from'"); err != nil || t.text != "from" {
				if err == nil {
					err = p.errorf("expected 'from', got %q", t.text)
				}
				return Stmt{}, err
			}
			src, err := p.expect(tokString, "source name")
			if err != nil {
				return Stmt{}, err
			}
			if _, err := p.expect(tokSemi, "';'"); err != nil {
				return Stmt{}, err
			}
			return Stmt{Var: v.text, Source: src.text, Line: line}, nil
		}
		st := Stmt{Var: v.text, OpName: op.text, Params: Params{}, Line: line}
		for p.cur().kind == tokVar {
			st.Inputs = append(st.Inputs, p.cur().text)
			p.advance()
		}
		if len(st.Inputs) == 0 {
			return Stmt{}, p.errorf("operator %q needs at least one input variable", op.text)
		}
		if p.cur().kind == tokIdent && p.cur().text == "with" {
			p.advance()
			for {
				key, err := p.expect(tokIdent, "parameter name")
				if err != nil {
					return Stmt{}, err
				}
				if _, err := p.expect(tokEquals, "'='"); err != nil {
					return Stmt{}, err
				}
				switch p.cur().kind {
				case tokString:
					st.Params[key.text] = Value{Str: p.cur().text}
				case tokNumber:
					n, err := strconv.ParseFloat(p.cur().text, 64)
					if err != nil {
						return Stmt{}, p.errorf("bad number %q", p.cur().text)
					}
					st.Params[key.text] = Value{Num: n, IsNum: true}
				case tokIdent:
					st.Params[key.text] = Value{Str: p.cur().text}
				default:
					return Stmt{}, p.errorf("expected parameter value")
				}
				p.advance()
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return Stmt{}, err
		}
		return st, nil
	default:
		return Stmt{}, p.errorf("unexpected token %q", p.cur().text)
	}
}

// --- Compiler ---

// SourceField tags records with their logical source stream so one plan
// can host several named reads.
const SourceField = "__source"

// Compiled is the result of compiling a script.
type Compiled struct {
	Plan *dataflow.Plan
	// Sources lists the read-from names in script order.
	Sources []string
	// SinkIDs maps sink names to plan node ids.
	SinkIDs map[string]int
}

// Compile resolves a parsed script into an executable plan.
func Compile(s *Script, reg Registry) (*Compiled, error) {
	plan := &dataflow.Plan{}
	vars := map[string]*dataflow.Node{}
	c := &Compiled{Plan: plan, SinkIDs: map[string]int{}}
	seenSource := map[string]bool{}
	for _, st := range s.Stmts {
		switch {
		case st.Source != "":
			name := st.Source
			if !seenSource[name] {
				seenSource[name] = true
				c.Sources = append(c.Sources, name)
			}
			op := &dataflow.Op{
				Name: "read:" + name, Pkg: dataflow.BASE, Filter: true,
				Reads: []string{SourceField}, Selectivity: 1,
				Fn: func(r dataflow.Record, emit dataflow.Emit) error {
					if src, ok := r[SourceField]; !ok || src == name {
						emit(r)
					}
					return nil
				},
			}
			vars[st.Var] = plan.Add(op)
		case st.OpName != "":
			op, err := reg.Resolve(st.OpName, st.Params)
			if err != nil {
				return nil, fmt.Errorf("meteor: line %d: %w", st.Line, err)
			}
			var inputs []*dataflow.Node
			for _, in := range st.Inputs {
				n, ok := vars[in]
				if !ok {
					return nil, fmt.Errorf("meteor: line %d: undefined variable $%s", st.Line, in)
				}
				inputs = append(inputs, n)
			}
			vars[st.Var] = plan.Add(op, inputs...)
		default:
			n, ok := vars[st.SinkVar]
			if !ok {
				return nil, fmt.Errorf("meteor: line %d: undefined variable $%s", st.Line, st.SinkVar)
			}
			sink := plan.Add(&dataflow.Op{
				Name: "write:" + st.SinkName, Pkg: dataflow.BASE,
				Reads: []string{}, Writes: nil, Selectivity: 1,
				Fn: func(r dataflow.Record, emit dataflow.Emit) error {
					emit(r)
					return nil
				},
			}, n)
			c.SinkIDs[st.SinkName] = sink.ID()
		}
	}
	if len(c.SinkIDs) == 0 {
		return nil, fmt.Errorf("meteor: script has no write statement")
	}
	return c, nil
}

// Run parses, compiles, optionally optimizes, and executes a script. The
// inputs map provides the records for each read-from name; outputs are
// keyed by sink name.
func Run(src string, reg Registry, inputs map[string][]dataflow.Record,
	optimize bool, cfg dataflow.ExecConfig) (map[string][]dataflow.Record, *dataflow.ExecStats, error) {

	script, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	compiled, err := Compile(script, reg)
	if err != nil {
		return nil, nil, err
	}
	if optimize {
		dataflow.Optimize(compiled.Plan)
	}
	// Tag and union the inputs.
	var union []dataflow.Record
	for _, name := range compiled.Sources {
		for _, r := range inputs[name] {
			tagged := r.Clone()
			tagged[SourceField] = name
			union = append(union, tagged)
		}
	}
	results, stats, err := dataflow.Execute(compiled.Plan, union, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := map[string][]dataflow.Record{}
	for name, id := range compiled.SinkIDs {
		recs := results[id]
		for _, r := range recs {
			delete(r, SourceField)
		}
		out[name] = recs
	}
	return out, stats, nil
}
