// Package rng provides a deterministic, splittable pseudo-random number
// generator plus the sampling utilities (weighted choice, Zipf, shuffles)
// used throughout the synthetic-web and corpus generators.
//
// Determinism matters here: the paper's experiments cannot be repeated on
// the live web ("experiments cannot be repeated due to the highly dynamic
// nature of the web", §4.1); our substitute web is fully reproducible so
// that every experiment in EXPERIMENTS.md can be re-run bit-for-bit.
// The generator is xoshiro256** seeded through SplitMix64, following the
// reference construction by Blackman and Vigna.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from a single 64-bit seed via SplitMix64,
// which guarantees the four state words are well distributed even for
// small consecutive seeds.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro requires a non-zero state; SplitMix64 can only produce all
	// zeros with negligible probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent child generator from the parent's stream,
// keyed by label so that adding a new consumer does not perturb the
// sequences seen by existing consumers.
func (r *RNG) Split(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.Uint64() ^ h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo1 := t & mask
	hi1 := t >> 32
	lo1 += aLo * bHi
	hi = aHi*bHi + hi1 + lo1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNorm returns a log-normally distributed value whose underlying normal
// has parameters mu and sigma. Document and sentence lengths in all four
// corpora are modelled as log-normal (heavy right tail, as in Fig 6).
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 30.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(r.Norm(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle permutes the first n elements using the Fisher-Yates algorithm,
// calling swap for each exchange.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice, mirroring Intn.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Weighted samples an index in [0, len(weights)) with probability
// proportional to the weight. Non-positive weights are treated as zero;
// if all weights are zero the choice is uniform.
func (r *RNG) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf draws ranks from a Zipf distribution over [0, n) with exponent s.
// Word frequencies, host out-degrees and entity-name popularity all follow
// power laws in web corpora; Zipf sampling is used everywhere a long-tail
// choice is required.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf precomputes the CDF for n ranks with exponent s (> 0).
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [0, n), rank 0 being the most likely.
func (z *Zipf) Draw() int {
	x := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
