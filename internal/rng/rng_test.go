package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("alpha")
	parent2 := New(7)
	c2 := parent2.Split("alpha")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same-label splits diverged at %d", i)
		}
	}
	p3 := New(7)
	c3 := p3.Split("beta")
	p4 := New(7)
	c4 := p4.Split("alpha")
	diff := false
	for i := 0; i < 10; i++ {
		if c3.Uint64() != c4.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("splits with different labels produced identical streams")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %.4f", got)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %.3f, want 10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %.3f, want 2", math.Sqrt(variance))
	}
}

func TestLogNormPositive(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if v := r.LogNorm(3, 1); v <= 0 {
			t.Fatalf("LogNorm returned non-positive %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += r.Exp(5)
	}
	if got := sum / trials; math.Abs(got-5) > 0.1 {
		t.Fatalf("Exp(5) mean = %.3f", got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 12, 50} {
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / trials
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %.3f", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(1)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestWeightedRespectsWeights(t *testing.T) {
	r := New(29)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Weighted(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %.3f, want ~3", ratio)
	}
}

func TestWeightedAllZeroUniform(t *testing.T) {
	r := New(31)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.Weighted([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("bucket %d count %d not ~uniform", i, c)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 1000, 1.1)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Fatalf("Zipf not monotone-ish: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
}

func TestZipfInRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		z := NewZipf(r, 50, 1.0)
		for i := 0; i < 100; i++ {
			v := z.Draw()
			if v < 0 || v >= 50 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPickCoversAll(t *testing.T) {
	r := New(41)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick covered only %d/3 elements", len(seen))
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 100000, 1.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
